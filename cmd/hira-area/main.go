// Command hira-area regenerates Table 2: the chip area and access latency
// of HiRA-MC's SRAM structures at 22 nm, and the worst-case query latency
// argument of §6.2 (search completes well within tRP).
package main

import (
	"fmt"

	"hira"
)

func main() {
	r := hira.Area()
	fmt.Println("== Table 2: HiRA-MC area and access latency (per DRAM rank, 22nm) ==")
	fmt.Printf("%-28s %-12s %-10s %-12s\n", "Component", "Area (mm2)", "Area (%)", "Latency (ns)")
	for _, c := range r.Components {
		fmt.Printf("%-28s %-12.5f %-10.5f %-12.2f\n",
			c.Name, c.AreaMM2(), 100*c.AreaMM2()/400.0, c.LatencyNS())
	}
	fmt.Printf("%-28s %-12.5f %-10.5f %-12.2f\n", "Overall",
		r.TotalAreaMM2, 100*r.AreaFraction, r.QueryLatencyNS)
	fmt.Printf("\nquery latency %.2fns vs tRP 14.5ns: fits within a precharge: %v\n",
		r.QueryLatencyNS, r.QueryLatencyNS < 14.5)
	fmt.Println("paper: overall 0.00923 mm2 (0.0023% of a 22nm die), 6.31ns query")
}
