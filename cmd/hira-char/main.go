// Command hira-char regenerates the paper's real-chip characterization
// results against the virtual modules: Table 1/Table 4 (-exp modules),
// Fig. 4 (-exp coverage), Fig. 5 (-exp nrh), Fig. 6 (-exp banks), and the
// §3/§4.2 latency arithmetic (-exp latency). Use -exp all for everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"hira"
)

var (
	exp     = flag.String("exp", "all", "experiment: latency|modules|coverage|nrh|banks|all")
	module  = flag.String("module", "C0", "module label for coverage/nrh/banks (A0..C2)")
	rowAs   = flag.Int("rowas", 48, "RowA sample size for coverage")
	rowBs   = flag.Int("rowbs", 512, "RowB candidate count for coverage")
	victims = flag.Int("victims", 24, "victim rows for RowHammer threshold studies")
	region  = flag.Int("region", 1024, "tested-region size per module characterization")
)

func pick(label string) hira.Module {
	for _, m := range append(hira.Modules(), hira.NonWorkingModules()...) {
		if m.Label == label {
			return m
		}
	}
	fmt.Fprintf(os.Stderr, "unknown module %q\n", label)
	os.Exit(2)
	return hira.Module{}
}

func latency() {
	t := hira.DDR4Timing(8)
	fmt.Println("== Latency of refreshing two rows (§3, §4.2) ==")
	fmt.Printf("conventional (tRAS+tRP+tRAS): %v\n", t.ConventionalPairLatency())
	fmt.Printf("HiRA (t1+t2+tRAS):            %v\n", t.HiRAPairLatency())
	fmt.Printf("reduction:                    %.1f%%  (paper: 51.4%%)\n", 100*t.HiRAPairSavings())
}

func modules() {
	fmt.Println("== Table 1 / Table 4: tested modules ==")
	fmt.Printf("%-4s %-10s %-5s %-4s  %-28s %-28s %s\n",
		"Mod", "Chip Mfr", "Cap", "Die", "HiRA coverage min/avg/max", "Norm NRH min/avg/max", "verified")
	opts := hira.CharacterizationOptions{RegionSize: *region, NRHVictims: *victims}
	for _, m := range hira.Modules() {
		r := hira.CharacterizeModule(m, opts)
		fmt.Printf("%-4s %-10s %2dGb  %-4s %6.1f%% /%6.1f%% /%6.1f%%    %5.2f /%5.2f /%5.2f          %v\n",
			m.Label, m.ChipMfr, m.CapGbit, m.DieRev,
			100*r.Coverage.Min, 100*r.Coverage.Mean, 100*r.Coverage.Max,
			r.NormNRH.Min, r.NormNRH.Mean, r.NormNRH.Max, r.HiRAWorks)
	}
	for _, m := range hira.NonWorkingModules() {
		r := hira.CharacterizeModule(m, opts)
		fmt.Printf("%-4s %-10s %2dGb  %-4s %28s    %-28s %v\n",
			m.Label, m.ChipMfr, m.CapGbit, m.DieRev, "(Alg.1 vacuous: cmds dropped)", "no threshold increase", r.HiRAWorks)
	}
	fmt.Println("paper: coverage avg 25.0-38.4%, norm NRH avg 1.88-1.96, SK Hynix only")
}

func coverage() {
	m := pick(*module)
	fmt.Printf("== Fig. 4: HiRA coverage vs (t1, t2) on %s ==\n", m.Label)
	fmt.Printf("%-8s %-8s %8s %8s %8s %8s %8s\n", "t1", "t2", "min", "q1", "median", "q3", "max")
	for _, r := range hira.CoverageSweep(m, *rowAs, *rowBs) {
		fmt.Printf("%-8v %-8v %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.T1, r.T2, 100*r.Summary.Min, 100*r.Summary.Q1,
			100*r.Summary.Median, 100*r.Summary.Q3, 100*r.Summary.Max)
	}
	fmt.Println("paper: ~32% average at t1=t2=3ns; zero-coverage rows at t1=1.5ns and t1=6ns")
}

func nrh() {
	m := pick(*module)
	fmt.Printf("== Fig. 5: RowHammer threshold with/without HiRA on %s ==\n", m.Label)
	s := hira.VerifySecondActivation(m, *victims)
	fmt.Printf("without HiRA: %v\n", s.Without)
	fmt.Printf("with HiRA:    %v\n", s.With)
	fmt.Printf("normalized:   %v\n", s.Normalized)
	fmt.Printf("fraction above 1.7x: %.1f%%  (paper: 88.1%%; averages 27.2K -> 51.0K, 1.9x)\n",
		100*s.FractionAbove1_7)
}

func banks() {
	m := pick(*module)
	fmt.Printf("== Fig. 6: normalized NRH across banks of %s ==\n", m.Label)
	for _, b := range hira.BankVariation(m, *victims/3+1) {
		fmt.Printf("bank %2d: %v\n", b.Bank, b.Normalized)
	}
	fmt.Println("paper: all banks above 1.56x, bank averages 1.80-1.97x")
}

func main() {
	flag.Parse()
	switch *exp {
	case "latency":
		latency()
	case "modules":
		modules()
	case "coverage":
		coverage()
	case "nrh":
		nrh()
	case "banks":
		banks()
	case "all":
		latency()
		fmt.Println()
		modules()
		fmt.Println()
		coverage()
		fmt.Println()
		nrh()
		fmt.Println()
		banks()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
