// Command hira-security regenerates Fig. 11: PARA's probability threshold
// (pth) under the paper's revisited security analysis (Expression 8) for
// every RowHammer threshold and tRefSlack, alongside PARA-Legacy's
// configuration and its actual success probability (Expression 9's k).
package main

import (
	"fmt"
	"os"

	"hira"
)

func main() {
	pts, err := hira.Fig11()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("== Fig. 11a: PARA probability threshold pth (target pRH = 1e-15) ==")
	fmt.Printf("%-6s %-10s %-10s %-10s %-12s %-8s\n",
		"NRH", "slack/tRC", "pth", "pthLegacy", "legacy pRH", "k")
	for _, p := range pts {
		fmt.Printf("%-6d %-10d %-10.4f %-10.4f %-12.3e %-8.4f\n",
			p.NRH, p.SlackTRC, p.Pth, p.LegacyPth, p.LegacyPRH, p.K)
	}
	fmt.Println()
	fmt.Println("paper anchors: pth 0.068@NRH=1024 to ~0.86@NRH=64 (slack 0);")
	fmt.Println("k = 1.0331 @ NRH=1024 and 1.3212 @ NRH=64; legacy misses the 1e-15 target")
}
