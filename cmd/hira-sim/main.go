// Command hira-sim regenerates the paper's system-level performance
// figures: Fig. 9 (periodic refresh vs chip capacity), Fig. 12 (PARA
// preventive refresh vs RowHammer threshold), and the §10 sensitivity
// sweeps Figs. 13-16 (channels/ranks). Scale with -workloads and -ticks;
// the paper's scale is -workloads 125 with much longer runs.
//
// Sweeps run on the parallel experiment engine: -parallel sizes the
// worker pool (results are bit-identical at any setting) and -results
// persists per-cell JSON results, so an interrupted or extended sweep
// only simulates the delta on the next run.
//
// Workloads are pluggable: by default sweeps run -workloads random
// multiprogrammed SPEC mixes, but -trace replays recorded access traces
// (see -record, which captures a benchmark's synthetic stream to a
// replayable trace file) and -workload-spec runs the experiment
// service's workloads object (named mixes over builtin benchmarks,
// inline custom profiles, and trace references) from a JSON file, so
// CLI and HTTP sweeps over the same workloads share engine cells.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"hira"
	"hira/internal/service"
	"hira/internal/workload"
)

var (
	exp        = flag.String("exp", "fig9", "experiment: fig9|fig12|fig13|fig14|fig15|fig16|attack")
	attacks    = flag.String("attacks", "", "comma-separated attacker presets for -exp attack (single,double,many,refsync,decoy; empty = all)")
	nrhs       = flag.String("nrhs", "", "comma-separated RowHammer thresholds for -exp attack (empty = builtin grid)")
	workloads  = flag.Int("workloads", 4, "number of multiprogrammed mixes")
	cores      = flag.Int("cores", 8, "cores per mix")
	ticks      = flag.Int("ticks", 120000, "measured memory-controller ticks per run")
	warmup     = flag.Int("warmup", 30000, "warmup ticks per run")
	seed       = flag.Uint64("seed", 1, "workload seed")
	parallel   = flag.Int("parallel", 0, "engine worker pool size (0 = one per CPU core)")
	results    = flag.String("results", "", "directory for per-cell JSON results (reused across runs)")
	snapIvl    = flag.Int("snap-interval", 0, "ticks between simulation checkpoints; rerunning with longer -ticks/-warmup then simulates only the delta (0 disables)")
	snapMax    = flag.Int64("snap-max-bytes", 0, "checkpoint store byte cap with oldest-first eviction (0 = 2 GiB on disk, 256 MiB in memory)")
	noPlanner  = flag.Bool("no-planner", false, "disable the trajectory-coalescing sweep planner (results are bit-identical; debugging escape hatch)")
	progress   = flag.Bool("progress", false, "print per-batch cell progress to stderr")
	forensics  = flag.Bool("forensics", false, "attach the RowHammer activation ledger; per-policy forensics summaries print after each table (and ride figure rows in -json)")
	forensicsR = flag.Bool("forensics-recorder", false, "arm the DRAM command flight recorder around top-threshold crossings (requires -forensics)")
	jsonOut    = flag.Bool("json", false, "emit figure rows as JSON (the experiment service's encoding)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile (post-sweep) to this file")

	record   = flag.String("record", "", "record a benchmark's synthetic access stream to this trace file and exit")
	recordWL = flag.String("record-workload", "mcf", "builtin benchmark to record (with -record)")
	recordN  = flag.Int("record-accesses", 200000, "accesses to record (with -record)")
	traces   = flag.String("trace", "", "comma-separated trace files replayed as the workload set (dealt round-robin across cores and mixes)")
	wlSpec   = flag.String("workload-spec", "", "JSON file with a service-style workloads object (mixes/profiles/traces)")
	traceDir = flag.String("trace-dir", ".", "directory trace references in -workload-spec resolve against")
)

// customMixes builds the explicit workload set from -trace or
// -workload-spec; nil means the builtin SPEC mixes.
func customMixes() ([]hira.WorkloadMix, error) {
	switch {
	case *traces != "" && *wlSpec != "":
		return nil, fmt.Errorf("-trace and -workload-spec are mutually exclusive")
	case *traces != "":
		if *workloads < 1 || *cores < 1 {
			return nil, fmt.Errorf("-workloads and -cores must be positive")
		}
		var srcs []hira.Workload
		for _, path := range strings.Split(*traces, ",") {
			tr, err := hira.LoadTrace(strings.TrimSpace(path))
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "trace %s: %d accesses, sha256:%s\n", tr.Label(), tr.Len(), tr.Digest())
			srcs = append(srcs, tr)
		}
		// The round-robin deal is the same rule clients use when they
		// expand a trace list into explicit service mixes, so both paths
		// produce identical engine cells.
		return hira.RoundRobinWorkloadMixes(srcs, *workloads, *cores), nil
	case *wlSpec != "":
		data, err := os.ReadFile(*wlSpec)
		if err != nil {
			return nil, err
		}
		var ws service.WorkloadsSpec
		if err := json.Unmarshal(data, &ws); err != nil {
			return nil, fmt.Errorf("%s: %w", *wlSpec, err)
		}
		if err := ws.Validate(service.Limits{}, *cores); err != nil {
			return nil, fmt.Errorf("%s: %w", *wlSpec, err)
		}
		return ws.Resolve(*traceDir)
	}
	return nil, nil
}

// recordTrace captures -record-accesses of the named builtin benchmark's
// stream (under -seed) into -record.
func recordTrace() error {
	p, err := workload.ProfileByName(*recordWL)
	if err != nil {
		return err
	}
	tr, err := workload.Record(filepath.Base(*record), p, *seed, *recordN)
	if err != nil {
		return err
	}
	if err := workload.WriteTraceFile(*record, tr.Accesses()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d accesses of %s (seed %d) to %s\nsha256:%s\n",
		tr.Len(), *recordWL, *seed, *record, tr.Digest())
	return nil
}

// engineStats accumulates cache/simulation tallies across the experiment.
var engineStats hira.EngineStats

// progressOpen tracks whether the \r progress line still needs a
// terminating newline (a batch that aborts never reaches done == total).
var progressOpen bool

func endProgressLine() {
	if progressOpen {
		fmt.Fprintln(os.Stderr)
		progressOpen = false
	}
}

// mixSet is the resolved -trace/-workload-spec workload set (nil for
// builtin mixes), computed once in run().
var mixSet []hira.WorkloadMix

func opts() hira.SimOptions {
	o := hira.SimOptions{
		Workloads: *workloads, Cores: *cores, Measure: *ticks, Warmup: *warmup, Seed: *seed,
		Mixes: mixSet, Parallelism: *parallel, ResultDir: *results, Stats: &engineStats,
		SnapInterval: *snapIvl, SnapMaxBytes: *snapMax,
		Forensics: *forensics, ForensicsRecorder: *forensicsR,
		NoPlanner: *noPlanner,
	}
	if *progress {
		o.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcells %d/%d", done, total)
			progressOpen = done != total
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return o
}

func names[T any](ws map[string]T) []string {
	out := make([]string, 0, len(ws))
	for n := range ws {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// forensicsBlock prints one sweep row's per-policy forensics summaries,
// prefixed with the row's x-axis label. No-op when the row carries none.
func forensicsBlock(label string, fx map[string]*hira.ForensicsSummary) {
	for _, n := range names(fx) {
		f := fx[n]
		t := f.Tally
		fmt.Printf("%s %-11s maxACT=%-6d cross%v=%v useful=%d wasted=%d periodic=%d piggyback=%d+%d",
			label, n, f.MaxInterrefACTs, f.Thresholds, t.Crossings[:len(f.Thresholds)],
			t.PreventiveUseful, t.PreventiveWasted, t.PeriodicRowRefreshes,
			t.PiggybackPreventive, t.PiggybackPeriodic)
		if len(f.Events) > 0 || f.DroppedEvents > 0 {
			fmt.Printf(" events=%d dropped=%d", len(f.Events), f.DroppedEvents)
		}
		fmt.Println()
	}
}

// forensicsSection prints the forensics blocks of a whole figure, one row
// per (x-axis point, policy); rows without forensics contribute nothing.
func forensicsSection(print func()) {
	if !*forensics {
		return
	}
	fmt.Println("\n== RowHammer forensics (measured phase, summed across mixes) ==")
	print()
}

func fig9(ctx context.Context) error {
	rows, err := hira.Fig9(ctx, opts(), nil)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 9a: weighted speedup normalized to No Refresh ==")
	hdr := names(rows[0].NormNoRefresh)
	fmt.Printf("%-8s", "cap")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%5dGb ", r.CapacityGbit)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormNoRefresh[n])
		}
		fmt.Println()
	}
	fmt.Println("\n== Fig. 9b: weighted speedup normalized to Baseline ==")
	for _, r := range rows {
		fmt.Printf("%5dGb ", r.CapacityGbit)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormBaseline[n])
		}
		fmt.Println()
	}
	fmt.Println("paper @128Gb: baseline 26.3% below No Refresh; HiRA-2 +12.6% over baseline")
	forensicsSection(func() {
		for _, r := range rows {
			forensicsBlock(fmt.Sprintf("%5dGb ", r.CapacityGbit), r.Forensics)
		}
	})
	return nil
}

func fig12(ctx context.Context) error {
	rows, err := hira.Fig12(ctx, opts(), nil)
	if err != nil {
		return err
	}
	hdr := names(rows[0].NormBaseline)
	fmt.Println("== Fig. 12a: weighted speedup normalized to Baseline (no defense) ==")
	fmt.Printf("%-8s", "NRH")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%7d ", r.NRH)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormBaseline[n])
		}
		fmt.Println()
	}
	fmt.Println("\n== Fig. 12b: weighted speedup normalized to PARA ==")
	for _, r := range rows {
		fmt.Printf("%7d ", r.NRH)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormPARA[n])
		}
		fmt.Println()
	}
	fmt.Println("paper @NRH=64: PARA 96% overhead; HiRA-4 3.73x over PARA")
	forensicsSection(func() {
		for _, r := range rows {
			forensicsBlock(fmt.Sprintf("%7d ", r.NRH), r.Forensics)
		}
	})
	return nil
}

func scale(rows []hira.ScaleRow, xName, pName string, err error) error {
	if err != nil {
		return err
	}
	hdr := names(rows[0].WS)
	fmt.Printf("%-6s %-8s", pName, xName)
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%6d %8d", r.Param, r.X)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.WS[n])
		}
		fmt.Println()
	}
	forensicsSection(func() {
		for _, r := range rows {
			forensicsBlock(fmt.Sprintf("%6d %8d", r.Param, r.X), r.Forensics)
		}
	})
	return nil
}

// attackList parses -attacks; nil means every builtin preset.
func attackList() []string {
	if *attacks == "" {
		return nil
	}
	return strings.Split(*attacks, ",")
}

// attackNRHs parses -nrhs; nil means the builtin grid
// (hira.AttackNRHValues).
func attackNRHs() ([]int, error) {
	if *nrhs == "" {
		return nil, nil
	}
	parts := strings.Split(*nrhs, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -nrhs value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func attackExp(ctx context.Context) error {
	grid, err := attackNRHs()
	if err != nil {
		return err
	}
	rows, err := hira.AttackSweep(ctx, opts(), attackList(), grid)
	if err != nil {
		return err
	}
	hdr := names(rows[0].WS)
	fmt.Println("== Attack x mitigation: weighted speedup normalized to Baseline (no defense) ==")
	fmt.Printf("%-9s %-6s", "attack", "NRH")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-9s %6d", r.Attack, r.NRH)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormBaseline[n])
		}
		fmt.Println()
	}
	// The sweep's deliverable: per-point efficacy. A policy defends the
	// point when no victim's exposure reaches NRH.
	fmt.Println("\n== Mitigation efficacy: max victim exposure (! = reached NRH, attack succeeded) ==")
	fmt.Printf("%-9s %-6s", "attack", "NRH")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-9s %6d", r.Attack, r.NRH)
		for _, n := range hdr {
			fx := r.Forensics[n]
			if fx == nil {
				fmt.Printf("%11s", "-")
				continue
			}
			mark := " "
			if fx.MaxVictimExposure >= uint32(r.NRH) {
				mark = "!"
			}
			fmt.Printf("%10d%s", fx.MaxVictimExposure, mark)
		}
		fmt.Println()
	}
	forensicsSection(func() {
		for _, r := range rows {
			forensicsBlock(fmt.Sprintf("%-9s %6d", r.Attack, r.NRH), r.Forensics)
		}
	})
	return nil
}

func main() {
	flag.Parse()
	// run does the work so deferred profile flushes survive error exits
	// (os.Exit would skip them and leave a truncated CPU profile).
	os.Exit(run())
}

func run() int {
	if *exp != "attack" && (*attacks != "" || *nrhs != "") {
		fmt.Fprintln(os.Stderr, "-attacks and -nrhs only apply to -exp attack")
		return 2
	}
	if *record != "" {
		if err := recordTrace(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *forensicsR && !*forensics {
		fmt.Fprintln(os.Stderr, "-forensics-recorder requires -forensics")
		return 2
	}
	var err error
	if mixSet, err = customMixes(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	// Ctrl-C cancels the sweep through the engine's context, stopping
	// in-flight cells promptly; the result store stays consistent, so a
	// re-run with the same -results picks up where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *jsonOut {
		var res *hira.FigureResult
		var err error
		if *exp == "attack" && (*attacks != "" || *nrhs != "") {
			// The Figure dispatcher runs every preset over the builtin
			// grid; an explicit -attacks/-nrhs list needs the direct call.
			var rows []hira.AttackRow
			var grid []int
			if grid, err = attackNRHs(); err == nil {
				rows, err = hira.AttackSweep(ctx, opts(), attackList(), grid)
			}
			if err == nil {
				res = &hira.FigureResult{Kind: "attack", Attack: rows}
				if st := opts().Stats; st != nil {
					res.Stats = *st
				}
			}
		} else {
			res, err = hira.Figure(ctx, *exp, opts(), nil, nil)
		}
		endProgressLine()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	switch *exp {
	case "fig9":
		err = fig9(ctx)
	case "fig12":
		err = fig12(ctx)
	case "fig13":
		fmt.Println("== Fig. 13: channel sweep, periodic refresh (absolute WS) ==")
		rows, e := hira.Fig13(ctx, opts(), nil, nil)
		err = scale(rows, "chans", "capGb", e)
	case "fig14":
		fmt.Println("== Fig. 14: rank sweep, periodic refresh (absolute WS) ==")
		rows, e := hira.Fig14(ctx, opts(), nil, nil)
		err = scale(rows, "ranks", "capGb", e)
	case "fig15":
		fmt.Println("== Fig. 15: channel sweep, PARA (absolute WS) ==")
		rows, e := hira.Fig15(ctx, opts(), nil, nil)
		err = scale(rows, "chans", "NRH", e)
	case "fig16":
		fmt.Println("== Fig. 16: rank sweep, PARA (absolute WS) ==")
		rows, e := hira.Fig16(ctx, opts(), nil, nil)
		err = scale(rows, "ranks", "NRH", e)
	case "attack":
		err = attackExp(ctx)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	endProgressLine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "engine: %d cells (%d simulated of which %d resumed, %d cache hits, %d store hits, %d deduped)\n",
		engineStats.Submitted, engineStats.Simulated, engineStats.Resumed,
		engineStats.CacheHits, engineStats.StoreHits, engineStats.Deduped)
	if engineStats.StoreErrors > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d cell results could not be persisted to -results %s (%s)\n",
			engineStats.StoreErrors, *results, engineStats.FirstStoreError)
	}
	return 0
}
