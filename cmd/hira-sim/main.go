// Command hira-sim regenerates the paper's system-level performance
// figures: Fig. 9 (periodic refresh vs chip capacity), Fig. 12 (PARA
// preventive refresh vs RowHammer threshold), and the §10 sensitivity
// sweeps Figs. 13-16 (channels/ranks). Scale with -workloads and -ticks;
// the paper's scale is -workloads 125 with much longer runs.
//
// Sweeps run on the parallel experiment engine: -parallel sizes the
// worker pool (results are bit-identical at any setting) and -results
// persists per-cell JSON results, so an interrupted or extended sweep
// only simulates the delta on the next run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"

	"hira"
)

var (
	exp        = flag.String("exp", "fig9", "experiment: fig9|fig12|fig13|fig14|fig15|fig16")
	workloads  = flag.Int("workloads", 4, "number of 8-core multiprogrammed mixes")
	ticks      = flag.Int("ticks", 120000, "measured memory-controller ticks per run")
	warmup     = flag.Int("warmup", 30000, "warmup ticks per run")
	seed       = flag.Uint64("seed", 1, "workload seed")
	parallel   = flag.Int("parallel", 0, "engine worker pool size (0 = one per CPU core)")
	results    = flag.String("results", "", "directory for per-cell JSON results (reused across runs)")
	progress   = flag.Bool("progress", false, "print per-batch cell progress to stderr")
	jsonOut    = flag.Bool("json", false, "emit figure rows as JSON (the experiment service's encoding)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile (post-sweep) to this file")
)

// engineStats accumulates cache/simulation tallies across the experiment.
var engineStats hira.EngineStats

// progressOpen tracks whether the \r progress line still needs a
// terminating newline (a batch that aborts never reaches done == total).
var progressOpen bool

func endProgressLine() {
	if progressOpen {
		fmt.Fprintln(os.Stderr)
		progressOpen = false
	}
}

func opts() hira.SimOptions {
	o := hira.SimOptions{
		Workloads: *workloads, Measure: *ticks, Warmup: *warmup, Seed: *seed,
		Parallelism: *parallel, ResultDir: *results, Stats: &engineStats,
	}
	if *progress {
		o.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcells %d/%d", done, total)
			progressOpen = done != total
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return o
}

func names(ws map[string]float64) []string {
	out := make([]string, 0, len(ws))
	for n := range ws {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func fig9(ctx context.Context) error {
	rows, err := hira.Fig9(ctx, opts(), nil)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 9a: weighted speedup normalized to No Refresh ==")
	hdr := names(rows[0].NormNoRefresh)
	fmt.Printf("%-8s", "cap")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%5dGb ", r.CapacityGbit)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormNoRefresh[n])
		}
		fmt.Println()
	}
	fmt.Println("\n== Fig. 9b: weighted speedup normalized to Baseline ==")
	for _, r := range rows {
		fmt.Printf("%5dGb ", r.CapacityGbit)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormBaseline[n])
		}
		fmt.Println()
	}
	fmt.Println("paper @128Gb: baseline 26.3% below No Refresh; HiRA-2 +12.6% over baseline")
	return nil
}

func fig12(ctx context.Context) error {
	rows, err := hira.Fig12(ctx, opts(), nil)
	if err != nil {
		return err
	}
	hdr := names(rows[0].NormBaseline)
	fmt.Println("== Fig. 12a: weighted speedup normalized to Baseline (no defense) ==")
	fmt.Printf("%-8s", "NRH")
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%7d ", r.NRH)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormBaseline[n])
		}
		fmt.Println()
	}
	fmt.Println("\n== Fig. 12b: weighted speedup normalized to PARA ==")
	for _, r := range rows {
		fmt.Printf("%7d ", r.NRH)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.NormPARA[n])
		}
		fmt.Println()
	}
	fmt.Println("paper @NRH=64: PARA 96% overhead; HiRA-4 3.73x over PARA")
	return nil
}

func scale(rows []hira.ScaleRow, xName, pName string, err error) error {
	if err != nil {
		return err
	}
	hdr := names(rows[0].WS)
	fmt.Printf("%-6s %-8s", pName, xName)
	for _, n := range hdr {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%6d %8d", r.Param, r.X)
		for _, n := range hdr {
			fmt.Printf("%11.3f", r.WS[n])
		}
		fmt.Println()
	}
	return nil
}

func main() {
	flag.Parse()
	// run does the work so deferred profile flushes survive error exits
	// (os.Exit would skip them and leave a truncated CPU profile).
	os.Exit(run())
}

func run() int {
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	// Ctrl-C cancels the sweep through the engine's context, stopping
	// in-flight cells promptly; the result store stays consistent, so a
	// re-run with the same -results picks up where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *jsonOut {
		res, err := hira.Figure(ctx, *exp, opts(), nil, nil)
		endProgressLine()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	var err error
	switch *exp {
	case "fig9":
		err = fig9(ctx)
	case "fig12":
		err = fig12(ctx)
	case "fig13":
		fmt.Println("== Fig. 13: channel sweep, periodic refresh (absolute WS) ==")
		rows, e := hira.Fig13(ctx, opts(), nil, nil)
		err = scale(rows, "chans", "capGb", e)
	case "fig14":
		fmt.Println("== Fig. 14: rank sweep, periodic refresh (absolute WS) ==")
		rows, e := hira.Fig14(ctx, opts(), nil, nil)
		err = scale(rows, "ranks", "capGb", e)
	case "fig15":
		fmt.Println("== Fig. 15: channel sweep, PARA (absolute WS) ==")
		rows, e := hira.Fig15(ctx, opts(), nil, nil)
		err = scale(rows, "chans", "NRH", e)
	case "fig16":
		fmt.Println("== Fig. 16: rank sweep, PARA (absolute WS) ==")
		rows, e := hira.Fig16(ctx, opts(), nil, nil)
		err = scale(rows, "ranks", "NRH", e)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	endProgressLine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "engine: %d cells (%d simulated, %d cache hits, %d store hits, %d deduped)\n",
		engineStats.Submitted, engineStats.Simulated, engineStats.CacheHits,
		engineStats.StoreHits, engineStats.Deduped)
	if engineStats.StoreErrors > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d cell results could not be persisted to -results %s (%s)\n",
			engineStats.StoreErrors, *results, engineStats.FirstStoreError)
	}
	return 0
}
