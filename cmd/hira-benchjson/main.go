// Command hira-benchjson converts a `go test -json -bench ...` event
// stream (stdin) into a compact JSON benchmark report (stdout): one
// record per benchmark with its iteration count, ns/op, and every custom
// metric (speedup, cmds/tick, allocs/op, ...). CI pipes the bench job
// through it to publish BENCH_pr2.json, the start of the repo's recorded
// performance trajectory.
//
//	go test -run '^$' -bench 'Fig9Periodic|ControllerSteadyState' \
//	    -benchtime=1x -json . ./internal/sched | hira-benchjson > BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// testEvent is the subset of test2json's event schema we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// result is one benchmark's parsed outcome.
type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBenchLine parses a benchmark result line like
//
//	BenchmarkFoo-8   	     123	  45678 ns/op	   2.5 speedup	  0 allocs/op
//
// returning ok=false for non-benchmark output.
func parseBenchLine(pkg, line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Package:    pkg,
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashSuffix(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// lastDashSuffix returns the GOMAXPROCS suffix of a benchmark name
// ("BenchmarkFoo-8" -> "8"), or "" if none.
func lastDashSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[i+1:]
		}
	}
	return ""
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []result{}
	// test2json splits a benchmark's result across output events (the
	// name flushes before the timed numbers), so output is re-assembled
	// into lines per (package, test) stream before parsing.
	partial := map[string]string{}
	for sc.Scan() {
		line := sc.Bytes()
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain `go test -bench` output too.
			if r, ok := parseBenchLine("", strings.TrimSpace(string(line))); ok {
				results = append(results, r)
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "/" + ev.Test
		buf := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			if r, ok := parseBenchLine(ev.Package, strings.TrimSpace(buf[:nl])); ok {
				results = append(results, r)
			}
			buf = buf[nl+1:]
		}
		partial[key] = buf
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
