// Command hira-client submits one experiment job to a hira-server,
// streams its progress, and prints the result JSON in the same encoding
// `hira-sim -json` emits for the same figure, so the two diff cleanly
// (row data always matches; the engine_stats block reflects how each
// run's cells were resolved).
//
// Examples:
//
//	hira-client -server http://localhost:8080 -exp fig9
//	hira-client -exp fig12 -nrhs 64,256 -workloads 8 -ticks 240000
//	hira-client -exp fig9 -traces t1.trace        (trace in the server's -traces dir)
//	hira-client -exp fig9 -workload-spec my.json  (full workloads object)
//	hira-client -exp area
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"hira/internal/service"
	"hira/internal/workload"
)

var (
	server            = flag.String("server", "http://localhost:8080", "hira-server base URL")
	exp               = flag.String("exp", "fig9", "job kind: fig9|fig12|fig13|fig14|fig15|fig16|attack|characterize|security|area")
	attacks           = flag.String("attacks", "", "comma-separated attacker presets for -exp attack (single,double,many,refsync,decoy; empty = all)")
	workloads         = flag.Int("workloads", 0, "mixes per sweep point (0 = server default)")
	cores             = flag.Int("cores", 0, "cores per mix (0 = server default)")
	ticks             = flag.Int("ticks", 0, "measured ticks per run (0 = server default)")
	warmup            = flag.Int("warmup", 0, "warmup ticks per run (0 = server default)")
	seed              = flag.Uint64("seed", 0, "workload seed (0 = server default)")
	traces            = flag.String("traces", "", "comma-separated trace file names in the server's trace directory, dealt round-robin across cores and mixes (hira-sim -trace's rule)")
	wlSpec            = flag.String("workload-spec", "", "JSON file with a workloads object (mixes/profiles/traces), sent inline")
	caps              = flag.String("capacities", "", "comma-separated chip capacities in Gbit (fig9/13/14)")
	nrhs              = flag.String("nrhs", "", "comma-separated RowHammer thresholds (fig12/15/16)")
	xs                = flag.String("xs", "", "comma-separated channel/rank axis (fig13-16)")
	timeout           = flag.Float64("timeout", 0, "server-side wall-clock deadline for the job in seconds (0 = none)")
	forensics         = flag.Bool("forensics", false, "attach the RowHammer forensics ledger; fetch the report at /v1/jobs/{id}/forensics")
	forensicsR        = flag.Bool("forensics-recorder", false, "arm the DRAM command flight recorder (requires -forensics)")
	progress          = flag.Bool("progress", false, "print cell progress to stderr")
	cancelOnInterrupt = flag.Bool("cancel-on-interrupt", true, "Ctrl-C cancels the submitted job server-side")
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad grid value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	flag.Parse()
	os.Exit(run())
}

// workloadsObject builds the spec's workloads block from -traces or
// -workload-spec. The returned core count (non-zero only for -traces)
// is the mix width the expansion assumed; the caller pins it into the
// spec's sim block so the request stays self-consistent even if the
// server's default core count ever changes.
func workloadsObject() (*service.WorkloadsSpec, int, error) {
	switch {
	case *traces != "" && *wlSpec != "":
		return nil, 0, fmt.Errorf("-traces and -workload-spec are mutually exclusive")
	case *traces != "":
		// Expand the trace list with the same round-robin deal hira-sim
		// uses for -trace (workload.RoundRobinNames shares the index rule
		// with RoundRobinMixes), so CLI and service sweeps over the same
		// traces produce identical engine cells. Generated names are
		// index-only ("t0", "t1", ...) — display labels, independent of
		// the file names; identity is the content digest.
		n, c := *workloads, *cores
		if n < 0 || c < 0 {
			return nil, 0, fmt.Errorf("-workloads and -cores must be positive")
		}
		if n == 0 {
			n = 4
		}
		if c == 0 {
			c = 8
		}
		ws := &service.WorkloadsSpec{}
		var names []string
		for _, f := range strings.Split(*traces, ",") {
			name := fmt.Sprintf("t%d", len(names))
			ws.Traces = append(ws.Traces, service.TraceSpec{Name: name, File: strings.TrimSpace(f)})
			names = append(names, name)
		}
		ws.Mixes = workload.RoundRobinNames(names, n, c)
		return ws, c, nil
	case *wlSpec != "":
		data, err := os.ReadFile(*wlSpec)
		if err != nil {
			return nil, 0, err
		}
		ws := &service.WorkloadsSpec{}
		if err := json.Unmarshal(data, ws); err != nil {
			return nil, 0, fmt.Errorf("%s: %w", *wlSpec, err)
		}
		return ws, 0, nil
	}
	return nil, 0, nil
}

func run() int {
	spec := service.JobSpec{Kind: *exp, TimeoutSeconds: *timeout}
	if *workloads != 0 || *cores != 0 || *ticks != 0 || *warmup != 0 || *seed != 0 || *forensics {
		spec.Sim = &service.SimSpec{
			Workloads: *workloads, Cores: *cores, Measure: *ticks, Warmup: *warmup, Seed: *seed,
			Forensics: *forensics, ForensicsRecorder: *forensicsR,
		}
	}
	ws, assumedCores, err := workloadsObject()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	spec.Workloads = ws
	if assumedCores != 0 {
		if spec.Sim == nil {
			spec.Sim = &service.SimSpec{}
		}
		spec.Sim.Cores = assumedCores
	}
	if spec.Capacities, err = parseInts(*caps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if spec.NRHs, err = parseInts(*nrhs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if spec.Xs, err = parseInts(*xs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *attacks != "" {
		spec.Attacks = strings.Split(*attacks, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	c := service.NewClient(*server)
	job, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	id := job.ID
	fmt.Fprintf(os.Stderr, "job %s %s\n", id, job.State)

	var onProgress func(p service.Progress)
	if *progress {
		onProgress = func(p service.Progress) {
			line := fmt.Sprintf("\rcells %d/%d", p.Done, p.Total)
			if hits := p.CacheHits + p.StoreHits; hits > 0 || p.Simulated > 0 {
				line += fmt.Sprintf(" (%d simulated, %d cached)", p.Simulated, hits)
			}
			if p.Resumed > 0 {
				line += fmt.Sprintf(", %d resumed sparing %d ticks", p.Resumed, p.ResumedTicks)
			}
			fmt.Fprint(os.Stderr, line)
		}
	}
	job, err = c.WaitProgress(ctx, id, onProgress)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		if ctx.Err() != nil && *cancelOnInterrupt {
			// Best-effort server-side cancel so the sweep stops
			// simulating. Release the signal handler first (a second
			// Ctrl-C then kills us) and bound the call, in case the
			// interrupt was prompted by a hung server.
			stop()
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if cerr := c.Cancel(cctx, id); cerr != nil {
				fmt.Fprintf(os.Stderr, "interrupted; cancel of job %s failed: %v\n", id, cerr)
			} else {
				fmt.Fprintf(os.Stderr, "interrupted; cancelled job %s\n", id)
			}
			return 1
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	switch job.State {
	case service.StateDone:
		// Re-indent to the exact bytes `hira-sim -json` prints, so the
		// two outputs diff cleanly.
		var buf bytes.Buffer
		if err := json.Indent(&buf, job.Result, "", "  "); err != nil {
			buf.Write(job.Result)
		}
		fmt.Println(buf.String())
		if job.Stats != nil {
			fmt.Fprintf(os.Stderr, "engine: %d cells (%d simulated, %d cache hits, %d store hits, %d deduped)\n",
				job.Stats.Submitted, job.Stats.Simulated, job.Stats.CacheHits,
				job.Stats.StoreHits, job.Stats.Deduped)
			if job.Stats.Resumed > 0 {
				fmt.Fprintf(os.Stderr, "resume: %d cells resumed from checkpoints, sparing %d simulation ticks\n",
					job.Stats.Resumed, job.Stats.ResumedTicks)
			}
		}
		if rep, err := c.Stats(ctx); err == nil && rep.Snapshots != nil {
			s := rep.Snapshots
			fmt.Fprintf(os.Stderr, "snapshots: %d hits, %d misses, %d saved, %d evicted (%d entries, %d bytes)\n",
				s.Hits, s.Misses, s.Saves, s.Evictions, s.Entries, s.Bytes)
		}
		return 0
	case service.StateCancelled:
		fmt.Fprintf(os.Stderr, "job %s cancelled\n", job.ID)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "job %s failed: %s\n", job.ID, job.Error)
		return 1
	}
}
