// Command hira-server serves the paper's experiments as an HTTP job
// service. Clients POST job specs — figure sweeps with arbitrary
// capacity/NRH/channel grids, direct policy evaluations,
// characterization, security-analysis, and area-model runs — and the
// server executes them on a bounded scheduler over one shared experiment
// engine, so concurrent clients asking overlapping questions share
// simulations instead of repeating them. Pair with -results to make the
// cell store durable across restarts.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job spec, returns the queued job
//	GET    /v1/jobs             list jobs (results elided)
//	GET    /v1/jobs/{id}        job status; result once done
//	GET    /v1/jobs/{id}/stream server-sent events: progress + final state
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  per-job span timeline (?format=chrome for chrome://tracing)
//	GET    /v1/stats            shared-engine tallies and job counts
//	GET    /healthz             liveness (also /v1/healthz)
//	GET    /readyz              readiness: degraded stores, saturated queue, shutdown
//	GET    /metrics             Prometheus exposition of engine/store/job metrics
//
// Pair with -journal to make live jobs durable: a server restarted over
// the same journal re-validates and re-enqueues every job that was
// queued or running when it died, and (with -results) those jobs resume
// from the warm result and checkpoint stores instead of starting over.
//
// The -faults flag (or HIRA_FAULTS) arms deterministic storage-fault
// injection for chaos drills: comma-separated site:kind[:prob[:count]]
// rules, e.g. "store.write:enospc" or "snap.read:corrupt:0.5". See
// internal/fault for sites and kinds. Injection only corrupts what the
// process reads or writes through the armed sites — never data at rest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"time"

	"hira/internal/fault"
	"hira/internal/service"
	"hira/internal/sim"
	"hira/internal/telemetry"
)

var (
	addr      = flag.String("addr", ":8080", "listen address")
	results   = flag.String("results", "", "content-addressed cell store directory (durable across restarts)")
	parallel  = flag.Int("parallel", 0, "max concurrent cell simulations across all jobs (0 = one per CPU core)")
	workers   = flag.Int("workers", 2, "max concurrently executing jobs")
	queue     = flag.Int("queue", 64, "max queued jobs before submissions get 503")
	traceDir  = flag.String("traces", "", "directory of recorded trace files job specs may reference (empty rejects trace workloads)")
	snapIvl   = flag.Int("snap-interval", 10000, "ticks between simulation checkpoints; resubmitting a sweep with longer horizons then simulates only the delta (0 disables; differential checkpoints keep fine intervals cheap)")
	noPlanner = flag.Bool("no-planner", false, "disable the trajectory-coalescing sweep planner engine-wide (results are bit-identical; debugging escape hatch)")
	snapMax   = flag.Int64("snap-max-bytes", 0, "checkpoint store byte cap with oldest-first eviction (0 = 2 GiB on disk, 256 MiB in memory)")
	journal   = flag.String("journal", "", "durable live-job journal file; restarted servers re-enqueue interrupted jobs from it")
	faults    = flag.String("faults", "", "storage fault-injection rules, comma-separated site:kind[:prob[:count]] (env HIRA_FAULTS)")
	faultSeed = flag.Uint64("fault-seed", 1, "seed for probabilistic fault rules (env HIRA_FAULT_SEED)")
	pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	quiet     = flag.Bool("quiet", false, "suppress structured job lifecycle logs on stderr")
)

// faultFS builds the fault-injection seam from -faults/-fault-seed,
// falling back to the HIRA_FAULTS / HIRA_FAULT_SEED environment (so CI
// chaos jobs can arm a stock binary without touching its argv). Returns
// nil — the plain OS filesystem — when no rules are armed.
func faultFS() (fault.FS, error) {
	spec := *faults
	if spec == "" {
		spec = os.Getenv("HIRA_FAULTS")
	}
	if spec == "" {
		return nil, nil
	}
	seed := *faultSeed
	if env := os.Getenv("HIRA_FAULT_SEED"); env != "" && *faultSeed == 1 {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("HIRA_FAULT_SEED: %v", err)
		}
		seed = v
	}
	inj, err := fault.Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	if inj == nil {
		return nil, nil
	}
	fmt.Fprintf(os.Stderr, "fault injection armed: %s (seed %d)\n", spec, seed)
	return inj, nil
}

func main() {
	flag.Parse()
	os.Exit(run())
}

func run() int {
	reg := telemetry.NewRegistry()
	reg.RegisterProcessMetrics()
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	fsys, err := faultFS()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	svc := service.New(service.Config{
		Engine: sim.EngineConfig{
			Parallelism:  *parallel,
			ResultDir:    *results,
			SnapInterval: *snapIvl,
			SnapMaxBytes: *snapMax,
			FS:           fsys,
			NoPlanner:    *noPlanner,
		},
		Workers:     *workers,
		QueueDepth:  *queue,
		TraceDir:    *traceDir,
		JournalPath: *journal,
		Telemetry:   reg,
		Logger:      logger,
	})
	defer svc.Close()

	handler := svc.Handler()
	if *pprofFlag {
		// Profiling rides an outer mux so the service API stays unaware
		// of it: /debug/pprof/ only exists when explicitly enabled.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hira-server listening on %s (workers=%d, parallel=%d, store=%q)\n",
		*addr, *workers, svc.Engine().Parallelism(), *results)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down")
		// Finalize jobs first: running jobs cancel and every open SSE
		// stream receives its terminal event and returns, so Shutdown's
		// wait for active connections completes promptly instead of
		// timing out against handlers pinned to still-running jobs.
		svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}
	return 0
}
