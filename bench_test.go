// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations over the design choices DESIGN.md calls out.
//
// Each benchmark regenerates its experiment at a reduced, laptop-scale
// size and reports the experiment's headline quantity through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a smoke
// reproduction; the cmd/ binaries run the same experiments at larger
// scales. EXPERIMENTS.md records paper-vs-measured values.
package hira_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"hira"
)

// quickSim keeps per-iteration simulation cost low for benchmarks.
func quickSim() hira.SimOptions {
	return hira.SimOptions{Workloads: 2, Measure: 40000, Warmup: 10000, Seed: 1}
}

// BenchmarkLatencyTwoRowRefresh regenerates the §3/§4.2 latency claim:
// HiRA refreshes two rows in 38ns instead of 78.25ns (51.4% less).
func BenchmarkLatencyTwoRowRefresh(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		savings = hira.PairLatencySavings()
	}
	b.ReportMetric(100*savings, "%savings")
}

// BenchmarkTable1Modules regenerates one row of Table 1/Table 4: module
// characterization (coverage + normalized NRH) on module C0.
func BenchmarkTable1Modules(b *testing.B) {
	m := hira.Modules()[4]
	opts := hira.CharacterizationOptions{RegionSize: 512, NRHVictims: 8}
	var res hira.ModuleResult
	for i := 0; i < b.N; i++ {
		res = hira.CharacterizeModule(m, opts)
	}
	b.ReportMetric(100*res.Coverage.Mean, "%coverage")
	b.ReportMetric(res.NormNRH.Mean, "normNRH")
}

// BenchmarkFig4Coverage regenerates Fig. 4's central cell: the coverage
// distribution sweep over the (t1, t2) grid.
func BenchmarkFig4Coverage(b *testing.B) {
	m := hira.Modules()[4]
	var res []hira.CoverageResult
	for i := 0; i < b.N; i++ {
		res = hira.CoverageSweep(m, 8, 96)
	}
	// Index 5 is (t1=3ns, t2=3ns), the paper's operating point.
	b.ReportMetric(100*res[5].Summary.Mean, "%cov@3ns")
}

// BenchmarkFig5Threshold regenerates Fig. 5: RowHammer thresholds with
// and without HiRA's mid-hammer refresh.
func BenchmarkFig5Threshold(b *testing.B) {
	m := hira.Modules()[4]
	var s hira.NRHStudy
	for i := 0; i < b.N; i++ {
		s = hira.VerifySecondActivation(m, 8)
	}
	b.ReportMetric(s.Normalized.Mean, "normNRH")
	b.ReportMetric(s.Without.Mean, "absNRH")
}

// BenchmarkFig6Banks regenerates Fig. 6: per-bank normalized thresholds.
func BenchmarkFig6Banks(b *testing.B) {
	m := hira.Modules()[0]
	var banks []hira.BankResult
	for i := 0; i < b.N; i++ {
		banks = hira.BankVariation(m, 2)
	}
	lo, hi := banks[0].Normalized.Mean, banks[0].Normalized.Mean
	for _, bk := range banks {
		if bk.Normalized.Mean < lo {
			lo = bk.Normalized.Mean
		}
		if bk.Normalized.Mean > hi {
			hi = bk.Normalized.Mean
		}
	}
	b.ReportMetric(lo, "minBank")
	b.ReportMetric(hi, "maxBank")
}

// BenchmarkTable2Area regenerates Table 2: HiRA-MC's area and query
// latency.
func BenchmarkTable2Area(b *testing.B) {
	var r hira.AreaReport
	for i := 0; i < b.N; i++ {
		r = hira.Area()
	}
	b.ReportMetric(r.TotalAreaMM2*1000, "mm2*1e-3")
	b.ReportMetric(r.QueryLatencyNS, "query-ns")
}

// BenchmarkFig9Periodic regenerates Fig. 9's endpoints: periodic-refresh
// performance at 8Gb and 128Gb.
func BenchmarkFig9Periodic(b *testing.B) {
	var rows []hira.Fig9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig9(context.Background(), quickSim(), []int{8, 128})
		if err != nil {
			b.Fatal(err)
		}
	}
	hi := rows[1]
	b.ReportMetric(hi.NormNoRefresh["Baseline"], "base/noref@128Gb")
	b.ReportMetric(hi.NormBaseline["HiRA-2"], "hira2/base@128Gb")
}

// BenchmarkFig9PeriodicForensics is BenchmarkFig9Periodic with the
// RowHammer forensics ledger attached to every cell: its ns/op against
// the plain run is the sweep-level forensics overhead (the figures
// themselves are bit-identical either way), and the headline metrics
// must match BenchmarkFig9Periodic's exactly.
func BenchmarkFig9PeriodicForensics(b *testing.B) {
	opts := quickSim()
	opts.Forensics = true
	var rows []hira.Fig9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig9(context.Background(), opts, []int{8, 128})
		if err != nil {
			b.Fatal(err)
		}
	}
	hi := rows[1]
	b.ReportMetric(hi.NormNoRefresh["Baseline"], "base/noref@128Gb")
	b.ReportMetric(hi.NormBaseline["HiRA-2"], "hira2/base@128Gb")
	fx := hi.Forensics["HiRA-2"]
	if fx == nil {
		b.Fatal("no forensics on the 128Gb HiRA-2 row")
	}
	b.ReportMetric(float64(fx.MaxInterrefACTs), "max-interref-acts")
}

// BenchmarkEngineFig9Parallel measures the experiment engine's parallel
// speedup on a Fig. 9-shaped weighted-speedup sweep: a serial
// (Parallelism 1) reference is timed once, the benchmark loop runs the
// same sweep on a full worker pool, and the ratio is reported as speedup
// plus per-core parallel efficiency. Results are bit-identical between
// the two (see internal/engine's TestEngineDeterminism); this tracks
// only the wall-clock win.
var engineFig9Serial struct {
	sync.Once
	dur time.Duration
	err error
}

func BenchmarkEngineFig9Parallel(b *testing.B) {
	caps := []int{8, 128}
	workers := runtime.GOMAXPROCS(0)
	par := quickSim()
	par.Parallelism = workers

	// The serial reference is timed once per test binary; the calibration
	// re-invocations the benchmark runner makes reuse it.
	engineFig9Serial.Do(func() {
		serial := quickSim()
		serial.Parallelism = 1
		start := time.Now()
		_, engineFig9Serial.err = hira.Fig9(context.Background(), serial, caps)
		engineFig9Serial.dur = time.Since(start)
	})
	if engineFig9Serial.err != nil {
		b.Fatal(engineFig9Serial.err)
	}
	serialDur := engineFig9Serial.dur

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hira.Fig9(context.Background(), par, caps); err != nil {
			b.Fatal(err)
		}
	}
	parDur := b.Elapsed() / time.Duration(b.N)
	speedup := serialDur.Seconds() / parDur.Seconds()
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(speedup/float64(workers), "efficiency")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkResumeExtend measures the resumable-cell win: a sweep is run
// to N ticks cold, then extended to 2N on the warm checkpoint store, and
// that extension is compared against running the 2N sweep cold. With a
// checkpoint at N, the extension simulates only the ~N-tick delta per
// cell, so the speedup approaches 2x (alone-IPC reference cells are
// horizon-keyed and rerun in both, which is the gap to the ideal).
func BenchmarkResumeExtend(b *testing.B) {
	ctx := context.Background()
	base := hira.DefaultSystemConfig()
	policies := []hira.RefreshPolicy{hira.BaselinePolicy(), hira.HiRAPeriodicPolicy(2)}
	short := hira.SimOptions{Workloads: 2, Cores: 8, Warmup: 25000, Measure: 275000, Seed: 1}
	long := short
	long.Measure = 2*short.Measure + short.Warmup // extend total N -> 2N
	const interval = 100000

	var speedup, resumedFrac float64
	for i := 0; i < b.N; i++ {
		// Cold 2N reference on a fresh engine.
		coldEng := hira.NewSimEngine(hira.SimEngineConfig{SnapInterval: interval})
		start := time.Now()
		if _, err := coldEng.RunPolicies(ctx, base, policies, long); err != nil {
			b.Fatal(err)
		}
		coldDur := time.Since(start)

		// Warm path: run N, then extend to 2N on the same engine.
		warmEng := hira.NewSimEngine(hira.SimEngineConfig{SnapInterval: interval})
		if _, err := warmEng.RunPolicies(ctx, base, policies, short); err != nil {
			b.Fatal(err)
		}
		var stats hira.EngineStats
		extOpts := long
		extOpts.Stats = &stats
		start = time.Now()
		if _, err := warmEng.RunPolicies(ctx, base, policies, extOpts); err != nil {
			b.Fatal(err)
		}
		warmDur := time.Since(start)

		speedup = coldDur.Seconds() / warmDur.Seconds()
		if stats.Simulated > 0 {
			resumedFrac = float64(stats.Resumed) / float64(stats.Simulated)
		}
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(resumedFrac, "resumed/simulated")
}

// BenchmarkFig11Security regenerates Fig. 11: the full pth grid.
func BenchmarkFig11Security(b *testing.B) {
	var pts []hira.Fig11Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = hira.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Pth, "pth@64")
	b.ReportMetric(pts[len(pts)-4].Pth, "pth@1024")
}

// BenchmarkFig12PARA regenerates Fig. 12's headline: HiRA's speedup over
// PARA at low RowHammer thresholds.
func BenchmarkFig12PARA(b *testing.B) {
	var rows []hira.Fig12Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig12(context.Background(), quickSim(), []int{64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].NormBaseline["PARA"], "para/base@64")
	b.ReportMetric(rows[0].NormPARA["HiRA-4"], "hira4/para@64")
}

// BenchmarkFig13Channels regenerates Fig. 13 at 32Gb for 1 and 4 channels.
func BenchmarkFig13Channels(b *testing.B) {
	var rows []hira.ScaleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig13(context.Background(), quickSim(), []int{1, 4}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].WS["HiRA-2"]/rows[0].WS["HiRA-2"], "hira2-4ch/1ch")
}

// BenchmarkFig14Ranks regenerates Fig. 14 at 32Gb for 1 and 2 ranks.
func BenchmarkFig14Ranks(b *testing.B) {
	var rows []hira.ScaleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig14(context.Background(), quickSim(), []int{1, 2}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].WS["HiRA-2"]/rows[0].WS["HiRA-2"], "hira2-2rk/1rk")
}

// BenchmarkFig15ParaChannels regenerates Fig. 15 at NRH=256 for 1 and 4
// channels.
func BenchmarkFig15ParaChannels(b *testing.B) {
	var rows []hira.ScaleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig15(context.Background(), quickSim(), []int{1, 4}, []int{256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].WS["HiRA-4"]/rows[1].WS["PARA"], "hira4/para@4ch")
}

// BenchmarkFig16ParaRanks regenerates Fig. 16 at NRH=256 for 1 and 2
// ranks.
func BenchmarkFig16ParaRanks(b *testing.B) {
	var rows []hira.ScaleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = hira.Fig16(context.Background(), quickSim(), []int{1, 2}, []int{256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].WS["HiRA-4"]/rows[1].WS["PARA"], "hira4/para@2rk")
}

// BenchmarkAblationRefSlack sweeps tRefSlack (the HiRA-N knob) at 64Gb
// periodic refresh: the paper observes saturation beyond 2xtRC.
func BenchmarkAblationRefSlack(b *testing.B) {
	base := hira.DefaultSystemConfig()
	base.ChipCapacityGbit = 64
	policies := []hira.RefreshPolicy{
		hira.HiRAPeriodicPolicy(0), hira.HiRAPeriodicPolicy(2),
		hira.HiRAPeriodicPolicy(4), hira.HiRAPeriodicPolicy(8),
	}
	var scores []hira.PolicyScore
	var err error
	for i := 0; i < b.N; i++ {
		scores, err = hira.RunPolicies(context.Background(), base, policies, quickSim())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(scores[1].WS/scores[0].WS, "hira2/hira0")
	b.ReportMetric(scores[3].WS/scores[1].WS, "hira8/hira2")
}

// BenchmarkAblationCoverage sweeps the SPT pairable fraction: what HiRA
// would gain if chips exposed more isolated subarray pairs than the
// measured 32%.
func BenchmarkAblationCoverage(b *testing.B) {
	run := func(cov float64) float64 {
		base := hira.DefaultSystemConfig()
		base.ChipCapacityGbit = 64
		base.SPTCoverage = cov
		scores, err := hira.RunPolicies(context.Background(), base,
			[]hira.RefreshPolicy{hira.HiRAPeriodicPolicy(4)}, quickSim())
		if err != nil {
			b.Fatal(err)
		}
		return scores[0].WS
	}
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo, hi = run(0.10), run(0.60)
	}
	b.ReportMetric(hi/lo, "ws60%/ws10%")
}
