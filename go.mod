module hira

go 1.22
