package hira_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"hira"
)

// TestHeadlineClaims pins the paper's abstract-level claims as seen
// through the public API.
func TestHeadlineClaims(t *testing.T) {
	// "HiRA reduces the overall latency of two refresh operations by
	// 51.4%."
	if s := hira.PairLatencySavings(); math.Abs(s-0.514) > 0.002 {
		t.Errorf("pair latency savings = %.4f, want 0.514", s)
	}

	// "HiRA-MC consumes only 0.00923 mm2 chip area and responds to
	// queries within 6.31 ns."
	a := hira.Area()
	if math.Abs(a.TotalAreaMM2-0.00923) > 0.001 {
		t.Errorf("area = %.5f mm2, want 0.00923", a.TotalAreaMM2)
	}
	if math.Abs(a.QueryLatencyNS-6.31) > 0.35 {
		t.Errorf("query latency = %.2f ns, want 6.31", a.QueryLatencyNS)
	}
}

func TestModuleSetMatchesTable1(t *testing.T) {
	ms := hira.Modules()
	if len(ms) != 7 {
		t.Fatalf("%d modules, want 7", len(ms))
	}
	caps := map[string]int{"A0": 4, "B0": 8, "C0": 4}
	for _, m := range ms {
		if want, ok := caps[m.Label]; ok && m.CapGbit != want {
			t.Errorf("%s capacity = %dGb, want %d", m.Label, m.CapGbit, want)
		}
	}
}

// TestCharacterizationHeadline checks "HiRA can reliably parallelize a
// DRAM row's refresh operation with refresh or activation of any of the
// 32% of the rows within the same bank" on a working module.
func TestCharacterizationHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("second-scale characterization")
	}
	res := hira.CharacterizeModule(hira.Modules()[4], hira.CharacterizationOptions{
		RegionSize: 512, NRHVictims: 8,
	})
	if !res.HiRAWorks {
		t.Fatal("HiRA not verified on module C0")
	}
	if res.Coverage.Mean < 0.22 || res.Coverage.Mean > 0.45 {
		t.Errorf("coverage mean = %.3f, want near 0.32-0.35", res.Coverage.Mean)
	}
	if res.NormNRH.Mean < 1.7 || res.NormNRH.Mean > 2.1 {
		t.Errorf("normalized NRH mean = %.3f, want ~1.9", res.NormNRH.Mean)
	}
}

func TestSecurityAnalysisHeadline(t *testing.T) {
	// Solved pth must always exceed PARA-Legacy's (the legacy config
	// misses the reliability target).
	pts, err := hira.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Pth < p.LegacyPth {
			t.Errorf("NRH=%d slack=%d: pth %.4f below legacy %.4f",
				p.NRH, p.SlackTRC, p.Pth, p.LegacyPth)
		}
		if p.LegacyPRH <= 1e-15 {
			t.Errorf("NRH=%d slack=%d: legacy config meets the target it should miss", p.NRH, p.SlackTRC)
		}
	}
	pth, err := hira.SolvePARAThreshold(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pth-0.0664) > 0.003 {
		t.Errorf("pth(1024, 0) = %.4f, want ~0.066", pth)
	}
}

// TestCustomWorkloadFacade drives the pluggable-workload surface through
// the public API: record a builtin benchmark's stream to a trace file,
// replay it alongside a validated custom profile via SimOptions.Mixes,
// and check the sweep is deterministic across engines and distinct from
// the builtin-mix sweep of the same shape.
func TestCustomWorkloadFacade(t *testing.T) {
	ctx := context.Background()
	mcf, err := hira.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mcf.trace")
	rec, err := hira.RecordTrace("mcf.trace", mcf, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if err := hira.WriteTraceFile(path, rec.Accesses()); err != nil {
		t.Fatal(err)
	}
	tr, err := hira.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	custom := hira.WorkloadProfile{Name: "hot", MPKI: 40, RowLocality: 0.2, FootprintMB: 8, WriteFrac: 0.4}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}

	opts := hira.SimOptions{Cores: 2, Measure: 6000, Warmup: 2000, Seed: 1,
		Mixes: hira.RoundRobinWorkloadMixes([]hira.Workload{tr, custom}, 1, 2)}
	policies := []hira.RefreshPolicy{hira.BaselinePolicy()}
	a, err := hira.RunPolicies(ctx, hira.DefaultSystemConfig(), policies, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hira.RunPolicies(ctx, hira.DefaultSystemConfig(), policies, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].WS != b[0].WS {
		t.Fatalf("custom-workload sweep not deterministic: %.6f vs %.6f", a[0].WS, b[0].WS)
	}
	builtinOpts := opts
	builtinOpts.Mixes = nil
	builtinOpts.Workloads = 1
	c, err := hira.RunPolicies(ctx, hira.DefaultSystemConfig(), policies, builtinOpts)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].WS == a[0].WS {
		t.Error("custom-workload sweep identical to the builtin mix (suspicious aliasing)")
	}
}

// TestSystemHeadline checks the §9.2 headline through the simulator at
// reduced scale: HiRA multiplies PARA-protected performance at NRH=64.
func TestSystemHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	opts := hira.SimOptions{Workloads: 2, Measure: 40000, Warmup: 10000}
	scores, err := hira.RunPolicies(context.Background(), hira.DefaultSystemConfig(), []hira.RefreshPolicy{
		hira.PARAPolicy(64), hira.PARAHiRAPolicy(64, 4),
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := scores[1].WS / scores[0].WS; ratio < 2 {
		t.Errorf("HiRA-4/PARA at NRH=64 = %.2fx, want well above 2x (paper: 3.73x)", ratio)
	}
}
