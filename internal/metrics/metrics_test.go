package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 || s.IQR != 2 {
		t.Errorf("quartiles: %+v", s)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Bound magnitudes so the sum cannot overflow; the
				// invariants under test are order statistics.
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		meanIn := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		return ordered && meanIn && s.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if !sort.Float64sAreSorted([]float64{xs[0]}) && xs[0] != 3 {
		t.Error("input mutated")
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := range h.Counts {
		if h.Counts[i] != 1 {
			t.Errorf("bin %d count = %d, want 1", i, h.Counts[i])
		}
		if got := h.Fraction(i); math.Abs(got-0.1) > 1e-12 {
			t.Errorf("bin %d fraction = %f", i, got)
		}
	}
	h.Add(-5) // clamps into bin 0
	h.Add(99) // clamps into last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.Total() != 12 {
		t.Errorf("Total = %d, want 12", h.Total())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.FractionAbove(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionAbove(5) = %f, want 0.5", got)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// All cores at alone speed: WS = number of cores.
	ws := WeightedSpeedup([]float64{1, 2, 3}, []float64{1, 2, 3})
	if math.Abs(ws-3) > 1e-12 {
		t.Errorf("WS = %f, want 3", ws)
	}
	// Half speed on every core: WS = 1.5.
	ws = WeightedSpeedup([]float64{0.5, 1, 1.5}, []float64{1, 2, 3})
	if math.Abs(ws-1.5) > 1e-12 {
		t.Errorf("WS = %f, want 1.5", ws)
	}
}

func TestMeanGeoMeanNormalize(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean")
	}
	if math.Abs(GeoMean([]float64{1, 4})-2) > 1e-12 {
		t.Error("GeoMean")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty handling")
	}
	n := Normalize([]float64{2, 4}, 2)
	if n[0] != 1 || n[1] != 2 {
		t.Errorf("Normalize = %v", n)
	}
}
