// Package metrics provides the statistics used to report the paper's
// experiments: box-and-whiskers summaries (Figs. 4 and 6), histograms
// (Fig. 5), and the weighted-speedup system-performance metric
// (§7, Eyerman & Eeckhout).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a box-and-whiskers five-number summary plus mean and count,
// matching the plots the paper uses (footnote 6: box bounded by the first
// and third quartiles, whiskers at minimum and maximum).
type Summary struct {
	N                 int
	Min, Max          float64
	Median, Q1, Q3    float64
	Mean, StdDev, IQR float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sq float64
	for _, x := range s {
		sum += x
	}
	mean := sum / float64(len(s))
	for _, x := range s {
		sq += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(sq / float64(len(s)))
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantileSorted(s, 0.5),
		Q1:     quantileSorted(s, 0.25),
		Q3:     quantileSorted(s, 0.75),
		Mean:   mean,
		StdDev: sd,
	}
	out.IQR = out.Q3 - out.Q1
	return out
}

// quantileSorted returns the q-quantile of a sorted slice by linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// String renders the summary in a compact one-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Histogram is a fixed-width binned distribution.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram of bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation; out-of-range values clamp to the end bins.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// FractionAbove returns the fraction of observations with value >= x.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for i := range h.Counts {
		if h.BinCenter(i) >= x {
			n += h.Counts[i]
		}
	}
	return float64(n) / float64(h.total)
}

// WeightedSpeedup computes the multiprogrammed system-performance metric
// of §7: the sum over cores of IPC_shared / IPC_alone.
func WeightedSpeedup(ipcShared, ipcAlone []float64) float64 {
	if len(ipcShared) != len(ipcAlone) {
		panic("metrics: WeightedSpeedup length mismatch")
	}
	var ws float64
	for i := range ipcShared {
		if ipcAlone[i] > 0 {
			ws += ipcShared[i] / ipcAlone[i]
		}
	}
	return ws
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Normalize returns xs scaled so that base maps to 1.0.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		}
	}
	return out
}
