package cache

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 64); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := New(8<<20, 0, 64); err == nil {
		t.Error("accepted zero assoc")
	}
	if _, err := New(3000, 8, 64); err == nil {
		t.Error("accepted non-power-of-two sets")
	}
	if _, err := New(8<<20, 8, 64); err != nil {
		t.Errorf("rejected Table 3 geometry: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(1<<16, 4, 64)
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Error("same-block access missed")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way cache; fill a set with 4 blocks, touch the first again, then
	// insert a fifth: the evicted block must be the least recently used
	// (the second).
	c := MustNew(4*64, 4, 64) // one set, 4 ways
	addrs := []uint64{0, 64, 128, 192}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(0, false)   // 0 is now MRU
	c.Access(256, false) // evicts 64
	if r := c.Access(0, false); !r.Hit {
		t.Error("MRU block evicted")
	}
	if r := c.Access(64, false); r.Hit {
		t.Error("LRU block survived")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := MustNew(2*64, 2, 64) // one set, 2 ways
	c.Access(0, true)         // dirty
	c.Access(64, false)
	r := c.Access(128, false) // evicts block 0 (LRU, dirty)
	if !r.WB || r.Writeback != 0 {
		t.Errorf("expected writeback of addr 0, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
	// Clean evictions produce no writeback.
	r = c.Access(192, false) // evicts 64 (clean)
	if r.WB {
		t.Errorf("clean eviction wrote back: %+v", r)
	}
}

func TestHitRate(t *testing.T) {
	c := MustNew(1<<16, 4, 64)
	c.Access(0, false)
	c.Access(0, false)
	if hr := c.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %f, want 0.5", hr)
	}
}

func TestRepeatedWorkingSetAlwaysHits(t *testing.T) {
	// A working set smaller than the cache must have a 100% steady-state
	// hit rate regardless of access order.
	c := MustNew(1<<16, 8, 64) // 64KB
	f := func(seq []uint16) bool {
		for _, s := range seq {
			c.Access(uint64(s&0x3FFF)&^63, false) // 16KB working set
		}
		// Second pass over the same addresses must all hit.
		for _, s := range seq {
			before := c.Stats.Misses
			c.Access(uint64(s&0x3FFF)&^63, false)
			if c.Stats.Misses != before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
