package cache

import "hira/internal/snap"

// Snapshot appends the cache's mutable state — every way's tag, valid,
// dirty, and LRU stamp, plus the stamp counter and stats — to w. The
// line slices use the codec's bulk fixed-width forms: the LLC dominates
// a system snapshot's size and encode time, and checkpoints are written
// every few thousand simulated ticks, so this path must cost a memcpy,
// not a varint call per word. Geometry is construction-time state; the
// reader validates the line count instead of serializing it.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.U64(c.stamp)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Writebacks)
	w.Len(len(c.tags))
	w.U64s(c.tags)
	w.U64s(c.lru)
	w.Bools(c.valid)
	w.Bools(c.dirty)
}

// SnapshotSize returns the encoded size of Snapshot's output in bytes
// (a few bytes of slack for the varint header fields), so composing
// snapshots can pre-size their buffers.
func (c *Cache) SnapshotSize() int {
	return 16*len(c.tags) + 2*((len(c.tags)+7)/8) + 48
}

// SnapshotDelta appends only the lines touched since the last
// ResetTouched (plus the stamp counter and stats, which are cheap and
// always change). Touched lines are written in ascending index order as
// gap-encoded varints so a small working set costs bytes proportional
// to the lines it actually moved, not to cache capacity. Applying the
// delta on top of the state it was diffed against reproduces Snapshot's
// result exactly; lines never touched keep their base values.
func (c *Cache) SnapshotDelta(w *snap.Writer) {
	w.U64(c.stamp)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Writebacks)
	w.Len(c.ntouched)
	prev := 0
	for i, t := range c.touched {
		if !t {
			continue
		}
		w.U64(uint64(i - prev))
		prev = i
		w.U64(c.tags[i])
		w.U64(c.lru[i])
		var flags uint8
		if c.valid[i] {
			flags |= 1
		}
		if c.dirty[i] {
			flags |= 2
		}
		w.U8(flags)
	}
}

// SnapshotDeltaSize returns an upper bound on SnapshotDelta's encoded
// size, so delta writers can pre-size their buffers and encode with
// zero growth reallocations.
func (c *Cache) SnapshotDeltaSize() int {
	// Per line: index gap (≤5) + tag (≤10) + lru (≤10) + flags (1),
	// rounded up; plus stamp/stats/len header slack.
	return 32*c.ntouched + 64
}

// ApplyDelta reads state written by SnapshotDelta into a cache of
// identical geometry, overwriting only the lines the delta carries. The
// receiver must already hold the base state the delta was diffed
// against for the result to be meaningful.
func (c *Cache) ApplyDelta(r *snap.Reader) error {
	c.stamp = r.U64()
	c.Stats.Hits = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.Writebacks = r.U64()
	n := r.Len(len(c.tags), 4)
	if r.Err() != nil {
		return r.Err()
	}
	idx := -1
	for k := 0; k < n; k++ {
		gap := r.U64()
		tag := r.U64()
		lru := r.U64()
		flags := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		if gap > uint64(len(c.tags)) {
			r.Failf("cache delta: line gap %d out of range", gap)
			return r.Err()
		}
		if k == 0 {
			idx = int(gap)
		} else {
			if gap == 0 {
				r.Failf("cache delta: non-increasing line index")
				return r.Err()
			}
			idx += int(gap)
		}
		if idx >= len(c.tags) {
			r.Failf("cache delta: line index %d out of range", idx)
			return r.Err()
		}
		if flags > 3 {
			r.Failf("cache delta: bad line flags %#x", flags)
			return r.Err()
		}
		c.tags[idx] = tag
		c.lru[idx] = lru
		c.valid[idx] = flags&1 != 0
		c.dirty[idx] = flags&2 != 0
	}
	return r.Err()
}

// ResetTouched clears the touched-line set; the next SnapshotDelta
// diffs against the state at this call.
func (c *Cache) ResetTouched() {
	if c.ntouched == 0 {
		return
	}
	for i := range c.touched {
		c.touched[i] = false
	}
	c.ntouched = 0
}

// Restore reads state written by Snapshot into a cache of identical
// geometry.
func (c *Cache) Restore(r *snap.Reader) error {
	c.stamp = r.U64()
	c.Stats.Hits = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.Writebacks = r.U64()
	n := r.Len(len(c.tags), 1)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(c.tags) {
		r.Failf("cache has %d lines, snapshot %d", len(c.tags), n)
		return r.Err()
	}
	r.U64s(c.tags)
	r.U64s(c.lru)
	r.Bools(c.valid)
	r.Bools(c.dirty)
	if r.Err() == nil {
		// The restored state is by definition the most recent
		// checkpoint of its trajectory, so the next delta diffs
		// against it.
		c.ResetTouched()
	}
	return r.Err()
}
