package cache

import "hira/internal/snap"

// Snapshot appends the cache's mutable state — every way's tag, valid,
// dirty, and LRU stamp, plus the stamp counter and stats — to w. The
// line slices use the codec's bulk fixed-width forms: the LLC dominates
// a system snapshot's size and encode time, and checkpoints are written
// every few thousand simulated ticks, so this path must cost a memcpy,
// not a varint call per word. Geometry is construction-time state; the
// reader validates the line count instead of serializing it.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.U64(c.stamp)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Writebacks)
	w.Len(len(c.tags))
	w.U64s(c.tags)
	w.U64s(c.lru)
	w.Bools(c.valid)
	w.Bools(c.dirty)
}

// SnapshotSize returns the encoded size of Snapshot's output in bytes
// (a few bytes of slack for the varint header fields), so composing
// snapshots can pre-size their buffers.
func (c *Cache) SnapshotSize() int {
	return 16*len(c.tags) + 2*((len(c.tags)+7)/8) + 48
}

// Restore reads state written by Snapshot into a cache of identical
// geometry.
func (c *Cache) Restore(r *snap.Reader) error {
	c.stamp = r.U64()
	c.Stats.Hits = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.Writebacks = r.U64()
	n := r.Len(len(c.tags), 1)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(c.tags) {
		r.Failf("cache has %d lines, snapshot %d", len(c.tags), n)
		return r.Err()
	}
	r.U64s(c.tags)
	r.U64s(c.lru)
	r.Bools(c.valid)
	r.Bools(c.dirty)
	return r.Err()
}
