// Package cache implements the shared last-level cache of the simulated
// system (Table 3: 8 MB, 8-way set-associative, 64-byte lines, LRU).
package cache

import "fmt"

// Cache is a set-associative write-back cache with LRU replacement.
// It is not safe for concurrent use.
type Cache struct {
	assoc     int
	sets      int
	blockBits uint
	setMask   uint64

	tags  []uint64 // [set*assoc+way]
	valid []bool
	dirty []bool
	lru   []uint64 // access stamp per way; smallest = least recent
	stamp uint64

	// touched marks lines mutated since the last ResetTouched, for
	// differential snapshots. Every mutation flows through touch (hits
	// bump the LRU stamp, fills rewrite the line then touch it), so
	// marking there covers all line state.
	touched  []bool
	ntouched int

	Stats Stats
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses, Writebacks uint64
}

// New returns a cache of the given total size, associativity, and block
// size (all powers of two).
func New(sizeBytes, assoc, blockBytes int) (*Cache, error) {
	if sizeBytes <= 0 || assoc <= 0 || blockBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry")
	}
	blocks := sizeBytes / blockBytes
	sets := blocks / assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d not a power of two", blockBytes)
	}
	bits := uint(0)
	for 1<<bits < blockBytes {
		bits++
	}
	return &Cache{
		assoc:     assoc,
		sets:      sets,
		blockBits: bits,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, blocks),
		valid:     make([]bool, blocks),
		dirty:     make([]bool, blocks),
		lru:       make([]uint64, blocks),
		touched:   make([]bool, blocks),
	}, nil
}

// MustNew is New, panicking on error; for configurations known statically.
func MustNew(sizeBytes, assoc, blockBytes int) *Cache {
	c, err := New(sizeBytes, assoc, blockBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback, if WB is true, is the address of a dirty block evicted
	// by this access, which must be written to memory.
	Writeback uint64
	WB        bool
}

// Access looks up addr, allocating on miss, and reports hit/miss and any
// dirty eviction.
func (c *Cache) Access(addr uint64, write bool) Result {
	blk := addr >> c.blockBits
	set := int(blk & c.setMask)
	base := set * c.assoc

	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == blk {
			c.touch(i)
			if write {
				c.dirty[i] = true
			}
			c.Stats.Hits++
			return Result{Hit: true}
		}
	}
	c.Stats.Misses++

	// Choose victim: an invalid way, else the least recently used way.
	victim := -1
	oldest := ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = w
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = w
		}
	}
	i := base + victim
	res := Result{}
	if c.valid[i] && c.dirty[i] {
		res.WB = true
		res.Writeback = c.tags[i] << c.blockBits
		c.Stats.Writebacks++
	}
	c.tags[i] = blk
	c.valid[i] = true
	c.dirty[i] = write
	c.touch(i)
	return res
}

// touch makes the line the most recently used in its set.
func (c *Cache) touch(i int) {
	c.stamp++
	c.lru[i] = c.stamp
	if !c.touched[i] {
		c.touched[i] = true
		c.ntouched++
	}
}

// HitRate returns hits / (hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.Stats.Hits + c.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Stats.Hits) / float64(total)
}
