package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"hira/internal/fault"
)

// journalEntry is one live (queued or running) job as persisted in the
// journal: everything a restarted server needs to re-validate and
// re-enqueue it. Terminal jobs have no entry — removal is the terminal
// record.
type journalEntry struct {
	ID        string    `json:"id"`
	Spec      JobSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`
}

// journal is the server's durable record of live jobs: a JSON-lines file
// holding one entry per queued or running job, rewritten atomically
// (temp file + rename, the same crash-safety idiom as the result store)
// on every change. A crash at any instant leaves either the previous or
// the new file — never a torn one — so restart recovery re-enqueues
// exactly the jobs that had been accepted but not finished.
//
// A snapshot-rewrite journal is deliberately not an append-only WAL: the
// live set is bounded by the queue depth plus the worker count, so each
// rewrite is a few KB, there is no compaction problem, and replay is
// "read the file", not "fold a log". Write failures never fail the job —
// they are recorded in lastErr (surfaced via /readyz) and the server
// carries on with whatever durability the last successful rewrite gave.
type journal struct {
	path string
	fs   fault.FS

	mu      sync.Mutex
	live    map[string]journalEntry
	order   []string // insertion order, for stable files and FIFO recovery
	lastErr error    // most recent rewrite failure, nil after a success
}

// openJournal opens (creating if needed) the journal at path and returns
// the entries a previous process left behind, in submission order. The
// returned journal starts empty — recovery decides which entries live on
// (re-add) and which are dropped (not re-added). Corrupt lines — a torn
// write from a pre-atomic-rename era, stray editing — are skipped, not
// fatal: losing one job's record must not take down recovery of the
// rest. The error is non-nil only when the journal cannot be written at
// all, in which case the server runs journal-less (and /readyz says so).
func openJournal(path string, fsys fault.FS) (*journal, []journalEntry, error) {
	if fsys == nil {
		fsys = fault.OS
	}
	j := &journal{path: path, fs: fsys, live: make(map[string]journalEntry)}
	var recovered []journalEntry
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		seen := make(map[string]bool)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e journalEntry
			if json.Unmarshal(line, &e) != nil || e.ID == "" || seen[e.ID] {
				continue
			}
			seen[e.ID] = true
			recovered = append(recovered, e)
		}
	}
	// Prove the journal is writable now, not at the first submission:
	// /readyz reports "journal open" and a server that cannot journal
	// should know before it accepts work.
	if err := j.rewriteLocked(); err != nil {
		return nil, recovered, fmt.Errorf("journal %s unwritable: %w", path, err)
	}
	return j, recovered, nil
}

// add records a live job. The write failure, if any, is returned and
// remembered; callers treat it as degradation (the job still runs), not
// as a submission error.
func (j *journal) add(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[e.ID]; !ok {
		j.order = append(j.order, e.ID)
	}
	j.live[e.ID] = e
	return j.rewriteLocked()
}

// remove drops a job's entry — the journal's terminal record. Removing
// an absent ID is a no-op (and no rewrite).
func (j *journal) remove(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[id]; !ok {
		return nil
	}
	delete(j.live, id)
	for i, oid := range j.order {
		if oid == id {
			j.order = append(j.order[:i], j.order[i+1:]...)
			break
		}
	}
	return j.rewriteLocked()
}

// rewriteLocked persists the live set atomically. Callers hold j.mu.
func (j *journal) rewriteLocked() error {
	var buf bytes.Buffer
	for _, id := range j.order {
		line, err := json.Marshal(j.live[id])
		if err != nil {
			j.lastErr = fmt.Errorf("journal: marshal %s: %w", id, err)
			return j.lastErr
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := j.fs.WriteFileAtomic(fault.SiteJournalWrite, j.path, buf.Bytes()); err != nil {
		j.lastErr = fmt.Errorf("journal: %w", err)
		return j.lastErr
	}
	j.lastErr = nil
	return nil
}

// healthy reports whether the last journal write succeeded; the reason
// feeds /readyz.
func (j *journal) healthy() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lastErr != nil {
		return j.lastErr.Error(), false
	}
	return "", true
}
