package service

import (
	"net/http"
	"runtime"
	"runtime/debug"

	"hira/internal/fault"
	"hira/internal/telemetry"
)

// svcMetrics is the job-scheduling layer's instrumentation: submission
// and completion counters, queue/run latencies, and live stream-consumer
// counts. Engine- and snapshot-store-level metrics are registered by
// sim.NewEngine; these cover what only the service knows — job
// lifecycles and subscribers.
type svcMetrics struct {
	submitted *telemetry.Counter
	rejected  *telemetry.Counter
	finished  map[JobState]*telemetry.Counter
	sseSubs   *telemetry.Gauge
	// queueSeconds and runSeconds split each job's latency into its two
	// states: time waiting for a worker, then time executing.
	queueSeconds *telemetry.Histogram
	runSeconds   *telemetry.Histogram
}

// newSvcMetrics registers the service's instruments on r and, given the
// server, the sampled queue-depth gauge.
func newSvcMetrics(r *telemetry.Registry, s *Server) *svcMetrics {
	if r == nil {
		return nil
	}
	m := &svcMetrics{
		submitted: r.Counter("hira_jobs_submitted_total", "Jobs accepted into the queue."),
		rejected: r.Counter("hira_jobs_rejected_total",
			"Submissions refused (invalid spec, full queue, or shutdown)."),
		finished: make(map[JobState]*telemetry.Counter),
		sseSubs:  r.Gauge("hira_sse_subscribers", "Live job event-stream consumers."),
		queueSeconds: r.Histogram("hira_job_queue_seconds",
			"Time jobs spent queued before a worker picked them up.", nil),
		runSeconds: r.Histogram("hira_job_run_seconds",
			"Time jobs spent executing.", nil),
	}
	for _, st := range []JobState{StateDone, StateFailed, StateCancelled} {
		m.finished[st] = r.Counter("hira_jobs_finished_total",
			"Jobs reaching a terminal state, by outcome.",
			telemetry.Label{Key: "state", Value: string(st)})
	}
	r.GaugeFunc("hira_job_queue_depth", "Jobs currently waiting for a worker.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.pending))
		})
	r.CounterFunc("hira_trace_dropped_spans_total",
		"Job-trace spans dropped at the per-job span cap, folded in as jobs finish.",
		func() float64 { return float64(s.droppedSpans.Load()) })
	r.GaugeFunc("hira_build_info",
		"Build metadata of the serving binary; the value is always 1.",
		func() float64 { return 1 },
		telemetry.Label{Key: "version", Value: buildVersion()},
		telemetry.Label{Key: "go", Value: runtime.Version()})
	r.CounterFunc("hira_jobs_recovered_total",
		"Jobs re-enqueued from the journal after a server restart.",
		func() float64 { return float64(s.recovered.Load()) })
	r.CounterFunc("hira_worker_panics_total",
		"Panics recovered inside cell or job execution; each failed one job, never the process.",
		func() float64 { return float64(s.panics.Load() + s.lab.Stats().Panics) })
	r.GaugeFunc("hira_store_degraded",
		"1 when a backing store fell off its durable path (result store cache-only, or checkpoint store in-memory).",
		func() float64 {
			if _, bad := s.lab.Degraded(); bad {
				return 1
			}
			return 0
		})
	// Fault-injection counters are registered per site unconditionally —
	// the family catalogue must not depend on whether this process runs
	// under chaos — and sample zero outside fault-injection runs
	// (Injector.Fired is nil-safe).
	var injector *fault.Injector
	if in, ok := s.cfg.Engine.FS.(*fault.Injector); ok {
		injector = in
	}
	for _, site := range fault.Sites() {
		site := site
		r.CounterFunc("hira_faults_injected_total",
			"Faults injected by the chaos harness, by site; always 0 outside fault-injection runs.",
			func() float64 { return float64(injector.Fired(site)) },
			telemetry.Label{Key: "site", Value: string(site)})
	}
	return m
}

// buildVersion reports the main module's version from the build info
// ("devel" for plain source builds, a tag or pseudo-version for module
// builds), labeling hira_build_info.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// observeFinish folds one terminal job view into the tallies. Nil-safe:
// a server without telemetry observes nothing.
func (m *svcMetrics) observeFinish(v Job) {
	if m == nil {
		return
	}
	m.finished[v.State].Inc()
	if v.Finished == nil {
		return
	}
	queueEnd := *v.Finished // cancelled while queued: whole life was queue time
	if v.Started != nil {
		queueEnd = *v.Started
		m.runSeconds.Observe(v.Finished.Sub(*v.Started).Seconds())
	}
	m.queueSeconds.Observe(queueEnd.Sub(v.Created).Seconds())
}

// handleMetrics serves the Prometheus exposition of the server's
// registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.registry.Handler().ServeHTTP(w, r)
}

// handleTrace serves a job's span timeline: JSON by default, Chrome
// trace-event format (loadable at chrome://tracing or ui.perfetto.dev)
// with ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		j.trace.WriteChrome(w)
		return
	}
	j.trace.WriteJSON(w)
}
