// Package service is the HTTP experiment service over the HiRA
// reproduction: clients POST job specs (figure sweeps with arbitrary
// capacity/NRH/channel grids, single RunPolicies evaluations,
// characterization, security-analysis, and area-model runs), a bounded
// scheduler executes them on one shared experiment engine, and results
// stream back over JSON and server-sent events. Because every job
// decomposes into the engine's deterministic content-keyed cells,
// concurrent clients asking overlapping questions share simulations —
// each distinct cell simulates exactly once per store lifetime.
package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hira/internal/charz"
	"hira/internal/sim"
	"hira/internal/workload"
)

// Kinds a JobSpec can request.
const (
	KindFig9         = "fig9"
	KindFig12        = "fig12"
	KindFig13        = "fig13"
	KindFig14        = "fig14"
	KindFig15        = "fig15"
	KindFig16        = "fig16"
	KindPolicies     = "policies"
	KindCharacterize = "characterize"
	KindSecurity     = "security"
	KindArea         = "area"
	KindAttack       = "attack"
)

// JobSpec is the body of POST /v1/jobs: one experiment request.
type JobSpec struct {
	// Kind selects the experiment: a figure sweep ("fig9" ... "fig16"),
	// a direct policy evaluation ("policies"), the §4 characterization
	// ("characterize"), the §9.1 security analysis ("security"), or the
	// §6 area model ("area").
	Kind string `json:"kind"`

	// Sim sizes the simulation for figure and policy kinds; nil takes
	// laptop-scale defaults (4 mixes × 8 cores, 120k measured ticks).
	Sim *SimSpec `json:"sim,omitempty"`

	// Capacities is the chip-capacity grid in Gbit for fig9 (x-axis) and
	// figs. 13/14 (second parameter); nil takes the paper's values.
	Capacities []int `json:"capacities,omitempty"`
	// NRHs is the RowHammer-threshold grid for fig12 (x-axis) and
	// figs. 15/16 (second parameter); nil takes the paper's values.
	NRHs []int `json:"nrhs,omitempty"`
	// Xs is the channel/rank axis of figs. 13-16; nil takes {1,2,4,8}.
	Xs []int `json:"xs,omitempty"`

	// Config is the base system shape for kind "policies"; nil is
	// Table 3's system.
	Config *ConfigSpec `json:"config,omitempty"`
	// Policies is the policy set for kind "policies"; required there.
	Policies []PolicySpec `json:"policies,omitempty"`

	// Charz sizes kind "characterize"; nil characterizes all modules at
	// reduced (laptop-scale) defaults.
	Charz *CharzSpec `json:"charz,omitempty"`

	// Attacks selects attacker presets for kind "attack" (names from
	// sim.AttackKinds: "single", "double", "many", "refsync", "decoy");
	// nil runs all of them. The attack sweep pairs each preset with the
	// mitigation zoo at each NRHs value and always runs the forensics
	// ledger, so per-point efficacy metrics land in the result.
	Attacks []string `json:"attacks,omitempty"`

	// Workloads, for figure and policy kinds, replaces the builtin
	// random SPEC mixes with an explicit workload set: named mixes over
	// builtin benchmarks, inline custom profiles, and recorded traces
	// from the server's trace directory. Nil keeps the builtin mixes.
	Workloads *WorkloadsSpec `json:"workloads,omitempty"`

	// TimeoutSeconds, when positive, bounds the job's wall-clock
	// execution time, enforced server-side: a job still running when the
	// deadline fires is interrupted and finalized as failed with a
	// deadline error. Fractional values are honored (0.5 is 500ms). 0
	// means no deadline. Valid for every kind; capped at one day.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// maxTimeoutSeconds caps per-job deadlines at one day: beyond that a
// "deadline" is indistinguishable from no deadline, and absurd values
// usually mean a units mistake in the client.
const maxTimeoutSeconds = 86400

// validateTimeout checks the spec's wall-clock deadline, kind-agnostic.
func (spec JobSpec) validateTimeout() error {
	if spec.TimeoutSeconds < 0 {
		return fmt.Errorf("timeout_seconds must not be negative")
	}
	if spec.TimeoutSeconds > maxTimeoutSeconds {
		return fmt.Errorf("timeout_seconds %g exceeds the maximum %d", spec.TimeoutSeconds, maxTimeoutSeconds)
	}
	return nil
}

// WorkloadsSpec is the spec's custom-workload object. Every mix entry
// names one workload per core; names resolve against Traces, then
// Profiles, then the builtin SPEC CPU2006 benchmarks.
type WorkloadsSpec struct {
	// Mixes lists the multiprogrammed mixes to run: one workload name
	// per core, exactly cores names per mix. Required, at least one.
	Mixes [][]string `json:"mixes"`
	// Profiles defines inline custom profiles addressable from Mixes.
	Profiles []ProfileSpec `json:"profiles,omitempty"`
	// Traces references recorded trace files (hira-sim -record) in the
	// server's trace directory, addressable from Mixes by name.
	Traces []TraceSpec `json:"traces,omitempty"`
}

// ProfileSpec is one inline custom workload profile.
type ProfileSpec struct {
	Name        string  `json:"name"`
	MPKI        float64 `json:"mpki"`
	RowLocality float64 `json:"row_locality"`
	FootprintMB int     `json:"footprint_mb"`
	WriteFrac   float64 `json:"write_frac"`
}

// profile converts the spec to a workload.Profile.
func (p ProfileSpec) profile() workload.Profile {
	return workload.Profile{
		Name: p.Name, MPKI: p.MPKI, RowLocality: p.RowLocality,
		FootprintMB: p.FootprintMB, WriteFrac: p.WriteFrac,
	}
}

// TraceSpec references one recorded trace file by name.
type TraceSpec struct {
	// Name is how Mixes entries address the trace.
	Name string `json:"name"`
	// File is the trace's bare file name inside the server's trace
	// directory (no path separators).
	File string `json:"file"`
}

// SimSpec sizes a simulation sweep. Zero fields take sim.Options
// defaults.
type SimSpec struct {
	Workloads int    `json:"workloads,omitempty"`
	Cores     int    `json:"cores,omitempty"`
	Warmup    int    `json:"warmup,omitempty"`
	Measure   int    `json:"measure,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Forensics runs the sweep's simulation cells with the RowHammer
	// forensics ledger enabled; per-policy summaries land in the result
	// and on GET /v1/jobs/{id}/forensics. Figures are bit-identical
	// either way, but forensics cells never resume from checkpoints.
	Forensics bool `json:"forensics,omitempty"`
	// ForensicsRecorder additionally arms the DRAM command flight
	// recorder; requires Forensics.
	ForensicsRecorder bool `json:"forensics_recorder,omitempty"`
	// NoPlanner disables the trajectory-coalescing sweep planner for
	// this job, resolving every cell individually. Figures are
	// bit-identical either way; this is a debugging escape hatch.
	NoPlanner bool `json:"no_planner,omitempty"`
}

// ConfigSpec is the base system shape for policy evaluations. Zero
// fields take Table 3 defaults (8 Gbit chips, 1 channel, 1 rank,
// SPT coverage 0.32).
type ConfigSpec struct {
	CapacityGbit int     `json:"capacity_gbit,omitempty"`
	Channels     int     `json:"channels,omitempty"`
	Ranks        int     `json:"ranks,omitempty"`
	SPTCoverage  float64 `json:"spt_coverage,omitempty"`
}

// PolicySpec names one refresh policy.
type PolicySpec struct {
	// Type: "norefresh", "baseline", "hira" (periodic HiRA-Slack),
	// "para" (PARA at NRH without HiRA), "para+hira", or a mitigation-zoo
	// engine: "graphene" (counter-table tracker) or "rfm" (DDR5
	// refresh-management pacing).
	Type string `json:"type"`
	// Slack is the N of HiRA-N (tRefSlack in units of tRC).
	Slack int `json:"slack,omitempty"`
	// NRH is the RowHammer threshold for the PARA and zoo types.
	NRH int `json:"nrh,omitempty"`
	// Param tunes a zoo engine: Graphene's counter-table size or RFM's
	// RAAIMT activation budget. 0 takes the engine's default sizing.
	Param int `json:"param,omitempty"`
}

// CharzSpec sizes a characterization job.
type CharzSpec struct {
	// Modules lists module labels from Table 1 ("A0", "B1", ...); empty
	// characterizes every working module.
	Modules    []string `json:"modules,omitempty"`
	RegionSize int      `json:"region_size,omitempty"`
	RowAStride int      `json:"row_a_stride,omitempty"`
	RowBStride int      `json:"row_b_stride,omitempty"`
	NRHVictims int      `json:"nrh_victims,omitempty"`
}

// Limits bounds what one job may ask of the service, so a single spec
// cannot monopolize it. Zero fields take the defaults noted.
type Limits struct {
	MaxWorkloads int `json:"max_workloads"` // default 128
	MaxCores     int `json:"max_cores"`     // default 64
	MaxTicks     int `json:"max_ticks"`     // warmup+measure; default 10M
	MaxGrid      int `json:"max_grid"`      // entries per axis; default 32
	MaxPolicies  int `json:"max_policies"`  // default 32
	// MaxTraces and MaxProfiles bound the workloads object's trace and
	// inline-profile lists. Trace entries cost submission-time I/O (each
	// distinct file is read and hashed once in the HTTP handler), so the
	// trace cap also bounds how much disk a single POST can touch;
	// defaults 16 and 64.
	MaxTraces   int `json:"max_traces"`
	MaxProfiles int `json:"max_profiles"`
	// MaxTotalTicks bounds a job's estimated total simulation cost —
	// sweep points x policies x workloads x (warmup+measure) — because
	// per-axis caps alone still admit specs whose product is days of
	// compute; default 100G ticks.
	MaxTotalTicks int64 `json:"max_total_ticks"`
}

func (l Limits) withDefaults() Limits {
	if l.MaxWorkloads == 0 {
		l.MaxWorkloads = 128
	}
	if l.MaxCores == 0 {
		l.MaxCores = 64
	}
	if l.MaxTicks == 0 {
		l.MaxTicks = 10_000_000
	}
	if l.MaxGrid == 0 {
		l.MaxGrid = 32
	}
	if l.MaxPolicies == 0 {
		l.MaxPolicies = 32
	}
	if l.MaxTraces == 0 {
		l.MaxTraces = 16
	}
	if l.MaxProfiles == 0 {
		l.MaxProfiles = 64
	}
	if l.MaxTotalTicks == 0 {
		l.MaxTotalTicks = 100_000_000_000
	}
	return l
}

// Validate checks the workload object against the limits (zero fields
// take defaults) and the sweep's effective core count. It is pure —
// trace files are only referenced by name here and loaded by Resolve —
// so the fuzzable validation path never touches the filesystem.
// cmd/hira-sim reuses it for -workload-spec files, keeping CLI and
// service acceptance identical.
func (w *WorkloadsSpec) Validate(l Limits, cores int) error {
	if w == nil {
		return nil
	}
	l = l.withDefaults()
	if len(w.Mixes) == 0 {
		return fmt.Errorf("workloads needs at least one mix")
	}
	if len(w.Mixes) > l.MaxWorkloads {
		return fmt.Errorf("%d workload mixes exceeds the limit of %d", len(w.Mixes), l.MaxWorkloads)
	}
	if len(w.Traces) > l.MaxTraces {
		return fmt.Errorf("%d trace references exceeds the limit of %d", len(w.Traces), l.MaxTraces)
	}
	if len(w.Profiles) > l.MaxProfiles {
		return fmt.Errorf("%d inline profiles exceeds the limit of %d", len(w.Profiles), l.MaxProfiles)
	}
	names := map[string]bool{}
	defined := func(kind, name string) error {
		if !workload.ValidName(name) {
			return fmt.Errorf("bad %s name %q (want 1-64 chars of [A-Za-z0-9._-])", kind, name)
		}
		if names[name] {
			return fmt.Errorf("duplicate workload name %q", name)
		}
		if _, err := workload.ProfileByName(name); err == nil {
			return fmt.Errorf("%s name %q shadows a builtin benchmark; rename it", kind, name)
		}
		names[name] = true
		return nil
	}
	for _, ts := range w.Traces {
		if err := defined("trace", ts.Name); err != nil {
			return err
		}
		// Reject both separator styles explicitly: filepath.Base alone
		// would let backslashes through on non-Windows hosts.
		if ts.File == "" || strings.ContainsAny(ts.File, `/\`) ||
			ts.File != filepath.Base(ts.File) || ts.File == "." || ts.File == ".." {
			return fmt.Errorf("trace %q: file %q must be a bare file name in the server's trace directory", ts.Name, ts.File)
		}
	}
	for _, ps := range w.Profiles {
		if err := defined("profile", ps.Name); err != nil {
			return err
		}
		if err := ps.profile().Validate(); err != nil {
			return err
		}
	}
	for mi, mix := range w.Mixes {
		if len(mix) != cores {
			return fmt.Errorf("mix %d has %d workloads for %d cores", mi, len(mix), cores)
		}
		for _, name := range mix {
			if names[name] {
				continue
			}
			if _, err := workload.ProfileByName(name); err != nil {
				return fmt.Errorf("mix %d: unknown workload %q (not a trace, custom profile, or builtin benchmark)", mi, name)
			}
		}
	}
	return nil
}

// Resolve loads the referenced traces from traceDir and builds the
// per-core source mixes the sweep runs. Name resolution prefers traces,
// then inline profiles, then builtin benchmarks — validate rejects
// ambiguity up front, so the order never silently reinterprets a name.
func (w *WorkloadsSpec) Resolve(traceDir string) ([]workload.SourceMix, error) {
	byName := map[string]workload.Source{}
	byFile := map[string]*workload.Trace{} // each distinct file loads once
	for _, ts := range w.Traces {
		if traceDir == "" {
			return nil, fmt.Errorf("spec references trace %q but the server has no trace directory", ts.Name)
		}
		file := filepath.Base(ts.File)
		if tr, ok := byFile[file]; ok {
			byName[ts.Name] = tr
			continue
		}
		f, err := os.Open(filepath.Join(traceDir, file))
		if err != nil {
			// Report the bare file name, not the wrapped error: the
			// message reaches HTTP clients and must not leak the
			// server's trace-directory path.
			return nil, fmt.Errorf("trace %q: cannot open file %q in the trace directory", ts.Name, file)
		}
		tr, err := workload.ReadTrace(ts.Name, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace %q (%s): %w", ts.Name, ts.File, err)
		}
		byFile[file] = tr
		byName[ts.Name] = tr
	}
	for _, ps := range w.Profiles {
		byName[ps.Name] = ps.profile()
	}
	mixes := make([]workload.SourceMix, len(w.Mixes))
	for mi, mix := range w.Mixes {
		mixes[mi] = workload.SourceMix{ID: mi, Sources: make([]workload.Source, len(mix))}
		for c, name := range mix {
			src, ok := byName[name]
			if !ok {
				p, err := workload.ProfileByName(name)
				if err != nil {
					return nil, fmt.Errorf("mix %d: %w", mi, err)
				}
				src = p
			}
			mixes[mi].Sources[c] = src
		}
	}
	return mixes, nil
}

// figureKinds maps a figure kind to which grids it consumes.
var figureKinds = map[string]struct{ caps, nrhs, xs bool }{
	KindFig9:  {caps: true},
	KindFig12: {nrhs: true},
	KindFig13: {caps: true, xs: true},
	KindFig14: {caps: true, xs: true},
	KindFig15: {nrhs: true, xs: true},
	KindFig16: {nrhs: true, xs: true},
}

// Validate checks the spec against the limits. A nil error means the
// scheduler can run the job as-is.
func (spec JobSpec) Validate(l Limits) error {
	l = l.withDefaults()
	if err := spec.validateTimeout(); err != nil {
		return err
	}
	switch spec.Kind {
	case KindFig9, KindFig12, KindFig13, KindFig14, KindFig15, KindFig16:
		uses := figureKinds[spec.Kind]
		if !uses.caps && spec.Capacities != nil {
			return fmt.Errorf("%s does not take a capacities grid", spec.Kind)
		}
		if !uses.nrhs && spec.NRHs != nil {
			return fmt.Errorf("%s does not take an nrhs grid", spec.Kind)
		}
		if !uses.xs && spec.Xs != nil {
			return fmt.Errorf("%s does not take a channel/rank axis (xs)", spec.Kind)
		}
		if err := validateGrid("capacities", spec.Capacities, l.MaxGrid, 1, 1024); err != nil {
			return err
		}
		if err := validateGrid("nrhs", spec.NRHs, l.MaxGrid, 1, 1<<20); err != nil {
			return err
		}
		if err := validateGrid("xs", spec.Xs, l.MaxGrid, 1, 16); err != nil {
			return err
		}
		if spec.Policies != nil || spec.Config != nil || spec.Charz != nil || spec.Attacks != nil {
			return fmt.Errorf("%s does not take policies, config, charz, or attacks", spec.Kind)
		}
		if err := spec.Sim.validate(l); err != nil {
			return err
		}
		if err := spec.Workloads.Validate(l, spec.Sim.options().WithDefaults().Cores); err != nil {
			return err
		}
		return spec.validateCost(l)
	case KindPolicies:
		if len(spec.Policies) == 0 {
			return fmt.Errorf("policies job needs at least one policy")
		}
		if len(spec.Policies) > l.MaxPolicies {
			return fmt.Errorf("%d policies exceeds the limit of %d", len(spec.Policies), l.MaxPolicies)
		}
		for i, p := range spec.Policies {
			if _, err := p.policy(); err != nil {
				return fmt.Errorf("policy %d: %w", i, err)
			}
		}
		if spec.Config != nil {
			if err := spec.Config.validate(); err != nil {
				return err
			}
		}
		if spec.Capacities != nil || spec.NRHs != nil || spec.Xs != nil || spec.Charz != nil || spec.Attacks != nil {
			return fmt.Errorf("policies does not take grids, charz, or attacks")
		}
		if err := spec.Sim.validate(l); err != nil {
			return err
		}
		if err := spec.Workloads.Validate(l, spec.Sim.options().WithDefaults().Cores); err != nil {
			return err
		}
		return spec.validateCost(l)
	case KindAttack:
		if spec.Capacities != nil || spec.Xs != nil || spec.Policies != nil ||
			spec.Config != nil || spec.Charz != nil {
			return fmt.Errorf("attack takes only the sim block, an nrhs grid, and an attacks list")
		}
		if spec.Workloads != nil {
			// The attack sweep builds its own mix: the attacker on core 0
			// hiding in builtin benign traffic on the rest.
			return fmt.Errorf("attack does not take a workloads object")
		}
		if err := validateGrid("nrhs", spec.NRHs, l.MaxGrid, 1, 1<<20); err != nil {
			return err
		}
		if spec.Attacks != nil && len(spec.Attacks) == 0 {
			return fmt.Errorf("attacks is empty; omit it to run every preset")
		}
		if len(spec.Attacks) > l.MaxGrid {
			return fmt.Errorf("attacks has %d entries, limit %d", len(spec.Attacks), l.MaxGrid)
		}
		known := map[string]bool{}
		for _, k := range sim.AttackKinds() {
			known[k] = true
		}
		for _, k := range spec.Attacks {
			if !known[k] {
				return fmt.Errorf("unknown attack %q (want one of %v)", k, sim.AttackKinds())
			}
		}
		if err := spec.Sim.validate(l); err != nil {
			return err
		}
		return spec.validateCost(l)
	case KindCharacterize:
		if spec.Sim != nil || spec.Capacities != nil || spec.NRHs != nil || spec.Xs != nil ||
			spec.Policies != nil || spec.Config != nil || spec.Workloads != nil || spec.Attacks != nil {
			return fmt.Errorf("characterize takes only the charz block")
		}
		return spec.Charz.validate()
	case KindSecurity, KindArea:
		if spec.Sim != nil || spec.Capacities != nil || spec.NRHs != nil || spec.Xs != nil ||
			spec.Policies != nil || spec.Config != nil || spec.Charz != nil || spec.Workloads != nil ||
			spec.Attacks != nil {
			return fmt.Errorf("%s takes no parameters", spec.Kind)
		}
		return nil
	case "":
		return fmt.Errorf("missing kind")
	default:
		return fmt.Errorf("unknown kind %q", spec.Kind)
	}
}

// validateCost bounds a simulation job's estimated total cost. Per-axis
// caps alone still admit specs whose product is days of compute, so the
// estimate multiplies the effective sweep points, the policies each
// point evaluates, the workload mixes, and the per-run tick count.
func (spec JobSpec) validateCost(l Limits) error {
	gridLen := func(xs []int, def int) int64 {
		if xs == nil {
			return int64(def)
		}
		return int64(len(xs))
	}
	var points, policies int64
	switch spec.Kind {
	case KindFig9:
		points, policies = gridLen(spec.Capacities, len(sim.Fig9Capacities())), 6
	case KindFig12:
		points, policies = gridLen(spec.NRHs, len(sim.Fig12NRHValues())), 6
	case KindFig13, KindFig14:
		points, policies = gridLen(spec.Capacities, 3)*gridLen(spec.Xs, len(sim.ScaleXValues())), 3
	case KindFig15, KindFig16:
		points, policies = gridLen(spec.NRHs, 3)*gridLen(spec.Xs, len(sim.ScaleXValues())), 3
	case KindPolicies:
		points, policies = 1, int64(len(spec.Policies))
	case KindAttack:
		attacks := int64(len(sim.AttackKinds()))
		if spec.Attacks != nil {
			attacks = int64(len(spec.Attacks))
		}
		points = attacks * gridLen(spec.NRHs, len(sim.AttackNRHValues()))
		policies = 4 // the zoo: Baseline, PARA, Graphene, RFM
	default:
		return nil
	}
	o := spec.Sim.options().WithDefaults()
	if spec.Workloads != nil {
		// An explicit workload set replaces the builtin mixes.
		o.Workloads = len(spec.Workloads.Mixes)
	}
	if spec.Kind == KindAttack {
		// The attack sweep always runs exactly one mix per point: the
		// attacker hiding in one benign mix.
		o.Workloads = 1
	}
	cost := points * policies * int64(o.Workloads) * int64(o.Warmup+o.Measure)
	if cost > l.MaxTotalTicks {
		return fmt.Errorf("estimated cost %d ticks (%d sweep points x %d policies x %d workloads x %d ticks/run) exceeds the limit of %d; shrink the grids, workloads, or tick counts",
			cost, points, policies, o.Workloads, o.Warmup+o.Measure, l.MaxTotalTicks)
	}
	return nil
}

func validateGrid(name string, xs []int, maxLen, min, max int) error {
	if xs != nil && len(xs) == 0 {
		// JSON `[]`. Omit the field for the paper defaults; an empty
		// grid would silently sweep nothing (or, worse, be mistaken for
		// "defaults" and launch the full paper sweep).
		return fmt.Errorf("%s is empty; omit it to take the defaults", name)
	}
	if len(xs) > maxLen {
		return fmt.Errorf("%s has %d entries, limit %d", name, len(xs), maxLen)
	}
	for _, x := range xs {
		if x < min || x > max {
			return fmt.Errorf("%s value %d outside [%d, %d]", name, x, min, max)
		}
	}
	return nil
}

func (s *SimSpec) validate(l Limits) error {
	if s == nil {
		return nil
	}
	if s.Workloads < 0 || s.Workloads > l.MaxWorkloads {
		return fmt.Errorf("workloads %d outside [0, %d]", s.Workloads, l.MaxWorkloads)
	}
	if s.Cores < 0 || s.Cores > l.MaxCores {
		return fmt.Errorf("cores %d outside [0, %d]", s.Cores, l.MaxCores)
	}
	if s.Warmup < 0 || s.Measure < 0 {
		return fmt.Errorf("negative tick counts")
	}
	if s.Warmup+s.Measure > l.MaxTicks {
		return fmt.Errorf("warmup+measure %d exceeds the limit of %d ticks", s.Warmup+s.Measure, l.MaxTicks)
	}
	if s.ForensicsRecorder && !s.Forensics {
		return fmt.Errorf("forensics_recorder requires forensics")
	}
	return nil
}

// options converts the spec to sim.Options. The engine-level fields
// (Parallelism, ResultDir) stay zero: jobs run on the server's shared
// engine, whose construction fixed them.
func (s *SimSpec) options() sim.Options {
	if s == nil {
		return sim.Options{}
	}
	return sim.Options{
		Workloads: s.Workloads, Cores: s.Cores,
		Warmup: s.Warmup, Measure: s.Measure, Seed: s.Seed,
		Forensics: s.Forensics, ForensicsRecorder: s.ForensicsRecorder,
		NoPlanner: s.NoPlanner,
	}
}

func (c *ConfigSpec) validate() error {
	if c.CapacityGbit < 0 || c.CapacityGbit > 1024 {
		return fmt.Errorf("capacity_gbit %d outside [0, 1024]", c.CapacityGbit)
	}
	if c.Channels < 0 || c.Channels > 16 || c.Ranks < 0 || c.Ranks > 16 {
		return fmt.Errorf("channels/ranks outside [0, 16]")
	}
	if c.SPTCoverage < 0 || c.SPTCoverage > 1 {
		return fmt.Errorf("spt_coverage %g outside [0, 1]", c.SPTCoverage)
	}
	return nil
}

// config converts the spec to a sim.Config (Cores and Seed are filled
// from the SimSpec by the sweep itself).
func (c *ConfigSpec) config() sim.Config {
	cfg := sim.DefaultConfig()
	if c == nil {
		return cfg
	}
	if c.CapacityGbit != 0 {
		cfg.ChipCapacityGbit = c.CapacityGbit
	}
	if c.Channels != 0 {
		cfg.Channels = c.Channels
	}
	if c.Ranks != 0 {
		cfg.Ranks = c.Ranks
	}
	if c.SPTCoverage != 0 {
		cfg.SPTCoverage = c.SPTCoverage
	}
	return cfg
}

// policy converts one PolicySpec to the sim policy it names.
func (p PolicySpec) policy() (sim.RefreshPolicy, error) {
	if p.Slack < 0 || p.Slack > 64 {
		return sim.RefreshPolicy{}, fmt.Errorf("slack %d outside [0, 64]", p.Slack)
	}
	if p.NRH < 0 || p.NRH > 1<<20 {
		return sim.RefreshPolicy{}, fmt.Errorf("nrh %d outside [0, 2^20]", p.NRH)
	}
	if p.Param < 0 || p.Param > 1<<20 {
		return sim.RefreshPolicy{}, fmt.Errorf("param %d outside [0, 2^20]", p.Param)
	}
	if p.Param != 0 && p.Type != "graphene" && p.Type != "rfm" {
		return sim.RefreshPolicy{}, fmt.Errorf("param only tunes the graphene and rfm types")
	}
	switch p.Type {
	case "norefresh":
		return sim.NoRefreshPolicy(), nil
	case "baseline":
		return sim.BaselinePolicy(), nil
	case "hira":
		return sim.HiRAPeriodicPolicy(p.Slack), nil
	case "para":
		if p.NRH == 0 {
			return sim.RefreshPolicy{}, fmt.Errorf("para needs an nrh")
		}
		return sim.PARAPolicy(p.NRH), nil
	case "para+hira":
		if p.NRH == 0 {
			return sim.RefreshPolicy{}, fmt.Errorf("para+hira needs an nrh")
		}
		return sim.PARAHiRAPolicy(p.NRH, p.Slack), nil
	case "graphene":
		if p.NRH == 0 {
			return sim.RefreshPolicy{}, fmt.Errorf("graphene needs an nrh")
		}
		return sim.GraphenePolicy(p.NRH, p.Param), nil
	case "rfm":
		if p.NRH == 0 && p.Param == 0 {
			return sim.RefreshPolicy{}, fmt.Errorf("rfm needs an nrh or an explicit param (RAAIMT)")
		}
		return sim.RFMPolicy(p.NRH, p.Param), nil
	default:
		return sim.RefreshPolicy{}, fmt.Errorf("unknown policy type %q", p.Type)
	}
}

// policies converts the spec's policy list.
func (spec JobSpec) policyList() ([]sim.RefreshPolicy, error) {
	out := make([]sim.RefreshPolicy, len(spec.Policies))
	for i, p := range spec.Policies {
		pol, err := p.policy()
		if err != nil {
			return nil, err
		}
		out[i] = pol
	}
	return out, nil
}

func (c *CharzSpec) validate() error {
	if c == nil {
		return nil
	}
	if c.RegionSize < 0 || c.RegionSize > 2048 {
		return fmt.Errorf("region_size %d outside [0, 2048]", c.RegionSize)
	}
	if c.RowAStride < 0 || c.RowBStride < 0 || c.NRHVictims < 0 || c.NRHVictims > 256 {
		return fmt.Errorf("negative strides or nrh_victims outside [0, 256]")
	}
	known := map[string]bool{}
	for _, m := range charz.TestedModules() {
		known[m.Label] = true
	}
	for _, label := range c.Modules {
		if !known[label] {
			return fmt.Errorf("unknown module %q", label)
		}
	}
	return nil
}

// modules resolves the module set a charz spec asks for.
func (c *CharzSpec) modules() []charz.Module {
	all := charz.TestedModules()
	if c == nil || len(c.Modules) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, label := range c.Modules {
		want[label] = true
	}
	var out []charz.Module
	for _, m := range all {
		if want[m.Label] {
			out = append(out, m)
		}
	}
	return out
}

// charzOptions converts the spec to charz.Options, defaulting to a
// laptop-scale run rather than charz's own paper-scale defaults.
func (c *CharzSpec) charzOptions() charz.Options {
	opts := charz.Options{RegionSize: 512, NRHVictims: 8}
	if c == nil {
		return opts
	}
	if c.RegionSize != 0 {
		opts.RegionSize = c.RegionSize
	}
	if c.RowAStride != 0 {
		opts.RowAStride = c.RowAStride
	}
	if c.RowBStride != 0 {
		opts.RowBStride = c.RowBStride
	}
	if c.NRHVictims != 0 {
		opts.NRHVictims = c.NRHVictims
	}
	return opts
}
