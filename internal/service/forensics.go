package service

import (
	"encoding/json"
	"net/http"
	"sort"

	"hira/internal/sim"
)

// PolicyForensics pairs one policy name with its aggregated RowHammer
// forensics summary.
type PolicyForensics struct {
	Policy    string                `json:"policy"`
	Forensics *sim.ForensicsSummary `json:"forensics"`
}

// ForensicsView is the body of GET /v1/jobs/{id}/forensics: the job's
// per-policy forensics summaries, aggregated across every sweep point
// and workload mix the job ran (tallies summed, maxes maxed).
type ForensicsView struct {
	JobID    string            `json:"job_id"`
	Kind     string            `json:"kind"`
	Policies []PolicyForensics `json:"policies"`
}

// collectForensics extracts per-policy forensics summaries from a
// finished job's result payload. An empty slice means the job carried
// none (kind cannot, or the spec did not enable forensics).
func collectForensics(spec JobSpec, raw json.RawMessage) ([]PolicyForensics, error) {
	byName := map[string]*sim.ForensicsSummary{}
	fold := func(m map[string]*sim.ForensicsSummary) {
		for name, fx := range m {
			byName[name] = sim.MergeForensics(byName[name], fx)
		}
	}
	switch spec.Kind {
	case KindFig9, KindFig12, KindFig13, KindFig14, KindFig15, KindFig16, KindAttack:
		var res sim.FigureResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return nil, err
		}
		for _, row := range res.Fig9 {
			fold(row.Forensics)
		}
		for _, row := range res.Fig12 {
			fold(row.Forensics)
		}
		for _, row := range res.Scale {
			fold(row.Forensics)
		}
		for _, row := range res.Attack {
			fold(row.Forensics)
		}
	case KindPolicies:
		var res PoliciesResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return nil, err
		}
		for _, sc := range res.Policies {
			if sc.Forensics != nil {
				byName[sc.Policy.Name] = sim.MergeForensics(byName[sc.Policy.Name], sc.Forensics)
			}
		}
	default:
		return nil, nil
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]PolicyForensics, 0, len(names))
	for _, name := range names {
		out = append(out, PolicyForensics{Policy: name, Forensics: byName[name]})
	}
	return out, nil
}

// handleForensics serves a finished job's RowHammer forensics report:
// JSON by default, the flight recorder's command log in Chrome
// trace-event format (loadable at ui.perfetto.dev) with ?format=chrome.
func (s *Server) handleForensics(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	v := j.snapshot()
	if v.Result == nil {
		writeError(w, http.StatusConflict, "job %s has no result yet (state %s)", v.ID, v.State)
		return
	}
	policies, err := collectForensics(v.Spec, v.Result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "decode job result: %v", err)
		return
	}
	if len(policies) == 0 {
		writeError(w, http.StatusNotFound,
			`job %s recorded no forensics; submit with "sim": {"forensics": true}`, v.ID)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		var merged *sim.ForensicsSummary
		for _, p := range policies {
			merged = sim.MergeForensics(merged, p.Forensics)
		}
		w.Header().Set("Content-Type", "application/json")
		merged.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, ForensicsView{JobID: v.ID, Kind: v.Spec.Kind, Policies: policies})
}
