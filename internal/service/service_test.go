package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hira/internal/sim"
	"hira/internal/workload"
)

// testSpec is the laptop-scale Fig. 9-shaped job every e2e test submits.
func testSpec() JobSpec {
	return JobSpec{
		Kind:       KindFig9,
		Capacities: []int{8},
		Sim:        &SimSpec{Workloads: 1, Cores: 4, Warmup: 2000, Measure: 6000, Seed: 1},
	}
}

// testOpts is testSpec's sim.Options twin for in-process reference runs.
func testOpts() sim.Options {
	return sim.Options{Workloads: 1, Cores: 4, Warmup: 2000, Measure: 6000, Seed: 1}
}

// newTestServer spins a service with its HTTP front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, NewClient(ts.URL)
}

// TestFig9JobEndToEnd is the acceptance path: a Fig. 9-shaped sweep
// submitted over HTTP returns rows DeepEqual to in-process sim.Fig9;
// resubmitting against the same store simulates zero cells; and a fresh
// server over the same store serves everything from disk.
func TestFig9JobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	want, err := sim.Fig9(ctx, testOpts(), []int{8})
	if err != nil {
		t.Fatal(err)
	}

	svc, client := newTestServer(t, Config{
		Engine:  sim.EngineConfig{Parallelism: 4, ResultDir: dir},
		Workers: 2,
	})

	var progressed bool
	job, err := client.Run(ctx, testSpec(), func(done, total int) { progressed = true })
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", job.State, job.Error)
	}
	// A fast job may finish before the event stream connects, so
	// client-side progress events are best-effort; the server-side
	// progress must always have reached the final cell count.
	if !progressed {
		t.Logf("job finished before the stream connected; no client-side progress events")
	}
	if job.Progress.Total == 0 || job.Progress.Done != job.Progress.Total {
		t.Errorf("terminal progress = %+v, want done == total > 0", job.Progress)
	}
	res, err := job.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindFig9 {
		t.Errorf("result kind = %q", res.Kind)
	}
	if !reflect.DeepEqual(res.Fig9, want) {
		t.Fatalf("HTTP rows differ from in-process sim.Fig9:\nhttp:       %+v\nin-process: %+v", res.Fig9, want)
	}
	if job.Stats == nil || job.Stats.Simulated == 0 {
		t.Fatalf("cold job stats = %+v, want simulations", job.Stats)
	}
	cold := *job.Stats

	// Resubmit on the same server: zero simulations, all cache/store
	// hits (plus intra-batch dedup).
	warm, err := client.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone {
		t.Fatalf("warm job state = %s (%s)", warm.State, warm.Error)
	}
	ws := warm.Stats
	if ws.Simulated != 0 {
		t.Errorf("warm resubmission simulated %d cells, want 0 (stats %+v)", ws.Simulated, ws)
	}
	if ws.CacheHits+ws.StoreHits+ws.Deduped != ws.Submitted {
		t.Errorf("warm resubmission not fully served from cache/store: %+v", ws)
	}
	wres, err := warm.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wres.Fig9, want) {
		t.Error("warm resubmission changed rows")
	}

	// A fresh server over the same store: zero simulations, served from
	// the sharded on-disk store via its startup index.
	if svc.Engine().StoredCells() == 0 {
		t.Fatal("first server persisted no cells")
	}
	_, client2 := newTestServer(t, Config{
		Engine:  sim.EngineConfig{Parallelism: 4, ResultDir: dir},
		Workers: 1,
	})
	restarted, err := client2.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := restarted.Stats
	if rs.Simulated != 0 || rs.StoreHits == 0 {
		t.Errorf("restarted server stats = %+v, want 0 simulated and store hits", rs)
	}
	rres, err := restarted.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rres.Fig9, want) {
		t.Error("store round-trip through a restarted server changed rows")
	}
	_ = cold
}

// TestConcurrentColdJobsSimulateOnce asserts the cross-request
// singleflight at service level: two identical cold jobs submitted
// together simulate each cell exactly once between them.
func TestConcurrentColdJobsSimulateOnce(t *testing.T) {
	ctx := context.Background()

	// Reference: how many unique cells does this sweep have?
	var ref sim.EngineStats
	opts := testOpts()
	opts.Stats = &ref
	want, err := sim.Fig9(ctx, opts, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	unique := ref.Simulated
	if unique == 0 {
		t.Fatal("reference run simulated nothing")
	}

	svc, client := newTestServer(t, Config{
		Engine:  sim.EngineConfig{Parallelism: 4},
		Workers: 2,
	})
	a, err := client.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := client.Wait(ctx, a.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := client.Wait(ctx, b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ja.State != StateDone || jb.State != StateDone {
		t.Fatalf("states = %s / %s (%s %s)", ja.State, jb.State, ja.Error, jb.Error)
	}
	if got := svc.Engine().Stats().Simulated; got != unique {
		t.Errorf("two concurrent cold jobs simulated %d cells total, want %d (each cell exactly once)", got, unique)
	}
	ra, _ := ja.FigureResult()
	rb, _ := jb.FigureResult()
	if !reflect.DeepEqual(ra.Fig9, want) || !reflect.DeepEqual(rb.Fig9, want) {
		t.Error("concurrent jobs returned rows differing from the reference")
	}
}

// TestTraceWorkloadJobEndToEnd is the custom-workload acceptance path:
// a trace recorded from a synthetic run replays byte-identically — the
// same figure rows through the CLI code path (sim.Fig9 with explicit
// mixes, exactly what `hira-sim -trace -json` runs) and through a
// service job referencing the trace by file — and a warm resubmission
// simulates zero cells.
func TestTraceWorkloadJobEndToEnd(t *testing.T) {
	ctx := context.Background()
	traceDir := t.TempDir()

	// Record the trace the way `hira-sim -record` does.
	mcf, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := workload.Record("t1.trace", mcf, 1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTraceFile(filepath.Join(traceDir, "t1.trace"), rec.Accesses()); err != nil {
		t.Fatal(err)
	}

	// CLI-equivalent reference: load the file back and run the sweep
	// with the same round-robin mix rule hira-sim -trace applies.
	tr, err := workload.LoadTrace(filepath.Join(traceDir, "t1.trace"))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Mixes = workload.RoundRobinMixes([]workload.Source{tr}, 1, opts.Cores)
	want, err := sim.Fig9(ctx, opts, []int{8})
	if err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Config{
		Engine:   sim.EngineConfig{Parallelism: 4},
		Workers:  2,
		TraceDir: traceDir,
	})
	spec := testSpec()
	spec.Workloads = &WorkloadsSpec{
		Traces: []TraceSpec{{Name: "t1", File: "t1.trace"}},
		Mixes:  [][]string{{"t1", "t1", "t1", "t1"}},
	}
	job, err := client.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("trace job state = %s (%s)", job.State, job.Error)
	}
	res, err := job.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Fig9, want) {
		t.Fatalf("trace-driven HTTP rows differ from the CLI code path:\nhttp: %+v\ncli:  %+v", res.Fig9, want)
	}
	if job.Stats == nil || job.Stats.Simulated == 0 {
		t.Fatalf("cold trace job stats = %+v, want simulations", job.Stats)
	}

	// Warm resubmission: the trace's digest-based cell keys are stable,
	// so nothing simulates again.
	warm, err := client.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone || warm.Stats.Simulated != 0 {
		t.Fatalf("warm trace resubmission: state %s, simulated %d (want done, 0)",
			warm.State, warm.Stats.Simulated)
	}
	wres, err := warm.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wres.Fig9, want) {
		t.Error("warm trace resubmission changed rows")
	}

	// A builtin-mix run of the same shape must NOT share the trace run's
	// cells (distinct workload identities).
	builtin, err := client.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if builtin.Stats == nil || builtin.Stats.Simulated == 0 {
		t.Fatalf("builtin-mix job was served from trace-workload cells: %+v", builtin.Stats)
	}
}

// TestCustomProfileJob runs a "policies" job over an inline custom
// profile mixed with a builtin benchmark and checks it against the
// in-process result.
func TestCustomProfileJob(t *testing.T) {
	ctx := context.Background()
	hot := workload.Profile{Name: "hot", MPKI: 50, RowLocality: 0.1, FootprintMB: 8, WriteFrac: 0.5}
	mcf, _ := workload.ProfileByName("mcf")
	opts := sim.Options{Cores: 2, Warmup: 2000, Measure: 6000, Seed: 1,
		Mixes: []workload.SourceMix{{ID: 0, Sources: []workload.Source{mcf, hot}}}}
	want, err := sim.RunPolicies(ctx, sim.DefaultConfig(), []sim.RefreshPolicy{sim.BaselinePolicy()}, opts)
	if err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Config{Workers: 1})
	job, err := client.Run(ctx, JobSpec{
		Kind:     KindPolicies,
		Policies: []PolicySpec{{Type: "baseline"}},
		Sim:      &SimSpec{Cores: 2, Warmup: 2000, Measure: 6000, Seed: 1},
		Workloads: &WorkloadsSpec{
			Mixes:    [][]string{{"mcf", "hot"}},
			Profiles: []ProfileSpec{{Name: "hot", MPKI: 50, RowLocality: 0.1, FootprintMB: 8, WriteFrac: 0.5}},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}
	var res PoliciesResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Policies, want) {
		t.Fatalf("custom-profile HTTP scores differ from in-process:\nhttp: %+v\nwant: %+v", res.Policies, want)
	}
}

// TestWorkloadSpecValidation covers the workloads-object 400 paths,
// including trace references that must fail at submission, not as jobs.
func TestWorkloadSpecValidation(t *testing.T) {
	ctx := context.Background()
	traceDir := t.TempDir()
	_, client := newTestServer(t, Config{Workers: 1, TraceDir: traceDir})

	wl := func(w WorkloadsSpec) JobSpec {
		s := testSpec()
		s.Workloads = &w
		return s
	}
	cases := map[string]JobSpec{
		"empty mixes":    wl(WorkloadsSpec{}),
		"short mix":      wl(WorkloadsSpec{Mixes: [][]string{{"mcf"}}}),
		"unknown name":   wl(WorkloadsSpec{Mixes: [][]string{{"mcf", "mcf", "mcf", "nope"}}}),
		"builtin shadow": wl(WorkloadsSpec{Mixes: [][]string{{"mcf", "mcf", "mcf", "mcf"}}, Profiles: []ProfileSpec{{Name: "mcf", MPKI: 1, FootprintMB: 1}}}),
		"bad profile":    wl(WorkloadsSpec{Mixes: [][]string{{"hot", "hot", "hot", "hot"}}, Profiles: []ProfileSpec{{Name: "hot", MPKI: -4, FootprintMB: 1}}}),
		"path traversal": wl(WorkloadsSpec{Mixes: [][]string{{"t", "t", "t", "t"}}, Traces: []TraceSpec{{Name: "t", File: "../../etc/passwd"}}}),
		"missing trace":  wl(WorkloadsSpec{Mixes: [][]string{{"t", "t", "t", "t"}}, Traces: []TraceSpec{{Name: "t", File: "absent.trace"}}}),
		"workloads on area": func() JobSpec {
			return JobSpec{Kind: KindArea, Workloads: &WorkloadsSpec{Mixes: [][]string{{"mcf"}}}}
		}(),
	}
	for name, spec := range cases {
		if _, err := client.Submit(ctx, spec); err == nil {
			t.Errorf("%s: accepted, want 400", name)
		} else if !strings.Contains(err.Error(), "invalid job spec") {
			t.Errorf("%s: err %v, want invalid-job-spec 400", name, err)
		}
	}

	// A trace reference against a server with no trace directory is a
	// 400 too (not a failed job).
	_, noTraces := newTestServer(t, Config{Workers: 1})
	withTrace := wl(WorkloadsSpec{Mixes: [][]string{{"t", "t", "t", "t"}}, Traces: []TraceSpec{{Name: "t", File: "t.trace"}}})
	if _, err := noTraces.Submit(ctx, withTrace); err == nil || !strings.Contains(err.Error(), "trace directory") {
		t.Errorf("trace spec without TraceDir: err %v, want trace-directory 400", err)
	}
}

// seqInts returns [1, 2, ..., n].
func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// TestValidationErrors covers the 400 paths.
func TestValidationErrors(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	cases := []JobSpec{
		{},                                     // missing kind
		{Kind: "fig99"},                        // unknown kind
		{Kind: KindFig9, NRHs: []int{64}},      // wrong grid for the kind
		{Kind: KindFig9, Xs: []int{1, 2}},      // fig9 has no channel axis
		{Kind: KindFig9, Capacities: []int{0}}, // out-of-range value
		{Kind: KindFig9, Sim: &SimSpec{Workloads: 100000}}, // over limits
		{Kind: KindPolicies}, // no policies
		{Kind: KindPolicies, Policies: []PolicySpec{{Type: "para"}}},         // para without nrh
		{Kind: KindPolicies, Policies: []PolicySpec{{Type: "warp"}}},         // unknown policy
		{Kind: KindCharacterize, Charz: &CharzSpec{Modules: []string{"Z9"}}}, // unknown module
		{Kind: KindArea, Sim: &SimSpec{}},                                    // area takes no parameters
		// Each axis within bounds, but the product is days of compute.
		{Kind: KindFig9, Capacities: seqInts(32), Sim: &SimSpec{Workloads: 128, Measure: 9_000_000}},
	}
	for _, spec := range cases {
		if _, err := client.Submit(ctx, spec); err == nil {
			t.Errorf("spec %+v accepted, want validation error", spec)
		} else if !strings.Contains(err.Error(), "invalid job spec") {
			t.Errorf("spec %+v error %v, want an invalid-job-spec 400", spec, err)
		}
	}

	// Raw-body cases the Go client cannot produce (omitempty elides
	// empty slices): unknown fields and explicitly empty grids.
	rawCases := []string{
		`{"kind":"fig9","frobnicate":1}`,
		`{"kind":"fig9","capacities":[]}`, // omit the field for defaults
	}
	for _, body := range rawCases {
		resp, err := http.Post(client.BaseURL+"/v1/jobs", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s got %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestUnknownJob covers the 404 paths.
func TestUnknownJob(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := client.Job(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("GET unknown job err = %v, want 404", err)
	}
	if err := client.Cancel(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("DELETE unknown job err = %v, want 404", err)
	}
	resp, err := http.Get(client.BaseURL + "/v1/jobs/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stream of unknown job got %d, want 404", resp.StatusCode)
	}
}

// TestCancelQueuedAndRunning exercises both cancellation paths on a
// single-worker server: the running job is interrupted mid-simulation,
// the queued job is finalized without ever starting.
func TestCancelQueuedAndRunning(t *testing.T) {
	svc, client := newTestServer(t, Config{
		Engine:  sim.EngineConfig{Parallelism: 2},
		Workers: 1,
	})
	ctx := context.Background()

	// A big enough sweep to still be running when the cancel lands.
	big := JobSpec{
		Kind:       KindFig9,
		Capacities: []int{8, 16, 32, 64},
		Sim:        &SimSpec{Workloads: 2, Cores: 8, Warmup: 20000, Measure: 200000, Seed: 1},
	}
	running, err := client.Submit(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(ctx, big)
	if err != nil {
		t.Fatal(err)
	}

	if err := client.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	q, err := client.Job(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if q.State != StateCancelled {
		t.Errorf("queued job state after cancel = %s, want cancelled", q.State)
	}

	if err := client.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	r, err := client.Wait(ctx, running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateCancelled {
		t.Errorf("running job state after cancel = %s (%s), want cancelled", r.State, r.Error)
	}
	if r.Result != nil {
		t.Error("cancelled job carries a result")
	}

	// Cancelling a finished job conflicts.
	small, err := client.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Cancel(ctx, small.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("cancel of finished job err = %v, want 409", err)
	}
	_ = svc
}

// TestPoliciesJob runs a direct RunPolicies evaluation over HTTP and
// checks it against the in-process result.
func TestPoliciesJob(t *testing.T) {
	ctx := context.Background()
	base := sim.DefaultConfig()
	base.ChipCapacityGbit = 32
	policies := []sim.RefreshPolicy{sim.BaselinePolicy(), sim.HiRAPeriodicPolicy(2)}
	want, err := sim.RunPolicies(ctx, base, policies, testOpts())
	if err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, Config{Workers: 1})
	job, err := client.Run(ctx, JobSpec{
		Kind:     KindPolicies,
		Config:   &ConfigSpec{CapacityGbit: 32},
		Policies: []PolicySpec{{Type: "baseline"}, {Type: "hira", Slack: 2}},
		Sim:      &SimSpec{Workloads: 1, Cores: 4, Warmup: 2000, Measure: 6000, Seed: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}
	var res PoliciesResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Policies, want) {
		t.Fatalf("HTTP policy scores differ from in-process RunPolicies:\nhttp:       %+v\nin-process: %+v", res.Policies, want)
	}
}

// TestAreaAndSecurityJobs smoke-tests the non-simulation kinds.
func TestAreaAndSecurityJobs(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	area, err := client.Run(ctx, JobSpec{Kind: KindArea}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if area.State != StateDone {
		t.Fatalf("area job: %s (%s)", area.State, area.Error)
	}
	var rep struct {
		TotalAreaMM2 float64 `json:"TotalAreaMM2"`
	}
	if err := json.Unmarshal(area.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TotalAreaMM2 <= 0 {
		t.Errorf("area result %s lacks a positive TotalAreaMM2", area.Result)
	}

	sec, err := client.Run(ctx, JobSpec{Kind: KindSecurity}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sec.State != StateDone {
		t.Fatalf("security job: %s (%s)", sec.State, sec.Error)
	}
	var pts []struct {
		NRH int     `json:"NRH"`
		Pth float64 `json:"Pth"`
	}
	if err := json.Unmarshal(sec.Result, &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].Pth <= 0 {
		t.Errorf("security result has %d points", len(pts))
	}
}

// TestListAndStats covers the listing and stats endpoints.
func TestListAndStats(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := client.Run(ctx, JobSpec{Kind: KindArea}, nil); err != nil {
		t.Fatal(err)
	}
	jobs, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Result != nil {
		t.Errorf("listing = %+v, want one job with result elided", jobs)
	}
	rep, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[StateDone] != 1 {
		t.Errorf("stats jobs = %+v, want one done", rep.Jobs)
	}
	if rep.Parallelism < 1 {
		t.Errorf("stats parallelism = %d", rep.Parallelism)
	}
}

// TestFinishedJobEviction asserts the job table stays bounded: once
// more than RetainJobs are tracked, the oldest finished jobs (and their
// pinned result payloads) are dropped, while recent ones stay
// queryable.
func TestFinishedJobEviction(t *testing.T) {
	// RetainFor is effectively zero so freshly finished jobs are
	// eligible; production defaults keep a one-minute polling window.
	_, client := newTestServer(t, Config{Workers: 1, RetainJobs: 2, RetainFor: time.Nanosecond})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := client.Run(ctx, JobSpec{Kind: KindArea}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job %s state = %s", j.ID, j.State)
		}
		ids = append(ids, j.ID)
	}
	jobs, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) > 2 {
		t.Errorf("listing retains %d finished jobs, want <= RetainJobs (2)", len(jobs))
	}
	if _, err := client.Job(ctx, ids[0]); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("oldest job still queryable after eviction (err %v)", err)
	}
	if _, err := client.Job(ctx, ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
}

// TestCancelFreesQueueSlot asserts a cancelled pending job releases its
// queue slot immediately, so new submissions are not spuriously 503'd
// by tombstones.
func TestCancelFreesQueueSlot(t *testing.T) {
	_, client := newTestServer(t, Config{
		Engine:     sim.EngineConfig{Parallelism: 1},
		Workers:    1,
		QueueDepth: 1,
	})
	// These tests assert the raw queue-full 503 contract; the client's
	// default retry-on-503 would wait out the queue and hide it.
	client.MaxRetries = -1
	ctx := context.Background()
	long := JobSpec{
		Kind:       KindFig9,
		Capacities: []int{64},
		Sim:        &SimSpec{Workloads: 2, Cores: 8, Warmup: 20000, Measure: 200000, Seed: 1},
	}
	running, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the one queue slot (retry while the worker races us to pop
	// the first job off the pending list).
	var queued *Job
	for {
		queued, err = client.Submit(ctx, long)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "503") {
			t.Fatal(err)
		}
	}
	// Saturate: one more submission must bounce ... eventually; the
	// worker may pop `queued` first, in which case this submission
	// occupies the slot and the next one bounces.
	var extras []string
	sawReject := false
	for i := 0; i < 3 && !sawReject; i++ {
		j, err := client.Submit(ctx, long)
		if err != nil {
			if !strings.Contains(err.Error(), "503") {
				t.Fatal(err)
			}
			sawReject = true
		} else {
			extras = append(extras, j.ID)
		}
	}
	if !sawReject {
		t.Fatal("queue with depth 1 accepted every submission")
	}
	// Cancel the pending job: its slot frees instantly and the next
	// submission is accepted.
	if err := client.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	freed, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatalf("submission after cancelling the pending job still rejected: %v", err)
	}
	for _, id := range append(extras, running.ID, freed.ID) {
		client.Cancel(ctx, id)
	}
}

// TestQueueFull asserts a saturated queue 503s instead of queueing
// unboundedly.
func TestQueueFull(t *testing.T) {
	_, client := newTestServer(t, Config{
		Engine:     sim.EngineConfig{Parallelism: 1},
		Workers:    1,
		QueueDepth: 1,
	})
	// These tests assert the raw queue-full 503 contract; the client's
	// default retry-on-503 would wait out the queue and hide it.
	client.MaxRetries = -1
	ctx := context.Background()
	// One slow job occupies the worker; one fills the queue; the third
	// must bounce. (The first job may pop from the queue immediately, so
	// allow one extra submission before asserting.)
	slow := JobSpec{
		Kind:       KindFig9,
		Capacities: []int{32, 64},
		Sim:        &SimSpec{Workloads: 2, Cores: 8, Warmup: 20000, Measure: 200000, Seed: 1},
	}
	var ids []string
	var sawReject bool
	for i := 0; i < 4; i++ {
		j, err := client.Submit(ctx, slow)
		if err != nil {
			if !strings.Contains(err.Error(), "503") {
				t.Fatalf("submission %d failed with %v, want 503", i, err)
			}
			sawReject = true
			break
		}
		ids = append(ids, j.ID)
	}
	if !sawReject {
		t.Error("queue never filled: 4 submissions accepted with depth 1")
	}
	for _, id := range ids {
		client.Cancel(ctx, id)
	}
	for _, id := range ids {
		if _, err := client.Wait(ctx, id, nil); err != nil {
			t.Fatal(err)
		}
	}
}
