package service

import (
	"context"
	"strings"
	"testing"
)

// TestAttackJob runs an attack×mitigation sweep job end to end: the
// result must carry per-point efficacy metrics showing the unmitigated
// double-sided attack crossing NRH while Graphene holds every victim
// below it, and the forensics endpoint must aggregate all four zoo
// policies — without the spec asking for forensics (attack cells always
// run the ledger).
func TestAttackJob(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	const nrh = 64
	job, err := client.Run(ctx, JobSpec{
		Kind:    KindAttack,
		Attacks: []string{"double"},
		NRHs:    []int{nrh},
		Sim:     &SimSpec{Cores: 2, Warmup: 20000, Measure: 60000, Seed: 7},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}

	res, err := job.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindAttack || len(res.Attack) != 1 {
		t.Fatalf("result kind %q with %d attack rows, want %q with 1", res.Kind, len(res.Attack), KindAttack)
	}
	row := res.Attack[0]
	if row.Attack != "double" || row.NRH != nrh {
		t.Fatalf("row is (%s, %d), want (double, %d)", row.Attack, row.NRH, nrh)
	}
	for _, name := range []string{"Baseline", "PARA", "Graphene", "RFM"} {
		if _, ok := row.WS[name]; !ok {
			t.Errorf("row carries no weighted speedup for %s", name)
		}
		if row.Forensics[name] == nil {
			t.Fatalf("row carries no forensics for %s", name)
		}
	}
	if base := row.Forensics["Baseline"]; base.MaxVictimExposure <= nrh {
		t.Errorf("unmitigated attack peaked at exposure %d, want > NRH %d", base.MaxVictimExposure, nrh)
	}
	if g := row.Forensics["Graphene"]; g.MaxVictimExposure >= nrh {
		t.Errorf("Graphene let a victim reach exposure %d, want < NRH %d", g.MaxVictimExposure, nrh)
	}

	view, err := client.Forensics(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Kind != KindAttack || len(view.Policies) != 4 {
		t.Fatalf("forensics view is %s with %d policies, want %s with 4", view.Kind, len(view.Policies), KindAttack)
	}
}

// TestAttackSpecValidation: the attack kind's acceptance surface.
func TestAttackSpecValidation(t *testing.T) {
	var l Limits
	ok := JobSpec{Kind: KindAttack, Attacks: []string{"refsync", "decoy"}, NRHs: []int{64, 128}}
	if err := ok.Validate(l); err != nil {
		t.Errorf("valid attack spec rejected: %v", err)
	}
	if err := (JobSpec{Kind: KindAttack}).Validate(l); err != nil {
		t.Errorf("all-defaults attack spec rejected: %v", err)
	}

	cases := map[string]JobSpec{
		"unknown attack":  {Kind: KindAttack, Attacks: []string{"sideways"}},
		"empty attacks":   {Kind: KindAttack, Attacks: []string{}},
		"empty nrhs":      {Kind: KindAttack, NRHs: []int{}},
		"capacities grid": {Kind: KindAttack, Capacities: []int{8}},
		"policies block":  {Kind: KindAttack, Policies: []PolicySpec{{Type: "baseline"}}},
		"workloads block": {Kind: KindAttack, Workloads: &WorkloadsSpec{Mixes: [][]string{{"mcf"}}}},
		"attacks on fig9": {Kind: KindFig9, Attacks: []string{"double"}},
	}
	for name, spec := range cases {
		if err := spec.Validate(l); err == nil {
			t.Errorf("%s: accepted, want an error", name)
		}
	}

	// Zoo engines ride the policies kind too, with param tuning.
	for _, p := range []PolicySpec{
		{Type: "graphene", NRH: 1024},
		{Type: "graphene", NRH: 1024, Param: 32},
		{Type: "rfm", NRH: 1024},
		{Type: "rfm", Param: 64},
	} {
		if _, err := p.policy(); err != nil {
			t.Errorf("policy %+v rejected: %v", p, err)
		}
	}
	for _, p := range []PolicySpec{
		{Type: "graphene"},
		{Type: "rfm"},
		{Type: "para", NRH: 1024, Param: 8},
	} {
		if _, err := p.policy(); err == nil {
			t.Errorf("policy %+v accepted, want an error", p)
		} else if err != nil && !strings.Contains(err.Error(), "param") && !strings.Contains(err.Error(), "needs") {
			t.Errorf("policy %+v error %q names neither param nor a missing field", p, err)
		}
	}
}
