package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hira/internal/areamodel"
	"hira/internal/charz"
	"hira/internal/engine"
	"hira/internal/rowhammer"
	"hira/internal/sim"
	"hira/internal/telemetry"
	"hira/internal/workload"
)

// Config sizes a Server.
type Config struct {
	// Engine configures the shared experiment engine every job runs on:
	// Parallelism bounds concurrent cell simulations across all jobs,
	// ResultDir is the content-addressed result store.
	Engine sim.EngineConfig
	// Workers bounds how many jobs execute concurrently; <= 0 means 2.
	// Cell-level parallelism inside each job is bounded separately by
	// Engine.Parallelism, which concurrent jobs share.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; <= 0 means 64. A
	// full queue rejects submissions with 503 rather than queueing
	// unboundedly.
	QueueDepth int
	// RetainJobs bounds how many finished jobs (and their result
	// payloads) stay queryable in memory; <= 0 means 256. The oldest
	// terminal jobs are evicted first — their cell results remain
	// durable in the engine's store, so resubmitting is cheap. Queued
	// and running jobs are never evicted.
	RetainJobs int
	// RetainFor is a grace period during which a finished job is never
	// evicted even over the RetainJobs bound, so a client that lost its
	// event stream and fell back to polling can still fetch the result;
	// <= 0 means one minute.
	RetainFor time.Duration
	// TraceDir is the directory job specs' trace references (the
	// workloads object's traces[].file entries) resolve against. Empty
	// rejects trace-referencing specs.
	TraceDir string
	// JournalPath, when non-empty, persists every live (queued or
	// running) job's spec to a crash-safe journal file. On startup the
	// journal's surviving entries are re-validated and re-enqueued under
	// their original IDs, so a crashed or killed server resumes its
	// interrupted jobs — against the warm result/checkpoint stores, which
	// makes re-running them cost roughly the in-flight delta. Empty
	// disables journaling (jobs die with the process, as before).
	JournalPath string
	// Limits bounds individual job specs.
	Limits Limits
	// Telemetry is the metrics registry the server (and the engine it
	// builds) instruments itself on, served at GET /metrics. Nil makes
	// the server create its own, so /metrics always works; pass one in
	// to add process-level metrics or share a registry.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives structured job lifecycle logs
	// (submit/start/finish/cancel), each tagged with the job ID. Nil
	// disables logging.
	Logger *slog.Logger
	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
}

// Server schedules experiment jobs on one shared engine and serves them
// over HTTP. Construct with New, mount Handler, and Close when done.
type Server struct {
	cfg      Config
	lab      *sim.Engine
	mux      *http.ServeMux
	registry *telemetry.Registry
	metrics  *svcMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// journal is the durable live-job record (nil without a JournalPath
	// or when opening it failed — journalErr keeps the reason for
	// /readyz). retainJournal flips on at shutdown so jobs still live
	// when the process exits stay journaled for the next one.
	journal       *journal
	journalErr    error
	retainJournal atomic.Bool
	recovered     atomic.Uint64 // jobs re-enqueued from the journal
	panics        atomic.Uint64 // job executions that ended in a recovered panic
	droppedSpans  atomic.Uint64 // job-trace spans lost to the per-job cap, folded in as jobs finish

	mu      sync.Mutex
	cond    *sync.Cond // signals workers when pending grows or the server closes
	pending []*job     // jobs waiting for a worker, FIFO; cancels remove entries
	jobs    map[string]*job
	order   []string // submission order, for listing
	seq     int
	closed  bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 256
	}
	if cfg.RetainFor <= 0 {
		cfg.RetainFor = time.Minute
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Engine.Telemetry == nil {
		cfg.Engine.Telemetry = cfg.Telemetry
	}
	cfg.Limits = cfg.Limits.withDefaults()
	s := &Server{
		cfg:      cfg,
		lab:      sim.NewEngine(cfg.Engine),
		mux:      http.NewServeMux(),
		registry: cfg.Telemetry,
		jobs:     make(map[string]*job),
	}
	s.metrics = newSvcMetrics(cfg.Telemetry, s)
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.routes()
	if cfg.JournalPath != "" {
		jn, entries, err := openJournal(cfg.JournalPath, cfg.Engine.FS)
		if err != nil {
			// Journal-less degradation: the server still serves jobs, they
			// just will not survive a restart; /readyz reports why.
			s.journalErr = err
			s.logInfo("journal disabled", "error", err.Error())
		} else {
			s.journal = jn
			s.recoverJobs(entries)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the shared experiment engine (for stats inspection).
func (s *Server) Engine() *sim.Engine { return s.lab }

// Handler returns the HTTP handler serving the job API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting work, cancels running jobs, and waits for the
// workers to drain. Pending jobs finalize as cancelled. Jobs that were
// still live keep their journal entries, so a restart over the same
// journal re-enqueues them.
func (s *Server) Close() {
	s.retainJournal.Store(true)
	s.mu.Lock()
	s.closed = true
	pending := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop() // interrupts running jobs' contexts
	s.wg.Wait()
	now := s.cfg.now()
	for _, j := range pending {
		j.requestCancel(now)
	}
}

// crash simulates an abrupt process death for crash-recovery tests:
// workers stop and running jobs' contexts are cancelled so the test can
// reclaim the goroutines, but no terminal state reaches the journal —
// leaving exactly the on-disk state a SIGKILL leaves behind. Only a new
// Server over the same directories can observe the difference.
func (s *Server) crash() {
	s.retainJournal.Store(true)
	s.mu.Lock()
	s.closed = true
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// recoverJobs re-registers the journal's surviving entries at startup,
// before the worker pool starts. Each entry is re-validated against the
// current limits and its workloads re-resolved against the current
// TraceDir — a spec that no longer passes (limits tightened, trace file
// gone) finalizes as a failed job with an attributable error instead of
// crashing a worker later. Valid entries re-enqueue under their original
// IDs in their original order; their cells hit the warm result and
// checkpoint stores, so completing them costs roughly the work that was
// in flight when the previous process died.
func (s *Server) recoverJobs(entries []journalEntry) {
	maxSeq := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.ID, "j%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		j := newJob(e.ID, e.Spec, e.Submitted)
		j.view.Recovered = true
		j.onFinish = s.jobFinished
		var mixes []workload.SourceMix
		err := e.Spec.Validate(s.cfg.Limits)
		if err == nil && e.Spec.Workloads != nil {
			mixes, err = e.Spec.Workloads.Resolve(s.cfg.TraceDir)
		}
		s.mu.Lock()
		s.jobs[e.ID] = j
		s.order = append(s.order, e.ID)
		s.mu.Unlock()
		if err != nil {
			j.finish(StateFailed, nil, nil, fmt.Sprintf("recovered from journal but no longer valid: %v", err), s.cfg.now())
			s.logInfo("job recovery rejected", "job", e.ID, "error", err.Error())
			continue
		}
		j.mixes = mixes
		s.mu.Lock()
		s.pending = append(s.pending, j)
		s.mu.Unlock()
		s.journal.add(e) // re-assert: the fresh journal starts empty
		s.recovered.Add(1)
		s.logInfo("job recovered", "job", e.ID, "kind", string(e.Spec.Kind))
	}
	s.mu.Lock()
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	s.mu.Unlock()
}

// worker pops pending jobs until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one job end to end: state transitions, per-job engine
// stats, progress wiring, and result marshaling.
func (s *Server) runJob(j *job) {
	spec := j.snapshot().Spec
	ctx, cancel := context.WithCancel(s.baseCtx)
	if spec.TimeoutSeconds > 0 {
		// The spec's wall-clock deadline is enforced here, server-side:
		// a runaway job is interrupted exactly like a cancelled one, but
		// finalizes as failed with an attributable deadline error.
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(spec.TimeoutSeconds*float64(time.Second)))
	}
	defer cancel()
	if !j.start(cancel, s.cfg.now()) {
		return // cancelled while queued
	}
	s.logInfo("job started", "job", j.snapshot().ID)

	// Every layer below (engine workers, checkpointer, stores) records
	// spans into whichever job's trace rides its context.
	result, stats, err := s.executeRecover(telemetry.WithTrace(ctx, j.trace), j)
	now := s.cfg.now()
	switch {
	case err == nil && errors.Is(ctx.Err(), context.Canceled):
		// An acknowledged cancel must win even when the computation ran
		// to completion anyway (kinds like "area" finish faster than
		// they poll the context). A deadline that fired after the work
		// completed does not: the job beat its deadline.
		j.finish(StateCancelled, nil, stats, "", now)
	case err == nil:
		j.finish(StateDone, result, stats, "", now)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, stats,
			fmt.Sprintf("job exceeded its %gs wall-clock deadline", spec.TimeoutSeconds), now)
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, stats, "", now)
	default:
		j.finish(StateFailed, nil, stats, err.Error(), now)
	}
	if _, dropped := j.trace.SpanCount(); dropped > 0 {
		s.droppedSpans.Add(dropped)
	}
}

// executeRecover is execute behind a panic barrier: a panicking job —
// a bug in a cell, a poisoned spec — fails that job with the stack trace
// in its status (and a worker-panics tally on /metrics) instead of
// killing the process and every other job with it.
func (s *Server) executeRecover(ctx context.Context, j *job) (result json.RawMessage, stats *sim.EngineStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			err = fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
			s.logInfo("job panicked", "job", j.snapshot().ID, "panic", fmt.Sprint(p))
		}
	}()
	return s.execute(ctx, j)
}

// execute dispatches on the job's kind and returns the marshaled result.
func (s *Server) execute(ctx context.Context, j *job) (json.RawMessage, *sim.EngineStats, error) {
	spec := j.snapshot().Spec
	switch spec.Kind {
	case KindFig9, KindFig12, KindFig13, KindFig14, KindFig15, KindFig16:
		var stats sim.EngineStats
		opts := spec.Sim.options()
		opts.Mixes = j.mixes
		opts.Stats = &stats
		opts.ProgressStats = s.progressStats(j)
		res, err := s.lab.Figure(ctx, spec.Kind, opts, spec.Xs, spec.figureParams())
		if err != nil {
			return nil, &stats, err
		}
		return marshal(res, &stats)
	case KindAttack:
		var stats sim.EngineStats
		opts := spec.Sim.options()
		opts.Stats = &stats
		opts.ProgressStats = s.progressStats(j)
		rows, err := s.lab.AttackSweep(ctx, opts, spec.Attacks, spec.NRHs)
		if err != nil {
			return nil, &stats, err
		}
		return marshal(sim.FigureResult{Kind: KindAttack, Attack: rows, Stats: stats}, &stats)
	case KindPolicies:
		policies, err := spec.policyList()
		if err != nil {
			return nil, nil, err
		}
		var stats sim.EngineStats
		opts := spec.Sim.options()
		opts.Mixes = j.mixes
		opts.Stats = &stats
		opts.ProgressStats = s.progressStats(j)
		scores, err := s.lab.RunPolicies(ctx, spec.Config.config(), policies, opts)
		if err != nil {
			return nil, &stats, err
		}
		return marshal(PoliciesResult{Policies: scores, Stats: stats}, &stats)
	case KindCharacterize:
		mods := spec.Charz.modules()
		opts := spec.Charz.charzOptions()
		results := make([]charz.ModuleResult, 0, len(mods))
		for i, m := range mods {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			results = append(results, charz.CharacterizeModule(m, opts))
			j.setProgress(i+1, len(mods))
		}
		return marshal(results, nil)
	case KindSecurity:
		pts, err := rowhammer.DefaultConfig().Fig11()
		if err != nil {
			return nil, nil, err
		}
		return marshal(pts, nil)
	case KindArea:
		return marshal(areamodel.BuildReport(), nil)
	default:
		// Unreachable: submissions are validated.
		return nil, nil, fmt.Errorf("unknown kind %q", spec.Kind)
	}
}

// progressStats builds the per-batch progress callback for sweep jobs:
// each event carries the batch's resolution tally so far plus the
// engine-wide checkpoint-store summary, so streaming clients watch
// cache economics live.
func (s *Server) progressStats(j *job) func(done, total int, batch sim.EngineStats) {
	return func(done, total int, batch sim.EngineStats) {
		var snaps *engine.SnapStats
		if st, ok := s.lab.SnapshotStats(); ok {
			snaps = &st
		}
		j.setProgressStats(done, total, batch, snaps)
	}
}

// figureParams returns the second-parameter grid the spec's figure kind
// consumes (capacities or NRH values).
func (spec JobSpec) figureParams() []int {
	if figureKinds[spec.Kind].caps {
		return spec.Capacities
	}
	return spec.NRHs
}

func marshal(v any, stats *sim.EngineStats) (json.RawMessage, *sim.EngineStats, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, stats, fmt.Errorf("marshal result: %w", err)
	}
	return data, stats, nil
}

// --- HTTP layer ---

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/forensics", s.handleForensics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// logInfo emits a structured log line when a logger is configured.
func (s *Server) logInfo(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitRetryAfterSeconds is the back-off hint sent with queue-full (and
// shutdown) 503s. Queue slots free at job-completion granularity —
// seconds, not milliseconds — so a couple of seconds spaces retries
// without making well-behaved clients wait noticeably longer than the
// queue actually needs.
const submitRetryAfterSeconds = 2

// writeUnavailable rejects a submission with 503 plus a Retry-After hint
// so well-behaved clients back off instead of hammering a full queue.
func writeUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", submitRetryAfterSeconds))
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// handleSubmit validates a spec, registers the job, and enqueues it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	// Any valid spec fits in a few KB; cap the body so an oversized
	// request cannot balloon memory before validation runs.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.rejected.Inc()
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if err := spec.Validate(s.cfg.Limits); err != nil {
		s.metrics.rejected.Inc()
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	// Admission pre-check before any trace I/O: a submission the queue
	// would reject anyway must not pay file reads and hashing first.
	// The same conditions are re-checked under the lock below, because a
	// slot can fill while traces load.
	if err := s.admit(); err != nil {
		s.metrics.rejected.Inc()
		writeUnavailable(w, "%v", err)
		return
	}
	// Resolve custom workloads at submission time: trace files load (and
	// digest) once here, so a missing or corrupt trace is a 400 with a
	// clear message rather than a failed job, and execution is purely
	// deterministic over the resolved sources.
	var mixes []workload.SourceMix
	if spec.Workloads != nil {
		var err error
		if mixes, err = spec.Workloads.Resolve(s.cfg.TraceDir); err != nil {
			s.metrics.rejected.Inc()
			writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
			return
		}
	}

	s.mu.Lock()
	if err := s.admitLocked(); err != nil {
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		writeUnavailable(w, "%v", err)
		return
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	j := newJob(id, spec, s.cfg.now())
	j.mixes = mixes
	j.onFinish = s.jobFinished
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pending = append(s.pending, j)
	s.evictLocked()
	s.cond.Signal()
	s.mu.Unlock()
	if s.journal != nil {
		// Best-effort durability: a failed journal write degrades the
		// restart guarantee for this job, never the job itself. The
		// failure sticks in the journal's health (surfaced on /readyz).
		if err := s.journal.add(journalEntry{ID: id, Spec: spec, Submitted: j.snapshot().Created}); err != nil {
			s.logInfo("journal write failed", "job", id, "error", err.Error())
		}
	}
	s.metrics.submitted.Inc()
	s.logInfo("job submitted", "job", id, "kind", string(spec.Kind))
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// jobFinished observes one terminal job view: outcome counters, queue
// and run latencies, the journal's terminal record, and the lifecycle
// log line.
func (s *Server) jobFinished(v Job) {
	if s.journal != nil && !s.retainJournal.Load() {
		// Removal is the journal's terminal record. During shutdown (or a
		// simulated crash) entries are retained instead: a job cancelled
		// only because the process is exiting must be re-run by the next
		// one.
		if err := s.journal.remove(v.ID); err != nil {
			s.logInfo("journal write failed", "job", v.ID, "error", err.Error())
		}
	}
	s.metrics.observeFinish(v)
	args := []any{"job", v.ID, "state", string(v.State)}
	if v.Started != nil && v.Finished != nil {
		args = append(args, "run_seconds", v.Finished.Sub(*v.Started).Seconds())
	}
	if v.Error != "" {
		args = append(args, "error", v.Error)
	}
	s.logInfo("job finished", args...)
}

// admitLocked reports why a submission cannot be accepted right now
// (shutdown or a full queue); nil admits. Callers hold s.mu.
func (s *Server) admitLocked() error {
	if s.closed {
		return fmt.Errorf("server shutting down")
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		return fmt.Errorf("job queue full (%d queued)", s.cfg.QueueDepth)
	}
	return nil
}

// admit is admitLocked taking the lock itself.
func (s *Server) admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitLocked()
}

// evictLocked drops the oldest terminal jobs once more than RetainJobs
// are tracked, so a long-lived server's job table (and the result
// payloads it pins) stays bounded. Jobs finished within RetainFor are
// exempt, so a polling client always has a window to fetch its result.
// Callers hold s.mu.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	cutoff := s.cfg.now().Add(-s.cfg.RetainFor)
	kept := s.order[:0]
	for _, id := range s.order {
		v := s.jobs[id].snapshot()
		if excess > 0 && v.State.Terminal() && v.Finished != nil && v.Finished.Before(cutoff) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup resolves {id} or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

// handleList returns job summaries (results elided) in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].snapshot()
		v.Result = nil
		out = append(out, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	// Drop the job from the pending list first, so a cancelled queued
	// job frees its queue slot immediately rather than riding along as
	// a tombstone until a worker pops it.
	s.mu.Lock()
	for i, pj := range s.pending {
		if pj == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if !j.requestCancel(s.cfg.now()) {
		writeError(w, http.StatusConflict, "job %s already finished", j.snapshot().ID)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleStream serves a job's server-sent event stream: the current
// state immediately, progress events as cells resolve, and a final
// "state" event carrying the terminal job (result included). Every
// event carries an id; a reconnecting client that sends it back as
// Last-Event-ID skips the redundant initial snapshot when it is already
// current (events are cumulative snapshots, so nothing needs replaying).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	s.metrics.sseSubs.Inc()
	defer s.metrics.sseSubs.Dec()
	ch, snap, seq := j.subscribe()
	defer j.unsubscribe(ch)
	lastID, lastErr := strconv.ParseUint(r.Header.Get("Last-Event-ID"), 10, 64)
	current := lastErr == nil && lastID >= seq
	if !current || snap.State.Terminal() {
		// The terminal snapshot is always sent, even to a current client:
		// it is the event reconnecting clients are waiting for.
		writeEvent(w, Event{ID: seq, Name: "state", Data: snap})
		flusher.Flush()
	}
	if snap.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Drain any buffered progress, then emit the terminal state.
			for {
				select {
				case ev := <-ch:
					if ev.Name != "state" {
						writeEvent(w, ev)
					}
				default:
					final, fseq := j.snapshotSeq()
					writeEvent(w, Event{ID: fseq, Name: "state", Data: final})
					flusher.Flush()
					return
				}
			}
		case ev := <-ch:
			writeEvent(w, ev)
			flusher.Flush()
			if ev.Name == "state" {
				if job, ok := ev.Data.(Job); ok && job.State.Terminal() {
					return
				}
			}
		}
	}
}

func writeEvent(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, data)
}

// StatsReport is GET /v1/stats: the shared engine's lifetime tallies.
type StatsReport struct {
	Engine      sim.EngineStats  `json:"engine"`
	StoredCells int              `json:"stored_cells"`
	Parallelism int              `json:"parallelism"`
	Jobs        map[JobState]int `json:"jobs"`
	// Snapshots reports the checkpoint store's hit/miss/evict tallies
	// when resumable simulation cells are enabled (Engine.SnapInterval).
	Snapshots *engine.SnapStats `json:"snapshots,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rep := StatsReport{
		Engine:      s.lab.Stats(),
		StoredCells: s.lab.StoredCells(),
		Parallelism: s.lab.Parallelism(),
		Jobs:        map[JobState]int{},
	}
	if snaps, ok := s.lab.SnapshotStats(); ok {
		rep.Snapshots = &snaps
	}
	s.mu.Lock()
	for _, id := range s.order {
		rep.Jobs[s.jobs[id].snapshot().State]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer readiness probe: 200 while the
// server can do useful durable work, 503 (with the reasons) once it
// cannot — shutting down, queue saturated, a backing store degraded off
// its durable path, or the journal unwritable. Unlike /healthz, which
// only proves the process is up, not-ready is expected to be transient
// (queue drains) or to mean "route new work elsewhere" (degraded
// stores: jobs still succeed here, but without durability).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	s.mu.Lock()
	if s.closed {
		reasons = append(reasons, "server shutting down")
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		reasons = append(reasons, fmt.Sprintf("job queue saturated (%d queued)", len(s.pending)))
	}
	s.mu.Unlock()
	if why, bad := s.lab.Degraded(); bad {
		reasons = append(reasons, why)
	}
	if s.journalErr != nil {
		reasons = append(reasons, s.journalErr.Error())
	} else if s.journal != nil {
		if why, ok := s.journal.healthy(); !ok {
			reasons = append(reasons, "journal: "+why)
		}
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unavailable", "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
