package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"hira/internal/engine"
	"hira/internal/sim"
	"hira/internal/telemetry"
	"hira/internal/workload"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is a job's cell-resolution progress within its current
// batch. Beyond the done/total pair, figure and policies jobs carry a
// mid-batch resolution tally — how many of the resolved cells simulated
// versus hit a cache, and how many simulation ticks checkpoint resumes
// spared — plus a snapshot-store summary when checkpointing is enabled,
// so a streaming client can see cache economics while the sweep runs.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`

	Simulated    uint64 `json:"simulated,omitempty"`
	CacheHits    uint64 `json:"cache_hits,omitempty"`
	StoreHits    uint64 `json:"store_hits,omitempty"`
	Resumed      uint64 `json:"resumed,omitempty"`
	ResumedTicks uint64 `json:"resumed_ticks,omitempty"`
	// Snapshots is the engine-wide checkpoint-store tally at the time of
	// the event (nil when resumable cells are disabled).
	Snapshots *engine.SnapStats `json:"snapshots,omitempty"`
}

// Job is the serializable view of one submitted experiment.
type Job struct {
	ID       string     `json:"id"`
	Spec     JobSpec    `json:"spec"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress Progress   `json:"progress"`
	// Recovered marks a job re-enqueued from the journal after a server
	// restart rather than submitted over HTTP in this process's lifetime.
	Recovered bool `json:"recovered,omitempty"`
	// Error describes why a failed job failed.
	Error string `json:"error,omitempty"`
	// Stats tallies how the shared engine resolved this job's cells:
	// a warm resubmission reports Simulated == 0 with every cell a
	// cache or store hit.
	Stats *sim.EngineStats `json:"engine_stats,omitempty"`
	// Result is the job's kind-specific payload: a sim.FigureResult for
	// figure kinds, a PoliciesResult for "policies", module results for
	// "characterize", the Fig. 11 grid for "security", the Table 2
	// report for "area".
	Result json.RawMessage `json:"result,omitempty"`
}

// FigureResultPayload is the result payload of figure jobs — the exact
// encoding cmd/hira-sim's -json flag emits, so CLI and HTTP outputs are
// diffable.
type FigureResultPayload = sim.FigureResult

// PoliciesResult is the result payload of a "policies" job.
type PoliciesResult struct {
	Policies []sim.PolicyScore `json:"policies"`
	Stats    sim.EngineStats   `json:"engine_stats"`
}

// Event is one server-sent event on a job's stream.
type Event struct {
	// ID is the job's monotonically increasing event sequence number,
	// emitted as the SSE id field. A reconnecting client sends it back
	// as Last-Event-ID; because state and progress events are cumulative
	// snapshots (not deltas), the server needs no replay buffer — it
	// skips the redundant initial snapshot when the client is already
	// current and otherwise just resumes the live stream.
	ID uint64
	// Name is the SSE event name: "progress" or "state".
	Name string
	// Data is the event payload, marshaled to one JSON line.
	Data any
}

// job is the server-side state behind a Job view.
type job struct {
	// mixes is the resolved custom workload set (traces loaded, names
	// bound) when the spec carries a workloads object; nil runs builtin
	// mixes. Set once at submission, read by the executing worker, and
	// released (under mu) when the job finalizes so retained terminal
	// jobs do not pin decoded traces.
	mixes []workload.SourceMix

	// trace records the job's span timeline (queued/run plus every cell
	// phase the engine and checkpointer record under the job's context),
	// served by GET /v1/jobs/{id}/trace. Always non-nil; bounded by
	// telemetry.DefaultMaxSpans.
	trace *telemetry.Trace

	// onFinish, when set, observes the terminal view exactly once (set by
	// the server to fold outcome counters and latency histograms).
	onFinish func(v Job)

	mu     sync.Mutex
	view   Job
	cancel context.CancelFunc // non-nil once running; also set for queued cancellation
	// cancelled marks a cancel request that arrived while queued, so
	// the scheduler discards the job instead of running it.
	cancelled bool
	// done closes when the job reaches a terminal state.
	done chan struct{}
	subs map[chan Event]struct{}
	// eventSeq numbers this job's SSE events; see Event.ID.
	eventSeq uint64
}

func newJob(id string, spec JobSpec, now time.Time) *job {
	return &job{
		view:  Job{ID: id, Spec: spec, State: StateQueued, Created: now},
		trace: telemetry.NewTrace(id, 0),
		done:  make(chan struct{}),
		subs:  make(map[chan Event]struct{}),
	}
}

// snapshot returns a copy of the job's serializable view.
func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// snapshotSeq is snapshot plus the view's event sequence number, for
// stamping synthesized state events consistently with broadcast ones.
func (j *job) snapshotSeq() (Job, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view, j.eventSeq
}

// subscribe registers a stream consumer and returns its channel plus the
// current snapshot (sent to the consumer first, so late subscribers see
// state immediately) and the snapshot's event sequence number. Slow
// consumers miss intermediate progress events (sends are non-blocking)
// but always receive the terminal state via done + snapshot.
func (j *job) subscribe() (chan Event, Job, uint64) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snap := j.view
	seq := j.eventSeq
	j.mu.Unlock()
	return ch, snap, seq
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// broadcast numbers an event and sends it to every subscriber without
// blocking. Callers hold j.mu.
func (j *job) broadcast(ev Event) {
	j.eventSeq++
	ev.ID = j.eventSeq
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setProgress records batch progress and notifies subscribers. It is the
// engine's per-batch OnProgress callback.
func (j *job) setProgress(done, total int) {
	j.setProgressStats(done, total, sim.EngineStats{}, nil)
}

// setProgressStats is setProgress carrying the batch's mid-sweep
// resolution tally and the checkpoint store's current summary; it backs
// the engine's OnProgressStats callback for figure and policies jobs.
func (j *job) setProgressStats(done, total int, batch sim.EngineStats, snaps *engine.SnapStats) {
	j.mu.Lock()
	j.view.Progress = Progress{
		Done: done, Total: total,
		Simulated:    batch.Simulated,
		CacheHits:    batch.CacheHits,
		StoreHits:    batch.StoreHits,
		Resumed:      batch.Resumed,
		ResumedTicks: batch.ResumedTicks,
		Snapshots:    snaps,
	}
	j.broadcast(Event{Name: "progress", Data: j.view.Progress})
	j.mu.Unlock()
}

// start transitions queued -> running and installs the cancel func. It
// returns false — and the caller must skip the job — when a cancel
// request already finalized it.
func (j *job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled || j.view.State.Terminal() {
		return false
	}
	j.view.State = StateRunning
	t := now
	j.view.Started = &t
	j.cancel = cancel
	// The queue interval is only known retroactively, once a worker
	// picks the job up.
	j.trace.AddSpan("queued", "", j.view.Created, now, nil)
	return true
}

// finish records the terminal state, result, and stats, then wakes every
// waiter and subscriber.
func (j *job) finish(state JobState, result json.RawMessage, stats *sim.EngineStats, errMsg string, now time.Time) {
	j.mu.Lock()
	// The resolved workloads (decoded trace accesses can be large) are
	// only needed while executing; release them so retained terminal
	// jobs pin just their result payloads.
	j.mixes = nil
	if j.cancelled {
		// An acknowledged cancel (DELETE returned 200) always ends
		// cancelled, even if the computation outran the cancellation.
		state, result, errMsg = StateCancelled, nil, ""
	}
	j.view.State = state
	t := now
	j.view.Finished = &t
	j.view.Result = result
	j.view.Stats = stats
	j.view.Error = errMsg
	if j.view.Started != nil {
		j.trace.AddSpan("run", "", *j.view.Started, now,
			map[string]any{"state": string(j.view.State)})
	}
	if j.onFinish != nil {
		j.onFinish(j.view)
	}
	j.broadcast(Event{Name: "state", Data: j.view})
	j.mu.Unlock()
	close(j.done)
}

// requestCancel cancels a running job's context, or finalizes a job
// still sitting in the queue (the scheduler skips it when popped).
// Returns false if the job already finished.
func (j *job) requestCancel(now time.Time) bool {
	j.mu.Lock()
	if j.view.State.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	if j.cancel != nil {
		// Running: the job's context interrupts its in-flight cells and
		// the worker finalizes it as cancelled.
		j.cancel()
		j.mu.Unlock()
		return true
	}
	// Still queued: finalize immediately.
	j.mixes = nil
	j.view.State = StateCancelled
	t := now
	j.view.Finished = &t
	j.trace.AddSpan("queued", "", j.view.Created, now, nil)
	if j.onFinish != nil {
		j.onFinish(j.view)
	}
	j.broadcast(Event{Name: "state", Data: j.view})
	j.mu.Unlock()
	close(j.done)
	return true
}
