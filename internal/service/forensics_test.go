package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hira/internal/sim"
)

// TestForensicsEndpoint runs a forensics-enabled PARA job end to end and
// checks GET /v1/jobs/{id}/forensics in both encodings: the JSON view's
// tallies must satisfy the accounting identity, and the chrome view must
// be a loadable trace-event document carrying the flight recorder's DRAM
// commands.
func TestForensicsEndpoint(t *testing.T) {
	svc, client := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ctx := context.Background()

	spec := JobSpec{
		Kind:     KindPolicies,
		Policies: []PolicySpec{{Type: "para", NRH: 1024}, {Type: "para+hira", NRH: 1024, Slack: 4}},
		Sim: &SimSpec{
			Workloads: 1, Cores: 4, Warmup: 2000, Measure: 6000, Seed: 1,
			Forensics: true, ForensicsRecorder: true,
		},
	}
	job, err := client.Run(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}

	view, err := client.Forensics(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.JobID != job.ID || view.Kind != KindPolicies {
		t.Errorf("view header = %s/%s, want %s/%s", view.JobID, view.Kind, job.ID, KindPolicies)
	}
	if len(view.Policies) != 2 {
		t.Fatalf("got %d policies, want 2", len(view.Policies))
	}
	for _, p := range view.Policies {
		f := p.Forensics
		if f == nil {
			t.Fatalf("policy %s carries no forensics", p.Policy)
		}
		tl := f.Tally
		if got := tl.PreventiveUseful + tl.PreventiveWasted + tl.PeriodicRowRefreshes; got != tl.RefreshACTs {
			t.Errorf("policy %s: useful+wasted+periodic = %d, want RefreshACTs = %d", p.Policy, got, tl.RefreshACTs)
		}
		if tl.DemandACTs == 0 || f.MaxInterrefACTs == 0 {
			t.Errorf("policy %s: empty ledger (%+v)", p.Policy, tl)
		}
	}

	// Chrome encoding: merged across policies, valid trace-event JSON.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/forensics?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome fetch status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome document does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event phase %q, want X", e.Ph)
		}
	}

	// A job without forensics 404s with a hint.
	plain, err := client.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/forensics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("forensics of plain job: status %d, want 404", resp2.StatusCode)
	}
	hint, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(hint), "forensics") {
		t.Errorf("404 body carries no hint: %s", hint)
	}
}

// TestForensicsSpecValidation pins the spec rules: the recorder requires
// the ledger, and non-sim kinds reject the sim block (and with it the
// forensics flags).
func TestForensicsSpecValidation(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	bad := testSpec()
	bad.Sim.ForensicsRecorder = true
	if _, err := client.Submit(ctx, bad); err == nil {
		t.Error("forensics_recorder without forensics accepted")
	}

	area := JobSpec{Kind: KindArea, Sim: &SimSpec{Forensics: true}}
	if _, err := client.Submit(ctx, area); err == nil {
		t.Error("area job with a sim block accepted")
	}

	ok := testSpec()
	ok.Sim.Forensics = true
	sub, err := client.Submit(ctx, ok)
	if err != nil {
		t.Fatalf("forensics fig9 spec rejected: %v", err)
	}
	job, err := client.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}
	var res sim.FigureResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Fig9) == 0 || res.Fig9[0].Forensics == nil {
		t.Error("fig9 rows carry no forensics maps")
	}
}
