package service

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hira/internal/sim"
)

// Regenerate the metric-catalogue golden with:
//
//	go test ./internal/service -run TestMetricsFamiliesGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files in testdata/")

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, c *Client) string {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s\n%s", resp.Status, body)
	}
	return string(body)
}

// metricValue returns the first sample of the named series (any labels).
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q", line)
		}
		return v
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestMetricsFamiliesGolden locks down the metric catalogue: every
// family name and kind the server exposes, compared against a reviewed
// golden. A rename, a dropped metric, or an accidental kind change
// (counter -> gauge) fails here before any dashboard breaks.
func TestMetricsFamiliesGolden(t *testing.T) {
	_, c := newTestServer(t, Config{
		Engine:  sim.EngineConfig{ResultDir: t.TempDir(), SnapInterval: 1500},
		Workers: 1,
	})
	body := scrape(t, c)

	var fams []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	sort.Strings(fams)
	got := strings.Join(fams, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate the fixture)", err)
	}
	if got != string(want) {
		t.Fatalf("metric catalogue changed (regenerate with -update and review the diff)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsConcurrentScrape runs concurrent jobs while hammering
// /metrics, then checks the tallies the scrape reports. Under -race
// (CI runs this package with it) this also proves instruments and
// scrapes never race the hot paths.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, c := newTestServer(t, Config{
		Engine:  sim.EngineConfig{SnapInterval: 1500},
		Workers: 2,
	})
	ctx := context.Background()

	specs := []JobSpec{testSpec(), testSpec()}
	specs[1].Sim.Measure = 8000 // distinct cells so both jobs simulate

	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				scrape(t, c)
			}
		}
	}()

	var jobWG sync.WaitGroup
	for _, spec := range specs {
		jobWG.Add(1)
		go func(spec JobSpec) {
			defer jobWG.Done()
			j, err := c.Run(ctx, spec, nil)
			if err != nil {
				t.Errorf("run: %v", err)
				return
			}
			if j.State != StateDone {
				t.Errorf("job %s ended %s: %s", j.ID, j.State, j.Error)
			}
		}(spec)
	}
	jobWG.Wait()
	close(done)
	scrapeWG.Wait()

	body := scrape(t, c)
	if v := metricValue(t, body, "hira_engine_cells_simulated_total"); v == 0 {
		t.Error("no simulated cells tallied")
	}
	if v := metricValue(t, body, "hira_engine_cell_seconds_count"); v == 0 {
		t.Error("no cell durations observed")
	}
	if v := metricValue(t, body, `hira_jobs_finished_total{state="done"}`); v != 2 {
		t.Errorf("finished{done} = %g, want 2", v)
	}
	if v := metricValue(t, body, "hira_jobs_submitted_total"); v != 2 {
		t.Errorf("submitted = %g, want 2", v)
	}
	if v := metricValue(t, body, "hira_snapstore_saves_total"); v == 0 {
		t.Error("no checkpoints saved")
	}
	if v := metricValue(t, body, "hira_sched_acts_total"); v == 0 {
		t.Error("no scheduler aggregates sampled")
	}
	if v := metricValue(t, body, "hira_job_run_seconds_count"); v != 2 {
		t.Errorf("run latency observations = %g, want 2", v)
	}
}

// TestJobTraceTimeline drives the trace recorder end to end: a cold
// job's timeline shows simulate spans, a warm resubmission's shows
// none, and a horizon extension's checkpoint-lookup spans attribute
// exactly the job's ResumedTicks.
func TestJobTraceTimeline(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{
		Engine:  sim.EngineConfig{ResultDir: dir, SnapInterval: 1500},
		Workers: 1,
	})
	ctx := context.Background()

	countSpans := func(id string, name string) int {
		v, err := c.Trace(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, sp := range v.Spans {
			if sp.Name == name {
				n++
			}
		}
		return n
	}

	cold, err := c.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != StateDone {
		t.Fatalf("cold job %s: %s", cold.State, cold.Error)
	}
	for _, name := range []string{"queued", "run", "cell", "simulate", "checkpoint-save", "store-write"} {
		if countSpans(cold.ID, name) == 0 {
			t.Errorf("cold trace has no %q span", name)
		}
	}

	// Warm resubmit: every cell answers from the in-memory cache, so the
	// timeline holds job-level spans only — zero simulate, zero cell.
	warm, err := c.Run(ctx, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Simulated != 0 {
		t.Fatalf("warm resubmit simulated %d cells", warm.Stats.Simulated)
	}
	if n := countSpans(warm.ID, "simulate"); n != 0 {
		t.Errorf("warm trace has %d simulate spans, want 0", n)
	}
	if countSpans(warm.ID, "queued") == 0 || countSpans(warm.ID, "run") == 0 {
		t.Error("warm trace lost its job-level spans")
	}

	// Horizon extension: cells resume from checkpoints; the hit
	// checkpoint-lookup spans' tick attributes must sum to exactly the
	// job's ResumedTicks, and the streamed progress events must carry
	// the resume tallies.
	ext := testSpec()
	ext.Sim.Measure = 14000
	sub, err := c.Submit(ctx, ext)
	if err != nil {
		t.Fatal(err)
	}
	var progresses []Progress
	extJob, err := c.WaitProgress(ctx, sub.ID, func(p Progress) { progresses = append(progresses, p) })
	if err != nil {
		t.Fatal(err)
	}
	if extJob.State != StateDone {
		t.Fatalf("extension job %s: %s", extJob.State, extJob.Error)
	}
	if extJob.Stats.Resumed == 0 || extJob.Stats.ResumedTicks == 0 {
		t.Fatalf("extension did not resume: %+v", extJob.Stats)
	}
	v, err := c.Trace(ctx, extJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	var attributed uint64
	hits := 0
	for _, sp := range v.Spans {
		if sp.Name != "checkpoint-lookup" {
			continue
		}
		if hit, _ := sp.Attrs["hit"].(bool); !hit {
			continue
		}
		tick, ok := sp.Attrs["tick"].(float64)
		if !ok {
			t.Fatalf("hit lookup span without tick attr: %+v", sp)
		}
		attributed += uint64(tick)
		hits++
	}
	if uint64(hits) != extJob.Stats.Resumed {
		t.Errorf("trace shows %d resume hits, stats %d", hits, extJob.Stats.Resumed)
	}
	if attributed != extJob.Stats.ResumedTicks {
		t.Errorf("trace attributes %d resumed ticks, stats %d", attributed, extJob.Stats.ResumedTicks)
	}

	if len(progresses) == 0 {
		t.Fatal("no progress events streamed")
	}
	last := progresses[len(progresses)-1]
	if last.Done != last.Total {
		t.Fatalf("last progress %d/%d", last.Done, last.Total)
	}
	if last.Resumed == 0 || last.ResumedTicks == 0 {
		t.Errorf("final progress event missing resume tallies: %+v", last)
	}
	if last.Snapshots == nil || last.Snapshots.Hits == 0 {
		t.Errorf("final progress event missing snapshot-store summary: %+v", last.Snapshots)
	}

	// The Chrome export is valid trace-event JSON.
	resp, err := http.Get(c.BaseURL + "/v1/jobs/" + extJob.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("chrome event %q has phase %q", ev.Name, ev.Ph)
		}
	}
}
