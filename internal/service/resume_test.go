package service

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"hira/internal/sim"
)

// TestResumedJobsEndToEnd covers the resumable-cell path over HTTP: with
// checkpointing enabled, extending a sweep's measured horizon reports
// the cells as partially resumed (not fully simulated), the rows match a
// cold in-process run exactly, and /v1/stats exposes the checkpoint
// store's hit/miss/evict tallies.
func TestResumedJobsEndToEnd(t *testing.T) {
	ctx := context.Background()
	_, client := newTestServer(t, Config{
		Engine:  sim.EngineConfig{Parallelism: 4, SnapInterval: 1500},
		Workers: 2,
	})

	short := testSpec()
	job, err := client.Run(ctx, short, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("short job state = %s (%s)", job.State, job.Error)
	}
	if job.Stats.Resumed != 0 {
		t.Fatalf("cold job reported %d resumed cells", job.Stats.Resumed)
	}

	long := testSpec()
	long.Sim.Measure = 14000
	ext, err := client.Run(ctx, long, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ext.State != StateDone {
		t.Fatalf("extended job state = %s (%s)", ext.State, ext.Error)
	}
	// Every simulated cell must have been partially resumed, covering at
	// least the short run's measured horizon.
	if ext.Stats.Simulated == 0 || ext.Stats.Resumed != ext.Stats.Simulated {
		t.Fatalf("extended job stats = %+v, want every cell partially resumed", ext.Stats)
	}
	if min := ext.Stats.Resumed * uint64(short.Sim.Measure); ext.Stats.ResumedTicks < min {
		t.Fatalf("ResumedTicks = %d, want >= %d", ext.Stats.ResumedTicks, min)
	}

	longOpts := testOpts()
	longOpts.Measure = 14000
	want, err := sim.Fig9(ctx, longOpts, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ext.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Fig9, want) {
		t.Fatalf("resumed rows differ from cold in-process run:\nhttp: %+v\ncold: %+v", res.Fig9, want)
	}

	resp, err := http.Get(client.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Snapshots == nil {
		t.Fatal("/v1/stats omitted snapshot tallies with checkpointing enabled")
	}
	if rep.Snapshots.Saves == 0 || rep.Snapshots.Hits == 0 {
		t.Fatalf("snapshot tallies %+v, want saves and hits", rep.Snapshots)
	}
	if rep.Engine.Resumed != ext.Stats.Resumed {
		t.Fatalf("engine-wide Resumed = %d, job reported %d", rep.Engine.Resumed, ext.Stats.Resumed)
	}
}
