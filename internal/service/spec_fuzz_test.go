package service

// FuzzSpecValidate drives arbitrary bytes through the exact decode +
// validate path handleSubmit uses: decoding must never panic, and any
// spec that passes validation must already satisfy the service's
// resource envelope — grid bounds, workload-mix shape, and the total
// cost ceiling are re-asserted here independently, so a validator
// regression that silently admits an over-limit spec fails the fuzz
// property, not just a hand-written case.

import (
	"bytes"
	"encoding/json"
	"testing"

	"hira/internal/workload"
)

func FuzzSpecValidate(f *testing.F) {
	seeds := []string{
		`{"kind":"fig9"}`,
		`{"kind":"fig9","capacities":[2,8],"sim":{"workloads":2,"cores":4,"warmup":2000,"measure":6000}}`,
		`{"kind":"fig12","nrhs":[64,1024]}`,
		`{"kind":"fig13","capacities":[8],"xs":[1,2]}`,
		`{"kind":"policies","policies":[{"type":"baseline"},{"type":"para+hira","nrh":512,"slack":2}]}`,
		`{"kind":"policies","policies":[{"type":"baseline"}],"sim":{"cores":2},` +
			`"workloads":{"mixes":[["mcf","hot"]],"profiles":[{"name":"hot","mpki":50,"row_locality":0.1,"footprint_mb":8,"write_frac":0.5}]}}`,
		`{"kind":"fig9","sim":{"cores":1},"workloads":{"mixes":[["t1"]],"traces":[{"name":"t1","file":"t1.trace"}]}}`,
		`{"kind":"fig9","workloads":{"mixes":[["../evil"]],"traces":[{"name":"x","file":"../../etc/passwd"}]}}`,
		`{"kind":"characterize","charz":{"modules":["A0"]}}`,
		`{"kind":"area"}`,
		`{"kind":"fig9","capacities":[1,2,3,4,5,6,7,8,9,10],"sim":{"workloads":128,"measure":9000000}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return
		}
		if err := spec.Validate(Limits{}); err != nil {
			return
		}
		// The spec was accepted: re-assert the envelope independently.
		l := Limits{}.withDefaults()
		o := spec.Sim.options().WithDefaults()
		switch spec.Kind {
		case KindFig9, KindFig12, KindFig13, KindFig14, KindFig15, KindFig16, KindPolicies:
			if o.Warmup+o.Measure > l.MaxTicks {
				t.Fatalf("accepted spec with %d ticks/run (limit %d)", o.Warmup+o.Measure, l.MaxTicks)
			}
			if o.Cores > l.MaxCores {
				t.Fatalf("accepted spec with %d cores (limit %d)", o.Cores, l.MaxCores)
			}
			mixes := int64(o.Workloads)
			if w := spec.Workloads; w != nil {
				if len(w.Mixes) == 0 || len(w.Mixes) > l.MaxWorkloads {
					t.Fatalf("accepted workloads object with %d mixes (limit %d)", len(w.Mixes), l.MaxWorkloads)
				}
				mixes = int64(len(w.Mixes))
				for _, mix := range w.Mixes {
					if len(mix) != o.Cores {
						t.Fatalf("accepted mix of %d workloads for %d cores", len(mix), o.Cores)
					}
				}
				for _, ts := range w.Traces {
					if !workload.ValidName(ts.Name) || ts.File == "" ||
						bytes.ContainsAny([]byte(ts.File), "/\\") || ts.File == ".." {
						t.Fatalf("accepted unsafe trace reference %+v", ts)
					}
				}
				for _, ps := range w.Profiles {
					if err := ps.profile().Validate(); err != nil {
						t.Fatalf("accepted invalid inline profile: %v", err)
					}
				}
			} else if mixes > int64(l.MaxWorkloads) {
				t.Fatalf("accepted spec with %d workloads (limit %d)", mixes, l.MaxWorkloads)
			}
			// Cost ceiling, recomputed independently of validateCost:
			// points x policies x mixes x ticks. Grid lengths default to
			// the largest paper grid (7 points, 6 policies) when omitted,
			// matching the validator's own accounting conservatively.
			points := int64(1)
			policies := int64(6)
			grid := func(xs []int, def int) int64 {
				if xs == nil {
					return int64(def)
				}
				if len(xs) > l.MaxGrid {
					t.Fatalf("accepted grid of %d entries (limit %d)", len(xs), l.MaxGrid)
				}
				return int64(len(xs))
			}
			switch spec.Kind {
			case KindFig9:
				points = grid(spec.Capacities, 7)
			case KindFig12:
				points = grid(spec.NRHs, 5)
			case KindFig13, KindFig14:
				points, policies = grid(spec.Capacities, 3)*grid(spec.Xs, 4), 3
			case KindFig15, KindFig16:
				points, policies = grid(spec.NRHs, 3)*grid(spec.Xs, 4), 3
			case KindPolicies:
				policies = int64(len(spec.Policies))
				if policies == 0 || policies > int64(l.MaxPolicies) {
					t.Fatalf("accepted %d policies (limit %d)", policies, l.MaxPolicies)
				}
			}
			if cost := points * policies * mixes * int64(o.Warmup+o.Measure); cost > l.MaxTotalTicks {
				t.Fatalf("accepted spec with estimated cost %d ticks (limit %d)", cost, l.MaxTotalTicks)
			}
		case KindCharacterize, KindSecurity, KindArea:
			if spec.Workloads != nil {
				t.Fatalf("accepted workloads object on kind %s", spec.Kind)
			}
		default:
			t.Fatalf("accepted unknown kind %q", spec.Kind)
		}
	})
}
