package service

import (
	"net/http"
	"testing"
	"time"
)

func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{Header: h}
}

// TestRetryAfterForms pins both RFC 9110 Retry-After forms: integer
// seconds and HTTP-date (the form the seed client silently dropped,
// retrying immediately).
func TestRetryAfterForms(t *testing.T) {
	if d := retryAfter(nil); d != 0 {
		t.Errorf("nil response: %v, want 0", d)
	}
	if d := retryAfter(respWithRetryAfter("")); d != 0 {
		t.Errorf("absent header: %v, want 0", d)
	}
	if d := retryAfter(respWithRetryAfter("3")); d != 3*time.Second {
		t.Errorf("integer form: %v, want 3s", d)
	}
	for _, v := range []string{"0", "-2", "garbage"} {
		if d := retryAfter(respWithRetryAfter(v)); d != 0 {
			t.Errorf("%q: %v, want 0", v, d)
		}
	}
	// HTTP-date form: a date ~10s out must yield a positive delay close
	// to the remaining time (HTTP-dates have 1s resolution, and a little
	// wall clock elapses between formatting and parsing).
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	d := retryAfter(respWithRetryAfter(future))
	if d <= 7*time.Second || d > 10*time.Second {
		t.Errorf("HTTP-date form: %v, want ~10s", d)
	}
	// A past date means "retry now", not a negative sleep.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := retryAfter(respWithRetryAfter(past)); d != 0 {
		t.Errorf("past HTTP-date: %v, want 0", d)
	}
}
