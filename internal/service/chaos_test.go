package service

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hira/internal/fault"
	"hira/internal/sim"
	"hira/internal/workload"
)

// crashSpec is a sweep long enough to crash mid-run: checkpoints start
// landing within the first ~1% of the measure window, leaving a wide
// window between "a checkpoint exists" and "the cell finished".
func crashSpec() JobSpec {
	return JobSpec{
		Kind:       KindFig9,
		Capacities: []int{8},
		Sim:        &SimSpec{Workloads: 1, Cores: 4, Warmup: 2000, Measure: 1000000, Seed: 1},
	}
}

func crashOpts() sim.Options {
	return sim.Options{Workloads: 1, Cores: 4, Warmup: 2000, Measure: 1000000, Seed: 1}
}

// blockingLimits admits the deliberately enormous specs the queue and
// deadline tests use to pin a worker (they are cancelled or
// deadline-killed, never run to completion).
func blockingLimits() Limits { return Limits{MaxTicks: 200_000_000} }

// metricsText fetches the /metrics exposition from the server under test.
func metricsText(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// getStatus fetches a path and returns the status code plus body.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestCrashRecoveryEndToEnd is the tentpole acceptance test: a server is
// killed mid-job (journal retained, stores warm), a new server over the
// same directories re-enqueues the interrupted job from the journal, the
// job resumes from checkpoints instead of starting over, and its result
// is bit-identical to an uninterrupted run.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	ctx := context.Background()

	// Fault-free ground truth, computed fully in-process.
	want, err := sim.Fig9(ctx, crashOpts(), []int{8})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := func() Config {
		return Config{
			Engine: sim.EngineConfig{
				Parallelism:  2,
				ResultDir:    filepath.Join(dir, "results"),
				SnapInterval: 10000,
			},
			Workers:     1,
			JournalPath: filepath.Join(dir, "journal.jsonl"),
		}
	}

	svc, client := newTestServer(t, cfg())
	job, err := client.Submit(ctx, crashSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Crash once a *sim* cell has checkpointed mid-run. The sweep's 4
	// alone-reference cells run first and checkpoint only their final
	// tick, so their saves never leave a resumable in-flight cell; the 6
	// sim cells that follow checkpoint at the warmup boundary (tick 2000)
	// and every 10000 ticks after. Saves >= 6 therefore means at least
	// two sim-cell checkpoints exist, and the cells that wrote them are
	// ~1% into their 1M-tick measure window — the restarted run must
	// resume them, not replay.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, ok := svc.Engine().SnapshotStats(); ok && st.Saves >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint saved before the deadline — cannot crash mid-job")
		}
		time.Sleep(500 * time.Microsecond)
	}
	svc.crash()

	// The journal survived the crash with the live job still recorded.
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatalf("journal did not survive the crash: %v", err)
	}
	if !strings.Contains(string(data), job.ID) {
		t.Fatalf("journal lost the live job %s: %q", job.ID, data)
	}

	// A new server over the same directories re-enqueues and finishes it.
	_, client2 := newTestServer(t, cfg())
	got, err := client2.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered job state = %s (error %q), want done", got.State, got.Error)
	}
	if !got.Recovered {
		t.Error("recovered job not marked Recovered in its API view")
	}
	if got.Stats == nil || got.Stats.ResumedTicks == 0 {
		t.Errorf("recovered job resumed no checkpointed ticks (stats %+v) — it replayed instead of resuming", got.Stats)
	}
	res, err := got.FigureResult()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Fig9, want) {
		t.Fatalf("crash-recovered rows differ from the uninterrupted run:\nrecovered: %+v\nreference: %+v", res.Fig9, want)
	}

	// The recovery is visible on /metrics, and the finished job's journal
	// entry is gone — a second restart recovers nothing.
	if m := metricsText(t, client2.BaseURL); !strings.Contains(m, "hira_jobs_recovered_total 1") {
		t.Error("/metrics does not report hira_jobs_recovered_total 1")
	}
	data, err = os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), job.ID) {
		t.Errorf("finished job still journaled: %q", data)
	}
}

// TestJournalRoundTrip pins the journal's format contract: entries
// survive reopen in order, removal is terminal, and damaged lines are
// skipped without poisoning the rest.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, entries, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal recovered %d entries", len(entries))
	}
	now := time.Now().UTC().Truncate(time.Second)
	if err := j.add(journalEntry{ID: "j1", Spec: testSpec(), Submitted: now}); err != nil {
		t.Fatal(err)
	}
	if err := j.add(journalEntry{ID: "j2", Spec: testSpec(), Submitted: now}); err != nil {
		t.Fatal(err)
	}
	if err := j.remove("j1"); err != nil {
		t.Fatal(err)
	}
	if err := j.remove("never-added"); err != nil {
		t.Fatal(err)
	}
	// Snapshot the on-disk bytes now: reopening proves writability with a
	// rewrite of its (empty) live set, wiping the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	_, entries, err = openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "j2" {
		t.Fatalf("reopened journal = %+v, want exactly j2", entries)
	}
	if entries[0].Spec.Kind != testSpec().Kind || !entries[0].Submitted.Equal(now) {
		t.Errorf("entry round-trip mangled: %+v", entries[0])
	}

	// Damage: a garbage line, a duplicate, and an empty line around a
	// valid entry must not stop recovery.
	damaged := "{torn garba\n\n" + string(raw) + string(raw)
	if err := os.WriteFile(path, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries, err = openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "j2" {
		t.Fatalf("recovery over damaged journal = %+v, want exactly j2", entries)
	}
}

// TestJournalWriteFaultsDegradeNotFail asserts a journal that stops
// being writable mid-flight degrades: adds report the failure, the
// health check carries the reason, and a later successful write clears
// it.
func TestJournalWriteFaultsDegradeNotFail(t *testing.T) {
	in, err := fault.NewInjector(1, fault.Rule{Site: fault.SiteJournalWrite, Kind: fault.ENOSPC, After: 1, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path, in) // rewrite #1: the writability probe
	if err != nil {
		t.Fatal(err)
	}
	if err := j.add(journalEntry{ID: "j1", Spec: testSpec()}); err == nil { // rewrite #2: injected ENOSPC
		t.Fatal("injected journal write failure not reported")
	}
	if why, ok := j.healthy(); ok || why == "" {
		t.Fatalf("healthy() = (%q, %v) after a failed write", why, ok)
	}
	if err := j.add(journalEntry{ID: "j2", Spec: testSpec()}); err != nil { // rewrite #3: healthy again
		t.Fatal(err)
	}
	if _, ok := j.healthy(); !ok {
		t.Error("health did not recover after a successful write")
	}
	// The failed add's entry was retained in memory and reached disk with
	// the next successful rewrite.
	_, entries, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal after transient fault holds %d entries, want both", len(entries))
	}
}

// TestJournalUnwritableRunsJournalless asserts the documented
// degradation: a server whose journal cannot be opened still serves
// jobs, and /readyz says why it should not get new durable work.
func TestJournalUnwritableRunsJournalless(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t, Config{
		Workers:     1,
		JournalPath: filepath.Join(parent, "journal.jsonl"),
	})
	code, body := getStatus(t, client.BaseURL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "journal") {
		t.Errorf("readyz = %d %q, want 503 naming the journal", code, body)
	}
	// Jobs still run to completion.
	job, err := client.Run(context.Background(), JobSpec{Kind: KindArea}, nil)
	if err != nil || job.State != StateDone {
		t.Fatalf("journal-less server failed a job: %+v, err %v", job, err)
	}
}

// TestReadyzTransitions walks /readyz through its lifecycle: ready while
// idle, not-ready while the queue is saturated, ready again once it
// drains, and not-ready for good once the server shuts down. /healthz
// stays 200 throughout — the process is alive the whole time.
func TestReadyzTransitions(t *testing.T) {
	ctx := context.Background()
	svc, client := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Engine:     sim.EngineConfig{Parallelism: 1},
		Limits:     blockingLimits(),
	})
	if code, body := getStatus(t, client.BaseURL+"/readyz"); code != http.StatusOK {
		t.Fatalf("idle readyz = %d %q, want 200", code, body)
	}

	// Occupy the lone worker with a job far too long to finish during the
	// test (it is cancelled at the end), then fill the queue.
	long := crashSpec()
	long.Sim.Measure = 100000000
	j1, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := client.Job(ctx, j1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}

	if code, body := getStatus(t, client.BaseURL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "saturated") {
		t.Errorf("saturated readyz = %d %q, want 503 naming the queue", code, body)
	}
	if code, _ := getStatus(t, client.BaseURL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz not 200 while saturated")
	}

	// Cancelling the queued job frees the slot immediately.
	if err := client.Cancel(ctx, j2.ID); err != nil {
		t.Fatal(err)
	}
	if code, body := getStatus(t, client.BaseURL+"/readyz"); code != http.StatusOK {
		t.Errorf("drained readyz = %d %q, want 200", code, body)
	}

	if err := client.Cancel(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if code, body := getStatus(t, client.BaseURL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Errorf("closed readyz = %d %q, want 503 shutting down", code, body)
	}
	if code, _ := getStatus(t, client.BaseURL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz not 200 while shutting down")
	}
}

// TestQueueFullRetryAfterAndClientBackoff asserts the 503 contract end
// to end: the raw response carries Retry-After, and a retrying client
// waits out a transient full queue instead of surfacing the error.
func TestQueueFullRetryAfterAndClientBackoff(t *testing.T) {
	ctx := context.Background()
	_, client := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Engine:     sim.EngineConfig{Parallelism: 1},
		Limits:     blockingLimits(),
	})
	long := crashSpec()
	long.Sim.Measure = 100000000
	j1, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := client.Job(ctx, j1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}

	// Raw POST against the full queue: 503 with the back-off hint.
	resp, err := http.Post(client.BaseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"area"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full POST = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	// A retrying client submitted against the full queue succeeds once
	// the slot frees. (Its Retry-After wait is capped by the small
	// backoff base; the cancel below frees the slot almost immediately.)
	retrying := NewClient(client.BaseURL)
	retrying.MaxRetries = 8
	retrying.RetryBaseDelay = 25 * time.Millisecond
	go func() {
		time.Sleep(50 * time.Millisecond)
		client.Cancel(ctx, j2.ID)
	}()
	j3, err := retrying.Submit(ctx, JobSpec{Kind: KindArea})
	if err != nil {
		t.Fatalf("retrying client did not ride out the transient 503: %v", err)
	}
	client.Cancel(ctx, j1.ID)
	client.Cancel(ctx, j3.ID)
}

// TestJobDeadline asserts the server-side wall-clock deadline: a job
// that overruns its spec's timeout_seconds fails with an attributable
// deadline error, while a job that finishes in time is untouched by a
// generous deadline.
func TestJobDeadline(t *testing.T) {
	ctx := context.Background()
	_, client := newTestServer(t, Config{Workers: 1, Engine: sim.EngineConfig{Parallelism: 1}, Limits: blockingLimits()})

	over := crashSpec()
	over.Sim.Measure = 100000000 // far longer than the deadline allows
	over.TimeoutSeconds = 0.2
	job, err := client.Run(ctx, over, nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateFailed {
		t.Fatalf("overrunning job state = %s, want failed", job.State)
	}
	if !strings.Contains(job.Error, "wall-clock deadline") || !strings.Contains(job.Error, "0.2s") {
		t.Errorf("deadline error not attributable: %q", job.Error)
	}

	quick := JobSpec{Kind: KindArea, TimeoutSeconds: 60}
	job, err = client.Run(ctx, quick, nil)
	if err != nil || job.State != StateDone {
		t.Fatalf("in-deadline job = %+v, err %v", job, err)
	}
}

// TestJobPanicFailsJobNotProcess injects a poisoned workload set
// directly into a job (no valid spec can produce one) and asserts the
// panic barrier contract: the job fails with the panic value and a
// stack trace in its API-visible error, the panic is tallied on
// /metrics, and the server keeps serving other jobs.
func TestJobPanicFailsJobNotProcess(t *testing.T) {
	ctx := context.Background()
	svc, client := newTestServer(t, Config{Workers: 1, Engine: sim.EngineConfig{Parallelism: 1}})

	j := newJob("poison", testSpec(), time.Now())
	// Four nil Sources: the right arity to pass validation, guaranteed to
	// panic when the simulation dereferences them.
	j.mixes = []workload.SourceMix{{ID: 1, Sources: make([]workload.Source, 4)}}
	j.onFinish = svc.jobFinished
	svc.mu.Lock()
	svc.jobs["poison"] = j
	svc.order = append(svc.order, "poison")
	svc.pending = append(svc.pending, j)
	svc.cond.Signal()
	svc.mu.Unlock()

	got, err := client.Wait(ctx, "poison", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, "panic") {
		t.Errorf("error does not name the panic: %q", got.Error)
	}
	if !strings.Contains(got.Error, "goroutine") && !strings.Contains(got.Error, ".go:") {
		t.Errorf("error carries no stack trace: %q", got.Error)
	}
	if m := metricsText(t, client.BaseURL); !strings.Contains(m, "hira_worker_panics_total 1") {
		t.Error("/metrics does not report hira_worker_panics_total 1")
	}

	// The process survived: a normal job still runs to completion.
	job, err := client.Run(ctx, JobSpec{Kind: KindArea}, nil)
	if err != nil || job.State != StateDone {
		t.Fatalf("server unusable after a job panic: %+v, err %v", job, err)
	}
}

// TestFaultMetricsAndDegradedGauge runs a job on a server whose result
// store always fails writes, and asserts the operator's view: jobs
// succeed, injected faults are counted per site, and the degraded gauge
// flips to 1.
func TestFaultMetricsAndDegradedGauge(t *testing.T) {
	ctx := context.Background()
	in, err := fault.NewInjector(1, fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.ENOSPC})
	if err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t, Config{
		Workers: 1,
		Engine: sim.EngineConfig{
			Parallelism: 2,
			ResultDir:   filepath.Join(t.TempDir(), "results"),
			FS:          in,
		},
	})
	job, err := client.Run(ctx, testSpec(), nil)
	if err != nil || job.State != StateDone {
		t.Fatalf("job under write faults = %+v, err %v", job, err)
	}
	m := metricsText(t, client.BaseURL)
	if !strings.Contains(m, `hira_faults_injected_total{site="store.write"}`) {
		t.Errorf("/metrics lacks the per-site fault counter:\n%s", m)
	}
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, `hira_faults_injected_total{site="store.write"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("fault counter did not count: %q", line)
			}
		}
	}
	if !strings.Contains(m, "hira_store_degraded 1") {
		t.Error("/metrics does not report hira_store_degraded 1")
	}
	// And /readyz routes new durable work elsewhere.
	code, body := getStatus(t, client.BaseURL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "store") {
		t.Errorf("readyz = %d %q, want 503 naming the degraded store", code, body)
	}
}

// TestStreamTerminalSnapshotAlwaysSent pins the reconnect contract: a
// client reconnecting to a finished job with a current Last-Event-ID
// still receives the terminal state event — it is the event reconnects
// wait for.
func TestStreamTerminalSnapshotAlwaysSent(t *testing.T) {
	ctx := context.Background()
	_, client := newTestServer(t, Config{Workers: 1})
	job, err := client.Run(ctx, JobSpec{Kind: KindArea}, nil)
	if err != nil || job.State != StateDone {
		t.Fatalf("job = %+v, err %v", job, err)
	}

	req, err := http.NewRequest(http.MethodGet, client.BaseURL+"/v1/jobs/"+job.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "999999") // far past anything real
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: state") || !strings.Contains(string(body), `"done"`) {
		t.Errorf("terminal reconnect stream = %q, want the terminal state event", body)
	}
}
