package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hira/internal/telemetry"
)

// Client talks to a hira-server job API. Transient failures — dropped
// connections, 502/504 from an intermediary, queue-full 503s — are
// retried with jittered exponential backoff (honoring the server's
// Retry-After hint when it asks for longer), and a broken event stream
// reconnects with Last-Event-ID instead of falling straight back to
// polling, so a brief server restart looks like a pause, not an error.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Use a client without a
	// global timeout: Wait holds a streaming response open for the
	// duration of a job.
	HTTPClient *http.Client
	// PollInterval is Wait's fallback polling cadence when the event
	// stream is unavailable; <= 0 means 500ms.
	PollInterval time.Duration
	// MaxRetries bounds how many times a transiently failed request is
	// retried (beyond the initial attempt). 0 means 4; negative disables
	// retries entirely.
	MaxRetries int
	// RetryBaseDelay is the first backoff delay, doubled per retry
	// (with ±50% jitter, capped at 5s); <= 0 means 200ms. The server's
	// Retry-After wins when it asks for longer.
	RetryBaseDelay time.Duration
}

// maxRetries resolves the retry budget.
func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

// backoff returns the jittered delay before retry number attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.RetryBaseDelay
	if d <= 0 {
		d = 200 * time.Millisecond
	}
	for i := 0; i < attempt && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	// Full ±50% jitter: concurrent clients kicked off by the same event
	// (a server restart) must not retry in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx waits d or until ctx is done, reporting whether it waited.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// retryAfter parses a Retry-After header in either RFC 9110 form —
// integer seconds or an HTTP-date (delay is the time remaining until
// it); 0 when absent, unparseable, or already in the past.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out,
// translating non-2xx responses into errors carrying the server's
// message. Transient failures retry with backoff. What counts as
// transient depends on the method: a 503 always does (the server
// explicitly rejected the request before doing anything, so retrying a
// POST cannot double-submit), while network errors and gateway 502/504s
// retry only for idempotent methods — a lost POST response may mean the
// job was actually accepted, and retrying would submit it twice.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	idempotent := method != http.MethodPost
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if data != nil {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if data != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		var reqErr error
		transient := false
		if err != nil {
			reqErr = err
			transient = idempotent
		} else {
			switch {
			case resp.StatusCode/100 == 2:
				defer resp.Body.Close()
				if out == nil {
					return nil
				}
				return json.NewDecoder(resp.Body).Decode(out)
			case resp.StatusCode == http.StatusServiceUnavailable:
				transient = true
			case resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusGatewayTimeout:
				transient = idempotent
			}
			var ae apiError
			if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
				reqErr = fmt.Errorf("%s %s: %s (%s)", method, path, ae.Error, resp.Status)
			} else {
				reqErr = fmt.Errorf("%s %s: %s", method, path, resp.Status)
			}
			resp.Body.Close()
		}
		if !transient || attempt >= c.maxRetries() || ctx.Err() != nil {
			return reqErr
		}
		delay := c.backoff(attempt)
		if ra := retryAfter(resp); ra > delay {
			delay = ra
		}
		if !sleepCtx(ctx, delay) {
			return reqErr
		}
	}
}

// Submit posts a job spec and returns the accepted (queued) job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches a job's current state (result included once done).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists all jobs (results elided).
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out []Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Trace fetches a job's span timeline.
func (c *Client) Trace(ctx context.Context, id string) (*telemetry.View, error) {
	var v telemetry.View
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Forensics fetches a finished job's per-policy RowHammer forensics
// report (jobs submitted with SimSpec.Forensics).
func (c *Client) Forensics(ctx context.Context, id string) (*ForensicsView, error) {
	var v ForensicsView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/forensics", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Stats fetches the server's engine tallies.
func (c *Client) Stats(ctx context.Context) (*StatsReport, error) {
	var rep StatsReport
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Wait blocks until the job reaches a terminal state and returns it. It
// consumes the server's event stream, invoking onProgress (may be nil)
// as cells resolve; if the stream is unavailable it falls back to
// polling. ctx cancels the wait, not the job — pair with Cancel for
// that.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(done, total int)) (*Job, error) {
	var op func(Progress)
	if onProgress != nil {
		op = func(p Progress) { onProgress(p.Done, p.Total) }
	}
	return c.WaitProgress(ctx, id, op)
}

// WaitProgress is Wait surfacing the full Progress payload — including
// the mid-sweep resolution tally (simulated / cache hits / resumed
// ticks) and checkpoint-store counters the server streams for figure
// and policies jobs. A broken stream reconnects with backoff, resuming
// via Last-Event-ID; once the retry budget is spent it falls back to
// polling.
func (c *Client) WaitProgress(ctx context.Context, id string, onProgress func(Progress)) (*Job, error) {
	var lastID string
	for attempt := 0; ; attempt++ {
		j, err := c.waitStream(ctx, id, onProgress, &lastID)
		if err == nil {
			return j, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		if attempt >= c.maxRetries() {
			break
		}
		if !sleepCtx(ctx, c.backoff(attempt)) {
			return nil, ctx.Err()
		}
	}
	return c.waitPoll(ctx, id)
}

// waitStream consumes /v1/jobs/{id}/stream until a terminal state event,
// tracking the last seen event id in *lastID so a reconnect can tell the
// server what the client already has.
func (c *Client) waitStream(ctx context.Context, id string, onProgress func(Progress), lastID *string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("stream: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // results can be large
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			*lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				if onProgress != nil {
					var p Progress
					if json.Unmarshal([]byte(data), &p) == nil {
						onProgress(p)
					}
				}
			case "state":
				var j Job
				if err := json.Unmarshal([]byte(data), &j); err != nil {
					return nil, err
				}
				if j.State.Terminal() {
					return &j, nil
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream for job %s ended without a terminal state", id)
}

// waitPoll polls GET /v1/jobs/{id} until terminal.
func (c *Client) waitPoll(ctx context.Context, id string) (*Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a spec and waits for it to finish.
func (c *Client) Run(ctx context.Context, spec JobSpec, onProgress func(done, total int)) (*Job, error) {
	j, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, j.ID, onProgress)
}

// FigureResult decodes a done figure job's result payload.
func (j *Job) FigureResult() (*FigureResultPayload, error) {
	if j.State != StateDone {
		return nil, fmt.Errorf("job %s is %s, not done", j.ID, j.State)
	}
	var res FigureResultPayload
	if err := json.Unmarshal(j.Result, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
