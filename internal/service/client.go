package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hira/internal/telemetry"
)

// Client talks to a hira-server job API.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Use a client without a
	// global timeout: Wait holds a streaming response open for the
	// duration of a job.
	HTTPClient *http.Client
	// PollInterval is Wait's fallback polling cadence when the event
	// stream is unavailable; <= 0 means 500ms.
	PollInterval time.Duration
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out,
// translating non-2xx responses into errors carrying the server's
// message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, ae.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the accepted (queued) job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches a job's current state (result included once done).
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists all jobs (results elided).
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out []Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Trace fetches a job's span timeline.
func (c *Client) Trace(ctx context.Context, id string) (*telemetry.View, error) {
	var v telemetry.View
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Stats fetches the server's engine tallies.
func (c *Client) Stats(ctx context.Context) (*StatsReport, error) {
	var rep StatsReport
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Wait blocks until the job reaches a terminal state and returns it. It
// consumes the server's event stream, invoking onProgress (may be nil)
// as cells resolve; if the stream is unavailable it falls back to
// polling. ctx cancels the wait, not the job — pair with Cancel for
// that.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(done, total int)) (*Job, error) {
	var op func(Progress)
	if onProgress != nil {
		op = func(p Progress) { onProgress(p.Done, p.Total) }
	}
	return c.WaitProgress(ctx, id, op)
}

// WaitProgress is Wait surfacing the full Progress payload — including
// the mid-sweep resolution tally (simulated / cache hits / resumed
// ticks) and checkpoint-store counters the server streams for figure
// and policies jobs.
func (c *Client) WaitProgress(ctx context.Context, id string, onProgress func(Progress)) (*Job, error) {
	if j, err := c.waitStream(ctx, id, onProgress); err == nil {
		return j, nil
	} else if ctx.Err() != nil {
		return nil, err
	}
	return c.waitPoll(ctx, id)
}

// waitStream consumes /v1/jobs/{id}/stream until a terminal state event.
func (c *Client) waitStream(ctx context.Context, id string, onProgress func(Progress)) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("stream: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // results can be large
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				if onProgress != nil {
					var p Progress
					if json.Unmarshal([]byte(data), &p) == nil {
						onProgress(p)
					}
				}
			case "state":
				var j Job
				if err := json.Unmarshal([]byte(data), &j); err != nil {
					return nil, err
				}
				if j.State.Terminal() {
					return &j, nil
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream for job %s ended without a terminal state", id)
}

// waitPoll polls GET /v1/jobs/{id} until terminal.
func (c *Client) waitPoll(ctx context.Context, id string) (*Job, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a spec and waits for it to finish.
func (c *Client) Run(ctx context.Context, spec JobSpec, onProgress func(done, total int)) (*Job, error) {
	j, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, j.ID, onProgress)
}

// FigureResult decodes a done figure job's result payload.
func (j *Job) FigureResult() (*FigureResultPayload, error) {
	if j.State != StateDone {
		return nil, fmt.Errorf("job %s is %s, not done", j.ID, j.State)
	}
	var res FigureResultPayload
	if err := json.Unmarshal(j.Result, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
