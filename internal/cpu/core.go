// Package cpu models the processor front end of the simulated system
// (Table 3: 3.2 GHz, 4-wide issue, 128-entry instruction window per core).
//
// The model is the standard trace-driven approximation used by
// memory-system simulators: instructions issue in order at up to
// Width per cycle; a load miss does not stall issue until it reaches the
// head of the instruction window, so independent misses within the window
// overlap (memory-level parallelism); stores retire through a write
// buffer without blocking.
package cpu

import (
	"math"

	"hira/internal/workload"
)

// MemRequest is a memory request a core asks the memory system to
// perform.
type MemRequest struct {
	Addr  uint64
	Write bool
	Core  int
	// Token identifies the request in Complete callbacks.
	Token uint64
}

// Memory is the interface the core issues requests through. Issue returns
// false when the memory system cannot accept the request this cycle (queue
// full); the core retries.
type Memory interface {
	Issue(req MemRequest) bool
}

// Core is one simulated processor core fed by a workload access stream
// (a synthetic generator or a recorded trace player).
type Core struct {
	ID     int
	Width  int // issue width per core cycle (4)
	Window int // instruction window size (128)

	gen workload.Stream
	mem Memory

	// Issue-side state.
	issued  uint64 // instructions entered into the window
	gapLeft int    // non-memory instructions before the next access
	pending *workload.Access
	token   uint64

	// Outstanding loads, in program order: instruction positions of
	// misses whose data has not returned. The slice is a head-indexed
	// ring so retiring from the front neither allocates nor leaks the
	// backing array.
	outstanding []outstandingLoad
	outHead     int

	// earlyDone records a load completed synchronously inside
	// Memory.Issue — e.g. a cache hit resolved before Issue returns —
	// which arrives before Tick has entered the load into the window.
	// Without it the completion is silently lost, the stale window entry
	// never retires, and the core deadlocks once the window fills behind
	// it. Transient: set during the Issue call, consumed immediately
	// after in the same Tick iteration, zero between ticks (so it never
	// enters snapshots).
	earlyDone uint64

	// Retired counts completed instructions (the IPC numerator).
	Retired uint64

	// Stats.
	LoadsIssued, StoresIssued uint64
	StallCycles               float64
}

type outstandingLoad struct {
	pos   uint64
	token uint64
	done  bool
}

// New returns a core reading from gen and issuing to mem.
func New(id int, gen workload.Stream, mem Memory) *Core {
	return &Core{ID: id, Width: 4, Window: 128, gen: gen, mem: mem}
}

// Complete signals that the load identified by token has its data. A
// completion may arrive synchronously, from inside the Memory.Issue
// call that submitted the load: at that point the load is not yet in
// the window, so it is recorded in earlyDone for Tick to consume.
func (c *Core) Complete(token uint64) {
	found := false
	for i := c.outHead; i < len(c.outstanding); i++ {
		if c.outstanding[i].token == token {
			c.outstanding[i].done = true
			found = true
			break
		}
	}
	if !found && token == c.token {
		c.earlyDone = token
	}
	// Retire completed loads from the head.
	for c.outHead < len(c.outstanding) && c.outstanding[c.outHead].done {
		c.outHead++
	}
	if c.outHead == len(c.outstanding) {
		c.outstanding = c.outstanding[:0]
		c.outHead = 0
	} else if c.outHead > len(c.outstanding)/2 && c.outHead >= 64 {
		n := copy(c.outstanding, c.outstanding[c.outHead:])
		c.outstanding = c.outstanding[:n]
		c.outHead = 0
	}
}

// windowHead returns the instruction position of the oldest incomplete
// load, or issued if none (no retirement blockage).
func (c *Core) windowHead() uint64 {
	if c.outHead == len(c.outstanding) {
		return c.issued
	}
	return c.outstanding[c.outHead].pos
}

// Tick advances the core by budget instruction slots (width x core cycles
// for the elapsed wall time) and updates Retired.
func (c *Core) Tick(budget float64) {
	slots := int(budget)
	for slots > 0 {
		// Window full: the oldest miss blocks issue once the window is
		// exhausted.
		if c.Blocked() {
			c.StallCycles += float64(slots)
			break
		}
		if c.gapLeft > 0 {
			n := c.gapLeft
			if n > slots {
				n = slots
			}
			// Cap issue to the window boundary.
			if room := c.room(); n > room {
				n = room
			}
			c.gapLeft -= n
			c.issued += uint64(n)
			slots -= n
			continue
		}
		if c.pending == nil {
			a := c.gen.Next()
			c.pending = &a
			c.gapLeft = a.Gap
			continue
		}
		// A memory access is at the issue point.
		a := *c.pending
		c.token++
		req := MemRequest{Addr: a.Addr, Write: a.Write, Core: c.ID, Token: c.token}
		if !c.mem.Issue(req) {
			// Queue full: retry next tick.
			c.StallCycles += float64(slots)
			break
		}
		if a.Write {
			c.StoresIssued++
			// Stores retire through the write buffer immediately.
		} else {
			c.LoadsIssued++
			if c.earlyDone != c.token {
				c.outstanding = append(c.outstanding, outstandingLoad{pos: c.issued, token: c.token})
			}
			// else: the load completed inside Issue (zero-latency hit);
			// it retires immediately and never pins the window head.
		}
		c.earlyDone = 0
		c.issued++
		slots--
		c.pending = nil
	}
	// Retirement: everything up to the oldest incomplete load has
	// retired.
	c.Retired = c.windowHead()
}

// Blocked reports whether the instruction window is full behind an
// incomplete load: until a Complete arrives, Tick can only accrue stall
// cycles, so callers may account those directly and skip the call.
func (c *Core) Blocked() bool {
	return c.issued-c.windowHead() >= uint64(c.Window)
}

// room returns the instruction slots left before the window boundary.
func (c *Core) room() int {
	return int(uint64(c.Window) - (c.issued - c.windowHead()))
}

// IdleTicks returns a lower bound on how many ticks the core can advance
// without touching memory, assuming no Complete arrives in between:
// effectively unbounded while the instruction window is full (only a
// Complete unblocks it), the remaining gap length at the maximum issue
// rate while between memory accesses, zero otherwise. Callers may replay
// that many ticks with Skip instead of Tick; maxSlotsPerTick is the
// largest slot budget a single tick can deliver.
func (c *Core) IdleTicks(maxSlotsPerTick int) int {
	if c.Blocked() {
		return math.MaxInt
	}
	if c.gapLeft > 0 {
		m := c.gapLeft
		if c.outHead < len(c.outstanding) {
			// The window head is pinned: issuing shrinks the room.
			if room := c.room(); room < m {
				m = room
			}
		}
		return (m - 1) / maxSlotsPerTick
	}
	return 0
}

// Skip replays one tick of the given slot budget through a window that
// IdleTicks proved memory-inert, bit-identically to Tick: a blocked core
// accrues stall cycles, a mid-gap core issues gap instructions.
func (c *Core) Skip(slots int) {
	if c.Blocked() {
		c.StallCycles += float64(slots)
		return
	}
	n := c.gapLeft
	if n > slots {
		n = slots
	}
	if room := c.room(); n > room {
		n = room
	}
	c.gapLeft -= n
	c.issued += uint64(n)
	c.Retired = c.windowHead()
}

// IPC returns retired instructions per core cycle over elapsed cycles.
func (c *Core) IPC(cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.Retired) / cycles
}
