package cpu

import (
	"fmt"

	"hira/internal/snap"
	"hira/internal/workload"
)

// Snapshot appends the core's full mutable state — issue position,
// pending access, outstanding loads, retirement and stall accounting,
// and the workload stream's position — to w. It returns an error only
// when the stream cannot save its position (a custom workload.Stream
// without StreamState support).
func (c *Core) Snapshot(w *snap.Writer) error {
	ss, ok := c.gen.(workload.StreamState)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T is not checkpointable", c.ID, c.gen)
	}
	w.U64(c.issued)
	w.Int(c.gapLeft)
	w.Bool(c.pending != nil)
	if c.pending != nil {
		w.U64(c.pending.Addr)
		w.Bool(c.pending.Write)
		w.Int(c.pending.Gap)
	}
	w.U64(c.token)
	w.Len(len(c.outstanding) - c.outHead)
	for _, o := range c.outstanding[c.outHead:] {
		w.U64(o.pos)
		w.U64(o.token)
		w.Bool(o.done)
	}
	w.U64(c.Retired)
	w.U64(c.LoadsIssued)
	w.U64(c.StoresIssued)
	w.F64(c.StallCycles)
	ss.SnapshotState(w)
	return nil
}

// SnapshotSize returns an upper bound on Snapshot's encoded size for
// the core's current state (stream positions are a few dozen bytes at
// most), so composing snapshots can pre-size their buffers.
func (c *Core) SnapshotSize() int {
	return 128 + 21*(len(c.outstanding)-c.outHead)
}

// Restore reads state written by Snapshot into a freshly constructed
// core running the same workload stream. Structural invariants (window
// occupancy, in-order load positions) are validated so a corrupt
// checkpoint is an error, never a core that panics or spins later.
func (c *Core) Restore(r *snap.Reader) error {
	ss, ok := c.gen.(workload.StreamState)
	if !ok {
		return fmt.Errorf("cpu: core %d stream %T is not checkpointable", c.ID, c.gen)
	}
	c.issued = r.U64()
	c.gapLeft = r.Int()
	if c.gapLeft < 0 {
		r.Failf("negative gap %d", c.gapLeft)
	}
	if r.Bool() {
		a := workload.Access{Addr: r.U64(), Write: r.Bool(), Gap: r.Int()}
		c.pending = &a
	} else {
		c.pending = nil
	}
	c.token = r.U64()
	n := r.Len(c.Window, 3)
	c.outstanding = c.outstanding[:0]
	c.outHead = 0
	prev := uint64(0)
	for i := 0; i < n; i++ {
		o := outstandingLoad{pos: r.U64(), token: r.U64(), done: r.Bool()}
		if r.Err() != nil {
			return r.Err()
		}
		if o.pos > c.issued || (i > 0 && o.pos < prev) {
			r.Failf("outstanding load %d position %d out of order (issued %d)", i, o.pos, c.issued)
			return r.Err()
		}
		prev = o.pos
		c.outstanding = append(c.outstanding, o)
	}
	c.Retired = r.U64()
	c.LoadsIssued = r.U64()
	c.StoresIssued = r.U64()
	c.StallCycles = r.F64()
	if err := ss.RestoreState(r); err != nil {
		return err
	}
	return r.Err()
}
