package cpu

import (
	"testing"

	"hira/internal/workload"
)

// fakeMemory completes loads after a fixed number of Deliver calls.
type fakeMemory struct {
	latency  int
	inflight []fakeReq
	accept   bool
	issued   int
}

type fakeReq struct {
	token uint64
	left  int
	write bool
}

func (m *fakeMemory) Issue(req MemRequest) bool {
	if !m.accept {
		return false
	}
	m.issued++
	if !req.Write {
		m.inflight = append(m.inflight, fakeReq{token: req.Token, left: m.latency})
	}
	return true
}

// step advances fake memory one cycle, completing due loads on the core.
func (m *fakeMemory) step(c *Core) {
	kept := m.inflight[:0]
	for _, r := range m.inflight {
		r.left--
		if r.left <= 0 {
			c.Complete(r.token)
		} else {
			kept = append(kept, r)
		}
	}
	m.inflight = kept
}

func gen(name string, seed uint64) *workload.Generator {
	p, err := workload.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return workload.NewGenerator(p, seed)
}

func TestCoreRetiresWithFastMemory(t *testing.T) {
	mem := &fakeMemory{latency: 1, accept: true}
	c := New(0, gen("hmmer", 1), mem)
	for i := 0; i < 1000; i++ {
		c.Tick(4)
		mem.step(c)
	}
	ipc := c.IPC(1000)
	if ipc < 3 {
		t.Errorf("IPC = %.2f with near-ideal memory, want near 4", ipc)
	}
}

func TestCoreStallsWithSlowMemory(t *testing.T) {
	run := func(latency int) float64 {
		mem := &fakeMemory{latency: latency, accept: true}
		c := New(0, gen("mcf", 1), mem)
		for i := 0; i < 2000; i++ {
			c.Tick(4)
			mem.step(c)
		}
		return c.IPC(2000)
	}
	fast, slow := run(2), run(200)
	if slow >= fast {
		t.Errorf("IPC did not degrade with memory latency: fast=%.3f slow=%.3f", fast, slow)
	}
	if slow > 1.0 {
		t.Errorf("mcf at 200-cycle latency has IPC %.3f, implausibly high", slow)
	}
}

func TestCoreWindowLimitsMLP(t *testing.T) {
	// With memory that never completes, the core must issue at most one
	// window's worth of instructions and then stall forever.
	mem := &fakeMemory{latency: 1 << 30, accept: true}
	c := New(0, gen("mcf", 1), mem)
	for i := 0; i < 10000; i++ {
		c.Tick(4)
	}
	// The window is relative to the oldest incomplete load: no more than
	// Window instructions may be in flight past it.
	if c.issued-c.windowHead() > uint64(c.Window) {
		t.Errorf("%d instructions in flight past a dead miss, window is %d",
			c.issued-c.windowHead(), c.Window)
	}
	if c.Retired != 0 && c.Retired >= c.issued {
		t.Errorf("retired %d with no completions", c.Retired)
	}
}

func TestCoreRetriesWhenQueueFull(t *testing.T) {
	mem := &fakeMemory{latency: 1, accept: false}
	c := New(0, gen("mcf", 1), mem)
	for i := 0; i < 100; i++ {
		c.Tick(4)
	}
	if mem.issued != 0 {
		t.Fatalf("issued %d requests while memory rejected all", mem.issued)
	}
	// Accepting again lets the core make progress.
	mem.accept = true
	before := c.issued
	for i := 0; i < 100; i++ {
		c.Tick(4)
		mem.step(c)
	}
	if c.issued <= before {
		t.Error("core did not recover after queue drained")
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// A write-heavy profile with memory that accepts but never completes
	// anything: stores must retire (write buffer), so retirement only
	// blocks on loads.
	mem := &fakeMemory{latency: 1 << 30, accept: true}
	c := New(0, gen("lbm", 1), mem) // 45% writes
	for i := 0; i < 10000; i++ {
		c.Tick(4)
	}
	if c.StoresIssued == 0 {
		t.Fatal("no stores issued")
	}
	// The core stalls on the first load, but everything before it,
	// including stores, retired.
	if c.Retired == 0 {
		t.Error("nothing retired; stores should not block")
	}
}

func TestCoreMLPOverlapsIndependentMisses(t *testing.T) {
	// Two cores with identical traces, one with memory that can overlap
	// (latency L for all) and one serialized: the windowed model must
	// show MLP, i.e. IPC(L) >> IPC(serialized) for an intense workload.
	mem := &fakeMemory{latency: 50, accept: true}
	c := New(0, gen("mcf", 3), mem)
	for i := 0; i < 5000; i++ {
		c.Tick(4)
		mem.step(c)
	}
	withMLP := c.IPC(5000)

	// Serialized memory: one outstanding at a time.
	ser := &serialMemory{latency: 50}
	c2 := New(0, gen("mcf", 3), ser)
	for i := 0; i < 5000; i++ {
		c2.Tick(4)
		ser.step(c2)
	}
	serial := c2.IPC(5000)
	if withMLP <= serial {
		t.Errorf("no MLP benefit: overlapped %.3f vs serial %.3f", withMLP, serial)
	}
}

// syncMemory completes some loads synchronously, from inside Issue —
// the shape of an LLC hit in the full-system model, where the hit is
// resolved before Issue returns and the completion therefore arrives
// before the core has entered the load into its window.
type syncMemory struct {
	c        *Core
	every    int // complete every Nth load synchronously; others async
	n        int
	inflight []fakeReq
}

func (m *syncMemory) Issue(req MemRequest) bool {
	if req.Write {
		return true
	}
	m.n++
	if m.n%m.every == 0 {
		m.c.Complete(req.Token)
		return true
	}
	m.inflight = append(m.inflight, fakeReq{token: req.Token, left: 20})
	return true
}

func (m *syncMemory) step() {
	kept := m.inflight[:0]
	for _, r := range m.inflight {
		r.left--
		if r.left <= 0 {
			m.c.Complete(r.token)
		} else {
			kept = append(kept, r)
		}
	}
	m.inflight = kept
}

// TestCoreSynchronousCompletion is the regression test for a deadlock
// the adversarial hammering workloads flushed out: a load completed
// inside Memory.Issue (an LLC hit) arrived before Tick appended the
// window entry, the completion was dropped, and the stale entry pinned
// the window head until the core wedged permanently. Small-footprint
// attack loops re-touch lines whose miss is still in flight, so they
// hit this deterministically; wide benign streams almost never did.
func TestCoreSynchronousCompletion(t *testing.T) {
	for _, every := range []int{1, 3} {
		mem := &syncMemory{every: every}
		c := New(0, gen("mcf", 1), mem)
		mem.c = c
		for i := 0; i < 5000; i++ {
			c.Tick(4)
			mem.step()
		}
		if c.Blocked() && len(mem.inflight) == 0 {
			t.Errorf("every=%d: core wedged with no loads in flight (lost a synchronous completion)", every)
		}
		if c.Retired < 1000 {
			t.Errorf("every=%d: retired only %d instructions in 5000 ticks", every, c.Retired)
		}
	}
}

type serialMemory struct {
	latency int
	busy    bool
	left    int
	token   uint64
}

func (m *serialMemory) Issue(req MemRequest) bool {
	if req.Write {
		return true
	}
	if m.busy {
		return false
	}
	m.busy = true
	m.left = m.latency
	m.token = req.Token
	return true
}

func (m *serialMemory) step(c *Core) {
	if !m.busy {
		return
	}
	m.left--
	if m.left <= 0 {
		c.Complete(m.token)
		m.busy = false
	}
}
