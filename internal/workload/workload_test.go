package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesWellFormed(t *testing.T) {
	ps := SPEC2006Profiles()
	if len(ps) < 25 {
		t.Fatalf("only %d profiles", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.MPKI < 0 || p.RowLocality < 0 || p.RowLocality > 1 ||
			p.WriteFrac < 0 || p.WriteFrac > 1 || p.FootprintMB <= 0 {
			t.Errorf("profile %s has out-of-range fields: %+v", p.Name, p)
		}
	}
	// The classic memory-intensive benchmarks must be present.
	for _, name := range []string{"mcf", "lbm", "libquantum", "omnetpp"} {
		if !seen[name] {
			t.Errorf("missing benchmark %s", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Errorf("ProfileByName(mcf) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g1 := NewGenerator(p, 7)
	g2 := NewGenerator(p, 7)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("divergence at access %d", i)
		}
	}
	g3 := NewGenerator(p, 8)
	same := true
	for i := 0; i < 100; i++ {
		if g1.Next() != g3.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorStatisticsMatchProfile(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "hmmer"} {
		p, _ := ProfileByName(name)
		g := NewGenerator(p, 42)
		const n = 20000
		var gaps, writes, seq float64
		prev := uint64(0)
		for i := 0; i < n; i++ {
			a := g.Next()
			gaps += float64(a.Gap)
			if a.Write {
				writes++
			}
			if i > 0 && a.Addr == prev+64 {
				seq++
			}
			prev = a.Addr
		}
		gotMPKI := 1000 / (gaps/n + 1)
		if math.Abs(gotMPKI-p.MPKI)/p.MPKI > 0.15 {
			t.Errorf("%s: effective MPKI %.2f, want ~%.2f", name, gotMPKI, p.MPKI)
		}
		if wf := writes / n; math.Abs(wf-p.WriteFrac) > 0.03 {
			t.Errorf("%s: write fraction %.3f, want %.3f", name, wf, p.WriteFrac)
		}
		if sl := seq / n; math.Abs(sl-p.RowLocality) > 0.05 {
			t.Errorf("%s: sequential fraction %.3f, want ~%.2f", name, sl, p.RowLocality)
		}
	}
}

func TestGeneratorAddressesAligned(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g := NewGenerator(p, 1)
	f := func(n uint8) bool {
		for i := 0; i < int(n); i++ {
			if g.Next().Addr%64 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorFootprintBounded(t *testing.T) {
	p, _ := ProfileByName("sphinx3") // 40MB -> 64MB rounded
	g := NewGenerator(p, 3)
	lo, hi := ^uint64(0), uint64(0)
	for i := 0; i < 50000; i++ {
		a := g.Next().Addr
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if span := hi - lo; span > 64<<20 {
		t.Errorf("address span %d exceeds rounded footprint", span)
	}
}

// TestGeneratorFootprintsDisjoint: the regression for the overlap bug —
// at Validate's 64 GiB footprint ceiling, region spacing must widen past
// the historical 16 GiB stride so co-running cores (distinct seeds)
// still touch disjoint address ranges.
func TestGeneratorFootprintsDisjoint(t *testing.T) {
	p := Profile{Name: "huge", MPKI: 10, RowLocality: 0.5, FootprintMB: 1 << 16, WriteFrac: 0.2}
	if err := p.Validate(); err != nil {
		t.Fatalf("max-footprint profile rejected: %v", err)
	}
	size := uint64(p.FootprintMB) << 20
	type region struct{ lo, hi uint64 }
	regions := make([]region, 4)
	for seed := range regions {
		g := NewGenerator(p, uint64(seed))
		lo, hi := ^uint64(0), uint64(0)
		for i := 0; i < 20000; i++ {
			a := g.Next().Addr
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if hi-lo > size {
			t.Fatalf("seed %d: span %d exceeds footprint %d", seed, hi-lo, size)
		}
		if lo < g.base || hi >= g.base+size {
			t.Fatalf("seed %d: addresses [%d,%d] escape region [%d,%d)", seed, lo, hi, g.base, g.base+size)
		}
		regions[seed] = region{g.base, g.base + size}
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].lo < regions[j].hi && regions[j].lo < regions[i].hi {
				t.Errorf("seeds %d and %d share address range [%d,%d) vs [%d,%d)",
					i, j, regions[i].lo, regions[i].hi, regions[j].lo, regions[j].hi)
			}
		}
	}
}

// TestGeneratorPlacementUnchangedForSmallFootprints pins that the fix
// did not move any footprint that already fit the 16 GiB stride: every
// existing stream (and so every figure golden) is byte-identical.
func TestGeneratorPlacementUnchangedForSmallFootprints(t *testing.T) {
	for _, p := range SPEC2006Profiles() {
		for _, seed := range []uint64{0, 1, 7, 63, 64, 65} {
			g := NewGenerator(p, seed)
			if want := (seed % 64) << 34; g.base != want {
				t.Fatalf("%s seed %d: base %d, want historical %d", p.Name, seed, g.base, want)
			}
		}
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(125, 8, 1)
	b := Mixes(125, 8, 1)
	if len(a) != 125 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		if len(a[i].Profiles) != 8 {
			t.Fatalf("mix %d has %d cores", i, len(a[i].Profiles))
		}
		if a[i].String() != b[i].String() {
			t.Fatalf("mix %d differs across calls", i)
		}
	}
	c := Mixes(125, 8, 2)
	diff := false
	for i := range a {
		if a[i].String() != c[i].String() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical mix sets")
	}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range SPEC2006Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %s fails validation: %v", p.Name, err)
		}
	}
	bad := []Profile{
		{Name: "", MPKI: 1, FootprintMB: 1},
		{Name: "has space", MPKI: 1, FootprintMB: 1},
		{Name: "x/y", MPKI: 1, FootprintMB: 1},
		{Name: "ok", MPKI: 0, FootprintMB: 1},
		{Name: "ok", MPKI: 2000, FootprintMB: 1},
		{Name: "ok", MPKI: 1, FootprintMB: 0},
		{Name: "ok", MPKI: 1, FootprintMB: 1, RowLocality: 1.5},
		{Name: "ok", MPKI: 1, FootprintMB: 1, WriteFrac: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %+v passed validation", p)
		}
	}
}

// TestProfileSourceKeyDistinguishesEveryField: the satellite aliasing
// guarantee at the source level — perturbing any single profile field
// changes the content key.
func TestProfileSourceKeyDistinguishesEveryField(t *testing.T) {
	base := Profile{Name: "w", MPKI: 10, RowLocality: 0.5, FootprintMB: 64, WriteFrac: 0.25}
	variants := []Profile{base, base, base, base, base}
	variants[0].Name = "w2"
	variants[1].MPKI = 10.5
	variants[2].RowLocality = 0.51
	variants[3].FootprintMB = 65
	variants[4].WriteFrac = 0.26
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d key %q aliases the base", i, v.Key())
		}
	}
}

func TestRoundRobinMixes(t *testing.T) {
	a, _ := ProfileByName("mcf")
	b, _ := ProfileByName("lbm")
	ms := RoundRobinMixes([]Source{a, b}, 2, 3)
	want := [][]string{{"mcf", "lbm", "mcf"}, {"lbm", "mcf", "lbm"}}
	for i, m := range ms {
		for j, s := range m.Sources {
			if s.Label() != want[i][j] {
				t.Fatalf("mix %d core %d = %s, want %s", i, j, s.Label(), want[i][j])
			}
		}
	}
	if RoundRobinMixes(nil, 2, 3) != nil {
		t.Error("empty source list produced mixes")
	}
	if RoundRobinMixes([]Source{a}, -1, 3) != nil || RoundRobinMixes([]Source{a}, 2, -1) != nil {
		t.Error("non-positive counts produced mixes instead of nil")
	}
}

// TestRoundRobinNamesMatchesMixes pins the CLI/service cell-sharing
// contract: expanding a workload list by name (what clients send as
// explicit spec mixes) must assign exactly like RoundRobinMixes (what
// `hira-sim -trace` runs), for every shape.
func TestRoundRobinNamesMatchesMixes(t *testing.T) {
	profiles := SPEC2006Profiles()[:5]
	for _, shape := range []struct{ srcs, n, cores int }{
		{1, 1, 4}, {2, 3, 8}, {5, 4, 3}, {3, 7, 1},
	} {
		srcs := make([]Source, shape.srcs)
		names := make([]string, shape.srcs)
		for i := range srcs {
			srcs[i] = profiles[i]
			names[i] = profiles[i].Name
		}
		mixes := RoundRobinMixes(srcs, shape.n, shape.cores)
		byName := RoundRobinNames(names, shape.n, shape.cores)
		if len(mixes) != len(byName) {
			t.Fatalf("shape %+v: %d mixes vs %d name rows", shape, len(mixes), len(byName))
		}
		for i := range mixes {
			for j, s := range mixes[i].Sources {
				if s.Label() != byName[i][j] {
					t.Fatalf("shape %+v mix %d core %d: %s vs %s", shape, i, j, s.Label(), byName[i][j])
				}
			}
		}
	}
	if RoundRobinNames(nil, 2, 3) != nil || RoundRobinNames([]string{"a"}, 0, 3) != nil {
		t.Error("degenerate name expansions produced rows")
	}
}

func TestMixesCoverManyBenchmarks(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Mixes(125, 8, 1) {
		for _, p := range m.Profiles {
			seen[p.Name] = true
		}
	}
	if len(seen) < 20 {
		t.Errorf("125 mixes touched only %d distinct benchmarks", len(seen))
	}
}
