package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesWellFormed(t *testing.T) {
	ps := SPEC2006Profiles()
	if len(ps) < 25 {
		t.Fatalf("only %d profiles", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.MPKI < 0 || p.RowLocality < 0 || p.RowLocality > 1 ||
			p.WriteFrac < 0 || p.WriteFrac > 1 || p.FootprintMB <= 0 {
			t.Errorf("profile %s has out-of-range fields: %+v", p.Name, p)
		}
	}
	// The classic memory-intensive benchmarks must be present.
	for _, name := range []string{"mcf", "lbm", "libquantum", "omnetpp"} {
		if !seen[name] {
			t.Errorf("missing benchmark %s", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Errorf("ProfileByName(mcf) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g1 := NewGenerator(p, 7)
	g2 := NewGenerator(p, 7)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("divergence at access %d", i)
		}
	}
	g3 := NewGenerator(p, 8)
	same := true
	for i := 0; i < 100; i++ {
		if g1.Next() != g3.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorStatisticsMatchProfile(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "hmmer"} {
		p, _ := ProfileByName(name)
		g := NewGenerator(p, 42)
		const n = 20000
		var gaps, writes, seq float64
		prev := uint64(0)
		for i := 0; i < n; i++ {
			a := g.Next()
			gaps += float64(a.Gap)
			if a.Write {
				writes++
			}
			if i > 0 && a.Addr == prev+64 {
				seq++
			}
			prev = a.Addr
		}
		gotMPKI := 1000 / (gaps/n + 1)
		if math.Abs(gotMPKI-p.MPKI)/p.MPKI > 0.15 {
			t.Errorf("%s: effective MPKI %.2f, want ~%.2f", name, gotMPKI, p.MPKI)
		}
		if wf := writes / n; math.Abs(wf-p.WriteFrac) > 0.03 {
			t.Errorf("%s: write fraction %.3f, want %.3f", name, wf, p.WriteFrac)
		}
		if sl := seq / n; math.Abs(sl-p.RowLocality) > 0.05 {
			t.Errorf("%s: sequential fraction %.3f, want ~%.2f", name, sl, p.RowLocality)
		}
	}
}

func TestGeneratorAddressesAligned(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g := NewGenerator(p, 1)
	f := func(n uint8) bool {
		for i := 0; i < int(n); i++ {
			if g.Next().Addr%64 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorFootprintBounded(t *testing.T) {
	p, _ := ProfileByName("sphinx3") // 40MB -> 64MB rounded
	g := NewGenerator(p, 3)
	lo, hi := ^uint64(0), uint64(0)
	for i := 0; i < 50000; i++ {
		a := g.Next().Addr
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if span := hi - lo; span > 64<<20 {
		t.Errorf("address span %d exceeds rounded footprint", span)
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(125, 8, 1)
	b := Mixes(125, 8, 1)
	if len(a) != 125 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		if len(a[i].Profiles) != 8 {
			t.Fatalf("mix %d has %d cores", i, len(a[i].Profiles))
		}
		if a[i].String() != b[i].String() {
			t.Fatalf("mix %d differs across calls", i)
		}
	}
	c := Mixes(125, 8, 2)
	diff := false
	for i := range a {
		if a[i].String() != c[i].String() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical mix sets")
	}
}

func TestMixesCoverManyBenchmarks(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Mixes(125, 8, 1) {
		for _, p := range m.Profiles {
			seen[p.Name] = true
		}
	}
	if len(seen) < 20 {
		t.Errorf("125 mixes touched only %d distinct benchmarks", len(seen))
	}
}
