package workload

// A trace is a recorded access stream replayed deterministically — the
// third Source kind besides builtin and custom profiles. The on-disk
// format (version 1) is compact and versioned:
//
//	magic   "HIRATRC1" (8 bytes; the trailing digit is the version)
//	count   uvarint — number of accesses, >= 1
//	records count ×:
//	  head  uvarint — gap<<1 | writeBit
//	  delta varint  — signed address delta from the previous access
//	                  (the first record's delta is from address 0)
//
// Sequential streams therefore cost ~3 bytes per access. A trace's
// identity is the SHA-256 of its encoded bytes, so engine cell keys are
// content-addressed: renaming a file changes nothing, flipping one byte
// yields a distinct workload.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// traceMagic identifies version 1 of the trace format.
const traceMagic = "HIRATRC1"

// maxTraceBytes bounds how much ReadTrace will buffer, so a mislabeled
// or hostile input cannot exhaust memory (64 MiB holds ~20M accesses).
const maxTraceBytes = 64 << 20

// maxTraceGap bounds one record's instruction gap; larger values can
// only come from corruption (a 2^31-instruction gap is ~0.5s of
// silence), and the bound keeps int(gap) safe on 32-bit platforms.
const maxTraceGap = 1<<31 - 1

// Trace is a recorded access stream. It implements Source: the key is
// the SHA-256 digest of the encoded bytes, and Stream replays the
// accesses in a loop (a simulation run is tick-bounded, not
// access-bounded, so the trace wraps around when exhausted), ignoring
// the seed.
type Trace struct {
	name     string
	accesses []Access
	digest   string
}

// Key implements Source: content-addressed, name-independent.
func (t *Trace) Key() string { return "trace@sha256:" + t.digest }

// Label implements Source.
func (t *Trace) Label() string { return t.name }

// Stream implements Source: deterministic looping playback; seed is
// ignored because the trace already fixes every access.
func (t *Trace) Stream(seed uint64) Stream { return &tracePlayer{accesses: t.accesses} }

// SeedInvariant marks the trace's stream as identical for every seed,
// letting experiment layers canonicalize the seed in content keys.
func (t *Trace) SeedInvariant() bool { return true }

// Digest returns the hex SHA-256 of the trace's encoded bytes.
func (t *Trace) Digest() string { return t.digest }

// Len returns the number of recorded accesses.
func (t *Trace) Len() int { return len(t.accesses) }

// Accesses returns the recorded accesses; callers must not mutate them.
func (t *Trace) Accesses() []Access { return t.accesses }

// tracePlayer replays a trace's accesses in order, wrapping around.
type tracePlayer struct {
	accesses []Access
	pos      int
}

func (p *tracePlayer) Next() Access {
	a := p.accesses[p.pos]
	p.pos++
	if p.pos == len(p.accesses) {
		p.pos = 0
	}
	return a
}

// EncodeTrace serializes accesses into the version-1 trace format.
func EncodeTrace(accesses []Access) ([]byte, error) {
	if len(accesses) == 0 {
		return nil, fmt.Errorf("workload: refusing to encode an empty trace")
	}
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(accesses)))])
	prev := uint64(0)
	for i, a := range accesses {
		if a.Gap < 0 || a.Gap > maxTraceGap {
			return nil, fmt.Errorf("workload: access %d has gap %d outside [0, %d]", i, a.Gap, maxTraceGap)
		}
		head := uint64(a.Gap) << 1
		if a.Write {
			head |= 1
		}
		buf.Write(tmp[:binary.PutUvarint(tmp[:], head)])
		buf.Write(tmp[:binary.PutVarint(tmp[:], int64(a.Addr-prev))])
		prev = a.Addr
	}
	return buf.Bytes(), nil
}

// NewTrace builds an in-memory trace (digest included) from accesses.
func NewTrace(name string, accesses []Access) (*Trace, error) {
	data, err := EncodeTrace(accesses)
	if err != nil {
		return nil, err
	}
	return DecodeTrace(name, data)
}

// Record captures the first n accesses of src's stream under seed as a
// trace. Replaying the trace reproduces the recorded run exactly: the
// player emits byte-identical accesses in the same order.
func Record(name string, src Source, seed uint64, n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: cannot record %d accesses", n)
	}
	s := src.Stream(seed)
	accesses := make([]Access, n)
	for i := range accesses {
		accesses[i] = s.Next()
	}
	return NewTrace(name, accesses)
}

// DecodeTrace parses version-1 trace bytes. Corrupt or truncated input
// errors cleanly: allocation is bounded by the input length (a lying
// count cannot balloon memory), gaps are bounded, and trailing garbage
// is rejected so the digest always covers exactly the decoded records.
func DecodeTrace(name string, data []byte) (*Trace, error) {
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("workload: not a %s trace", traceMagic)
	}
	rest := data[len(traceMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("workload: trace truncated in access count")
	}
	rest = rest[n:]
	if count < 1 {
		return nil, fmt.Errorf("workload: trace declares %d accesses, want >= 1", count)
	}
	// Each record takes at least two bytes, so a valid count can never
	// exceed half the remaining input; reject early instead of looping.
	if count > uint64(len(rest))/2 {
		return nil, fmt.Errorf("workload: trace declares %d accesses but carries %d bytes", count, len(rest))
	}
	accesses := make([]Access, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		head, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("workload: trace truncated in record %d", i)
		}
		rest = rest[n:]
		delta, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("workload: trace truncated in record %d address", i)
		}
		rest = rest[n:]
		gap := head >> 1
		if gap > maxTraceGap {
			return nil, fmt.Errorf("workload: record %d gap %d exceeds %d", i, gap, maxTraceGap)
		}
		prev += uint64(delta)
		accesses = append(accesses, Access{Addr: prev, Write: head&1 == 1, Gap: int(gap)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("workload: %d trailing bytes after the last record", len(rest))
	}
	sum := sha256.Sum256(data)
	if name == "" {
		name = "trace"
	}
	return &Trace{name: name, accesses: accesses, digest: hex.EncodeToString(sum[:])}, nil
}

// ReadTrace decodes a trace from r, refusing inputs over 64 MiB.
func ReadTrace(name string, r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxTraceBytes+1))
	if err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if len(data) > maxTraceBytes {
		return nil, fmt.Errorf("workload: trace exceeds the %d-byte limit", maxTraceBytes)
	}
	return DecodeTrace(name, data)
}

// LoadTrace reads a trace file; the trace's name is the file's base name.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(filepath.Base(path), f)
}

// WriteTraceFile encodes accesses and writes them to path.
func WriteTraceFile(path string, accesses []Access) error {
	data, err := EncodeTrace(accesses)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
