package workload

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// recordedTrace is a small deterministic trace used across the tests
// (panics on failure so fuzz corpus construction can use it too).
func recordedTrace(n int) *Trace {
	p, err := ProfileByName("mcf")
	if err != nil {
		panic(err)
	}
	tr, err := Record("mcf-rec", p, 7, n)
	if err != nil {
		panic(err)
	}
	return tr
}

// TestRecordReplaysGeneratorExactly: recording a profile's stream and
// replaying the trace yields byte-identical accesses, including the
// wrap-around replay of a second pass.
func TestRecordReplaysGeneratorExactly(t *testing.T) {
	const n = 1000
	tr := recordedTrace(n)
	p, _ := ProfileByName("mcf")
	gen := p.Stream(7)
	want := make([]Access, n)
	for i := range want {
		want[i] = gen.Next()
	}
	if !reflect.DeepEqual(tr.Accesses(), want) {
		t.Fatal("recorded accesses differ from the generator stream")
	}
	// The player (with any seed — traces ignore it) replays the same
	// accesses, then wraps to the beginning.
	s := tr.Stream(12345)
	for i := 0; i < 2*n; i++ {
		if got := s.Next(); got != want[i%n] {
			t.Fatalf("replay access %d = %+v, want %+v", i, got, want[i%n])
		}
	}
}

// TestTraceFileRoundTrip: encode -> file -> load preserves accesses,
// digest, and the digest-based key; the name follows the file.
func TestTraceFileRoundTrip(t *testing.T) {
	tr := recordedTrace(500)
	path := filepath.Join(t.TempDir(), "roundtrip.trace")
	if err := WriteTraceFile(path, tr.Accesses()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Accesses(), tr.Accesses()) {
		t.Fatal("accesses changed through the file round trip")
	}
	if got.Digest() != tr.Digest() || got.Key() != tr.Key() {
		t.Fatalf("digest changed: %s vs %s", got.Digest(), tr.Digest())
	}
	if got.Label() != "roundtrip.trace" {
		t.Fatalf("loaded trace label = %q, want the file name", got.Label())
	}
	if !strings.HasPrefix(got.Key(), "trace@sha256:") {
		t.Fatalf("trace key %q is not digest-addressed", got.Key())
	}
}

// TestTraceCorruption: malformed inputs error cleanly instead of
// panicking or over-allocating.
func TestTraceCorruption(t *testing.T) {
	tr := recordedTrace(64)
	data, err := EncodeTrace(tr.Accesses())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         []byte("NOTATRCE rest"),
		"magic only":        []byte(traceMagic),
		"truncated header":  data[:len(traceMagic)+0],
		"truncated records": data[:len(data)/2],
		"trailing garbage":  append(append([]byte{}, data...), 0xFF),
		// A count claiming far more records than the input carries must
		// be rejected before allocating for it.
		"lying count": append([]byte(traceMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		"zero count":  append([]byte(traceMagic), 0x00),
	}
	for name, in := range cases {
		if _, err := DecodeTrace("x", in); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestTraceSizeLimit: ReadTrace refuses oversized inputs instead of
// buffering them whole (the endless reader proves it stops at the cap).
func TestTraceSizeLimit(t *testing.T) {
	if _, err := ReadTrace("big", zeroReader{}); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized trace err = %v, want size-limit error", err)
	}
}

// zeroReader is an endless stream of zero bytes.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) { return len(p), nil }

// TestTraceOneByteDistinctDigest: traces differing in a single access
// field have distinct digests, hence distinct engine keys.
func TestTraceOneByteDistinctDigest(t *testing.T) {
	tr := recordedTrace(128)
	mod := append([]Access(nil), tr.Accesses()...)
	mod[57].Gap++
	tr2, err := NewTrace(tr.Label(), mod)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Digest() == tr.Digest() || tr2.Key() == tr.Key() {
		t.Fatal("single-field change kept the same trace identity")
	}
	// Same bytes under a different name: same identity (content-addressed).
	tr3, err := NewTrace("other-name", tr.Accesses())
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Key() != tr.Key() {
		t.Fatal("renaming a trace changed its content key")
	}
}

// FuzzTraceRead: arbitrary bytes must never panic the decoder; accepted
// inputs must re-encode to a semantically identical trace.
func FuzzTraceRead(f *testing.F) {
	good, _ := EncodeTrace(recordedTrace(32).Accesses())
	f.Add(good)
	f.Add([]byte(traceMagic))
	f.Add([]byte{})
	f.Add(append([]byte(traceMagic), 0x02, 0x04, 0x01, 0x06, 0x03))
	f.Add(good[:len(good)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace("fuzz", data)
		if err != nil {
			return
		}
		if tr.Len() < 1 {
			t.Fatal("decoder accepted an empty trace")
		}
		// Canonical re-encode must round-trip (the decoder may accept
		// non-minimal varints, so byte equality with data is not
		// guaranteed — semantic equality is).
		enc, err := EncodeTrace(tr.Accesses())
		if err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeTrace("fuzz", enc)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr2.Accesses(), tr.Accesses()) {
			t.Fatal("re-encode changed the accesses")
		}
	})
}

// TestEncodeRejectsBadAccesses covers the writer-side guards.
func TestEncodeRejectsBadAccesses(t *testing.T) {
	if _, err := EncodeTrace(nil); err == nil {
		t.Error("encoded an empty trace")
	}
	if _, err := EncodeTrace([]Access{{Gap: -1}}); err == nil {
		t.Error("encoded a negative gap")
	}
	if _, err := Record("x", Profile{Name: "x", MPKI: 1, FootprintMB: 1}, 1, 0); err == nil {
		t.Error("recorded zero accesses")
	}
}
