// Package workload supplies the memory-access streams that drive the
// simulated cores. Workloads are first-class, pluggable Sources with a
// content identity: the synthetic profile generator standing in for the
// paper's SPEC CPU2006 benchmarks (§7), user-defined Profiles with
// arbitrary intensity/locality/footprint/write-fraction parameters, and
// recorded access traces replayed deterministically from a compact
// versioned binary format (trace.go). Streams are deterministic given
// (source, seed) — traces replay identically for every seed — and the
// 125 random 8-core multiprogrammed mixes of the paper are reproducible
// from a single seed.
package workload

import (
	"fmt"
	"strings"
)

// Stream is a deterministic, endless access stream driving one core.
type Stream interface {
	// Next returns the next access of the stream.
	Next() Access
}

// SeedInvariant is optionally implemented by sources whose stream is
// identical for every seed (recorded traces). Experiment layers may
// canonicalize the seed in such a source's content keys, so the same
// trace dealt to several cores shares one reference cell instead of
// simulating per-core copies.
type SeedInvariant interface {
	SeedInvariant() bool
}

// Source is one workload a simulated core can run.
type Source interface {
	// Key is the source's full content identity — every parameter or
	// byte the stream depends on. Experiment cells hash it, so two
	// sources that could ever produce different streams must have
	// distinct keys, and equal keys must replay identical streams.
	Key() string
	// Label is a short display name for reports.
	Label() string
	// Stream returns the source's access stream. Synthetic sources seed
	// their randomness from seed; recorded traces ignore it and replay
	// the same accesses for every seed.
	Stream(seed uint64) Stream
}

// Profile characterizes the memory behaviour of one benchmark.
type Profile struct {
	Name string
	// MPKI is last-level-cache-filtered memory accesses per
	// kilo-instruction: how hard the benchmark drives DRAM.
	MPKI float64
	// RowLocality is the probability that an access continues a
	// sequential stream (hitting the same or the next DRAM row) instead
	// of jumping to a random location in the footprint.
	RowLocality float64
	// FootprintMB is the size of the touched address space.
	FootprintMB int
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
}

// SPEC2006Profiles returns profiles for the SPEC CPU2006 benchmarks,
// with memory intensities set from published MPKI characterizations
// (approximate; the evaluation depends on the intensity mix, not exact
// per-benchmark values).
func SPEC2006Profiles() []Profile {
	return []Profile{
		{Name: "mcf", MPKI: 60, RowLocality: 0.25, FootprintMB: 1600, WriteFrac: 0.25},
		{Name: "lbm", MPKI: 30, RowLocality: 0.70, FootprintMB: 400, WriteFrac: 0.45},
		{Name: "milc", MPKI: 25, RowLocality: 0.55, FootprintMB: 600, WriteFrac: 0.30},
		{Name: "libquantum", MPKI: 25, RowLocality: 0.90, FootprintMB: 64, WriteFrac: 0.20},
		{Name: "soplex", MPKI: 25, RowLocality: 0.45, FootprintMB: 250, WriteFrac: 0.25},
		{Name: "GemsFDTD", MPKI: 20, RowLocality: 0.65, FootprintMB: 800, WriteFrac: 0.40},
		{Name: "omnetpp", MPKI: 20, RowLocality: 0.20, FootprintMB: 150, WriteFrac: 0.30},
		{Name: "bwaves", MPKI: 18, RowLocality: 0.75, FootprintMB: 850, WriteFrac: 0.30},
		{Name: "leslie3d", MPKI: 15, RowLocality: 0.70, FootprintMB: 120, WriteFrac: 0.35},
		{Name: "sphinx3", MPKI: 12, RowLocality: 0.55, FootprintMB: 40, WriteFrac: 0.10},
		{Name: "wrf", MPKI: 8, RowLocality: 0.60, FootprintMB: 120, WriteFrac: 0.30},
		{Name: "gcc", MPKI: 6, RowLocality: 0.40, FootprintMB: 80, WriteFrac: 0.35},
		{Name: "astar", MPKI: 5, RowLocality: 0.30, FootprintMB: 180, WriteFrac: 0.25},
		{Name: "cactusADM", MPKI: 5, RowLocality: 0.50, FootprintMB: 400, WriteFrac: 0.35},
		{Name: "zeusmp", MPKI: 5, RowLocality: 0.55, FootprintMB: 500, WriteFrac: 0.35},
		{Name: "xalancbmk", MPKI: 2, RowLocality: 0.30, FootprintMB: 100, WriteFrac: 0.25},
		{Name: "bzip2", MPKI: 3, RowLocality: 0.45, FootprintMB: 100, WriteFrac: 0.30},
		{Name: "hmmer", MPKI: 1, RowLocality: 0.60, FootprintMB: 30, WriteFrac: 0.35},
		{Name: "gobmk", MPKI: 1, RowLocality: 0.35, FootprintMB: 30, WriteFrac: 0.25},
		{Name: "h264ref", MPKI: 1, RowLocality: 0.55, FootprintMB: 60, WriteFrac: 0.25},
		{Name: "perlbench", MPKI: 1, RowLocality: 0.40, FootprintMB: 250, WriteFrac: 0.30},
		{Name: "sjeng", MPKI: 0.5, RowLocality: 0.30, FootprintMB: 170, WriteFrac: 0.25},
		{Name: "namd", MPKI: 0.5, RowLocality: 0.60, FootprintMB: 45, WriteFrac: 0.20},
		{Name: "calculix", MPKI: 0.5, RowLocality: 0.60, FootprintMB: 80, WriteFrac: 0.25},
		{Name: "gromacs", MPKI: 0.7, RowLocality: 0.55, FootprintMB: 25, WriteFrac: 0.30},
		{Name: "dealII", MPKI: 1, RowLocality: 0.50, FootprintMB: 100, WriteFrac: 0.25},
		{Name: "tonto", MPKI: 0.3, RowLocality: 0.50, FootprintMB: 40, WriteFrac: 0.30},
		{Name: "povray", MPKI: 0.1, RowLocality: 0.40, FootprintMB: 5, WriteFrac: 0.25},
		{Name: "gamess", MPKI: 0.1, RowLocality: 0.50, FootprintMB: 10, WriteFrac: 0.25},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range SPEC2006Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Key implements Source: the profile's full parameter set, not just its
// name, so tuning a benchmark's characterization (MPKI etc.) yields a
// distinct workload identity instead of silently aliasing the old one.
func (p Profile) Key() string {
	return fmt.Sprintf("%s(%g,%g,%d,%g)", p.Name, p.MPKI, p.RowLocality, p.FootprintMB, p.WriteFrac)
}

// Label implements Source.
func (p Profile) Label() string { return p.Name }

// Stream implements Source with a fresh synthetic generator.
func (p Profile) Stream(seed uint64) Stream { return NewGenerator(p, seed) }

// ValidName reports whether a workload name is usable in specs and keys:
// non-empty, at most 64 bytes, and limited to letters, digits, and
// [._-] (so names never collide with key syntax or file paths).
func ValidName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks a user-supplied profile's parameters. Builtin profiles
// all pass; custom profiles from specs or flags must before use.
func (p Profile) Validate() error {
	if !ValidName(p.Name) {
		return fmt.Errorf("workload: bad profile name %q (want 1-64 chars of [A-Za-z0-9._-])", p.Name)
	}
	if p.MPKI <= 0 || p.MPKI > 1000 {
		return fmt.Errorf("workload: profile %s: mpki %g outside (0, 1000]", p.Name, p.MPKI)
	}
	if p.RowLocality < 0 || p.RowLocality > 1 {
		return fmt.Errorf("workload: profile %s: row locality %g outside [0, 1]", p.Name, p.RowLocality)
	}
	if p.FootprintMB < 1 || p.FootprintMB > 1<<16 {
		return fmt.Errorf("workload: profile %s: footprint %d MB outside [1, 65536]", p.Name, p.FootprintMB)
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("workload: profile %s: write fraction %g outside [0, 1]", p.Name, p.WriteFrac)
	}
	return nil
}

// Access is one memory access of a trace.
type Access struct {
	// Addr is the physical byte address (cache-block aligned).
	Addr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of non-memory instructions executed before this
	// access.
	Gap int
}

// Generator deterministically produces a benchmark's access stream.
type Generator struct {
	prof   Profile
	rng    uint64
	cursor uint64 // current streaming position
	base   uint64 // footprint base address
	mask   uint64 // footprint size - 1 (power of two)
	gapAvg float64
}

// NewGenerator returns a trace generator for the profile. Each core's
// footprint is placed at a seed-dependent base so that co-running cores
// touch disjoint regions (as separate processes would).
func NewGenerator(p Profile, seed uint64) *Generator {
	if p.MPKI <= 0 {
		p.MPKI = 0.05
	}
	foot := uint64(p.FootprintMB) << 20
	// Round footprint up to a power of two for cheap wrapping.
	size := uint64(1) << 20
	for size < foot {
		size <<= 1
	}
	// Process regions are spaced by the larger of 16 GiB and the rounded
	// footprint, so co-running cores always touch disjoint regions even at
	// Validate's 64 GiB ceiling. Footprints <= 16 GiB keep the historical
	// (seed%64)<<34 placement bit-for-bit.
	stride := uint64(1) << 34
	if size > stride {
		stride = size
	}
	g := &Generator{
		prof:   p,
		rng:    splitmix(seed ^ 0x9e3779b97f4a7c15),
		base:   (seed % 64) * stride,
		mask:   size - 1,
		gapAvg: 1000 / p.MPKI,
	}
	g.cursor = g.randAddr()
	return g
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *Generator) next() uint64 {
	g.rng = splitmix(g.rng)
	return g.rng
}

func (g *Generator) randAddr() uint64 {
	return g.base + (g.next()&g.mask)&^63
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next returns the next access in the stream.
func (g *Generator) Next() Access {
	r := g.next()
	if float64(r%1000)/1000 < g.prof.RowLocality {
		// Continue the sequential stream.
		g.cursor = g.base + ((g.cursor-g.base+64)&g.mask)&^63
	} else {
		g.cursor = g.randAddr()
	}
	write := float64(g.next()%1000)/1000 < g.prof.WriteFrac
	// Gap jitter: uniform in [0.5, 1.5] x average.
	jitter := 0.5 + float64(g.next()%1000)/1000
	gap := int(g.gapAvg * jitter)
	return Access{Addr: g.cursor, Write: write, Gap: gap}
}

// Mix is one multiprogrammed workload: a benchmark per core.
type Mix struct {
	ID       int
	Profiles []Profile
}

// String lists the mix's benchmark names.
func (m Mix) String() string {
	s := fmt.Sprintf("mix%03d[", m.ID)
	for i, p := range m.Profiles {
		if i > 0 {
			s += ","
		}
		s += p.Name
	}
	return s + "]"
}

// Mixes returns n deterministic multiprogrammed mixes of cores benchmarks
// each, randomly drawn from the SPEC CPU2006 profile set (the paper uses
// 125 such 8-core mixes).
func Mixes(n, cores int, seed uint64) []Mix {
	profiles := SPEC2006Profiles()
	rng := splitmix(seed)
	out := make([]Mix, n)
	for i := range out {
		m := Mix{ID: i, Profiles: make([]Profile, cores)}
		for c := range m.Profiles {
			rng = splitmix(rng)
			m.Profiles[c] = profiles[rng%uint64(len(profiles))]
		}
		out[i] = m
	}
	return out
}

// SourceMix is one multiprogrammed workload over arbitrary sources: a
// Source per core. It generalizes Mix beyond builtin profiles to custom
// profiles and recorded traces.
type SourceMix struct {
	ID      int
	Sources []Source
}

// String lists the mix's source labels.
func (m SourceMix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix%03d[", m.ID)
	for i, s := range m.Sources {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Label())
	}
	b.WriteByte(']')
	return b.String()
}

// Sources converts a profile mix into the general source form.
func (m Mix) Sources() SourceMix {
	out := SourceMix{ID: m.ID, Sources: make([]Source, len(m.Profiles))}
	for i, p := range m.Profiles {
		out.Sources[i] = p
	}
	return out
}

// RoundRobinMixes builds n mixes of cores sources each by dealing srcs
// round-robin across cores and mixes: mix i, core j runs
// srcs[(i*cores+j) % len(srcs)]. The rule is part of the CLI/service
// contract — `hira-sim -trace` and clients that expand trace lists into
// explicit spec mixes (RoundRobinNames) assign identically so their
// sweeps share engine cells. Non-positive counts or an empty source
// list yield nil.
func RoundRobinMixes(srcs []Source, n, cores int) []SourceMix {
	if len(srcs) == 0 || n < 1 || cores < 1 {
		return nil
	}
	out := make([]SourceMix, n)
	for i := range out {
		out[i] = SourceMix{ID: i, Sources: make([]Source, cores)}
		for j := 0; j < cores; j++ {
			out[i].Sources[j] = srcs[roundRobinIndex(i, j, cores, len(srcs))]
		}
	}
	return out
}

// RoundRobinNames is RoundRobinMixes' deal rule over workload names —
// the form clients use when expanding a trace list into explicit
// service spec mixes. Both functions share roundRobinIndex, so the two
// expansions can never drift apart.
func RoundRobinNames(names []string, n, cores int) [][]string {
	if len(names) == 0 || n < 1 || cores < 1 {
		return nil
	}
	out := make([][]string, n)
	for i := range out {
		out[i] = make([]string, cores)
		for j := 0; j < cores; j++ {
			out[i][j] = names[roundRobinIndex(i, j, cores, len(names))]
		}
	}
	return out
}

// roundRobinIndex is the single source of truth for the deal rule.
func roundRobinIndex(mix, core, cores, n int) int {
	return (mix*cores + core) % n
}
