// Package workload generates synthetic memory-access traces standing in
// for the paper's SPEC CPU2006 workloads (§7). Each benchmark is described
// by a profile — memory intensity (misses per kilo-instruction), row
// locality, footprint, and write fraction — drawn from published
// characterizations; traces are deterministic given (profile, seed), and
// the 125 random 8-core multiprogrammed mixes of the paper are
// reproducible from a single seed.
package workload

import "fmt"

// Profile characterizes the memory behaviour of one benchmark.
type Profile struct {
	Name string
	// MPKI is last-level-cache-filtered memory accesses per
	// kilo-instruction: how hard the benchmark drives DRAM.
	MPKI float64
	// RowLocality is the probability that an access continues a
	// sequential stream (hitting the same or the next DRAM row) instead
	// of jumping to a random location in the footprint.
	RowLocality float64
	// FootprintMB is the size of the touched address space.
	FootprintMB int
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
}

// SPEC2006Profiles returns profiles for the SPEC CPU2006 benchmarks,
// with memory intensities set from published MPKI characterizations
// (approximate; the evaluation depends on the intensity mix, not exact
// per-benchmark values).
func SPEC2006Profiles() []Profile {
	return []Profile{
		{Name: "mcf", MPKI: 60, RowLocality: 0.25, FootprintMB: 1600, WriteFrac: 0.25},
		{Name: "lbm", MPKI: 30, RowLocality: 0.70, FootprintMB: 400, WriteFrac: 0.45},
		{Name: "milc", MPKI: 25, RowLocality: 0.55, FootprintMB: 600, WriteFrac: 0.30},
		{Name: "libquantum", MPKI: 25, RowLocality: 0.90, FootprintMB: 64, WriteFrac: 0.20},
		{Name: "soplex", MPKI: 25, RowLocality: 0.45, FootprintMB: 250, WriteFrac: 0.25},
		{Name: "GemsFDTD", MPKI: 20, RowLocality: 0.65, FootprintMB: 800, WriteFrac: 0.40},
		{Name: "omnetpp", MPKI: 20, RowLocality: 0.20, FootprintMB: 150, WriteFrac: 0.30},
		{Name: "bwaves", MPKI: 18, RowLocality: 0.75, FootprintMB: 850, WriteFrac: 0.30},
		{Name: "leslie3d", MPKI: 15, RowLocality: 0.70, FootprintMB: 120, WriteFrac: 0.35},
		{Name: "sphinx3", MPKI: 12, RowLocality: 0.55, FootprintMB: 40, WriteFrac: 0.10},
		{Name: "wrf", MPKI: 8, RowLocality: 0.60, FootprintMB: 120, WriteFrac: 0.30},
		{Name: "gcc", MPKI: 6, RowLocality: 0.40, FootprintMB: 80, WriteFrac: 0.35},
		{Name: "astar", MPKI: 5, RowLocality: 0.30, FootprintMB: 180, WriteFrac: 0.25},
		{Name: "cactusADM", MPKI: 5, RowLocality: 0.50, FootprintMB: 400, WriteFrac: 0.35},
		{Name: "zeusmp", MPKI: 5, RowLocality: 0.55, FootprintMB: 500, WriteFrac: 0.35},
		{Name: "xalancbmk", MPKI: 2, RowLocality: 0.30, FootprintMB: 100, WriteFrac: 0.25},
		{Name: "bzip2", MPKI: 3, RowLocality: 0.45, FootprintMB: 100, WriteFrac: 0.30},
		{Name: "hmmer", MPKI: 1, RowLocality: 0.60, FootprintMB: 30, WriteFrac: 0.35},
		{Name: "gobmk", MPKI: 1, RowLocality: 0.35, FootprintMB: 30, WriteFrac: 0.25},
		{Name: "h264ref", MPKI: 1, RowLocality: 0.55, FootprintMB: 60, WriteFrac: 0.25},
		{Name: "perlbench", MPKI: 1, RowLocality: 0.40, FootprintMB: 250, WriteFrac: 0.30},
		{Name: "sjeng", MPKI: 0.5, RowLocality: 0.30, FootprintMB: 170, WriteFrac: 0.25},
		{Name: "namd", MPKI: 0.5, RowLocality: 0.60, FootprintMB: 45, WriteFrac: 0.20},
		{Name: "calculix", MPKI: 0.5, RowLocality: 0.60, FootprintMB: 80, WriteFrac: 0.25},
		{Name: "gromacs", MPKI: 0.7, RowLocality: 0.55, FootprintMB: 25, WriteFrac: 0.30},
		{Name: "dealII", MPKI: 1, RowLocality: 0.50, FootprintMB: 100, WriteFrac: 0.25},
		{Name: "tonto", MPKI: 0.3, RowLocality: 0.50, FootprintMB: 40, WriteFrac: 0.30},
		{Name: "povray", MPKI: 0.1, RowLocality: 0.40, FootprintMB: 5, WriteFrac: 0.25},
		{Name: "gamess", MPKI: 0.1, RowLocality: 0.50, FootprintMB: 10, WriteFrac: 0.25},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range SPEC2006Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Access is one memory access of a trace.
type Access struct {
	// Addr is the physical byte address (cache-block aligned).
	Addr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of non-memory instructions executed before this
	// access.
	Gap int
}

// Generator deterministically produces a benchmark's access stream.
type Generator struct {
	prof   Profile
	rng    uint64
	cursor uint64 // current streaming position
	base   uint64 // footprint base address
	mask   uint64 // footprint size - 1 (power of two)
	gapAvg float64
}

// NewGenerator returns a trace generator for the profile. Each core's
// footprint is placed at a seed-dependent base so that co-running cores
// touch disjoint regions (as separate processes would).
func NewGenerator(p Profile, seed uint64) *Generator {
	if p.MPKI <= 0 {
		p.MPKI = 0.05
	}
	foot := uint64(p.FootprintMB) << 20
	// Round footprint up to a power of two for cheap wrapping.
	size := uint64(1) << 20
	for size < foot {
		size <<= 1
	}
	g := &Generator{
		prof:   p,
		rng:    splitmix(seed ^ 0x9e3779b97f4a7c15),
		base:   (seed % 64) << 34, // 16GB-spaced process regions
		mask:   size - 1,
		gapAvg: 1000 / p.MPKI,
	}
	g.cursor = g.randAddr()
	return g
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *Generator) next() uint64 {
	g.rng = splitmix(g.rng)
	return g.rng
}

func (g *Generator) randAddr() uint64 {
	return g.base + (g.next()&g.mask)&^63
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next returns the next access in the stream.
func (g *Generator) Next() Access {
	r := g.next()
	if float64(r%1000)/1000 < g.prof.RowLocality {
		// Continue the sequential stream.
		g.cursor = g.base + ((g.cursor-g.base+64)&g.mask)&^63
	} else {
		g.cursor = g.randAddr()
	}
	write := float64(g.next()%1000)/1000 < g.prof.WriteFrac
	// Gap jitter: uniform in [0.5, 1.5] x average.
	jitter := 0.5 + float64(g.next()%1000)/1000
	gap := int(g.gapAvg * jitter)
	return Access{Addr: g.cursor, Write: write, Gap: gap}
}

// Mix is one multiprogrammed workload: a benchmark per core.
type Mix struct {
	ID       int
	Profiles []Profile
}

// String lists the mix's benchmark names.
func (m Mix) String() string {
	s := fmt.Sprintf("mix%03d[", m.ID)
	for i, p := range m.Profiles {
		if i > 0 {
			s += ","
		}
		s += p.Name
	}
	return s + "]"
}

// Mixes returns n deterministic multiprogrammed mixes of cores benchmarks
// each, randomly drawn from the SPEC CPU2006 profile set (the paper uses
// 125 such 8-core mixes).
func Mixes(n, cores int, seed uint64) []Mix {
	profiles := SPEC2006Profiles()
	rng := splitmix(seed)
	out := make([]Mix, n)
	for i := range out {
		m := Mix{ID: i, Profiles: make([]Profile, cores)}
		for c := range m.Profiles {
			rng = splitmix(rng)
			m.Profiles[c] = profiles[rng%uint64(len(profiles))]
		}
		out[i] = m
	}
	return out
}
