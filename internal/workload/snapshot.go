package workload

import "hira/internal/snap"

// StreamState is implemented by streams whose position can be saved into
// a checkpoint and restored bit-identically: after RestoreState, the
// stream produces exactly the accesses the snapshotted stream would have
// produced next. Both builtin stream kinds implement it (the synthetic
// Generator saves its RNG and streaming cursor, the trace player its
// offset); a custom Source whose Stream does not is simply not
// checkpointable, which the sim layer reports as a clean
// cannot-snapshot error rather than a corrupt checkpoint.
type StreamState interface {
	Stream
	// SnapshotState appends the stream's mutable position to w.
	SnapshotState(w *snap.Writer)
	// RestoreState reads a position written by SnapshotState. Corrupt
	// input surfaces through r's sticky error or the returned error;
	// either way the stream must stay safe to use.
	RestoreState(r *snap.Reader) error
}

// SnapshotState implements StreamState: the generator's position is its
// RNG state and streaming cursor (profile parameters and the footprint
// base are reconstructed from the source and seed).
func (g *Generator) SnapshotState(w *snap.Writer) {
	w.U64(g.rng)
	w.U64(g.cursor)
}

// RestoreState implements StreamState. Any cursor is safe: the next
// access re-derives it modulo the footprint mask.
func (g *Generator) RestoreState(r *snap.Reader) error {
	g.rng = r.U64()
	g.cursor = r.U64()
	return r.Err()
}

// SnapshotState implements StreamState for trace playback: the position
// is the replay offset.
func (p *tracePlayer) SnapshotState(w *snap.Writer) {
	w.Int(p.pos)
}

// RestoreState implements StreamState, rejecting offsets outside the
// trace (a corrupt offset would panic the player on its next access).
func (p *tracePlayer) RestoreState(r *snap.Reader) error {
	pos := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if pos < 0 || pos >= len(p.accesses) {
		r.Failf("trace position %d outside [0, %d)", pos, len(p.accesses))
		return r.Err()
	}
	p.pos = pos
	return nil
}
