package workload

import (
	"fmt"

	"hira/internal/dram"
)

// The simulated system's shared LLC (Table 3: 8 MiB, 8-way, 64 B blocks,
// set = (addr>>6) & (sets-1)). Attack streams are built against this
// geometry so every hammering access misses the cache and reaches DRAM.
const (
	attackLLCBlock = 64
	attackLLCSets  = 16384
	attackLLCWays  = 8
)

// DefaultEvictRows is the default eviction-class size: one more row than
// the LLC has ways, so cycling the class in LRU order misses on every
// access.
const DefaultEvictRows = attackLLCWays + 1

// AttackKind names a hammering pattern.
const (
	// AttackSingle hammers one aggressor row adjacent to the victim.
	AttackSingle = "single"
	// AttackDouble hammers both rows sandwiching the victim — the classic
	// double-sided pattern with the highest per-activation disturbance.
	AttackDouble = "double"
	// AttackMany hammers Aggressors rows fanned out around the victim at
	// odd offsets (V-1, V+1, V-3, V+3, ...), the many-sided pattern that
	// defeats counter tables with too few entries.
	AttackMany = "many"
)

// AttackSpec parameterizes a mapping-aware RowHammer attacker workload.
// The zero value of the optional fields selects the strongest variant:
// continuous hammering (no duty cycle), interleaved aggressor classes,
// and no decoys. Setting BurstAccesses/IdleGap produces the
// refresh-synchronized variant (hammer bursts separated by idle windows
// sized to dodge or straddle refresh operations); Decoys > 0 produces the
// decoy-row variant that dilutes activation-frequency detectors.
type AttackSpec struct {
	// Kind is the hammering pattern: single, double, or many.
	Kind string `json:"kind"`
	// Channel, Rank, Bank locate the target bank. Bank is rank-relative
	// (flat across bank groups, as dram.Location counts them).
	Channel int `json:"channel"`
	Rank    int `json:"rank"`
	Bank    int `json:"bank"`
	// VictimRow is the row whose disturbance the attack maximizes.
	VictimRow int `json:"victim_row"`
	// Aggressors is the aggressor-row count for AttackMany (>= 3; ignored
	// for single/double, which imply 1 and 2).
	Aggressors int `json:"aggressors,omitempty"`
	// EvictRows is the number of same-bank, same-LLC-set rows cycled per
	// aggressor so the cache never filters the hammering (default
	// DefaultEvictRows; minimum that defeats the LLC is ways+1).
	EvictRows int `json:"evict_rows,omitempty"`
	// BurstAccesses > 0 splits the stream into hammer bursts of that many
	// accesses; IdleGap non-memory instructions separate bursts.
	BurstAccesses int `json:"burst_accesses,omitempty"`
	IdleGap       int `json:"idle_gap,omitempty"`
	// Decoys inserts that many far-away decoy rows, one visited after each
	// full hammer round, masking the aggressors' activation share.
	Decoys int `json:"decoys,omitempty"`
	// Sequential drains each aggressor's eviction class fully before
	// switching aggressors instead of interleaving classes access by
	// access (interleaved is the default and hammers most evenly).
	Sequential bool `json:"sequential,omitempty"`
}

func (s AttackSpec) withDefaults() AttackSpec {
	if s.EvictRows == 0 {
		s.EvictRows = DefaultEvictRows
	}
	switch s.Kind {
	case AttackSingle:
		s.Aggressors = 1
	case AttackDouble:
		s.Aggressors = 2
	}
	return s
}

// Validate checks the spec against a DRAM organization.
func (s AttackSpec) Validate(org dram.Org) error {
	s = s.withDefaults()
	switch s.Kind {
	case AttackSingle, AttackDouble:
	case AttackMany:
		if s.Aggressors < 3 || s.Aggressors > 16 {
			return fmt.Errorf("workload: attack aggressors %d outside [3, 16]", s.Aggressors)
		}
	default:
		return fmt.Errorf("workload: unknown attack kind %q (want single, double, or many)", s.Kind)
	}
	if s.Channel < 0 || s.Channel >= org.Channels {
		return fmt.Errorf("workload: attack channel %d outside [0, %d)", s.Channel, org.Channels)
	}
	if s.Rank < 0 || s.Rank >= org.RanksPerChannel {
		return fmt.Errorf("workload: attack rank %d outside [0, %d)", s.Rank, org.RanksPerChannel)
	}
	if s.Bank < 0 || s.Bank >= org.BanksPerRank() {
		return fmt.Errorf("workload: attack bank %d outside [0, %d)", s.Bank, org.BanksPerRank())
	}
	if s.EvictRows < 1 || s.EvictRows > 64 {
		return fmt.Errorf("workload: attack evict_rows %d outside [1, 64]", s.EvictRows)
	}
	if s.BurstAccesses < 0 || s.IdleGap < 0 {
		return fmt.Errorf("workload: attack burst_accesses/idle_gap must be non-negative")
	}
	if s.BurstAccesses == 0 && s.IdleGap > 0 {
		return fmt.Errorf("workload: attack idle_gap without burst_accesses")
	}
	if s.Decoys < 0 || s.Decoys > 16 {
		return fmt.Errorf("workload: attack decoys %d outside [0, 16]", s.Decoys)
	}
	_, err := NewAttack(s, org)
	return err
}

// Attack is a mapping-aware RowHammer attacker Source: it hammers rows
// adjacent to a victim through LLC eviction sets, so every access both
// misses the shared cache and row-conflicts in the target bank —
// activating an aggressor at nearly one ACT per row cycle. The stream is
// fully deterministic and identical for every seed (SeedInvariant), so
// experiment layers canonicalize its per-core seed like a recorded trace.
type Attack struct {
	spec AttackSpec
	org  dram.Org
	m    int        // row stride between same-bank rows sharing an LLC set
	rows [][]int    // per aggressor: its eviction class's rows
	addr [][]uint64 // per aggressor: the class rows' block-0 addresses
	dec  []uint64   // decoy rows' block-0 addresses
}

// NewAttack builds the attacker for a DRAM organization. The spec's
// aggressor rows are expanded into LLC eviction classes using the same
// MOP address mapping the simulator runs, so the attack stays effective
// for any organization the sweep configures.
func NewAttack(spec AttackSpec, org dram.Org) (*Attack, error) {
	spec = spec.withDefaults()
	switch spec.Kind {
	case AttackSingle, AttackDouble, AttackMany:
	default:
		return nil, fmt.Errorf("workload: unknown attack kind %q", spec.Kind)
	}
	if spec.Aggressors < 1 {
		return nil, fmt.Errorf("workload: attack needs at least one aggressor")
	}
	mapper := dram.NewMOPMapper(org)
	loc := func(row int) dram.Location {
		return dram.Location{
			BankID: dram.BankID{Channel: spec.Channel, Rank: spec.Rank, Bank: spec.Bank},
			Row:    row,
		}
	}
	set := func(row int) uint64 {
		return (mapper.Addr(loc(row)) / attackLLCBlock) % attackLLCSets
	}
	rowsPerBank := org.RowsPerBank()
	// m: the smallest row stride within one bank that preserves the LLC
	// set. It exists for every power-of-two geometry; searching keeps the
	// construction correct for any organization.
	m := 0
	for s := 1; s <= attackLLCSets && s < rowsPerBank; s++ {
		if set(s) == set(0) {
			m = s
			break
		}
	}
	if m == 0 {
		return nil, fmt.Errorf("workload: no same-set row stride within the bank (rows %d)", rowsPerBank)
	}
	// Aggressor base rows at odd offsets around the victim.
	bases := make([]int, 0, spec.Aggressors)
	for i := 0; len(bases) < spec.Aggressors; i++ {
		off := 2*(i/2) + 1 // 1, 1, 3, 3, 5, ...
		if i%2 == 0 {
			off = -off
		}
		if spec.Kind == AttackSingle {
			off = 1
		}
		bases = append(bases, spec.VictimRow+off)
	}
	a := &Attack{spec: spec, org: org, m: m}
	span := (spec.EvictRows - 1) * m
	for _, base := range bases {
		if base < 0 || base+span >= rowsPerBank {
			return nil, fmt.Errorf("workload: attack eviction class [%d, %d] escapes the bank's %d rows",
				base, base+span, rowsPerBank)
		}
		rows := make([]int, spec.EvictRows)
		addrs := make([]uint64, spec.EvictRows)
		for k := range rows {
			r := base + k*m
			if set(r) != set(base) {
				return nil, fmt.Errorf("workload: eviction class rows %d and %d land in different LLC sets", base, r)
			}
			rows[k] = r
			addrs[k] = mapper.Addr(loc(r))
		}
		a.rows = append(a.rows, rows)
		a.addr = append(a.addr, addrs)
	}
	// Decoy rows sit half a bank away from the victim, m apart, so they
	// share no neighbors with the attack's rows yet stay in-bank.
	for d := 0; d < spec.Decoys; d++ {
		r := (spec.VictimRow + rowsPerBank/2 + d*m) % rowsPerBank
		a.dec = append(a.dec, mapper.Addr(loc(r)))
	}
	return a, nil
}

// Spec returns the attack's (default-resolved) spec.
func (a *Attack) Spec() AttackSpec { return a.spec }

// AggressorRows returns the base aggressor rows (the rows adjacent to the
// victim; the eviction-class companions are m rows further out each).
func (a *Attack) AggressorRows() []int {
	out := make([]int, len(a.rows))
	for i, rows := range a.rows {
		out[i] = rows[0]
	}
	return out
}

// Key implements Source: every spec parameter plus the address-mapping
// geometry the row addresses were derived from, so an attack re-run under
// a different organization or tuning can never alias a cached cell.
func (a *Attack) Key() string {
	s := a.spec
	o := a.org
	return fmt.Sprintf("attack(%s,ch=%d,rk=%d,bk=%d,v=%d,ag=%d,ev=%d,burst=%d,idle=%d,dec=%d,seq=%t;org=%dx%dx%dx%dx%dx%d)",
		s.Kind, s.Channel, s.Rank, s.Bank, s.VictimRow, s.Aggressors, s.EvictRows,
		s.BurstAccesses, s.IdleGap, s.Decoys, s.Sequential,
		o.Channels, o.RanksPerChannel, o.BankGroups, o.BanksPerGroup, o.RowsPerBank(), o.RowBytes)
}

// Label implements Source.
func (a *Attack) Label() string {
	return fmt.Sprintf("atk-%s-v%d", a.spec.Kind, a.spec.VictimRow)
}

// SeedInvariant implements workload.SeedInvariant: the stream is the same
// for every seed.
func (a *Attack) SeedInvariant() bool { return true }

// Stream implements Source. The seed is ignored: hammering is a fixed
// schedule, not a stochastic process.
func (a *Attack) Stream(uint64) Stream {
	return &attackStream{a: a, pos: make([]int, len(a.addr))}
}

// attackStream cycles the aggressors' eviction classes. Interleaved mode
// visits one row of each class in turn; sequential mode drains a class
// before moving on. Either way each class is traversed in LRU order, so
// with EvictRows > LLC ways every access misses the cache, and since all
// rows share one bank every access is a row conflict — one activation per
// row cycle, the maximum hammer rate the DRAM timing allows.
type attackStream struct {
	a     *Attack
	class int
	pos   []int
	round int // accesses into the current hammer round
	burst int // accesses into the current duty-cycle burst
	decoy int // next decoy to visit
}

// Next implements Stream.
func (s *attackStream) Next() Access {
	a := s.a
	roundLen := len(a.addr) * a.spec.EvictRows
	var addr uint64
	if len(a.dec) > 0 && s.round == roundLen {
		// One decoy access after each full hammer round.
		addr = a.dec[s.decoy]
		s.decoy = (s.decoy + 1) % len(a.dec)
		s.round = 0
	} else {
		addr = a.addr[s.class][s.pos[s.class]]
		if a.spec.Sequential {
			s.pos[s.class]++
			if s.pos[s.class] == a.spec.EvictRows {
				s.pos[s.class] = 0
				s.class = (s.class + 1) % len(a.addr)
			}
		} else {
			s.pos[s.class]++
			if s.pos[s.class] == a.spec.EvictRows {
				s.pos[s.class] = 0
			}
			s.class = (s.class + 1) % len(a.addr)
		}
		s.round++
		if len(a.dec) == 0 && s.round == roundLen {
			s.round = 0
		}
	}
	gap := 0
	s.burst++
	if a.spec.BurstAccesses > 0 && s.burst >= a.spec.BurstAccesses {
		// Refresh-synchronized duty cycle: idle between hammer bursts.
		gap = a.spec.IdleGap
		s.burst = 0
	}
	return Access{Addr: addr, Write: false, Gap: gap}
}
