package workload

import (
	"testing"

	"hira/internal/dram"
)

func attackBaseSpec() AttackSpec {
	return AttackSpec{Kind: AttackDouble, Bank: 2, VictimRow: 256}
}

func TestAttackConstruction(t *testing.T) {
	org := dram.DefaultOrg()
	a, err := NewAttack(attackBaseSpec(), org)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AggressorRows(); len(got) != 2 || got[0] != 255 || got[1] != 257 {
		t.Fatalf("double-sided aggressors = %v, want [255 257]", got)
	}
	mapper := dram.NewMOPMapper(org)
	for ci, rows := range a.rows {
		if len(rows) != DefaultEvictRows {
			t.Fatalf("class %d has %d rows, want %d", ci, len(rows), DefaultEvictRows)
		}
		want := (a.addr[ci][0] / attackLLCBlock) % attackLLCSets
		for k, r := range rows {
			addr := a.addr[ci][k]
			if set := (addr / attackLLCBlock) % attackLLCSets; set != want {
				t.Errorf("class %d row %d: LLC set %d, want %d", ci, r, set, want)
			}
			loc := mapper.Map(addr)
			if loc.Channel != 0 || loc.Rank != 0 || loc.Bank != 2 || loc.Row != r {
				t.Errorf("class %d row %d maps to %+v", ci, r, loc)
			}
		}
	}
}

func TestAttackManySided(t *testing.T) {
	org := dram.DefaultOrg()
	a, err := NewAttack(AttackSpec{Kind: AttackMany, VictimRow: 300, Aggressors: 5}, org)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AggressorRows(); len(got) != 5 ||
		got[0] != 299 || got[1] != 301 || got[2] != 297 || got[3] != 303 || got[4] != 295 {
		t.Fatalf("many-sided aggressors = %v", got)
	}
}

func TestAttackStreamDeterministicAndSeedInvariant(t *testing.T) {
	org := dram.DefaultOrg()
	a, err := NewAttack(attackBaseSpec(), org)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SeedInvariant() {
		t.Fatal("attack must be seed-invariant")
	}
	s1, s2 := a.Stream(1), a.Stream(999)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		x, y := s1.Next(), s2.Next()
		if x != y {
			t.Fatalf("streams diverge at access %d for different seeds", i)
		}
		if x.Write {
			t.Fatal("hammering accesses must be reads")
		}
		if x.Gap != 0 {
			t.Fatal("continuous attack emitted an idle gap")
		}
		seen[x.Addr] = true
	}
	if want := 2 * DefaultEvictRows; len(seen) != want {
		t.Errorf("stream touched %d distinct addresses, want %d", len(seen), want)
	}
}

// TestAttackStreamEvictionOrder pins the LRU-defeating property: within
// any window of EvictRows consecutive visits to one class, all rows are
// distinct, so an 8-way LRU set never retains a line long enough to hit.
func TestAttackStreamEvictionOrder(t *testing.T) {
	org := dram.DefaultOrg()
	for _, sequential := range []bool{false, true} {
		spec := attackBaseSpec()
		spec.Sequential = sequential
		a, err := NewAttack(spec, org)
		if err != nil {
			t.Fatal(err)
		}
		s := a.Stream(0)
		var perClass [2][]uint64
		for i := 0; i < 4*2*DefaultEvictRows; i++ {
			addr := s.Next().Addr
			for ci := range a.addr {
				for _, ca := range a.addr[ci] {
					if ca == addr {
						perClass[ci] = append(perClass[ci], addr)
					}
				}
			}
		}
		for ci, visits := range perClass {
			for i := 0; i+DefaultEvictRows <= len(visits); i++ {
				win := map[uint64]bool{}
				for _, v := range visits[i : i+DefaultEvictRows] {
					win[v] = true
				}
				if len(win) != DefaultEvictRows {
					t.Fatalf("sequential=%t class %d: window at %d revisits a row before eviction", sequential, ci, i)
				}
			}
		}
	}
}

func TestAttackDutyCycleAndDecoys(t *testing.T) {
	org := dram.DefaultOrg()
	spec := attackBaseSpec()
	spec.BurstAccesses = 10
	spec.IdleGap = 500
	spec.Decoys = 3
	a, err := NewAttack(spec, org)
	if err != nil {
		t.Fatal(err)
	}
	hammer := map[uint64]bool{}
	for _, class := range a.addr {
		for _, addr := range class {
			hammer[addr] = true
		}
	}
	s := a.Stream(0)
	gaps, decoys := 0, 0
	const n = 1000
	for i := 0; i < n; i++ {
		acc := s.Next()
		if acc.Gap > 0 {
			if acc.Gap != 500 {
				t.Fatalf("gap %d, want 500", acc.Gap)
			}
			gaps++
		}
		if !hammer[acc.Addr] {
			decoys++
		}
	}
	if want := n / 10; gaps != want {
		t.Errorf("%d idle gaps in %d accesses, want %d (every 10th)", gaps, n, want)
	}
	// One decoy per full hammer round of 2*EvictRows+1 accesses.
	if want := n / (2*DefaultEvictRows + 1); decoys < want-1 || decoys > want+1 {
		t.Errorf("%d decoy accesses, want ~%d", decoys, want)
	}
}

// TestAttackKeyDistinguishesEveryParameter: the aliasing guarantee — any
// parameter or organization change yields a distinct content key.
func TestAttackKeyDistinguishesEveryParameter(t *testing.T) {
	org := dram.DefaultOrg()
	base, err := NewAttack(attackBaseSpec(), org)
	if err != nil {
		t.Fatal(err)
	}
	perturb := []func(*AttackSpec, *dram.Org){
		func(s *AttackSpec, _ *dram.Org) { s.Kind = AttackSingle },
		func(s *AttackSpec, _ *dram.Org) { s.Bank = 3 },
		func(s *AttackSpec, _ *dram.Org) { s.VictimRow = 257 },
		func(s *AttackSpec, _ *dram.Org) { s.EvictRows = 10 },
		func(s *AttackSpec, _ *dram.Org) { s.BurstAccesses = 64; s.IdleGap = 100 },
		func(s *AttackSpec, _ *dram.Org) { s.Decoys = 2 },
		func(s *AttackSpec, _ *dram.Org) { s.Sequential = true },
		func(_ *AttackSpec, o *dram.Org) { o.Channels = 2 },
		func(_ *AttackSpec, o *dram.Org) { o.RanksPerChannel = 2 },
	}
	seen := map[string]int{base.Key(): -1}
	for i, f := range perturb {
		spec, o := attackBaseSpec(), dram.DefaultOrg()
		f(&spec, &o)
		a, err := NewAttack(spec, o)
		if err != nil {
			t.Fatalf("perturbation %d: %v", i, err)
		}
		if prev, dup := seen[a.Key()]; dup {
			t.Errorf("perturbation %d aliases %d: key %q", i, prev, a.Key())
		}
		seen[a.Key()] = i
	}
}

func TestAttackSpecValidate(t *testing.T) {
	org := dram.DefaultOrg()
	if err := attackBaseSpec().Validate(org); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
	bad := []AttackSpec{
		{Kind: "triple", VictimRow: 256},
		{Kind: AttackMany, VictimRow: 256, Aggressors: 2},
		{Kind: AttackDouble, VictimRow: 256, Channel: 9},
		{Kind: AttackDouble, VictimRow: 256, Rank: 5},
		{Kind: AttackDouble, VictimRow: 256, Bank: 99},
		{Kind: AttackDouble, VictimRow: 256, EvictRows: 65},
		{Kind: AttackDouble, VictimRow: 256, IdleGap: 10},
		{Kind: AttackDouble, VictimRow: 256, Decoys: -1},
		{Kind: AttackDouble, VictimRow: 0},       // class escapes below row 0
		{Kind: AttackDouble, VictimRow: 1 << 30}, // class escapes above
	}
	for i, s := range bad {
		if err := s.Validate(org); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}
