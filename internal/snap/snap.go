// Package snap is the binary codec beneath the simulator's checkpoint
// format: a compact append-only Writer and a bounds-checked, sticky-error
// Reader that every stateful layer (sched, core, cache, cpu, workload,
// sim) uses to serialize its mutable state deterministically.
//
// Encoding rules: booleans are one byte; unsigned integers, counters and
// times are uvarint/varint (snapshots are dominated by large slices of
// small values, so varints roughly halve them); floats are IEEE-754 bits;
// strings and byte slices are length-prefixed. There is no reflection and
// no per-field tagging — a snapshot is a fixed field sequence versioned
// as a whole by the composing layer's magic string, and any structural
// change bumps that version.
//
// The Reader is designed for hostile inputs: every read is bounds-checked
// against the remaining input, errors are sticky (after the first failure
// every getter returns zero and Err reports the cause), and collection
// lengths are validated against the bytes that remain, so a corrupt
// length prefix can never balloon an allocation past the input size.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer serializes values into a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// NewWriterSize returns an empty writer with capacity for a sizeHint-byte
// encoding, so callers that know their snapshot's rough size skip the
// geometric growth copies (megabyte snapshots otherwise reallocate
// several times per encode).
func NewWriterSize(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Bool writes a one-byte boolean.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U64 writes an unsigned integer as a uvarint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 writes a signed integer as a zigzag varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int writes an int as a zigzag varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Len writes a collection length.
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// U64s bulk-writes vals as fixed-width little-endian words (no length
// prefix — the reader knows the count structurally). Fixed width trades
// ~2x the bytes of varints for an order of magnitude less encode time,
// which matters for the megaword slices (cache tags, LRU stamps) that
// dominate snapshots taken every few thousand simulated ticks.
func (w *Writer) U64s(vals []uint64) {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, 8*len(vals))...)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(w.buf[off+8*i:], v)
	}
}

// Bools bulk-writes vals packed eight per byte (no length prefix).
func (w *Writer) Bools(vals []bool) {
	off := len(w.buf)
	w.buf = append(w.buf, make([]byte, (len(vals)+7)/8)...)
	for i, v := range vals {
		if v {
			w.buf[off+i/8] |= 1 << (i % 8)
		}
	}
}

// Reader decodes a Writer's buffer with sticky error handling: after the
// first failure every getter returns the zero value and Err reports what
// went wrong, so decode sequences need a single error check at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Failf records a decode error (also usable by callers for semantic
// validation failures, so they surface through the same sticky channel).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Done errors unless the input is fully consumed.
func (r *Reader) Done() {
	if r.err == nil && r.off != len(r.data) {
		r.Failf("%d trailing bytes", len(r.data)-r.off)
	}
}

// Raw reads n bytes verbatim (a view into the input, not a copy).
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.Failf("truncated: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Bool reads a one-byte boolean (any nonzero byte beyond 1 is corruption).
func (r *Reader) Bool() bool {
	b := r.U8()
	if b > 1 {
		r.Failf("bad boolean byte %#x", b)
		return false
	}
	return b == 1
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.Failf("truncated")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// U64 reads a uvarint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.Failf("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// I64 reads a zigzag varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.Failf("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads an int-sized zigzag varint.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.Failf("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.Failf("truncated float")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// String reads a length-prefixed string; the length is validated against
// the remaining input.
func (r *Reader) String() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.Failf("string length %d exceeds %d remaining bytes", n, r.Remaining())
		return ""
	}
	return string(r.Raw(int(n)))
}

// U64s bulk-reads len(dst) fixed-width little-endian words written by
// Writer.U64s.
func (r *Reader) U64s(dst []uint64) {
	b := r.Raw(8 * len(dst))
	if r.err != nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// Bools bulk-reads len(dst) packed booleans written by Writer.Bools.
func (r *Reader) Bools(dst []bool) {
	b := r.Raw((len(dst) + 7) / 8)
	if r.err != nil {
		return
	}
	for i := range dst {
		dst[i] = b[i/8]&(1<<(i%8)) != 0
	}
}

// Len reads a collection length and validates it: at most max elements
// (pass a structural bound, or math.MaxInt for "any"), and — since every
// element costs at least minElemBytes on the wire — small enough to fit
// in the remaining input. This makes allocation proportional to the
// input, never to a corrupt length prefix.
func (r *Reader) Len(max, minElemBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(max) || n > uint64(r.Remaining()/minElemBytes) {
		r.Failf("collection length %d exceeds bound %d (or %d remaining bytes)",
			n, max, r.Remaining())
		return 0
	}
	return int(n)
}
