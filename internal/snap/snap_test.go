package snap

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Bool(true)
	w.Bool(false)
	w.U8(0xAB)
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-12345)
	w.Int(-1)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.String("hello")
	w.String("")
	w.Len(3)
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if !r.Bool() || r.Bool() {
		t.Fatal("bools diverged")
	}
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -12345 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Int(); got != -1 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Len(10, 1); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	if got := r.Raw(3); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Raw = %v", got)
	}
	r.Done()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader([]byte{0x02}) // invalid boolean
	if r.Bool() {
		t.Fatal("corrupt bool decoded true")
	}
	if r.Err() == nil {
		t.Fatal("no error for bad boolean")
	}
	// Every subsequent read returns zero without panicking.
	if r.U64() != 0 || r.I64() != 0 || r.F64() != 0 || r.String() != "" {
		t.Fatal("reads after error returned nonzero")
	}
}

func TestLenBounds(t *testing.T) {
	w := NewWriter()
	w.Len(1 << 40) // a lying length prefix
	r := NewReader(w.Bytes())
	if got := r.Len(math.MaxInt, 8); got != 0 || r.Err() == nil {
		t.Fatalf("oversized length accepted: %d, err %v", got, r.Err())
	}

	w = NewWriter()
	w.Len(5)
	r = NewReader(w.Bytes())
	if got := r.Len(4, 1); got != 0 || r.Err() == nil {
		t.Fatalf("length over structural max accepted: %d", got)
	}
	if !strings.Contains(r.Err().Error(), "length") {
		t.Fatalf("unexpected error %v", r.Err())
	}
}

func TestTrailing(t *testing.T) {
	w := NewWriter()
	w.U64(7)
	w.U8(0)
	r := NewReader(w.Bytes())
	r.U64()
	r.Done()
	if r.Err() == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestTruncated(t *testing.T) {
	w := NewWriter()
	w.String("abcdef")
	data := w.Bytes()
	r := NewReader(data[:3])
	if got := r.String(); got != "" || r.Err() == nil {
		t.Fatalf("truncated string decoded %q", got)
	}
}
