package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestOSWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "cell.json")
	if err := OS.WriteFileAtomic(SiteStoreWrite, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := OS.ReadFile(SiteStoreRead, path); string(got) != "v1" {
		t.Fatalf("read back %q", got)
	}
	if err := OS.WriteFileAtomic(SiteStoreWrite, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := OS.ReadFile(SiteStoreRead, path); string(got) != "v2" {
		t.Fatalf("overwrite read back %q", got)
	}
	// No temp files survive a successful write.
	entries, err := os.ReadDir(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("orphan temp file %s after successful write", e.Name())
		}
	}
}

func TestInjectorWriteKinds(t *testing.T) {
	for _, kind := range []Kind{ENOSPC, EIO, Torn} {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			in, err := NewInjector(1, Rule{Site: SiteStoreWrite, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "cell.json")
			werr := in.WriteFileAtomic(SiteStoreWrite, path, []byte("payload"))
			if !errors.Is(werr, ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", werr)
			}
			if !strings.Contains(werr.Error(), string(SiteStoreWrite)) {
				t.Errorf("error %q does not name the site", werr)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("destination exists after injected %s", kind)
			}
			entries, _ := os.ReadDir(dir)
			orphans := 0
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					orphans++
				}
			}
			if kind == Torn && orphans != 1 {
				t.Errorf("torn write left %d temp orphans, want 1", orphans)
			}
			if kind != Torn && orphans != 0 {
				t.Errorf("%s left %d temp orphans, want 0", kind, orphans)
			}
			if got := in.Fired(SiteStoreWrite); got != 1 {
				t.Errorf("Fired = %d, want 1", got)
			}
			// Unrelated sites are untouched.
			if err := in.WriteFileAtomic(SiteSnapWrite, filepath.Join(dir, "s.snap"), []byte("x")); err != nil {
				t.Errorf("unarmed site failed: %v", err)
			}
		})
	}
}

func TestInjectorReadKinds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.json")
	orig := []byte("a perfectly intact payload")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	in, err := NewInjector(7, Rule{Site: SiteStoreRead, Kind: EIO, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := in.ReadFile(SiteStoreRead, path); !errors.Is(rerr, ErrInjected) {
		t.Fatalf("EIO read err = %v", rerr)
	}
	// Count exhausted: subsequent reads pass through.
	if got, rerr := in.ReadFile(SiteStoreRead, path); rerr != nil || string(got) != string(orig) {
		t.Fatalf("post-count read = %q, %v", got, rerr)
	}

	cin, err := NewInjector(7, Rule{Site: SiteStoreRead, Kind: Corrupt})
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := cin.ReadFile(SiteStoreRead, path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) == string(orig) {
		t.Fatal("corrupt read returned intact payload")
	}
	// The file itself is never damaged.
	if disk, _ := os.ReadFile(path); string(disk) != string(orig) {
		t.Fatal("corrupt read damaged the on-disk file")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in, err := NewInjector(42, Rule{Site: SiteSnapWrite, Kind: ENOSPC, Prob: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		out := make([]bool, 64)
		for i := range out {
			err := in.WriteFileAtomic(SiteSnapWrite, filepath.Join(dir, "f"), []byte("x"))
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times", fired, len(a))
	}
}

func TestInjectorAfter(t *testing.T) {
	in, err := NewInjector(1, Rule{Site: SiteJournalWrite, Kind: EIO, After: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	for i := 0; i < 2; i++ {
		if err := in.WriteFileAtomic(SiteJournalWrite, path, []byte("x")); err != nil {
			t.Fatalf("op %d failed before After: %v", i, err)
		}
	}
	if err := in.WriteFileAtomic(SiteJournalWrite, path, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op after After = %v, want ErrInjected", err)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("store.write:enospc, snap.read:corrupt:0.5, journal.write:torn:1:3", 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.rules); got != 3 {
		t.Fatalf("parsed %d rules", got)
	}
	if in.rules[1].Prob != 0.5 || in.rules[2].Count != 3 || in.rules[2].Prob != 1 {
		t.Fatalf("rules mis-parsed: %+v %+v", in.rules[1], in.rules[2])
	}
	if in, err := Parse("", 0); in != nil || err != nil {
		t.Fatalf("empty spec = %v, %v", in, err)
	}
	for _, bad := range []string{
		"store.write",               // missing kind
		"nowhere:eio",               // unknown site
		"store.read:torn",           // torn is write-only
		"store.write:corrupt",       // corrupt is read-only
		"store.write:enospc:2",      // probability out of range
		"store.write:enospc:0.5:-1", // negative count
	} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestInjectorCallbacksAndChtimes(t *testing.T) {
	in, err := NewInjector(3, Rule{Site: SiteSnapEvict, Kind: EIO})
	if err != nil {
		t.Fatal(err)
	}
	var sawSite Site
	var sawKind Kind
	in.OnFault = func(s Site, k Kind) { sawSite, sawKind = s, k }
	if err := in.Remove(SiteSnapEvict, filepath.Join(t.TempDir(), "x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Remove = %v", err)
	}
	if sawSite != SiteSnapEvict || sawKind != EIO {
		t.Fatalf("OnFault saw (%s, %s)", sawSite, sawKind)
	}
	if in.FiredTotal() != 1 {
		t.Fatalf("FiredTotal = %d", in.FiredTotal())
	}
	// Chtimes never faults.
	path := filepath.Join(t.TempDir(), "f")
	os.WriteFile(path, []byte("x"), 0o644)
	if err := in.Chtimes(SiteSnapRead, path, time.Now()); err != nil {
		t.Fatal(err)
	}
}
