// Package fault is the failpoint seam the durable layers (the engine's
// result store, the checkpoint store, the service's job journal) write
// through. In production the seam is a zero-cost passthrough to the os
// package; under test (or a chaos run of a real server) an Injector
// deterministically fails named sites with the storage failures that
// actually happen in the field — full disks, I/O errors, torn writes
// where the process dies between the temp-file write and the rename,
// and bit-rotted payloads — so every degradation contract the stores
// claim can be exercised on demand and reproduced from a seed.
//
// The seam is deliberately narrow: the stores share one crash-safety
// idiom (read whole file, write whole file via temp + rename, remove,
// touch), so FS exposes exactly those four operations, each tagged with
// the Site it serves. An Injector consults its rules per call; a site
// with no armed rule costs one map-free slice scan.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one injection point: a (layer, operation) pair the durable
// stores tag their filesystem calls with. Sites are a closed set so
// operators can pre-register one fault counter per site.
type Site string

const (
	// SiteStoreRead and SiteStoreWrite are the engine result store's
	// cell loads and atomic cell persists.
	SiteStoreRead  Site = "store.read"
	SiteStoreWrite Site = "store.write"
	// SiteSnapRead, SiteSnapWrite, and SiteSnapEvict are the checkpoint
	// store's payload loads, atomic checkpoint persists, and eviction
	// unlinks.
	SiteSnapRead  Site = "snap.read"
	SiteSnapWrite Site = "snap.write"
	SiteSnapEvict Site = "snap.evict"
	// SiteJournalWrite is the job journal's atomic rewrite.
	SiteJournalWrite Site = "journal.write"
)

// Sites returns every defined injection site, in stable order.
func Sites() []Site {
	return []Site{SiteStoreRead, SiteStoreWrite, SiteSnapRead, SiteSnapWrite, SiteSnapEvict, SiteJournalWrite}
}

// Kind is one failure mode an Injector can arm at a site.
type Kind string

const (
	// ENOSPC fails a write before any bytes reach disk, like a full
	// filesystem.
	ENOSPC Kind = "enospc"
	// EIO fails a read or write with a generic I/O error.
	EIO Kind = "eio"
	// Torn simulates a crash between the temp-file write and the
	// rename: the temp file is written and orphaned, the destination is
	// never updated, and the operation reports failure.
	Torn Kind = "torn"
	// Corrupt lets a read succeed but flips bytes in the payload, like
	// on-disk rot or a truncated sector, exercising the consumer's
	// validation path.
	Corrupt Kind = "corrupt"
)

// ErrInjected is wrapped by every injected failure, so tests and error
// chains can tell a synthetic fault from a real one with errors.Is.
var ErrInjected = errors.New("injected fault")

// FS is the filesystem seam. Implementations must be safe for
// concurrent use. OS is the production passthrough; an Injector is the
// chaos one. A nil FS is not usable — callers default to OS.
type FS interface {
	// ReadFile reads the file at path.
	ReadFile(site Site, path string) ([]byte, error)
	// WriteFileAtomic durably replaces path with data: it creates the
	// parent directory if needed, writes a temp file beside the
	// destination, and renames it into place, so a crash at any instant
	// leaves the old file, the new file, or an ignorable *.tmp orphan —
	// never a truncated one.
	WriteFileAtomic(site Site, path string, data []byte) error
	// Remove unlinks path.
	Remove(site Site, path string) error
	// Chtimes sets path's access and modification times (best-effort
	// recency bookkeeping; callers ignore the error).
	Chtimes(site Site, path string, t time.Time) error
}

// OS is the production FS: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(_ Site, path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) WriteFileAtomic(_ Site, path string, data []byte) error {
	return writeFileAtomic(path, data, false)
}

func (osFS) Remove(_ Site, path string) error { return os.Remove(path) }

func (osFS) Chtimes(_ Site, path string, t time.Time) error { return os.Chtimes(path, t, t) }

// writeFileAtomic is the shared temp+rename idiom. torn stops after the
// temp write — the orphaned *.tmp and missing rename are exactly the
// on-disk state a crash at that instant leaves.
func writeFileAtomic(path string, data []byte, torn bool) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "w-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if torn {
		return nil // crash: the temp file survives, the rename never runs
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Rule arms one failure mode at one site.
type Rule struct {
	Site Site
	Kind Kind
	// Prob is the per-operation firing probability in (0, 1]; 0 means
	// fire on every matching operation.
	Prob float64
	// After skips the first After matching operations before the rule
	// can fire (deterministic "fail the Nth write" scheduling).
	After int
	// Count bounds how many times the rule fires; 0 is unlimited.
	Count int
}

func (r Rule) validate() error {
	switch r.Site {
	case SiteStoreRead, SiteStoreWrite, SiteSnapRead, SiteSnapWrite, SiteSnapEvict, SiteJournalWrite:
	default:
		return fmt.Errorf("fault: unknown site %q", r.Site)
	}
	switch r.Kind {
	case ENOSPC, EIO, Torn, Corrupt:
	default:
		return fmt.Errorf("fault: unknown kind %q", r.Kind)
	}
	if r.Kind == Corrupt && !siteReads(r.Site) {
		return fmt.Errorf("fault: %s only applies to read sites, not %s", r.Kind, r.Site)
	}
	if (r.Kind == Torn || r.Kind == ENOSPC) && siteReads(r.Site) {
		return fmt.Errorf("fault: %s only applies to write sites, not %s", r.Kind, r.Site)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: probability %g outside [0, 1]", r.Prob)
	}
	if r.After < 0 || r.Count < 0 {
		return fmt.Errorf("fault: negative after/count")
	}
	return nil
}

func siteReads(s Site) bool { return s == SiteStoreRead || s == SiteSnapRead }

// armedRule is a Rule plus its firing state.
type armedRule struct {
	Rule
	seen  int // matching operations observed
	fired int // times this rule fired
}

// Injector is an FS that deterministically injects the armed rules'
// failures, driven by a seeded RNG so a chaos run replays exactly from
// (seed, rules) under serial execution — and statistically under
// concurrency. The zero value is not usable; construct with NewInjector.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*armedRule
	fired map[Site]uint64
	// OnFault, when non-nil, observes every injected fault (telemetry
	// wiring). Called without the injector's lock held.
	OnFault func(site Site, kind Kind)
}

// NewInjector builds an injector over the OS filesystem. Invalid rules
// error rather than silently never firing.
func NewInjector(seed uint64, rules ...Rule) (*Injector, error) {
	in := &Injector{
		rng:   rand.New(rand.NewSource(int64(seed))),
		fired: make(map[Site]uint64, len(Sites())),
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		rr := r
		in.rules = append(in.rules, &armedRule{Rule: rr})
	}
	return in, nil
}

// Parse builds an injector from a comma-separated spec of
// site:kind[:prob[:count]] rules — the -faults / HIRA_FAULTS knob. An
// empty spec returns (nil, nil): no injection.
//
//	store.write:enospc            every result-store write fails with ENOSPC
//	snap.read:corrupt:0.5         half of checkpoint reads are corrupted
//	journal.write:torn:1:3        the first 3 journal rewrites tear
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("fault: bad rule %q (want site:kind[:prob[:count]])", part)
		}
		r := Rule{Site: Site(fields[0]), Kind: Kind(fields[1])}
		if len(fields) >= 3 {
			p, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad probability in %q: %v", part, err)
			}
			r.Prob = p
		}
		if len(fields) == 4 {
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("fault: bad count in %q: %v", part, err)
			}
			r.Count = n
		}
		rules = append(rules, r)
	}
	return NewInjector(seed, rules...)
}

// Fired reports how many faults have been injected at site.
func (in *Injector) Fired(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// FiredTotal reports how many faults have been injected across all
// sites.
func (in *Injector) FiredTotal() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// hit decides whether an operation at site fails, and with which kind.
// Rules are consulted in order; the first that fires wins.
func (in *Injector) hit(site Site, applicable func(Kind) bool) (Kind, bool) {
	in.mu.Lock()
	for _, r := range in.rules {
		if r.Site != site || !applicable(r.Kind) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.fired[site]++
		kind := r.Kind
		onFault := in.OnFault
		in.mu.Unlock()
		if onFault != nil {
			onFault(site, kind)
		}
		return kind, true
	}
	in.mu.Unlock()
	return "", false
}

// injectedErr builds the attributable error every injected failure
// returns.
func injectedErr(kind Kind, site Site) error {
	var what string
	switch kind {
	case ENOSPC:
		what = "no space left on device"
	case EIO:
		what = "input/output error"
	case Torn:
		what = "crash before rename (torn write)"
	case Corrupt:
		what = "corrupted payload"
	}
	return fmt.Errorf("%w: %s at %s", ErrInjected, what, site)
}

func isWriteKind(k Kind) bool { return k == ENOSPC || k == EIO || k == Torn }

// ReadFile implements FS: EIO fails the read outright; Corrupt serves
// the real bytes with deterministic damage.
func (in *Injector) ReadFile(site Site, path string) ([]byte, error) {
	kind, ok := in.hit(site, func(k Kind) bool { return k == EIO || k == Corrupt })
	if ok && kind == EIO {
		return nil, injectedErr(EIO, site)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if ok && kind == Corrupt {
		data = in.corrupt(data)
	}
	return data, nil
}

// corrupt damages data in place: a byte flip mid-payload plus a
// truncating length cut half the time, driven by the seeded RNG.
func (in *Injector) corrupt(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	in.mu.Lock()
	i := in.rng.Intn(len(data))
	trunc := in.rng.Intn(2) == 0
	in.mu.Unlock()
	data[i] ^= 0xA5
	if trunc && i > 0 {
		data = data[:i]
	}
	return data
}

// WriteFileAtomic implements FS: ENOSPC/EIO fail before any bytes land;
// Torn writes the temp file, orphans it, and reports failure — the
// crash-between-write-and-rename state.
func (in *Injector) WriteFileAtomic(site Site, path string, data []byte) error {
	kind, ok := in.hit(site, isWriteKind)
	if !ok {
		return writeFileAtomic(path, data, false)
	}
	if kind == Torn {
		writeFileAtomic(path, data, true) // best-effort: leave the orphan
	}
	return injectedErr(kind, site)
}

// Remove implements FS; EIO is the only applicable failure.
func (in *Injector) Remove(site Site, path string) error {
	if _, ok := in.hit(site, func(k Kind) bool { return k == EIO }); ok {
		return injectedErr(EIO, site)
	}
	return os.Remove(path)
}

// Chtimes implements FS. Recency touches are best-effort bookkeeping;
// faulting them proves nothing, so the injector passes through.
func (in *Injector) Chtimes(_ Site, path string, t time.Time) error {
	return os.Chtimes(path, t, t)
}
