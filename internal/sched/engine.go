package sched

import "hira/internal/dram"

// NoRefresh is the ideal "No Refresh" configuration of Fig. 9a: the
// controller performs no refresh work at all. It is an upper bound on
// performance, not a correct DRAM controller.
type NoRefresh struct{}

// Tick implements RefreshEngine.
func (NoRefresh) Tick(dram.Time) {}

// Mandatory implements RefreshEngine.
func (NoRefresh) Mandatory(int, dram.Time) []Op { return nil }

// Piggyback implements RefreshEngine.
func (NoRefresh) Piggyback(dram.Location, dram.Time) (int, bool, bool) { return 0, false, false }

// NoteActivate implements RefreshEngine.
func (NoRefresh) NoteActivate(dram.Location, bool, dram.Time) {}

// NoteRefreshed implements RefreshEngine.
func (NoRefresh) NoteRefreshed(Op, int, dram.Time) {}

// NextEvent implements RefreshEngine: nothing ever becomes due.
func (NoRefresh) NextEvent(dram.Time) dram.Time { return dram.MaxTime() }

// BaselineREF is the conventional refresh policy (§7's baseline): every
// tREFI, each rank receives an all-bank REF that blocks it for tRFC.
// Ranks are staggered by tREFI / ranks to avoid refreshing every rank at
// once.
type BaselineREF struct {
	org     dram.Org
	t       dram.Timing
	nextAt  [][]dram.Time // [channel][rank]
	scratch []Op
}

// NewBaselineREF returns the conventional engine.
func NewBaselineREF(org dram.Org, t dram.Timing) *BaselineREF {
	b := &BaselineREF{org: org, t: t}
	b.nextAt = make([][]dram.Time, org.Channels)
	for ch := range b.nextAt {
		b.nextAt[ch] = make([]dram.Time, org.RanksPerChannel)
		for rk := range b.nextAt[ch] {
			b.nextAt[ch][rk] = t.TREFI * dram.Time(rk+1) / dram.Time(org.RanksPerChannel)
		}
	}
	return b
}

// Tick implements RefreshEngine.
func (b *BaselineREF) Tick(dram.Time) {}

// Mandatory implements RefreshEngine.
func (b *BaselineREF) Mandatory(channel int, now dram.Time) []Op {
	b.scratch = b.scratch[:0]
	for rk, at := range b.nextAt[channel] {
		if now >= at {
			b.scratch = append(b.scratch, Op{Kind: OpRankREF, Rank: rk})
		}
	}
	return b.scratch
}

// Piggyback implements RefreshEngine.
func (b *BaselineREF) Piggyback(dram.Location, dram.Time) (int, bool, bool) { return 0, false, false }

// NoteActivate implements RefreshEngine.
func (b *BaselineREF) NoteActivate(dram.Location, bool, dram.Time) {}

// NoteRefreshed implements RefreshEngine.
func (b *BaselineREF) NoteRefreshed(op Op, channel int, now dram.Time) {
	if op.Kind == OpRankREF {
		b.nextAt[channel][op.Rank] += b.t.TREFI
		if b.nextAt[channel][op.Rank] < now {
			// Never let the schedule fall behind by more than one
			// interval under heavy contention.
			b.nextAt[channel][op.Rank] = now + b.t.TREFI
		}
	}
}

// NextEvent implements RefreshEngine: the next strictly-future REF due
// time across all channels and ranks. An already-due REF (waiting on its
// drain or a busy rank) must not mask other ranks' future due times —
// the controller tracks the resources gating it.
func (b *BaselineREF) NextEvent(now dram.Time) dram.Time {
	next := dram.MaxTime()
	for _, ranks := range b.nextAt {
		for _, at := range ranks {
			if at > now && at < next {
				next = at
			}
		}
	}
	return next
}
