package sched_test

// Tests for the RowHammer forensics ledger: exact per-row activation
// accounting on a hand-built hammering schedule, useful-vs-wasted
// attribution of preventive refreshes under PARA and PARA+HiRA, and the
// differential proof that enabling forensics leaves the command stream
// and Stats bit-identical.

import (
	"testing"

	"hira/internal/core"
	"hira/internal/dram"
	"hira/internal/sched"
)

// fxHarness drives a controller one request at a time, so FR-FCFS cannot
// reorder the schedule: each activation lands exactly where the test
// placed it.
type fxHarness struct {
	t    *testing.T
	c    *sched.Controller
	tok  uint64
	done map[uint64]bool
}

func newFxHarness(t *testing.T, org dram.Org, tm dram.Timing, engine sched.RefreshEngine, cfg sched.ForensicsConfig) *fxHarness {
	t.Helper()
	c, err := sched.NewController(sched.Config{Org: org, Timing: tm}, engine)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableForensics(cfg)
	h := &fxHarness{t: t, c: c, done: map[uint64]bool{}}
	c.OnComplete = func(core int, token uint64, at dram.Time) { h.done[token] = true }
	return h
}

// readWait enqueues one read and ticks until it completes, so the next
// read is guaranteed to arrive at an empty queue.
func (h *fxHarness) readWait(loc dram.Location) {
	h.t.Helper()
	h.tok++
	if !h.c.Enqueue(sched.Request{Loc: loc, Core: 0, Token: h.tok}) {
		h.t.Fatal("enqueue failed")
	}
	for i := 0; i < 20000; i++ {
		if h.done[h.tok] {
			return
		}
		h.c.Tick()
	}
	h.t.Fatalf("request %d never completed", h.tok)
}

// TestForensicsLedgerHammering hand-builds a hammering schedule with known
// per-row activation counts and asserts the ledger's exact values: demand
// ACT totals, per-bank maxima, threshold-crossing tallies, and the flight
// recorder firing on the top threshold. NoRefresh means nothing ever
// resets a count, so every number is computable by hand.
func TestForensicsLedgerHammering(t *testing.T) {
	org := smallOrgX()
	tm := dram.DDR4_2400(8)
	h := newFxHarness(t, org, tm, sched.NoRefresh{}, sched.ForensicsConfig{
		Thresholds:   []uint32{4, 8},
		HotThreshold: 4,
		Recorder:     true,
	})

	// Bank 0: alternate rows 5 and 9. Every read conflicts with the open
	// row, so each is exactly one ACT: 10 per row.
	bank0 := dram.BankID{Channel: 0, Rank: 0, Bank: 0}
	for i := 0; i < 10; i++ {
		h.readWait(dram.Location{BankID: bank0, Row: 5})
		h.readWait(dram.Location{BankID: bank0, Row: 9})
	}
	// Bank 1: alternate rows 3 and 7, three ACTs each — below the first
	// threshold, so it contributes activations but no crossings.
	bank1 := dram.BankID{Channel: 0, Rank: 0, Bank: 1}
	for i := 0; i < 3; i++ {
		h.readWait(dram.Location{BankID: bank1, Row: 3})
		h.readWait(dram.Location{BankID: bank1, Row: 7})
	}

	rep, ok := h.c.ForensicsReport()
	if !ok {
		t.Fatal("forensics report missing")
	}
	tl := rep.Tally
	if tl.DemandACTs != 26 {
		t.Errorf("DemandACTs = %d, want 26 (20 in bank 0 + 6 in bank 1)", tl.DemandACTs)
	}
	if tl.RefreshACTs != 0 || tl.RowsReset != 0 || tl.REFRowsReset != 0 {
		t.Errorf("refresh tallies nonzero under NoRefresh: %+v", tl)
	}
	if rep.MaxInterrefACTs != 10 {
		t.Errorf("MaxInterrefACTs = %d, want 10", rep.MaxInterrefACTs)
	}
	if rep.BankMax[0] != 10 {
		t.Errorf("BankMax[0] = %d, want 10", rep.BankMax[0])
	}
	if rep.BankMax[1] != 3 {
		t.Errorf("BankMax[1] = %d, want 3", rep.BankMax[1])
	}
	for i, m := range rep.BankMax[2:] {
		if m != 0 {
			t.Errorf("BankMax[%d] = %d, want 0 (bank never touched)", i+2, m)
		}
	}
	// Rows 5 and 9 each cross 4 once (on their 4th ACT) and 8 once (on
	// their 8th); rows 3 and 7 stop at 3 and cross nothing.
	if tl.Crossings[0] != 2 || tl.Crossings[1] != 2 {
		t.Errorf("Crossings = %v, want [2 2 0 0]", tl.Crossings)
	}
	if tl.PreventiveUseful != 0 || tl.PreventiveWasted != 0 || tl.PeriodicRowRefreshes != 0 {
		t.Errorf("mitigation tallies nonzero with no refresh engine: %+v", tl)
	}
	// Two top-threshold crossings fired the flight recorder; the log must
	// contain the hammering commands around them.
	if len(rep.Events) == 0 {
		t.Fatal("flight recorder captured no events despite top-threshold crossings")
	}
	acts := 0
	for _, e := range rep.Events {
		if e.Kind == "ACT" && e.Bank == 0 && (e.Row == 5 || e.Row == 9) {
			acts++
		}
	}
	if acts == 0 {
		t.Errorf("no hammering ACTs in the %d recorded events", len(rep.Events))
	}
}

// smallOrgX mirrors sched_test.smallOrg for this external test package.
func smallOrgX() dram.Org {
	o := dram.DefaultOrg()
	o.SubarraysPerBank = 8
	o.RowsPerSubarray = 16 // 128 rows per bank
	return o
}

// fxPARAEngine builds a PARA refresh engine (optionally with HiRA
// preventive parallelization) for the attribution tests.
func fxPARAEngine(t *testing.T, org dram.Org, tm dram.Timing, hira bool) sched.RefreshEngine {
	t.Helper()
	cfg := core.Config{
		Org: org, Timing: tm,
		Periodic: core.PeriodicREF, Preventive: core.PreventiveImmediate,
		Pth: 0.5, Seed: 42,
	}
	if hira {
		cfg.Preventive = core.PreventiveHiRA
		cfg.SPT = core.NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	}
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hammerFar drives n alternating activations each onto two rows far from
// the REF rotation pointer, so rank REFs never reset the aggressors'
// counts during the run and the attribution is exactly predictable.
func hammerFar(h *fxHarness, n int) {
	bank := dram.BankID{Channel: 0, Rank: 0, Bank: 0}
	for i := 0; i < n; i++ {
		h.readWait(dram.Location{BankID: bank, Row: 50})
		h.readWait(dram.Location{BankID: bank, Row: 54})
	}
}

// TestForensicsPreventiveAttribution checks useful-vs-wasted attribution
// for PARA and PARA+HiRA. With HotThreshold=1 every preventive refresh is
// triggered by an aggressor whose count is still nonzero at refresh time
// (the aggressors sit far from the REF rotation), so the wasted count
// must be exactly zero; with an unreachable HotThreshold the same
// schedule must classify every preventive refresh as wasted. Both runs
// must satisfy the accounting identity against the scheduler's own
// refresh statistics.
func TestForensicsPreventiveAttribution(t *testing.T) {
	org := smallOrgX()
	tm := dram.DDR4_2400(8)
	for _, tc := range []struct {
		name string
		hira bool
		hot  uint32
	}{
		{"PARA/hot", false, 1},
		{"PARA/cold", false, 1 << 30},
		{"PARA+HiRA/hot", true, 1},
		{"PARA+HiRA/cold", true, 1 << 30},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := newFxHarness(t, org, tm, fxPARAEngine(t, org, tm, tc.hira), sched.ForensicsConfig{
				Thresholds:   []uint32{16, 64},
				HotThreshold: tc.hot,
			})
			hammerFar(h, 150)
			// Let queued preventive refreshes drain to their deadlines.
			for i := 0; i < 50000; i++ {
				h.c.Tick()
			}

			rep, _ := h.c.ForensicsReport()
			tl := rep.Tally
			st := h.c.Stats

			// The identity tying the ledger to the scheduler's counters:
			// every explicit refresh ACT is classified exactly once.
			wantACTs := st.StandaloneRefreshes + 2*st.HiRAPairs + st.HiRAPiggybacks
			if tl.RefreshACTs != wantACTs {
				t.Errorf("RefreshACTs = %d, want standalone+2*pairs+piggybacks = %d", tl.RefreshACTs, wantACTs)
			}
			classified := tl.PreventiveUseful + tl.PreventiveWasted + tl.PeriodicRowRefreshes
			if classified != tl.RefreshACTs {
				t.Errorf("useful+wasted+periodic = %d, want RefreshACTs = %d", classified, tl.RefreshACTs)
			}
			// PeriodicREF does retention via rank REF, not row ACTs, so
			// every classified refresh here is preventive.
			if tl.PeriodicRowRefreshes != 0 {
				t.Errorf("PeriodicRowRefreshes = %d, want 0 under PeriodicREF", tl.PeriodicRowRefreshes)
			}
			if tl.RefreshACTs == 0 {
				t.Fatal("PARA issued no preventive refreshes; the schedule is not driving Pth sampling")
			}
			if tc.hot == 1 && tl.PreventiveWasted != 0 {
				t.Errorf("PreventiveWasted = %d, want 0 (every victim neighbors a live aggressor)", tl.PreventiveWasted)
			}
			if tc.hot != 1 && tl.PreventiveUseful != 0 {
				t.Errorf("PreventiveUseful = %d, want 0 (HotThreshold unreachable)", tl.PreventiveUseful)
			}
			if tc.hira {
				if tl.PiggybackPreventive != st.HiRAPiggybacks {
					t.Errorf("PiggybackPreventive = %d, want HiRAPiggybacks = %d", tl.PiggybackPreventive, st.HiRAPiggybacks)
				}
				if tl.PiggybackPeriodic != 0 {
					t.Errorf("PiggybackPeriodic = %d, want 0 (no periodic row entries)", tl.PiggybackPeriodic)
				}
			} else if tl.PiggybackPreventive != 0 || tl.PiggybackPeriodic != 0 {
				t.Errorf("piggyback tallies nonzero without HiRA: %+v", tl)
			}
		})
	}
}

// TestForensicsDifferential proves the ledger is purely observational:
// for every refresh policy the figures exercise, a controller with
// forensics (and the flight recorder) enabled emits exactly the same
// command stream, enqueue decisions, Stats, and final clock as one
// without.
func TestForensicsDifferential(t *testing.T) {
	org := diffOrg()
	tm := diffTiming()
	ticks := 60000
	if testing.Short() {
		ticks = 20000
	}
	for _, pol := range diffPolicies() {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			run := func(forensics bool) ([]dram.Command, []bool, sched.Stats, dram.Time) {
				c, err := sched.NewController(sched.Config{Org: org, Timing: tm}, pol.mk(t, org, tm))
				if err != nil {
					t.Fatal(err)
				}
				if forensics {
					c.EnableForensics(sched.ForensicsConfig{
						Thresholds:   []uint32{8, 32},
						HotThreshold: 8,
						Recorder:     true,
					})
				}
				cmds, accepts := diffDrive(t, c, org, ticks)
				return cmds, accepts, c.Stats, c.Now()
			}
			offCmds, offAcc, offStats, offNow := run(false)
			onCmds, onAcc, onStats, onNow := run(true)

			if len(offCmds) == 0 {
				t.Fatal("baseline run emitted no commands; the workload is not driving the controller")
			}
			if onNow != offNow {
				t.Fatalf("clocks diverged: off %v on %v", offNow, onNow)
			}
			if len(onCmds) != len(offCmds) {
				t.Fatalf("command counts diverged: off %d on %d", len(offCmds), len(onCmds))
			}
			for i := range offCmds {
				if onCmds[i] != offCmds[i] {
					t.Fatalf("command %d diverged:\noff: %+v\non:  %+v", i, offCmds[i], onCmds[i])
				}
			}
			if len(onAcc) != len(offAcc) {
				t.Fatalf("enqueue counts diverged: off %d on %d", len(offAcc), len(onAcc))
			}
			for i := range offAcc {
				if onAcc[i] != offAcc[i] {
					t.Fatalf("enqueue acceptance %d diverged: off %v on %v", i, offAcc[i], onAcc[i])
				}
			}
			if onStats != offStats {
				t.Fatalf("stats diverged:\noff: %+v\non:  %+v", offStats, onStats)
			}
		})
	}
}

// BenchmarkControllerSteadyStateForensics is BenchmarkControllerSteadyState
// with the activation ledger enabled: the hot path must stay 0 allocs/op
// and within a few percent of the plain controller.
func BenchmarkControllerSteadyStateForensics(b *testing.B) {
	s := newSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		return sched.NewBaselineREF(org, tm)
	})
	s.c.EnableForensics(sched.ForensicsConfig{Thresholds: []uint32{512, 1024}, HotThreshold: 512})
	for i := 0; i < 20000; i++ {
		s.tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tick()
	}
}

// BenchmarkControllerSteadyStateForensicsRecorder adds the flight
// recorder on top of the ledger (pre-sized ring and event log, so still
// allocation-free).
func BenchmarkControllerSteadyStateForensicsRecorder(b *testing.B) {
	s := newSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		return sched.NewBaselineREF(org, tm)
	})
	s.c.EnableForensics(sched.ForensicsConfig{
		Thresholds: []uint32{512, 1024}, HotThreshold: 512, Recorder: true,
	})
	for i := 0; i < 20000; i++ {
		s.tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tick()
	}
}

// TestForensicsMitigationEfficacy is the ledger-level proof behind the
// mitigation zoo: a double-sided hammer with no refresh engine drives the
// victim's exposure past the RowHammer threshold (a VictimCrossings entry
// at NRH), while the same hammer under a well-provisioned Graphene
// tracker never lets any victim's exposure reach NRH — its preventive
// refreshes restore the victim's charge before the neighbors' activations
// accumulate.
func TestForensicsMitigationEfficacy(t *testing.T) {
	org := smallOrgX()
	tm := dram.DDR4_2400(8)
	const nrh = 64
	fxCfg := sched.ForensicsConfig{Thresholds: []uint32{nrh / 2, nrh}}

	// Alternate the two aggressors flanking victim row 50: each pair of
	// activations bumps the victim's exposure by two.
	hammer := func(h *fxHarness) {
		bank := dram.BankID{Channel: 0, Rank: 0, Bank: 0}
		for i := 0; i < nrh; i++ {
			h.readWait(dram.Location{BankID: bank, Row: 49})
			h.readWait(dram.Location{BankID: bank, Row: 51})
		}
	}

	t.Run("unmitigated", func(t *testing.T) {
		h := newFxHarness(t, org, tm, sched.NoRefresh{}, fxCfg)
		hammer(h)
		rep, _ := h.c.ForensicsReport()
		// Row 50 accumulates all 128 neighbor activations; rows 48 and 52
		// get 64 each. All three cross both thresholds.
		if rep.MaxVictimExposure != 2*nrh {
			t.Errorf("MaxVictimExposure = %d, want %d", rep.MaxVictimExposure, 2*nrh)
		}
		if vc := rep.Tally.VictimCrossings; vc[0] != 3 || vc[1] != 3 {
			t.Errorf("VictimCrossings = %v, want [3 3 0 0]", vc)
		}
	})

	t.Run("graphene", func(t *testing.T) {
		g, err := core.NewGraphene(core.GrapheneConfig{Org: org, Timing: tm, NRH: nrh, Counters: 8})
		if err != nil {
			t.Fatal(err)
		}
		h := newFxHarness(t, org, tm, g, fxCfg)
		hammer(h)
		rep, _ := h.c.ForensicsReport()
		if g.Stats().Triggers == 0 {
			t.Fatal("the tracker never tripped; the hammer is not reaching NRH/4")
		}
		if g.Stats().VictimRefreshes == 0 {
			t.Fatal("no victim refreshes performed despite tracker trips")
		}
		if rep.Tally.VictimCrossings[1] != 0 {
			t.Errorf("VictimCrossings[NRH] = %d under Graphene, want 0", rep.Tally.VictimCrossings[1])
		}
		if rep.MaxVictimExposure >= nrh {
			t.Errorf("MaxVictimExposure = %d, want < %d", rep.MaxVictimExposure, nrh)
		}
	})
}
