// Package sched implements the cycle-level DDR4 memory request scheduler
// of the simulated system (Table 3): FR-FCFS with an open-row policy,
// 64-entry read and write queues per channel, per-bank timing state,
// command- and data-bus contention, tFAW/tRRD power constraints, and
// pluggable refresh engines (none, conventional rank-level REF, or
// HiRA-MC via the RefreshEngine interface implemented in internal/core).
//
// The controller advances in command-clock ticks (tCK). Every command it
// places on a channel's command bus can be captured through CommandHook,
// which the test suite feeds to dram.Verifier to prove the scheduler never
// violates timing constraints, and to dram.RefreshAuditor to prove no row
// ever exceeds its retention window.
//
// The scheduler core is event-driven and allocation-free in steady state:
// requests live in freelisted intrusive nodes indexed both per bank and in
// channel-wide arrival order, the FR-FCFS passes touch only banks with
// work, and a channel that provably cannot issue a command caches its next
// event time and skips the scheduling scans until then. Config.Reference
// selects the original tick-by-tick linear-scan implementation instead;
// the two are command-for-command and stat-for-stat identical (see
// TestControllerDifferential).
package sched

import "hira/internal/dram"

// Request is one memory request entering the controller.
type Request struct {
	Loc    dram.Location
	Write  bool
	Core   int
	Token  uint64
	Arrive dram.Time
}

// OpKind classifies a refresh operation demanded by a RefreshEngine.
type OpKind uint8

const (
	// OpNone means no operation.
	OpNone OpKind = iota
	// OpRankREF is a conventional all-bank REF to a rank.
	OpRankREF
	// OpRowRefresh refreshes a single row with nominal ACT+PRE timing.
	OpRowRefresh
	// OpHiRAPair refreshes RowA concurrently with refreshing RowB using a
	// HiRA sequence (refresh-refresh parallelization).
	OpHiRAPair
	// OpRowRefreshBlocking refreshes a single row the way a conventional
	// (non-HiRA) controller performs a preventive refresh: as an atomic
	// high-priority operation that holds the whole rank for a row cycle.
	OpRowRefreshBlocking
)

// Op is a refresh operation the engine obliges the controller to perform.
type Op struct {
	Kind       OpKind
	Rank, Bank int // Bank is rank-relative; ignored for OpRankREF
	RowA, RowB int // RowA for single; RowA (hidden) + RowB for pairs
	// PreventiveA/PreventiveB report whether RowA/RowB refresh a PARA
	// victim rather than performing periodic retention work. They are
	// forensics attribution only: the controller's scheduling and the
	// engine's bookkeeping ignore them.
	PreventiveA, PreventiveB bool
}

// RefreshEngine is the controller's refresh policy. Implementations:
// NoRefresh, BaselineREF (this package), and HiRA-MC (internal/core).
type RefreshEngine interface {
	// Tick is called once per controller tick so the engine can generate
	// refresh requests.
	Tick(now dram.Time)
	// Mandatory returns the operations on the channel that must start now
	// (deadlines reached), in priority order. Banks are independent, so
	// several refreshes may be due concurrently; the controller starts as
	// many as resources allow, one command per tick. The returned slice
	// may be reused by the engine across calls.
	Mandatory(channel int, now dram.Time) []Op
	// Piggyback is consulted when the controller is about to activate a
	// demand row: the engine may return a row in the same bank to refresh
	// "for free" via a HiRA prologue (refresh-access parallelization).
	// preventive reports whether the offered row is a PARA victim (vs
	// periodic retention work) — forensics attribution only.
	Piggyback(loc dram.Location, now dram.Time) (row int, preventive, ok bool)
	// NoteActivate informs the engine of every row activation and
	// whether it serves a demand access (PARA's sampling point) or
	// refresh work.
	NoteActivate(loc dram.Location, demand bool, now dram.Time)
	// NoteRefreshed informs the engine that rows of a bank were refreshed
	// (through any mechanism) at time now. row < 0 with kind OpRankREF
	// reports a whole-rank REF.
	NoteRefreshed(op Op, channel int, now dram.Time)
	// NextEvent returns a lower bound on the next time the engine's
	// Mandatory set can grow: the earliest moment a queued or
	// yet-to-be-generated refresh becomes due, or dram.MaxTime() if none
	// is in sight. The controller uses it to skip idle ticks; returning
	// an early bound is always safe (it only causes a spurious wake),
	// returning a late one is not. Operations already visible through
	// Mandatory need not be reported — the controller tracks the
	// resource times gating them.
	NextEvent(now dram.Time) dram.Time
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes             uint64
	RowHits, RowMisses        uint64
	ACTs, PREs, REFs          uint64
	HiRAPiggybacks            uint64 // refresh-access parallelizations
	HiRAPairs                 uint64 // refresh-refresh parallelizations
	StandaloneRefreshes       uint64 // deadline row refreshes without pairing
	SeqBlocked, CanACTBlocked uint64
	ReadLatencySum            dram.Time
	ReadCount                 uint64
}

// AvgReadLatency returns the mean read service latency.
func (s Stats) AvgReadLatency() dram.Time {
	if s.ReadCount == 0 {
		return 0
	}
	return s.ReadLatencySum / dram.Time(s.ReadCount)
}

// Config parameterizes a Controller.
type Config struct {
	Org    dram.Org
	Timing dram.Timing
	// ReadQueueCap and WriteQueueCap default to Table 3's 64.
	ReadQueueCap, WriteQueueCap int
	// WriteHigh/WriteLow are write-drain watermarks (defaults 48/16).
	WriteHigh, WriteLow int
	// Reference selects the seed-style tick-by-tick scheduler: linear
	// queue scans every tick, no idle-tick skipping. It exists as the
	// behavioral reference for differential tests and produces exactly
	// the same command stream and stats as the optimized core.
	Reference bool
}

func (c Config) withDefaults() Config {
	if c.ReadQueueCap == 0 {
		c.ReadQueueCap = 64
	}
	if c.WriteQueueCap == 0 {
		c.WriteQueueCap = 64
	}
	if c.WriteHigh == 0 {
		c.WriteHigh = c.WriteQueueCap * 3 / 4
	}
	if c.WriteLow == 0 {
		c.WriteLow = c.WriteQueueCap / 4
	}
	return c
}

// Queue kinds: each channel keeps one read and one write queue.
const (
	qRead = iota
	qWrite
)

// reqNode is an intrusive queue node holding one request. Nodes are
// recycled through the controller's freelist so steady-state enqueue and
// dequeue never allocate. Each node is linked into two FIFOs: its bank's
// bucket (bnext/bprev) and the channel-wide arrival list (gnext/gprev).
// seq is the channel-wide arrival number that orders requests across
// banks (FR-FCFS's "oldest first").
type reqNode struct {
	req          Request
	seq          uint64
	bnext, bprev *reqNode
	gnext, gprev *reqNode
}

// bankQ is one bank's FIFO bucket within a kindQ.
type bankQ struct {
	head, tail *reqNode
	n          int // queued requests in this bucket
	// hits counts queued requests targeting the bank's open row. It is
	// maintained on enqueue/dequeue and recomputed when a row opens
	// (zeroed when it closes), making the first-ready pass and the
	// open-row precharge veto O(1) per bank instead of O(queue).
	hits int
}

// kindQ is one channel's read or write queue: the arrival-order list (the
// seed's flat queue, kept for cross-bank ordering and the reference
// scheduler). The per-bank FIFO buckets live inside bankSt so one bank
// lookup touches both scheduling and queue state. active is a sparse set
// of the banks with queued requests, so the scheduler's scans touch only
// banks with work (its order is immaterial: every consumer selects by
// arrival number).
type kindQ struct {
	ghead, gtail *reqNode
	count        int
	active       []int // flat indices of non-empty buckets, unordered
	pos          []int // flat index -> position in active, -1 if absent
}

func (c *Controller) pushNode(ch *channel, k int, n *reqNode, flat int) {
	q := &ch.q[k]
	if q.gtail == nil {
		q.ghead = n
	} else {
		q.gtail.gnext = n
		n.gprev = q.gtail
	}
	q.gtail = n
	bq := &ch.banks[flat].bq[k]
	if bq.tail == nil {
		bq.head = n
		q.pos[flat] = len(q.active)
		q.active = append(q.active, flat)
	} else {
		bq.tail.bnext = n
		n.bprev = bq.tail
	}
	bq.tail = n
	bq.n++
	q.count++
}

func (c *Controller) unlinkNode(ch *channel, k int, n *reqNode, flat int) {
	q := &ch.q[k]
	if n.gprev != nil {
		n.gprev.gnext = n.gnext
	} else {
		q.ghead = n.gnext
	}
	if n.gnext != nil {
		n.gnext.gprev = n.gprev
	} else {
		q.gtail = n.gprev
	}
	bq := &ch.banks[flat].bq[k]
	if n.bprev != nil {
		n.bprev.bnext = n.bnext
	} else {
		bq.head = n.bnext
	}
	if n.bnext != nil {
		n.bnext.bprev = n.bprev
	} else {
		bq.tail = n.bprev
	}
	bq.n--
	if bq.head == nil {
		i := q.pos[flat]
		last := q.active[len(q.active)-1]
		q.active[i] = last
		q.pos[last] = i
		q.active = q.active[:len(q.active)-1]
		q.pos[flat] = -1
	}
	q.count--
}

// Controller is the memory request scheduler.
type Controller struct {
	cfg       Config
	now       dram.Time
	chans     []*channel
	engine    RefreshEngine
	reference bool
	bpr       int // banks per rank

	free       *reqNode
	arrival    uint64
	rankOf     []int       // flat bank index -> rank (avoids hot division)
	actScratch []dram.Time // canACT's reusable tFAW timeline
	evt        dram.Time   // earliest guard-flip time recorded this tick

	// OnComplete is invoked when a read's data has returned (writes
	// complete on enqueue). May be nil.
	OnComplete func(core int, token uint64, at dram.Time)
	// CommandHook observes every command placed on a command bus. May be
	// nil.
	CommandHook func(dram.Command)

	// forensics, when non-nil, is the RowHammer activation ledger fed by
	// nil-checked hooks on the command paths (see EnableForensics).
	forensics *Forensics

	Stats Stats
}

type channel struct {
	id          int
	q           [2]kindQ // qRead, qWrite
	banks       []bankSt // flat per channel: rank*banksPerRank + bank
	ranks       []rankSt
	lastCmd     dram.Time
	hasCmd      bool
	dataBusFree dram.Time
	draining    bool
	seq         *sequence
	seqStore    sequence
	pendingPREs int // banks with pendingPRE set

	// Idle-skip state: after a tick that issued no command, idleUntil
	// holds the earliest time any state transition can occur and the
	// deltas hold the blocked-counter increments that tick produced.
	// Until idleUntil — or until a new request arrives, which clears it —
	// ticking this channel only replays the deltas.
	idleUntil      dram.Time
	idleSeqBlocked uint64
	idleCanACT     uint64

	cursors []p2cursor // pass-2 merge scratch, one slot per bank
	parked  []p2cursor // pass-2 banks behind a memoized canACT wall
	// Pass-2 per-invocation canACT memo: a failed activation with
	// need=tRRD_S fails for every bank of the rank (the S constraint,
	// tFAW, and refresh occupancy are rank-wide); a failed one with
	// need=tRRD_L fails for every same-group bank. Valid only while no
	// HiRA sequence is active (sequence blocking is timing-specific).
	p2FailAll, p2FailL []bool
}

// p2cursor walks one bank's FIFO during the pass-2 arrival-order merge.
type p2cursor struct {
	node *reqNode
	flat int
	left int // requests remaining in the bank's FIFO, including node
}

type bankSt struct {
	open     bool
	row      int
	actAt    dram.Time
	readyACT dram.Time
	readyPRE dram.Time
	readyCol dram.Time
	// reserved marks the bank as owned by a refresh operation or HiRA
	// sequence; demand scheduling skips it.
	reserved bool
	// pendingPRE, when set, schedules an automatic precharge at the given
	// time (used to close rows after standalone refreshes).
	pendingPRE   bool
	pendingPREAt dram.Time
	// bq holds the bank's read and write FIFO buckets, co-located with
	// the timing state so the scheduler's scan stays on one cache line
	// pair per bank.
	bq [2]bankQ
}

type rankSt struct {
	lastACT      dram.Time
	lastACTGroup int
	actTimes     []dram.Time
	refBusy      dram.Time
	refDrain     bool // rank is being drained for a REF
	pendingREF   bool
}

// sequence is a short pre-timed command burst (a HiRA operation). One may
// be active per channel at a time; the channel owns a single reusable
// instance so starting a sequence never allocates.
type sequence struct {
	cmds   [3]seqCmd
	n      int
	next   int
	rank   int
	flat   int  // flat channel index of the target bank
	access bool // second ACT serves a demand access
	// plannedSecond is the scheduled HiRASecondACT time; the closing
	// precharge of a refresh-refresh pair is timed from it.
	plannedSecond dram.Time
}

type seqCmd struct {
	kind  dram.Kind
	phase dram.HiRAPhase
	rank  int
	bank  int // rank-relative
	row   int
	due   dram.Time
}

// NewController builds a controller with the given refresh engine
// (NoRefresh{} if nil).
func NewController(cfg Config, engine RefreshEngine) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		engine = NoRefresh{}
	}
	c := &Controller{
		cfg:       cfg,
		engine:    engine,
		reference: cfg.Reference,
		bpr:       cfg.Org.BanksPerRank(),
	}
	c.rankOf = make([]int, cfg.Org.BanksPerChannel())
	for i := range c.rankOf {
		c.rankOf[i] = i / c.bpr
	}
	for ch := 0; ch < cfg.Org.Channels; ch++ {
		nb := cfg.Org.BanksPerChannel()
		cc := &channel{id: ch}
		cc.banks = make([]bankSt, nb)
		cc.ranks = make([]rankSt, cfg.Org.RanksPerChannel)
		for i := range cc.ranks {
			cc.ranks[i] = rankSt{lastACT: -dram.MaxTime()}
		}
		for k := range cc.q {
			cc.q[k].active = make([]int, 0, nb)
			cc.q[k].pos = make([]int, nb)
			for i := range cc.q[k].pos {
				cc.q[k].pos[i] = -1
			}
		}
		cc.cursors = make([]p2cursor, 0, nb)
		cc.parked = make([]p2cursor, 0, nb)
		cc.p2FailAll = make([]bool, cfg.Org.RanksPerChannel)
		cc.p2FailL = make([]bool, cfg.Org.RanksPerChannel)
		c.chans = append(c.chans, cc)
	}
	return c, nil
}

// Now returns the controller clock.
func (c *Controller) Now() dram.Time { return c.now }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// QueueOccupancy returns current read/write queue depths summed over
// channels.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	for _, ch := range c.chans {
		reads += ch.q[qRead].count
		writes += ch.q[qWrite].count
	}
	return
}

func (c *Controller) newNode(req Request) *reqNode {
	n := c.free
	if n == nil {
		n = &reqNode{}
	} else {
		c.free = n.bnext
		*n = reqNode{}
	}
	n.req = req
	n.seq = c.arrival
	c.arrival++
	return n
}

func (c *Controller) freeNode(n *reqNode) {
	*n = reqNode{bnext: c.free}
	c.free = n
}

// flat returns the channel-flat index of a bank.
func (c *Controller) flat(rank, bank int) int { return rank*c.bpr + bank }

// Enqueue accepts a request, returning false if the relevant queue is
// full. Writes are acknowledged immediately (write-buffer semantics).
func (c *Controller) Enqueue(req Request) bool {
	ch := c.chans[req.Loc.Channel]
	req.Arrive = c.now
	k, capN := qRead, c.cfg.ReadQueueCap
	if req.Write {
		k, capN = qWrite, c.cfg.WriteQueueCap
	}
	q := &ch.q[k]
	if q.count >= capN {
		return false
	}
	if req.Write {
		c.Stats.Writes++
	}
	flat := c.flat(req.Loc.Rank, req.Loc.Bank)
	n := c.newNode(req)
	c.pushNode(ch, k, n, flat)
	bank := &ch.banks[flat]
	if bank.open && bank.row == req.Loc.Row {
		bank.bq[k].hits++
	}
	if !c.reference {
		c.noteEnqueue(ch, k, flat, req.Loc.Row)
	}
	return true
}

// noteEnqueue decides whether a newly queued request must wake an idle
// channel. Most arrivals park behind a busy bank or in the queue not
// being served and cannot issue, count toward a blocked-counter, or be
// touched by the scheduler at all until a time the sleep already tracks —
// those keep the skip window open (possibly shortened to the bank's ready
// time). Anything that could act now, or that moves the write-drain
// hysteresis, forces a full rescan.
func (c *Controller) noteEnqueue(ch *channel, k, flat, row int) {
	if ch.idleUntil <= c.now {
		return // a full tick is due anyway
	}
	readN, writeN := ch.q[qRead].count, ch.q[qWrite].count
	// Arrivals that can flip the hysteresis or the served-queue choice.
	if k == qWrite {
		if writeN >= c.cfg.WriteHigh || readN == 0 {
			ch.idleUntil = 0
			return
		}
	} else if readN == 1 {
		ch.idleUntil = 0 // the read queue was empty: selection changes
		return
	}
	if (k == qWrite) != ch.draining {
		return // parked in the queue not being served
	}
	bank := &ch.banks[flat]
	if bank.reserved {
		return // release is sequence/pending-PRE driven, already tracked
	}
	wake := func(ready dram.Time, busy dram.Time) bool {
		if c.now >= ready && c.now >= busy {
			return true
		}
		if ready > c.now && ready < ch.idleUntil {
			ch.idleUntil = ready
		}
		if busy > c.now && busy < ch.idleUntil {
			ch.idleUntil = busy
		}
		return false
	}
	rk := &ch.ranks[c.rankOf[flat]]
	if !bank.open {
		// The request joins pass 2: an ACT attempt happens (and is
		// counted) as soon as the bank is ready.
		if c.now >= bank.readyACT {
			ch.idleUntil = 0
		} else if bank.readyACT < ch.idleUntil {
			ch.idleUntil = bank.readyACT
		}
		return
	}
	if bank.row == row {
		// Row hit: issuable once the column path, rank, and data bus
		// allow; a bus-blocked attempt has no effect, so sleep to the
		// bus-ready point.
		if wake(bank.readyCol, rk.refBusy) {
			lat := c.cfg.Timing.CL
			if k == qWrite {
				lat = c.cfg.Timing.CWL
			}
			if ch.dataBusFree <= c.now+lat {
				ch.idleUntil = 0
			} else if t := ch.dataBusFree - lat; t < ch.idleUntil {
				ch.idleUntil = t
			}
		}
		return
	}
	// Row conflict: a precharge becomes possible only while no queued
	// request hits the open row.
	if bank.bq[k].hits == 0 {
		if wake(bank.readyPRE, rk.refBusy) {
			ch.idleUntil = 0
		}
	}
}

// removeNode dequeues a request after it has been serviced.
func (c *Controller) removeNode(ch *channel, k int, n *reqNode) {
	flat := c.flat(n.req.Loc.Rank, n.req.Loc.Bank)
	bank := &ch.banks[flat]
	if bank.open && bank.row == n.req.Loc.Row {
		bank.bq[k].hits--
	}
	c.unlinkNode(ch, k, n, flat)
	c.freeNode(n)
}

// openRow records that flat's row opened and recounts per-queue row hits.
func (c *Controller) openRow(ch *channel, flat, row int) {
	bank := &ch.banks[flat]
	bank.open = true
	bank.row = row
	for k := range bank.bq {
		h := 0
		for n := bank.bq[k].head; n != nil; n = n.bnext {
			if n.req.Loc.Row == row {
				h++
			}
		}
		bank.bq[k].hits = h
	}
}

// closeRow records that flat's row closed.
func (c *Controller) closeRow(ch *channel, flat int) {
	bank := &ch.banks[flat]
	bank.open = false
	bank.bq[qRead].hits = 0
	bank.bq[qWrite].hits = 0
}

func (c *Controller) emit(ch *channel, cmd dram.Command) {
	cmd.At = c.now
	cmd.Loc.Channel = ch.id
	ch.lastCmd = c.now
	ch.hasCmd = true
	if f := c.forensics; f != nil && f.pre != nil {
		f.record(cmd)
	}
	if c.CommandHook != nil {
		c.CommandHook(cmd)
	}
}

// busFree reports whether the channel command bus can carry a command now.
func (c *Controller) busFree(ch *channel) bool {
	return !ch.hasCmd || c.now-ch.lastCmd >= c.cfg.Timing.TCK
}

// Tick advances the controller by one command clock.
//
// The hot path is event-driven: as a tick's scheduling scans fail their
// time guards they record the threshold times (noteEvt); if the tick
// issues no command, the earliest recorded threshold — or the engine's
// next mandatory refresh, or a new request arriving — is the next time
// anything can change, so until then subsequent ticks only replay that
// tick's blocked-counter deltas. Reference mode always runs the full
// scan.
func (c *Controller) Tick() {
	c.engine.Tick(c.now)
	engineNext := dram.Time(-1) // lazily computed, at most once per tick
	for _, ch := range c.chans {
		if !c.reference && c.now < ch.idleUntil {
			c.Stats.SeqBlocked += ch.idleSeqBlocked
			c.Stats.CanACTBlocked += ch.idleCanACT
			continue
		}
		seq0, can0 := c.Stats.SeqBlocked, c.Stats.CanACTBlocked
		c.evt = dram.MaxTime()
		c.tickChannel(ch)
		if c.reference {
			continue
		}
		if ch.hasCmd && ch.lastCmd == c.now {
			ch.idleUntil = 0 // issued a command: state changed, rescan next tick
			continue
		}
		if ch.seq != nil {
			// An active HiRA sequence lasts a handful of ticks but makes
			// demand attempts time-sensitive in ways the recorded
			// thresholds don't capture (the tRRD race against its
			// pre-timed ACTs flips between blocking reasons as the gap
			// shrinks): run every tick until it completes.
			ch.idleUntil = 0
			continue
		}
		if c.drainWillFlip(ch) {
			// The write-drain hysteresis flips state on the next
			// evaluation even with frozen queues (at the low watermark
			// with an empty read queue it oscillates every tick), so its
			// phase must advance tick by tick, exactly as the
			// reference's per-tick evaluation does.
			ch.idleUntil = 0
			continue
		}
		if engineNext < 0 {
			engineNext = c.engine.NextEvent(c.now)
		}
		until := c.evt
		if engineNext > c.now && engineNext < until {
			until = engineNext
		}
		ch.idleUntil = until
		ch.idleSeqBlocked = c.Stats.SeqBlocked - seq0
		ch.idleCanACT = c.Stats.CanACTBlocked - can0
	}
	c.now += c.cfg.Timing.TCK
}

// noteEvt records a future time at which a failed scheduling guard could
// flip, bounding how far the current channel's tick may be skipped.
func (c *Controller) noteEvt(t dram.Time) {
	if t > c.now && t < c.evt {
		c.evt = t
	}
}

// IdleUntil reports the earliest time any channel needs a full tick, or 0
// if some channel must run the full scheduler on the next tick. Callers
// that also know their request sources are quiescent may advance the
// controller to that point with SkipTicks.
func (c *Controller) IdleUntil() dram.Time {
	if c.reference {
		return 0
	}
	min := dram.MaxTime()
	for _, ch := range c.chans {
		if ch.idleUntil <= c.now {
			return 0
		}
		if ch.idleUntil < min {
			min = ch.idleUntil
		}
	}
	return min
}

// SkipTicks advances the clock n ticks through a window IdleUntil proved
// idle, replaying each channel's per-tick blocked counters. Queues, bank
// state, and the refresh engine are untouched; the engine's generation
// catch-up happens on the next full tick and is deadline-driven, so the
// resulting refresh schedule is identical to ticking through the window.
func (c *Controller) SkipTicks(n int) {
	for _, ch := range c.chans {
		c.Stats.SeqBlocked += uint64(n) * ch.idleSeqBlocked
		c.Stats.CanACTBlocked += uint64(n) * ch.idleCanACT
	}
	c.now += dram.Time(n) * c.cfg.Timing.TCK
}

func (c *Controller) tickChannel(ch *channel) {
	if !c.busFree(ch) {
		c.noteEvt(ch.lastCmd + c.cfg.Timing.TCK)
		return
	}
	// 1. Active HiRA sequence commands are pre-timed: issue when due.
	if ch.seq != nil {
		if c.issueSeq(ch) {
			return
		}
	}
	// 2. Scheduled automatic precharges (closing standalone refreshes).
	if c.issuePendingPRE(ch) {
		return
	}
	// 3. Rank REF draining and issue.
	if c.issueREFWork(ch) {
		return
	}
	// 4. Engine-mandated refresh operations: several banks may have due
	// refreshes; start the first one that resources allow.
	if ch.seq == nil {
		for _, op := range c.engine.Mandatory(ch.id, c.now) {
			if op.Kind != OpNone && c.startOp(ch, op) {
				return
			}
		}
	}
	// 5. Demand scheduling (FR-FCFS).
	if c.reference {
		c.scheduleDemandRef(ch)
	} else {
		c.scheduleDemand(ch)
	}
}

func (c *Controller) issueSeq(ch *channel) bool {
	s := ch.seq
	cmd := &s.cmds[s.next]
	if c.now < cmd.due {
		c.noteEvt(cmd.due)
		return false
	}
	bank := &ch.banks[s.flat]
	c.emit(ch, dram.Command{
		Kind:  cmd.kind,
		Loc:   dram.Location{BankID: dram.BankID{Rank: cmd.rank, Bank: cmd.bank}, Row: cmd.row},
		Phase: cmd.phase,
	})
	switch cmd.kind {
	case dram.KindACT:
		c.Stats.ACTs++
		c.noteACT(ch, cmd.rank, cmd.bank)
		c.openRow(ch, s.flat, cmd.row)
		bank.actAt = c.now
		bank.readyCol = c.now + c.cfg.Timing.TRCD
		bank.readyPRE = c.now + c.cfg.Timing.TRAS
		bank.readyACT = c.now + c.cfg.Timing.TRC
		if cmd.phase == dram.HiRASecondACT {
			if s.access {
				// The demand row becomes schedulable once the second
				// ACT issues.
				bank.reserved = false
			} else {
				// Refresh-refresh pair: one closing precharge tRAS
				// after the scheduled second ACT covers both rows.
				bank.pendingPRE = true
				bank.pendingPREAt = s.plannedSecond + c.cfg.Timing.TRAS
				ch.pendingPREs++
			}
		}
		if c.forensics != nil {
			if cmd.phase == dram.HiRASecondACT && s.access {
				c.forensics.demandACT(ch.id, s.flat, cmd.row)
			} else {
				c.forensics.refreshACT(ch.id, s.flat, cmd.row)
			}
		}
		c.engine.NoteActivate(dram.Location{
			BankID: dram.BankID{Channel: ch.id, Rank: cmd.rank, Bank: cmd.bank},
			Row:    cmd.row,
		}, cmd.phase == dram.HiRASecondACT && s.access, c.now)
	case dram.KindPRE:
		c.Stats.PREs++
		c.closeRow(ch, s.flat)
		if cmd.phase != dram.HiRAInterruptPRE {
			bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		}
		// HiRAInterruptPRE: the bank is reopened by the second ACT.
	}
	s.next++
	if s.next == s.n {
		ch.seq = nil
	}
	return true
}

func (c *Controller) issuePendingPRE(ch *channel) bool {
	if ch.pendingPREs == 0 {
		return false
	}
	for rb := range ch.banks {
		bank := &ch.banks[rb]
		if !bank.pendingPRE {
			continue
		}
		if c.now < bank.pendingPREAt || c.now < bank.readyPRE {
			c.noteEvt(bank.pendingPREAt)
			c.noteEvt(bank.readyPRE)
			continue
		}
		rank := rb / c.bpr
		b := rb % c.bpr
		c.emit(ch, dram.Command{Kind: dram.KindPRE,
			Loc: dram.Location{BankID: dram.BankID{Rank: rank, Bank: b}}})
		c.Stats.PREs++
		c.closeRow(ch, rb)
		bank.pendingPRE = false
		ch.pendingPREs--
		bank.reserved = false
		bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		return true
	}
	return false
}

func (c *Controller) noteACT(ch *channel, rank, bank int) {
	rk := &ch.ranks[rank]
	rk.lastACT = c.now
	rk.lastACTGroup = bank / c.cfg.Org.BanksPerGroup
	cut := c.now - c.cfg.Timing.TFAW
	times := rk.actTimes[:0]
	for _, t := range rk.actTimes {
		if t > cut {
			times = append(times, t)
		}
	}
	rk.actTimes = append(times, c.now)
}

// canACT checks rank-level ACT constraints (tRRD_S/tRRD_L, tFAW headroom
// for n more ACTs within the next span) and refresh occupancy.
func (c *Controller) canACT(ch *channel, rank, bank int, n int, span dram.Time) bool {
	rk := &ch.ranks[rank]
	if c.now < rk.refBusy || rk.refDrain {
		c.noteEvt(rk.refBusy) // refDrain clears at the REF, a command tick
		return false
	}
	need := c.cfg.Timing.TRRD
	if bank/c.cfg.Org.BanksPerGroup == rk.lastACTGroup {
		need = c.cfg.Timing.TRRDL
	}
	if c.now-rk.lastACT < need {
		c.noteEvt(rk.lastACT + need)
		return false
	}
	// tFAW: every activation — past, planned now, or pre-timed in an
	// active HiRA sequence — must see at most 3 other ACTs in the tFAW
	// window ending at its own issue time. Build the combined timeline
	// (a handful of entries) and check every window that the planned
	// ACTs join.
	times := c.actScratch[:0]
	times = append(times, rk.actTimes...)
	if s := ch.seq; s != nil && s.rank == rank {
		for _, sc := range s.cmds[s.next:s.n] {
			if sc.kind == dram.KindACT {
				times = append(times, sc.due)
			}
		}
	}
	times = append(times, c.now)
	if n > 1 {
		times = append(times, c.now+span)
	}
	c.actScratch = times[:0]
	for _, end := range times {
		if end < c.now-c.cfg.Timing.TFAW {
			continue
		}
		count := 0
		for _, t := range times {
			if t > end-c.cfg.Timing.TFAW && t <= end {
				count++
			}
		}
		if count > 4 {
			// The violating window relaxes when an existing ACT ages out
			// of it: the window ending at the planned ACT (now) loses
			// activation `at` once now > at+tFAW, and the window ending
			// at the planned second ACT (now+span) loses it span
			// earlier.
			for _, at := range rk.actTimes {
				c.noteEvt(at + c.cfg.Timing.TFAW)
				if n > 1 {
					c.noteEvt(at + c.cfg.Timing.TFAW - span)
				}
			}
			return false
		}
	}
	return true
}

func maxTime(a, b dram.Time) dram.Time {
	if a > b {
		return a
	}
	return b
}
