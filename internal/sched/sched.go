// Package sched implements the cycle-level DDR4 memory request scheduler
// of the simulated system (Table 3): FR-FCFS with an open-row policy,
// 64-entry read and write queues per channel, per-bank timing state,
// command- and data-bus contention, tFAW/tRRD power constraints, and
// pluggable refresh engines (none, conventional rank-level REF, or
// HiRA-MC via the RefreshEngine interface implemented in internal/core).
//
// The controller advances in command-clock ticks (tCK). Every command it
// places on a channel's command bus can be captured through CommandHook,
// which the test suite feeds to dram.Verifier to prove the scheduler never
// violates timing constraints, and to dram.RefreshAuditor to prove no row
// ever exceeds its retention window.
package sched

import (
	"fmt"

	"hira/internal/dram"
)

// Request is one memory request entering the controller.
type Request struct {
	Loc    dram.Location
	Write  bool
	Core   int
	Token  uint64
	Arrive dram.Time
}

// OpKind classifies a refresh operation demanded by a RefreshEngine.
type OpKind uint8

const (
	// OpNone means no operation.
	OpNone OpKind = iota
	// OpRankREF is a conventional all-bank REF to a rank.
	OpRankREF
	// OpRowRefresh refreshes a single row with nominal ACT+PRE timing.
	OpRowRefresh
	// OpHiRAPair refreshes RowA concurrently with refreshing RowB using a
	// HiRA sequence (refresh-refresh parallelization).
	OpHiRAPair
	// OpRowRefreshBlocking refreshes a single row the way a conventional
	// (non-HiRA) controller performs a preventive refresh: as an atomic
	// high-priority operation that holds the whole rank for a row cycle.
	OpRowRefreshBlocking
)

// Op is a refresh operation the engine obliges the controller to perform.
type Op struct {
	Kind       OpKind
	Rank, Bank int // Bank is rank-relative; ignored for OpRankREF
	RowA, RowB int // RowA for single; RowA (hidden) + RowB for pairs
}

// RefreshEngine is the controller's refresh policy. Implementations:
// NoRefresh, BaselineREF (this package), and HiRA-MC (internal/core).
type RefreshEngine interface {
	// Tick is called once per controller tick so the engine can generate
	// refresh requests.
	Tick(now dram.Time)
	// Mandatory returns the operations on the channel that must start now
	// (deadlines reached), in priority order. Banks are independent, so
	// several refreshes may be due concurrently; the controller starts as
	// many as resources allow, one command per tick. The returned slice
	// may be reused by the engine across calls.
	Mandatory(channel int, now dram.Time) []Op
	// Piggyback is consulted when the controller is about to activate a
	// demand row: the engine may return a row in the same bank to refresh
	// "for free" via a HiRA prologue (refresh-access parallelization).
	Piggyback(loc dram.Location, now dram.Time) (row int, ok bool)
	// NoteActivate informs the engine of every row activation and
	// whether it serves a demand access (PARA's sampling point) or
	// refresh work.
	NoteActivate(loc dram.Location, demand bool, now dram.Time)
	// NoteRefreshed informs the engine that rows of a bank were refreshed
	// (through any mechanism) at time now. row < 0 with kind OpRankREF
	// reports a whole-rank REF.
	NoteRefreshed(op Op, channel int, now dram.Time)
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes             uint64
	RowHits, RowMisses        uint64
	ACTs, PREs, REFs          uint64
	HiRAPiggybacks            uint64 // refresh-access parallelizations
	HiRAPairs                 uint64 // refresh-refresh parallelizations
	StandaloneRefreshes       uint64 // deadline row refreshes without pairing
	SeqBlocked, CanACTBlocked uint64
	ReadLatencySum            dram.Time
	ReadCount                 uint64
}

// AvgReadLatency returns the mean read service latency.
func (s Stats) AvgReadLatency() dram.Time {
	if s.ReadCount == 0 {
		return 0
	}
	return s.ReadLatencySum / dram.Time(s.ReadCount)
}

// Config parameterizes a Controller.
type Config struct {
	Org    dram.Org
	Timing dram.Timing
	// ReadQueueCap and WriteQueueCap default to Table 3's 64.
	ReadQueueCap, WriteQueueCap int
	// WriteHigh/WriteLow are write-drain watermarks (defaults 48/16).
	WriteHigh, WriteLow int
}

func (c Config) withDefaults() Config {
	if c.ReadQueueCap == 0 {
		c.ReadQueueCap = 64
	}
	if c.WriteQueueCap == 0 {
		c.WriteQueueCap = 64
	}
	if c.WriteHigh == 0 {
		c.WriteHigh = c.WriteQueueCap * 3 / 4
	}
	if c.WriteLow == 0 {
		c.WriteLow = c.WriteQueueCap / 4
	}
	return c
}

// Controller is the memory request scheduler.
type Controller struct {
	cfg    Config
	now    dram.Time
	chans  []*channel
	engine RefreshEngine

	// OnComplete is invoked when a read's data has returned (writes
	// complete on enqueue). May be nil.
	OnComplete func(core int, token uint64, at dram.Time)
	// CommandHook observes every command placed on a command bus. May be
	// nil.
	CommandHook func(dram.Command)

	Stats Stats
}

type channel struct {
	id          int
	readQ       []*Request
	writeQ      []*Request
	banks       []*bankSt // flat per channel: rank*banksPerRank + bank
	ranks       []*rankSt
	lastCmd     dram.Time
	hasCmd      bool
	dataBusFree dram.Time
	draining    bool
	seq         *sequence
}

type bankSt struct {
	open     bool
	row      int
	actAt    dram.Time
	readyACT dram.Time
	readyPRE dram.Time
	readyCol dram.Time
	// reserved marks the bank as owned by a refresh operation or HiRA
	// sequence; demand scheduling skips it.
	reserved bool
	// pendingPRE, when set, schedules an automatic precharge at the given
	// time (used to close rows after standalone refreshes).
	pendingPRE   bool
	pendingPREAt dram.Time
}

type rankSt struct {
	lastACT      dram.Time
	lastACTGroup int
	actTimes     []dram.Time
	refBusy      dram.Time
	refDrain     bool // rank is being drained for a REF
	pendingREF   bool
}

// sequence is a short pre-timed command burst (a HiRA operation). One may
// be active per channel at a time.
type sequence struct {
	cmds   []seqCmd
	rank   int
	next   int
	access bool // second ACT serves a demand access
	// onSecondACT runs when the HiRASecondACT issues (wires up demand
	// request service).
	onSecondACT func(at dram.Time)
	done        func(at dram.Time)
}

type seqCmd struct {
	kind  dram.Kind
	phase dram.HiRAPhase
	rank  int
	bank  int // rank-relative
	row   int
	due   dram.Time
}

// NewController builds a controller with the given refresh engine
// (NoRefresh{} if nil).
func NewController(cfg Config, engine RefreshEngine) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		engine = NoRefresh{}
	}
	c := &Controller{cfg: cfg, engine: engine}
	for ch := 0; ch < cfg.Org.Channels; ch++ {
		cc := &channel{id: ch}
		nb := cfg.Org.BanksPerChannel()
		cc.banks = make([]*bankSt, nb)
		for i := range cc.banks {
			cc.banks[i] = &bankSt{readyACT: 0, readyPRE: 0, readyCol: 0}
		}
		cc.ranks = make([]*rankSt, cfg.Org.RanksPerChannel)
		for i := range cc.ranks {
			cc.ranks[i] = &rankSt{lastACT: -dram.MaxTime()}
		}
		c.chans = append(c.chans, cc)
	}
	return c, nil
}

// Now returns the controller clock.
func (c *Controller) Now() dram.Time { return c.now }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// QueueOccupancy returns current read/write queue depths summed over
// channels.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	for _, ch := range c.chans {
		reads += len(ch.readQ)
		writes += len(ch.writeQ)
	}
	return
}

// Enqueue accepts a request, returning false if the relevant queue is
// full. Writes are acknowledged immediately (write-buffer semantics).
func (c *Controller) Enqueue(req Request) bool {
	ch := c.chans[req.Loc.Channel]
	req.Arrive = c.now
	if req.Write {
		if len(ch.writeQ) >= c.cfg.WriteQueueCap {
			return false
		}
		r := req
		ch.writeQ = append(ch.writeQ, &r)
		c.Stats.Writes++
		return true
	}
	if len(ch.readQ) >= c.cfg.ReadQueueCap {
		return false
	}
	r := req
	ch.readQ = append(ch.readQ, &r)
	return true
}

func (c *Controller) emit(ch *channel, cmd dram.Command) {
	cmd.At = c.now
	cmd.Loc.Channel = ch.id
	ch.lastCmd = c.now
	ch.hasCmd = true
	if c.CommandHook != nil {
		c.CommandHook(cmd)
	}
}

// busFree reports whether the channel command bus can carry a command now.
func (c *Controller) busFree(ch *channel) bool {
	return !ch.hasCmd || c.now-ch.lastCmd >= c.cfg.Timing.TCK
}

// Tick advances the controller by one command clock.
func (c *Controller) Tick() {
	c.engine.Tick(c.now)
	for _, ch := range c.chans {
		c.tickChannel(ch)
	}
	c.now += c.cfg.Timing.TCK
}

func (c *Controller) tickChannel(ch *channel) {
	if !c.busFree(ch) {
		return
	}
	// 1. Active HiRA sequence commands are pre-timed: issue when due.
	if ch.seq != nil {
		if c.issueSeq(ch) {
			return
		}
	}
	// 2. Scheduled automatic precharges (closing standalone refreshes).
	if c.issuePendingPRE(ch) {
		return
	}
	// 3. Rank REF draining and issue.
	if c.issueREFWork(ch) {
		return
	}
	// 4. Engine-mandated refresh operations: several banks may have due
	// refreshes; start the first one that resources allow.
	if ch.seq == nil {
		for _, op := range c.engine.Mandatory(ch.id, c.now) {
			if op.Kind != OpNone && c.startOp(ch, op) {
				return
			}
		}
	}
	// 5. Demand scheduling (FR-FCFS).
	c.scheduleDemand(ch)
}

func (c *Controller) issueSeq(ch *channel) bool {
	s := ch.seq
	cmd := s.cmds[s.next]
	if c.now < cmd.due {
		return false
	}
	bank := c.bank(ch, cmd.rank, cmd.bank)
	c.emit(ch, dram.Command{
		Kind:  cmd.kind,
		Loc:   dram.Location{BankID: dram.BankID{Rank: cmd.rank, Bank: cmd.bank}, Row: cmd.row},
		Phase: cmd.phase,
	})
	switch cmd.kind {
	case dram.KindACT:
		c.Stats.ACTs++
		c.noteACT(ch, cmd.rank, cmd.bank)
		bank.open = true
		bank.row = cmd.row
		bank.actAt = c.now
		bank.readyCol = c.now + c.cfg.Timing.TRCD
		bank.readyPRE = c.now + c.cfg.Timing.TRAS
		bank.readyACT = c.now + c.cfg.Timing.TRC
		if cmd.phase == dram.HiRASecondACT && s.onSecondACT != nil {
			s.onSecondACT(c.now)
		}
		c.engine.NoteActivate(dram.Location{
			BankID: dram.BankID{Channel: ch.id, Rank: cmd.rank, Bank: cmd.bank},
			Row:    cmd.row,
		}, cmd.phase == dram.HiRASecondACT && s.access, c.now)
	case dram.KindPRE:
		c.Stats.PREs++
		if cmd.phase != dram.HiRAInterruptPRE {
			bank.open = false
			bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		} else {
			bank.open = false // reopened by the second ACT
		}
	}
	s.next++
	if s.next == len(s.cmds) {
		if s.done != nil {
			s.done(c.now)
		}
		ch.seq = nil
	}
	return true
}

func (c *Controller) issuePendingPRE(ch *channel) bool {
	for rb, bank := range ch.banks {
		if !bank.pendingPRE || c.now < bank.pendingPREAt || c.now < bank.readyPRE {
			continue
		}
		rank := rb / c.cfg.Org.BanksPerRank()
		b := rb % c.cfg.Org.BanksPerRank()
		c.emit(ch, dram.Command{Kind: dram.KindPRE,
			Loc: dram.Location{BankID: dram.BankID{Rank: rank, Bank: b}}})
		c.Stats.PREs++
		bank.open = false
		bank.pendingPRE = false
		bank.reserved = false
		bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		return true
	}
	return false
}

func (c *Controller) bank(ch *channel, rank, bank int) *bankSt {
	return ch.banks[rank*c.cfg.Org.BanksPerRank()+bank]
}

func (c *Controller) noteACT(ch *channel, rank, bank int) {
	rk := ch.ranks[rank]
	rk.lastACT = c.now
	rk.lastACTGroup = bank / c.cfg.Org.BanksPerGroup
	cut := c.now - c.cfg.Timing.TFAW
	times := rk.actTimes[:0]
	for _, t := range rk.actTimes {
		if t > cut {
			times = append(times, t)
		}
	}
	rk.actTimes = append(times, c.now)
}

// canACT checks rank-level ACT constraints (tRRD_S/tRRD_L, tFAW headroom
// for n more ACTs within the next span) and refresh occupancy.
func (c *Controller) canACT(ch *channel, rank, bank int, n int, span dram.Time) bool {
	rk := ch.ranks[rank]
	if c.now < rk.refBusy || rk.refDrain {
		return false
	}
	need := c.cfg.Timing.TRRD
	if bank/c.cfg.Org.BanksPerGroup == rk.lastACTGroup {
		need = c.cfg.Timing.TRRDL
	}
	if c.now-rk.lastACT < need {
		return false
	}
	// tFAW: every activation — past, planned now, or pre-timed in an
	// active HiRA sequence — must see at most 3 other ACTs in the tFAW
	// window ending at its own issue time. Build the combined timeline
	// (a handful of entries) and check every window that the planned
	// ACTs join.
	times := make([]dram.Time, 0, 8)
	for _, t := range rk.actTimes {
		times = append(times, t)
	}
	if s := ch.seq; s != nil && s.rank == rank {
		for _, sc := range s.cmds[s.next:] {
			if sc.kind == dram.KindACT {
				times = append(times, sc.due)
			}
		}
	}
	times = append(times, c.now)
	if n > 1 {
		times = append(times, c.now+span)
	}
	for _, end := range times {
		if end < c.now-c.cfg.Timing.TFAW {
			continue
		}
		count := 0
		for _, t := range times {
			if t > end-c.cfg.Timing.TFAW && t <= end {
				count++
			}
		}
		if count > 4 {
			return false
		}
	}
	return true
}

func maxTime(a, b dram.Time) dram.Time {
	if a > b {
		return a
	}
	return b
}

var errQueueFull = fmt.Errorf("sched: queue full")
