package sched

import "hira/internal/dram"

// scheduleDemandRef is the seed's FR-FCFS implementation: three linear
// scans over the arrival-ordered queue. It is retained as the behavioral
// reference for the optimized per-bank scheduler (select it with
// Config.Reference) and is held equal to it, command for command and stat
// for stat, by the differential tests.
func (c *Controller) scheduleDemandRef(ch *channel) {
	k := c.pickQueue(ch)
	if k < 0 {
		return
	}
	q := &ch.q[k]

	// Pass 1 (FR): first-ready row hits — oldest first.
	for n := q.ghead; n != nil; n = n.gnext {
		r := &n.req
		bank := &ch.banks[c.flat(r.Loc.Rank, r.Loc.Bank)]
		if bank.reserved || !bank.open || bank.row != r.Loc.Row {
			continue
		}
		if c.now < bank.readyCol || c.now < ch.ranks[r.Loc.Rank].refBusy {
			continue
		}
		if c.issueColumn(ch, r) {
			c.Stats.RowHits++
			c.removeNode(ch, k, n)
			return
		}
	}

	// Pass 2 (FCFS): oldest request needing an ACT on a closed, ready
	// bank.
	for n := q.ghead; n != nil; n = n.gnext {
		r := &n.req
		bank := &ch.banks[c.flat(r.Loc.Rank, r.Loc.Bank)]
		if bank.reserved || bank.open {
			continue
		}
		if c.now < bank.readyACT {
			continue
		}
		if c.tryActivate(ch, r) {
			return
		}
	}

	// Pass 3: oldest request blocked by a row conflict; close the row if
	// no queued request still hits it (open-row policy). Hits in the
	// other queue must not veto the precharge — a row-hit write would
	// otherwise deadlock conflicting reads below the write-drain
	// watermark.
	for n := q.ghead; n != nil; n = n.gnext {
		r := &n.req
		flat := c.flat(r.Loc.Rank, r.Loc.Bank)
		bank := &ch.banks[flat]
		if bank.reserved || !bank.open || bank.row == r.Loc.Row {
			continue
		}
		if c.now < bank.readyPRE || c.now < ch.ranks[r.Loc.Rank].refBusy {
			continue
		}
		if anyHit(q.ghead, r.Loc.Rank, r.Loc.Bank, bank.row) {
			continue
		}
		c.emit(ch, dram.Command{Kind: dram.KindPRE,
			Loc: dram.Location{BankID: dram.BankID{Rank: r.Loc.Rank, Bank: r.Loc.Bank}}})
		c.Stats.PREs++
		c.Stats.RowMisses++
		c.closeRow(ch, flat)
		bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		return
	}
}

// anyHit reports whether any request in the list targets the open row.
func anyHit(head *reqNode, rank, bank, row int) bool {
	for n := head; n != nil; n = n.gnext {
		if n.req.Loc.Rank == rank && n.req.Loc.Bank == bank && n.req.Loc.Row == row {
			return true
		}
	}
	return false
}
