package sched_test

import (
	"testing"

	"hira/internal/core"
	"hira/internal/dram"
	"hira/internal/sched"
)

// steadyState drives a controller at a stable queue occupancy: the
// request source tops the read/write queues up every tick, so every tick
// exercises the full scheduling path the figure sweeps live in.
type steadyState struct {
	c   *sched.Controller
	org dram.Org
	rng uint64
	tok uint64
}

func newSteadyState(b *testing.B, reference bool, engine func(org dram.Org, tm dram.Timing) sched.RefreshEngine) *steadyState {
	b.Helper()
	org := dram.DefaultOrg()
	org.SubarraysPerBank = 8
	org.RowsPerSubarray = 16
	tm := dram.DDR4_2400(8)
	c, err := sched.NewController(sched.Config{Org: org, Timing: tm, Reference: reference}, engine(org, tm))
	if err != nil {
		b.Fatal(err)
	}
	return &steadyState{c: c, org: org, rng: 0xDECAF}
}

func (s *steadyState) next() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

func (s *steadyState) tick() {
	reads, writes := s.c.QueueOccupancy()
	for reads+writes < 48 {
		s.tok++
		ok := s.c.Enqueue(sched.Request{
			Loc: dram.Location{
				BankID: dram.BankID{Bank: int(s.next() % uint64(s.org.BanksPerRank()))},
				Row:    int(s.next() % 24),
				Col:    int(s.next() % 64),
			},
			Write: s.next()%4 == 0,
			Token: s.tok,
		})
		if !ok {
			break
		}
		reads++
	}
	s.c.Tick()
}

func benchSteadyState(b *testing.B, reference bool, engine func(org dram.Org, tm dram.Timing) sched.RefreshEngine) {
	s := newSteadyState(b, reference, engine)
	// Reach steady state (queues populated, rows open, refresh schedule
	// live) before measuring.
	for i := 0; i < 20000; i++ {
		s.tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tick()
	}
	cmds := s.c.Stats.Reads + s.c.Stats.Writes + s.c.Stats.ACTs + s.c.Stats.PREs + s.c.Stats.REFs
	b.ReportMetric(float64(cmds)/float64(b.N+20000), "cmds/tick")
}

// BenchmarkControllerSteadyState measures one controller tick under
// saturated demand with the conventional refresh engine; allocs/op must
// be ~0 (the freelisted queue nodes, pooled sequences, and scratch
// buffers make the steady state allocation-free).
func BenchmarkControllerSteadyState(b *testing.B) {
	benchSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		return sched.NewBaselineREF(org, tm)
	})
}

// BenchmarkControllerSteadyStateHiRA is the same loop with the HiRA-MC
// engine (periodic row refreshes + PARA), the heaviest per-tick engine.
func BenchmarkControllerSteadyStateHiRA(b *testing.B) {
	benchSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		tm.TREFW = 256 * dram.Microsecond
		m, err := core.New(core.Config{
			Org: org, Timing: tm,
			Periodic: core.PeriodicHiRA, Preventive: core.PreventiveHiRA,
			Pth: 0.1, RefSlack: 2 * tm.TRC,
			SPT:  core.NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7),
			Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

// BenchmarkControllerSteadyStateReference is the seed-style tick-by-tick
// linear-scan path on the same workload, for before/after comparison.
func BenchmarkControllerSteadyStateReference(b *testing.B) {
	benchSteadyState(b, true, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		return sched.NewBaselineREF(org, tm)
	})
}

// BenchmarkControllerSteadyStateGraphene runs the counter-table zoo
// engine in the same loop; the Misra-Gries update on every demand ACT and
// the fixed victim rings must keep the steady state allocation-free.
func BenchmarkControllerSteadyStateGraphene(b *testing.B) {
	benchSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		g, err := core.NewGraphene(core.GrapheneConfig{Org: org, Timing: tm, NRH: 1024, Counters: 32})
		if err != nil {
			b.Fatal(err)
		}
		return g
	})
}

// BenchmarkControllerSteadyStateRFM is the same loop with the RFM-style
// activation-budget engine.
func BenchmarkControllerSteadyStateRFM(b *testing.B) {
	benchSteadyState(b, false, func(org dram.Org, tm dram.Timing) sched.RefreshEngine {
		f, err := core.NewRFM(core.RFMConfig{Org: org, Timing: tm, RAAIMT: 4096})
		if err != nil {
			b.Fatal(err)
		}
		return f
	})
}
