package sched

import "hira/internal/dram"

// scheduleDemand implements FR-FCFS with the open-row policy over the
// channel's read and write queues.
func (c *Controller) scheduleDemand(ch *channel) {
	// Write drain hysteresis: serve writes when the write queue is high
	// or there is nothing else to do.
	if ch.draining {
		if len(ch.writeQ) <= c.cfg.WriteLow {
			ch.draining = false
		}
	} else if len(ch.writeQ) >= c.cfg.WriteHigh || (len(ch.readQ) == 0 && len(ch.writeQ) > 0) {
		ch.draining = true
	}

	q := &ch.readQ
	if ch.draining {
		q = &ch.writeQ
	}
	if len(*q) == 0 {
		if !ch.draining && len(ch.writeQ) > 0 {
			q = &ch.writeQ
		} else {
			return
		}
	}

	// Pass 1 (FR): first-ready row hits — oldest first.
	for i, r := range *q {
		bank := c.bank(ch, r.Loc.Rank, r.Loc.Bank)
		if bank.reserved || !bank.open || bank.row != r.Loc.Row {
			continue
		}
		if c.now < bank.readyCol || c.now < ch.ranks[r.Loc.Rank].refBusy {
			continue
		}
		if c.issueColumn(ch, r) {
			c.Stats.RowHits++
			removeAt(q, i)
			return
		}
	}

	// Pass 2 (FCFS): oldest request needing an ACT on a closed, ready
	// bank.
	for i, r := range *q {
		bank := c.bank(ch, r.Loc.Rank, r.Loc.Bank)
		if bank.reserved || bank.open {
			continue
		}
		if c.now < bank.readyACT {
			continue
		}
		if c.tryActivate(ch, q, i, r) {
			return
		}
	}

	// Pass 3: oldest request blocked by a row conflict; close the row if
	// no queued request still hits it (open-row policy).
	for _, r := range *q {
		bank := c.bank(ch, r.Loc.Rank, r.Loc.Bank)
		if bank.reserved || !bank.open || bank.row == r.Loc.Row {
			continue
		}
		if c.now < bank.readyPRE || c.now < ch.ranks[r.Loc.Rank].refBusy {
			continue
		}
		// Open-row policy: keep the row open only while requests in the
		// queue currently being served still hit it. (Hits in the other
		// queue must not veto the precharge — a row-hit write would
		// otherwise deadlock conflicting reads below the write-drain
		// watermark.)
		if anyHit(*q, r.Loc.Rank, r.Loc.Bank, bank.row) {
			continue
		}
		c.emit(ch, dram.Command{Kind: dram.KindPRE,
			Loc: dram.Location{BankID: dram.BankID{Rank: r.Loc.Rank, Bank: r.Loc.Bank}}})
		c.Stats.PREs++
		c.Stats.RowMisses++
		bank.open = false
		bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
		return
	}
}

// tryActivate issues the ACT for request r, possibly as a HiRA prologue
// hiding a refresh (refresh-access parallelization). Returns true if a
// command was issued.
func (c *Controller) tryActivate(ch *channel, q *[]*Request, i int, r *Request) bool {
	t := c.cfg.Timing
	// Ask the engine for a piggyback row (Case 1 of §5.1.3).
	if ch.seq == nil {
		if row, ok := c.engine.Piggyback(dram.Location{
			BankID: dram.BankID{Channel: ch.id, Rank: r.Loc.Rank, Bank: r.Loc.Bank},
			Row:    r.Loc.Row,
		}, c.now); ok {
			// Two activations t1+t2 apart: check power headroom for both.
			if c.canACT(ch, r.Loc.Rank, r.Loc.Bank, 2, t.T1+t.T2) {
				c.startHiRASequence(ch, r.Loc.Rank, r.Loc.Bank, row, r.Loc.Row, true, nil)
				c.Stats.HiRAPiggybacks++
				c.engine.NoteRefreshed(Op{Kind: OpRowRefresh, Rank: r.Loc.Rank, Bank: r.Loc.Bank, RowA: row},
					ch.id, c.now)
				return true
			}
		}
	}
	// A HiRA sequence's pre-timed ACTs must not race demand ACTs on the
	// same rank: the demand ACT must satisfy tRRD against the sequence's
	// pending activations (an ACT to a different bank group may legally
	// slot into the t1+t2 gap).
	if s := ch.seq; s != nil && s.rank == r.Loc.Rank {
		for _, sc := range s.cmds[s.next:] {
			if sc.kind != dram.KindACT {
				continue
			}
			need := t.TRRD
			if sc.bank/c.cfg.Org.BanksPerGroup == r.Loc.Bank/c.cfg.Org.BanksPerGroup {
				need = t.TRRDL
			}
			if sc.due-c.now < need {
				c.Stats.SeqBlocked++
				return false
			}
		}
	}
	if !c.canACT(ch, r.Loc.Rank, r.Loc.Bank, 1, 0) {
		c.Stats.CanACTBlocked++
		return false
	}
	bank := c.bank(ch, r.Loc.Rank, r.Loc.Bank)
	c.emit(ch, dram.Command{Kind: dram.KindACT, Loc: r.Loc})
	c.Stats.ACTs++
	c.Stats.RowMisses++
	c.noteACT(ch, r.Loc.Rank, r.Loc.Bank)
	bank.open = true
	bank.row = r.Loc.Row
	bank.actAt = c.now
	bank.readyCol = c.now + t.TRCD
	bank.readyPRE = c.now + t.TRAS
	bank.readyACT = c.now + t.TRC
	c.engine.NoteActivate(dram.Location{
		BankID: dram.BankID{Channel: ch.id, Rank: r.Loc.Rank, Bank: r.Loc.Bank},
		Row:    r.Loc.Row,
	}, true, c.now)
	return true
}

// issueColumn issues the RD or WR for a request whose row is open. Returns
// false if the data bus cannot carry the burst.
func (c *Controller) issueColumn(ch *channel, r *Request) bool {
	t := c.cfg.Timing
	var dataAt dram.Time
	if r.Write {
		dataAt = c.now + t.CWL
	} else {
		dataAt = c.now + t.CL
	}
	if ch.dataBusFree > dataAt {
		return false
	}
	bank := c.bank(ch, r.Loc.Rank, r.Loc.Bank)
	kind := dram.KindRD
	if r.Write {
		kind = dram.KindWR
	}
	c.emit(ch, dram.Command{Kind: kind, Loc: r.Loc})
	ch.dataBusFree = dataAt + t.TBL
	bank.readyCol = c.now + t.TCCD
	if r.Write {
		bank.readyPRE = maxTime(bank.readyPRE, c.now+t.CWL+t.TBL+t.TWR)
	} else {
		bank.readyPRE = maxTime(bank.readyPRE, c.now+t.TRTP)
		c.Stats.Reads++
		c.Stats.ReadCount++
		c.Stats.ReadLatencySum += dataAt + t.TBL - r.Arrive
		if c.OnComplete != nil {
			c.OnComplete(r.Core, r.Token, dataAt+t.TBL)
		}
	}
	return true
}

// anyHit reports whether any request in q targets the open row.
func anyHit(q []*Request, rank, bank, row int) bool {
	for _, r := range q {
		if r.Loc.Rank == rank && r.Loc.Bank == bank && r.Loc.Row == row {
			return true
		}
	}
	return false
}

func removeAt(q *[]*Request, i int) {
	*q = append((*q)[:i], (*q)[i+1:]...)
}

// startHiRASequence begins the pre-timed ACT(RowA)-PRE-ACT(RowB) burst on
// a precharged bank. If access is true, RowB is a demand row that will be
// readable tRCD after the second ACT; otherwise RowB is also being
// refreshed and a closing precharge is scheduled tRAS after the second
// ACT (refresh-refresh parallelization; one PRE closes both rows).
func (c *Controller) startHiRASequence(ch *channel, rank, bank, rowA, rowB int, access bool, done func(dram.Time)) {
	t := c.cfg.Timing
	bk := c.bank(ch, rank, bank)
	cmds := []seqCmd{
		{kind: dram.KindACT, phase: dram.HiRAFirstACT, rank: rank, bank: bank, row: rowA, due: c.now},
		{kind: dram.KindPRE, phase: dram.HiRAInterruptPRE, rank: rank, bank: bank, row: rowA, due: c.now + t.T1},
		{kind: dram.KindACT, phase: dram.HiRASecondACT, rank: rank, bank: bank, row: rowB, due: c.now + t.T1 + t.T2},
	}
	s := &sequence{cmds: cmds, rank: rank, access: access, done: done}
	bk.reserved = true
	secondAt := c.now + t.T1 + t.T2
	if access {
		// The demand row becomes schedulable once the second ACT issues.
		s.onSecondACT = func(at dram.Time) { bk.reserved = false }
	} else {
		// Schedule the closing precharge tRAS after the second ACT; it
		// clears the reservation.
		s.onSecondACT = func(at dram.Time) {
			bk.pendingPRE = true
			bk.pendingPREAt = secondAt + t.TRAS
		}
	}
	ch.seq = s
	// The caller holds this tick's command-bus slot: issue the first ACT
	// immediately so t1 is measured from the sequence's real start.
	c.issueSeq(ch)
}
