package sched

import "hira/internal/dram"

// drainWillFlip reports whether the next pickQueue evaluation would
// change ch.draining with the queues as they are — the hysteresis
// transition condition, shared with the idle skipper, which must not
// sleep across a phase change.
func (c *Controller) drainWillFlip(ch *channel) bool {
	readN, writeN := ch.q[qRead].count, ch.q[qWrite].count
	if ch.draining {
		return writeN <= c.cfg.WriteLow
	}
	return writeN >= c.cfg.WriteHigh || (readN == 0 && writeN > 0)
}

// pickQueue applies the write-drain hysteresis and returns the queue kind
// to serve, or -1 if there is nothing to do. Writes are served when the
// write queue is high or there is nothing else to do.
func (c *Controller) pickQueue(ch *channel) int {
	if c.drainWillFlip(ch) {
		ch.draining = !ch.draining
	}
	k := qRead
	if ch.draining {
		k = qWrite
	}
	if ch.q[k].count == 0 {
		if !ch.draining && ch.q[qWrite].count > 0 {
			return qWrite
		}
		return -1
	}
	return k
}

// scheduleDemand implements FR-FCFS with the open-row policy over the
// channel's read and write queues, using the per-bank buckets so each
// pass costs O(banks with work) instead of O(queue depth). It is
// command-for-command identical to the seed-style linear scans in
// scheduleDemandRef (proved by TestControllerDifferential).
//
// One fused scan over the banks classifies each bank's work into the
// three passes: the oldest row hit (pass 1), per-bank cursors for the
// FCFS activation walk (pass 2), and the oldest conflict on a bank with
// no remaining hits (pass 3). Eligibility is a bank-level property, so
// classifying heads is enough; time-guard failures record wake-up events
// for the idle skipper.
func (c *Controller) scheduleDemand(ch *channel) {
	k := c.pickQueue(ch)
	if k < 0 {
		return
	}
	q := &ch.q[k]
	t := &c.cfg.Timing

	var hitBest, preBest *reqNode
	preFlat := -1
	cur := ch.cursors[:0]
	for _, flat := range q.active {
		bank := &ch.banks[flat]
		bq := &bank.bq[k]
		head := bq.head
		if bank.reserved {
			continue // freed by sequence/pending-PRE events
		}
		if !bank.open {
			if c.now < bank.readyACT {
				c.noteEvt(bank.readyACT)
				continue
			}
			cur = append(cur, p2cursor{node: head, flat: flat, left: bq.n})
			continue
		}
		rk := &ch.ranks[c.rankOf[flat]]
		if bq.hits > 0 {
			if c.now < bank.readyCol || c.now < rk.refBusy {
				c.noteEvt(bank.readyCol)
				c.noteEvt(rk.refBusy)
				continue
			}
			n := head
			for n.req.Loc.Row != bank.row {
				n = n.bnext
			}
			if hitBest == nil || n.seq < hitBest.seq {
				hitBest = n
			}
		} else {
			// No queued request of this bank targets the open row, so
			// every one of them conflicts and the oldest is the head.
			// Hits in the other queue must not veto the precharge — a
			// row-hit write would otherwise deadlock conflicting reads
			// below the write-drain watermark.
			if c.now < bank.readyPRE || c.now < rk.refBusy {
				c.noteEvt(bank.readyPRE)
				c.noteEvt(rk.refBusy)
				continue
			}
			if preBest == nil || head.seq < preBest.seq {
				preBest, preFlat = head, flat
			}
		}
	}

	// Pass 1 (FR): the oldest ready row hit. All requests in one queue
	// are the same kind, so burst start times coincide and a busy data
	// bus fails every candidate alike.
	if hitBest != nil {
		if c.issueColumn(ch, &hitBest.req) {
			c.Stats.RowHits++
			c.removeNode(ch, k, hitBest)
			return
		}
		lat := t.CL
		if k == qWrite {
			lat = t.CWL
		}
		c.noteEvt(ch.dataBusFree - lat)
	}

	// Pass 2 (FCFS): merge-walk the closed ready banks' FIFOs in arrival
	// order; like the seed's linear pass, a failed activation attempt
	// moves on to the next request rather than giving up. A canACT memo
	// prunes the walk: once an attempt fails for a rank (or for a rank's
	// same-group banks), every remaining request it covers is known to
	// fail identically, so only the blocked counter advances for them —
	// the engine-visible outcome matches attempting each one.
	if len(cur) > 0 {
		memo := ch.seq == nil
		for r := range ch.p2FailAll {
			ch.p2FailAll[r] = false
			ch.p2FailL[r] = false
		}
		parked := ch.parked[:0]
		for len(cur) > 0 {
			mi := 0
			for i := 1; i < len(cur); i++ {
				if cur[i].node.seq < cur[mi].node.seq {
					mi = i
				}
			}
			cu := cur[mi]
			n := cu.node
			rank := n.req.Loc.Rank
			sameGroup := n.req.Loc.Bank/c.cfg.Org.BanksPerGroup == ch.ranks[rank].lastACTGroup
			if memo && (ch.p2FailAll[rank] || (sameGroup && ch.p2FailL[rank])) {
				// A previous attempt already diagnosed this bank's wall;
				// park it. Its requests are counted in bulk once the
				// walk's stopping point is known — every one of them
				// would fail identically, so no attempt is re-run.
				parked = append(parked, cu)
				cur[mi] = cur[len(cur)-1]
				cur = cur[:len(cur)-1]
				continue
			}
			if c.tryActivate(ch, &n.req) {
				// The per-request reference walk stops exactly here:
				// parked requests older than the issuing one were
				// attempted (and counted blocked) before it, younger
				// ones were never reached.
				for _, p := range parked {
					for pn := p.node; pn != nil && pn.seq < n.seq; pn = pn.bnext {
						c.Stats.CanACTBlocked++
					}
				}
				ch.parked = parked[:0]
				return
			}
			if memo {
				// With no sequence active the only shared failure mode
				// is canACT, whose verdict spans the rank (or its
				// same-group banks).
				if sameGroup {
					ch.p2FailL[rank] = true
				} else {
					ch.p2FailAll[rank] = true
				}
				if n.bnext != nil {
					parked = append(parked, p2cursor{node: n.bnext, flat: cu.flat, left: cu.left - 1})
				}
				cur[mi] = cur[len(cur)-1]
				cur = cur[:len(cur)-1]
				continue
			}
			if n.bnext != nil {
				cur[mi].node = n.bnext
				cur[mi].left--
			} else {
				cur[mi] = cur[len(cur)-1]
				cur = cur[:len(cur)-1]
			}
		}
		// No activation issued: the reference walk attempted (and
		// counted) every request of every eligible bank.
		for _, p := range parked {
			c.Stats.CanACTBlocked += uint64(p.left)
		}
		ch.parked = parked[:0]
	}

	// Pass 3: close the oldest conflicting bank's row (open-row policy).
	if preBest != nil {
		r := &preBest.req
		c.emit(ch, dram.Command{Kind: dram.KindPRE,
			Loc: dram.Location{BankID: dram.BankID{Rank: r.Loc.Rank, Bank: r.Loc.Bank}}})
		c.Stats.PREs++
		c.Stats.RowMisses++
		c.closeRow(ch, preFlat)
		bank := &ch.banks[preFlat]
		bank.readyACT = maxTime(bank.readyACT, c.now+t.TRP)
	}
}

// tryActivate issues the ACT for request r, possibly as a HiRA prologue
// hiding a refresh (refresh-access parallelization). Returns true if a
// command was issued.
func (c *Controller) tryActivate(ch *channel, r *Request) bool {
	t := c.cfg.Timing
	// Ask the engine for a piggyback row (Case 1 of §5.1.3).
	if ch.seq == nil {
		if row, preventive, ok := c.engine.Piggyback(dram.Location{
			BankID: dram.BankID{Channel: ch.id, Rank: r.Loc.Rank, Bank: r.Loc.Bank},
			Row:    r.Loc.Row,
		}, c.now); ok {
			// Two activations t1+t2 apart: check power headroom for both.
			if c.canACT(ch, r.Loc.Rank, r.Loc.Bank, 2, t.T1+t.T2) {
				if c.forensics != nil {
					c.forensics.classifyRefresh(ch.id, c.flat(r.Loc.Rank, r.Loc.Bank),
						row, preventive, true)
				}
				c.startHiRASequence(ch, r.Loc.Rank, r.Loc.Bank, row, r.Loc.Row, true)
				c.Stats.HiRAPiggybacks++
				c.engine.NoteRefreshed(Op{Kind: OpRowRefresh, Rank: r.Loc.Rank, Bank: r.Loc.Bank, RowA: row},
					ch.id, c.now)
				return true
			}
		}
	}
	// A HiRA sequence's pre-timed ACTs must not race demand ACTs on the
	// same rank: the demand ACT must satisfy tRRD against the sequence's
	// pending activations (an ACT to a different bank group may legally
	// slot into the t1+t2 gap).
	if s := ch.seq; s != nil && s.rank == r.Loc.Rank {
		for _, sc := range s.cmds[s.next:s.n] {
			if sc.kind != dram.KindACT {
				continue
			}
			need := t.TRRD
			if sc.bank/c.cfg.Org.BanksPerGroup == r.Loc.Bank/c.cfg.Org.BanksPerGroup {
				need = t.TRRDL
			}
			if sc.due-c.now < need {
				c.Stats.SeqBlocked++
				return false
			}
		}
	}
	if !c.canACT(ch, r.Loc.Rank, r.Loc.Bank, 1, 0) {
		c.Stats.CanACTBlocked++
		return false
	}
	flat := c.flat(r.Loc.Rank, r.Loc.Bank)
	bank := &ch.banks[flat]
	c.emit(ch, dram.Command{Kind: dram.KindACT, Loc: r.Loc})
	c.Stats.ACTs++
	c.Stats.RowMisses++
	c.noteACT(ch, r.Loc.Rank, r.Loc.Bank)
	c.openRow(ch, flat, r.Loc.Row)
	bank.actAt = c.now
	bank.readyCol = c.now + t.TRCD
	bank.readyPRE = c.now + t.TRAS
	bank.readyACT = c.now + t.TRC
	if c.forensics != nil {
		c.forensics.demandACT(ch.id, flat, r.Loc.Row)
	}
	c.engine.NoteActivate(dram.Location{
		BankID: dram.BankID{Channel: ch.id, Rank: r.Loc.Rank, Bank: r.Loc.Bank},
		Row:    r.Loc.Row,
	}, true, c.now)
	return true
}

// issueColumn issues the RD or WR for a request whose row is open. Returns
// false if the data bus cannot carry the burst.
func (c *Controller) issueColumn(ch *channel, r *Request) bool {
	t := c.cfg.Timing
	var dataAt dram.Time
	if r.Write {
		dataAt = c.now + t.CWL
	} else {
		dataAt = c.now + t.CL
	}
	if ch.dataBusFree > dataAt {
		return false
	}
	bank := &ch.banks[c.flat(r.Loc.Rank, r.Loc.Bank)]
	kind := dram.KindRD
	if r.Write {
		kind = dram.KindWR
	}
	c.emit(ch, dram.Command{Kind: kind, Loc: r.Loc})
	ch.dataBusFree = dataAt + t.TBL
	bank.readyCol = c.now + t.TCCD
	if r.Write {
		bank.readyPRE = maxTime(bank.readyPRE, c.now+t.CWL+t.TBL+t.TWR)
	} else {
		bank.readyPRE = maxTime(bank.readyPRE, c.now+t.TRTP)
		c.Stats.Reads++
		c.Stats.ReadCount++
		c.Stats.ReadLatencySum += dataAt + t.TBL - r.Arrive
		if c.OnComplete != nil {
			c.OnComplete(r.Core, r.Token, dataAt+t.TBL)
		}
	}
	return true
}

// startHiRASequence begins the pre-timed ACT(RowA)-PRE-ACT(RowB) burst on
// a precharged bank. If access is true, RowB is a demand row that will be
// readable tRCD after the second ACT; otherwise RowB is also being
// refreshed and a closing precharge is scheduled tRAS after the second
// ACT (refresh-refresh parallelization; one PRE closes both rows).
func (c *Controller) startHiRASequence(ch *channel, rank, bank, rowA, rowB int, access bool) {
	t := c.cfg.Timing
	flat := c.flat(rank, bank)
	s := &ch.seqStore
	s.cmds[0] = seqCmd{kind: dram.KindACT, phase: dram.HiRAFirstACT, rank: rank, bank: bank, row: rowA, due: c.now}
	s.cmds[1] = seqCmd{kind: dram.KindPRE, phase: dram.HiRAInterruptPRE, rank: rank, bank: bank, row: rowA, due: c.now + t.T1}
	s.cmds[2] = seqCmd{kind: dram.KindACT, phase: dram.HiRASecondACT, rank: rank, bank: bank, row: rowB, due: c.now + t.T1 + t.T2}
	s.n, s.next = 3, 0
	s.rank, s.flat, s.access = rank, flat, access
	s.plannedSecond = c.now + t.T1 + t.T2
	ch.banks[flat].reserved = true
	ch.seq = s
	// The caller holds this tick's command-bus slot: issue the first ACT
	// immediately so t1 is measured from the sequence's real start.
	c.issueSeq(ch)
}
