package sched_test

// Differential proof for the event-driven scheduler core: the optimized
// controller (per-bank indexed queues, idle-tick skipping, canACT
// memoization, pooled sequences) must emit exactly the same dram.Command
// stream and sched.Stats as the seed-style tick-by-tick reference
// (Config.Reference) for every refresh policy the figures exercise.

import (
	"testing"

	"hira/internal/core"
	"hira/internal/dram"
	"hira/internal/sched"
	"hira/internal/workload"
)

// diffOrg is small enough for fast runs but keeps multiple channels,
// ranks, and bank groups in play (several of the historical skip bugs —
// stale engine events masking another bank's arming time, write-drain
// hysteresis phase drift — only surfaced with more than one channel).
func diffOrg() dram.Org {
	o := dram.DefaultOrg()
	o.SubarraysPerBank = 8
	o.RowsPerSubarray = 16 // 128 rows per bank
	o.Channels = 2
	o.RanksPerChannel = 2
	return o
}

func diffTiming() dram.Timing {
	t := dram.DDR4_2400(8)
	// Shrink the retention window so periodic refresh work is dense in a
	// short run.
	t.TREFW = 256 * dram.Microsecond
	return t
}

// diffEngine builds a fresh refresh engine for one controller instance;
// both controllers of a pair get identically configured engines.
type diffPolicy struct {
	name string
	mk   func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine
}

func diffPolicies() []diffPolicy {
	mkCore := func(cfg core.Config) func(*testing.T, dram.Org, dram.Timing) sched.RefreshEngine {
		return func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine {
			cfg := cfg
			cfg.Org = org
			cfg.Timing = tm
			if cfg.Periodic == core.PeriodicHiRA || cfg.Preventive == core.PreventiveHiRA {
				cfg.SPT = core.NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
			}
			m, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	return []diffPolicy{
		{"NoRefresh", func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine {
			return sched.NoRefresh{}
		}},
		{"Baseline", func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine {
			return sched.NewBaselineREF(org, tm)
		}},
		{"HiRA-2", mkCore(core.Config{Periodic: core.PeriodicHiRA, Seed: 11})},
		{"PARA", mkCore(core.Config{
			Periodic: core.PeriodicREF, Preventive: core.PreventiveImmediate, Pth: 0.3, Seed: 11})},
		{"PARA+HiRA-4", mkCore(core.Config{
			Periodic: core.PeriodicREF, Preventive: core.PreventiveHiRA, Pth: 0.3, Seed: 11})},
		{"Graphene", func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine {
			g, err := core.NewGraphene(core.GrapheneConfig{Org: org, Timing: tm, NRH: 64, Counters: 8})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"RFM", func(t *testing.T, org dram.Org, tm dram.Timing) sched.RefreshEngine {
			f, err := core.NewRFM(core.RFMConfig{Org: org, Timing: tm, RAAIMT: 64})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}},
	}
}

// diffDrive replays one deterministic mixed read/write request schedule
// against a controller, returning the emitted command stream. Enqueue
// results are also recorded (queue-full rejections must coincide).
func diffDrive(t *testing.T, c *sched.Controller, org dram.Org, ticks int) ([]dram.Command, []bool) {
	t.Helper()
	var cmds []dram.Command
	c.CommandHook = func(cmd dram.Command) { cmds = append(cmds, cmd) }
	var accepts []bool
	rng := uint64(0xC0FFEE)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	tok := uint64(0)
	for i := 0; i < ticks; i++ {
		// Phase-modulated arrivals: bursty mixed traffic, then
		// write-only stretches (which park the read queue at zero and
		// walk the drain hysteresis through its oscillating regime),
		// then silence. Queues cycle between full, draining, and empty —
		// the regimes where the idle skipper and write hysteresis
		// engage.
		phase := (i / 512) % 4
		n := 0
		switch next() % 8 {
		case 0, 1:
			n = 1
		case 2:
			n = 3
		case 3:
			n = 8 // burst: drives the queues toward full
		}
		if phase == 3 {
			n = 0 // silence: queues drain dry
		}
		for j := 0; j < n; j++ {
			tok++
			write := next()%3 == 0
			if phase == 2 {
				write = true
			}
			// Few rows per bank: frequent row hits and conflicts.
			loc := dram.Location{
				BankID: dram.BankID{
					Channel: int(next() % uint64(org.Channels)),
					Rank:    int(next() % uint64(org.RanksPerChannel)),
					Bank:    int(next() % uint64(org.BanksPerRank())),
				},
				Row: int(next() % 12),
				Col: int(next() % 64),
			}
			accepts = append(accepts, c.Enqueue(sched.Request{
				Loc: loc, Write: write, Core: 0, Token: tok,
			}))
		}
		c.Tick()
	}
	// Drain with no further arrivals: long idle windows with refresh-only
	// traffic, the deepest skip territory.
	for i := 0; i < ticks/2; i++ {
		c.Tick()
	}
	return cmds, accepts
}

func TestControllerDifferential(t *testing.T) {
	org := diffOrg()
	tm := diffTiming()
	ticks := 120000
	if testing.Short() {
		ticks = 30000
	}
	for _, pol := range diffPolicies() {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			run := func(reference bool) ([]dram.Command, []bool, sched.Stats, dram.Time) {
				c, err := sched.NewController(
					sched.Config{Org: org, Timing: tm, Reference: reference}, pol.mk(t, org, tm))
				if err != nil {
					t.Fatal(err)
				}
				cmds, accepts := diffDrive(t, c, org, ticks)
				return cmds, accepts, c.Stats, c.Now()
			}
			refCmds, refAcc, refStats, refNow := run(true)
			optCmds, optAcc, optStats, optNow := run(false)

			if len(refCmds) == 0 {
				t.Fatal("reference run emitted no commands; the workload is not driving the controller")
			}
			if optNow != refNow {
				t.Fatalf("clocks diverged: ref %v opt %v", refNow, optNow)
			}
			if len(optCmds) != len(refCmds) {
				t.Fatalf("command counts diverged: ref %d opt %d", len(refCmds), len(optCmds))
			}
			for i := range refCmds {
				if optCmds[i] != refCmds[i] {
					t.Fatalf("command %d diverged:\nref: %+v\nopt: %+v", i, refCmds[i], optCmds[i])
				}
			}
			if len(optAcc) != len(refAcc) {
				t.Fatalf("enqueue counts diverged: ref %d opt %d", len(refAcc), len(optAcc))
			}
			for i := range refAcc {
				if optAcc[i] != refAcc[i] {
					t.Fatalf("enqueue acceptance %d diverged: ref %v opt %v", i, refAcc[i], optAcc[i])
				}
			}
			if optStats != refStats {
				t.Fatalf("stats diverged:\nref: %+v\nopt: %+v", refStats, optStats)
			}
		})
	}
}

// diffDriveSource replays a workload source's access stream against a
// controller, approximating a 4-wide core: each tick spends up to four
// instruction slots on the stream's gaps, then tries to enqueue the next
// access through the MOP mapper. A rejected enqueue retries next tick
// (exactly as the cpu model does), so each run's request schedule is a
// deterministic function of its own controller's queue state — if ref
// and opt diverge there, the acceptance comparison catches it.
func diffDriveSource(t *testing.T, c *sched.Controller, org dram.Org, src workload.Source, seed uint64, ticks int) ([]dram.Command, []bool) {
	t.Helper()
	var cmds []dram.Command
	c.CommandHook = func(cmd dram.Command) { cmds = append(cmds, cmd) }
	var accepts []bool
	stream := src.Stream(seed)
	mapper := dram.NewMOPMapper(org)
	gap := 0
	var pending *workload.Access
	tok := uint64(0)
	for i := 0; i < ticks; i++ {
		budget := 4
		for budget > 0 {
			if gap > 0 {
				n := gap
				if n > budget {
					n = budget
				}
				gap -= n
				budget -= n
				continue
			}
			if pending == nil {
				a := stream.Next()
				pending = &a
				// Compress gaps so even moderate-MPKI sources keep the
				// queues busy enough to exercise drain/skip regimes.
				gap = a.Gap / 8
				continue
			}
			tok++
			ok := c.Enqueue(sched.Request{
				Loc: mapper.Map(pending.Addr), Write: pending.Write, Core: 0, Token: tok,
			})
			accepts = append(accepts, ok)
			if !ok {
				break // queue full: retry next tick
			}
			pending = nil
			budget--
		}
		c.Tick()
	}
	// Drain with no further arrivals: refresh-only idle territory.
	for i := 0; i < ticks/2; i++ {
		c.Tick()
	}
	return cmds, accepts
}

// TestControllerDifferentialWorkloads re-proves the bit-identical
// guarantee of the event-driven scheduler on the new workload paths:
// request schedules derived from a user-defined custom profile and from
// a recorded trace (replayed through the trace player), not just the
// synthetic schedules of TestControllerDifferential.
func TestControllerDifferentialWorkloads(t *testing.T) {
	custom := workload.Profile{Name: "hot-random", MPKI: 80, RowLocality: 0.1, FootprintMB: 4, WriteFrac: 0.5}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	trace, err := workload.Record("hot-random-rec", custom, 99, 40000)
	if err != nil {
		t.Fatal(err)
	}
	streamy := workload.Profile{Name: "streamy", MPKI: 30, RowLocality: 0.9, FootprintMB: 16, WriteFrac: 0.2}
	org := diffOrg()
	// A many-sided hammering source: row-conflict-dense, read-only, with a
	// duty cycle and decoy rows — the access pattern most likely to expose
	// a divergence in the event-driven scheduler's ACT bookkeeping.
	attack, err := workload.NewAttack(workload.AttackSpec{
		Kind: workload.AttackMany, VictimRow: 64, Aggressors: 5,
		BurstAccesses: 32, IdleGap: 400, Decoys: 1,
	}, org)
	if err != nil {
		t.Fatal(err)
	}
	sources := []struct {
		name string
		src  workload.Source
	}{
		{"custom-profile", custom},
		{"custom-streamy", streamy},
		{"trace", trace},
		{"attack-many", attack},
	}

	tm := diffTiming()
	ticks := 60000
	if testing.Short() {
		ticks = 20000
	}
	for _, pol := range diffPolicies() {
		for _, s := range sources {
			pol, s := pol, s
			t.Run(pol.name+"/"+s.name, func(t *testing.T) {
				t.Parallel()
				run := func(reference bool) ([]dram.Command, []bool, sched.Stats) {
					c, err := sched.NewController(
						sched.Config{Org: org, Timing: tm, Reference: reference}, pol.mk(t, org, tm))
					if err != nil {
						t.Fatal(err)
					}
					cmds, accepts := diffDriveSource(t, c, org, s.src, 5, ticks)
					return cmds, accepts, c.Stats
				}
				refCmds, refAcc, refStats := run(true)
				optCmds, optAcc, optStats := run(false)
				if len(refCmds) == 0 {
					t.Fatal("reference run emitted no commands; the workload is not driving the controller")
				}
				if len(optCmds) != len(refCmds) {
					t.Fatalf("command counts diverged: ref %d opt %d", len(refCmds), len(optCmds))
				}
				for i := range refCmds {
					if optCmds[i] != refCmds[i] {
						t.Fatalf("command %d diverged:\nref: %+v\nopt: %+v", i, refCmds[i], optCmds[i])
					}
				}
				if len(optAcc) != len(refAcc) {
					t.Fatalf("enqueue counts diverged: ref %d opt %d", len(refAcc), len(optAcc))
				}
				for i := range refAcc {
					if optAcc[i] != refAcc[i] {
						t.Fatalf("enqueue acceptance %d diverged: ref %v opt %v", i, refAcc[i], optAcc[i])
					}
				}
				if optStats != refStats {
					t.Fatalf("stats diverged:\nref: %+v\nopt: %+v", refStats, optStats)
				}
			})
		}
	}
}

// TestControllerDifferentialVerified re-runs one HiRA configuration with
// the timing verifier and refresh auditor attached to the optimized path,
// so skipping cannot hide a timing violation the reference would commit
// identically.
func TestControllerDifferentialVerified(t *testing.T) {
	org := diffOrg()
	tm := diffTiming()
	eng := diffPolicies()[2] // HiRA-2
	c, err := sched.NewController(sched.Config{Org: org, Timing: tm}, eng.mk(t, org, tm))
	if err != nil {
		t.Fatal(err)
	}
	v := dram.NewVerifier(org, tm)
	v.MaxT1 = tm.T1 + tm.TCK
	v.MaxT2 = tm.T2 + tm.TCK
	c.CommandHook = func(cmd dram.Command) { v.Check(cmd) }
	rng := uint64(5)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 150000; i++ {
		if i%5 == 0 {
			c.Enqueue(sched.Request{Loc: dram.Location{
				BankID: dram.BankID{
					Rank: int(next() % uint64(org.RanksPerChannel)),
					Bank: int(next() % uint64(org.BanksPerRank())),
				},
				Row: int(next() % uint64(org.RowsPerBank())),
			}, Write: next()%4 == 0, Token: uint64(i)})
		}
		c.Tick()
	}
	if err := v.Err(); err != nil {
		t.Fatalf("timing violation on optimized path: %v", err)
	}
}
