package sched

import (
	"hira/internal/dram"
	"hira/internal/snap"
)

// Sub returns the per-field difference s - o. Every Stats field is a
// monotone additive counter (the scheduler only ever increments them, and
// idle-skip replay adds precomputed deltas), so the difference between
// two cumulative snapshots of one run equals the stats of the interval
// between them exactly — the identity the resumable cell runner relies on
// to report measured-phase stats without resetting mid-run state.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:               s.Reads - o.Reads,
		Writes:              s.Writes - o.Writes,
		RowHits:             s.RowHits - o.RowHits,
		RowMisses:           s.RowMisses - o.RowMisses,
		ACTs:                s.ACTs - o.ACTs,
		PREs:                s.PREs - o.PREs,
		REFs:                s.REFs - o.REFs,
		HiRAPiggybacks:      s.HiRAPiggybacks - o.HiRAPiggybacks,
		HiRAPairs:           s.HiRAPairs - o.HiRAPairs,
		StandaloneRefreshes: s.StandaloneRefreshes - o.StandaloneRefreshes,
		SeqBlocked:          s.SeqBlocked - o.SeqBlocked,
		CanACTBlocked:       s.CanACTBlocked - o.CanACTBlocked,
		ReadLatencySum:      s.ReadLatencySum - o.ReadLatencySum,
		ReadCount:           s.ReadCount - o.ReadCount,
	}
}

// SnapshotStats appends every Stats field to w. Exported so the system
// snapshot's header-extractable mark section can reuse the exact same
// 14-counter codec the controller snapshot uses.
func SnapshotStats(w *snap.Writer, s Stats) {
	snapStats(w, s)
}

// RestoreStats reads a Stats written by SnapshotStats.
func RestoreStats(r *snap.Reader) Stats {
	return restoreStats(r)
}

// snapStats appends every Stats field.
func snapStats(w *snap.Writer, s Stats) {
	w.U64(s.Reads)
	w.U64(s.Writes)
	w.U64(s.RowHits)
	w.U64(s.RowMisses)
	w.U64(s.ACTs)
	w.U64(s.PREs)
	w.U64(s.REFs)
	w.U64(s.HiRAPiggybacks)
	w.U64(s.HiRAPairs)
	w.U64(s.StandaloneRefreshes)
	w.U64(s.SeqBlocked)
	w.U64(s.CanACTBlocked)
	w.I64(int64(s.ReadLatencySum))
	w.U64(s.ReadCount)
}

func restoreStats(r *snap.Reader) Stats {
	return Stats{
		Reads:               r.U64(),
		Writes:              r.U64(),
		RowHits:             r.U64(),
		RowMisses:           r.U64(),
		ACTs:                r.U64(),
		PREs:                r.U64(),
		REFs:                r.U64(),
		HiRAPiggybacks:      r.U64(),
		HiRAPairs:           r.U64(),
		StandaloneRefreshes: r.U64(),
		SeqBlocked:          r.U64(),
		CanACTBlocked:       r.U64(),
		ReadLatencySum:      dram.Time(r.I64()),
		ReadCount:           r.U64(),
	}
}

// maxActTimes bounds a rank's serialized tFAW activation timeline; the
// live list is pruned to the tFAW window (a handful of entries), so
// anything larger is corruption.
const maxActTimes = 1024

// Snapshot appends the controller's full mutable state — clock, stats,
// per-channel queues (in arrival order, which uniquely determines both
// the channel-wide list and every per-bank bucket), bank and rank timing
// state, any in-flight HiRA sequence, and the idle-skip horizon — to w.
// The freelist and per-tick scratch are not state: a restored controller
// simply reallocates nodes on demand, which is behaviorally identical.
func (c *Controller) Snapshot(w *snap.Writer) {
	w.I64(int64(c.now))
	w.U64(c.arrival)
	snapStats(w, c.Stats)
	for _, ch := range c.chans {
		w.I64(int64(ch.lastCmd))
		w.Bool(ch.hasCmd)
		w.I64(int64(ch.dataBusFree))
		w.Bool(ch.draining)
		w.I64(int64(ch.idleUntil))
		w.U64(ch.idleSeqBlocked)
		w.U64(ch.idleCanACT)

		w.Bool(ch.seq != nil)
		if s := ch.seq; s != nil {
			w.Int(s.n)
			w.Int(s.next)
			w.Int(s.rank)
			w.Int(s.flat)
			w.Bool(s.access)
			w.I64(int64(s.plannedSecond))
			for _, sc := range s.cmds {
				w.U8(uint8(sc.kind))
				w.U8(uint8(sc.phase))
				w.Int(sc.rank)
				w.Int(sc.bank)
				w.Int(sc.row)
				w.I64(int64(sc.due))
			}
		}

		for i := range ch.banks {
			b := &ch.banks[i]
			w.Bool(b.open)
			w.Int(b.row)
			w.I64(int64(b.actAt))
			w.I64(int64(b.readyACT))
			w.I64(int64(b.readyPRE))
			w.I64(int64(b.readyCol))
			w.Bool(b.reserved)
			w.Bool(b.pendingPRE)
			w.I64(int64(b.pendingPREAt))
		}
		for i := range ch.ranks {
			rk := &ch.ranks[i]
			w.I64(int64(rk.lastACT))
			w.Int(rk.lastACTGroup)
			w.Len(len(rk.actTimes))
			for _, t := range rk.actTimes {
				w.I64(int64(t))
			}
			w.I64(int64(rk.refBusy))
			w.Bool(rk.refDrain)
			w.Bool(rk.pendingREF)
		}
		for k := range ch.q {
			w.Len(ch.q[k].count)
			for n := ch.q[k].ghead; n != nil; n = n.gnext {
				w.U64(n.seq)
				w.Int(n.req.Loc.Rank)
				w.Int(n.req.Loc.Bank)
				w.Int(n.req.Loc.Row)
				w.Int(n.req.Loc.Col)
				w.Bool(n.req.Write)
				w.Int(n.req.Core)
				w.U64(n.req.Token)
				w.I64(int64(n.req.Arrive))
			}
		}
	}
}

// SnapshotSize returns an upper bound on Snapshot's encoded size for
// the controller's current state, so composing (differential) snapshots
// can pre-size their buffers. Varint fields are costed at their
// worst-case width; queue and activation-timeline terms use the live
// counts, which cannot grow between this call and the Snapshot call in
// a single-threaded encode.
func (c *Controller) SnapshotSize() int {
	n := 24 + 14*10 // clock + arrival + stats
	for _, ch := range c.chans {
		n += 96                            // channel fixed fields
		n += 64 + len(ch.seqStore.cmds)*44 // optional HiRA sequence
		n += len(ch.banks) * 96            // bank timing state
		for i := range ch.ranks {
			n += 64 + len(ch.ranks[i].actTimes)*10
		}
		for k := range ch.q {
			n += 10 + ch.q[k].count*90
		}
	}
	return n
}

// Restore reads state written by Snapshot into a freshly constructed
// controller of identical configuration. maxCore bounds request core ids
// (the controller itself never indexes by core, but its completion
// callback does, so a corrupt id must be rejected here). Every index and
// row serialized is validated against the organization, making a corrupt
// snapshot an error rather than a controller that panics mid-tick.
func (c *Controller) Restore(r *snap.Reader, maxCore int) error {
	org := c.cfg.Org
	rows := org.RowsPerBank()
	c.now = dram.Time(r.I64())
	if c.now < 0 {
		r.Failf("negative clock %d", c.now)
	}
	c.arrival = r.U64()
	c.Stats = restoreStats(r)
	for _, ch := range c.chans {
		ch.lastCmd = dram.Time(r.I64())
		ch.hasCmd = r.Bool()
		ch.dataBusFree = dram.Time(r.I64())
		ch.draining = r.Bool()
		ch.idleUntil = dram.Time(r.I64())
		ch.idleSeqBlocked = r.U64()
		ch.idleCanACT = r.U64()

		if r.Bool() {
			s := &ch.seqStore
			s.n = r.Int()
			s.next = r.Int()
			s.rank = r.Int()
			s.flat = r.Int()
			s.access = r.Bool()
			s.plannedSecond = dram.Time(r.I64())
			for i := range s.cmds {
				sc := &s.cmds[i]
				sc.kind = dram.Kind(r.U8())
				sc.phase = dram.HiRAPhase(r.U8())
				sc.rank = r.Int()
				sc.bank = r.Int()
				sc.row = r.Int()
				sc.due = dram.Time(r.I64())
				if r.Err() != nil {
					return r.Err()
				}
				if sc.kind > dram.KindREF || sc.phase > dram.HiRASecondACT ||
					sc.rank < 0 || sc.rank >= org.RanksPerChannel ||
					sc.bank < 0 || sc.bank >= org.BanksPerRank() ||
					sc.row < 0 || sc.row >= rows {
					r.Failf("sequence command %d out of range", i)
					return r.Err()
				}
			}
			if s.n < 1 || s.n > len(s.cmds) || s.next < 0 || s.next >= s.n ||
				s.rank < 0 || s.rank >= org.RanksPerChannel ||
				s.flat < 0 || s.flat >= len(ch.banks) {
				r.Failf("HiRA sequence state out of range")
				return r.Err()
			}
			ch.seq = s
		} else {
			ch.seq = nil
		}

		ch.pendingPREs = 0
		for i := range ch.banks {
			b := &ch.banks[i]
			b.open = r.Bool()
			b.row = r.Int()
			b.actAt = dram.Time(r.I64())
			b.readyACT = dram.Time(r.I64())
			b.readyPRE = dram.Time(r.I64())
			b.readyCol = dram.Time(r.I64())
			b.reserved = r.Bool()
			b.pendingPRE = r.Bool()
			b.pendingPREAt = dram.Time(r.I64())
			if r.Err() != nil {
				return r.Err()
			}
			if b.open && (b.row < 0 || b.row >= rows) {
				r.Failf("bank %d open row %d out of range", i, b.row)
				return r.Err()
			}
			if b.pendingPRE {
				ch.pendingPREs++
			}
			b.bq[qRead] = bankQ{}
			b.bq[qWrite] = bankQ{}
		}
		for i := range ch.ranks {
			rk := &ch.ranks[i]
			rk.lastACT = dram.Time(r.I64())
			rk.lastACTGroup = r.Int()
			nt := r.Len(maxActTimes, 1)
			rk.actTimes = rk.actTimes[:0]
			for j := 0; j < nt; j++ {
				rk.actTimes = append(rk.actTimes, dram.Time(r.I64()))
			}
			rk.refBusy = dram.Time(r.I64())
			rk.refDrain = r.Bool()
			rk.pendingREF = r.Bool()
		}

		for k := range ch.q {
			q := &ch.q[k]
			*q = kindQ{active: q.active[:0], pos: q.pos}
			for i := range q.pos {
				q.pos[i] = -1
			}
			capN := c.cfg.ReadQueueCap
			if k == qWrite {
				capN = c.cfg.WriteQueueCap
			}
			cnt := r.Len(capN, 6)
			for i := 0; i < cnt; i++ {
				var req Request
				seq := r.U64()
				req.Loc.Channel = ch.id
				req.Loc.Rank = r.Int()
				req.Loc.Bank = r.Int()
				req.Loc.Row = r.Int()
				req.Loc.Col = r.Int()
				req.Write = r.Bool()
				req.Core = r.Int()
				req.Token = r.U64()
				req.Arrive = dram.Time(r.I64())
				if r.Err() != nil {
					return r.Err()
				}
				if req.Loc.Rank < 0 || req.Loc.Rank >= org.RanksPerChannel ||
					req.Loc.Bank < 0 || req.Loc.Bank >= org.BanksPerRank() ||
					req.Loc.Row < 0 || req.Loc.Row >= rows || req.Loc.Col < 0 ||
					req.Core < 0 || req.Core >= maxCore {
					r.Failf("queued request %d out of range", i)
					return r.Err()
				}
				c.pushNode(ch, k, &reqNode{req: req, seq: seq},
					c.flat(req.Loc.Rank, req.Loc.Bank))
			}
		}
		// Recount per-bank open-row hits now that both the queues and the
		// bank states are in place.
		for i := range ch.banks {
			b := &ch.banks[i]
			if !b.open {
				continue
			}
			for k := range b.bq {
				h := 0
				for n := b.bq[k].head; n != nil; n = n.bnext {
					if n.req.Loc.Row == b.row {
						h++
					}
				}
				b.bq[k].hits = h
			}
		}
	}
	return r.Err()
}

// snapBaselineREF appends the conventional REF engine's schedule.
func (b *BaselineREF) Snapshot(w *snap.Writer) {
	for _, ranks := range b.nextAt {
		for _, at := range ranks {
			w.I64(int64(at))
		}
	}
}

// SnapshotSize returns an upper bound on Snapshot's encoded size.
func (b *BaselineREF) SnapshotSize() int {
	n := 0
	for _, ranks := range b.nextAt {
		n += len(ranks) * 10
	}
	return n
}

// Restore reads a schedule written by Snapshot.
func (b *BaselineREF) Restore(r *snap.Reader) error {
	for _, ranks := range b.nextAt {
		for i := range ranks {
			ranks[i] = dram.Time(r.I64())
		}
	}
	return r.Err()
}
