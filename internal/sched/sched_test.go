package sched

import (
	"testing"

	"hira/internal/dram"
)

// smallOrg returns a small organization for fast exhaustive tests.
func smallOrg() dram.Org {
	o := dram.DefaultOrg()
	o.SubarraysPerBank = 8
	o.RowsPerSubarray = 16 // 128 rows per bank
	return o
}

// harness wires a controller to a verifier and auditor.
type harness struct {
	c   *Controller
	v   *dram.Verifier
	a   *dram.RefreshAuditor
	org dram.Org
	t   dram.Timing

	completed map[uint64]dram.Time
	token     uint64
}

func newHarness(t *testing.T, org dram.Org, tm dram.Timing, engine RefreshEngine) *harness {
	t.Helper()
	c, err := NewController(Config{Org: org, Timing: tm}, engine)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{c: c, org: org, t: tm, completed: map[uint64]dram.Time{}}
	h.v = dram.NewVerifier(org, tm)
	// The controller quantizes t1/t2 up to the next command clock.
	h.v.MaxT1 = tm.T1 + tm.TCK
	h.v.MaxT2 = tm.T2 + tm.TCK
	h.a = dram.NewRefreshAuditor(org, tm)
	c.CommandHook = func(cmd dram.Command) {
		h.v.Check(cmd)
		h.a.Observe(cmd)
	}
	c.OnComplete = func(core int, token uint64, at dram.Time) {
		h.completed[token] = at
	}
	return h
}

func (h *harness) read(t *testing.T, loc dram.Location) uint64 {
	t.Helper()
	h.token++
	if !h.c.Enqueue(Request{Loc: loc, Core: 0, Token: h.token}) {
		t.Fatal("enqueue failed")
	}
	return h.token
}

func (h *harness) run(ticks int) {
	for i := 0; i < ticks; i++ {
		h.c.Tick()
	}
}

func (h *harness) checkClean(t *testing.T) {
	t.Helper()
	if err := h.v.Err(); err != nil {
		t.Fatalf("timing violation: %v (total %d)", err, len(h.v.Violations()))
	}
}

func TestSingleReadLatency(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	tok := h.read(t, dram.Location{Row: 5, Col: 0})
	h.run(100)
	h.checkClean(t)
	at, ok := h.completed[tok]
	if !ok {
		t.Fatal("read never completed")
	}
	// Cold read: ACT + tRCD + CL + tBL, plus up to a tick of slack.
	want := tm.TRCD + tm.CL + tm.TBL
	if at < want || at > want+3*tm.TCK {
		t.Errorf("read completed at %v, want ~%v", at, want)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)

	// Two reads to the same row: second is a row hit.
	h1 := newHarness(t, org, tm, NoRefresh{})
	h1.read(t, dram.Location{Row: 5, Col: 0})
	t2 := h1.read(t, dram.Location{Row: 5, Col: 8})
	h1.run(200)
	h1.checkClean(t)
	hitAt := h1.completed[t2]
	if h1.c.Stats.RowHits == 0 {
		t.Error("no row hits recorded")
	}

	// Two reads to different rows in the same bank: second conflicts.
	h2 := newHarness(t, org, tm, NoRefresh{})
	h2.read(t, dram.Location{Row: 5, Col: 0})
	c2 := h2.read(t, dram.Location{Row: 9, Col: 0})
	h2.run(400)
	h2.checkClean(t)
	confAt := h2.completed[c2]
	if hitAt == 0 || confAt == 0 {
		t.Fatal("requests not completed")
	}
	if hitAt >= confAt {
		t.Errorf("row hit (%v) not faster than conflict (%v)", hitAt, confAt)
	}
}

func TestWritesDrainAndComplete(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	for i := 0; i < 10; i++ {
		h.token++
		if !h.c.Enqueue(Request{Loc: dram.Location{Row: i, Col: 0}, Write: true, Token: h.token}) {
			t.Fatal("write enqueue failed")
		}
	}
	h.run(3000)
	h.checkClean(t)
	if _, w := h.c.QueueOccupancy(); w != 0 {
		t.Errorf("%d writes still queued", w)
	}
	if h.c.Stats.Writes != 10 {
		t.Errorf("Writes = %d", h.c.Stats.Writes)
	}
}

func TestQueueCapacity(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	c, err := NewController(Config{Org: org, Timing: tm, ReadQueueCap: 4}, NoRefresh{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !c.Enqueue(Request{Loc: dram.Location{Row: i}, Token: uint64(i)}) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if c.Enqueue(Request{Loc: dram.Location{Row: 99}, Token: 99}) {
		t.Error("enqueue accepted past capacity")
	}
}

func TestManyRandomReadsNoViolations(t *testing.T) {
	org := smallOrg()
	org.Channels = 2
	org.RanksPerChannel = 2
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	issued := 0
	for tick := 0; tick < 40000; tick++ {
		if tick%7 == 0 {
			loc := dram.Location{
				BankID: dram.BankID{
					Channel: int(next() % 2),
					Rank:    int(next() % 2),
					Bank:    int(next() % uint64(org.BanksPerRank())),
				},
				Row: int(next() % uint64(org.RowsPerBank())),
				Col: int(next() % 64),
			}
			h.token++
			if h.c.Enqueue(Request{Loc: loc, Write: next()%4 == 0, Core: 0, Token: h.token}) {
				issued++
			}
		}
		h.c.Tick()
	}
	h.run(40000)
	h.checkClean(t)
	if issued < 1000 {
		t.Fatalf("only %d requests issued", issued)
	}
	if r, w := h.c.QueueOccupancy(); r != 0 || w != 0 {
		t.Errorf("queues not drained: %d reads, %d writes", r, w)
	}
}

func TestBaselineREFIssuesOnSchedule(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NewBaselineREF(org, tm))
	// Simulate ~10 tREFI with a background of reads.
	ticks := int(10 * tm.TREFI / tm.TCK)
	for i := 0; i < ticks; i++ {
		if i%200 == 0 {
			h.read(t, dram.Location{Row: i % org.RowsPerBank(), Col: 0})
		}
		h.c.Tick()
	}
	h.checkClean(t)
	refs := int(h.c.Stats.REFs)
	if refs < 8 || refs > 11 {
		t.Errorf("REFs = %d over 10 tREFI, want ~10", refs)
	}
}

func TestBaselineREFBlocksRankDuringTRFC(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NewBaselineREF(org, tm))
	// Run just past the first REF, then enqueue a read; its completion
	// must wait for tRFC to elapse.
	preTicks := int(tm.TREFI/tm.TCK) + 2
	h.run(preTicks)
	if h.c.Stats.REFs != 1 {
		t.Fatalf("REFs = %d, want 1", h.c.Stats.REFs)
	}
	tok := h.read(t, dram.Location{Row: 3})
	h.run(int(tm.TRFC/tm.TCK) + 100)
	h.checkClean(t)
	at := h.completed[tok]
	refDone := tm.TREFI + tm.TRFC
	if at < refDone {
		t.Errorf("read completed at %v, before refresh finished at ~%v", at, refDone)
	}
}

func TestRefreshAuditorCleanWithBaselineREF(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulation")
	}
	org := smallOrg() // 128 rows/bank
	tm := dram.DDR4_2400(8)
	// Shrink the retention window so a full refresh sweep fits in a
	// short simulation: 128 rows need 128/rowsPerREF REFs.
	tm.TREFW = 2 * dram.Millisecond // rowsPerREF = 1 at tREFI 7.8us? 2ms/7.8us = 256 REFs
	h := newHarness(t, org, tm, NewBaselineREF(org, tm))
	ticks := int(2500*dram.Microsecond/tm.TCK) + 1
	for i := 0; i < ticks; i++ {
		if i%500 == 0 {
			h.read(t, dram.Location{Row: (i / 500) % org.RowsPerBank()})
		}
		h.c.Tick()
	}
	h.checkClean(t)
	if stale := h.a.StaleAt(h.c.Now(), 3); len(stale) != 0 {
		t.Errorf("stale rows under baseline REF: %v", stale)
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	// Enlarge tFAW so it actually binds, then blast ACTs at distinct
	// banks; the verifier checks the window.
	tm.TFAW = 40 * dram.Nanosecond
	h := newHarness(t, org, tm, NoRefresh{})
	for b := 0; b < 16; b++ {
		h.read(t, dram.Location{BankID: dram.BankID{Bank: b}, Row: b})
	}
	h.run(2000)
	h.checkClean(t)
	if len(h.completed) != 16 {
		t.Errorf("completed %d of 16 reads", len(h.completed))
	}
}

func TestNoRefreshNeverRefreshes(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	h.run(int(3 * tm.TREFI / tm.TCK))
	if h.c.Stats.REFs != 0 {
		t.Errorf("NoRefresh issued %d REFs", h.c.Stats.REFs)
	}
}
