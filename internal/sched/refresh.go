package sched

import "hira/internal/dram"

// issueREFWork advances any in-progress rank REF: draining open banks,
// then issuing the REF itself. Returns true if a command was issued.
func (c *Controller) issueREFWork(ch *channel) bool {
	for rank := range ch.ranks {
		rk := &ch.ranks[rank]
		if !rk.pendingREF {
			continue
		}
		rk.refDrain = true
		allClosed := true
		base := rank * c.bpr
		for b := 0; b < c.bpr; b++ {
			bank := &ch.banks[base+b]
			if bank.reserved || (ch.seq != nil) {
				allClosed = false
				continue
			}
			if bank.open {
				allClosed = false
				if c.now >= bank.readyPRE {
					c.emit(ch, dram.Command{Kind: dram.KindPRE,
						Loc: dram.Location{BankID: dram.BankID{Rank: rank, Bank: b}}})
					c.Stats.PREs++
					c.closeRow(ch, base+b)
					bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
					return true
				}
				c.noteEvt(bank.readyPRE)
			}
		}
		if !allClosed {
			continue
		}
		// All banks precharged: issue the REF.
		c.emit(ch, dram.Command{Kind: dram.KindREF,
			Loc: dram.Location{BankID: dram.BankID{Rank: rank}}})
		c.Stats.REFs++
		rk.refBusy = c.now + c.cfg.Timing.TRFC
		rk.pendingREF = false
		rk.refDrain = false
		for b := 0; b < c.bpr; b++ {
			bank := &ch.banks[base+b]
			bank.readyACT = maxTime(bank.readyACT, rk.refBusy)
		}
		if c.forensics != nil {
			c.forensics.rankREF(ch.id, rank)
		}
		c.engine.NoteRefreshed(Op{Kind: OpRankREF, Rank: rank}, ch.id, c.now)
		return true
	}
	return false
}

// startOp begins an engine-mandated refresh operation. Returns true if
// work was started or a command issued.
func (c *Controller) startOp(ch *channel, op Op) bool {
	switch op.Kind {
	case OpRankREF:
		rk := &ch.ranks[op.Rank]
		if rk.pendingREF || c.now < rk.refBusy {
			c.noteEvt(rk.refBusy) // a pending REF's drain is event-tracked above
			return false
		}
		rk.pendingREF = true
		return c.issueREFWork(ch)

	case OpRowRefresh, OpHiRAPair, OpRowRefreshBlocking:
		flat := c.flat(op.Rank, op.Bank)
		bank := &ch.banks[flat]
		rk := &ch.ranks[op.Rank]
		if bank.reserved || c.now < rk.refBusy || rk.refDrain {
			c.noteEvt(rk.refBusy) // reserved/refDrain clear at command ticks
			return false
		}
		if bank.open {
			// Precharge the target bank first (§5.1.3 Case 2).
			if c.now < bank.readyPRE {
				c.noteEvt(bank.readyPRE)
				return false
			}
			c.emit(ch, dram.Command{Kind: dram.KindPRE,
				Loc: dram.Location{BankID: dram.BankID{Rank: op.Rank, Bank: op.Bank}}})
			c.Stats.PREs++
			c.closeRow(ch, flat)
			bank.readyACT = maxTime(bank.readyACT, c.now+c.cfg.Timing.TRP)
			return true
		}
		if c.now < bank.readyACT {
			c.noteEvt(bank.readyACT)
			return false
		}
		t := c.cfg.Timing
		if op.Kind == OpHiRAPair {
			if !c.canACT(ch, op.Rank, op.Bank, 2, t.T1+t.T2) {
				return false
			}
			if c.forensics != nil {
				// Classify both rows before the sequence's first ACT
				// resets the ledger under them.
				c.forensics.classifyRefresh(ch.id, flat, op.RowA, op.PreventiveA, false)
				c.forensics.classifyRefresh(ch.id, flat, op.RowB, op.PreventiveB, false)
			}
			c.startHiRASequence(ch, op.Rank, op.Bank, op.RowA, op.RowB, false)
			c.Stats.HiRAPairs++
			c.engine.NoteRefreshed(op, ch.id, c.now)
			return true
		}
		// Standalone row refresh: ACT now, PRE after tRAS.
		if !c.canACT(ch, op.Rank, op.Bank, 1, 0) {
			return false
		}
		if c.forensics != nil {
			c.forensics.classifyRefresh(ch.id, flat, op.RowA, op.PreventiveA, false)
		}
		c.emit(ch, dram.Command{Kind: dram.KindACT,
			Loc: dram.Location{BankID: dram.BankID{Rank: op.Rank, Bank: op.Bank}, Row: op.RowA}})
		c.Stats.ACTs++
		c.Stats.StandaloneRefreshes++
		c.noteACT(ch, op.Rank, op.Bank)
		c.openRow(ch, flat, op.RowA)
		bank.actAt = c.now
		bank.readyCol = c.now + t.TRCD
		bank.readyPRE = c.now + t.TRAS
		bank.readyACT = c.now + t.TRC
		bank.reserved = true
		bank.pendingPRE = true
		bank.pendingPREAt = c.now + t.TRAS
		ch.pendingPREs++
		if op.Kind == OpRowRefreshBlocking {
			// A conventional controller performs the preventive refresh
			// atomically: the rank is held for a full row cycle.
			rk.refBusy = c.now + t.TRC
		}
		if c.forensics != nil {
			c.forensics.refreshACT(ch.id, flat, op.RowA)
		}
		c.engine.NoteRefreshed(op, ch.id, c.now)
		c.engine.NoteActivate(dram.Location{
			BankID: dram.BankID{Channel: ch.id, Rank: op.Rank, Bank: op.Bank},
			Row:    op.RowA,
		}, false, c.now)
		return true
	}
	return false
}
