package sched

import (
	"testing"

	"hira/internal/dram"
)

// TestFCFSArrivalOrderAcrossBanks is the regression guard for the
// per-bank bucket refactor: FR-FCFS pass 2 must activate closed banks in
// request arrival order, not bank index order. Requests are enqueued to
// banks in an order deliberately inverse to their indices; tRRD spacing
// forces one ACT at a time, so the ACT command order exposes the walk
// order.
func TestFCFSArrivalOrderAcrossBanks(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	var acts []int
	h.c.CommandHook = func(cmd dram.Command) {
		if cmd.Kind == dram.KindACT {
			acts = append(acts, cmd.Loc.Bank)
		}
	}
	// Arrival order: banks 7, 3, 12, 1, 9 — neither ascending nor
	// descending.
	order := []int{7, 3, 12, 1, 9}
	for _, b := range order {
		h.read(t, dram.Location{BankID: dram.BankID{Bank: b}, Row: b + 1})
	}
	h.run(400)
	if len(acts) != len(order) {
		t.Fatalf("got %d ACTs, want %d", len(acts), len(order))
	}
	for i, b := range order {
		if acts[i] != b {
			t.Fatalf("ACT order = %v, want arrival order %v", acts, order)
		}
	}
}

// TestFCFSOrderInterleavedSameBank checks the merge across banks when one
// bank holds several queued requests: an older request of bank A must not
// be overtaken by a younger request of bank B, and vice versa.
func TestFCFSOrderInterleavedSameBank(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	h := newHarness(t, org, tm, NoRefresh{})
	var acts []dram.Location
	h.c.CommandHook = func(cmd dram.Command) {
		if cmd.Kind == dram.KindACT {
			acts = append(acts, cmd.Loc)
		}
	}
	// A1, B1, A2 (same bank as A1, different row), B2. A2 conflicts with
	// A1 and must wait for A1's row cycle; B-bank requests interleave by
	// arrival.
	h.read(t, dram.Location{BankID: dram.BankID{Bank: 2}, Row: 10}) // A1
	h.read(t, dram.Location{BankID: dram.BankID{Bank: 5}, Row: 20}) // B1
	h.read(t, dram.Location{BankID: dram.BankID{Bank: 2}, Row: 11}) // A2
	h.run(1000)
	if len(acts) != 3 {
		t.Fatalf("got %d ACTs, want 3: %v", len(acts), acts)
	}
	want := []dram.Location{
		{BankID: dram.BankID{Bank: 2}, Row: 10},
		{BankID: dram.BankID{Bank: 5}, Row: 20},
		{BankID: dram.BankID{Bank: 2}, Row: 11},
	}
	for i := range want {
		if acts[i].Bank != want[i].Bank || acts[i].Row != want[i].Row {
			t.Fatalf("ACT %d = %v, want %v", i, acts[i], want[i])
		}
	}
}

// TestWriteDrainHysteresis covers the previously untested write-drain
// edge: conflicting reads arrive while the write queue is full of row
// hits. The per-queue hit veto must let the reads precharge the row once
// the drain falls below WriteLow, instead of deadlocking behind write
// hits that keep the row open.
func TestWriteDrainHysteresis(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	c, err := NewController(Config{Org: org, Timing: tm, WriteQueueCap: 16}, NoRefresh{})
	if err != nil {
		t.Fatal(err)
	}
	completed := map[uint64]dram.Time{}
	c.OnComplete = func(core int, token uint64, at dram.Time) { completed[token] = at }

	// Fill the write queue to capacity with row hits on bank 0 row 1:
	// WriteHigh (12) is crossed, so draining starts.
	for i := 0; i < 16; i++ {
		if !c.Enqueue(Request{Loc: dram.Location{Row: 1, Col: i}, Write: true, Token: uint64(100 + i)}) {
			t.Fatalf("write %d rejected below capacity", i)
		}
	}
	// Conflicting reads on the same bank, different row.
	for i := 0; i < 4; i++ {
		if !c.Enqueue(Request{Loc: dram.Location{Row: 2, Col: i}, Token: uint64(i + 1)}) {
			t.Fatalf("read %d rejected", i)
		}
	}
	if c.Stats.Writes != 16 {
		t.Fatalf("Writes = %d", c.Stats.Writes)
	}
	drainStarted := false
	for i := 0; i < 20000; i++ {
		c.Tick()
		_, w := c.QueueOccupancy()
		if w < 16 {
			drainStarted = true
		}
		if len(completed) == 4 {
			break
		}
	}
	if !drainStarted {
		t.Fatal("write drain never started despite a full write queue")
	}
	for i := 1; i <= 4; i++ {
		if _, ok := completed[uint64(i)]; !ok {
			t.Fatalf("read %d deadlocked behind the write drain (completed: %v)", i, completed)
		}
	}
	// Hysteresis: the drain must stop at WriteLow (4), not empty the
	// queue while reads are waiting; remaining writes drain only after
	// reads are served or the high watermark is crossed again.
	if r, w := c.QueueOccupancy(); r != 0 || w > 16 {
		t.Fatalf("unexpected occupancy after drain: reads=%d writes=%d", r, w)
	}
}

// TestBufferedWritebackRetry drives a controller through a full
// write-queue episode and asserts rejected writes are eventually accepted
// in FIFO order once the queue drains (the retry contract System's
// writeback ring relies on).
func TestBufferedWritebackRetry(t *testing.T) {
	org := smallOrg()
	tm := dram.DDR4_2400(8)
	c, err := NewController(Config{Org: org, Timing: tm, WriteQueueCap: 8}, NoRefresh{})
	if err != nil {
		t.Fatal(err)
	}
	var pending []Request
	tok := uint64(0)
	submit := func(row int) {
		tok++
		r := Request{Loc: dram.Location{Row: row}, Write: true, Token: tok}
		if !c.Enqueue(r) {
			pending = append(pending, r)
		}
	}
	for i := 0; i < 24; i++ {
		submit(i % 4)
	}
	if len(pending) == 0 {
		t.Fatal("write queue never filled; the retry path is untested")
	}
	for i := 0; i < 50000 && (len(pending) > 0 || queueWrites(c) > 0); i++ {
		// Retry the buffered writes each tick, oldest first, exactly as
		// sim.System does.
		for len(pending) > 0 {
			if !c.Enqueue(pending[0]) {
				break
			}
			pending = pending[1:]
		}
		c.Tick()
	}
	if len(pending) != 0 {
		t.Fatalf("%d buffered writes never accepted", len(pending))
	}
	if got := c.Stats.Writes; got != 24 {
		t.Fatalf("Writes = %d, want 24", got)
	}
}

func queueWrites(c *Controller) int {
	_, w := c.QueueOccupancy()
	return w
}
