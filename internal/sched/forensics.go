package sched

import (
	"sort"

	"hira/internal/dram"
)

// MaxForensicsThresholds bounds the number of hammer-count thresholds the
// forensics ledger tracks, so the per-activation threshold check is a
// fixed handful of compares and the crossing tallies live in a flat array.
const MaxForensicsThresholds = 4

// Flight-recorder shape: a small ring of recent commands is kept warm at
// all times; when a row's interref activation count crosses the highest
// configured threshold, the ring is flushed into the event log and the
// next recorderPost commands are recorded too, capturing the commands
// around each threshold-crossing episode.
const (
	recorderPre        = 64
	recorderPost       = 192
	defaultRecorderCap = 4096
)

// ForensicsConfig parameterizes the controller's RowHammer forensics
// ledger (see Controller.EnableForensics).
type ForensicsConfig struct {
	// Thresholds are interref activation counts whose crossings are
	// tallied (e.g. NRH/2 and NRH). At most MaxForensicsThresholds are
	// kept, sorted ascending; zero entries are dropped. Crossing the
	// highest threshold triggers the flight recorder.
	Thresholds []uint32
	// HotThreshold is the interref activation count at or above which an
	// adjacent row counts as a "hot" aggressor when classifying a
	// preventive refresh as useful vs wasted. 0 defaults to 1: any
	// activated neighbor makes the refresh useful.
	HotThreshold uint32
	// Recorder enables the DRAM command flight recorder.
	Recorder bool
	// RecorderCap bounds the total recorded events (default 4096); once
	// full, further events are counted as dropped.
	RecorderCap int
}

// ForensicsTally is the cumulative forensics counter set. All fields are
// monotone, so measured-phase values are diffs of two snapshots (Sub),
// exactly like Stats.
type ForensicsTally struct {
	// DemandACTs counts row activations serving demand accesses — the
	// activations that disturb neighboring rows and advance the ledger.
	DemandACTs uint64 `json:"demand_acts"`
	// RefreshACTs counts activations performing explicit row-refresh work:
	// standalone refreshes, both rows of a HiRA refresh-refresh pair, and
	// the hidden row of a piggyback. It equals
	// StandaloneRefreshes + 2*HiRAPairs + HiRAPiggybacks.
	RefreshACTs uint64 `json:"refresh_acts"`
	// RowsReset counts explicit row refreshes that cleared a nonzero
	// interref count (the refresh landed on a row with recorded pressure).
	RowsReset uint64 `json:"rows_reset"`
	// REFRowsReset counts ledger rows with nonzero interref counts cleared
	// by rank-level REF rotation coverage.
	REFRowsReset uint64 `json:"ref_rows_reset"`
	// Crossings[i] counts events where a row's interref count reached
	// Thresholds[i]. Counts reset on refresh, so a row can cross again in
	// a later episode.
	Crossings [MaxForensicsThresholds]uint64 `json:"crossings"`
	// VictimCrossings[i] counts events where a row's victim exposure —
	// demand activations of adjacent rows since the row's own charge was
	// last restored — reached Thresholds[i]. Unlike Crossings (which only
	// the aggressor's own refresh resets), victim exposure resets whenever
	// the victim itself is activated or refreshed, so it directly scores
	// victim-refreshing mitigations (Graphene, RFM): an effective one keeps
	// every row's exposure below NRH.
	VictimCrossings [MaxForensicsThresholds]uint64 `json:"victim_crossings"`
	// PreventiveUseful counts preventive (PARA) refreshes whose victim had
	// an adjacent row with interref count >= HotThreshold at refresh time;
	// PreventiveWasted counts the ones that landed next to only cold rows.
	PreventiveUseful uint64 `json:"preventive_useful"`
	PreventiveWasted uint64 `json:"preventive_wasted"`
	// PeriodicRowRefreshes counts explicit row refreshes doing periodic
	// (retention) work. Useful + Wasted + Periodic == RefreshACTs.
	PeriodicRowRefreshes uint64 `json:"periodic_row_refreshes"`
	// PiggybackPreventive/PiggybackPeriodic split HiRA piggyback coverage
	// (refresh-access parallelizations) by the kind of entry hidden behind
	// the demand access.
	PiggybackPreventive uint64 `json:"piggyback_preventive"`
	PiggybackPeriodic   uint64 `json:"piggyback_periodic"`
}

// Sub returns t - o field by field (for measured-phase diffs).
func (t ForensicsTally) Sub(o ForensicsTally) ForensicsTally {
	t.DemandACTs -= o.DemandACTs
	t.RefreshACTs -= o.RefreshACTs
	t.RowsReset -= o.RowsReset
	t.REFRowsReset -= o.REFRowsReset
	for i := range t.Crossings {
		t.Crossings[i] -= o.Crossings[i]
		t.VictimCrossings[i] -= o.VictimCrossings[i]
	}
	t.PreventiveUseful -= o.PreventiveUseful
	t.PreventiveWasted -= o.PreventiveWasted
	t.PeriodicRowRefreshes -= o.PeriodicRowRefreshes
	t.PiggybackPreventive -= o.PiggybackPreventive
	t.PiggybackPeriodic -= o.PiggybackPeriodic
	return t
}

// Add returns t + o field by field (for cross-cell aggregation).
func (t ForensicsTally) Add(o ForensicsTally) ForensicsTally {
	t.DemandACTs += o.DemandACTs
	t.RefreshACTs += o.RefreshACTs
	t.RowsReset += o.RowsReset
	t.REFRowsReset += o.REFRowsReset
	for i := range t.Crossings {
		t.Crossings[i] += o.Crossings[i]
		t.VictimCrossings[i] += o.VictimCrossings[i]
	}
	t.PreventiveUseful += o.PreventiveUseful
	t.PreventiveWasted += o.PreventiveWasted
	t.PeriodicRowRefreshes += o.PeriodicRowRefreshes
	t.PiggybackPreventive += o.PiggybackPreventive
	t.PiggybackPeriodic += o.PiggybackPeriodic
	return t
}

// FlightEvent is one recorded DRAM command of the flight recorder, in a
// JSON-friendly shape.
type FlightEvent struct {
	At      dram.Time `json:"at_ps"`
	Channel int       `json:"channel"`
	Rank    int       `json:"rank"`
	Bank    int       `json:"bank"`
	Row     int       `json:"row"`
	Kind    string    `json:"kind"`
	Phase   string    `json:"phase,omitempty"`
}

// ForensicsReport is a point-in-time view of the forensics ledger.
type ForensicsReport struct {
	Thresholds   []uint32 `json:"thresholds"`
	HotThreshold uint32   `json:"hot_threshold"`
	// MaxInterrefACTs is the largest interref activation count any row
	// reached since forensics were enabled (running max, not reset by the
	// measured-phase mark).
	MaxInterrefACTs uint32 `json:"max_interref_acts"`
	// MaxVictimExposure is the largest victim exposure any row reached:
	// demand activations of its adjacent rows since the row's own charge
	// was last restored. A row crossing NRH here is a disturbance-error
	// candidate regardless of which rows did the hammering.
	MaxVictimExposure uint32 `json:"max_victim_exposure"`
	// BankMax is the running max per bank, flat across the system:
	// channel*banksPerChannel + rank*banksPerRank + bank.
	BankMax []uint32       `json:"bank_max,omitempty"`
	Tally   ForensicsTally `json:"tally"`
	// Events is the flight recorder's log (empty unless Recorder was
	// enabled); DroppedEvents counts commands lost to the RecorderCap.
	Events        []FlightEvent `json:"events,omitempty"`
	DroppedEvents uint64        `json:"dropped_events,omitempty"`
}

// Forensics is the per-(bank,row) activation ledger: interref demand
// activation counts reset whenever a row's charge is restored (explicit
// row refresh or rank-REF rotation coverage, mirroring
// dram.RefreshAuditor's model), plus mitigation-efficacy tallies and an
// optional command flight recorder. All arrays are pre-sized at
// EnableForensics so the hooked tick loop stays allocation-free; every
// hook is purely observational, so enabling forensics leaves the command
// stream and Stats bit-identical (see TestForensicsDifferential).
type Forensics struct {
	nThresh    int
	thresholds [MaxForensicsThresholds]uint32
	hot        uint32

	rowsPerBank     int
	rowsPerREF      int
	banksPerChannel int
	banksPerRank    int

	count   []uint32 // per (system-flat bank, row): interref demand ACTs
	bankMax []uint32 // per system-flat bank: running max interref count
	refPtr  []int32  // per system-flat bank: rank-REF rotation pointer

	// exposure tracks the victim side of every activation: exposure[i]
	// counts demand ACTs of row i's adjacent rows since row i's own charge
	// was last restored (by its own activation, an explicit refresh, or
	// rank-REF coverage). maxExposure is its running system-wide max.
	exposure    []uint32
	maxExposure uint32

	tally ForensicsTally

	// Flight recorder (pre == nil when disabled).
	pre     []dram.Command
	preIdx  int
	preFill int
	post    int
	events  []dram.Command
	dropped uint64
}

func newForensics(org dram.Org, t dram.Timing, cfg ForensicsConfig) *Forensics {
	f := &Forensics{
		rowsPerBank:     org.RowsPerBank(),
		rowsPerREF:      t.RowsPerREF(org.RowsPerBank()),
		banksPerChannel: org.BanksPerChannel(),
		banksPerRank:    org.BanksPerRank(),
	}
	ths := make([]uint32, 0, len(cfg.Thresholds))
	for _, th := range cfg.Thresholds {
		if th > 0 {
			ths = append(ths, th)
		}
	}
	sort.Slice(ths, func(i, j int) bool { return ths[i] < ths[j] })
	if len(ths) > MaxForensicsThresholds {
		ths = ths[:MaxForensicsThresholds]
	}
	f.nThresh = len(ths)
	copy(f.thresholds[:], ths)
	f.hot = cfg.HotThreshold
	if f.hot == 0 {
		f.hot = 1
	}
	banks := org.TotalBanks()
	f.count = make([]uint32, banks*f.rowsPerBank)
	f.exposure = make([]uint32, banks*f.rowsPerBank)
	f.bankMax = make([]uint32, banks)
	f.refPtr = make([]int32, banks)
	if cfg.Recorder {
		capN := cfg.RecorderCap
		if capN <= 0 {
			capN = defaultRecorderCap
		}
		f.pre = make([]dram.Command, recorderPre)
		f.events = make([]dram.Command, 0, capN)
	}
	return f
}

// EnableForensics attaches a fresh forensics ledger to the controller.
// It must be called before the first Tick; forensics state is not part of
// Snapshot/Restore (resumable cells run with forensics disabled).
func (c *Controller) EnableForensics(cfg ForensicsConfig) {
	c.forensics = newForensics(c.cfg.Org, c.cfg.Timing, cfg)
}

// ForensicsEnabled reports whether a forensics ledger is attached.
func (c *Controller) ForensicsEnabled() bool { return c.forensics != nil }

// ForensicsTallyNow returns the current cumulative tally (zero value when
// forensics are disabled). Callers diff two snapshots with Sub for
// measured-phase values.
func (c *Controller) ForensicsTallyNow() ForensicsTally {
	if c.forensics == nil {
		return ForensicsTally{}
	}
	return c.forensics.tally
}

// ForensicsReport returns the ledger's current report, or false when
// forensics are disabled. The report copies its slices; it stays valid
// after further ticks.
func (c *Controller) ForensicsReport() (ForensicsReport, bool) {
	f := c.forensics
	if f == nil {
		return ForensicsReport{}, false
	}
	r := ForensicsReport{
		Thresholds:        append([]uint32(nil), f.thresholds[:f.nThresh]...),
		HotThreshold:      f.hot,
		MaxVictimExposure: f.maxExposure,
		BankMax:           append([]uint32(nil), f.bankMax...),
		Tally:             f.tally,
		DroppedEvents:     f.dropped,
	}
	for _, m := range f.bankMax {
		if m > r.MaxInterrefACTs {
			r.MaxInterrefACTs = m
		}
	}
	if len(f.events) > 0 {
		r.Events = make([]FlightEvent, len(f.events))
		for i, cmd := range f.events {
			r.Events[i] = FlightEvent{
				At:      cmd.At,
				Channel: cmd.Loc.Channel,
				Rank:    cmd.Loc.Rank,
				Bank:    cmd.Loc.Bank,
				Row:     cmd.Loc.Row,
				Kind:    cmd.Kind.String(),
				Phase:   cmd.Phase.String(),
			}
		}
	}
	return r, true
}

// bankIndex returns the system-flat bank index for a channel-flat bank.
func (f *Forensics) bankIndex(ch, flat int) int { return ch*f.banksPerChannel + flat }

// demandACT advances row's interref count for a demand activation,
// maintaining the bank max, the threshold-crossing tallies, and (on the
// highest threshold) the flight-recorder trigger. The row's own count is
// deliberately not reset by its own activation: the ledger measures
// aggressor pressure accumulated between charge restorations, and an
// activation restores only the activated row while disturbing neighbors.
func (f *Forensics) demandACT(ch, flat, row int) {
	fb := f.bankIndex(ch, flat)
	i := fb*f.rowsPerBank + row
	n := f.count[i] + 1
	f.count[i] = n
	f.tally.DemandACTs++
	if n > f.bankMax[fb] {
		f.bankMax[fb] = n
	}
	for t := 0; t < f.nThresh; t++ {
		if n == f.thresholds[t] {
			f.tally.Crossings[t]++
			if t == f.nThresh-1 {
				f.triggerRecorder()
			}
		}
	}
	// Victim side: the activation restores the activated row's own charge
	// and disturbs its neighbors.
	f.exposure[i] = 0
	base := fb * f.rowsPerBank
	if row > 0 {
		f.bumpExposure(base + row - 1)
	}
	if row+1 < f.rowsPerBank {
		f.bumpExposure(base + row + 1)
	}
}

// bumpExposure advances one row's victim exposure, maintaining the
// running max and the victim-side threshold-crossing tallies.
func (f *Forensics) bumpExposure(i int) {
	e := f.exposure[i] + 1
	f.exposure[i] = e
	if e > f.maxExposure {
		f.maxExposure = e
	}
	for t := 0; t < f.nThresh; t++ {
		if e == f.thresholds[t] {
			f.tally.VictimCrossings[t]++
		}
	}
}

// refreshACT records an explicit row-refresh activation, clearing the
// refreshed row's interref count.
func (f *Forensics) refreshACT(ch, flat, row int) {
	f.tally.RefreshACTs++
	i := f.bankIndex(ch, flat)*f.rowsPerBank + row
	if f.count[i] != 0 {
		f.count[i] = 0
		f.tally.RowsReset++
	}
	f.exposure[i] = 0
}

// classifyRefresh attributes one explicit row refresh at the moment it is
// committed (before the ledger rows it covers are reset): preventive
// refreshes are useful iff an adjacent row's interref count has reached
// HotThreshold — the victim actually had a hot aggressor — and wasted
// otherwise; periodic refreshes are tallied as retention work. piggyback
// additionally tallies HiRA refresh-access coverage by entry kind.
func (f *Forensics) classifyRefresh(ch, flat, row int, preventive, piggyback bool) {
	if piggyback {
		if preventive {
			f.tally.PiggybackPreventive++
		} else {
			f.tally.PiggybackPeriodic++
		}
	}
	if !preventive {
		f.tally.PeriodicRowRefreshes++
		return
	}
	base := f.bankIndex(ch, flat) * f.rowsPerBank
	hot := false
	if row > 0 && f.count[base+row-1] >= f.hot {
		hot = true
	}
	if row+1 < f.rowsPerBank && f.count[base+row+1] >= f.hot {
		hot = true
	}
	if hot {
		f.tally.PreventiveUseful++
	} else {
		f.tally.PreventiveWasted++
	}
}

// rankREF applies a rank-level REF's row coverage to the ledger: for every
// bank of the rank, the next rowsPerREF rows (per an internal per-bank
// pointer that wraps at the bank size) have their charge restored —
// exactly dram.RefreshAuditor's model of the chip's internal refresh
// counter — so their interref counts clear.
func (f *Forensics) rankREF(ch, rank int) {
	base := rank * f.banksPerRank
	for b := 0; b < f.banksPerRank; b++ {
		fb := f.bankIndex(ch, base+b)
		cbase := fb * f.rowsPerBank
		ptr := int(f.refPtr[fb])
		for i := 0; i < f.rowsPerREF; i++ {
			if f.count[cbase+ptr] != 0 {
				f.count[cbase+ptr] = 0
				f.tally.REFRowsReset++
			}
			f.exposure[cbase+ptr] = 0
			ptr++
			if ptr == f.rowsPerBank {
				ptr = 0
			}
		}
		f.refPtr[fb] = int32(ptr)
	}
}

// record feeds one emitted command to the flight recorder: directly into
// the event log inside a post-trigger window, otherwise into the warm
// pre-trigger ring.
func (f *Forensics) record(cmd dram.Command) {
	if f.post > 0 {
		f.post--
		if len(f.events) < cap(f.events) {
			f.events = append(f.events, cmd)
		} else {
			f.dropped++
		}
		return
	}
	f.pre[f.preIdx] = cmd
	f.preIdx++
	if f.preIdx == len(f.pre) {
		f.preIdx = 0
	}
	if f.preFill < len(f.pre) {
		f.preFill++
	}
}

// triggerRecorder starts (or extends) a recording episode: the pre-ring
// is flushed in chronological order and the next recorderPost commands
// are recorded.
func (f *Forensics) triggerRecorder() {
	if f.pre == nil {
		return
	}
	start := f.preIdx - f.preFill
	if start < 0 {
		start += len(f.pre)
	}
	for i := 0; i < f.preFill; i++ {
		cmd := f.pre[(start+i)%len(f.pre)]
		if len(f.events) < cap(f.events) {
			f.events = append(f.events, cmd)
		} else {
			f.dropped++
		}
	}
	f.preFill, f.preIdx = 0, 0
	f.post = recorderPost
}
