package dram

import "fmt"

// AddressMapper translates physical byte addresses to DRAM locations.
type AddressMapper interface {
	// Map decodes a physical byte address into a DRAM location. The
	// column is in units of cache blocks within the row.
	Map(addr uint64) Location
}

// MOPMapper implements a Minimalist-Open-Page style address mapping
// (Kaseridis et al., MICRO'11), the mapping the paper's Table 3 uses.
//
// MOP keeps a small run of consecutive cache blocks (the MOP group) in the
// same row to preserve spatial locality, then interleaves successive groups
// across channels, bank groups, banks, and ranks to maximize parallelism.
// Address bits, from least significant:
//
//	[block offset | group offset | channel | bank group | bank | rank | column-high | row]
type MOPMapper struct {
	org Org
	// groupBlocks is the number of consecutive cache blocks kept in a row
	// before interleaving moves to the next channel/bank.
	groupBlocks int
	blockBytes  int
}

// NewMOPMapper returns a MOP mapper over org with 64-byte cache blocks and
// 4-block MOP groups.
func NewMOPMapper(org Org) *MOPMapper {
	return &MOPMapper{org: org, groupBlocks: 4, blockBytes: 64}
}

// BlockBytes returns the cache-block granularity of the mapping.
func (m *MOPMapper) BlockBytes() int { return m.blockBytes }

// Map implements AddressMapper.
func (m *MOPMapper) Map(addr uint64) Location {
	o := m.org
	blocksPerRow := uint64(o.RowBytes / m.blockBytes)

	a := addr / uint64(m.blockBytes)
	groupOff := a % uint64(m.groupBlocks)
	a /= uint64(m.groupBlocks)
	ch := a % uint64(o.Channels)
	a /= uint64(o.Channels)
	bg := a % uint64(o.BankGroups)
	a /= uint64(o.BankGroups)
	bank := a % uint64(o.BanksPerGroup)
	a /= uint64(o.BanksPerGroup)
	rank := a % uint64(o.RanksPerChannel)
	a /= uint64(o.RanksPerChannel)
	groupsPerRow := blocksPerRow / uint64(m.groupBlocks)
	colGroup := a % groupsPerRow
	a /= groupsPerRow
	row := a % uint64(o.RowsPerBank())

	return Location{
		BankID: BankID{
			Channel: int(ch),
			Rank:    int(rank),
			Bank:    int(bg)*o.BanksPerGroup + int(bank),
		},
		Row: int(row),
		Col: int(colGroup)*m.groupBlocks + int(groupOff),
	}
}

// Addr inverts Map: it returns the smallest physical byte address that
// decodes to loc (the block-aligned address of loc's cache block).
// Out-of-range fields are reduced modulo their dimension, mirroring
// Map's modular decode, so Addr(Map(a)) == a&^(blockBytes-1) for every
// in-capacity address. Adversarial workloads use it to aim accesses at
// specific rows.
func (m *MOPMapper) Addr(loc Location) uint64 {
	o := m.org
	blocksPerRow := uint64(o.RowBytes / m.blockBytes)
	groupsPerRow := blocksPerRow / uint64(m.groupBlocks)

	groupOff := uint64(loc.Col%m.groupBlocks) % uint64(m.groupBlocks)
	colGroup := uint64(loc.Col/m.groupBlocks) % groupsPerRow
	bg := uint64(loc.Bank/o.BanksPerGroup) % uint64(o.BankGroups)
	bank := uint64(loc.Bank%o.BanksPerGroup) % uint64(o.BanksPerGroup)

	a := uint64(loc.Row) % uint64(o.RowsPerBank())
	a = a*groupsPerRow + colGroup
	a = a*uint64(o.RanksPerChannel) + uint64(loc.Rank)%uint64(o.RanksPerChannel)
	a = a*uint64(o.BanksPerGroup) + bank
	a = a*uint64(o.BankGroups) + bg
	a = a*uint64(o.Channels) + uint64(loc.Channel)%uint64(o.Channels)
	a = a*uint64(m.groupBlocks) + groupOff
	return a * uint64(m.blockBytes)
}

// RowStride returns the smallest address increment that changes only the
// row, keeping channel/rank/bank fixed. Useful for constructing adversarial
// (row-conflict) access patterns in tests and workloads.
func (m *MOPMapper) RowStride() uint64 {
	o := m.org
	blocksPerRow := uint64(o.RowBytes / m.blockBytes)
	return uint64(m.blockBytes) * uint64(m.groupBlocks) *
		uint64(o.Channels) * uint64(o.BankGroups) * uint64(o.BanksPerGroup) *
		uint64(o.RanksPerChannel) * (blocksPerRow / uint64(m.groupBlocks))
}

// Validate checks that the mapper's organization is usable.
func (m *MOPMapper) Validate() error {
	if err := m.org.Validate(); err != nil {
		return err
	}
	if m.org.RowBytes%m.blockBytes != 0 {
		return fmt.Errorf("dram: row size %d not a multiple of block size %d", m.org.RowBytes, m.blockBytes)
	}
	if (m.org.RowBytes/m.blockBytes)%m.groupBlocks != 0 {
		return fmt.Errorf("dram: blocks per row not a multiple of MOP group %d", m.groupBlocks)
	}
	return nil
}
