package dram

import (
	"fmt"
	"math"
)

// Timing is a DRAM timing parameter set. All values are durations in
// picoseconds (dram.Time).
//
// The subset modelled here is the one the HiRA paper's evaluation depends
// on: row timing (tRCD/tRAS/tRP/tRC), refresh (tRFC/tREFI/tREFW), power
// (tFAW), column access and bus occupancy (CL/CWL/tBL/tCCD/tRTP/tWR), and
// the HiRA-specific t1/t2 command spacings.
type Timing struct {
	// TCK is the command-clock period. One command can be issued per TCK
	// per channel command bus.
	TCK Time

	// Row commands.
	TRCD Time // ACT -> RD/WR
	TRAS Time // ACT -> PRE (charge restoration complete)
	TRP  Time // PRE -> ACT (bitline precharge complete)
	TRC  Time // ACT -> ACT, same bank (tRAS + tRP)

	// Refresh.
	TRFC  Time // REF -> next command to the rank
	TREFI Time // average interval between REF commands
	TREFW Time // retention window: every row refreshed once per TREFW

	// Power constraint: at most four ACTs to a rank per rolling TFAW.
	TFAW Time

	// Column access.
	CL    Time // RD -> data start (CAS latency)
	CWL   Time // WR -> data start (CAS write latency)
	TBL   Time // data burst duration (BL8)
	TCCD  Time // RD->RD / WR->WR minimum spacing, same bank group
	TRTP  Time // RD -> PRE
	TWR   Time // end of write burst -> PRE (write recovery)
	TRRD  Time // ACT -> ACT, different bank groups, same rank (tRRD_S)
	TRRDL Time // ACT -> ACT, same bank group (tRRD_L)

	// HiRA command spacings (§3): T1 is the first-ACT-to-PRE latency and
	// T2 the PRE-to-second-ACT latency of a HiRA sequence. The paper's
	// characterization finds T1 = T2 = 3 ns reliable.
	T1 Time
	T2 Time
}

// DDR4_2400 returns the DDR4-2400 timing set used throughout the paper
// (Table 3: tRC = 46.25 ns, tFAW = 16 ns, t1 = t2 = 3 ns), with tRFC set
// for the given chip capacity via RefreshLatencyForCapacity.
func DDR4_2400(chipCapacityGbit int) Timing {
	t := Timing{
		TCK:   FromNanoseconds(0.833),
		TRCD:  FromNanoseconds(14.25),
		TRAS:  FromNanoseconds(32.0),
		TRP:   FromNanoseconds(14.25),
		TRC:   FromNanoseconds(46.25),
		TRFC:  RefreshLatencyForCapacity(chipCapacityGbit),
		TREFI: FromNanoseconds(7800),
		TREFW: 64 * Millisecond,
		TFAW:  FromNanoseconds(16),
		CL:    FromNanoseconds(13.32),
		CWL:   FromNanoseconds(10.0),
		TBL:   FromNanoseconds(3.33),
		TCCD:  FromNanoseconds(5.0),
		TRTP:  FromNanoseconds(7.5),
		TWR:   FromNanoseconds(15.0),
		TRRD:  FromNanoseconds(3.3),
		TRRDL: FromNanoseconds(4.9),
		T1:    3 * Nanosecond,
		T2:    3 * Nanosecond,
	}
	return t
}

// RefreshLatencyForCapacity implements the paper's Expression 1, the
// state-of-the-art regression model for projecting refresh latency to
// high-capacity chips:
//
//	tRFC = 110 ns × C^0.6, C in Gbit.
func RefreshLatencyForCapacity(gbit int) Time {
	return FromNanoseconds(110 * math.Pow(float64(gbit), 0.6))
}

// Validate reports the first internally inconsistent parameter, if any.
func (t Timing) Validate() error {
	pos := func(name string, v Time) error {
		if v <= 0 {
			return fmt.Errorf("dram: Timing.%s must be positive, got %v", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    Time
	}{
		{"TCK", t.TCK}, {"TRCD", t.TRCD}, {"TRAS", t.TRAS}, {"TRP", t.TRP},
		{"TRC", t.TRC}, {"TRFC", t.TRFC}, {"TREFI", t.TREFI}, {"TREFW", t.TREFW},
		{"TFAW", t.TFAW}, {"CL", t.CL}, {"CWL", t.CWL}, {"TBL", t.TBL},
		{"TCCD", t.TCCD}, {"TRTP", t.TRTP}, {"TWR", t.TWR}, {"TRRD", t.TRRD}, {"TRRDL", t.TRRDL},
		{"T1", t.T1}, {"T2", t.T2},
	} {
		if err := pos(f.name, f.v); err != nil {
			return err
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("dram: tRC (%v) < tRAS+tRP (%v)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TREFI >= t.TREFW {
		return fmt.Errorf("dram: tREFI (%v) >= tREFW (%v)", t.TREFI, t.TREFW)
	}
	if t.TRFC >= t.TREFI {
		return fmt.Errorf("dram: tRFC (%v) >= tREFI (%v): refresh would starve the rank", t.TRFC, t.TREFI)
	}
	return nil
}

// HiRAPairLatency returns the total latency of refreshing two rows with one
// HiRA operation: t1 + t2 + tRAS (the paper's 38 ns with t1 = t2 = 3 ns).
func (t Timing) HiRAPairLatency() Time { return t.T1 + t.T2 + t.TRAS }

// ConventionalPairLatency returns the latency of refreshing two rows with
// nominal timings: tRAS + tRP + tRAS (the paper's 78.25 ns).
func (t Timing) ConventionalPairLatency() Time { return t.TRAS + t.TRP + t.TRAS }

// HiRAPairSavings returns the fractional latency reduction of
// HiRAPairLatency over ConventionalPairLatency (the paper's 51.4 %).
func (t Timing) HiRAPairSavings() float64 {
	c := t.ConventionalPairLatency()
	return float64(c-t.HiRAPairLatency()) / float64(c)
}

// RowsPerREF returns how many rows one REF command must refresh in each
// bank so that all rows are covered within tREFW: rowsPerBank / (tREFW /
// tREFI). For the paper's 64 K-row banks this is 8.
func (t Timing) RowsPerREF(rowsPerBank int) int {
	refsPerWindow := int(t.TREFW / t.TREFI)
	if refsPerWindow == 0 {
		return rowsPerBank
	}
	n := (rowsPerBank + refsPerWindow - 1) / refsPerWindow
	if n < 1 {
		n = 1
	}
	return n
}

// PeriodicRowInterval returns how often one row-granularity refresh must be
// generated per bank to cover rowsPerBank rows within tREFW (the paper's
// 975 ns for 64 K rows).
func (t Timing) PeriodicRowInterval(rowsPerBank int) Time {
	if rowsPerBank <= 0 {
		return t.TREFW
	}
	return t.TREFW / Time(rowsPerBank)
}
