package dram

import "fmt"

// Org describes the organization of a DRAM main-memory system from the
// memory controller's point of view: how many channels, ranks per channel,
// bank groups and banks, and how each bank is divided into subarrays and
// rows.
//
// The zero value is not useful; construct with DefaultOrg or fill all
// fields and call Validate.
type Org struct {
	// Channels is the number of independent memory channels. Channels do
	// not share command, address, or data buses.
	Channels int
	// RanksPerChannel is the number of ranks sharing each channel's buses.
	RanksPerChannel int
	// BankGroups is the number of bank groups per rank (DDR4: 4).
	BankGroups int
	// BanksPerGroup is the number of banks per bank group (DDR4: 4).
	BanksPerGroup int
	// SubarraysPerBank is the number of subarrays in each bank. The HiRA
	// paper models 128 subarrays per bank (§6, SPT sizing).
	SubarraysPerBank int
	// RowsPerSubarray is the number of DRAM rows in each subarray.
	RowsPerSubarray int
	// RowBytes is the size of one DRAM row (the paper's examples use 8 KB).
	RowBytes int
	// ChipCapacityGbit is the per-chip capacity in gigabits; it determines
	// tRFC via Timing.ScaleRefreshToCapacity and is recorded for reporting.
	ChipCapacityGbit int
}

// DefaultOrg returns the simulated system configuration of the paper's
// Table 3: 4 bank groups × 4 banks (16 banks per rank) and 64 K rows per
// bank (128 subarrays × 512 rows), 8 KB rows, 8 Gb chips.
//
// Channels and ranks default to 1 each; §10's sensitivity studies sweep
// them from 1 to 8.
func DefaultOrg() Org {
	return Org{
		Channels:         1,
		RanksPerChannel:  1,
		BankGroups:       4,
		BanksPerGroup:    4,
		SubarraysPerBank: 128,
		RowsPerSubarray:  512,
		RowBytes:         8 << 10,
		ChipCapacityGbit: 8,
	}
}

// OrgForCapacity returns DefaultOrg scaled so that the number of rows per
// bank tracks chip capacity: 8 Gb chips have 64 K rows per bank (Table 3),
// and each doubling of capacity doubles the rows per subarray. This is how
// the paper's capacity sweep (Fig. 9) increases the number of rows that
// periodic refresh must cover.
func OrgForCapacity(gbit int) Org {
	o := DefaultOrg()
	o.ChipCapacityGbit = gbit
	// 8 Gb -> 512 rows/subarray. Scale proportionally, minimum 64.
	rows := 512 * gbit / 8
	if rows < 64 {
		rows = 64
	}
	o.RowsPerSubarray = rows
	return o
}

// Validate reports an error describing the first invalid field, if any.
func (o Org) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("dram: Org.%s must be positive, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", o.Channels},
		{"RanksPerChannel", o.RanksPerChannel},
		{"BankGroups", o.BankGroups},
		{"BanksPerGroup", o.BanksPerGroup},
		{"SubarraysPerBank", o.SubarraysPerBank},
		{"RowsPerSubarray", o.RowsPerSubarray},
		{"RowBytes", o.RowBytes},
		{"ChipCapacityGbit", o.ChipCapacityGbit},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// BanksPerRank returns the number of banks in one rank.
func (o Org) BanksPerRank() int { return o.BankGroups * o.BanksPerGroup }

// BanksPerChannel returns the number of banks behind one channel.
func (o Org) BanksPerChannel() int { return o.RanksPerChannel * o.BanksPerRank() }

// TotalBanks returns the number of banks in the whole system.
func (o Org) TotalBanks() int { return o.Channels * o.BanksPerChannel() }

// RowsPerBank returns the number of rows in one bank.
func (o Org) RowsPerBank() int { return o.SubarraysPerBank * o.RowsPerSubarray }

// TotalRows returns the number of rows in the whole system.
func (o Org) TotalRows() int { return o.TotalBanks() * o.RowsPerBank() }

// CapacityBytes returns the total byte capacity of the system.
func (o Org) CapacityBytes() int64 {
	return int64(o.TotalRows()) * int64(o.RowBytes)
}

// SubarrayOfRow returns the subarray index that contains row.
func (o Org) SubarrayOfRow(row int) int { return row / o.RowsPerSubarray }

// BankID identifies one bank in the system.
type BankID struct {
	Channel int
	Rank    int
	// Bank is the flat bank index within the rank:
	// bankGroup*BanksPerGroup + bankInGroup.
	Bank int
}

// BankGroup returns the DDR4 bank group of b under org o.
func (b BankID) BankGroup(o Org) int { return b.Bank / o.BanksPerGroup }

// FlatChannelIndex returns a dense index of the bank within its channel.
func (b BankID) FlatChannelIndex(o Org) int {
	return b.Rank*o.BanksPerRank() + b.Bank
}

// Flat returns a dense index of the bank within the whole system.
func (b BankID) Flat(o Org) int {
	return b.Channel*o.BanksPerChannel() + b.FlatChannelIndex(o)
}

func (b BankID) String() string {
	return fmt.Sprintf("ch%d/rk%d/ba%d", b.Channel, b.Rank, b.Bank)
}

// Location is a fully decoded DRAM address.
type Location struct {
	BankID
	Row int
	Col int
}

func (l Location) String() string {
	return fmt.Sprintf("%v/row%d/col%d", l.BankID, l.Row, l.Col)
}
