package dram

import "fmt"

// RefreshAuditor tracks, per DRAM row, when the row's charge was last
// restored, and reports rows that exceed the retention window tREFW.
//
// Charge is restored by:
//   - a REF command, which refreshes the next RowsPerREF rows of every
//     bank in the rank, advancing an internal per-bank pointer exactly as a
//     DRAM chip's internal refresh counter does; and
//   - an ACT to a row (including both activations of a HiRA sequence),
//     which fully restores that row's cells.
//
// The auditor is the ground truth for the paper's data-integrity invariant:
// under any refresh scheduling policy, no row may ever go unrefreshed for
// longer than tREFW.
type RefreshAuditor struct {
	org Org
	t   Timing

	lastRefresh [][]Time // [flatBank][row]
	refPtr      []int    // [flatBank] next row a REF will refresh
	rowsPerREF  int
}

// NewRefreshAuditor returns an auditor with every row considered refreshed
// at time 0 (freshly initialized memory).
func NewRefreshAuditor(org Org, t Timing) *RefreshAuditor {
	a := &RefreshAuditor{
		org:        org,
		t:          t,
		rowsPerREF: t.RowsPerREF(org.RowsPerBank()),
	}
	a.lastRefresh = make([][]Time, org.TotalBanks())
	for i := range a.lastRefresh {
		a.lastRefresh[i] = make([]Time, org.RowsPerBank())
	}
	a.refPtr = make([]int, org.TotalBanks())
	return a
}

// RowsPerREF reports how many rows per bank each REF command restores.
func (a *RefreshAuditor) RowsPerREF() int { return a.rowsPerREF }

// Observe updates refresh state from one command.
func (a *RefreshAuditor) Observe(c Command) {
	switch c.Kind {
	case KindACT:
		bank := c.Loc.Flat(a.org)
		a.lastRefresh[bank][c.Loc.Row] = c.At
	case KindREF:
		for b := 0; b < a.org.BanksPerRank(); b++ {
			cc := c
			cc.Loc.Bank = b
			flat := cc.Loc.Flat(a.org)
			ptr := a.refPtr[flat]
			for i := 0; i < a.rowsPerREF; i++ {
				a.lastRefresh[flat][ptr] = c.At
				ptr++
				if ptr == a.org.RowsPerBank() {
					ptr = 0
				}
			}
			a.refPtr[flat] = ptr
		}
	}
}

// StaleRow describes a row that has exceeded the retention window.
type StaleRow struct {
	Bank BankID
	Row  int
	// Age is the time elapsed since the row's last refresh.
	Age Time
}

func (s StaleRow) String() string {
	return fmt.Sprintf("%v/row%d stale for %v", s.Bank, s.Row, s.Age)
}

// StaleAt returns every row whose last refresh is more than tREFW before
// now. The result is capped at limit entries (limit <= 0 means unlimited).
func (a *RefreshAuditor) StaleAt(now Time, limit int) []StaleRow {
	var out []StaleRow
	for flat, rows := range a.lastRefresh {
		bank := a.bankFromFlat(flat)
		for row, last := range rows {
			if now-last > a.t.TREFW {
				out = append(out, StaleRow{Bank: bank, Row: row, Age: now - last})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// OldestAge returns the largest refresh age across all rows at time now.
func (a *RefreshAuditor) OldestAge(now Time) Time {
	var oldest Time
	for _, rows := range a.lastRefresh {
		for _, last := range rows {
			if age := now - last; age > oldest {
				oldest = age
			}
		}
	}
	return oldest
}

func (a *RefreshAuditor) bankFromFlat(flat int) BankID {
	perChan := a.org.BanksPerChannel()
	ch := flat / perChan
	rem := flat % perChan
	rank := rem / a.org.BanksPerRank()
	return BankID{Channel: ch, Rank: rank, Bank: rem % a.org.BanksPerRank()}
}
