package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{FromNanoseconds(46.25), "46.25ns"},
		{7800 * Nanosecond, "7.8us"},
		{64 * Millisecond, "64ms"},
		{-3 * Nanosecond, "-3ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromNanosecondsRoundTrip(t *testing.T) {
	f := func(ns int32) bool {
		return FromNanoseconds(float64(ns)) == Time(ns)*Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultOrg(t *testing.T) {
	o := DefaultOrg()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.BanksPerRank(); got != 16 {
		t.Errorf("BanksPerRank = %d, want 16 (Table 3)", got)
	}
	if got := o.RowsPerBank(); got != 64<<10 {
		t.Errorf("RowsPerBank = %d, want 64K (Table 3)", got)
	}
}

func TestOrgForCapacityScalesRows(t *testing.T) {
	cases := []struct {
		gbit, rowsPerBank int
	}{
		{2, 16 << 10},
		{4, 32 << 10},
		{8, 64 << 10},
		{16, 128 << 10},
		{32, 256 << 10},
		{64, 512 << 10},
		{128, 1024 << 10},
	}
	for _, c := range cases {
		o := OrgForCapacity(c.gbit)
		if err := o.Validate(); err != nil {
			t.Fatalf("cap %d: %v", c.gbit, err)
		}
		if got := o.RowsPerBank(); got != c.rowsPerBank {
			t.Errorf("cap %dGb: RowsPerBank = %d, want %d", c.gbit, got, c.rowsPerBank)
		}
	}
}

func TestOrgValidateRejectsZeroFields(t *testing.T) {
	o := DefaultOrg()
	o.Channels = 0
	if err := o.Validate(); err == nil {
		t.Error("Validate accepted zero Channels")
	}
}

func TestBankIDFlatIsDenseAndUnique(t *testing.T) {
	o := DefaultOrg()
	o.Channels, o.RanksPerChannel = 2, 2
	seen := make(map[int]BankID)
	for ch := 0; ch < o.Channels; ch++ {
		for rk := 0; rk < o.RanksPerChannel; rk++ {
			for b := 0; b < o.BanksPerRank(); b++ {
				id := BankID{Channel: ch, Rank: rk, Bank: b}
				f := id.Flat(o)
				if f < 0 || f >= o.TotalBanks() {
					t.Fatalf("Flat(%v) = %d out of range", id, f)
				}
				if prev, dup := seen[f]; dup {
					t.Fatalf("Flat collision: %v and %v both map to %d", prev, id, f)
				}
				seen[f] = id
			}
		}
	}
	if len(seen) != o.TotalBanks() {
		t.Errorf("covered %d flat indices, want %d", len(seen), o.TotalBanks())
	}
}

func TestDDR4TimingValues(t *testing.T) {
	tm := DDR4_2400(8)
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.TRC != FromNanoseconds(46.25) {
		t.Errorf("tRC = %v, want 46.25ns (Table 3)", tm.TRC)
	}
	if tm.TFAW != 16*Nanosecond {
		t.Errorf("tFAW = %v, want 16ns (Table 3)", tm.TFAW)
	}
	if tm.T1 != 3*Nanosecond || tm.T2 != 3*Nanosecond {
		t.Errorf("t1,t2 = %v,%v, want 3ns each (§4.2)", tm.T1, tm.T2)
	}
	if tm.TRC < tm.TRAS+tm.TRP {
		t.Errorf("tRC %v < tRAS+tRP %v", tm.TRC, tm.TRAS+tm.TRP)
	}
}

func TestRefreshLatencyForCapacityMatchesExpression1(t *testing.T) {
	// tRFC = 110 * C^0.6 ns (Expression 1).
	for _, gbit := range []int{2, 4, 8, 16, 32, 64, 128} {
		want := 110 * math.Pow(float64(gbit), 0.6)
		got := RefreshLatencyForCapacity(gbit).Nanoseconds()
		if math.Abs(got-want) > 0.01 {
			t.Errorf("tRFC(%dGb) = %.2fns, want %.2fns", gbit, got, want)
		}
	}
	// Sanity anchor: 8Gb should land near DDR4's real 350ns.
	got := RefreshLatencyForCapacity(8).Nanoseconds()
	if got < 300 || got > 450 {
		t.Errorf("tRFC(8Gb) = %.1fns, implausibly far from ~350ns", got)
	}
}

func TestHiRAPairLatencyMatchesPaper(t *testing.T) {
	tm := DDR4_2400(8)
	// §4.2: HiRA refreshes two rows in t1+t2+tRAS = 38ns...
	if got := tm.HiRAPairLatency(); got != 38*Nanosecond {
		t.Errorf("HiRAPairLatency = %v, want 38ns", got)
	}
	// ...instead of tRAS+tRP+tRAS = 78.25ns...
	if got := tm.ConventionalPairLatency(); got != FromNanoseconds(78.25) {
		t.Errorf("ConventionalPairLatency = %v, want 78.25ns", got)
	}
	// ...a 51.4% reduction.
	if got := tm.HiRAPairSavings(); math.Abs(got-0.514) > 0.002 {
		t.Errorf("HiRAPairSavings = %.4f, want 0.514", got)
	}
}

func TestRowsPerREF(t *testing.T) {
	tm := DDR4_2400(8)
	// 64K rows, 8192 REFs per 64ms window -> 8 rows per REF (§5.1.1).
	if got := tm.RowsPerREF(64 << 10); got != 8 {
		t.Errorf("RowsPerREF(64K) = %d, want 8", got)
	}
	if got := tm.RowsPerREF(16 << 10); got != 2 {
		t.Errorf("RowsPerREF(16K) = %d, want 2", got)
	}
}

func TestPeriodicRowInterval(t *testing.T) {
	tm := DDR4_2400(8)
	// §5.1.1: 64K HiRA operations once every ~975ns.
	got := tm.PeriodicRowInterval(64 << 10)
	if got < FromNanoseconds(975) || got > FromNanoseconds(977) {
		t.Errorf("PeriodicRowInterval(64K) = %v, want ~976ns", got)
	}
}

func TestMOPMapperRoundTripProperties(t *testing.T) {
	o := DefaultOrg()
	o.Channels, o.RanksPerChannel = 2, 2
	m := NewMOPMapper(o)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		addr := uint64(raw) * 64 // block aligned
		loc := m.Map(addr)
		return loc.Channel >= 0 && loc.Channel < o.Channels &&
			loc.Rank >= 0 && loc.Rank < o.RanksPerChannel &&
			loc.Bank >= 0 && loc.Bank < o.BanksPerRank() &&
			loc.Row >= 0 && loc.Row < o.RowsPerBank() &&
			loc.Col >= 0 && loc.Col < o.RowBytes/64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMOPMapperAddrInvertsMap: Addr is Map's exact inverse over every
// in-capacity block address, across asymmetric organizations (distinct
// channel/rank counts shake out transposed mixed-radix digits).
func TestMOPMapperAddrInvertsMap(t *testing.T) {
	for _, shape := range []struct{ ch, rk int }{{1, 1}, {2, 1}, {1, 2}, {2, 4}, {4, 2}} {
		o := DefaultOrg()
		o.Channels, o.RanksPerChannel = shape.ch, shape.rk
		m := NewMOPMapper(o)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		cap := uint64(o.CapacityBytes())
		f := func(raw uint32, off uint8) bool {
			addr := (uint64(raw)*64 + uint64(off)) % cap
			loc := m.Map(addr)
			return m.Addr(loc) == addr&^63
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("org %dch/%drk: %v", shape.ch, shape.rk, err)
		}
		// And the forward direction: Addr must decode back to the
		// location it was built from, for every field at its extremes.
		for _, loc := range []Location{
			{},
			{BankID: BankID{Channel: o.Channels - 1, Rank: o.RanksPerChannel - 1, Bank: o.BanksPerRank() - 1},
				Row: o.RowsPerBank() - 1, Col: o.RowBytes/64 - 1},
			{BankID: BankID{Bank: 5}, Row: 12345, Col: 17},
		} {
			if got := m.Map(m.Addr(loc)); got != loc {
				t.Errorf("org %dch/%drk: Map(Addr(%v)) = %v", shape.ch, shape.rk, loc, got)
			}
		}
	}
}

func TestMOPMapperSpreadsBlocksAcrossChannels(t *testing.T) {
	o := DefaultOrg()
	o.Channels = 4
	m := NewMOPMapper(o)
	group := uint64(m.groupBlocks * m.blockBytes)
	var chans []int
	for i := uint64(0); i < 4; i++ {
		chans = append(chans, m.Map(i*group).Channel)
	}
	seen := map[int]bool{}
	for _, c := range chans {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("4 consecutive MOP groups map to channels %v, want all distinct", chans)
	}
}

func TestMOPMapperKeepsGroupInRow(t *testing.T) {
	o := DefaultOrg()
	m := NewMOPMapper(o)
	base := m.Map(0)
	for i := 1; i < m.groupBlocks; i++ {
		loc := m.Map(uint64(i * m.blockBytes))
		if loc.BankID != base.BankID || loc.Row != base.Row {
			t.Errorf("block %d left the MOP group: %v vs %v", i, loc, base)
		}
	}
}

func TestMOPMapperRowStride(t *testing.T) {
	o := DefaultOrg()
	m := NewMOPMapper(o)
	a, b := m.Map(0), m.Map(m.RowStride())
	if a.BankID != b.BankID {
		t.Fatalf("RowStride changed bank: %v -> %v", a, b)
	}
	if b.Row == a.Row {
		t.Fatalf("RowStride did not change row: %v -> %v", a, b)
	}
}

func TestMOPMapperDistinctAddressesDistinctLocations(t *testing.T) {
	o := DefaultOrg()
	m := NewMOPMapper(o)
	seen := make(map[Location]uint64)
	// The capacity must be exhausted before any location repeats; check a
	// window of addresses.
	for i := uint64(0); i < 1<<14; i++ {
		addr := i * 64
		loc := m.Map(addr)
		if prev, dup := seen[loc]; dup {
			t.Fatalf("addresses %#x and %#x both map to %v", prev, addr, loc)
		}
		seen[loc] = addr
	}
}

// buildHiRATrace constructs a legal HiRA refresh-refresh sequence followed
// by a normal close.
func buildHiRATrace(tm Timing, at Time, bank BankID, rowA, rowB int) []Command {
	loc := func(row int) Location { return Location{BankID: bank, Row: row} }
	t1, t2 := tm.T1, tm.T2
	return []Command{
		{Kind: KindACT, At: at, Loc: loc(rowA), Phase: HiRAFirstACT},
		{Kind: KindPRE, At: at + t1, Loc: loc(rowA), Phase: HiRAInterruptPRE},
		{Kind: KindACT, At: at + t1 + t2, Loc: loc(rowB), Phase: HiRASecondACT},
		{Kind: KindPRE, At: at + t1 + t2 + tm.TRAS, Loc: loc(rowB)},
	}
}

func TestVerifierAcceptsLegalReadSequence(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	v := NewVerifier(o, tm)
	loc := Location{Row: 42, Col: 3}
	cmds := []Command{
		{Kind: KindACT, At: 0, Loc: loc},
		{Kind: KindRD, At: tm.TRCD, Loc: loc},
		{Kind: KindRD, At: tm.TRCD + tm.TCCD, Loc: loc},
		{Kind: KindPRE, At: tm.TRAS + tm.TRTP, Loc: loc},
		{Kind: KindACT, At: tm.TRAS + tm.TRTP + tm.TRP, Loc: Location{Row: 7}},
	}
	for _, c := range cmds {
		v.Check(c)
	}
	if err := v.Err(); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}
}

func TestVerifierAcceptsHiRASequence(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	v := NewVerifier(o, tm)
	for _, c := range buildHiRATrace(tm, 0, BankID{}, 10, 600) {
		v.Check(c)
	}
	if err := v.Err(); err != nil {
		t.Fatalf("HiRA trace rejected: %v", err)
	}
}

func TestVerifierRejectsViolations(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	loc := Location{Row: 42}
	cases := []struct {
		name string
		cmds []Command
	}{
		{"tRCD", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindRD, At: tm.TRCD - Nanosecond, Loc: loc},
		}},
		{"tRAS", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindPRE, At: tm.TRAS - Nanosecond, Loc: loc},
		}},
		{"tRP", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindPRE, At: tm.TRAS, Loc: loc},
			{Kind: KindACT, At: tm.TRAS + tm.TRP - Nanosecond, Loc: loc},
		}},
		{"read to closed bank", []Command{
			{Kind: KindRD, At: 0, Loc: loc},
		}},
		{"wrong open row", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindRD, At: tm.TRCD, Loc: Location{Row: 43}},
		}},
		{"ACT to open bank", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindACT, At: tm.TRC, Loc: Location{Row: 43}},
		}},
		{"REF with open bank", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindREF, At: tm.TRAS, Loc: loc},
		}},
		{"command during tRFC", []Command{
			{Kind: KindREF, At: 0, Loc: loc},
			{Kind: KindACT, At: tm.TRFC / 2, Loc: loc},
		}},
		{"HiRA second ACT unarmed", []Command{
			{Kind: KindACT, At: 0, Loc: loc, Phase: HiRASecondACT},
		}},
		{"HiRA bad t2", []Command{
			{Kind: KindACT, At: 0, Loc: loc, Phase: HiRAFirstACT},
			{Kind: KindPRE, At: tm.T1, Loc: loc, Phase: HiRAInterruptPRE},
			{Kind: KindACT, At: tm.T1 + tm.T2 + Nanosecond, Loc: Location{Row: 600}, Phase: HiRASecondACT},
		}},
		{"command bus conflict", []Command{
			{Kind: KindACT, At: 0, Loc: loc},
			{Kind: KindACT, At: tm.TCK / 2, Loc: Location{BankID: BankID{Bank: 5}, Row: 1}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := NewVerifier(o, tm)
			for _, cmd := range c.cmds {
				v.Check(cmd)
			}
			if err := v.Err(); err == nil {
				t.Errorf("verifier accepted illegal trace %q", c.name)
			}
		})
	}
}

func TestVerifierTFAW(t *testing.T) {
	o := DefaultOrg()
	// The paper's tFAW (16ns) can never bind at tRRD spacing; widen it so
	// the four-activation-window logic is exercised.
	tm := DDR4_2400(8)
	tm.TFAW = 30 * Nanosecond
	v := NewVerifier(o, tm)
	// Five ACTs within one tFAW window must fail. Alternate bank groups
	// and space by tRRD_S so tRRD itself is not the violation.
	banks := []int{0, 4, 8, 12, 1}
	at := Time(0)
	for _, b := range banks {
		v.Check(Command{Kind: KindACT, At: at, Loc: Location{BankID: BankID{Bank: b}, Row: 1}})
		at += tm.TRRD
	}
	if err := v.Err(); err == nil {
		t.Error("verifier accepted 5 ACTs inside tFAW")
	}
	// Four ACTs then a fifth past both the window and tRRD must pass.
	v2 := NewVerifier(o, tm)
	at = 0
	for _, b := range banks[:4] {
		v2.Check(Command{Kind: KindACT, At: at, Loc: Location{BankID: BankID{Bank: b}, Row: 1}})
		at += tm.TRRD
	}
	v2.Check(Command{Kind: KindACT, At: tm.TFAW + tm.TCK, Loc: Location{BankID: BankID{Bank: 1}, Row: 1}})
	if err := v2.Err(); err != nil {
		t.Errorf("verifier rejected legal tFAW pacing: %v", err)
	}
}

func TestVerifierCheckTraceSorts(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	loc := Location{Row: 42}
	cmds := []Command{
		{Kind: KindPRE, At: tm.TRAS, Loc: loc},
		{Kind: KindACT, At: 0, Loc: loc},
	}
	if vs := NewVerifier(o, tm).CheckTrace(cmds); len(vs) != 0 {
		t.Errorf("CheckTrace found violations in legal unordered trace: %v", vs)
	}
}

func TestRefreshAuditorREFAdvancesPointer(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	a := NewRefreshAuditor(o, tm)
	if a.RowsPerREF() != 8 {
		t.Fatalf("RowsPerREF = %d, want 8", a.RowsPerREF())
	}
	// Issue exactly one refresh window's worth of REFs; every row must be
	// refreshed and nothing stale.
	refs := o.RowsPerBank() / a.RowsPerREF()
	at := Time(0)
	for i := 0; i < refs; i++ {
		at += tm.TREFI
		a.Observe(Command{Kind: KindREF, At: at})
	}
	// Right after the sweep finishes, the earliest-refreshed rows are one
	// sweep old (< tREFW): nothing may be stale.
	if stale := a.StaleAt(at, 5); len(stale) != 0 {
		t.Errorf("rows stale after full REF sweep: %v", stale)
	}
}

func TestRefreshAuditorDetectsStaleness(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	a := NewRefreshAuditor(o, tm)
	stale := a.StaleAt(tm.TREFW+Nanosecond, 3)
	if len(stale) == 0 {
		t.Fatal("no stale rows reported after tREFW with no refreshes")
	}
	if len(stale) > 3 {
		t.Errorf("limit not honoured: got %d entries", len(stale))
	}
}

func TestRefreshAuditorACTRefreshesRow(t *testing.T) {
	o := DefaultOrg()
	tm := DDR4_2400(8)
	a := NewRefreshAuditor(o, tm)
	a.Observe(Command{Kind: KindACT, At: tm.TREFW, Loc: Location{Row: 5}})
	for _, s := range a.StaleAt(tm.TREFW+Nanosecond, 0) {
		if s.Row == 5 && s.Bank == (BankID{}) {
			t.Error("activated row still reported stale")
		}
	}
	if age := a.OldestAge(tm.TREFW + Nanosecond); age <= tm.TREFW {
		t.Errorf("OldestAge = %v, want > tREFW", age)
	}
}
