// Package dram models the organization, command set, and timing behaviour of
// DDR4 SDRAM devices as seen by a memory controller.
//
// The package provides:
//
//   - Time, a picosecond-resolution simulation clock type;
//   - Org, the channel/rank/bank-group/bank/subarray/row hierarchy;
//   - Timing, a JEDEC-style timing parameter set (DDR4-2400 by default) with
//     the capacity-scaled refresh latency model tRFC = 110·C^0.6 ns used by
//     the HiRA paper (Expression 1);
//   - Command and Kind, the DDR4 command vocabulary relevant to HiRA
//     (ACT, PRE, PREA, RD, WR, REF) plus markers for the two halves of a
//     HiRA sequence; and
//   - Verifier, a command-trace checker that enforces the timing
//     constraints, treating HiRA's deliberately violated ACT–PRE–ACT
//     spacing as the single sanctioned exception.
//
// All simulators and schedulers in this repository express time in
// dram.Time and are checked against dram.Verifier in tests.
package dram

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
//
// Picosecond resolution lets DDR4-2400's 833 ps clock, the paper's
// 46.25 ns tRC, and its 3 ns t1/t2 HiRA parameters all be represented
// exactly as integers.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time in the most natural unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%gms", float64(t)/float64(Millisecond))
	}
}

// FromNanoseconds converts a floating-point nanosecond quantity to Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	if ns < 0 {
		return -FromNanoseconds(-ns)
	}
	return Time(ns*float64(Nanosecond) + 0.5)
}

// maxTime is a sentinel "never" value safe to add small durations to.
const maxTime = Time(1) << 62

// MaxTime reports the sentinel "never happens" time used by schedulers.
func MaxTime() Time { return maxTime }
