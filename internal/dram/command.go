package dram

import "fmt"

// Kind enumerates the DDR4 commands relevant to HiRA.
type Kind uint8

const (
	// KindNone is the zero Kind; it is never a valid command.
	KindNone Kind = iota
	// KindACT opens (activates) a row in a bank.
	KindACT
	// KindPRE precharges one bank, closing its open row.
	KindPRE
	// KindPREA precharges all banks in a rank.
	KindPREA
	// KindRD reads a column of the open row.
	KindRD
	// KindWR writes a column of the open row.
	KindWR
	// KindREF performs an all-bank refresh on a rank, occupying it for tRFC.
	KindREF
)

var kindNames = [...]string{"NONE", "ACT", "PRE", "PREA", "RD", "WR", "REF"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// HiRAPhase marks a command's role within a HiRA ACT–PRE–ACT sequence.
// Commands outside HiRA sequences use HiRANone.
type HiRAPhase uint8

const (
	// HiRANone marks an ordinary command.
	HiRANone HiRAPhase = iota
	// HiRAFirstACT is the first activation of a HiRA sequence; it targets
	// the row being refreshed "in the background" (RowA in the paper).
	HiRAFirstACT
	// HiRAInterruptPRE is the precharge issued t1 after HiRAFirstACT and
	// interrupted t2 later; it deliberately violates tRAS.
	HiRAInterruptPRE
	// HiRASecondACT is the second activation, issued t2 after the
	// interrupted precharge; it targets the row being refreshed or
	// accessed in the foreground (RowB in the paper) and deliberately
	// violates tRP.
	HiRASecondACT
)

var phaseNames = [...]string{"", "hira1", "hiraPRE", "hira2"}

func (p HiRAPhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("HiRAPhase(%d)", uint8(p))
}

// Command is one DRAM command with its issue time and target.
type Command struct {
	Kind Kind
	// At is the time the command is placed on the command bus.
	At Time
	// Loc targets the command. REF and PREA use only Channel and Rank;
	// PRE uses Channel/Rank/Bank; ACT adds Row; RD/WR add Col.
	Loc Location
	// Phase marks HiRA sequence membership (see HiRAPhase).
	Phase HiRAPhase
	// AutoPrecharge, when set on RD/WR, closes the row after the access.
	AutoPrecharge bool
}

func (c Command) String() string {
	s := fmt.Sprintf("%v %v @%v", c.Kind, c.Loc, c.At)
	if c.Phase != HiRANone {
		s += " [" + c.Phase.String() + "]"
	}
	return s
}
