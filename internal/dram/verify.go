package dram

import (
	"fmt"
	"sort"
)

// Violation describes one timing or protocol rule broken by a command
// trace.
type Violation struct {
	Cmd  Command
	Rule string
}

func (v Violation) Error() string {
	return fmt.Sprintf("dram: %s violated by %v", v.Rule, v.Cmd)
}

// Verifier checks a stream of DRAM commands against the DDR4 protocol and
// timing constraints, treating HiRA's engineered ACT–PRE–ACT sequence as
// the single sanctioned exception to tRAS and tRP.
//
// Feed commands in nondecreasing time order with Check; collected
// violations are available from Violations. A Verifier is not safe for
// concurrent use.
type Verifier struct {
	org Org
	t   Timing

	// HiRA t1/t2 acceptance windows. A HiRAInterruptPRE must trail its
	// HiRAFirstACT by a duration in [MinT1, MaxT1]; a HiRASecondACT must
	// trail the interrupted precharge by a duration in [MinT2, MaxT2].
	MinT1, MaxT1 Time
	MinT2, MaxT2 Time

	banks      []*bankState
	ranks      []*rankState
	chans      []*chanState
	violations []Violation
	lastTime   Time
}

type bankState struct {
	open        bool
	openRow     int
	lastACT     Time
	lastPRE     Time
	lastRDEnd   Time // time the last read finished occupying the row (for tRTP accounting we store RD issue)
	lastRD      Time
	lastWR      Time
	hiraArmed   bool // a HiRAInterruptPRE was seen; next ACT may be HiRASecondACT
	hiraPREAt   Time
	hiraFirst   bool // open row was opened by HiRAFirstACT
	restoreFrom Time // time charge restoration started for the open row
}

type rankState struct {
	actTimes     []Time // recent ACT times for tFAW
	lastACT      Time
	lastACTGroup int
	refBusy      Time // rank unavailable until this time due to REF
	lastCmd      Time
}

type chanState struct {
	lastCmd Time
	has     bool
}

// NewVerifier returns a Verifier for the given organization and timing.
// The HiRA windows default to exactly [T1, T1] and [T2, T2].
func NewVerifier(org Org, t Timing) *Verifier {
	v := &Verifier{
		org:   org,
		t:     t,
		MinT1: t.T1, MaxT1: t.T1,
		MinT2: t.T2, MaxT2: t.T2,
	}
	v.banks = make([]*bankState, org.TotalBanks())
	for i := range v.banks {
		v.banks[i] = &bankState{lastACT: -maxTime, lastPRE: -maxTime, lastRD: -maxTime, lastWR: -maxTime}
	}
	v.ranks = make([]*rankState, org.Channels*org.RanksPerChannel)
	for i := range v.ranks {
		v.ranks[i] = &rankState{lastACT: -maxTime, refBusy: -maxTime, lastCmd: -maxTime}
	}
	v.chans = make([]*chanState, org.Channels)
	for i := range v.chans {
		v.chans[i] = &chanState{}
	}
	v.lastTime = -maxTime
	return v
}

func (v *Verifier) fail(c Command, format string, args ...any) {
	v.violations = append(v.violations, Violation{Cmd: c, Rule: fmt.Sprintf(format, args...)})
}

// Violations returns all violations recorded so far.
func (v *Verifier) Violations() []Violation { return v.violations }

// Err returns the first violation as an error, or nil if the trace so far
// is clean.
func (v *Verifier) Err() error {
	if len(v.violations) == 0 {
		return nil
	}
	return v.violations[0]
}

func (v *Verifier) rank(c Command) *rankState {
	return v.ranks[c.Loc.Channel*v.org.RanksPerChannel+c.Loc.Rank]
}

func (v *Verifier) bank(c Command) *bankState {
	return v.banks[c.Loc.Flat(v.org)]
}

// Check validates one command against the state accumulated so far.
// Commands must arrive in nondecreasing time order.
func (v *Verifier) Check(c Command) {
	if c.At < v.lastTime {
		v.fail(c, "command order: time moved backwards (last %v)", v.lastTime)
	}
	v.lastTime = c.At

	// Channel command bus: one command per tCK.
	ch := v.chans[c.Loc.Channel]
	if ch.has && c.At-ch.lastCmd < v.t.TCK {
		v.fail(c, "command bus conflict: previous command at %v, tCK %v", ch.lastCmd, v.t.TCK)
	}
	ch.lastCmd = c.At
	ch.has = true

	// Rank refresh occupancy.
	rk := v.rank(c)
	if c.At < rk.refBusy {
		v.fail(c, "tRFC: rank busy refreshing until %v", rk.refBusy)
	}

	switch c.Kind {
	case KindACT:
		v.checkACT(c, rk)
	case KindPRE:
		v.checkPRE(c)
	case KindPREA:
		for b := 0; b < v.org.BanksPerRank(); b++ {
			cc := c
			cc.Loc.Bank = b
			if v.bank(cc).open {
				v.checkPRE(cc)
			}
		}
	case KindRD, KindWR:
		v.checkColumn(c)
	case KindREF:
		v.checkREF(c, rk)
	default:
		v.fail(c, "unknown command kind")
	}
	rk.lastCmd = c.At
}

func (v *Verifier) checkACT(c Command, rk *rankState) {
	b := v.bank(c)

	if c.Phase == HiRASecondACT {
		if !b.hiraArmed {
			v.fail(c, "HiRA second ACT without interrupted precharge")
		} else {
			gap := c.At - b.hiraPREAt
			if gap < v.MinT2 || gap > v.MaxT2 {
				v.fail(c, "HiRA t2 out of window: %v not in [%v,%v]", gap, v.MinT2, v.MaxT2)
			}
		}
		// The first row's wordline stays asserted; the second activation
		// begins the foreground row's restoration.
		b.hiraArmed = false
		b.open = true
		b.openRow = c.Loc.Row
		b.lastACT = c.At
		b.restoreFrom = c.At
		v.countACT(c, rk)
		return
	}

	if b.open {
		v.fail(c, "ACT to open bank (row %d open)", b.openRow)
	}
	if b.hiraArmed {
		v.fail(c, "non-HiRA ACT while HiRA precharge pending")
	}
	if c.At-b.lastPRE < v.t.TRP && b.lastPRE > -maxTime {
		v.fail(c, "tRP: %v since PRE, need %v", c.At-b.lastPRE, v.t.TRP)
	}
	if c.At-b.lastACT < v.t.TRC && b.lastACT > -maxTime {
		v.fail(c, "tRC: %v since ACT, need %v", c.At-b.lastACT, v.t.TRC)
	}
	b.open = true
	b.openRow = c.Loc.Row
	b.lastACT = c.At
	b.restoreFrom = c.At
	b.hiraFirst = c.Phase == HiRAFirstACT
	v.countACT(c, rk)
}

func (v *Verifier) countACT(c Command, rk *rankState) {
	// tRRD between ACTs to the same rank: tRRD_S across bank groups,
	// tRRD_L within one.
	group := c.Loc.BankGroup(v.org)
	if rk.lastACT > -maxTime {
		need := v.t.TRRD
		if group == rk.lastACTGroup {
			need = v.t.TRRDL
		}
		if c.At-rk.lastACT < need {
			v.fail(c, "tRRD: %v since rank ACT, need %v", c.At-rk.lastACT, need)
		}
	}
	rk.lastACT = c.At
	rk.lastACTGroup = group
	// tFAW: at most 4 ACTs per rolling window.
	cut := c.At - v.t.TFAW
	times := rk.actTimes[:0]
	for _, at := range rk.actTimes {
		if at > cut {
			times = append(times, at)
		}
	}
	rk.actTimes = append(times, c.At)
	if len(rk.actTimes) > 4 {
		v.fail(c, "tFAW: %d ACTs within %v", len(rk.actTimes), v.t.TFAW)
	}
}

func (v *Verifier) checkPRE(c Command) {
	b := v.bank(c)
	if !b.open {
		// Precharging a precharged bank is legal (NOP effect), common in
		// real controllers; nothing to check.
		return
	}
	if c.Phase == HiRAInterruptPRE {
		gap := c.At - b.lastACT
		if gap < v.MinT1 || gap > v.MaxT1 {
			v.fail(c, "HiRA t1 out of window: %v not in [%v,%v]", gap, v.MinT1, v.MaxT1)
		}
		// The bank is now in the interrupted-precharge state: the first
		// row's buffer stays connected, waiting for the second ACT.
		b.hiraArmed = true
		b.hiraPREAt = c.At
		b.open = false
		b.lastPRE = c.At
		return
	}
	if c.At-b.restoreFrom < v.t.TRAS {
		v.fail(c, "tRAS: %v since ACT, need %v", c.At-b.restoreFrom, v.t.TRAS)
	}
	if b.lastRD > -maxTime && c.At-b.lastRD < v.t.TRTP {
		v.fail(c, "tRTP: %v since RD, need %v", c.At-b.lastRD, v.t.TRTP)
	}
	if b.lastWR > -maxTime {
		wrDone := b.lastWR + v.t.CWL + v.t.TBL + v.t.TWR
		if c.At < wrDone {
			v.fail(c, "tWR: PRE at %v before write recovery ends at %v", c.At, wrDone)
		}
	}
	b.open = false
	b.lastPRE = c.At
}

func (v *Verifier) checkColumn(c Command) {
	b := v.bank(c)
	if !b.open {
		v.fail(c, "%v to precharged bank", c.Kind)
		return
	}
	if b.openRow != c.Loc.Row {
		v.fail(c, "%v to row %d but row %d is open", c.Kind, c.Loc.Row, b.openRow)
	}
	if c.At-b.lastACT < v.t.TRCD {
		v.fail(c, "tRCD: %v since ACT, need %v", c.At-b.lastACT, v.t.TRCD)
	}
	last := b.lastRD
	if b.lastWR > last {
		last = b.lastWR
	}
	if last > -maxTime && c.At-last < v.t.TCCD {
		v.fail(c, "tCCD: %v since last column access, need %v", c.At-last, v.t.TCCD)
	}
	if c.Kind == KindRD {
		b.lastRD = c.At
	} else {
		b.lastWR = c.At
	}
	if c.AutoPrecharge {
		// Model auto-precharge as an implicit PRE at the earliest legal
		// point; the scheduler is responsible for honouring tRAS before
		// reusing the bank, which the subsequent ACT's tRP/tRC checks
		// will catch through lastPRE.
		pre := c
		pre.Kind = KindPRE
		pre.Phase = HiRANone
		pre.At = v.earliestAutoPRE(c, b)
		v.checkPRE(pre)
	}
}

func (v *Verifier) earliestAutoPRE(c Command, b *bankState) Time {
	at := b.restoreFrom + v.t.TRAS
	if c.Kind == KindRD {
		if t := c.At + v.t.TRTP; t > at {
			at = t
		}
	} else {
		if t := c.At + v.t.CWL + v.t.TBL + v.t.TWR; t > at {
			at = t
		}
	}
	return at
}

func (v *Verifier) checkREF(c Command, rk *rankState) {
	// All banks in the rank must be precharged.
	for bank := 0; bank < v.org.BanksPerRank(); bank++ {
		cc := c
		cc.Loc.Bank = bank
		if v.bank(cc).open {
			v.fail(c, "REF with bank %d open", bank)
		}
		if v.bank(cc).hiraArmed {
			v.fail(c, "REF with bank %d in interrupted-precharge state", bank)
		}
	}
	rk.refBusy = c.At + v.t.TRFC
}

// CheckTrace sorts cmds by time (stably) and feeds them through a fresh
// pass of the verifier, returning all violations. It is a convenience for
// tests that accumulate an unordered trace.
func (v *Verifier) CheckTrace(cmds []Command) []Violation {
	sorted := make([]Command, len(cmds))
	copy(sorted, cmds)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, c := range sorted {
		v.Check(c)
	}
	return v.violations
}
