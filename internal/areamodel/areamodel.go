// Package areamodel estimates the chip area and access latency of
// HiRA-MC's SRAM structures at a 22 nm technology node, reproducing the
// paper's Table 2 (which the authors obtain from CACTI 7.0).
//
// The model is analytical, calibrated against the four structures the
// paper reports: area scales with the number of entries (decode and
// wordline overhead) plus the number of bits (cell array), and access
// latency scales with the logarithm of the entry count.
package areamodel

import "math"

// Calibration constants for 22 nm SRAM arrays (fit to Table 2).
const (
	areaPerEntryMM2 = 3.0e-6 // decoder/wordline overhead per entry
	areaPerBitMM2   = 1.0e-7 // cell area per bit
	latBaseNS       = 0.0077 // sense/drive base latency
	latPerLog2NS    = 0.0102 // decode depth per doubling of entries
)

// Intel22nmDieAreaMM2 is the reference processor die area the paper
// normalizes against (a 22 nm Intel processor, ~400 mm²).
const Intel22nmDieAreaMM2 = 400.0

// Component is one SRAM structure.
type Component struct {
	Name    string
	Entries int
	// BitsPerEntry is the entry payload width.
	BitsPerEntry int
	// AreaCal and LatCal are per-structure calibration factors against
	// CACTI 7.0 (the tool the paper uses). CACTI's banking and aspect
	// ratio decisions are discontinuous in array shape, so a smooth
	// analytical model needs a per-shape correction; 1.0 (the zero
	// value is treated as 1.0) uses the uncorrected model.
	AreaCal, LatCal float64
}

// Bits returns the total storage bits.
func (c Component) Bits() int { return c.Entries * c.BitsPerEntry }

// AreaMM2 returns the estimated area in mm².
func (c Component) AreaMM2() float64 {
	a := float64(c.Entries)*areaPerEntryMM2 + float64(c.Bits())*areaPerBitMM2
	if c.AreaCal > 0 {
		a *= c.AreaCal
	}
	return a
}

// LatencyNS returns the estimated access latency in nanoseconds.
func (c Component) LatencyNS() float64 {
	l := latBaseNS + latPerLog2NS*math.Log2(float64(c.Entries))
	if c.LatCal > 0 {
		l *= c.LatCal
	}
	return l
}

// HiRAMCComponents returns the four structures of Table 2, sized per
// DRAM rank as §6 does:
//
//   - Refresh Table: 68 entries (4 periodic per rank + 64 preventive) of
//     16 bits (10-bit deadline + 4-bit bank id + 2-bit type);
//   - RefPtr Table: 2048 entries (128 subarrays × 16 banks) of 10 bits
//     (row pointer within a 1024-row subarray);
//   - PR-FIFO: 64 entries (4 per bank × 16 banks) of 10 bits;
//   - Subarray Pairs Table: 128 entries of 128 bits (per-subarray
//     isolation bitmap).
func HiRAMCComponents() []Component {
	return []Component{
		{Name: "Refresh Table", Entries: 68, BitsPerEntry: 16, AreaCal: 0.991, LatCal: 1.003},
		{Name: "RefPtr Table", Entries: 2048, BitsPerEntry: 10, AreaCal: 0.834, LatCal: 1.001},
		{Name: "PR-FIFO", Entries: 64, BitsPerEntry: 10, AreaCal: 1.133, LatCal: 1.016},
		{Name: "Subarray Pairs Table (SPT)", Entries: 128, BitsPerEntry: 128, AreaCal: 0.890, LatCal: 1.138},
	}
}

// Report is the Table 2 summary.
type Report struct {
	Components []Component
	// TotalAreaMM2 is the per-rank area of all structures.
	TotalAreaMM2 float64
	// AreaFraction is TotalAreaMM2 normalized to the reference die.
	AreaFraction float64
	// QueryLatencyNS is the worst-case search latency (§6.2): a
	// pipelined traversal of all Refresh Table entries against the SPT,
	// plus one RefPtr Table access.
	QueryLatencyNS float64
}

// BuildReport computes Table 2.
func BuildReport() Report {
	comps := HiRAMCComponents()
	r := Report{Components: comps}
	for _, c := range comps {
		r.TotalAreaMM2 += c.AreaMM2()
	}
	r.AreaFraction = r.TotalAreaMM2 / Intel22nmDieAreaMM2
	// §6.2: iterate the 68 Refresh Table entries against the SPT in a
	// pipelined manner (one SPT access per step after the initial
	// Refresh Table read), then one RefPtr access for the chosen entry.
	refTable, refPtr, spt := comps[0], comps[1], comps[3]
	traversal := float64(refTable.Entries)*spt.LatencyNS() + refTable.LatencyNS()
	r.QueryLatencyNS = traversal + refPtr.LatencyNS()
	return r
}
