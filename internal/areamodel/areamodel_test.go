package areamodel

import (
	"math"
	"testing"
)

// within checks got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if math.Abs(got-want) > frac*want {
		t.Errorf("%s = %g, want %g (±%.0f%%)", name, got, want, frac*100)
	}
}

func TestComponentAreasMatchTable2(t *testing.T) {
	comps := HiRAMCComponents()
	wantArea := map[string]float64{
		"Refresh Table":              0.00031,
		"RefPtr Table":               0.00683,
		"PR-FIFO":                    0.00029,
		"Subarray Pairs Table (SPT)": 0.00180,
	}
	for _, c := range comps {
		within(t, c.Name+" area", c.AreaMM2(), wantArea[c.Name], 0.15)
	}
}

func TestComponentLatenciesMatchTable2(t *testing.T) {
	comps := HiRAMCComponents()
	wantLat := map[string]float64{
		"Refresh Table":              0.07,
		"RefPtr Table":               0.12,
		"PR-FIFO":                    0.07,
		"Subarray Pairs Table (SPT)": 0.09,
	}
	for _, c := range comps {
		within(t, c.Name+" latency", c.LatencyNS(), wantLat[c.Name], 0.15)
	}
}

func TestReportMatchesTable2Totals(t *testing.T) {
	r := BuildReport()
	// Overall 0.00923 mm², 0.0023% of a 22nm processor die, 6.31ns
	// query latency.
	within(t, "total area", r.TotalAreaMM2, 0.00923, 0.12)
	within(t, "area fraction", r.AreaFraction, 0.000023, 0.15)
	within(t, "query latency", r.QueryLatencyNS, 6.31, 0.05)
}

func TestQueryLatencyBelowTRP(t *testing.T) {
	// §6.2's conclusion: the search completes well within a precharge
	// (tRP = 14.5ns), so HiRA-MC adds no latency to memory accesses.
	r := BuildReport()
	if r.QueryLatencyNS >= 14.5 {
		t.Errorf("query latency %.2fns not below tRP 14.5ns", r.QueryLatencyNS)
	}
}

func TestAreaMonotonicInSize(t *testing.T) {
	small := Component{Name: "s", Entries: 16, BitsPerEntry: 8}
	big := Component{Name: "b", Entries: 1024, BitsPerEntry: 8}
	if small.AreaMM2() >= big.AreaMM2() {
		t.Error("area not monotonic in entries")
	}
	if small.LatencyNS() >= big.LatencyNS() {
		t.Error("latency not monotonic in entries")
	}
}
