package core

import (
	"fmt"

	"hira/internal/dram"
	"hira/internal/sched"
)

// GrapheneConfig parameterizes the Graphene-style engine.
type GrapheneConfig struct {
	Org    dram.Org
	Timing dram.Timing
	// NRH is the RowHammer threshold being defended against. The tracker
	// trips at NRH/4 so a victim's exposure between its two neighbors'
	// trips (at most twice the trip threshold, plus queued-refresh slack)
	// stays below NRH.
	NRH int
	// Counters is the per-bank table size k. Graphene's guarantee needs
	// k >= activations-per-tREFW / threshold; an undersized table is the
	// interesting failure mode many-sided attacks exploit.
	Counters int
}

// grapheneBank is one bank's Misra-Gries summary: up to k (row, count)
// entries over a shared spillover floor. Every row's true activation
// count since the window reset is at most its table count (or the
// spillover if absent), so no row can reach spill+threshold unseen.
type grapheneBank struct {
	rows  []int32
	cnts  []uint32
	n     int
	spill uint32
}

// Graphene is a Graphene-style (MICRO 2020) counter-table refresh engine:
// per-bank Misra-Gries top-k activation counters over each tREFW window;
// when a row's count climbs a full threshold above the spillover floor,
// its neighbors are queued for preventive refresh and the count resets to
// the floor. Retention refresh stays conventional rank REF. The engine
// keeps no DRAM-visible state beyond the pending victim queue, and its
// tracker state is deliberately not checkpointable — cells running the
// zoo engines simulate from tick zero, like forensics cells.
type Graphene struct {
	mitigationBase
	cfg       GrapheneConfig
	thresh    uint32
	banks     []grapheneBank
	nextReset dram.Time
	rpb       int
}

// NewGraphene builds the engine.
func NewGraphene(cfg GrapheneConfig) (*Graphene, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRH < 8 {
		return nil, fmt.Errorf("core: graphene NRH %d below 8 (threshold NRH/4 would vanish)", cfg.NRH)
	}
	if cfg.Counters < 1 || cfg.Counters > 1024 {
		return nil, fmt.Errorf("core: graphene counters %d outside [1, 1024]", cfg.Counters)
	}
	g := &Graphene{
		mitigationBase: newMitigationBase(cfg.Org, cfg.Timing),
		cfg:            cfg,
		thresh:         uint32(cfg.NRH / 4),
		banks:          make([]grapheneBank, cfg.Org.TotalBanks()),
		nextReset:      cfg.Timing.TREFW,
		rpb:            cfg.Org.RowsPerBank(),
	}
	for i := range g.banks {
		g.banks[i].rows = make([]int32, cfg.Counters)
		g.banks[i].cnts = make([]uint32, cfg.Counters)
	}
	return g, nil
}

// Stats returns the engine's mitigation tallies.
func (g *Graphene) Stats() MitigationStats { return g.stats }

// Tick implements sched.RefreshEngine: the counter tables reset every
// tREFW, when the retention schedule has refreshed every row once.
func (g *Graphene) Tick(now dram.Time) {
	for now >= g.nextReset {
		for i := range g.banks {
			b := &g.banks[i]
			b.n = 0
			b.spill = 0
		}
		g.stats.TableResets++
		g.nextReset += g.t.TREFW
	}
}

// NoteActivate implements sched.RefreshEngine: the Misra-Gries update.
// Refresh activations (including the engine's own victim refreshes) do
// not count — only demand activations disturb neighbors at scale.
func (g *Graphene) NoteActivate(loc dram.Location, demand bool, now dram.Time) {
	if !demand {
		return
	}
	b := &g.banks[g.bankIndex(loc)]
	row := int32(loc.Row)
	for i := 0; i < b.n; i++ {
		if b.rows[i] == row {
			b.cnts[i]++
			g.maybeTrip(b, i, loc)
			return
		}
	}
	if b.n < len(b.rows) {
		b.rows[b.n] = row
		b.cnts[b.n] = b.spill + 1
		b.n++
		g.maybeTrip(b, b.n-1, loc)
		return
	}
	// Table full: replace an entry resting on the spillover floor, or
	// raise the floor (no entry can then be under-counted).
	for i := 0; i < b.n; i++ {
		if b.cnts[i] == b.spill {
			b.rows[i] = row
			b.cnts[i] = b.spill + 1
			g.maybeTrip(b, i, loc)
			return
		}
	}
	b.spill++
}

// maybeTrip fires the tracker when an entry's count reaches the trip
// threshold. The comparison is against the absolute count: a row's true
// activation count never exceeds its table count (Misra-Gries
// overcounts, by at most the spillover floor), so no row hammers past
// the threshold unseen. When the spillover floor itself approaches the
// threshold the table is undersized for the activation rate and trips
// degenerate to storms — the failure mode undersized counter tables are
// in the zoo to demonstrate.
func (g *Graphene) maybeTrip(b *grapheneBank, i int, loc dram.Location) {
	if b.cnts[i] >= g.thresh {
		g.enqueueVictims(loc, g.rpb)
		b.cnts[i] = b.spill
	}
}

var _ sched.RefreshEngine = (*Graphene)(nil)
