// Package core implements the paper's primary contribution: the HiRA
// Memory Controller (HiRA-MC, §5). It plugs into the memory request
// scheduler (internal/sched) as its refresh engine and performs three
// actions in decreasing priority: refresh a row concurrently with a demand
// access (refresh-access parallelization), refresh a row concurrently with
// another refresh (refresh-refresh parallelization), or perform the
// refresh standalone right at its deadline.
//
// Components (Fig. 7): the Periodic Refresh Controller generates
// per-bank, staggered row-refresh requests; the Preventive Refresh
// Controller hosts PARA and enqueues victim-row refreshes into a per-bank
// PR-FIFO; the Refresh Table stores pending requests with deadlines; the
// RefPtr Table holds one next-row pointer per subarray; the Subarray Pairs
// Table (SPT) records which subarrays are electrically isolated; and the
// Concurrent Refresh Finder matches pending refreshes to demand
// activations or to each other.
package core

// SPT is the Subarray Pairs Table (§5.1.4): for each subarray, the set of
// subarrays in the same bank that share no bitline or sense amplifier, so
// a HiRA operation may pair rows across them. The controller obtains this
// information by one-time reverse engineering (as §4.2 does) or from
// manufacturer mode status registers; here it can be built from any
// isolation predicate.
type SPT struct {
	n        int
	iso      []bool  // n*n symmetric matrix
	partners [][]int // per subarray, isolated partner list
}

// NewSPT builds the table from an isolation predicate over subarray pairs.
func NewSPT(subarrays int, isolated func(a, b int) bool) *SPT {
	s := &SPT{n: subarrays, iso: make([]bool, subarrays*subarrays)}
	s.partners = make([][]int, subarrays)
	for a := 0; a < subarrays; a++ {
		for b := 0; b < subarrays; b++ {
			if a != b && isolated(a, b) {
				s.iso[a*subarrays+b] = true
				s.partners[a] = append(s.partners[a], b)
			}
		}
	}
	return s
}

// NewSyntheticSPT builds a deterministic SPT with approximately the given
// pairable fraction — the paper's evaluation assumes a refresh can be
// served concurrently with 32% of the rows in the bank (§7). Adjacent
// subarrays are never isolated (open-bitline sense-amp sharing).
func NewSyntheticSPT(subarrays int, coverage float64, seed uint64) *SPT {
	return NewSPT(subarrays, func(a, b int) bool {
		if d := a - b; d == 1 || d == -1 {
			return false
		}
		h := seed
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, v := range [3]uint64{uint64(lo), uint64(hi), 0x9e3779b97f4a7c15} {
			h ^= v
			h += 0x9e3779b97f4a7c15
			h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
			h = (h ^ (h >> 27)) * 0x94d049bb133111eb
			h ^= h >> 31
		}
		return float64(h>>11)/(1<<53) < coverage
	})
}

// Subarrays returns the table's subarray count.
func (s *SPT) Subarrays() int { return s.n }

// Isolated reports whether subarrays a and b may be HiRA-paired.
func (s *SPT) Isolated(a, b int) bool {
	if a == b {
		return false
	}
	return s.iso[a*s.n+b]
}

// Partners returns the subarrays isolated from a.
func (s *SPT) Partners(a int) []int { return s.partners[a] }

// Coverage returns the fraction of ordered pairs that are isolated.
func (s *SPT) Coverage() float64 {
	total := 0
	for _, p := range s.partners {
		total += len(p)
	}
	return float64(total) / float64(s.n*(s.n-1))
}
