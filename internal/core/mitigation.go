// Preventive-mitigation zoo: refresh engines that pair the conventional
// rank-REF retention schedule with an activation tracker that refreshes
// victim rows before an aggressor's count can reach the RowHammer
// threshold. Unlike HiRA-MC's PARA (probabilistic, refresh-parallelized),
// these are the deterministic counter-based designs the paper compares
// against conceptually: Graphene-style top-k counting (graphene.go) and a
// DDR5 RFM-style activation budget (rfm.go). Both perform their victim
// refreshes the conventional way — blocking row refreshes
// (sched.OpRowRefreshBlocking) that hold the rank for a row cycle — so
// their performance cost is visible in the same weighted-speedup terms as
// every other policy.

package core

import (
	"hira/internal/dram"
	"hira/internal/sched"
)

// victimRingCap bounds each channel's queue of pending victim refreshes.
// A full ring drops the newest victims (counted in MitigationStats); at
// 256 entries deep that only happens when triggers outpace the rank's
// ability to absorb blocking refreshes by orders of magnitude.
const victimRingCap = 256

// victimEmit caps how many pending victims one Mandatory call offers the
// controller; only one can start per rank per row cycle anyway.
const victimEmit = 4

// victimRef is one queued victim-row refresh.
type victimRef struct {
	rank, bank, row int
}

// victimRing is a fixed-capacity FIFO of pending victim refreshes.
type victimRing struct {
	buf  [victimRingCap]victimRef
	head int
	n    int
}

func (r *victimRing) push(v victimRef) bool {
	if r.n == victimRingCap {
		return false
	}
	r.buf[(r.head+r.n)%victimRingCap] = v
	r.n++
	return true
}

func (r *victimRing) at(i int) victimRef { return r.buf[(r.head+i)%victimRingCap] }

// remove deletes the first entry equal to v, preserving FIFO order.
func (r *victimRing) remove(v victimRef) bool {
	for i := 0; i < r.n; i++ {
		if r.at(i) == v {
			for j := i; j > 0; j-- {
				r.buf[(r.head+j)%victimRingCap] = r.buf[(r.head+j-1)%victimRingCap]
			}
			r.head = (r.head + 1) % victimRingCap
			r.n--
			return true
		}
	}
	return false
}

// MitigationStats tallies a zoo engine's activity.
type MitigationStats struct {
	// Triggers counts tracker threshold trips (each enqueues the trip
	// row's neighbors as victims).
	Triggers uint64
	// VictimRefreshes counts victim-row refreshes the controller
	// performed.
	VictimRefreshes uint64
	// DroppedVictims counts victims lost to a full ring.
	DroppedVictims uint64
	// TableResets counts tracker-state resets (Graphene's tREFW windows,
	// RFM's post-trigger clears).
	TableResets uint64
}

// mitigationBase is the zoo engines' shared half: conventional rank-REF
// retention via an embedded BaselineREF, plus per-channel victim queues
// drained through blocking row refreshes. The tracker half (NoteActivate)
// is engine-specific.
type mitigationBase struct {
	org     dram.Org
	t       dram.Timing
	ref     *sched.BaselineREF
	rings   []victimRing
	scratch []sched.Op
	bpc     int // banks per channel
	bpr     int // banks per rank
	stats   MitigationStats
}

func newMitigationBase(org dram.Org, t dram.Timing) mitigationBase {
	return mitigationBase{
		org:     org,
		t:       t,
		ref:     sched.NewBaselineREF(org, t),
		rings:   make([]victimRing, org.Channels),
		scratch: make([]sched.Op, 0, victimEmit+org.RanksPerChannel),
		bpc:     org.BanksPerChannel(),
		bpr:     org.BanksPerRank(),
	}
}

// enqueueVictims queues the neighbors of a tripped aggressor row.
func (m *mitigationBase) enqueueVictims(loc dram.Location, rowsPerBank int) {
	m.stats.Triggers++
	ring := &m.rings[loc.Channel]
	for _, row := range [2]int{loc.Row - 1, loc.Row + 1} {
		if row < 0 || row >= rowsPerBank {
			continue
		}
		if !ring.push(victimRef{rank: loc.Rank, bank: loc.Bank, row: row}) {
			m.stats.DroppedVictims++
		}
	}
}

// Mandatory implements sched.RefreshEngine: due rank REFs first (retention
// must not starve), then pending victim refreshes in FIFO order.
func (m *mitigationBase) Mandatory(channel int, now dram.Time) []sched.Op {
	m.scratch = m.scratch[:0]
	m.scratch = append(m.scratch, m.ref.Mandatory(channel, now)...)
	ring := &m.rings[channel]
	for i := 0; i < ring.n && i < victimEmit; i++ {
		v := ring.at(i)
		m.scratch = append(m.scratch, sched.Op{
			Kind: sched.OpRowRefreshBlocking,
			Rank: v.rank, Bank: v.bank, RowA: v.row,
			PreventiveA: true,
		})
	}
	return m.scratch
}

// Piggyback implements sched.RefreshEngine: zoo engines do not
// parallelize refreshes.
func (m *mitigationBase) Piggyback(dram.Location, dram.Time) (int, bool, bool) {
	return 0, false, false
}

// NoteRefreshed implements sched.RefreshEngine.
func (m *mitigationBase) NoteRefreshed(op sched.Op, channel int, now dram.Time) {
	switch op.Kind {
	case sched.OpRankREF:
		m.ref.NoteRefreshed(op, channel, now)
	case sched.OpRowRefreshBlocking:
		if m.rings[channel].remove(victimRef{rank: op.Rank, bank: op.Bank, row: op.RowA}) {
			m.stats.VictimRefreshes++
		}
	}
}

// NextEvent implements sched.RefreshEngine. Pending victims are already
// visible through Mandatory, so only the REF schedule bounds the skip.
func (m *mitigationBase) NextEvent(now dram.Time) dram.Time { return m.ref.NextEvent(now) }

// bankIndex returns the system-flat bank index of a location.
func (m *mitigationBase) bankIndex(loc dram.Location) int {
	return loc.Channel*m.bpc + loc.Rank*m.bpr + loc.Bank
}

// Pending returns the total queued victim refreshes (for tests).
func (m *mitigationBase) Pending() int {
	n := 0
	for i := range m.rings {
		n += m.rings[i].n
	}
	return n
}
