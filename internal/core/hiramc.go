package core

import (
	"fmt"

	"hira/internal/dram"
	"hira/internal/sched"
)

// PeriodicMode selects how periodic (retention) refresh is performed.
type PeriodicMode uint8

const (
	// PeriodicNone performs no periodic refresh (the Fig. 9a "No
	// Refresh" ideal, or Fig. 12's baseline normalization when combined
	// with preventive modes).
	PeriodicNone PeriodicMode = iota
	// PeriodicREF uses conventional rank-level REF commands.
	PeriodicREF
	// PeriodicHiRA uses row-granularity refreshes scheduled by HiRA-MC.
	PeriodicHiRA
)

// PreventiveMode selects the RowHammer preventive-refresh policy.
type PreventiveMode uint8

const (
	// PreventiveNone disables PARA.
	PreventiveNone PreventiveMode = iota
	// PreventiveImmediate is PARA without HiRA: each triggered refresh is
	// performed immediately after the aggressor's activation.
	PreventiveImmediate
	// PreventiveHiRA queues PARA's refreshes with tRefSlack and lets
	// HiRA-MC parallelize them.
	PreventiveHiRA
)

// Config parameterizes HiRA-MC.
type Config struct {
	Org    dram.Org
	Timing dram.Timing

	Periodic   PeriodicMode
	Preventive PreventiveMode

	// RefSlack is tRefSlack: the maximum delay between generating a
	// refresh request and performing it (HiRA-N uses N x tRC).
	RefSlack dram.Time

	// Pth is PARA's probability threshold (solved by
	// rowhammer.Config.SolvePth for the target NRH and RefSlack).
	Pth float64

	// SPT is the subarray pairs table; required for PeriodicHiRA or
	// PreventiveHiRA.
	SPT *SPT

	// Seed drives PARA's sampling.
	Seed uint64
}

// refEntry is one Refresh Table entry (§5: deadline, bank id, type).
type refEntry struct {
	deadline   dram.Time
	preventive bool
	row        int // preventive target row; -1 for periodic (RefPtr decides)
}

// bankRC is HiRA-MC's per-bank state.
type bankRC struct {
	ch      int        // owning channel
	queue   []refEntry // Refresh Table slice for this bank, FIFO by deadline
	prDepth int        // occupancy of the 4-entry PR-FIFO portion

	// minDeadline caches the earliest deadline in queue (valid while
	// queue is non-empty), so Mandatory's arming scan and Piggyback's
	// urgency filter are O(1) per bank when nothing is due.
	minDeadline dram.Time

	// RefPtr Table slice: next row to refresh per subarray, plus the
	// count of rows refreshed this window for balanced advancement.
	refPtr    []int
	refreshed []int
	// minRef caches min(refreshed): the starvation floor the
	// refresh-completeness guards compare against.
	minRef int

	periodicDue dram.Time

	// armed is a mandatory op built from queue entries, re-offered until
	// the controller performs it.
	armed      sched.Op
	armedSet   bool
	armedCount int // queue entries consumed by armed (1 or 2)

	// offered is a piggyback candidate awaiting confirmation.
	offered    *refEntry
	offeredRow int
}

// pushEntry appends a Refresh Table entry, maintaining the bank's
// minDeadline and the channel's deadline lower bound.
func (m *HiRAMC) pushEntry(b *bankRC, e refEntry) {
	if len(b.queue) == 0 || e.deadline < b.minDeadline {
		b.minDeadline = e.deadline
	}
	if e.deadline < m.chNext[b.ch] {
		m.chNext[b.ch] = e.deadline
	}
	b.queue = append(b.queue, e)
}

// removeEntry deletes the entry at index i, maintaining minDeadline.
func (b *bankRC) removeEntry(i int) {
	b.queue = append(b.queue[:i], b.queue[i+1:]...)
	b.recalcMinDeadline()
}

func (b *bankRC) recalcMinDeadline() {
	if len(b.queue) == 0 {
		return
	}
	min := b.queue[0].deadline
	for _, e := range b.queue[1:] {
		if e.deadline < min {
			min = e.deadline
		}
	}
	b.minDeadline = min
}

// RefreshTableCap is the per-rank Refresh Table capacity (§6: 68 entries).
const RefreshTableCap = 68

// PRFIFOCap is the per-bank PR-FIFO capacity (§6: 4 entries).
const PRFIFOCap = 4

// HiRAMC is the HiRA memory controller, a sched.RefreshEngine.
type HiRAMC struct {
	cfg   Config
	banks []*bankRC // flat: channel, rank, bank
	ref   *sched.BaselineREF

	rng uint64

	interval    dram.Time // periodic generation interval per bank
	lead        dram.Time // deadline lead time for mandatory ops
	windowReset dram.Time
	genPtr      int        // rotation pointer for periodic generation
	scratch     []sched.Op // reusable Mandatory result buffer
	allSA       []int      // reusable all-subarrays candidate list

	// Per-channel aggregates gating the per-tick Mandatory work: chNext
	// is a lower bound on the earliest queued deadline in the channel
	// (refreshed to the exact value on every full bank scan), chArmed
	// counts banks holding an armed op.
	chNext  []dram.Time
	chArmed []int

	// Stats.
	Generated, GeneratedPreventive uint64
	// Expedited counts structure-full overflows: each one pulled the
	// bank's oldest queued entry's deadline to now to drain it early.
	// Nothing is ever dropped.
	Expedited uint64
}

// expediteOldest pulls the deadline of b's oldest queued entry to now,
// preferring the oldest preventive entry (the PR-FIFO occupant the full
// structure most needs to shed); with no preventive queued it expedites
// the bank's front entry instead. A bank with an empty queue (the rank
// cap tripped on siblings) has nothing local to expedite.
func (m *HiRAMC) expediteOldest(b *bankRC, now dram.Time) {
	idx := -1
	for i := range b.queue {
		if b.queue[i].preventive {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(b.queue) == 0 {
			return
		}
		idx = 0
	}
	if b.queue[idx].deadline > now {
		b.queue[idx].deadline = now
		if now < b.minDeadline {
			b.minDeadline = now
		}
		if now < m.chNext[b.ch] {
			m.chNext[b.ch] = now
		}
	}
}

var _ sched.RefreshEngine = (*HiRAMC)(nil)

// New constructs HiRA-MC.
func New(cfg Config) (*HiRAMC, error) {
	if cfg.Periodic == PeriodicHiRA || cfg.Preventive == PreventiveHiRA {
		if cfg.SPT == nil {
			return nil, fmt.Errorf("core: HiRA modes require an SPT")
		}
	}
	if cfg.Preventive != PreventiveNone && (cfg.Pth < 0 || cfg.Pth > 1) {
		return nil, fmt.Errorf("core: Pth %f out of [0,1]", cfg.Pth)
	}
	m := &HiRAMC{cfg: cfg, rng: cfg.Seed | 1}
	total := cfg.Org.TotalBanks()
	m.banks = make([]*bankRC, total)
	// Generate faster than one row per (tREFW / rowsPerBank) so that
	// tRefSlack, deadline lead, and the ±1-count jitter of balanced
	// subarray selection (worth one rotation step, i.e. a 1/rowsPerSubarray
	// fraction of the window) never push a row past its retention window.
	m.interval = cfg.Timing.PeriodicRowInterval(cfg.Org.RowsPerBank()) * 7 / 8
	// Case 2 of §5.1.3: a refresh becomes mandatory when its deadline is
	// less than tRC away.
	m.lead = cfg.Timing.TRC
	m.windowReset = cfg.Timing.TREFW
	m.allSA = make([]int, cfg.Org.SubarraysPerBank)
	for i := range m.allSA {
		m.allSA[i] = i
	}
	m.chNext = make([]dram.Time, cfg.Org.Channels)
	for i := range m.chNext {
		m.chNext[i] = dram.MaxTime()
	}
	m.chArmed = make([]int, cfg.Org.Channels)
	perChan := cfg.Org.RanksPerChannel * cfg.Org.BanksPerRank()
	for i := range m.banks {
		b := &bankRC{
			ch:        i / perChan,
			refPtr:    make([]int, cfg.Org.SubarraysPerBank),
			refreshed: make([]int, cfg.Org.SubarraysPerBank),
		}
		// Stagger periodic generation across all banks (§5.1.1: spread
		// command-bus pressure over time); global staggering also makes
		// bank index order equal due order for the generation rotation.
		b.periodicDue = m.interval * dram.Time(i+1) / dram.Time(total)
		m.banks[i] = b
	}
	if cfg.Periodic == PeriodicREF {
		m.ref = sched.NewBaselineREF(cfg.Org, cfg.Timing)
	}
	return m, nil
}

func (m *HiRAMC) bank(ch, rank, bank int) *bankRC {
	return m.banks[(ch*m.cfg.Org.RanksPerChannel+rank)*m.cfg.Org.BanksPerRank()+bank]
}

func (m *HiRAMC) next() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}

// rankLoad counts Refresh Table entries for a rank.
func (m *HiRAMC) rankLoad(ch, rank int) int {
	n := 0
	base := (ch*m.cfg.Org.RanksPerChannel + rank) * m.cfg.Org.BanksPerRank()
	for b := 0; b < m.cfg.Org.BanksPerRank(); b++ {
		n += len(m.banks[base+b].queue)
	}
	return n
}

// Tick implements sched.RefreshEngine: the Periodic Refresh Controller's
// request generation. All banks share one generation interval with
// staggered phases, so a rotating pointer visits them in due order and
// the per-tick cost is O(1) amortized regardless of bank count.
func (m *HiRAMC) Tick(now dram.Time) {
	if m.cfg.Periodic != PeriodicHiRA {
		return
	}
	for i := 0; i < len(m.banks); i++ {
		b := m.banks[m.genPtr]
		if now < b.periodicDue {
			return
		}
		for now >= b.periodicDue {
			m.pushEntry(b, refEntry{
				deadline: b.periodicDue + m.cfg.RefSlack,
				row:      -1,
			})
			m.Generated++
			b.periodicDue += m.interval
		}
		m.genPtr = (m.genPtr + 1) % len(m.banks)
	}
}

// NoteActivate implements sched.RefreshEngine: the Preventive Refresh
// Controller samples every demand activation with probability Pth and
// enqueues a neighbouring victim row refresh (PARA).
func (m *HiRAMC) NoteActivate(loc dram.Location, demand bool, now dram.Time) {
	if m.cfg.Preventive == PreventiveNone || m.cfg.Pth == 0 || !demand {
		return
	}
	r := m.next()
	if float64(r>>11)/(1<<53) >= m.cfg.Pth {
		return
	}
	victim := loc.Row - 1
	if m.next()&1 == 0 {
		victim = loc.Row + 1
	}
	if victim < 0 || victim >= m.cfg.Org.RowsPerBank() {
		victim = loc.Row // edge rows: refresh the row itself
	}
	b := m.bank(loc.Channel, loc.Rank, loc.Bank)
	deadline := now
	if m.cfg.Preventive == PreventiveHiRA {
		deadline = now + m.cfg.RefSlack
	}
	e := refEntry{deadline: deadline, preventive: true, row: victim}
	if b.prDepth >= PRFIFOCap || m.rankLoad(loc.Channel, loc.Rank) >= RefreshTableCap {
		// Structure full: force the oldest entry out immediately by
		// pulling its deadline to now, so the next Mandatory scan arms
		// and drains it. The new entry keeps its own deadline and is
		// admitted regardless (never drop a preventive refresh — that
		// would break the security guarantee), so occupancy can overshoot
		// the cap by the handful of entries that arrive while the
		// expedited one drains (bounded by the lead window, ~tRC).
		m.Expedited++
		m.expediteOldest(b, now)
	}
	b.prDepth++
	m.pushEntry(b, e)
	m.GeneratedPreventive++
}

// chooseSubarray picks, among candidate subarrays, the one with the fewest
// rows refreshed this window (§5.1.3: advance pointers in a balanced
// manner). Returns -1 if candidates is empty.
func (b *bankRC) chooseSubarray(candidates []int) int {
	best, bestCount := -1, int(^uint(0)>>1)
	for _, sa := range candidates {
		if b.refreshed[sa] < bestCount {
			best, bestCount = sa, b.refreshed[sa]
		}
	}
	return best
}

// Piggyback implements sched.RefreshEngine: Case 1 of §5.1.3. The demand
// access is about to activate loc.Row; offer a row whose subarray is
// isolated from the demand row's subarray.
func (m *HiRAMC) Piggyback(loc dram.Location, now dram.Time) (int, bool, bool) {
	if m.cfg.SPT == nil {
		return 0, false, false
	}
	b := m.bank(loc.Channel, loc.Rank, loc.Bank)
	b.offered = nil
	if b.armedSet || len(b.queue) == 0 {
		return 0, false, false
	}
	// Only entries whose deadline is approaching are worth hiding: a
	// refresh with ample slack left can still ride a later access or an
	// idle-bank window, while the HiRA prologue taxes this access by
	// t1+t2 and an extra activation now.
	urgency := 2 * m.cfg.Timing.TRC
	if b.minDeadline-now > urgency {
		return 0, false, false
	}
	demandSA := m.cfg.Org.SubarrayOfRow(loc.Row)
	// Iterate entries in deadline order (the queue is near-sorted:
	// periodic entries are generated in deadline order, preventive ones
	// appended with equal slack); find the earliest-deadline entry that
	// can pair with the demand subarray.
	bestIdx := -1
	var bestDeadline dram.Time
	for i := range b.queue {
		e := &b.queue[i]
		if e.deadline-now > urgency {
			continue
		}
		if e.preventive {
			if m.cfg.Preventive != PreventiveHiRA {
				continue
			}
			if !m.cfg.SPT.Isolated(demandSA, m.cfg.Org.SubarrayOfRow(e.row)) {
				continue
			}
		} else {
			if m.cfg.Periodic != PeriodicHiRA {
				continue
			}
		}
		if bestIdx < 0 || e.deadline < bestDeadline {
			bestIdx, bestDeadline = i, e.deadline
		}
	}
	if bestIdx < 0 {
		return 0, false, false
	}
	e := b.queue[bestIdx]
	row := e.row
	if !e.preventive {
		sa := b.chooseSubarray(m.cfg.SPT.Partners(demandSA))
		if sa < 0 {
			return 0, false, false
		}
		// Refresh-completeness guard: only piggyback if the chosen
		// subarray is not ahead of the globally least-refreshed one.
		// Otherwise decline; the entry will reach its deadline and be
		// performed on the most-starved subarray, so subarrays that are
		// never isolated from the demand stream's subarrays still meet
		// tREFW.
		if b.refreshed[sa] > b.minRef+2 {
			return 0, false, false
		}
		row = sa*m.cfg.Org.RowsPerSubarray + b.refPtr[sa]
	}
	b.offered = &b.queue[bestIdx]
	b.offeredRow = row
	return row, e.preventive, true
}

// Mandatory implements sched.RefreshEngine: Case 2 of §5.1.3. Entries
// whose deadline is within the lead window must be performed now, paired
// with another queued refresh when possible. Each bank may carry one
// armed op; banks are independent, so all armed ops are offered and the
// controller starts what resources allow.
func (m *HiRAMC) Mandatory(channel int, now dram.Time) []sched.Op {
	m.scratch = m.scratch[:0]
	if m.ref != nil {
		m.scratch = append(m.scratch, m.ref.Mandatory(channel, now)...)
	}
	// Fast path: no armed bank and the channel's earliest deadline (a
	// maintained lower bound) is beyond the lead window — nothing to arm
	// or re-offer.
	if m.chArmed[channel] == 0 && m.chNext[channel]-now > m.lead {
		return m.scratch
	}
	org := m.cfg.Org
	base := channel * org.RanksPerChannel * org.BanksPerRank()
	perChan := org.RanksPerChannel * org.BanksPerRank()

	chNext := dram.MaxTime()
	for rb := 0; rb < perChan; rb++ {
		b := m.banks[base+rb]
		if !b.armedSet && len(b.queue) > 0 && b.minDeadline-now <= m.lead {
			// Arm the earliest due entry of this bank.
			idx := -1
			for i := range b.queue {
				e := &b.queue[i]
				if e.deadline-now > m.lead {
					continue
				}
				if idx < 0 || e.deadline < b.queue[idx].deadline {
					idx = i
				}
			}
			if idx >= 0 {
				m.armOp(b, rb/org.BanksPerRank(), rb%org.BanksPerRank(), idx)
			}
		}
		if b.armedSet {
			m.scratch = append(m.scratch, b.armed)
		}
		if len(b.queue) > 0 && b.minDeadline < chNext {
			chNext = b.minDeadline
		}
	}
	m.chNext[channel] = chNext // lower bound is exact after a full scan
	return m.scratch
}

// NextEvent implements sched.RefreshEngine: the earliest strictly-future
// time a queued or yet-to-be-generated refresh can enter the mandatory
// window. Per-bank granularity matters: one bank's already-due entry must
// not mask another bank's future arming time, so only candidates after
// now survive. Banks holding an armed op are excluded — their next arming
// can only follow the op's completion, a command tick that rescans
// anyway — as are entries already inside the lead window (the controller
// tracks the resource times gating them).
func (m *HiRAMC) NextEvent(now dram.Time) dram.Time {
	next := dram.MaxTime()
	if m.ref != nil {
		if v := m.ref.NextEvent(now); v < next {
			next = v
		}
	}
	for _, b := range m.banks {
		if b.armedSet || len(b.queue) == 0 {
			continue
		}
		if v := b.minDeadline - m.lead; v > now && v < next {
			next = v
		}
	}
	if m.cfg.Periodic == PeriodicHiRA {
		// The next generated entry becomes mandatory RefSlack-lead after
		// generation, but never before it exists. The generation rotation
		// pointer always rests on the globally least-due bank.
		due := m.banks[m.genPtr].periodicDue
		v := due + m.cfg.RefSlack - m.lead
		if v < due {
			v = due
		}
		if v < next {
			next = v
		}
	}
	return next
}

// armOp converts the queue entry at idx (and, when possible, a pairable
// second entry) into a concrete refresh op, consuming the entries.
func (m *HiRAMC) armOp(b *bankRC, rank, bank, idx int) sched.Op {
	e := b.queue[idx]
	rowA, saA := m.resolveRow(b, e, -1)

	kind := sched.OpRowRefresh
	if e.preventive && m.cfg.Preventive == PreventiveImmediate {
		kind = sched.OpRowRefreshBlocking
	}
	op := sched.Op{Kind: kind, Rank: rank, Bank: bank, RowA: rowA, RowB: -1,
		PreventiveA: e.preventive}
	consumed := [2]int{idx, 0}
	nConsumed := 1

	if m.cfg.SPT != nil {
		// Refresh-refresh parallelization: find a second entry whose row
		// can share a HiRA operation with rowA.
		for j := range b.queue {
			if j == idx {
				continue
			}
			e2 := b.queue[j]
			rowB, _ := m.resolveRow(b, e2, saA)
			if rowB < 0 {
				continue
			}
			if !m.cfg.SPT.Isolated(saA, m.cfg.Org.SubarrayOfRow(rowB)) {
				continue
			}
			op = sched.Op{Kind: sched.OpHiRAPair, Rank: rank, Bank: bank, RowA: rowA, RowB: rowB,
				PreventiveA: e.preventive, PreventiveB: e2.preventive}
			consumed[1] = j
			nConsumed = 2
			break
		}
	}

	// Consume entries (highest index first to keep indices valid).
	if nConsumed == 2 && consumed[1] < consumed[0] {
		consumed[0], consumed[1] = consumed[1], consumed[0]
	}
	for i := nConsumed - 1; i >= 0; i-- {
		j := consumed[i]
		if b.queue[j].preventive {
			b.prDepth--
		}
		b.removeEntry(j)
	}
	b.armed = op
	b.armedSet = true
	b.armedCount = nConsumed
	m.chArmed[b.ch]++
	b.offered = nil
	return op
}

// resolveRow returns the concrete row for an entry. For periodic entries
// the RefPtr table picks a row: from any subarray when partnerSA < 0, or
// from a subarray isolated from partnerSA. Returns row = -1 when no
// eligible subarray exists.
func (m *HiRAMC) resolveRow(b *bankRC, e refEntry, partnerSA int) (row, sa int) {
	if e.preventive {
		return e.row, m.cfg.Org.SubarrayOfRow(e.row)
	}
	var candidates []int
	if partnerSA < 0 {
		candidates = m.allSA
	} else {
		candidates = m.cfg.SPT.Partners(partnerSA)
	}
	sa = b.chooseSubarray(candidates)
	if sa < 0 {
		return -1, -1
	}
	if partnerSA >= 0 && b.refreshed[sa] > b.minRef+2 {
		// Same completeness guard as Piggyback: a partner-constrained
		// choice must not run ahead of the most-starved subarray.
		return -1, -1
	}
	return sa*m.cfg.Org.RowsPerSubarray + b.refPtr[sa], sa
}

// NoteRefreshed implements sched.RefreshEngine: bookkeeping when the
// controller performs refresh work.
func (m *HiRAMC) NoteRefreshed(op sched.Op, channel int, now dram.Time) {
	if op.Kind == sched.OpRankREF {
		if m.ref != nil {
			m.ref.NoteRefreshed(op, channel, now)
		}
		return
	}
	b := m.bank(channel, op.Rank, op.Bank)
	if b.armedSet && b.armed.RowA == op.RowA && b.armed.RowB == op.RowB && b.armed.Kind == op.Kind {
		m.advancePtr(b, op.RowA)
		if op.Kind == sched.OpHiRAPair {
			m.advancePtr(b, op.RowB)
		}
		b.armedSet = false
		b.armedCount = 0
		m.chArmed[b.ch]--
		return
	}
	// Piggyback confirmation: consume the offered entry.
	if b.offered != nil && b.offeredRow == op.RowA {
		for i := range b.queue {
			if &b.queue[i] == b.offered {
				if b.queue[i].preventive {
					b.prDepth--
				}
				b.removeEntry(i)
				break
			}
		}
		b.offered = nil
		m.advancePtr(b, op.RowA)
	}
}

// advancePtr records that row was refreshed. Only periodic refreshes (row
// at the subarray's RefPtr) advance the pointer and the balance count:
// preventive refreshes restore single rows, which must not starve a
// subarray's periodic rotation.
func (m *HiRAMC) advancePtr(b *bankRC, row int) {
	if row < 0 {
		return
	}
	sa := m.cfg.Org.SubarrayOfRow(row)
	if row == sa*m.cfg.Org.RowsPerSubarray+b.refPtr[sa] {
		b.refPtr[sa] = (b.refPtr[sa] + 1) % m.cfg.Org.RowsPerSubarray
		b.refreshed[sa]++
		min := b.refreshed[0]
		for _, v := range b.refreshed[1:] {
			if v < min {
				min = v
			}
		}
		b.minRef = min
	}
}

// PendingRefreshes returns the total Refresh Table occupancy (for tests).
func (m *HiRAMC) PendingRefreshes() int {
	n := 0
	for _, b := range m.banks {
		n += len(b.queue)
		if b.armedSet {
			n += b.armedCount
		}
	}
	return n
}
