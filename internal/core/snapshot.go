package core

import (
	"hira/internal/dram"
	"hira/internal/sched"
	"hira/internal/snap"
)

// Snapshot appends HiRA-MC's full mutable state — the PARA RNG, the
// generation rotation, and every bank's Refresh Table slice, RefPtr
// table, balance counts, periodic phase, armed op, and piggyback offer —
// to w. Derived aggregates (minDeadline, minRef, prDepth, chNext,
// chArmed) are recomputed on restore from the serialized ground truth.
func (m *HiRAMC) Snapshot(w *snap.Writer) {
	w.U64(m.rng)
	w.Int(m.genPtr)
	w.U64(m.Generated)
	w.U64(m.GeneratedPreventive)
	w.U64(m.Expedited)
	for _, b := range m.banks {
		w.Len(len(b.queue))
		for _, e := range b.queue {
			w.I64(int64(e.deadline))
			w.Bool(e.preventive)
			w.Int(e.row)
		}
		for _, p := range b.refPtr {
			w.Int(p)
		}
		for _, n := range b.refreshed {
			w.Int(n)
		}
		w.I64(int64(b.periodicDue))
		w.Bool(b.armedSet)
		if b.armedSet {
			w.U8(uint8(b.armed.Kind))
			w.Int(b.armed.Rank)
			w.Int(b.armed.Bank)
			w.Int(b.armed.RowA)
			w.Int(b.armed.RowB)
			w.Int(b.armedCount)
		}
		// The piggyback offer is a pointer into the queue; serialize it as
		// an index, or as a "dangling" marker when the queue's backing
		// array moved underneath it (live behavior: set, matches nothing).
		off := 0
		if b.offered != nil {
			off = -1
			for i := range b.queue {
				if &b.queue[i] == b.offered {
					off = i + 1
					break
				}
			}
		}
		w.Int(off)
		if b.offered != nil {
			w.Int(b.offeredRow)
		}
	}
	w.Bool(m.ref != nil)
	if m.ref != nil {
		m.ref.Snapshot(w)
	}
}

// SnapshotSize returns an upper bound on Snapshot's encoded size for
// the engine's current state, so composing snapshots can pre-size
// their buffers.
func (m *HiRAMC) SnapshotSize() int {
	n := 64
	for _, b := range m.banks {
		n += 96 + len(b.queue)*22 + (len(b.refPtr)+len(b.refreshed))*10
	}
	if m.ref != nil {
		n += m.ref.SnapshotSize()
	}
	return n
}

// Restore reads state written by Snapshot into a freshly constructed
// engine of identical configuration, validating every row, pointer, and
// phase against the organization so corrupt checkpoints error instead of
// panicking (or spinning the generation catch-up loop) later.
func (m *HiRAMC) Restore(r *snap.Reader, now dram.Time) error {
	org := m.cfg.Org
	rows := org.RowsPerBank()
	m.rng = r.U64()
	m.genPtr = r.Int()
	if m.genPtr < 0 || m.genPtr >= len(m.banks) {
		r.Failf("generation pointer %d out of range", m.genPtr)
		return r.Err()
	}
	m.Generated = r.U64()
	m.GeneratedPreventive = r.U64()
	m.Expedited = r.U64()
	for i := range m.chNext {
		m.chNext[i] = dram.MaxTime()
		m.chArmed[i] = 0
	}
	for _, b := range m.banks {
		nq := r.Len(RefreshTableCap, 3)
		b.queue = b.queue[:0]
		b.prDepth = 0
		for j := 0; j < nq; j++ {
			e := refEntry{deadline: dram.Time(r.I64()), preventive: r.Bool(), row: r.Int()}
			if r.Err() != nil {
				return r.Err()
			}
			// Periodic entries resolve their row through the RefPtr table
			// (row == -1); preventive entries carry a concrete victim.
			if e.preventive {
				if e.row < 0 || e.row >= rows {
					r.Failf("preventive refresh row %d out of range", e.row)
					return r.Err()
				}
				b.prDepth++
			} else if e.row != -1 {
				r.Failf("periodic refresh entry carries row %d", e.row)
				return r.Err()
			}
			b.queue = append(b.queue, e)
		}
		b.recalcMinDeadline()
		for j := range b.refPtr {
			p := r.Int()
			if p < 0 || p >= org.RowsPerSubarray {
				r.Failf("refptr %d out of range", p)
				return r.Err()
			}
			b.refPtr[j] = p
		}
		min := int(^uint(0) >> 1)
		for j := range b.refreshed {
			n := r.Int()
			if n < 0 {
				r.Failf("negative refresh count")
				return r.Err()
			}
			b.refreshed[j] = n
			if n < min {
				min = n
			}
		}
		b.minRef = min
		b.periodicDue = dram.Time(r.I64())
		// A lagging periodic phase would make Tick's catch-up loop push one
		// entry per interval since the phase. A live PeriodicHiRA engine
		// stays within tRefSlack + one interval of the clock even across
		// idle-skip windows (NextEvent bounds every skip by the next
		// generation's mandatory time), so anything further back is
		// corruption — and a potential unbounded loop. Other modes never
		// advance (or read) the phase.
		if m.cfg.Periodic == PeriodicHiRA &&
			(b.periodicDue < now-(m.cfg.RefSlack+4*m.interval+m.lead) || b.periodicDue < 0) {
			r.Failf("periodic phase %d too far behind clock %d", b.periodicDue, now)
			return r.Err()
		}
		b.armedSet = r.Bool()
		if b.armedSet {
			b.armed = sched.Op{
				Kind: sched.OpKind(r.U8()),
				Rank: r.Int(), Bank: r.Int(),
				RowA: r.Int(), RowB: r.Int(),
			}
			b.armedCount = r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			switch b.armed.Kind {
			case sched.OpRowRefresh, sched.OpHiRAPair, sched.OpRowRefreshBlocking:
			default:
				r.Failf("armed op kind %d invalid", b.armed.Kind)
				return r.Err()
			}
			if b.armed.Rank < 0 || b.armed.Rank >= org.RanksPerChannel ||
				b.armed.Bank < 0 || b.armed.Bank >= org.BanksPerRank() ||
				b.armed.RowA < -1 || b.armed.RowA >= rows ||
				b.armed.RowB < -1 || b.armed.RowB >= rows ||
				b.armedCount < 1 || b.armedCount > 2 {
				r.Failf("armed op out of range")
				return r.Err()
			}
			m.chArmed[b.ch]++
		} else {
			b.armed = sched.Op{}
			b.armedCount = 0
		}
		off := r.Int()
		b.offered = nil
		if off != 0 {
			b.offeredRow = r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if b.offeredRow < -1 || b.offeredRow >= rows || off > len(b.queue) {
				r.Failf("piggyback offer out of range")
				return r.Err()
			}
			if off > 0 {
				b.offered = &b.queue[off-1]
			} else {
				// Dangling live pointer: non-nil, matches no queue entry.
				b.offered = &refEntry{}
			}
		}
		if len(b.queue) > 0 && b.minDeadline < m.chNext[b.ch] {
			m.chNext[b.ch] = b.minDeadline
		}
	}
	hasREF := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasREF != (m.ref != nil) {
		r.Failf("baseline REF presence mismatch")
		return r.Err()
	}
	if m.ref != nil {
		return m.ref.Restore(r)
	}
	return r.Err()
}
