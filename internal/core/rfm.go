package core

import (
	"fmt"

	"hira/internal/dram"
	"hira/internal/sched"
)

// RFMConfig parameterizes the DDR5 RFM-style engine.
type RFMConfig struct {
	Org    dram.Org
	Timing dram.Timing
	// RAAIMT is the Rolling Accumulated ACT Initial Management Threshold:
	// the per-bank demand-activation budget between refresh-management
	// events. Every RAAIMT activations the DRAM gets an RFM opportunity
	// and refreshes the neighbors of the row its internal tracker holds.
	RAAIMT int
}

// rfmBank is one bank's RAA counter plus a single-entry majority-vote
// tracker (Boyer-Moore): the only per-bank state a DRAM-internal TRR of
// this class affords. The dominant aggressor of a window wins the latch;
// an attack spreading activations over many rows rotates the latch and
// dilutes coverage — RFM's documented weakness.
type rfmBank struct {
	raa     uint32
	latch   int32
	latchN  uint32
	latched bool
}

// RFM is a DDR5 refresh-management-style engine: per-bank activation
// budgets (RAA counters) force a refresh-management event every RAAIMT
// demand activations, modeled as blocking preventive refreshes of the
// tracked row's neighbors. Retention refresh stays conventional rank
// REF. Like the other zoo engines its tracker state is not
// checkpointable; cells running it simulate from tick zero.
type RFM struct {
	mitigationBase
	cfg   RFMConfig
	banks []rfmBank
	rpb   int
}

// NewRFM builds the engine.
func NewRFM(cfg RFMConfig) (*RFM, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.RAAIMT < 2 || cfg.RAAIMT > 1<<20 {
		return nil, fmt.Errorf("core: RFM RAAIMT %d outside [2, %d]", cfg.RAAIMT, 1<<20)
	}
	return &RFM{
		mitigationBase: newMitigationBase(cfg.Org, cfg.Timing),
		cfg:            cfg,
		banks:          make([]rfmBank, cfg.Org.TotalBanks()),
		rpb:            cfg.Org.RowsPerBank(),
	}, nil
}

// Stats returns the engine's mitigation tallies.
func (f *RFM) Stats() MitigationStats { return f.stats }

// Tick implements sched.RefreshEngine.
func (f *RFM) Tick(dram.Time) {}

// NoteActivate implements sched.RefreshEngine: advance the bank's RAA
// counter and majority-vote tracker; at RAAIMT, spend the RFM event on
// the latched row's neighbors and clear both.
func (f *RFM) NoteActivate(loc dram.Location, demand bool, now dram.Time) {
	if !demand {
		return
	}
	b := &f.banks[f.bankIndex(loc)]
	row := int32(loc.Row)
	switch {
	case b.latched && b.latch == row:
		b.latchN++
	case b.latchN > 0:
		b.latchN--
	default:
		b.latch = row
		b.latchN = 1
		b.latched = true
	}
	b.raa++
	if b.raa < uint32(f.cfg.RAAIMT) {
		return
	}
	victim := loc
	victim.Row = int(b.latch)
	f.enqueueVictims(victim, f.rpb)
	b.raa = 0
	b.latchN = 0
	b.latched = false
	f.stats.TableResets++
}

var _ sched.RefreshEngine = (*RFM)(nil)
