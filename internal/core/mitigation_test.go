package core

import (
	"testing"

	"hira/internal/dram"
	"hira/internal/sched"
)

func grapheneUnderTest(t *testing.T, nrh, counters int) *Graphene {
	t.Helper()
	g, err := NewGraphene(GrapheneConfig{
		Org: smallOrg(), Timing: shortTiming(), NRH: nrh, Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func actLoc(row int) dram.Location {
	return dram.Location{BankID: dram.BankID{Channel: 0, Rank: 0, Bank: 0}, Row: row}
}

func TestGrapheneTripsAtThreshold(t *testing.T) {
	g := grapheneUnderTest(t, 64, 8) // trip threshold 16
	for i := 0; i < 15; i++ {
		g.NoteActivate(actLoc(50), true, 0)
	}
	if got := g.Stats().Triggers; got != 0 {
		t.Fatalf("tripped after 15 activations: %d triggers", got)
	}
	g.NoteActivate(actLoc(50), true, 0)
	if got := g.Stats().Triggers; got != 1 {
		t.Fatalf("Triggers = %d after 16th activation, want 1", got)
	}
	if got := g.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2 (both neighbors of row 50)", got)
	}
	ops := g.Mandatory(0, 0)
	// BaselineREF owes no REF at t=0, so the two victims lead.
	if len(ops) != 2 {
		t.Fatalf("Mandatory returned %d ops, want 2: %+v", len(ops), ops)
	}
	wantRows := map[int]bool{49: true, 51: true}
	for _, op := range ops {
		if op.Kind != sched.OpRowRefreshBlocking || !op.PreventiveA {
			t.Fatalf("op %+v is not a preventive blocking row refresh", op)
		}
		if !wantRows[op.RowA] {
			t.Fatalf("op refreshes row %d, want a neighbor of 50", op.RowA)
		}
		delete(wantRows, op.RowA)
	}
	// The controller reports each refresh back; the queue drains.
	for _, row := range []int{49, 51} {
		g.NoteRefreshed(sched.Op{Kind: sched.OpRowRefreshBlocking, Rank: 0, Bank: 0, RowA: row}, 0, 0)
	}
	if got := g.Pending(); got != 0 {
		t.Fatalf("Pending = %d after both refreshes reported, want 0", got)
	}
	if got := g.Stats().VictimRefreshes; got != 2 {
		t.Fatalf("VictimRefreshes = %d, want 2", got)
	}
	// Refresh activations must not advance the tracker.
	for i := 0; i < 100; i++ {
		g.NoteActivate(actLoc(50), false, 0)
	}
	if got := g.Stats().Triggers; got != 1 {
		t.Fatalf("refresh activations advanced the tracker: %d triggers", got)
	}
}

func TestGrapheneCounterTableEvictionAndReset(t *testing.T) {
	g := grapheneUnderTest(t, 64, 2) // 2 counters: many-sided overflow territory
	// Fill the table with rows 10 and 20, then touch distinct rows: row 30
	// finds no floor-resting entry and raises the spillover floor; rows 40
	// and 50 then replace the entries the raised floor exposed.
	for _, row := range []int{10, 20, 30, 40, 50} {
		g.NoteActivate(actLoc(row), true, 0)
	}
	b := &g.banks[0]
	if b.n != 2 || b.spill != 1 {
		t.Fatalf("table n=%d spill=%d, want 2 tracked rows over floor 1", b.n, b.spill)
	}
	if b.rows[0] != 40 || b.rows[1] != 50 || b.cnts[0] != 2 || b.cnts[1] != 2 {
		t.Fatalf("table holds rows %v counts %v, want [40 50] at [2 2]", b.rows, b.cnts)
	}
	// The tREFW boundary clears the window.
	g.Tick(shortTiming().TREFW)
	if b.n != 0 || b.spill != 0 {
		t.Fatalf("table not reset at tREFW: n=%d spill=%d", b.n, b.spill)
	}
	if got := g.Stats().TableResets; got != 1 {
		t.Fatalf("TableResets = %d, want 1", got)
	}
}

func TestRFMBudgetAndLatch(t *testing.T) {
	f, err := NewRFM(RFMConfig{Org: smallOrg(), Timing: shortTiming(), RAAIMT: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Row 60 dominates the window, so the majority latch holds it when
	// the RAA budget runs out.
	for i := 0; i < 5; i++ {
		f.NoteActivate(actLoc(60), true, 0)
	}
	for _, row := range []int{70, 80, 90} {
		f.NoteActivate(actLoc(row), true, 0)
	}
	if got := f.Stats().Triggers; got != 1 {
		t.Fatalf("Triggers = %d after RAAIMT activations, want 1", got)
	}
	rows := map[int]bool{}
	for _, op := range f.Mandatory(0, 0) {
		if op.Kind == sched.OpRowRefreshBlocking {
			rows[op.RowA] = true
		}
	}
	if !rows[59] || !rows[61] {
		t.Fatalf("RFM queued rows %v, want neighbors of the dominant row 60", rows)
	}
	// The window reset: another RAAIMT-1 activations must not re-trip.
	for i := 0; i < 7; i++ {
		f.NoteActivate(actLoc(60), true, 0)
	}
	if got := f.Stats().Triggers; got != 1 {
		t.Fatalf("re-tripped before the fresh budget ran out: %d", got)
	}
}

func TestMitigationVictimRingOverflow(t *testing.T) {
	g := grapheneUnderTest(t, 64, 8)
	ring := &g.rings[0]
	for i := 0; i < victimRingCap; i++ {
		if !ring.push(victimRef{row: i}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	g.enqueueVictims(actLoc(50), g.rpb)
	if got := g.Stats().DroppedVictims; got != 2 {
		t.Fatalf("DroppedVictims = %d, want 2", got)
	}
	if ring.n != victimRingCap {
		t.Fatalf("ring grew past capacity: %d", ring.n)
	}
	// FIFO removal from the middle preserves order.
	if !ring.remove(victimRef{row: 3}) {
		t.Fatal("remove of a present entry failed")
	}
	if ring.at(0) != (victimRef{row: 0}) || ring.at(3) != (victimRef{row: 4}) {
		t.Fatalf("ring order broken after middle removal: %+v %+v", ring.at(0), ring.at(3))
	}
	if ring.remove(victimRef{row: 3}) {
		t.Fatal("removed an absent entry")
	}
}

// TestZooEnginesScheduleSafely runs each zoo engine under the real
// controller with the timing verifier and refresh auditor attached: the
// victim refreshes must respect every DRAM timing constraint and the
// conventional REF schedule must keep retention intact.
func TestZooEnginesScheduleSafely(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	for _, tc := range []struct {
		name string
		mk   func() sched.RefreshEngine
	}{
		{"graphene", func() sched.RefreshEngine {
			g, err := NewGraphene(GrapheneConfig{Org: org, Timing: tm, NRH: 32, Counters: 8})
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"rfm", func() sched.RefreshEngine {
			f, err := NewRFM(RFMConfig{Org: org, Timing: tm, RAAIMT: 16})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := sched.NewController(sched.Config{Org: org, Timing: tm}, tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			v := dram.NewVerifier(org, tm)
			a := dram.NewRefreshAuditor(org, tm)
			c.CommandHook = func(cmd dram.Command) {
				v.Check(cmd)
				a.Observe(cmd)
			}
			// Hammer two rows hard enough to trip both trackers, with some
			// background traffic over other banks.
			rng := uint64(0xABCDE)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			var tok uint64
			for tick := 0; tick < 400000; tick++ {
				if tick%50 == 0 {
					tok++
					row := 50
					if tok%2 == 0 {
						row = 52
					}
					c.Enqueue(sched.Request{Loc: actLoc(row), Token: tok})
				}
				if tick%177 == 0 {
					tok++
					c.Enqueue(sched.Request{Loc: dram.Location{
						BankID: dram.BankID{Bank: int(next() % uint64(org.BanksPerRank()))},
						Row:    int(next() % uint64(org.RowsPerBank())),
					}, Token: tok})
				}
				c.Tick()
			}
			// Blocking victim refreshes surface as standalone refreshes in
			// the controller's counters.
			if c.Stats.StandaloneRefreshes == 0 {
				t.Error("no victim refreshes issued despite sustained hammering")
			}
			if c.Stats.REFs == 0 {
				t.Error("conventional REF schedule stalled under the zoo engine")
			}
			if err := v.Err(); err != nil {
				t.Errorf("timing violated: %v", err)
			}
			if stale := a.StaleAt(c.Now(), 3); len(stale) != 0 {
				t.Errorf("retention violated: %v", stale)
			}
		})
	}
}
