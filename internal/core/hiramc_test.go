package core

import (
	"math"
	"testing"
	"testing/quick"

	"hira/internal/dram"
	"hira/internal/sched"
)

func smallOrg() dram.Org {
	o := dram.DefaultOrg()
	o.SubarraysPerBank = 8
	o.RowsPerSubarray = 16 // 128 rows/bank
	return o
}

// shortTiming shrinks the retention window so full refresh sweeps fit in
// short simulations while keeping the paper's per-bank refresh cadence
// (~2us per row refresh vs the paper's 975ns).
func shortTiming() dram.Timing {
	t := dram.DDR4_2400(8)
	t.TREFW = 256 * dram.Microsecond
	return t
}

type testbench struct {
	c *sched.Controller
	v *dram.Verifier
	a *dram.RefreshAuditor
	m *HiRAMC
}

func newBench(t *testing.T, org dram.Org, tm dram.Timing, cfg Config) *testbench {
	t.Helper()
	cfg.Org = org
	cfg.Timing = tm
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sched.NewController(sched.Config{Org: org, Timing: tm}, m)
	if err != nil {
		t.Fatal(err)
	}
	b := &testbench{c: c, m: m}
	b.v = dram.NewVerifier(org, tm)
	b.v.MaxT1 = tm.T1 + tm.TCK
	b.v.MaxT2 = tm.T2 + tm.TCK
	b.a = dram.NewRefreshAuditor(org, tm)
	c.CommandHook = func(cmd dram.Command) {
		b.v.Check(cmd)
		b.a.Observe(cmd)
	}
	return b
}

// runWithDemand ticks the controller while feeding a demand stream.
func (b *testbench) runWithDemand(ticks int, everyN int, rows int) {
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	tok := uint64(0)
	org := b.c.Config().Org
	for i := 0; i < ticks; i++ {
		if everyN > 0 && i%everyN == 0 {
			tok++
			b.c.Enqueue(sched.Request{
				Loc: dram.Location{
					BankID: dram.BankID{Bank: int(next() % uint64(org.BanksPerRank()))},
					Row:    int(next() % uint64(rows)),
					Col:    int(next() % 16),
				},
				Write: next()%5 == 0,
				Token: tok,
			})
		}
		b.c.Tick()
	}
}

func TestSPTProperties(t *testing.T) {
	s := NewSyntheticSPT(128, 0.32, 7)
	f := func(a, b uint8) bool {
		i, j := int(a)%128, int(b)%128
		if i == j {
			return !s.Isolated(i, j)
		}
		if d := i - j; d == 1 || d == -1 {
			return !s.Isolated(i, j)
		}
		return s.Isolated(i, j) == s.Isolated(j, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if cov := s.Coverage(); math.Abs(cov-0.32) > 0.04 {
		t.Errorf("SPT coverage = %.3f, want ~0.32 (§7)", cov)
	}
	for sa := 0; sa < 128; sa++ {
		for _, p := range s.Partners(sa) {
			if !s.Isolated(sa, p) {
				t.Fatalf("partner list inconsistent at (%d,%d)", sa, p)
			}
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	if _, err := New(Config{Org: org, Timing: tm, Periodic: PeriodicHiRA}); err == nil {
		t.Error("accepted PeriodicHiRA without SPT")
	}
	if _, err := New(Config{Org: org, Timing: tm, Preventive: PreventiveImmediate, Pth: 2}); err == nil {
		t.Error("accepted Pth > 1")
	}
}

func TestPeriodicHiRANoTimingViolations(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	b := newBench(t, org, tm, Config{
		Periodic: PeriodicHiRA, RefSlack: 2 * tm.TRC, SPT: spt, Seed: 1,
	})
	b.runWithDemand(400000, 10, org.RowsPerBank()) // ~333us with demand
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if b.c.Stats.HiRAPiggybacks == 0 {
		t.Error("no refresh-access parallelizations under demand")
	}
	if b.c.Stats.REFs != 0 {
		t.Errorf("PeriodicHiRA issued %d REF commands", b.c.Stats.REFs)
	}
}

func TestPeriodicHiRARefreshCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulation")
	}
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	b := newBench(t, org, tm, Config{
		Periodic: PeriodicHiRA, RefSlack: 4 * tm.TRC, SPT: spt, Seed: 1,
	})
	// Demand concentrated on few rows (subarray 0) so piggybacking is
	// constrained: the starvation guard must still cover every subarray.
	ticks := int(320 * dram.Microsecond / tm.TCK)
	b.runWithDemand(ticks, 25, 8)
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if stale := b.a.StaleAt(b.c.Now(), 3); len(stale) != 0 {
		t.Errorf("stale rows under HiRA periodic refresh: %v", stale)
	}
}

func TestPeriodicHiRAIdleRefreshCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-millisecond simulation")
	}
	// With no demand at all, every refresh goes through the deadline
	// path (standalone or refresh-refresh pair); completeness must hold.
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	b := newBench(t, org, tm, Config{
		Periodic: PeriodicHiRA, RefSlack: 2 * tm.TRC, SPT: spt, Seed: 1,
	})
	ticks := int(320 * dram.Microsecond / tm.TCK)
	b.runWithDemand(ticks, 0, 0)
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if stale := b.a.StaleAt(b.c.Now(), 3); len(stale) != 0 {
		t.Errorf("stale rows with idle HiRA refresh: %v", stale)
	}
	// With staggered periodic generation and no preventive traffic, at
	// most one refresh is pending per bank at a time, so the deadline
	// path performs them standalone (refresh-refresh pairing needs two
	// pending refreshes in one bank, which PARA traffic provides; see
	// TestPARAHiRAParallelizesPreventives).
	if b.c.Stats.StandaloneRefreshes == 0 {
		t.Error("no standalone deadline refreshes while idle")
	}
}

func TestSlackIncreasesParallelization(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	run := func(slack dram.Time) (piggy, standalone uint64) {
		spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
		b := newBench(t, org, tm, Config{
			Periodic: PeriodicHiRA, RefSlack: slack, SPT: spt, Seed: 1,
		})
		b.runWithDemand(600000, 30, org.RowsPerBank())
		if err := b.v.Err(); err != nil {
			t.Fatalf("timing violation at slack %v: %v", slack, err)
		}
		return b.c.Stats.HiRAPiggybacks, b.c.Stats.StandaloneRefreshes
	}
	p0, _ := run(0)
	p8, _ := run(8 * tm.TRC)
	if p8 <= p0 {
		t.Errorf("piggybacks with 8tRC slack (%d) not above slack 0 (%d)", p8, p0)
	}
}

func TestPARAImmediateGeneratesPreventives(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	b := newBench(t, org, tm, Config{
		Preventive: PreventiveImmediate, Pth: 0.5, Seed: 3,
	})
	b.runWithDemand(300000, 30, org.RowsPerBank())
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if b.m.GeneratedPreventive == 0 {
		t.Fatal("PARA generated no preventive refreshes")
	}
	acts := b.c.Stats.ACTs
	prevs := b.c.Stats.StandaloneRefreshes
	// Immediate mode performs all preventives standalone.
	if prevs == 0 {
		t.Fatal("no standalone preventive refreshes performed")
	}
	// Roughly pth of demand activations trigger a preventive refresh.
	demand := acts - prevs
	ratio := float64(prevs) / float64(demand)
	if math.Abs(ratio-0.5) > 0.15 {
		t.Errorf("preventive/demand ratio = %.3f, want ~0.5 (pth)", ratio)
	}
}

func TestPARAHiRAParallelizesPreventives(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	b := newBench(t, org, tm, Config{
		Preventive: PreventiveHiRA, Pth: 0.5, RefSlack: 4 * tm.TRC, SPT: spt, Seed: 3,
	})
	b.runWithDemand(300000, 30, org.RowsPerBank())
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if b.m.GeneratedPreventive == 0 {
		t.Fatal("PARA generated no preventive refreshes")
	}
	hidden := b.c.Stats.HiRAPiggybacks + b.c.Stats.HiRAPairs
	if hidden == 0 {
		t.Error("no preventive refresh was parallelized")
	}
}

func TestPreventiveNeverDropped(t *testing.T) {
	// Every generated preventive refresh must eventually be performed:
	// sum of performed kinds (piggyback + 2x pairs + standalone) must
	// cover generated preventives once queues drain.
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	b := newBench(t, org, tm, Config{
		Preventive: PreventiveHiRA, Pth: 0.8, RefSlack: 2 * tm.TRC, SPT: spt, Seed: 3,
	})
	b.runWithDemand(200000, 25, org.RowsPerBank())
	// Drain with no further demand.
	for i := 0; i < 50000; i++ {
		b.c.Tick()
	}
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if n := b.m.PendingRefreshes(); n != 0 {
		t.Errorf("%d refreshes still pending after drain", n)
	}
	performed := b.c.Stats.HiRAPiggybacks + 2*b.c.Stats.HiRAPairs + b.c.Stats.StandaloneRefreshes
	if performed < b.m.GeneratedPreventive {
		t.Errorf("performed %d refresh ops < generated %d preventives",
			performed, b.m.GeneratedPreventive)
	}
}

// TestPreventiveOverflowExpeditesOldest pins the structure-full
// semantics of NoteActivate: once the per-bank PR-FIFO holds PRFIFOCap
// entries, the next sampled activation (a) counts an Expedited overflow,
// (b) pulls the OLDEST queued preventive entry's deadline to now —
// not the new entry's — and (c) still admits the new entry at its own
// deadline (nothing is dropped; the cap overshoots transiently).
func TestPreventiveOverflowExpeditesOldest(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
	slack := 4 * tm.TRC
	m, err := New(Config{
		Org: org, Timing: tm,
		Preventive: PreventiveHiRA, Pth: 1, RefSlack: slack, SPT: spt, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	loc := dram.Location{Row: 50, Col: 0}
	b := m.bank(0, 0, 0)
	// Pth = 1 samples every activation, so each call queues one entry.
	// Space the calls in time so deadlines are strictly increasing and
	// the oldest entry is unambiguous.
	for i := 0; i < PRFIFOCap; i++ {
		m.NoteActivate(loc, true, dram.Time(i)*tm.TCK)
	}
	if m.Expedited != 0 || b.prDepth != PRFIFOCap {
		t.Fatalf("after %d activations: expedited=%d prDepth=%d", PRFIFOCap, m.Expedited, b.prDepth)
	}
	firstDeadline := b.queue[0].deadline
	if firstDeadline != slack {
		t.Fatalf("oldest deadline %v, want %v", firstDeadline, slack)
	}
	now := dram.Time(PRFIFOCap) * tm.TCK
	m.NoteActivate(loc, true, now)
	if m.Expedited != 1 {
		t.Fatalf("expedited = %d, want 1", m.Expedited)
	}
	if got := b.queue[0].deadline; got != now {
		t.Errorf("oldest entry's deadline %v, want expedited to now %v", got, now)
	}
	if got := b.queue[len(b.queue)-1].deadline; got != now+slack {
		t.Errorf("new entry's deadline %v, want its own %v", got, now+slack)
	}
	if len(b.queue) != PRFIFOCap+1 || b.prDepth != PRFIFOCap+1 {
		t.Errorf("queue=%d prDepth=%d, want transient overshoot to %d", len(b.queue), b.prDepth, PRFIFOCap+1)
	}
	if b.minDeadline != now {
		t.Errorf("minDeadline %v not pulled to now %v", b.minDeadline, now)
	}
	// The expedited entry arms on the next Mandatory scan and drains.
	ops := m.Mandatory(0, now)
	if len(ops) == 0 {
		t.Fatal("expedited entry did not become mandatory")
	}
}

func TestPeriodicREFModeDelegates(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	b := newBench(t, org, tm, Config{Periodic: PeriodicREF})
	ticks := int(10 * tm.TREFI / tm.TCK)
	b.runWithDemand(ticks, 100, org.RowsPerBank())
	if err := b.v.Err(); err != nil {
		t.Fatalf("timing violation: %v", err)
	}
	if b.c.Stats.REFs < 8 {
		t.Errorf("REFs = %d over 10 tREFI", b.c.Stats.REFs)
	}
}

func TestHiRAMCDeterminism(t *testing.T) {
	org := smallOrg()
	tm := shortTiming()
	run := func() sched.Stats {
		spt := NewSyntheticSPT(org.SubarraysPerBank, 0.32, 7)
		b := newBench(t, org, tm, Config{
			Periodic: PeriodicHiRA, Preventive: PreventiveHiRA,
			Pth: 0.3, RefSlack: 2 * tm.TRC, SPT: spt, Seed: 11,
		})
		b.runWithDemand(150000, 30, org.RowsPerBank())
		return b.c.Stats
	}
	if run() != run() {
		t.Error("HiRA-MC simulation not deterministic")
	}
}
