// Package softmc is the command-level DRAM testing host used by the
// characterization experiments, playing the role of the paper's
// FPGA-based SoftMC infrastructure (§4.1).
//
// A Host wraps a virtual chip and exposes the primitive operations the
// paper's Algorithms 1 and 2 are written in: issue an ACT or PRE and then
// wait a precise interval, initialize a row with a data pattern, and read
// a row back comparing it against an expected pattern. Like the real
// SoftMC on the Alveo U200, the host can issue at most one command per
// minimum command period (1.5 ns in the paper's setup).
package softmc

import (
	"hira/internal/chip"
	"hira/internal/dram"
)

// DataPattern is a repeating one-byte test pattern.
type DataPattern byte

// The four data patterns used by the paper's tests (§4.1).
const (
	AllOnes      DataPattern = 0xFF
	AllZeros     DataPattern = 0x00
	Checkerboard DataPattern = 0xAA
	InvCheckered DataPattern = 0x55
)

// Patterns lists the paper's four test patterns in test order.
func Patterns() [4]DataPattern {
	return [4]DataPattern{AllOnes, AllZeros, Checkerboard, InvCheckered}
}

// Inverse returns the bitwise inverse pattern.
func (p DataPattern) Inverse() DataPattern { return ^p }

// Host drives one virtual DRAM module with precisely timed commands.
type Host struct {
	chip *chip.Chip
	now  dram.Time

	// MinPeriod is the smallest spacing between two commands the host can
	// achieve (SoftMC's 1.5 ns in the double-data-rate domain).
	MinPeriod dram.Time

	// Conservative nominal timings used by convenience operations.
	TRCD, TRAS, TRP dram.Time
}

// NewHost returns a host over the chip with the paper's infrastructure
// constants.
func NewHost(c *chip.Chip) *Host {
	return &Host{
		chip:      c,
		MinPeriod: dram.FromNanoseconds(1.5),
		TRCD:      dram.FromNanoseconds(14.25),
		TRAS:      dram.FromNanoseconds(32),
		TRP:       dram.FromNanoseconds(14.25),
	}
}

// Chip returns the device under test.
func (h *Host) Chip() *chip.Chip { return h.chip }

// Now returns the host's current time.
func (h *Host) Now() dram.Time { return h.now }

// Wait advances time by d (at least MinPeriod).
func (h *Host) Wait(d dram.Time) {
	if d < h.MinPeriod {
		d = h.MinPeriod
	}
	h.now += d
}

// Act issues an ACT to (bank, row) and then waits the given interval.
func (h *Host) Act(bank, row int, wait dram.Time) {
	h.chip.Activate(bank, row, h.now)
	h.Wait(wait)
}

// Pre issues a PRE to the bank and then waits the given interval.
func (h *Host) Pre(bank int, wait dram.Time) {
	h.chip.Precharge(bank, h.now)
	h.Wait(wait)
}

// HiRA issues one complete HiRA sequence — ACT rowA, PRE after t1, ACT
// rowB after t2 — and waits tRAS so rowB's charge restoration completes,
// then closes both rows with a final precharge (footnote 1: one PRE closes
// both) and waits tRP.
func (h *Host) HiRA(bank, rowA, rowB int, t1, t2 dram.Time) {
	h.Act(bank, rowA, t1)
	h.Pre(bank, t2)
	h.Act(bank, rowB, h.TRAS)
	h.Pre(bank, h.TRP)
}

// InitRow writes the pattern into the row, modelling the test equipment's
// activate-write-precharge sequence. It occupies the bank for a full row
// cycle.
func (h *Host) InitRow(bank, row int, p DataPattern) {
	h.Act(bank, row, h.TRCD)
	h.chip.InitRow(bank, row, byte(p))
	h.Wait(h.TRAS - h.TRCD)
	h.Pre(bank, h.TRP)
}

// CompareRow activates the row, reads it back, compares against the
// expected pattern, precharges, and returns the number of flipped bits.
func (h *Host) CompareRow(bank, row int, p DataPattern) int {
	h.Act(bank, row, h.TRCD)
	flips := h.chip.CompareRow(bank, row, byte(p))
	h.Wait(h.TRAS - h.TRCD)
	h.Pre(bank, h.TRP)
	return flips
}

// HammerPair performs n double-sided hammer iterations using the chip's
// burst fast path (equivalent to 4n timed commands; see chip.HammerBurst).
func (h *Host) HammerPair(bank, rowA, rowB, n int) {
	h.now = h.chip.HammerBurst(bank, rowA, rowB, n, h.now)
}
