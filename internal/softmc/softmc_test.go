package softmc

import (
	"testing"

	"hira/internal/chip"
	"hira/internal/dram"
)

func testHost() *Host {
	g := chip.Geometry{Banks: 2, SubarraysPerBank: 32, RowsPerSubarray: 64}
	return NewHost(chip.New(chip.SKHynixLike("test", 0.33), g, 42, 8))
}

func TestPatterns(t *testing.T) {
	ps := Patterns()
	want := [4]DataPattern{0xFF, 0x00, 0xAA, 0x55}
	if ps != want {
		t.Errorf("Patterns() = %x, want %x", ps, want)
	}
	if AllOnes.Inverse() != AllZeros || Checkerboard.Inverse() != InvCheckered {
		t.Error("Inverse() incorrect")
	}
}

func TestWaitEnforcesMinPeriod(t *testing.T) {
	h := testHost()
	h.Wait(0)
	if h.Now() != h.MinPeriod {
		t.Errorf("Now = %v after Wait(0), want MinPeriod %v", h.Now(), h.MinPeriod)
	}
	h.Wait(10 * dram.Nanosecond)
	if h.Now() != h.MinPeriod+10*dram.Nanosecond {
		t.Errorf("Now = %v, want %v", h.Now(), h.MinPeriod+10*dram.Nanosecond)
	}
}

func TestInitAndCompareRoundTrip(t *testing.T) {
	h := testHost()
	for _, p := range Patterns() {
		h.InitRow(0, 100, p)
		if flips := h.CompareRow(0, 100, p); flips != 0 {
			t.Errorf("pattern %#x: %d flips on clean round trip", byte(p), flips)
		}
	}
}

func TestHiRAOnIsolatedPair(t *testing.T) {
	h := testHost()
	c := h.Chip()
	// Find an isolated subarray pair.
	var rowA, rowB = -1, -1
	for sa := 0; sa < c.Geometry().SubarraysPerBank && rowA < 0; sa++ {
		if isos := c.IsolatedSubarrays(sa); len(isos) > 0 {
			rowA = sa * c.Geometry().RowsPerSubarray
			rowB = isos[0] * c.Geometry().RowsPerSubarray
		}
	}
	if rowA < 0 {
		t.Fatal("no isolated pair found")
	}
	h.InitRow(0, rowA, Checkerboard)
	h.InitRow(0, rowB, InvCheckered)
	h.HiRA(0, rowA, rowB, 3*dram.Nanosecond, 3*dram.Nanosecond)
	if f := h.CompareRow(0, rowA, Checkerboard); f != 0 {
		t.Errorf("RowA flipped %d bits", f)
	}
	if f := h.CompareRow(0, rowB, InvCheckered); f != 0 {
		t.Errorf("RowB flipped %d bits", f)
	}
}

// TestHammerPairMatchesExplicitLoop is the equivalence property behind the
// burst fast path: HammerPair must leave the chip in exactly the state the
// explicit 4n-command loop would.
func TestHammerPairMatchesExplicitLoop(t *testing.T) {
	g := chip.Geometry{Banks: 1, SubarraysPerBank: 8, RowsPerSubarray: 64}
	mk := func() (*Host, int) {
		c := chip.New(chip.SKHynixLike("test", 0.33), g, 7, 8)
		return NewHost(c), 10
	}
	const n = 900

	hBurst, victim := mk()
	hBurst.InitRow(0, victim, Checkerboard)
	hBurst.HammerPair(0, victim-1, victim+1, n)

	hLoop, _ := mk()
	hLoop.InitRow(0, victim, Checkerboard)
	for i := 0; i < n; i++ {
		hLoop.Act(0, victim-1, hLoop.TRAS)
		hLoop.Pre(0, hLoop.TRP)
		hLoop.Act(0, victim+1, hLoop.TRAS)
		hLoop.Pre(0, hLoop.TRP)
	}

	for _, row := range []int{victim - 2, victim - 1, victim, victim + 1, victim + 2} {
		fb := hBurst.CompareRow(0, row, Checkerboard)
		fl := hLoop.CompareRow(0, row, Checkerboard)
		// Rows other than the victim were never initialized; compare
		// corruption state only for the victim.
		if row == victim && fb != fl {
			t.Errorf("row %d: burst %d flips, loop %d flips", row, fb, fl)
		}
	}
}

// TestHammerPairCrossesThresholdExactly checks that a burst that ends
// exactly at the threshold flips the victim while one disturbance short
// does not.
func TestHammerPairCrossesThresholdExactly(t *testing.T) {
	g := chip.Geometry{Banks: 1, SubarraysPerBank: 8, RowsPerSubarray: 64}
	victim := 10
	probe := chip.New(chip.SKHynixLike("test", 0.33), g, 7, 8)

	// Discover this trial's effective threshold by construction: the
	// chip adds +/-2% noise per InitRow, so measure via a wide burst
	// first, then verify the boundary with fresh trials. Each burst
	// iteration disturbs the victim twice.
	nrh := probe.Intrinsics(0, victim).NRH
	lo, hi := 1, int(nrh) // iterations; victim disturb = 2*iterations
	for lo < hi {
		mid := (lo + hi) / 2
		h := NewHost(chip.New(chip.SKHynixLike("test", 0.33), g, 7, 8))
		h.InitRow(0, victim, Checkerboard)
		h.HammerPair(0, victim-1, victim+1, mid)
		if h.CompareRow(0, victim, Checkerboard) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo <= 1 || float64(2*lo) < nrh*0.9 || float64(2*lo) > nrh*1.1 {
		t.Errorf("measured threshold %d far from intrinsic %f", 2*lo, nrh)
	}
}
