package chip

import (
	"fmt"

	"hira/internal/dram"
)

// HammerBurst performs n double-sided hammer iterations — the inner loop
// of the paper's Algorithm 2 — starting at time start:
//
//	repeat n times:
//	    ACT rowA; wait tRAS; PRE; wait tRP;
//	    ACT rowB; wait tRAS; PRE; wait tRP
//
// and returns the time after the final precharge completes. The effect is
// bit-for-bit identical to issuing the same 4n commands through Activate
// and Precharge (a property the test suite checks), but runs in O(rows
// touched) instead of O(n), which makes binary-searching RowHammer
// thresholds of ~10^5 activations practical.
//
// The two aggressor rows must be at least two rows apart (as in
// double-sided hammering of a victim between them) so that neither
// disturbs the other; HammerBurst panics otherwise. The bank must be
// precharged.
func (c *Chip) HammerBurst(bankIdx, rowA, rowB, n int, start dram.Time) dram.Time {
	if d := rowA - rowB; -2 < d && d < 2 {
		panic(fmt.Sprintf("chip: HammerBurst aggressors %d and %d are adjacent", rowA, rowB))
	}
	b := c.bankAt(bankIdx)
	c.resolve(b, start)
	if b.prePen || len(b.open) > 0 {
		panic("chip: HammerBurst on a bank that is not precharged")
	}
	if n <= 0 {
		return start
	}

	tRAS := dram.FromNanoseconds(32)
	tRP := dram.FromNanoseconds(14.25)

	// Aggressors are fully restored by each of their own activations;
	// accumulate disturbance only on their closed neighbours.
	type victim struct {
		r    *row
		rate float64 // disturbances per iteration
	}
	counts := make(map[int]float64)
	for _, agg := range [2]int{rowA, rowB} {
		sa := c.SubarrayOf(agg)
		for _, nb := range [2]int{agg - 1, agg + 1} {
			if nb < 0 || nb >= c.geom.RowsPerBank() || c.SubarrayOf(nb) != sa {
				continue
			}
			if nb == rowA || nb == rowB {
				continue // the other aggressor restores itself
			}
			counts[nb]++
		}
	}
	victims := make([]victim, 0, len(counts))
	for nb, rate := range counts {
		victims = append(victims, victim{r: c.materialize(b, nb), rate: rate})
	}

	for _, v := range victims {
		before := v.r.disturb
		v.r.disturb += v.rate * float64(n)
		if before < v.r.nrhEff && v.r.disturb >= v.r.nrhEff {
			c.corrupt(b, v.r)
		}
	}
	// The aggressors end the burst fully restored.
	for _, agg := range [2]int{rowA, rowB} {
		r := c.materialize(b, agg)
		r.disturb *= r.residual
		if r.disturb < 0 {
			r.disturb = 0
		}
	}
	return start + dram.Time(n)*2*(tRAS+tRP)
}
