package chip

import (
	"math"
	"testing"
	"testing/quick"

	"hira/internal/dram"
)

func testChip(seed uint64) *Chip {
	g := Geometry{Banks: 2, SubarraysPerBank: 32, RowsPerSubarray: 64}
	return New(SKHynixLike("test", 0.33), g, seed, 8)
}

const (
	nsT = dram.Nanosecond
)

var (
	tRAS = dram.FromNanoseconds(32)
	tRP  = dram.FromNanoseconds(14.25)
)

// doHiRA runs one ACT-PRE-ACT HiRA sequence starting at time at and closes
// both rows, returning the time after the final close settles.
func doHiRA(c *Chip, bank, rowA, rowB int, t1, t2 dram.Time, at dram.Time) dram.Time {
	c.Activate(bank, rowA, at)
	c.Precharge(bank, at+t1)
	c.Activate(bank, rowB, at+t1+t2)
	c.Precharge(bank, at+t1+t2+tRAS)
	return at + t1 + t2 + tRAS + tRP
}

// isolatedPair returns a (rowA, rowB) pair in isolated subarrays and a
// pair in non-isolated subarrays.
func isolatedPair(t *testing.T, c *Chip) (okA, okB, badA, badB int) {
	t.Helper()
	g := c.Geometry()
	for sa := 0; sa < g.SubarraysPerBank; sa++ {
		isos := c.IsolatedSubarrays(sa)
		if len(isos) == 0 || len(isos) == g.SubarraysPerBank-1 {
			continue
		}
		okA = sa * g.RowsPerSubarray
		okB = isos[0] * g.RowsPerSubarray
		for sb := 0; sb < g.SubarraysPerBank; sb++ {
			if sb != sa && !c.Isolated(sa, sb) {
				badA = okA
				badB = sb * g.RowsPerSubarray
				return okA, okB, badA, badB
			}
		}
	}
	t.Fatal("could not find isolated and non-isolated subarray pairs")
	return
}

func TestIsolationGraphProperties(t *testing.T) {
	c := testChip(7)
	g := c.Geometry()
	f := func(a, b uint8) bool {
		i := int(a) % g.SubarraysPerBank
		j := int(b) % g.SubarraysPerBank
		if i == j && c.Isolated(i, j) {
			return false // never isolated from itself
		}
		if abs(i-j) == 1 && c.Isolated(i, j) {
			return false // adjacent subarrays share sense amps
		}
		return c.Isolated(i, j) == c.Isolated(j, i) // symmetric
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestIsolationCoverageNearTarget(t *testing.T) {
	g := DefaultGeometry()
	c := New(SKHynixLike("cov", 0.33), g, 99, 8)
	total := 0
	for sa := 0; sa < g.SubarraysPerBank; sa++ {
		total += len(c.IsolatedSubarrays(sa))
	}
	frac := float64(total) / float64(g.SubarraysPerBank*g.SubarraysPerBank)
	if math.Abs(frac-0.33) > 0.04 {
		t.Errorf("isolation fraction = %.3f, want ~0.33", frac)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, RowIntrinsics) {
		c := testChip(42)
		c.InitRow(0, 10, 0xAA)
		c.InitRow(0, 700, 0x55)
		doHiRA(c, 0, 10, 700, 3*nsT, 3*nsT, 0)
		return c.CompareRow(0, 10, 0xAA), c.Intrinsics(0, 10)
	}
	f1, i1 := run()
	f2, i2 := run()
	if f1 != f2 || i1 != i2 {
		t.Errorf("chip not deterministic: (%d,%+v) vs (%d,%+v)", f1, i1, f2, i2)
	}
}

func TestHiRAIsolatedPairSucceeds(t *testing.T) {
	c := testChip(42)
	okA, okB, _, _ := isolatedPair(t, c)
	c.InitRow(0, okA, 0xFF)
	c.InitRow(0, okB, 0x00)
	doHiRA(c, 0, okA, okB, 3*nsT, 3*nsT, 0)
	if f := c.CompareRow(0, okA, 0xFF); f != 0 {
		t.Errorf("RowA flipped %d bits on isolated HiRA pairing", f)
	}
	if f := c.CompareRow(0, okB, 0x00); f != 0 {
		t.Errorf("RowB flipped %d bits on isolated HiRA pairing", f)
	}
}

func TestHiRANonIsolatedPairCorruptsBothRows(t *testing.T) {
	c := testChip(42)
	_, _, badA, badB := isolatedPair(t, c)
	c.InitRow(0, badA, 0xFF)
	c.InitRow(0, badB, 0x00)
	doHiRA(c, 0, badA, badB, 3*nsT, 3*nsT, 0)
	if f := c.CompareRow(0, badA, 0xFF); f == 0 {
		t.Error("RowA intact after non-isolated HiRA pairing (negative control failed)")
	}
	if f := c.CompareRow(0, badB, 0x00); f == 0 {
		t.Error("RowB intact after non-isolated HiRA pairing (negative control failed)")
	}
}

func TestHiRASameSubarrayCorrupts(t *testing.T) {
	c := testChip(42)
	c.InitRow(0, 4, 0xFF)
	c.InitRow(0, 9, 0x00)
	doHiRA(c, 0, 4, 9, 3*nsT, 3*nsT, 0) // same subarray: shares bitlines
	if c.CompareRow(0, 4, 0xFF) == 0 && c.CompareRow(0, 9, 0x00) == 0 {
		t.Error("same-subarray HiRA pairing left both rows intact")
	}
}

func TestHiRAT1TooSmallCorruptsFirstRow(t *testing.T) {
	c := testChip(42)
	okA, okB, _, _ := isolatedPair(t, c)
	// Find a RowA whose sense-amp enable time exceeds 0.8ns; t1=0.75ns is
	// below the clip floor so every row fails.
	c.InitRow(0, okA, 0xFF)
	c.InitRow(0, okB, 0x00)
	doHiRA(c, 0, okA, okB, dram.FromNanoseconds(0.65), 3*nsT, 0)
	if c.CompareRow(0, okA, 0xFF) == 0 {
		t.Error("RowA intact though PRE arrived before sense amps enabled")
	}
}

func TestHiRAT1TooLargeCorruptsFirstRow(t *testing.T) {
	c := testChip(42)
	okA, okB, _, _ := isolatedPair(t, c)
	c.InitRow(0, okA, 0xFF)
	c.InitRow(0, okB, 0x00)
	// t1=8.5ns exceeds every row's I/O-connect time (clip max 8.0).
	doHiRA(c, 0, okA, okB, dram.FromNanoseconds(8.5), 3*nsT, 0)
	if c.CompareRow(0, okA, 0xFF) == 0 {
		t.Error("RowA intact though precharge arrived after bank-I/O connect")
	}
}

func TestHiRAT2TooLargeBecomesNormalPrecharge(t *testing.T) {
	c := testChip(42)
	okA, okB, _, _ := isolatedPair(t, c)
	c.InitRow(0, okA, 0xFF)
	c.InitRow(0, okB, 0x00)
	// Second ACT arrives 12ns after PRE: past every row's wordline-hold
	// window, so the precharge completes and RowA (open for only
	// t1+wlHold < restoreNeed) keeps its latched data but the second ACT
	// proceeds as a normal activation of RowB.
	c.Activate(0, okA, 0)
	c.Precharge(0, 3*nsT)
	c.Activate(0, okB, 3*nsT+12*nsT)
	c.Precharge(0, 3*nsT+12*nsT+tRAS)
	if f := c.CompareRow(0, okB, 0x00); f != 0 {
		t.Errorf("RowB flipped %d bits in a plain activation", f)
	}
}

func TestNonHiRADesignIgnoresSequence(t *testing.T) {
	// §12: chips from the two non-working manufacturers act as if they
	// never received the grossly violating PRE (and hence the second
	// ACT). Both rows stay intact — which is exactly why Algorithm 1
	// alone cannot certify HiRA and Algorithm 2 must verify the second
	// activation.
	g := Geometry{Banks: 2, SubarraysPerBank: 32, RowsPerSubarray: 64}
	c := New(NonHiRALike("micron-like"), g, 42, 8)
	c.InitRow(0, 10, 0xFF)
	c.InitRow(0, 700, 0x00)
	doHiRA(c, 0, 10, 700, 3*nsT, 3*nsT, 0)
	if f := c.CompareRow(0, 10, 0xFF); f != 0 {
		t.Errorf("RowA flipped %d bits; non-HiRA design should drop the sequence", f)
	}
	if f := c.CompareRow(0, 700, 0x00); f != 0 {
		t.Errorf("RowB flipped %d bits; non-HiRA design should drop the sequence", f)
	}
	if c.Ignored < 2 {
		t.Errorf("Ignored = %d, want >= 2 (dropped PRE and second ACT)", c.Ignored)
	}
	// Normal operation must still work on these designs.
	c.InitRow(1, 5, 0xAA)
	c.Activate(1, 5, 0)
	c.Precharge(1, tRAS)
	if f := c.CompareRow(1, 5, 0xAA); f != 0 {
		t.Errorf("normal ACT/PRE flipped %d bits on non-HiRA design", f)
	}
}

func TestNormalActivationRoundTrip(t *testing.T) {
	c := testChip(42)
	c.InitRow(0, 100, 0xAA)
	c.Activate(0, 100, 0)
	c.Precharge(0, tRAS)
	if f := c.CompareRow(0, 100, 0xAA); f != 0 {
		t.Errorf("normal ACT/PRE flipped %d bits", f)
	}
}

func TestEarlyPrechargeDestroysRow(t *testing.T) {
	c := testChip(42)
	c.InitRow(0, 100, 0xAA)
	c.Activate(0, 100, 0)
	c.Precharge(0, dram.FromNanoseconds(0.5)) // before sense amps enable
	c.Precharge(0, 20*nsT)                    // force resolution
	if c.CompareRow(0, 100, 0xAA) == 0 {
		t.Error("row intact after sub-sense-amp-enable precharge")
	}
}

func TestActToOpenBankIgnored(t *testing.T) {
	c := testChip(42)
	c.InitRow(0, 100, 0xAA)
	c.InitRow(0, 900, 0x55)
	c.Activate(0, 100, 0)
	c.Activate(0, 900, 50*nsT) // no PRE in between: dropped
	if c.Ignored != 1 {
		t.Errorf("Ignored = %d, want 1", c.Ignored)
	}
	c.Precharge(0, 90*nsT)
	if f := c.CompareRow(0, 100, 0xAA); f != 0 {
		t.Errorf("open row flipped %d bits after ignored ACT", f)
	}
}

func hammerPair(c *Chip, bank, a, b, times int, at dram.Time) dram.Time {
	for i := 0; i < times; i++ {
		c.Activate(bank, a, at)
		at += tRAS
		c.Precharge(bank, at)
		at += tRP
		c.Activate(bank, b, at)
		at += tRAS
		c.Precharge(bank, at)
		at += tRP
	}
	return at
}

func TestRowHammerInducesFlipsAtThreshold(t *testing.T) {
	c := testChip(42)
	victim := 10
	nrh := c.Intrinsics(0, victim).NRH
	c.InitRow(0, victim, 0xAA)
	c.InitRow(0, victim-1, 0x55)
	c.InitRow(0, victim+1, 0x55)
	// Each pair iteration disturbs the victim twice.
	pairs := int(nrh)/2 + 64
	hammerPair(c, 0, victim-1, victim+1, pairs, 0)
	if c.CompareRow(0, victim, 0xAA) == 0 {
		t.Errorf("no flips after %d disturbances (NRH %f)", 2*pairs, nrh)
	}
	// A fresh init and sub-threshold hammering must not flip.
	c.InitRow(0, victim, 0xAA)
	hammerPair(c, 0, victim-1, victim+1, int(nrh)/4, 0)
	if f := c.CompareRow(0, victim, 0xAA); f != 0 {
		t.Errorf("%d flips after sub-threshold hammering", f)
	}
}

func TestRefreshResetsDisturbance(t *testing.T) {
	c := testChip(42)
	victim := 10
	nrh := c.Intrinsics(0, victim).NRH
	c.InitRow(0, victim, 0xAA)
	c.InitRow(0, victim-1, 0x55)
	c.InitRow(0, victim+1, 0x55)
	// Hammer to ~70% of threshold, refresh the victim by activating it,
	// then hammer another ~70%: no flips expected (residual is small).
	pairs := int(nrh * 0.35)
	at := hammerPair(c, 0, victim-1, victim+1, pairs, 0)
	c.Activate(0, victim, at)
	c.Precharge(0, at+tRAS)
	at += tRAS + tRP
	hammerPair(c, 0, victim-1, victim+1, pairs, at)
	if f := c.CompareRow(0, victim, 0xAA); f != 0 {
		t.Errorf("victim flipped %d bits despite mid-hammer refresh", f)
	}
}

func TestSubarrayBoundaryBlocksHammer(t *testing.T) {
	c := testChip(42)
	g := c.Geometry()
	// Last row of subarray 0 and first row of subarray 1 are separated by
	// a sense-amp stripe: hammering one must not disturb the other.
	a := g.RowsPerSubarray - 1
	v := g.RowsPerSubarray
	c.InitRow(0, v, 0xAA)
	nrh := c.Intrinsics(0, v).NRH
	for i := 0; i < int(nrh)*2; i++ {
		c.Activate(0, a, dram.Time(i)*(tRAS+tRP))
		c.Precharge(0, dram.Time(i)*(tRAS+tRP)+tRAS)
	}
	if f := c.CompareRow(0, v, 0xAA); f != 0 {
		t.Errorf("cross-subarray hammering flipped %d bits", f)
	}
}

func TestBanksAreIndependent(t *testing.T) {
	c := testChip(42)
	c.InitRow(0, 100, 0xAA)
	c.InitRow(1, 100, 0x55)
	c.Activate(0, 100, 0)
	c.Activate(1, 100, dram.Nanosecond) // different bank: fine
	c.Precharge(0, tRAS)
	c.Precharge(1, tRAS+dram.Nanosecond)
	if c.Ignored != 0 {
		t.Errorf("Ignored = %d, want 0", c.Ignored)
	}
	if c.CompareRow(0, 100, 0xAA) != 0 || c.CompareRow(1, 100, 0x55) != 0 {
		t.Error("independent banks interfered")
	}
}

func TestIntrinsicsWithinDesignClips(t *testing.T) {
	c := testChip(13)
	f := func(raw uint16) bool {
		row := int(raw) % c.Geometry().RowsPerBank()
		in := c.Intrinsics(0, row)
		return in.SAEnableNS >= 0.7 && in.SAEnableNS <= 2.9 &&
			in.IOConnectNS >= 4.0 && in.IOConnectNS <= 8.0 &&
			in.WLHoldNS >= 6.1 && in.WLHoldNS <= 9.0 &&
			in.NRH >= 9600 && in.NRH <= 82000 &&
			in.Residual >= -0.18 && in.Residual <= 0.8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefreshCommandRestoresRows(t *testing.T) {
	c := testChip(42)
	victim := 1 // within the first REF batch of 8 rows
	c.InitRow(0, victim, 0xAA)
	c.InitRow(0, victim-1, 0x55)
	c.InitRow(0, victim+1, 0x55)
	nrh := c.Intrinsics(0, victim).NRH
	pairs := int(nrh * 0.35)
	at := hammerPair(c, 0, victim-1, victim+1, pairs, 0)
	c.Refresh(at) // internal counter starts at row 0: covers the victim
	hammerPair(c, 0, victim-1, victim+1, pairs, at+dram.FromNanoseconds(350))
	if f := c.CompareRow(0, victim, 0xAA); f != 0 {
		t.Errorf("victim flipped %d bits despite REF between hammer halves", f)
	}
}
