package chip

import (
	"fmt"

	"hira/internal/dram"
)

// Salt constants for per-quantity deterministic sampling.
const (
	saltCoverage = iota + 1
	saltIsolation
	saltSAEnable
	saltIOConnect
	saltIODisconnect
	saltWLHold
	saltRestore
	saltNRH
	saltResidual
	saltResidualBank
	saltTrial
	saltFlips
)

// Chip is one virtual DDR4 device (one module's worth of lock-stepped
// chips, since all chips in a rank see the same commands). It accepts
// DRAM command events with explicit timestamps and models their electrical
// consequences on row data.
//
// A Chip is deterministic: two chips constructed with the same design,
// geometry and seed respond identically to identical command sequences.
// It is not safe for concurrent use.
type Chip struct {
	design Design
	geom   Geometry
	seed   uint64

	// iso[i*S+j] reports whether subarrays i and j share no bitline or
	// sense amplifier; identical across banks (design-induced, §4.4.1).
	iso []bool

	banks []*bank

	// Ignored counts protocol-violating commands the chip dropped (e.g.
	// ACT to an already-open bank outside a HiRA sequence).
	Ignored int

	trial uint64 // increments per InitRow; decorrelates threshold noise
	// rowsPerREF is how many rows each bank restores per REF command.
	rowsPerREF int
}

// bank tracks the wordline/precharge state of one bank.
type bank struct {
	idx    int
	rows   map[int]*row
	open   []openEntry
	prePen bool
	preAt  dram.Time
	refPtr int
}

// openEntry is a row whose wordline is currently asserted.
type openEntry struct {
	r     *row
	rowID int
	actAt dram.Time
}

// row is the lazily materialized state of one DRAM row.
type row struct {
	id      int
	pattern byte
	flips   int     // number of corrupted bits; 0 means intact
	disturb float64 // accumulated RowHammer disturbance
	nrhEff  float64 // this trial's effective flip threshold

	// Per-row electrical characteristics, nanoseconds.
	saEnable, ioConnect, ioDisconnect, wlHold, restoreNeed float64
	nrh, residual                                          float64
}

// New constructs a chip. rowsPerREF rows per bank are restored by each
// Refresh call (pass 0 for the DDR4 default of 8).
func New(design Design, geom Geometry, seed uint64, rowsPerREF int) *Chip {
	if rowsPerREF <= 0 {
		rowsPerREF = 8
	}
	c := &Chip{design: design, geom: geom, seed: seed, rowsPerREF: rowsPerREF}
	c.buildIsolation()
	c.banks = make([]*bank, geom.Banks)
	for i := range c.banks {
		c.banks[i] = &bank{idx: i, rows: make(map[int]*row)}
	}
	return c
}

// Design returns the chip's design parameters.
func (c *Chip) Design() Design { return c.design }

// Geometry returns the chip's geometry.
func (c *Chip) Geometry() Geometry { return c.geom }

// buildIsolation constructs the symmetric subarray isolation graph. Each
// subarray k has a design coverage target c_k ~ N(CoverageMean,
// CoverageSigma); the pair (i, j) is isolated with probability
// (c_i+c_j)/2. Adjacent subarrays share a sense-amplifier stripe in the
// open-bitline layout and are never isolated; a subarray is never isolated
// from itself.
func (c *Chip) buildIsolation() {
	s := c.geom.SubarraysPerBank
	cov := make([]float64, s)
	for k := range cov {
		cov[k] = gaussClip(mix(c.seed, saltCoverage, uint64(k)),
			c.design.CoverageMean, c.design.CoverageSigma, 0, 0.95)
	}
	c.iso = make([]bool, s*s)
	for i := 0; i < s; i++ {
		for j := i + 2; j < s; j++ {
			p := (cov[i] + cov[j]) / 2
			if uniform(mix(c.seed, saltIsolation, uint64(i), uint64(j))) < p {
				c.iso[i*s+j] = true
				c.iso[j*s+i] = true
			}
		}
	}
}

// Isolated reports whether two subarrays are electrically isolated: a HiRA
// pairing across them leaves both rows intact.
func (c *Chip) Isolated(sa1, sa2 int) bool {
	return c.iso[sa1*c.geom.SubarraysPerBank+sa2]
}

// SubarrayOf returns the subarray containing the row.
func (c *Chip) SubarrayOf(rowID int) int { return rowID / c.geom.RowsPerSubarray }

// IsolatedSubarrays returns all subarrays isolated from sa, in order.
func (c *Chip) IsolatedSubarrays(sa int) []int {
	var out []int
	for j := 0; j < c.geom.SubarraysPerBank; j++ {
		if c.Isolated(sa, j) {
			out = append(out, j)
		}
	}
	return out
}

func (c *Chip) bankAt(i int) *bank {
	if i < 0 || i >= len(c.banks) {
		panic(fmt.Sprintf("chip: bank %d out of range", i))
	}
	return c.banks[i]
}

// materialize returns the row state, sampling its electrical parameters on
// first touch.
func (c *Chip) materialize(b *bank, rowID int) *row {
	if r, ok := b.rows[rowID]; ok {
		return r
	}
	d := c.design
	bk, rw := uint64(b.idx), uint64(rowID)
	r := &row{
		id:           rowID,
		saEnable:     gaussClip(mix(c.seed, saltSAEnable, bk, rw), d.SAEnableMean, d.SAEnableSigma, 0.7, 2.9),
		ioConnect:    gaussClip(mix(c.seed, saltIOConnect, bk, rw), d.IOConnectMean, d.IOConnectSigma, 4.0, 8.0),
		ioDisconnect: gaussClip(mix(c.seed, saltIODisconnect, bk, rw), d.IODisconnectMean, d.IODisconnectSigma, 0.4, 1.45),
		wlHold:       gaussClip(mix(c.seed, saltWLHold, bk, rw), d.WLHoldMean, d.WLHoldSigma, 6.1, 9.0),
		restoreNeed:  gaussClip(mix(c.seed, saltRestore, bk, rw), d.RestoreNeedMean, d.RestoreNeedSigma, 17, 31),
		nrh:          gaussClip(mix(c.seed, saltNRH, bk, rw), d.NRHMean, d.NRHSigma, 9600, 82000),
	}
	bankOff := d.ResidualBankSigma * gauss(mix(c.seed, saltResidualBank, bk))
	r.residual = gaussClip(mix(c.seed, saltResidual, bk, rw),
		d.ResidualMean+bankOff, d.ResidualSigma, -0.18, 0.8)
	r.nrhEff = r.nrh
	b.rows[rowID] = r
	return r
}

func (c *Chip) corrupt(b *bank, r *row) {
	if r.flips == 0 {
		r.flips = 1 + int(mix(c.seed, saltFlips, uint64(b.idx), uint64(r.id), c.trial)%64)
	}
}

// resolve applies any precharge whose interruption window has expired at
// time now, closing the bank's open rows.
func (c *Chip) resolve(b *bank, now dram.Time) {
	if !b.prePen {
		return
	}
	// The wordline-disable delay of the earliest-opened row bounds the
	// interruption window.
	hold := dram.MaxTime()
	for _, e := range b.open {
		h := dram.FromNanoseconds(e.r.wlHold)
		if h < hold {
			hold = h
		}
	}
	if now-b.preAt < hold {
		return // still interruptible
	}
	for _, e := range b.open {
		c.closeRow(b, e, b.preAt, b.preAt+dram.FromNanoseconds(e.r.wlHold))
	}
	b.open = b.open[:0]
	b.prePen = false
}

// closeRow disables a row's wordline and applies the charge consequences.
// preAt is when the closing precharge was issued (the sense amplifiers
// must have been enabled by then: the paper's lower bound on t1); wlOffAt
// is when the wordline actually turns off, which bounds how much
// restoration the row received.
func (c *Chip) closeRow(b *bank, e openEntry, preAt, wlOffAt dram.Time) {
	switch {
	case (preAt - e.actAt).Nanoseconds() < e.r.saEnable:
		// The cell shared charge with the bitline but the precharge hit
		// before the sense amps could restore it: data destroyed.
		c.corrupt(b, e.r)
	case (wlOffAt - e.actAt).Nanoseconds() >= e.r.restoreNeed:
		// Full restoration doubles as a refresh: accumulated disturbance
		// collapses to the per-row residual.
		e.r.disturb *= e.r.residual
		if e.r.disturb < 0 {
			e.r.disturb = 0
		}
	default:
		// Sense amps latched the value but write-back was cut short: data
		// survives, disturbance is not reset.
	}
}

// hammer applies one activation's disturbance to the row's in-subarray
// neighbours (rows across a subarray boundary are separated by a
// sense-amplifier stripe and are not disturbed).
func (c *Chip) hammer(b *bank, rowID int) {
	sa := c.SubarrayOf(rowID)
	for _, n := range [2]int{rowID - 1, rowID + 1} {
		if n < 0 || n >= c.geom.RowsPerBank() || c.SubarrayOf(n) != sa {
			continue
		}
		v := c.materialize(b, n)
		if c.isOpen(b, n) {
			continue // an asserted wordline pins the cells; no disturbance
		}
		v.disturb++
		if v.disturb >= v.nrhEff {
			c.corrupt(b, v)
		}
	}
}

func (c *Chip) isOpen(b *bank, rowID int) bool {
	for _, e := range b.open {
		if e.rowID == rowID {
			return true
		}
	}
	return false
}

// Activate processes an ACT command at time now.
func (c *Chip) Activate(bankIdx, rowID int, now dram.Time) {
	b := c.bankAt(bankIdx)
	c.resolve(b, now)

	if b.prePen {
		// The precharge is still interruptible: this is the second ACT of
		// a HiRA sequence.
		c.activateHiRASecond(b, rowID, now)
		return
	}
	if len(b.open) > 0 {
		// ACT to an open bank outside a HiRA window: the chip drops it.
		c.Ignored++
		return
	}
	r := c.materialize(b, rowID)
	b.open = append(b.open, openEntry{r: r, rowID: rowID, actAt: now})
	c.hammer(b, rowID)
}

// activateHiRASecond implements the electrical outcome of interrupting a
// pending precharge with a new activation (§3's walk-through).
func (c *Chip) activateHiRASecond(b *bank, rowID int, now dram.Time) {
	first := b.open[0]
	t2ns := (now - b.preAt).Nanoseconds()

	t1ns := (b.preAt - first.actAt).Nanoseconds()
	second := c.materialize(b, rowID)

	if t1ns < first.r.saEnable {
		// Sense amps were not yet enabled when the precharge hit: the
		// first row's charge is lost.
		c.corrupt(b, first.r)
	}
	if t1ns > first.r.ioConnect {
		// The first row's buffer had already connected to the bank I/O;
		// the precharge could not be hidden and the sequence glitches the
		// first row.
		c.corrupt(b, first.r)
	}
	if t2ns < first.r.ioDisconnect {
		// The first row's buffer is still driving the bank I/O when the
		// second row activates: both rows see contention.
		c.corrupt(b, first.r)
		c.corrupt(b, second)
	}
	if !c.Isolated(c.SubarrayOf(first.rowID), c.SubarrayOf(rowID)) {
		// Shared bitlines/sense amps: charge sharing corrupts both rows.
		c.corrupt(b, first.r)
		c.corrupt(b, second)
	}

	// The first row's wordline stays asserted (restoration continues);
	// the second row opens alongside it.
	b.prePen = false
	b.open = append(b.open, openEntry{r: second, rowID: rowID, actAt: now})
	c.hammer(b, rowID)
}

// nonHiRAPREGuardNS: designs that do not support HiRA drop a precharge
// whose distance from the activation grossly violates tRAS (§12's
// hypothesis for Micron- and Samsung-manufactured chips). Precharges this
// many nanoseconds or more after the ACT are always honoured.
const nonHiRAPREGuardNS = 15

// Precharge processes a PRE command at time now.
func (c *Chip) Precharge(bankIdx int, now dram.Time) {
	b := c.bankAt(bankIdx)
	c.resolve(b, now)
	if len(b.open) == 0 {
		return // precharging a precharged bank is a no-op
	}
	if !c.design.SupportsHiRA {
		for _, e := range b.open {
			if (now - e.actAt).Nanoseconds() < nonHiRAPREGuardNS {
				// The chip acts as if it never received the command.
				c.Ignored++
				return
			}
		}
	}
	if b.prePen {
		// A second PRE while one is pending: close everything now.
		for _, e := range b.open {
			c.closeRow(b, e, b.preAt, now)
		}
		b.open = b.open[:0]
		b.prePen = false
		return
	}
	b.prePen = true
	b.preAt = now
}

// PrechargeAll precharges every bank (PREA).
func (c *Chip) PrechargeAll(now dram.Time) {
	for i := range c.banks {
		c.Precharge(i, now)
	}
}

// Refresh processes an all-bank REF at time now: each bank's next
// rowsPerREF rows are fully restored via the internal refresh counter.
func (c *Chip) Refresh(now dram.Time) {
	for _, b := range c.banks {
		c.resolve(b, now)
		for i := 0; i < c.rowsPerREF; i++ {
			if r, ok := b.rows[b.refPtr]; ok {
				r.disturb *= r.residual
				if r.disturb < 0 {
					r.disturb = 0
				}
			}
			b.refPtr++
			if b.refPtr == c.geom.RowsPerBank() {
				b.refPtr = 0
			}
		}
	}
}

// InitRow is the test equipment's direct write: it stores the pattern,
// clears corruption and disturbance, and rolls this trial's effective
// RowHammer threshold (a ±2% measurement noise around the row's intrinsic
// threshold, as real repeated measurements show).
func (c *Chip) InitRow(bankIdx, rowID int, pattern byte) {
	b := c.bankAt(bankIdx)
	r := c.materialize(b, rowID)
	r.pattern = pattern
	r.flips = 0
	r.disturb = 0
	c.trial++
	r.nrhEff = r.nrh * (1 + 0.02*gauss(mix(c.seed, saltTrial, c.trial)))
}

// CompareRow reads back a row and returns the number of bits that differ
// from the expected pattern. The bank must be precharged (or the pending
// precharge expired) for a faithful read; callers go through a normal
// ACT/RD/PRE via the softmc layer, which calls this after closing.
func (c *Chip) CompareRow(bankIdx, rowID int, pattern byte) int {
	b := c.bankAt(bankIdx)
	c.resolve(b, dram.MaxTime()/2)
	r := c.materialize(b, rowID)
	flips := r.flips
	if r.pattern != pattern {
		// Whole-row pattern mismatch: every byte differs; report a
		// row-sized flip count.
		flips += 8 * c.geom.RowsPerSubarray // arbitrary large count
	}
	return flips
}

// RowIntrinsics exposes a row's sampled characteristics for tests and
// reporting (it does not disturb state beyond materializing the row).
type RowIntrinsics struct {
	SAEnableNS, IOConnectNS, IODisconnectNS, WLHoldNS, RestoreNeedNS float64
	NRH, Residual                                                    float64
}

// Intrinsics returns the electrical characteristics of a row.
func (c *Chip) Intrinsics(bankIdx, rowID int) RowIntrinsics {
	r := c.materialize(c.bankAt(bankIdx), rowID)
	return RowIntrinsics{
		SAEnableNS:     r.saEnable,
		IOConnectNS:    r.ioConnect,
		IODisconnectNS: r.ioDisconnect,
		WLHoldNS:       r.wlHold,
		RestoreNeedNS:  r.restoreNeed,
		NRH:            r.nrh,
		Residual:       r.residual,
	}
}
