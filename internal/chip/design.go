// Package chip implements a circuit-behavioural model of a DDR4 DRAM chip,
// the substitute for the real off-the-shelf chips the HiRA paper
// characterizes with a SoftMC FPGA platform (§4).
//
// The model is deliberately pitched at the level the paper's experiments
// observe: it does not simulate analog voltages, but it implements the
// electrical *preconditions* the paper identifies for a HiRA operation to
// succeed, each with design- and process-induced variation:
//
//   - the sense amplifiers of a row must be enabled before the interrupting
//     precharge arrives (lower bound on t1);
//   - the precharge must arrive before the row's local row buffer is
//     connected to the bank I/O (upper bound on t1);
//   - the second activation must interrupt the precharge before the first
//     row's wordline is disabled (upper bound on t2);
//   - the first row's buffer must have disconnected from the bank I/O
//     (lower bound on t2); and
//   - the two rows must lie in electrically isolated subarrays — subarrays
//     that share no bitline or sense amplifier (the paper's Fig. 1
//     open-bitline structure), captured here as a design-level isolation
//     graph that is identical across banks (the paper's §4.4.1 finding).
//
// Charge behaviour: a row closed before its restoration completes loses
// data; an activation that stays open long enough fully restores the row
// and resets most of its accumulated RowHammer disturbance (with a small
// per-row residual, which is what makes the measured RowHammer threshold
// under HiRA ~1.9x rather than exactly 2x, matching §4.3).
//
// Everything is deterministic given (Design, seed): the same virtual
// module always produces the same coverage and RowHammer results.
package chip

// Design captures the manufacturer- and die-specific electrical
// characteristics of a DRAM chip family. All time-valued fields are in
// nanoseconds (they parameterize distributions, not the simulation clock).
type Design struct {
	// Name identifies the design, e.g. "SK Hynix F-die".
	Name string

	// SupportsHiRA is false for designs that ignore or mis-handle the
	// grossly timing-violating HiRA sequence. The paper observed no
	// successful HiRA operation on 40 Micron and 40 Samsung chips (§12)
	// and hypothesizes those chips do not keep the first row's wordline
	// asserted across the interrupted precharge; the model realizes that
	// hypothesis by treating the early precharge as a real precharge,
	// which cuts the first row's restoration short and corrupts it.
	SupportsHiRA bool

	// CoverageMean/CoverageSigma parameterize the per-subarray isolation
	// probability: the fraction of other subarrays in the bank that are
	// electrically isolated from a given subarray. Table 4 measures this
	// "HiRA coverage" at 25-38% for working modules.
	CoverageMean, CoverageSigma float64

	// SAEnable{Mean,Sigma} is the time after ACT at which a row's sense
	// amplifiers are reliably enabled: the lower bound on t1.
	SAEnableMean, SAEnableSigma float64
	// IOConnect{Mean,Sigma} is the time after ACT at which the local row
	// buffer connects to the bank I/O; a precharge arriving later can no
	// longer be hidden: the upper bound on t1.
	IOConnectMean, IOConnectSigma float64
	// IODisconnect{Mean,Sigma} is the time after PRE at which the local
	// row buffer disconnects from the bank I/O: the lower bound on t2.
	IODisconnectMean, IODisconnectSigma float64
	// WLHold{Mean,Sigma} is the time after PRE at which the open row's
	// wordline is disabled if the precharge is not interrupted: the upper
	// bound on t2.
	WLHoldMean, WLHoldSigma float64

	// RestoreNeed{Mean,Sigma} is the wordline-on duration required to
	// fully restore a row's charge (comfortably below tRAS = 32 ns).
	RestoreNeedMean, RestoreNeedSigma float64

	// NRH{Mean,Sigma} parameterize the per-row RowHammer threshold
	// distribution (Fig. 5a: 10K-80K, mean 27.2K).
	NRHMean, NRHSigma float64

	// Residual{Mean,Sigma} is the fraction of accumulated RowHammer
	// disturbance that survives a full charge restoration of the victim
	// row. The measured "normalized NRH" under mid-hammer refresh is
	// 2/(1+residual) (§4.3: average 1.9x, range ~1.1-2.6x).
	ResidualMean, ResidualSigma float64
	// ResidualBankSigma adds a per-bank offset to the residual, producing
	// Fig. 6's 1.80-1.97x spread of bank-average normalized NRH.
	ResidualBankSigma float64
}

// SKHynixLike returns the baseline design for the chips on which the paper
// demonstrates HiRA, with the given average HiRA coverage (Table 4 ranges
// from 25.0% on the B-die modules to 38.4% on F-die ones).
func SKHynixLike(name string, coverageMean float64) Design {
	return Design{
		Name:              name,
		SupportsHiRA:      true,
		CoverageMean:      coverageMean,
		CoverageSigma:     0.030,
		SAEnableMean:      1.6,
		SAEnableSigma:     0.40,
		IOConnectMean:     5.8,
		IOConnectSigma:    0.45,
		IODisconnectMean:  1.15,
		IODisconnectSigma: 0.30,
		WLHoldMean:        6.8,
		WLHoldSigma:       0.50,
		RestoreNeedMean:   24,
		RestoreNeedSigma:  2.5,
		NRHMean:           27200,
		NRHSigma:          13000,
		ResidualMean:      0.052,
		ResidualSigma:     0.075,
		ResidualBankSigma: 0.015,
	}
}

// NonHiRALike returns a design standing in for the Micron/Samsung chips on
// which the paper observed no successful HiRA operation (§12).
func NonHiRALike(name string) Design {
	d := SKHynixLike(name, 0)
	d.SupportsHiRA = false
	return d
}

// Geometry describes the portion of chip structure the model needs.
type Geometry struct {
	Banks            int
	SubarraysPerBank int
	RowsPerSubarray  int
}

// DefaultGeometry matches the paper's simulated bank structure: 16 banks,
// 128 subarrays of 512 rows (64 K rows per bank).
func DefaultGeometry() Geometry {
	return Geometry{Banks: 16, SubarraysPerBank: 128, RowsPerSubarray: 512}
}

// RowsPerBank returns the number of rows in each bank.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }
