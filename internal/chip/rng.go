package chip

import "math"

// The chip model needs deterministic, seedable randomness that can be
// addressed by coordinates (module seed, bank, row, quantity) rather than
// drawn from a stream: the same (seed, bank, row) must always yield the
// same electrical characteristics, independent of the order in which rows
// are touched. A small hash-based PRNG gives exactly that without any
// dependency beyond math.

// splitmix64 is the SplitMix64 finalizer; a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix hashes an arbitrary list of 64-bit coordinates into one value.
func mix(vs ...uint64) uint64 {
	h := uint64(0x8b72e2a3c0f8fb4d)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// uniform maps a hash to (0,1), excluding the endpoints.
func uniform(h uint64) float64 {
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// gauss returns a standard normal variate derived deterministically from
// two coordinates via the Box-Muller transform.
func gauss(h uint64) float64 {
	u1 := uniform(splitmix64(h ^ 0xa5a5a5a5a5a5a5a5))
	u2 := uniform(splitmix64(h ^ 0x5a5a5a5a5a5a5a5a))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gaussClip returns mean + sigma·N(0,1) clipped to [lo, hi].
func gaussClip(h uint64, mean, sigma, lo, hi float64) float64 {
	v := mean + sigma*gauss(h)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
