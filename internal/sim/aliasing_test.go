package sim

// Cache-aliasing regression suite: the engine's content-addressed store
// must never serve one workload's cells for another. Two workloads
// differing in any single profile field — or in a single trace access —
// must produce distinct cell keys and simulate separately even on a
// shared engine with a warm store.

import (
	"context"
	"testing"

	"hira/internal/workload"
)

// oneCoreMix wraps a single source as a one-core mix.
func oneCoreMix(src workload.Source) workload.SourceMix {
	return workload.SourceMix{ID: 0, Sources: []workload.Source{src}}
}

func TestCellKeyDistinguishesProfileFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 1
	base := workload.Profile{Name: "w", MPKI: 10, RowLocality: 0.5, FootprintMB: 64, WriteFrac: 0.25}
	baseKey := simCellKey(cfg, oneCoreMix(base), 100, 200)

	variants := map[string]workload.Profile{}
	v := base
	v.Name = "w2"
	variants["name"] = v
	v = base
	v.MPKI = 10.01
	variants["mpki"] = v
	v = base
	v.RowLocality = 0.501
	variants["row locality"] = v
	v = base
	v.FootprintMB = 65
	variants["footprint"] = v
	v = base
	v.WriteFrac = 0.251
	variants["write fraction"] = v

	for field, p := range variants {
		if key := simCellKey(cfg, oneCoreMix(p), 100, 200); key == baseKey {
			t.Errorf("changing only the %s field kept cell key %q", field, key)
		}
		if key := aloneCellKey(p, 1, 200); key == aloneCellKey(base, 1, 200) {
			t.Errorf("changing only the %s field kept the alone cell key %q", field, key)
		}
	}
}

func TestCellKeyDistinguishesTraceContent(t *testing.T) {
	p, _ := workload.ProfileByName("mcf")
	tr, err := workload.Record("t", p, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	mod := append([]workload.Access(nil), tr.Accesses()...)
	mod[100].Write = !mod[100].Write
	tr2, err := workload.NewTrace("t", mod)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Cores = 1
	k1 := simCellKey(cfg, oneCoreMix(tr), 100, 200)
	k2 := simCellKey(cfg, oneCoreMix(tr2), 100, 200)
	if k1 == k2 {
		t.Fatalf("one-access trace change kept cell key %q", k1)
	}
	// A trace must also never alias a profile, and the key must be
	// digest-based so a renamed copy of the same bytes shares cells.
	if k1 == simCellKey(cfg, oneCoreMix(p), 100, 200) {
		t.Error("trace workload aliases the profile it was recorded from")
	}
	renamed, err := workload.NewTrace("other", tr.Accesses())
	if err != nil {
		t.Fatal(err)
	}
	if simCellKey(cfg, oneCoreMix(renamed), 100, 200) != k1 {
		t.Error("renaming a trace changed its cell key")
	}
}

// TestTraceAloneCellSharedAcrossCores: the converse guarantee — a
// seed-invariant trace dealt to several cores must share ONE alone-IPC
// reference cell (its stream ignores the per-core seed), while profile
// sources keep per-core seeds and separate cells.
func TestTraceAloneCellSharedAcrossCores(t *testing.T) {
	p, _ := workload.ProfileByName("mcf")
	tr, err := workload.Record("t", p, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if aloneRefSeed(tr, 1, 0) != aloneRefSeed(tr, 1, 3) {
		t.Error("trace alone cells keyed per core despite seed-invariant stream")
	}
	if aloneRefSeed(p, 1, 0) == aloneRefSeed(p, 1, 3) {
		t.Error("profile alone cells lost their per-core seeds")
	}

	// Behavioral check: one mix of the same trace on two cores resolves
	// exactly two cells — one shared alone reference plus the sim cell.
	var stats EngineStats
	cfg := DefaultConfig()
	cfg.Cores = 2
	opts := Options{
		Cores: 2, Warmup: 500, Measure: 1500, Seed: 1,
		Mixes: []workload.SourceMix{{ID: 0, Sources: []workload.Source{tr, tr}}},
		Stats: &stats,
	}
	if _, err := RunPolicies(context.Background(), cfg, []RefreshPolicy{BaselinePolicy()}, opts); err != nil {
		t.Fatal(err)
	}
	if stats.Simulated != 2 {
		t.Errorf("same-trace two-core mix simulated %d cells, want 2 (shared alone + sim): %+v", stats.Simulated, stats)
	}
}

// TestNearIdenticalWorkloadsNeverShareCells runs two single-field-apart
// workloads through one shared engine with a warm store and asserts the
// second run simulates its own cells (no cache/store hits), while an
// exact resubmission is served entirely without simulation.
func TestNearIdenticalWorkloadsNeverShareCells(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(EngineConfig{Parallelism: 2, ResultDir: t.TempDir()})
	base := workload.Profile{Name: "w", MPKI: 20, RowLocality: 0.5, FootprintMB: 8, WriteFrac: 0.25}
	tweaked := base
	tweaked.MPKI = 20.5

	run := func(p workload.Profile) EngineStats {
		var stats EngineStats
		opts := Options{
			Cores: 1, Warmup: 500, Measure: 1500, Seed: 1,
			Mixes: []workload.SourceMix{oneCoreMix(p)},
			Stats: &stats,
		}
		if _, err := eng.RunPolicies(ctx, DefaultConfig(), []RefreshPolicy{BaselinePolicy()}, opts); err != nil {
			t.Fatal(err)
		}
		return stats
	}

	first := run(base)
	if first.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	second := run(tweaked)
	if second.Simulated != second.Submitted || second.CacheHits+second.StoreHits != 0 {
		t.Fatalf("near-identical workload shared cells with the original: %+v", second)
	}
	resubmit := run(base)
	if resubmit.Simulated != 0 {
		t.Fatalf("exact resubmission re-simulated %d cells: %+v", resubmit.Simulated, resubmit)
	}
}
