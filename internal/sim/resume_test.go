package sim

import (
	"context"
	"reflect"
	"testing"

	"hira/internal/workload"
)

// TestResumableCells proves the engine-level guarantee: on a warm
// checkpoint store, extending a sweep's horizons simulates only the
// delta — the engine reports the cells as partially resumed — and the
// results are bit-identical to a cold straight-through run.
func TestResumableCells(t *testing.T) {
	ctx := context.Background()
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := []RefreshPolicy{BaselinePolicy(), HiRAPeriodicPolicy(2)}
	short := Options{Workloads: 2, Cores: 4, Warmup: 2000, Measure: 4000, Seed: 1}
	long := short
	long.Measure = 10000

	const interval = 1500
	warm := NewEngine(EngineConfig{SnapInterval: interval})

	// Populate the store with the short run's checkpoints.
	if _, err := warm.RunPolicies(ctx, base, policies, short); err != nil {
		t.Fatal(err)
	}
	snapStats, ok := warm.SnapshotStats()
	if !ok || snapStats.Saves == 0 {
		t.Fatalf("no checkpoints written: %+v", snapStats)
	}

	// Cold reference for the long run (checkpointing on, nothing stored):
	// results must not depend on resume at all.
	coldScores, err := NewEngine(EngineConfig{SnapInterval: interval}).
		RunPolicies(ctx, base, policies, long)
	if err != nil {
		t.Fatal(err)
	}

	var stats EngineStats
	longOpts := long
	longOpts.Stats = &stats
	warmScores, err := warm.RunPolicies(ctx, base, policies, longOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmScores, coldScores) {
		t.Fatalf("resumed scores diverged from cold run:\nwarm: %+v\ncold: %+v", warmScores, coldScores)
	}

	// Every simulated cell — full-system and alone-IPC reference alike —
	// must have resumed from the short run's checkpoints rather than
	// simulated from tick zero.
	if stats.Simulated == 0 || stats.Resumed != stats.Simulated {
		t.Fatalf("Resumed = %d of %d simulated, want all; stats %+v", stats.Resumed, stats.Simulated, stats)
	}
	// Sim cells resume from the short run's final tick, alone cells from
	// its measured horizon, so the extension simulates exactly the
	// horizon delta.
	simCells := uint64(len(policies) * short.Workloads)
	aloneCells := stats.Resumed - simCells
	wantTicks := simCells*uint64(short.Warmup+short.Measure) + aloneCells*uint64(short.Measure)
	if stats.ResumedTicks != wantTicks {
		t.Fatalf("ResumedTicks = %d, want %d (%d sim + %d alone cells)",
			stats.ResumedTicks, wantTicks, simCells, aloneCells)
	}

	// Resubmitting the exact long run is a pure cache hit — resume never
	// degrades exact-match caching.
	var again EngineStats
	againOpts := long
	againOpts.Stats = &again
	if _, err := warm.RunPolicies(ctx, base, policies, againOpts); err != nil {
		t.Fatal(err)
	}
	if again.Simulated != 0 {
		t.Fatalf("warm resubmission simulated %d cells", again.Simulated)
	}
}

// TestResumableCellsSplitIndependence covers the warmup-boundary logic:
// a trajectory checkpointed by one warmup/measure split serves a run
// with a different split of the same trajectory, because measured
// results are differences of cumulative state and the runner checkpoints
// the warmup boundary it needs.
func TestResumableCellsSplitIndependence(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 4, 1)[0].Sources()

	const interval = 1000
	warm := NewEngine(EngineConfig{SnapInterval: interval})

	// First run fixes the trajectory's checkpoints, including tick 6000.
	if _, err := runSimCell(ctx, warm.snaps, interval, cfg, mix, 2000, 4000); err != nil {
		t.Fatal(err)
	}
	// A different split whose warmup (3000) sits on the checkpoint grid:
	// the runner restores tick 3000 for the mark and tick 6000 for the
	// state, simulating only 6000..7000.
	got, err := runSimCell(ctx, warm.snaps, interval, cfg, mix, 3000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := runSimCell(ctx, nil, 0, cfg, mix, 3000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cold) {
		t.Fatalf("split-resumed result diverged from cold:\nwarm: %+v\ncold: %+v", got, cold)
	}
}
