package sim

// Attack-sweep suite: the attack×mitigation grid must (a) demonstrate a
// successful attack in the forensics ledger when nothing defends, (b)
// show the zoo engines preventing it, (c) never alias mitigation cells
// with unmitigated ones in the content-addressed store, and (d) refuse
// to checkpoint systems whose refresh engine carries transient tracker
// state.

import (
	"context"
	"strings"
	"testing"

	"hira/internal/workload"
)

// TestAttackSweepEfficacy is the PR's headline acceptance check, at the
// sim layer: a double-sided hammer against the no-defense Baseline
// drives some victim's exposure past NRH (a successful attack, visible
// in the ledger), while Graphene holds every victim below it — and both
// verdicts come from the same sweep row the service and CLIs report.
func TestAttackSweepEfficacy(t *testing.T) {
	const nrh = 64
	rows, err := AttackSweep(context.Background(),
		Options{Cores: 2, Seed: 7}, []string{"double"}, []int{nrh})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	row := rows[0]
	if row.Attack != "double" || row.NRH != nrh {
		t.Fatalf("row is (%s, %d), want (double, %d)", row.Attack, row.NRH, nrh)
	}
	for _, name := range []string{"Baseline", "PARA", "Graphene", "RFM"} {
		if _, ok := row.WS[name]; !ok {
			t.Errorf("no weighted speedup for %s", name)
		}
		if row.Forensics[name] == nil {
			t.Errorf("no forensics summary for %s (attack cells must run the ledger)", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if n := row.NormBaseline["Baseline"]; n != 1 {
		t.Errorf("Baseline normalized to itself is %v, want 1", n)
	}

	// Thresholds derive from the row's NRH: [NRH/2, NRH], so index 1 of
	// VictimCrossings counts full NRH crossings.
	base := row.Forensics["Baseline"]
	if base.MaxVictimExposure <= nrh {
		t.Errorf("unmitigated double-sided attack peaked at exposure %d, want > NRH %d",
			base.MaxVictimExposure, nrh)
	}
	if base.Tally.VictimCrossings[1] == 0 {
		t.Error("unmitigated attack registered no NRH victim crossings in the ledger")
	}

	g := row.Forensics["Graphene"]
	if g.MaxVictimExposure >= nrh {
		t.Errorf("Graphene let a victim reach exposure %d, want < NRH %d",
			g.MaxVictimExposure, nrh)
	}
	if g.Tally.VictimCrossings[1] != 0 {
		t.Errorf("Graphene cell registered %d NRH victim crossings, want 0",
			g.Tally.VictimCrossings[1])
	}
}

// TestMitigationCellKeyAliasing: mitigation cells must be distinct
// store entries — from unmitigated cells, from each other, and across
// their own tuning parameters.
func TestMitigationCellKeyAliasing(t *testing.T) {
	p, _ := workload.ProfileByName("mcf")
	mix := oneCoreMix(p)
	key := func(pol RefreshPolicy) (cell, traj string) {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Policy = pol
		return simCellKey(cfg, mix, 100, 200), trajectoryKey(cfg, mix)
	}

	baseCell, baseTraj := key(BaselinePolicy())
	if strings.Contains(baseCell, "mit=") || strings.Contains(baseTraj, "mit=") {
		t.Fatal("unmitigated keys grew a mit= field; pre-mitigation cells would be invalidated")
	}

	variants := map[string]RefreshPolicy{
		"graphene":          GraphenePolicy(64, 16),
		"graphene-counters": GraphenePolicy(64, 32),
		"rfm":               RFMPolicy(64, 8),
		"rfm-raaimt":        RFMPolicy(64, 16),
	}
	cells := map[string]string{"baseline": baseCell}
	trajs := map[string]string{"baseline": baseTraj}
	for name, pol := range variants {
		cell, traj := key(pol)
		for other, k := range cells {
			if k == cell {
				t.Errorf("%s aliases %s's sim cell key %q", name, other, k)
			}
		}
		for other, k := range trajs {
			if k == traj {
				t.Errorf("%s aliases %s's trajectory key %q", name, other, k)
			}
		}
		cells[name], trajs[name] = cell, traj
	}
}

// TestMitigationCellsDoNotCheckpoint: the zoo engines' tracker state is
// deliberately transient, so systems running them must refuse Snapshot
// with a clear error instead of writing a checkpoint that restores to a
// defenseless tracker.
func TestMitigationCellsDoNotCheckpoint(t *testing.T) {
	p, _ := workload.ProfileByName("mcf")
	for _, pol := range []RefreshPolicy{GraphenePolicy(64, 8), RFMPolicy(64, 8)} {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.Policy = pol
		s, err := NewSystem(cfg, oneCoreMix(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); err == nil {
			t.Errorf("%s system snapshotted; want a not-checkpointable error", pol.Name)
		} else if !strings.Contains(err.Error(), "not checkpointable") {
			t.Errorf("%s snapshot error %q does not name the capability", pol.Name, err)
		}
	}
}
