package sim

import (
	"bytes"
	"context"
	"testing"

	"hira/internal/dram"
	"hira/internal/workload"
)

// TestResumeEquivalence proves the Snapshot/Restore tentpole guarantee:
// snapshotting a system at an arbitrary tick, restoring it, and running
// on is bit-identical to the straight-through run — same command stream,
// same cumulative stats, same measured-phase result — across all six
// figure policy shapes (ideal, conventional REF, periodic HiRA at two
// slacks, PARA, and PARA+HiRA), with snapshot points both inside the
// warmup and inside the measured phase.
func TestResumeEquivalence(t *testing.T) {
	policies := []RefreshPolicy{
		NoRefreshPolicy(),
		BaselinePolicy(),
		HiRAPeriodicPolicy(2),
		HiRAPeriodicPolicy(8),
		PARAPolicy(256),
		PARAHiRAPolicy(256, 4),
	}
	warmup, measure := 3000, 9000
	if testing.Short() {
		warmup, measure = 1000, 4000
	}
	mix := workload.Mixes(1, 4, 5)[0].Sources()
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Cores = 4
			cfg.ChipCapacityGbit = 32
			cfg.Policy = pol
			cfg.Seed = 5

			// Straight-through reference.
			ref, err := NewSystem(cfg, mix)
			if err != nil {
				t.Fatal(err)
			}
			var refCmds []dram.Command
			ref.Controller().CommandHook = func(c dram.Command) { refCmds = append(refCmds, c) }
			refRes := ref.Run(warmup, measure, nil)

			for _, snapAt := range []int{warmup * 2 / 3, warmup + measure/2} {
				snapAt := snapAt
				// Prefix run to the snapshot point, replicating the
				// phase bookkeeping Run would have done so far.
				pre, err := NewSystem(cfg, mix)
				if err != nil {
					t.Fatal(err)
				}
				var cmds []dram.Command
				hook := func(c dram.Command) { cmds = append(cmds, c) }
				pre.Controller().CommandHook = hook
				ctx := context.Background()
				var mark runMark
				if snapAt >= warmup {
					if err := pre.RunTo(ctx, warmup); err != nil {
						t.Fatal(err)
					}
					mark = pre.mark()
				}
				if err := pre.RunTo(ctx, snapAt); err != nil {
					t.Fatal(err)
				}
				data, err := pre.Snapshot()
				if err != nil {
					t.Fatal(err)
				}

				// Restore and finish the run on the restored machine.
				res, err := RestoreSystem(cfg, mix, data)
				if err != nil {
					t.Fatalf("restore at %d: %v", snapAt, err)
				}
				if res.Ticks() != snapAt {
					t.Fatalf("restored at tick %d, want %d", res.Ticks(), snapAt)
				}
				res.Controller().CommandHook = hook
				if snapAt < warmup {
					if err := res.RunTo(ctx, warmup); err != nil {
						t.Fatal(err)
					}
					mark = res.mark()
				}
				if err := res.RunTo(ctx, warmup+measure); err != nil {
					t.Fatal(err)
				}
				got := res.resultSince(mark, measure)

				if len(cmds) != len(refCmds) {
					t.Fatalf("snap@%d: command counts diverged: resumed %d ref %d",
						snapAt, len(cmds), len(refCmds))
				}
				for i := range refCmds {
					if cmds[i] != refCmds[i] {
						t.Fatalf("snap@%d: command %d diverged:\nresumed: %+v\nref:     %+v",
							snapAt, i, cmds[i], refCmds[i])
					}
				}
				if got.Sched != refRes.Sched {
					t.Fatalf("snap@%d: stats diverged:\nresumed: %+v\nref:     %+v",
						snapAt, got.Sched, refRes.Sched)
				}
				for i := range refRes.IPC {
					if got.IPC[i] != refRes.IPC[i] {
						t.Fatalf("snap@%d: core %d IPC diverged: resumed %v ref %v",
							snapAt, i, got.IPC[i], refRes.IPC[i])
					}
				}
				if got.LLCHitRate != refRes.LLCHitRate {
					t.Fatalf("snap@%d: LLC hit rate diverged: resumed %v ref %v",
						snapAt, got.LLCHitRate, refRes.LLCHitRate)
				}
				if res.Controller().Now() != ref.Controller().Now() {
					t.Fatalf("snap@%d: clocks diverged", snapAt)
				}
			}
		})
	}
}

// TestSnapshotDeterministic proves a snapshot is a pure function of the
// machine state: snapshotting twice (and snapshotting a restored system)
// yields identical bytes, which the content-addressed store relies on.
func TestSnapshotDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 8
	cfg.Policy = PARAHiRAPolicy(512, 2)
	mix := workload.Mixes(1, 2, 1)[0].Sources()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(context.Background(), 2500); err != nil {
		t.Fatal(err)
	}
	a, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-snapshotting the same state produced different bytes")
	}
	restored, err := RestoreSystem(cfg, mix, a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("snapshot of a restored system diverged from the original")
	}
}

// TestRestoreRejectsMismatch covers the clean-miss contract for
// well-formed-but-wrong inputs: a snapshot restores only into the
// trajectory it was taken from.
func TestRestoreRejectsMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 8
	mix := workload.Mixes(1, 2, 1)[0].Sources()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	data, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	if _, err := RestoreSystem(other, mix, data); err == nil {
		t.Fatal("snapshot restored into a different trajectory")
	}
	if _, err := RestoreSystem(cfg, mix, data[:len(data)-3]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	if _, err := RestoreSystem(cfg, mix, []byte("not a snapshot")); err == nil {
		t.Fatal("garbage restored")
	}
}

// fuzzSnapshotConfig is the small fixed system FuzzSnapshotDecode decodes
// into (the config is trusted; only the snapshot bytes are hostile).
func fuzzSnapshotConfig() (Config, workload.SourceMix) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 2
	cfg.Policy = PARAHiRAPolicy(512, 2)
	cfg.Seed = 3
	return cfg, workload.Mixes(1, 2, 3)[0].Sources()
}

// FuzzSnapshotDecode holds RestoreSystem to the FuzzTraceRead contract:
// corrupt or truncated checkpoints are clean misses — they never panic,
// allocation stays bounded by the input, and anything that does decode
// yields a machine that survives being run.
func FuzzSnapshotDecode(f *testing.F) {
	cfg, mix := fuzzSnapshotConfig()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		f.Fatal(err)
	}
	if err := sys.RunTo(context.Background(), 600); err != nil {
		f.Fatal(err)
	}
	seed, err := sys.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("HIRASYS1\x00\x00\x00\x00"))
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := RestoreSystem(cfg, mix, data)
		if err != nil {
			return // clean miss
		}
		// A snapshot that passed validation must be safe to simulate.
		for i := 0; i < 64; i++ {
			restored.Tick()
		}
	})
}
