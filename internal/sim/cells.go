package sim

import (
	"context"
	"fmt"
	"strings"

	"hira/internal/engine"
	"hira/internal/sched"
	"hira/internal/workload"
)

// EngineStats tallies how the experiment engine resolved a sweep's cells
// (simulated vs served from cache or the result store). See Options.Stats.
type EngineStats = engine.Stats

// CellResult is the JSON-serializable payload of one engine cell: the
// measured-phase outputs of a full system simulation, or (for reference
// cells) an alone-IPC value. WeightedSpeedup is deliberately absent — it
// depends on other cells' alone references and is recomputed when sweeps
// assemble scores, so a cell's identity covers exactly its own inputs.
type CellResult struct {
	IPC        []float64   `json:"ipc,omitempty"`
	Sched      sched.Stats `json:"sched"`
	LLCHitRate float64     `json:"llc_hit_rate,omitempty"`
	Ticks      int         `json:"ticks,omitempty"`
	Alone      float64     `json:"alone,omitempty"`
}

// experimentEngine is the engine instantiation every sweep runs on.
type experimentEngine = engine.Engine[CellResult]

// simCellKey names a full-system simulation cell. It encodes every input
// NewSystem and Run consume: system shape, refresh policy behavior
// (mode fields, not the display name, so identically configured policies
// share a cell), per-core workload identities (a profile's full
// parameter set or a trace's content digest — see workload.Source.Key,
// which guarantees distinct workloads never alias), seed, and tick
// counts. Builtin-profile keys are byte-identical to the pre-Source
// encoding, so existing result stores stay warm.
func simCellKey(cfg Config, mix workload.SourceMix, warmup, measure int) string {
	wl := make([]string, len(mix.Sources))
	for i, s := range mix.Sources {
		wl[i] = s.Key()
	}
	cov := cfg.SPTCoverage
	if cov == 0 {
		cov = defaultSPTCoverage // NewSystem's fallback; keep the key canonical
	}
	return fmt.Sprintf(
		"sim/v2 cores=%d cap=%d ch=%d rk=%d spt=%g seed=%d per=%d prev=%d slack=%d nrh=%d warm=%d meas=%d wl=%s",
		cfg.Cores, cfg.ChipCapacityGbit, cfg.Channels, cfg.Ranks, cov, cfg.Seed,
		cfg.Policy.Periodic, cfg.Policy.Preventive, cfg.Policy.SlackTRC, cfg.Policy.NRH,
		warmup, measure, strings.Join(wl, ","))
}

// simCell builds the cell that simulates one (config, policy, mix) point.
func simCell(cfg Config, mix workload.SourceMix, warmup, measure int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: simCellKey(cfg, mix, warmup, measure),
		Run: func(ctx context.Context) (CellResult, error) {
			sys, err := NewSystem(cfg, mix)
			if err != nil {
				return CellResult{}, err
			}
			res, err := sys.RunContext(ctx, warmup, measure, nil)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{
				IPC:        res.IPC,
				Sched:      res.Sched,
				LLCHitRate: res.LLCHitRate,
				Ticks:      res.Ticks,
			}, nil
		},
	}
}

// aloneCellKey names an alone-IPC reference cell.
func aloneCellKey(src workload.Source, seed uint64, ticks int) string {
	return fmt.Sprintf("alone/v2 wl=%s seed=%d ticks=%d", src.Key(), seed, ticks)
}

// aloneCell builds the cell that computes one workload's alone-IPC
// reference for weighted speedup.
func aloneCell(src workload.Source, seed uint64, ticks int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: aloneCellKey(src, seed, ticks),
		Run: func(ctx context.Context) (CellResult, error) {
			alone, err := AloneIPCSourceContext(ctx, src, seed, ticks)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{Alone: alone}, nil
		},
	}
}
