package sim

import (
	"context"
	"fmt"
	"strings"

	"hira/internal/engine"
	"hira/internal/sched"
	"hira/internal/telemetry"
	"hira/internal/workload"
)

// EngineStats tallies how the experiment engine resolved a sweep's cells
// (simulated vs served from cache or the result store). See Options.Stats.
type EngineStats = engine.Stats

// CellResult is the JSON-serializable payload of one engine cell: the
// measured-phase outputs of a full system simulation, or (for reference
// cells) an alone-IPC value. WeightedSpeedup is deliberately absent — it
// depends on other cells' alone references and is recomputed when sweeps
// assemble scores, so a cell's identity covers exactly its own inputs.
type CellResult struct {
	IPC        []float64   `json:"ipc,omitempty"`
	Sched      sched.Stats `json:"sched"`
	LLCHitRate float64     `json:"llc_hit_rate,omitempty"`
	Ticks      int         `json:"ticks,omitempty"`
	Alone      float64     `json:"alone,omitempty"`
	// Forensics is present only for cells simulated with the RowHammer
	// forensics ledger enabled (their keys carry a forensics suffix, so
	// plain and forensics cells never share a store entry).
	Forensics *ForensicsSummary `json:"forensics,omitempty"`
}

// experimentEngine is the engine instantiation every sweep runs on.
type experimentEngine = engine.Engine[CellResult]

// simCellKey names a full-system simulation cell. It encodes every input
// NewSystem and Run consume: system shape, refresh policy behavior
// (mode fields, not the display name, so identically configured policies
// share a cell), per-core workload identities (a profile's full
// parameter set or a trace's content digest — see workload.Source.Key,
// which guarantees distinct workloads never alias), seed, and tick
// counts. Builtin-profile keys are byte-identical to the pre-Source
// encoding, so existing result stores stay warm.
func simCellKey(cfg Config, mix workload.SourceMix, warmup, measure int) string {
	wl := make([]string, len(mix.Sources))
	for i, s := range mix.Sources {
		wl[i] = s.Key()
	}
	cov := cfg.SPTCoverage
	if cov == 0 {
		cov = defaultSPTCoverage // NewSystem's fallback; keep the key canonical
	}
	key := fmt.Sprintf(
		"sim/v2 cores=%d cap=%d ch=%d rk=%d spt=%g seed=%d per=%d prev=%d slack=%d nrh=%d warm=%d meas=%d wl=%s",
		cfg.Cores, cfg.ChipCapacityGbit, cfg.Channels, cfg.Ranks, cov, cfg.Seed,
		cfg.Policy.Periodic, cfg.Policy.Preventive, cfg.Policy.SlackTRC, cfg.Policy.NRH,
		warmup, measure, strings.Join(wl, ","))
	if cfg.Policy.Mitigation != "" {
		// Suffix only mitigation cells, so every pre-mitigation store
		// entry stays warm.
		key += fmt.Sprintf(" mit=%s mp=%d", cfg.Policy.Mitigation, cfg.Policy.MitigationParam)
	}
	if cfg.Forensics.Enabled {
		// Forensics never perturbs the trajectory, but it adds a summary
		// to the cell payload — suffix only forensics cells so every
		// existing plain-cell store entry stays warm.
		key += fmt.Sprintf(" fx=1 fxrec=%t", cfg.Forensics.Recorder)
	}
	return key
}

// simCell builds the cell that simulates one (config, policy, mix)
// point on lab's checkpoint policy: the runner resumes from the longest
// usable checkpoint at or below the requested horizon and writes new
// checkpoints as it advances, so a warm store answers "same trajectory,
// longer run" by simulating only the delta.
func simCell(lab *Engine, cfg Config, mix workload.SourceMix, warmup, measure int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: simCellKey(cfg, mix, warmup, measure),
		Run: func(ctx context.Context) (CellResult, error) {
			res, err := runSimCell(ctx, lab.snaps, lab.snapInterval, cfg, mix, warmup, measure)
			if err != nil {
				return CellResult{}, err
			}
			out := CellResult{
				IPC:        res.IPC,
				Sched:      res.Sched,
				LLCHitRate: res.LLCHitRate,
				Ticks:      res.Ticks,
				Forensics:  res.Forensics,
			}
			lab.sim.observe(out)
			return out, nil
		},
	}
}

// runSimCell simulates one cell to warmup+measure ticks, resuming from
// and writing checkpoints when snaps is configured. The result is
// bit-identical to a cold straight-through run at any resume point and
// any checkpoint cadence: the machine's trajectory is deterministic, and
// measured-phase outputs are differences of cumulative counters (see
// System.resultSince), so they cannot depend on where the run started.
func runSimCell(ctx context.Context, snaps *engine.SnapStore, interval int,
	cfg Config, mix workload.SourceMix, warmup, measure int) (Result, error) {
	total := warmup + measure
	if cfg.Forensics.Enabled {
		// The forensics ledger is not part of Snapshot/Restore (it would
		// double the snapshot size for an opt-in observer), so a resumed
		// run would under-count. Forensics cells always run cold.
		snaps = nil
	}
	if cfg.Policy.Mitigation != "" {
		// Zoo-engine tracker state is not checkpointable (System.Snapshot
		// refuses it); skip the resume scan instead of missing noisily.
		snaps = nil
	}
	ck := checkpointer{snaps: snaps, interval: interval, key: trajectoryKey(cfg, mix)}
	sys, mark, haveMark := ck.resumeSystem(ctx, cfg, mix, warmup, total)
	if sys == nil {
		var err error
		if sys, err = NewSystem(cfg, mix); err != nil {
			return Result{}, err
		}
	}
	if !haveMark {
		if err := ck.runTo(ctx, sys, warmup); err != nil {
			return Result{}, err
		}
		mark = sys.mark()
		// Checkpoint the warmup boundary even off the interval grid:
		// future runs that resume past it need the mark's cumulative
		// counters, which live in exactly this checkpoint.
		ck.save(ctx, sys)
	}
	if err := ck.runTo(ctx, sys, total); err != nil {
		return Result{}, err
	}
	ck.save(ctx, sys)
	return sys.resultSince(mark, measure), nil
}

// machine is the tickable state a checkpointer drives: the full System
// and the alone-IPC reference run both implement it.
type machine interface {
	Ticks() int
	RunTo(ctx context.Context, target int) error
	Snapshot() ([]byte, error)
}

// checkpointer writes and resumes one trajectory's checkpoints.
type checkpointer struct {
	snaps    *engine.SnapStore
	interval int
	key      string
}

func (ck *checkpointer) enabled() bool { return ck.snaps != nil && ck.interval > 0 }

// resumeLongest scans the trajectory's stored checkpoints descending for
// the longest one at or below horizon that take accepts (restores and
// validates); rejected candidates are skipped, so every failure mode is
// a clean miss, never an error. Exactly one hit (a take accepted, also
// reported through engine.MarkResumed) or one miss is tallied per
// resume attempt, regardless of how many candidates were tried.
func (ck *checkpointer) resumeLongest(ctx context.Context, horizon int, take func(tick int, data []byte) bool) bool {
	if !ck.enabled() {
		return false
	}
	sp := telemetry.StartSpan(ctx, "checkpoint-lookup", ck.key)
	ticks := ck.snaps.Ticks(ck.key)
	for i := len(ticks) - 1; i >= 0; i-- {
		t := ticks[i]
		if t > horizon {
			continue
		}
		data, ok := ck.snaps.Load(ck.key, t)
		if !ok {
			continue
		}
		if take(t, data) {
			ck.snaps.NoteHit()
			ck.snaps.AttributeResim(ck.key, t, horizon)
			engine.MarkResumed(ctx, t)
			sp.SetAttr("hit", true)
			sp.SetAttr("tick", t)
			sp.End()
			return true
		}
	}
	ck.snaps.NoteMiss()
	ck.snaps.AttributeResim(ck.key, 0, horizon)
	sp.SetAttr("hit", false)
	sp.End()
	return false
}

// resumeSystem restores the longest usable System checkpoint at or below
// total ticks. A checkpoint past the warmup boundary is usable only when
// the boundary itself is checkpointed (its cumulative counters are the
// measured phase's baseline), and both snapshots must carry exactly the
// tick they are indexed under — a mislabeled file must not poison the
// result.
func (ck *checkpointer) resumeSystem(ctx context.Context, cfg Config, mix workload.SourceMix, warmup, total int) (sys *System, mark runMark, haveMark bool) {
	ck.resumeLongest(ctx, total, func(t int, data []byte) bool {
		s, err := RestoreSystem(cfg, mix, data)
		if err != nil || s.Ticks() != t {
			return false
		}
		if t > warmup {
			if warmup == 0 {
				mark = zeroMark(cfg.Cores)
			} else {
				mdata, ok := ck.snaps.Load(ck.key, warmup)
				if !ok {
					return false
				}
				ms, err := RestoreSystem(cfg, mix, mdata)
				if err != nil || ms.Ticks() != warmup {
					return false
				}
				mark = ms.mark()
			}
			haveMark = true
		}
		sys = s
		return true
	})
	return sys, mark, haveMark
}

// runTo advances m to the target tick, checkpointing every interval
// boundary it crosses. Boundaries are absolute tick multiples, so runs
// with different warmup/measure splits of one trajectory land their
// checkpoints on a shared grid.
func (ck *checkpointer) runTo(ctx context.Context, m machine, target int) error {
	if m.Ticks() >= target {
		return nil
	}
	sp := telemetry.StartSpan(ctx, "simulate", ck.key)
	sp.SetAttr("from", m.Ticks())
	sp.SetAttr("to", target)
	defer sp.End()
	if !ck.enabled() {
		return m.RunTo(ctx, target)
	}
	for m.Ticks() < target {
		next := target
		if b := (m.Ticks()/ck.interval + 1) * ck.interval; b < next {
			next = b
		}
		if err := m.RunTo(ctx, next); err != nil {
			return err
		}
		if next%ck.interval == 0 {
			ck.save(ctx, m)
		}
	}
	return nil
}

// save checkpoints m's current state, best-effort: an encode failure (a
// non-checkpointable custom stream) or store failure only means the next
// run starts colder.
func (ck *checkpointer) save(ctx context.Context, m machine) {
	if !ck.enabled() || m.Ticks() == 0 {
		return
	}
	if ck.snaps.Has(ck.key, m.Ticks()) {
		return
	}
	sp := telemetry.StartSpan(ctx, "checkpoint-save", ck.key)
	sp.SetAttr("tick", m.Ticks())
	defer sp.End()
	data, err := m.Snapshot()
	if err != nil {
		return
	}
	ck.snaps.Save(ck.key, m.Ticks(), data)
}

// runAloneCell computes one alone-IPC reference, resuming from and
// writing checkpoints like runSimCell. The alone result is cumulative
// (no warmup mark), so any checkpoint at or below the horizon resumes
// it. Unlike sim cells, alone runs checkpoint only their final tick:
// a single-core reference simulates ticks about as fast as a checkpoint
// encodes, so grid checkpoints would cost more than they could ever
// save, while the final state is exactly what horizon extensions resume
// from.
func runAloneCell(ctx context.Context, snaps *engine.SnapStore, interval int,
	src workload.Source, seed uint64, ticks int) (float64, error) {
	ck := checkpointer{snaps: snaps, interval: interval, key: aloneTrajectoryKey(src, seed)}
	var a *aloneRun
	ck.resumeLongest(ctx, ticks, func(t int, data []byte) bool {
		r, err := restoreAloneRun(src, seed, data)
		if err != nil || r.Ticks() != t {
			return false
		}
		a = r
		return true
	})
	if a == nil {
		a = newAloneRun(src, seed)
	}
	if a.Ticks() < ticks {
		sp := telemetry.StartSpan(ctx, "simulate", ck.key)
		sp.SetAttr("from", a.Ticks())
		sp.SetAttr("to", ticks)
		err := a.RunTo(ctx, ticks)
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	ck.save(ctx, a)
	return a.ipc(), nil
}

// aloneCellKey names an alone-IPC reference cell.
func aloneCellKey(src workload.Source, seed uint64, ticks int) string {
	return fmt.Sprintf("alone/v2 wl=%s seed=%d ticks=%d", src.Key(), seed, ticks)
}

// aloneCell builds the cell that computes one workload's alone-IPC
// reference for weighted speedup, resumable under lab's checkpoint
// policy like simCell.
func aloneCell(lab *Engine, src workload.Source, seed uint64, ticks int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: aloneCellKey(src, seed, ticks),
		Run: func(ctx context.Context) (CellResult, error) {
			alone, err := runAloneCell(ctx, lab.snaps, lab.snapInterval, src, seed, ticks)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{Alone: alone}, nil
		},
	}
}
