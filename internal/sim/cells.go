package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hira/internal/engine"
	"hira/internal/sched"
	"hira/internal/telemetry"
	"hira/internal/workload"
)

// EngineStats tallies how the experiment engine resolved a sweep's cells
// (simulated vs served from cache or the result store). See Options.Stats.
type EngineStats = engine.Stats

// CellResult is the JSON-serializable payload of one engine cell: the
// measured-phase outputs of a full system simulation, or (for reference
// cells) an alone-IPC value. WeightedSpeedup is deliberately absent — it
// depends on other cells' alone references and is recomputed when sweeps
// assemble scores, so a cell's identity covers exactly its own inputs.
type CellResult struct {
	IPC        []float64   `json:"ipc,omitempty"`
	Sched      sched.Stats `json:"sched"`
	LLCHitRate float64     `json:"llc_hit_rate,omitempty"`
	Ticks      int         `json:"ticks,omitempty"`
	Alone      float64     `json:"alone,omitempty"`
	// Forensics is present only for cells simulated with the RowHammer
	// forensics ledger enabled (their keys carry a forensics suffix, so
	// plain and forensics cells never share a store entry).
	Forensics *ForensicsSummary `json:"forensics,omitempty"`
}

// experimentEngine is the engine instantiation every sweep runs on.
type experimentEngine = engine.Engine[CellResult]

// simCellKey names a full-system simulation cell. It encodes every input
// NewSystem and Run consume: system shape, refresh policy behavior
// (mode fields, not the display name, so identically configured policies
// share a cell), per-core workload identities (a profile's full
// parameter set or a trace's content digest — see workload.Source.Key,
// which guarantees distinct workloads never alias), seed, and tick
// counts. Builtin-profile keys are byte-identical to the pre-Source
// encoding, so existing result stores stay warm.
func simCellKey(cfg Config, mix workload.SourceMix, warmup, measure int) string {
	wl := make([]string, len(mix.Sources))
	for i, s := range mix.Sources {
		wl[i] = s.Key()
	}
	cov := cfg.SPTCoverage
	if cov == 0 {
		cov = defaultSPTCoverage // NewSystem's fallback; keep the key canonical
	}
	key := fmt.Sprintf(
		"sim/v2 cores=%d cap=%d ch=%d rk=%d spt=%g seed=%d per=%d prev=%d slack=%d nrh=%d warm=%d meas=%d wl=%s",
		cfg.Cores, cfg.ChipCapacityGbit, cfg.Channels, cfg.Ranks, cov, cfg.Seed,
		cfg.Policy.Periodic, cfg.Policy.Preventive, cfg.Policy.SlackTRC, cfg.Policy.NRH,
		warmup, measure, strings.Join(wl, ","))
	if cfg.Policy.Mitigation != "" {
		// Suffix only mitigation cells, so every pre-mitigation store
		// entry stays warm.
		key += fmt.Sprintf(" mit=%s mp=%d", cfg.Policy.Mitigation, cfg.Policy.MitigationParam)
	}
	if cfg.Forensics.Enabled {
		// Forensics never perturbs the trajectory, but it adds a summary
		// to the cell payload — suffix only forensics cells so every
		// existing plain-cell store entry stays warm.
		key += fmt.Sprintf(" fx=1 fxrec=%t", cfg.Forensics.Recorder)
	}
	return key
}

// simCell builds the cell that simulates one (config, policy, mix)
// point on lab's checkpoint policy: the runner resumes from the longest
// usable checkpoint at or below the requested horizon and writes new
// checkpoints as it advances, so a warm store answers "same trajectory,
// longer run" by simulating only the delta.
func simCell(lab *Engine, cfg Config, mix workload.SourceMix, warmup, measure int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: simCellKey(cfg, mix, warmup, measure),
		Run: func(ctx context.Context) (CellResult, error) {
			res, err := runSimCell(ctx, lab.snaps, lab.snapInterval, cfg, mix, warmup, measure)
			if err != nil {
				return CellResult{}, err
			}
			out := simCellResult(res)
			lab.sim.observe(out)
			return out, nil
		},
		Plan: &engine.Plan[CellResult]{
			Group:   simPlanGroup(cfg, mix),
			Horizon: warmup + measure,
			Payload: simPassPayload{cfg: cfg, mix: mix, warmup: warmup, measure: measure},
			RunPass: func(ctx context.Context, members []engine.PlanMember, emit func(int, CellResult)) error {
				return runSimPass(ctx, lab, members, emit)
			},
		},
	}
}

// simCellResult projects a measured-phase Result onto the cell payload.
func simCellResult(res Result) CellResult {
	return CellResult{
		IPC:        res.IPC,
		Sched:      res.Sched,
		LLCHitRate: res.LLCHitRate,
		Ticks:      res.Ticks,
		Forensics:  res.Forensics,
	}
}

// simPlanGroup names a sim cell's planner group: its trajectory, plus
// the forensics mode. Forensics never perturbs the trajectory, but it
// changes the cell payload, so forensics and plain cells must not share
// one pass.
func simPlanGroup(cfg Config, mix workload.SourceMix) string {
	g := "sim " + trajectoryKey(cfg, mix)
	if cfg.Forensics.Enabled {
		g += fmt.Sprintf(" fx=1 fxrec=%t", cfg.Forensics.Recorder)
	}
	return g
}

// simPassPayload carries one sim cell's inputs to its group's pass.
type simPassPayload struct {
	cfg     Config
	mix     workload.SourceMix
	warmup  int
	measure int
}

// runSimPass simulates a group of same-trajectory cells as one
// coalesced pass: a single machine resumes from the longest checkpoint
// at or below the group's shortest pending horizon, then walks the
// sorted warmup and measure boundaries, recording marks at warmup
// boundaries and emitting each member's finished row at its total
// horizon — instead of one restore-and-extend round trip per cell.
// Every emitted row is bit-identical to the per-cell path's: members'
// results are differences of cumulative counters at exactly the ticks
// the per-cell runner would have visited, on the identical trajectory.
func runSimPass(ctx context.Context, lab *Engine, members []engine.PlanMember, emit func(int, CellResult)) error {
	first := members[0].Payload.(simPassPayload)
	cfg, mix := first.cfg, first.mix
	snaps := lab.snaps
	if cfg.Forensics.Enabled || cfg.Policy.Mitigation != "" {
		// Same rules as runSimCell: forensics ledgers and zoo-engine
		// tracker state are not checkpointable, so these passes run
		// cold — they still coalesce their horizons.
		snaps = nil
	}
	ck := checkpointer{snaps: snaps, interval: lab.snapInterval, key: trajectoryKey(cfg, mix)}

	// The members share one machine, so the resume point must not
	// overshoot any member's horizon: the shortest pending total bounds
	// the scan (members arrive sorted by ascending horizon).
	minTotal := members[0].Horizon
	var sys *System
	marks := make(map[int]runMark)
	ck.resumeLongest(ctx, minTotal, func(t int, data []byte) bool {
		s, depth, err := ck.restoreChain(cfg, mix, t, data)
		if err != nil || s.Ticks() != t {
			return false
		}
		// Every warmup boundary already behind the candidate must be
		// mark-recoverable, or the candidate is unusable for that member.
		got := make(map[int]runMark)
		for _, mb := range members {
			p := mb.Payload.(simPassPayload)
			if p.warmup >= t {
				continue
			}
			if _, ok := got[p.warmup]; ok {
				continue
			}
			m, ok := ck.loadMark(cfg, mix, p.warmup)
			if !ok {
				return false
			}
			got[p.warmup] = m
		}
		sys, marks = s, got
		ck.lastTick, ck.depth = t, depth
		return true
	})
	if sys == nil {
		var err error
		if sys, err = NewSystem(cfg, mix); err != nil {
			return err
		}
	}

	// Walk every distinct warmup/total boundary ahead of the machine in
	// order, marking and checkpointing warmup boundaries and emitting
	// finished rows at totals. A tick serving both roles is fine: marks
	// and results are pure reads of cumulative state.
	markAt := make(map[int]bool)
	bset := make(map[int]bool)
	for _, mb := range members {
		p := mb.Payload.(simPassPayload)
		markAt[p.warmup] = true
		bset[p.warmup] = true
		bset[p.warmup+p.measure] = true
	}
	bounds := make([]int, 0, len(bset))
	for t := range bset {
		bounds = append(bounds, t)
	}
	sort.Ints(bounds)
	for _, t := range bounds {
		if t < sys.Ticks() {
			continue // a warmup boundary behind the resume point; its mark is loaded
		}
		if err := ck.runTo(ctx, sys, t); err != nil {
			return err
		}
		if markAt[t] {
			if _, ok := marks[t]; !ok {
				marks[t] = sys.mark()
				// Checkpoint the warmup boundary even off the interval
				// grid: future runs resuming past it read the mark's
				// counters from exactly this checkpoint's header.
				ck.save(ctx, sys)
			}
		}
		for i, mb := range members {
			p := mb.Payload.(simPassPayload)
			if p.warmup+p.measure != t {
				continue
			}
			m, ok := marks[p.warmup]
			if !ok {
				return fmt.Errorf("sim: pass reached tick %d without a mark at warmup %d", t, p.warmup)
			}
			ck.save(ctx, sys)
			out := simCellResult(sys.resultSince(m, p.measure))
			lab.sim.observe(out)
			emit(i, out)
		}
	}
	return nil
}

// runSimCell simulates one cell to warmup+measure ticks, resuming from
// and writing checkpoints when snaps is configured. The result is
// bit-identical to a cold straight-through run at any resume point and
// any checkpoint cadence: the machine's trajectory is deterministic, and
// measured-phase outputs are differences of cumulative counters (see
// System.resultSince), so they cannot depend on where the run started.
func runSimCell(ctx context.Context, snaps *engine.SnapStore, interval int,
	cfg Config, mix workload.SourceMix, warmup, measure int) (Result, error) {
	total := warmup + measure
	if cfg.Forensics.Enabled {
		// The forensics ledger is not part of Snapshot/Restore (it would
		// double the snapshot size for an opt-in observer), so a resumed
		// run would under-count. Forensics cells always run cold.
		snaps = nil
	}
	if cfg.Policy.Mitigation != "" {
		// Zoo-engine tracker state is not checkpointable (System.Snapshot
		// refuses it); skip the resume scan instead of missing noisily.
		snaps = nil
	}
	ck := checkpointer{snaps: snaps, interval: interval, key: trajectoryKey(cfg, mix)}
	sys, mark, haveMark := ck.resumeSystem(ctx, cfg, mix, warmup, total)
	if sys == nil {
		var err error
		if sys, err = NewSystem(cfg, mix); err != nil {
			return Result{}, err
		}
	}
	if !haveMark {
		if err := ck.runTo(ctx, sys, warmup); err != nil {
			return Result{}, err
		}
		mark = sys.mark()
		// Checkpoint the warmup boundary even off the interval grid:
		// future runs that resume past it need the mark's cumulative
		// counters, which live in exactly this checkpoint.
		ck.save(ctx, sys)
	}
	if err := ck.runTo(ctx, sys, total); err != nil {
		return Result{}, err
	}
	ck.save(ctx, sys)
	return sys.resultSince(mark, measure), nil
}

// machine is the tickable state a checkpointer drives: the full System
// and the alone-IPC reference run both implement it.
type machine interface {
	Ticks() int
	RunTo(ctx context.Context, target int) error
	Snapshot() ([]byte, error)
}

// deltaMachine is a machine that can encode a differential checkpoint:
// only the state blocks touched since the previous checkpoint, chained
// to it by base tick. The checkpointer owns the touch epoch — it calls
// ResetTouchedLines exactly when a checkpoint (full or delta) lands, so
// the touched set always means "since the last stored checkpoint".
type deltaMachine interface {
	SnapshotDelta(baseTick, depth int) ([]byte, error)
	ResetTouchedLines()
}

// checkpointer writes and resumes one trajectory's checkpoints.
type checkpointer struct {
	snaps    *engine.SnapStore
	interval int
	key      string

	// Delta-chain epoch: the tick of the last checkpoint this run stored
	// or resumed from (0 = none; deltas diff against it) and how many
	// delta links already sit between it and its full base.
	lastTick int
	depth    int
}

func (ck *checkpointer) enabled() bool { return ck.snaps != nil && ck.interval > 0 }

// resumeLongest scans the trajectory's stored checkpoints descending for
// the longest one at or below horizon that take accepts (restores and
// validates); rejected candidates are skipped, so every failure mode is
// a clean miss, never an error. Exactly one hit (a take accepted, also
// reported through engine.MarkResumed) or one miss is tallied per
// resume attempt, regardless of how many candidates were tried.
func (ck *checkpointer) resumeLongest(ctx context.Context, horizon int, take func(tick int, data []byte) bool) bool {
	if !ck.enabled() {
		return false
	}
	sp := telemetry.StartSpan(ctx, "checkpoint-lookup", ck.key)
	ticks := ck.snaps.Ticks(ck.key)
	for i := len(ticks) - 1; i >= 0; i-- {
		t := ticks[i]
		if t > horizon {
			continue
		}
		data, ok := ck.snaps.Load(ck.key, t)
		if !ok {
			continue
		}
		if take(t, data) {
			ck.snaps.NoteHit()
			ck.snaps.AttributeResim(ck.key, t, horizon)
			engine.MarkResumed(ctx, t)
			sp.SetAttr("hit", true)
			sp.SetAttr("tick", t)
			sp.End()
			return true
		}
	}
	ck.snaps.NoteMiss()
	ck.snaps.AttributeResim(ck.key, 0, horizon)
	sp.SetAttr("hit", false)
	sp.End()
	return false
}

// resumeSystem restores the longest usable System checkpoint at or below
// total ticks. A checkpoint past the warmup boundary is usable only when
// the boundary itself is checkpointed (its cumulative counters are the
// measured phase's baseline), and both snapshots must carry exactly the
// tick they are indexed under — a mislabeled file must not poison the
// result.
func (ck *checkpointer) resumeSystem(ctx context.Context, cfg Config, mix workload.SourceMix, warmup, total int) (sys *System, mark runMark, haveMark bool) {
	ck.resumeLongest(ctx, total, func(t int, data []byte) bool {
		s, depth, err := ck.restoreChain(cfg, mix, t, data)
		if err != nil || s.Ticks() != t {
			return false
		}
		if t > warmup {
			m, ok := ck.loadMark(cfg, mix, warmup)
			if !ok {
				return false
			}
			mark, haveMark = m, true
		}
		sys = s
		ck.lastTick, ck.depth = t, depth
		return true
	})
	return sys, mark, haveMark
}

// restoreChain restores the checkpoint stored at tick, following delta
// links down to their full base and replaying them ascending. It
// returns the restored machine and the chain length (0 for a full
// snapshot) — the caller seeds its delta epoch from that, so new deltas
// extend the restored chain instead of restarting its depth count.
func (ck *checkpointer) restoreChain(cfg Config, mix workload.SourceMix, tick int, data []byte) (*System, int, error) {
	var chain [][]byte
	want := tick
	for hasMagic(data, deltaMagic) {
		if len(chain) == maxDeltaChain {
			return nil, 0, fmt.Errorf("sim: delta chain at tick %d exceeds %d links", tick, maxDeltaChain)
		}
		key, t, baseTick, _, err := readDeltaHeader(data)
		if err != nil {
			return nil, 0, err
		}
		if key != ck.key {
			return nil, 0, fmt.Errorf("sim: delta checkpoint carries a foreign trajectory key")
		}
		if t != want {
			return nil, 0, fmt.Errorf("sim: delta checkpoint labeled tick %d, indexed at %d", t, want)
		}
		chain = append(chain, data)
		next, ok := ck.snaps.Load(ck.key, baseTick)
		if !ok {
			return nil, 0, fmt.Errorf("sim: delta base at tick %d missing", baseTick)
		}
		data, want = next, baseTick
	}
	sys, err := RestoreSystem(cfg, mix, data)
	if err != nil {
		return nil, 0, err
	}
	if sys.Ticks() != want {
		return nil, 0, fmt.Errorf("sim: base snapshot at tick %d, indexed at %d", sys.Ticks(), want)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if err := applySystemDelta(sys, chain[i]); err != nil {
			return nil, 0, err
		}
	}
	return sys, len(chain), nil
}

// loadMark obtains the cumulative counters at the warmup boundary from
// the store: straight from a v2 checkpoint's header, or by a full
// decode for a legacy v1 snapshot. A zero warmup needs no checkpoint.
func (ck *checkpointer) loadMark(cfg Config, mix workload.SourceMix, warmup int) (runMark, bool) {
	if warmup == 0 {
		return zeroMark(cfg.Cores), true
	}
	mdata, ok := ck.snaps.Load(ck.key, warmup)
	if !ok {
		return runMark{}, false
	}
	key, mtick, m, ok, err := readSnapshotMark(mdata, cfg.Cores)
	if err != nil {
		return runMark{}, false
	}
	if ok {
		if key != ck.key || mtick != warmup {
			return runMark{}, false
		}
		return m, true
	}
	// Legacy v1 snapshot: no mark section, so the counters require a
	// full decode.
	ms, err := RestoreSystem(cfg, mix, mdata)
	if err != nil || ms.Ticks() != warmup {
		return runMark{}, false
	}
	return ms.mark(), true
}

// runTo advances m to the target tick, checkpointing every interval
// boundary it crosses. Boundaries are absolute tick multiples, so runs
// with different warmup/measure splits of one trajectory land their
// checkpoints on a shared grid.
func (ck *checkpointer) runTo(ctx context.Context, m machine, target int) error {
	if m.Ticks() >= target {
		return nil
	}
	sp := telemetry.StartSpan(ctx, "simulate", ck.key)
	sp.SetAttr("from", m.Ticks())
	sp.SetAttr("to", target)
	defer sp.End()
	before := m.Ticks()
	defer func() { engine.MarkSimulated(ctx, m.Ticks()-before) }()
	if !ck.enabled() {
		return m.RunTo(ctx, target)
	}
	for m.Ticks() < target {
		next := target
		if b := (m.Ticks()/ck.interval + 1) * ck.interval; b < next {
			next = b
		}
		if err := m.RunTo(ctx, next); err != nil {
			return err
		}
		if next%ck.interval == 0 {
			ck.save(ctx, m)
		}
	}
	return nil
}

// save checkpoints m's current state, best-effort: an encode failure (a
// non-checkpointable custom stream) or store failure only means the next
// run starts colder. When m tracks touched state and a prior checkpoint
// anchors this run, save emits a differential checkpoint chained to it;
// the chain is bounded, so every maxDeltaChain-th save (and any save a
// delta path fails on) is a full snapshot. The touch epoch resets only
// after a checkpoint actually lands, so a skipped or failed save leaves
// the touched set accumulating toward the next successful one.
func (ck *checkpointer) save(ctx context.Context, m machine) {
	if !ck.enabled() || m.Ticks() == 0 {
		return
	}
	tick := m.Ticks()
	if ck.snaps.Has(ck.key, tick) {
		return
	}
	sp := telemetry.StartSpan(ctx, "checkpoint-save", ck.key)
	sp.SetAttr("tick", tick)
	defer sp.End()
	dm, canDelta := m.(deltaMachine)
	if canDelta && ck.lastTick > 0 && ck.lastTick < tick && ck.depth < maxDeltaChain {
		data, err := dm.SnapshotDelta(ck.lastTick, ck.depth+1)
		if err == nil && ck.snaps.SaveDelta(ck.key, tick, ck.lastTick, data) == nil {
			sp.SetAttr("delta", true)
			ck.lastTick, ck.depth = tick, ck.depth+1
			dm.ResetTouchedLines()
			return
		}
		// Fall through: any delta failure (encode, or the store cannot
		// hold the delta without evicting its base chain) degrades to a
		// full snapshot.
	}
	data, err := m.Snapshot()
	if err != nil {
		return
	}
	if ck.snaps.Save(ck.key, tick, data) != nil {
		return
	}
	ck.lastTick, ck.depth = tick, 0
	if canDelta {
		dm.ResetTouchedLines()
	}
}

// runAloneCell computes one alone-IPC reference, resuming from and
// writing checkpoints like runSimCell. The alone result is cumulative
// (no warmup mark), so any checkpoint at or below the horizon resumes
// it. Unlike sim cells, alone runs checkpoint only their final tick:
// a single-core reference simulates ticks about as fast as a checkpoint
// encodes, so grid checkpoints would cost more than they could ever
// save, while the final state is exactly what horizon extensions resume
// from.
func runAloneCell(ctx context.Context, snaps *engine.SnapStore, interval int,
	src workload.Source, seed uint64, ticks int) (float64, error) {
	ck := checkpointer{snaps: snaps, interval: interval, key: aloneTrajectoryKey(src, seed)}
	var a *aloneRun
	ck.resumeLongest(ctx, ticks, func(t int, data []byte) bool {
		r, err := restoreAloneRun(src, seed, data)
		if err != nil || r.Ticks() != t {
			return false
		}
		a = r
		return true
	})
	if a == nil {
		a = newAloneRun(src, seed)
	}
	if a.Ticks() < ticks {
		sp := telemetry.StartSpan(ctx, "simulate", ck.key)
		sp.SetAttr("from", a.Ticks())
		sp.SetAttr("to", ticks)
		before := a.Ticks()
		err := a.RunTo(ctx, ticks)
		engine.MarkSimulated(ctx, a.Ticks()-before)
		sp.End()
		if err != nil {
			return 0, err
		}
	}
	ck.save(ctx, a)
	return a.ipc(), nil
}

// alonePassPayload carries one alone cell's inputs to its group's pass.
type alonePassPayload struct {
	src   workload.Source
	seed  uint64
	ticks int
}

// runAlonePass computes a group of same-trajectory alone-IPC references
// in one coalesced pass: the reference machine resumes once (at or
// below the shortest pending horizon), then visits each member's tick
// count ascending, checkpointing and emitting the cumulative IPC at
// every boundary. Alone results are cumulative, so each boundary's
// value is identical to what a per-cell run stopping there reports.
func runAlonePass(ctx context.Context, lab *Engine, members []engine.PlanMember, emit func(int, CellResult)) error {
	first := members[0].Payload.(alonePassPayload)
	src, seed := first.src, first.seed
	ck := checkpointer{snaps: lab.snaps, interval: lab.snapInterval, key: aloneTrajectoryKey(src, seed)}
	var a *aloneRun
	ck.resumeLongest(ctx, members[0].Horizon, func(t int, data []byte) bool {
		r, err := restoreAloneRun(src, seed, data)
		if err != nil || r.Ticks() != t {
			return false
		}
		a = r
		return true
	})
	if a == nil {
		a = newAloneRun(src, seed)
	}
	for i, mb := range members {
		ticks := mb.Payload.(alonePassPayload).ticks
		if a.Ticks() < ticks {
			sp := telemetry.StartSpan(ctx, "simulate", ck.key)
			sp.SetAttr("from", a.Ticks())
			sp.SetAttr("to", ticks)
			before := a.Ticks()
			err := a.RunTo(ctx, ticks)
			engine.MarkSimulated(ctx, a.Ticks()-before)
			sp.End()
			if err != nil {
				return err
			}
		}
		if a.Ticks() != ticks {
			return fmt.Errorf("sim: alone pass overshot member horizon %d at tick %d", ticks, a.Ticks())
		}
		ck.save(ctx, a)
		emit(i, CellResult{Alone: a.ipc()})
	}
	return nil
}

// aloneCellKey names an alone-IPC reference cell.
func aloneCellKey(src workload.Source, seed uint64, ticks int) string {
	return fmt.Sprintf("alone/v2 wl=%s seed=%d ticks=%d", src.Key(), seed, ticks)
}

// aloneCell builds the cell that computes one workload's alone-IPC
// reference for weighted speedup, resumable under lab's checkpoint
// policy like simCell.
func aloneCell(lab *Engine, src workload.Source, seed uint64, ticks int) engine.Cell[CellResult] {
	return engine.Cell[CellResult]{
		Key: aloneCellKey(src, seed, ticks),
		Run: func(ctx context.Context) (CellResult, error) {
			alone, err := runAloneCell(ctx, lab.snaps, lab.snapInterval, src, seed, ticks)
			if err != nil {
				return CellResult{}, err
			}
			return CellResult{Alone: alone}, nil
		},
		Plan: &engine.Plan[CellResult]{
			Group:   "alone " + aloneTrajectoryKey(src, seed),
			Horizon: ticks,
			Payload: alonePassPayload{src: src, seed: seed, ticks: ticks},
			RunPass: func(ctx context.Context, members []engine.PlanMember, emit func(int, CellResult)) error {
				return runAlonePass(ctx, lab, members, emit)
			},
		},
	}
}
