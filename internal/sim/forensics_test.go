package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hira/internal/workload"
)

// TestForensicsFiguresBitIdentical proves the sweep-level contract: a
// figure run with forensics (and the flight recorder) enabled yields
// exactly the same performance rows as one without — the only difference
// is the attached Forensics maps. The sched-level differential proves the
// command stream is untouched; this pins the whole pipeline through the
// engine, cells, and row constructors.
func TestForensicsFiguresBitIdentical(t *testing.T) {
	ctx := context.Background()
	caps := []int{2, 8}
	plain, err := Fig9(ctx, goldenOpts(), caps)
	if err != nil {
		t.Fatal(err)
	}
	o := goldenOpts()
	o.Forensics = true
	o.ForensicsRecorder = true
	fx, err := Fig9(ctx, o, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(fx) != len(plain) {
		t.Fatalf("row counts diverged: %d vs %d", len(fx), len(plain))
	}
	for i := range plain {
		if plain[i].Forensics != nil {
			t.Errorf("row %d: forensics attached without Options.Forensics", i)
		}
		got := fx[i]
		if got.Forensics == nil {
			t.Fatalf("row %d: no forensics despite Options.Forensics", i)
		}
		got.Forensics = nil
		if !reflect.DeepEqual(got, plain[i]) {
			t.Errorf("row %d performance data diverged with forensics on:\noff: %+v\non:  %+v",
				i, plain[i], got)
		}
	}

	// Every policy of every row carries a summary obeying the accounting
	// identity, and plain-JSON encoding of the forensics-off rows carries
	// no forensics keys (golden fixtures stay byte-identical).
	for i, r := range fx {
		for name, f := range r.Forensics {
			tl := f.Tally
			if got := tl.PreventiveUseful + tl.PreventiveWasted + tl.PeriodicRowRefreshes; got != tl.RefreshACTs {
				t.Errorf("row %d %s: useful+wasted+periodic = %d, want RefreshACTs = %d",
					i, name, got, tl.RefreshACTs)
			}
			if tl.DemandACTs == 0 {
				t.Errorf("row %d %s: no demand ACTs recorded", i, name)
			}
			if f.MaxInterrefACTs == 0 {
				t.Errorf("row %d %s: MaxInterrefACTs = 0", i, name)
			}
		}
	}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "forensics") {
		t.Error("forensics-off rows leak forensics keys into JSON")
	}
}

// TestForensicsCellsSeparatelyKeyed checks that forensics runs never
// alias plain engine cells: the same sweep with and without forensics
// must produce distinct cell keys, and a forensics cell replayed from the
// store must still carry its summary.
func TestForensicsCellsSeparatelyKeyed(t *testing.T) {
	cfg := DefaultConfig()
	mix := workload.SourceMix{}
	plain := simCellKey(cfg, mix, 100, 200)
	cfg.Forensics = ForensicsOptions{Enabled: true}
	fx := simCellKey(cfg, mix, 100, 200)
	cfg.Forensics.Recorder = true
	rec := simCellKey(cfg, mix, 100, 200)
	if plain == fx || fx == rec || plain == rec {
		t.Fatalf("cell keys alias across forensics modes:\nplain: %s\nfx:    %s\nrec:   %s", plain, fx, rec)
	}

	// Same engine, same sweep twice: the second run must be served from
	// cache and still carry forensics summaries.
	eng := NewEngine(EngineConfig{})
	opts := goldenOpts()
	opts.Forensics = true
	ctx := context.Background()
	base := DefaultConfig()
	pols := []RefreshPolicy{PARAPolicy(1024)}
	first, err := eng.RunPolicies(ctx, base, pols, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.RunPolicies(ctx, base, pols, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Forensics == nil || second[0].Forensics == nil {
		t.Fatal("policy score missing forensics summary")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached forensics run diverged from the cold run")
	}
}
