package sim

import (
	"testing"

	"hira/internal/dram"
	"hira/internal/sched"
	"hira/internal/workload"
)

// TestRunMatchesTickByTick proves System.Run's fast-forward layer (core
// budget replay + controller SkipTicks) is bit-identical to ticking the
// system one command clock at a time: same command stream, same stats,
// same IPC. Together with the sched package's differential tests (which
// hold the optimized controller equal to the seed-style reference), this
// covers the full optimized path.
func TestRunMatchesTickByTick(t *testing.T) {
	policies := []RefreshPolicy{
		BaselinePolicy(),
		HiRAPeriodicPolicy(2),
		PARAPolicy(256),
		PARAHiRAPolicy(256, 4),
	}
	warmup, measure := 4000, 16000
	if testing.Short() {
		warmup, measure = 1000, 6000
	}
	mix := workload.Mixes(1, 8, 3)[0].Sources()
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ChipCapacityGbit = 32
			cfg.Policy = pol
			cfg.Seed = 3

			build := func() (*System, *[]dram.Command) {
				sys, err := NewSystem(cfg, mix)
				if err != nil {
					t.Fatal(err)
				}
				cmds := &[]dram.Command{}
				sys.Controller().CommandHook = func(cmd dram.Command) { *cmds = append(*cmds, cmd) }
				return sys, cmds
			}

			// Fast path: Run (skips idle windows).
			fast, fastCmds := build()
			fastRes := fast.Run(warmup, measure, nil)

			// Reference path: one Tick per command clock, replicating
			// Run's warmup/measure bookkeeping.
			ref, refCmds := build()
			for i := 0; i < warmup; i++ {
				ref.Tick()
			}
			retired := make([]uint64, len(ref.cores))
			for i := range ref.cores {
				retired[i] = ref.cores[i].Retired
			}
			ref.ctrl.Stats = sched.Stats{}
			for i := 0; i < measure; i++ {
				ref.Tick()
			}

			if len(*fastCmds) != len(*refCmds) {
				t.Fatalf("command counts diverged: fast %d ref %d", len(*fastCmds), len(*refCmds))
			}
			for i := range *refCmds {
				if (*fastCmds)[i] != (*refCmds)[i] {
					t.Fatalf("command %d diverged:\nfast: %+v\nref:  %+v", i, (*fastCmds)[i], (*refCmds)[i])
				}
			}
			if fastRes.Sched != ref.ctrl.Stats {
				t.Fatalf("stats diverged:\nfast: %+v\nref:  %+v", fastRes.Sched, ref.ctrl.Stats)
			}
			cycles := float64(measure) * cpuCyclesPerTick
			for i, c := range ref.cores {
				refIPC := float64(c.Retired-retired[i]) / cycles
				if fastRes.IPC[i] != refIPC {
					t.Fatalf("core %d IPC diverged: fast %v ref %v", i, fastRes.IPC[i], refIPC)
				}
			}
			if fast.ctrl.Now() != ref.ctrl.Now() {
				t.Fatalf("clocks diverged: fast %v ref %v", fast.ctrl.Now(), ref.ctrl.Now())
			}
		})
	}
}

func TestWBRing(t *testing.T) {
	var r wbRing
	mk := func(row int) sched.Request {
		return sched.Request{Loc: dram.Location{Row: row}, Write: true}
	}
	if r.len() != 0 {
		t.Fatal("new ring not empty")
	}
	// Interleave pushes and pops across several growth cycles so the ring
	// wraps with a non-zero head.
	next, expect := 0, 0
	for round := 0; round < 6; round++ {
		for i := 0; i < 5+round*3; i++ {
			r.push(mk(next))
			next++
		}
		for i := 0; i < 3+round*2 && r.len() > 0; i++ {
			if got := r.front().Loc.Row; got != expect {
				t.Fatalf("front = %d, want %d (FIFO broken)", got, expect)
			}
			r.pop()
			expect++
		}
	}
	for r.len() > 0 {
		if got := r.front().Loc.Row; got != expect {
			t.Fatalf("front = %d, want %d during drain", got, expect)
		}
		r.pop()
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d items, pushed %d", expect, next)
	}
	// Reuse after full drain must not allocate a fresh buffer per push.
	capBefore := len(r.buf)
	for i := 0; i < capBefore; i++ {
		r.push(mk(i))
	}
	if len(r.buf) != capBefore {
		t.Fatalf("ring grew from %d to %d while within capacity", capBefore, len(r.buf))
	}
}
