// Package sim wires the full simulated system of §7 — multicore front end
// (internal/cpu), shared LLC (internal/cache), memory request scheduler
// (internal/sched) with a refresh engine (internal/core), and synthetic
// SPEC CPU2006 workloads (internal/workload) — and implements the
// parameter sweeps behind every performance figure of the paper
// (Figs. 9 and 12-16).
package sim

import (
	"context"
	"fmt"
	"math"

	"hira/internal/cache"
	"hira/internal/core"
	"hira/internal/cpu"
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/rowhammer"
	"hira/internal/sched"
	"hira/internal/workload"
)

// CPU clock ratio: 3.2 GHz cores against the DDR4-2400 command clock
// (1.2 GHz, tCK = 0.833 ns): cycles per memory tick.
const cpuCyclesPerTick = 3.2e9 * 0.833e-9

// maxSlotsPerTick bounds the per-tick instruction budget a core can
// receive: the integer part of the per-tick accrual plus the carried
// fraction.
var maxSlotsPerTick = int(math.Floor(4*cpuCyclesPerTick)) + 1

// LLCHitLatencyCycles approximates the shared-cache hit latency in CPU
// cycles (charged as a retirement delay through the completion path).
const llcHitLatencyCycles = 40

// defaultSPTCoverage is §7's pairable-subarray fraction, applied when
// Config.SPTCoverage is zero. simCellKey canonicalizes with the same
// constant so a cell's content key can never disagree with what
// NewSystem simulates.
const defaultSPTCoverage = 0.32

// Mitigation names for RefreshPolicy.Mitigation: the preventive
// mitigation zoo (internal/core). Empty means the HiRA-MC engine
// (baseline REF / HiRA / PARA per the mode fields).
const (
	MitigationGraphene = "graphene"
	MitigationRFM      = "rfm"
)

// RefreshPolicy names a refresh configuration under test.
type RefreshPolicy struct {
	// Name labels the configuration in reports ("Baseline", "HiRA-2"...).
	Name string `json:"name"`

	Periodic   core.PeriodicMode   `json:"periodic"`
	Preventive core.PreventiveMode `json:"preventive"`

	// SlackTRC is tRefSlack in units of tRC (the N of HiRA-N).
	SlackTRC int `json:"slack_trc"`

	// NRH is the RowHammer threshold PARA must defend; 0 disables PARA.
	NRH int `json:"nrh"`

	// Mitigation, when non-empty, replaces the HiRA-MC engine with a zoo
	// engine ("graphene" or "rfm"); the mode fields above are then unused.
	// Zoo-engine tracker state is not checkpointable, so cells running a
	// mitigation always simulate from tick zero.
	Mitigation string `json:"mitigation,omitempty"`
	// MitigationParam is the mitigation's size knob: the per-bank counter
	// count for Graphene, RAAIMT for RFM. 0 takes a default derived from
	// NRH (see buildEngine).
	MitigationParam int `json:"mitigation_param,omitempty"`
}

// NoRefreshPolicy is Fig. 9a's ideal upper bound.
func NoRefreshPolicy() RefreshPolicy {
	return RefreshPolicy{Name: "NoRefresh", Periodic: core.PeriodicNone}
}

// BaselinePolicy is the conventional rank-level REF configuration.
func BaselinePolicy() RefreshPolicy {
	return RefreshPolicy{Name: "Baseline", Periodic: core.PeriodicREF}
}

// HiRAPeriodicPolicy is HiRA-N for periodic refreshes (§8).
func HiRAPeriodicPolicy(n int) RefreshPolicy {
	return RefreshPolicy{
		Name:     fmt.Sprintf("HiRA-%d", n),
		Periodic: core.PeriodicHiRA,
		SlackTRC: n,
	}
}

// PARAPolicy is PARA without HiRA (§9.2's "PARA"): periodic REF plus
// immediate preventive refreshes.
func PARAPolicy(nrh int) RefreshPolicy {
	return RefreshPolicy{
		Name:       "PARA",
		Periodic:   core.PeriodicREF,
		Preventive: core.PreventiveImmediate,
		NRH:        nrh,
	}
}

// PARAHiRAPolicy is PARA with HiRA-N parallelization of preventive
// refreshes.
func PARAHiRAPolicy(nrh, n int) RefreshPolicy {
	return RefreshPolicy{
		Name:       fmt.Sprintf("HiRA-%d", n),
		Periodic:   core.PeriodicREF,
		Preventive: core.PreventiveHiRA,
		SlackTRC:   n,
		NRH:        nrh,
	}
}

// GraphenePolicy is the Graphene-style counter-table mitigation: per-bank
// Misra-Gries top-k activation counters tripping at NRH/4, victims
// refreshed by blocking row refreshes. counters 0 takes the default (16).
func GraphenePolicy(nrh, counters int) RefreshPolicy {
	return RefreshPolicy{
		Name:            "Graphene",
		NRH:             nrh,
		Mitigation:      MitigationGraphene,
		MitigationParam: counters,
	}
}

// RFMPolicy is the DDR5 RFM-style mitigation: per-bank activation
// budgets (RAA counters) with a single-entry majority-vote tracker.
// raaimt 0 takes the default (NRH/8, at least 2).
func RFMPolicy(nrh, raaimt int) RefreshPolicy {
	return RefreshPolicy{
		Name:            "RFM",
		NRH:             nrh,
		Mitigation:      MitigationRFM,
		MitigationParam: raaimt,
	}
}

// Config describes one simulated system.
type Config struct {
	Cores            int // Table 3: 8
	ChipCapacityGbit int // Table 3: sweeps 2-128
	Channels         int // Table 3: 1 (swept in §10)
	Ranks            int // Table 3: 1 (swept in §10)
	Policy           RefreshPolicy
	// SPTCoverage is the pairable-subarray fraction (§7: 0.32).
	SPTCoverage float64
	Seed        uint64
	// Forensics opts into the RowHammer forensics ledger (observational
	// only; the simulated trajectory is bit-identical either way).
	Forensics ForensicsOptions
}

// DefaultConfig returns Table 3's system.
func DefaultConfig() Config {
	return Config{
		Cores:            8,
		ChipCapacityGbit: 8,
		Channels:         1,
		Ranks:            1,
		Policy:           BaselinePolicy(),
		SPTCoverage:      0.32,
		Seed:             1,
	}
}

// Result reports one simulation run.
type Result struct {
	IPC             []float64 // per core, in CPU cycles
	WeightedSpeedup float64
	Sched           sched.Stats
	LLCHitRate      float64
	Ticks           int
	// Forensics carries the RowHammer forensics summary when
	// Config.Forensics enabled the ledger; nil otherwise.
	Forensics *ForensicsSummary
}

// wbRing buffers writebacks that found the write queue full, FIFO. It is
// a growable ring, so steady-state push/pop never allocates (the seed's
// wbQueue[1:] re-slice leaked its backing array's head and reallocated on
// every refill cycle).
type wbRing struct {
	buf  []sched.Request
	head int
	n    int
}

func (r *wbRing) push(req sched.Request) {
	if r.n == len(r.buf) {
		grown := make([]sched.Request, 2*r.n+8)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = req
	r.n++
}

func (r *wbRing) front() *sched.Request { return &r.buf[r.head] }

func (r *wbRing) pop() {
	r.buf[r.head] = sched.Request{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

func (r *wbRing) len() int { return r.n }

// System is a fully wired simulated machine.
type System struct {
	cfg    Config
	mix    workload.SourceMix
	org    dram.Org
	timing dram.Timing
	ctrl   *sched.Controller
	engine sched.RefreshEngine
	llc    *cache.Cache
	mapper *dram.MOPMapper
	cores  []*cpu.Core

	// instrBudget carries the fractional per-tick instruction budget.
	// Every core accrues identically (4 issue slots per CPU cycle), so a
	// single accumulator serves them all.
	instrBudget float64
	// blocked caches cores whose instruction window is full: their tick
	// reduces to stall accounting until a completion clears the flag.
	blocked  []bool
	ticksRun int
	wb       wbRing

	// idleMemo caches each core's last IdleTicks answer behind a dirty
	// flag, so the idle-window probe after a busy tick rescans only cores
	// whose issue state actually moved (a blocked core's stall accrual
	// does not). Cleared on issue, skip, and completion.
	idleMemo  []int
	idleDirty []bool

	// trajKeyMemo caches trajectoryKey(cfg, mix): both are fixed at
	// construction, and dense differential checkpoints would otherwise
	// re-render the key (several allocations) on every encode.
	trajKeyMemo string
}

// trajKey returns the system's trajectory key, rendering it on first use.
func (s *System) trajKey() string {
	if s.trajKeyMemo == "" {
		s.trajKeyMemo = trajectoryKey(s.cfg, s.mix)
	}
	return s.trajKeyMemo
}

// coreMemory adapts the system as each core's cpu.Memory.
type coreMemory struct {
	s    *System
	core int
}

// scaledRows scales a row count by (capacity/8Gb)^0.6, Expression 1's
// refresh-work exponent, rounding to a positive integer.
func scaledRows(base, capacityGbit int) int {
	n := int(float64(base)*math.Pow(float64(capacityGbit)/8, 0.6) + 0.5)
	if n < 64 {
		n = 64
	}
	return n
}

// OrgFor returns the DRAM organization a Config simulates, exactly as
// NewSystem builds it. Mapping-aware workload sources (the attacker
// sources) must be constructed against this organization to land their
// accesses on the intended rows.
func OrgFor(cfg Config) dram.Org {
	// The capacity sweep scales refresh work the way the paper's
	// Expression 1 scales it for the baseline: tRFC = 110·C^0.6, i.e.
	// the per-REF refresh work grows as C^0.6 (denser chips refresh more
	// subarrays in parallel internally). The equivalent row-granularity
	// work for HiRA-MC therefore also grows as C^0.6: rows per bank =
	// 64K x (C/8)^0.6 around Table 3's 8 Gb anchor. (Scaling rows
	// linearly with C would make any row-granularity refresh infeasible
	// under Table 3's own tFAW at 128 Gb, baseline REF included.)
	org := dram.DefaultOrg()
	org.ChipCapacityGbit = cfg.ChipCapacityGbit
	org.RowsPerSubarray = scaledRows(512, cfg.ChipCapacityGbit)
	org.Channels = cfg.Channels
	org.RanksPerChannel = cfg.Ranks
	return org
}

// buildEngine constructs the refresh engine a policy names: a zoo
// mitigation when Policy.Mitigation is set, the HiRA-MC engine otherwise.
func buildEngine(cfg Config, org dram.Org, timing dram.Timing) (sched.RefreshEngine, error) {
	switch cfg.Policy.Mitigation {
	case MitigationGraphene:
		counters := cfg.Policy.MitigationParam
		if counters == 0 {
			counters = 16
		}
		return core.NewGraphene(core.GrapheneConfig{
			Org: org, Timing: timing, NRH: cfg.Policy.NRH, Counters: counters,
		})
	case MitigationRFM:
		raaimt := cfg.Policy.MitigationParam
		if raaimt == 0 {
			raaimt = cfg.Policy.NRH / 8
			if raaimt < 2 {
				raaimt = 2
			}
		}
		return core.NewRFM(core.RFMConfig{Org: org, Timing: timing, RAAIMT: raaimt})
	case "":
	default:
		return nil, fmt.Errorf("sim: unknown mitigation %q", cfg.Policy.Mitigation)
	}
	ecfg := core.Config{
		Org:        org,
		Timing:     timing,
		Periodic:   cfg.Policy.Periodic,
		Preventive: cfg.Policy.Preventive,
		RefSlack:   dram.Time(cfg.Policy.SlackTRC) * timing.TRC,
		Seed:       cfg.Seed*2654435761 + 97,
	}
	if cfg.Policy.Periodic == core.PeriodicHiRA || cfg.Policy.Preventive == core.PreventiveHiRA {
		cov := cfg.SPTCoverage
		if cov == 0 {
			cov = defaultSPTCoverage
		}
		ecfg.SPT = core.NewSyntheticSPT(org.SubarraysPerBank, cov, 0xD1CE+cfg.Seed)
	}
	if cfg.Policy.NRH > 0 {
		pth, err := rowhammer.DefaultConfig().SolvePth(cfg.Policy.NRH,
			float64(cfg.Policy.SlackTRC), rowhammer.ReliabilityTarget)
		if err != nil {
			return nil, err
		}
		ecfg.Pth = pth
	}
	return core.New(ecfg)
}

// NewSystem builds the system for a mix of per-core workload sources
// (builtin or custom profiles, recorded traces — anything implementing
// workload.Source).
func NewSystem(cfg Config, mix workload.SourceMix) (*System, error) {
	if len(mix.Sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: mix has %d workloads for %d cores", len(mix.Sources), cfg.Cores)
	}
	org := OrgFor(cfg)
	timing := dram.DDR4_2400(cfg.ChipCapacityGbit)

	engine, err := buildEngine(cfg, org, timing)
	if err != nil {
		return nil, err
	}
	ctrl, err := sched.NewController(sched.Config{Org: org, Timing: timing}, engine)
	if err != nil {
		return nil, err
	}
	if cfg.Forensics.Enabled {
		thresholds, hot := forensicsThresholds(cfg.Policy.NRH)
		ctrl.EnableForensics(sched.ForensicsConfig{
			Thresholds:   thresholds,
			HotThreshold: hot,
			Recorder:     cfg.Forensics.Recorder,
		})
	}

	s := &System{
		cfg:       cfg,
		mix:       mix,
		org:       org,
		timing:    timing,
		ctrl:      ctrl,
		engine:    engine,
		llc:       cache.MustNew(8<<20, 8, 64),
		mapper:    dram.NewMOPMapper(org),
		blocked:   make([]bool, cfg.Cores),
		idleMemo:  make([]int, cfg.Cores),
		idleDirty: make([]bool, cfg.Cores),
	}
	for i := range s.idleDirty {
		s.idleDirty[i] = true
	}
	for i := 0; i < cfg.Cores; i++ {
		gen := mix.Sources[i].Stream(aloneSeed(cfg.Seed, i))
		c := cpu.New(i, gen, &coreMemory{s: s, core: i})
		s.cores = append(s.cores, c)
	}
	ctrl.OnComplete = func(coreID int, token uint64, at dram.Time) {
		s.complete(coreID, token)
	}
	return s, nil
}

// complete delivers a load completion and lets the core's next tick
// re-evaluate its window state.
func (s *System) complete(core int, token uint64) {
	s.cores[core].Complete(token)
	s.blocked[core] = false
	s.idleDirty[core] = true
}

// Controller exposes the memory controller (for inspection).
func (s *System) Controller() *sched.Controller { return s.ctrl }

// Issue implements cpu.Memory for one core.
func (m *coreMemory) Issue(req cpu.MemRequest) bool {
	s := m.s
	res := s.llc.Access(req.Addr, req.Write)
	if res.Hit {
		if !req.Write {
			// LLC hit: data arrives after the hit latency; the model
			// completes it immediately and charges the latency as
			// already-overlapped (dominant effects are DRAM-side).
			s.complete(m.core, req.Token)
		}
		return true
	}
	if res.WB {
		wb := sched.Request{Loc: s.mapper.Map(res.Writeback), Write: true, Core: m.core}
		if !s.ctrl.Enqueue(wb) {
			s.wb.push(wb)
		}
	}
	loc := s.mapper.Map(req.Addr)
	return s.ctrl.Enqueue(sched.Request{Loc: loc, Write: req.Write, Core: m.core, Token: req.Token})
}

// Tick advances the whole system one memory command clock.
func (s *System) Tick() {
	// Retry buffered writebacks.
	for s.wb.len() > 0 {
		if !s.ctrl.Enqueue(*s.wb.front()) {
			break
		}
		s.wb.pop()
	}
	s.instrBudget += 4 * cpuCyclesPerTick
	whole := int(s.instrBudget)
	if whole > 0 {
		s.instrBudget -= float64(whole)
		budget := float64(whole)
		for i, c := range s.cores {
			if s.blocked[i] {
				// A full window only stalls until a completion clears
				// the flag; this is exactly what Tick would do — and it
				// leaves the core's idle horizon untouched, so the memo
				// stays valid.
				c.StallCycles += budget
				continue
			}
			c.Tick(budget)
			s.blocked[i] = c.Blocked()
			s.idleDirty[i] = true
		}
	}
	s.ctrl.Tick()
	s.ticksRun++
}

// idleTicks returns how many upcoming ticks are provably inert, capped at
// max: the controller has no event before its cached horizon, and every
// core is window-blocked or deep enough in a non-memory gap that it
// cannot issue a request within the window. Buffered writebacks imply a
// full write queue, which cannot drain while no command issues, so they
// do not shorten the window.
func (s *System) idleTicks(max int) int {
	until := s.ctrl.IdleUntil()
	now := s.ctrl.Now()
	if until <= now {
		return 0
	}
	k := max
	if until < dram.MaxTime() {
		tck := s.timing.TCK
		if w := int((until - now + tck - 1) / tck); w < k {
			k = w
		}
	}
	for i, c := range s.cores {
		h := s.idleMemo[i]
		if s.idleDirty[i] {
			h = c.IdleTicks(maxSlotsPerTick)
			s.idleMemo[i] = h
			s.idleDirty[i] = false
		}
		if h < k {
			k = h
		}
		if k <= 0 {
			return 0
		}
	}
	return k
}

// fastForward replays k inert ticks: per-core instruction budgets accrue
// and are consumed exactly as Tick would (stall accounting included), and
// the controller's clock and per-tick counters advance without running
// the scheduler. The result is bit-identical to calling Tick k times.
func (s *System) fastForward(k int) {
	b := s.instrBudget
	for j := 0; j < k; j++ {
		b += 4 * cpuCyclesPerTick
		if whole := int(b); whole > 0 {
			b -= float64(whole)
			for _, c := range s.cores {
				c.Skip(whole)
			}
		}
	}
	s.instrBudget = b
	for i := range s.idleDirty {
		// A blocked core's Skip only accrues stall cycles; its idle
		// horizon (unbounded until a completion) is unchanged.
		if !s.blocked[i] {
			s.idleDirty[i] = true
		}
	}
	s.ctrl.SkipTicks(k)
	s.ticksRun += k
}

// ctxCheckTicks is how many simulated ticks may elapse between context
// polls in the run loops (a power of two so the alone loop can mask).
// At DDR4-2400 tick rates this bounds cancellation latency to a few
// microseconds of simulated time — milliseconds of wall clock at worst —
// while keeping the poll off the per-tick hot path.
const ctxCheckTicks = 4096

// runTicks advances n ticks, fast-forwarding through idle windows and
// polling ctx every ctxCheckTicks ticks so a cancelled run stops
// promptly instead of simulating to completion.
func (s *System) runTicks(ctx context.Context, n int) error {
	check := 0
	for done := 0; done < n; {
		if check <= 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			check = ctxCheckTicks
		}
		s.Tick()
		done++
		check--
		if done >= n {
			return nil
		}
		if k := s.idleTicks(n - done); k > 0 {
			s.fastForward(k)
			done += k
			check -= k
		}
	}
	return nil
}

// Ticks reports how many command-clock ticks the system has simulated
// since construction (or since the tick its restoring snapshot was taken
// at).
func (s *System) Ticks() int { return s.ticksRun }

// RunTo advances the system to the absolute tick target (Ticks() ==
// target afterwards), fast-forwarding idle windows and honoring ctx. It
// is the primitive beneath Run and the checkpointing cell runner: a
// system restored from a snapshot at tick T continues with RunTo exactly
// where the snapshotted run left off.
func (s *System) RunTo(ctx context.Context, target int) error {
	if target < s.ticksRun {
		return fmt.Errorf("sim: cannot run to tick %d, already at %d", target, s.ticksRun)
	}
	return s.runTicks(ctx, target-s.ticksRun)
}

// runMark captures the cumulative counters at a phase boundary, so the
// measured phase's stats and IPC can be computed as differences of
// cumulative state. Keeping the machine's trajectory free of in-run
// resets is what lets a snapshot taken at any tick serve runs with any
// warmup/measure split.
type runMark struct {
	sched     sched.Stats
	forensics sched.ForensicsTally
	retired   []uint64
}

// mark records the counters at the current tick.
func (s *System) mark() runMark {
	m := runMark{sched: s.ctrl.Stats, forensics: s.ctrl.ForensicsTallyNow(),
		retired: make([]uint64, len(s.cores))}
	for i, c := range s.cores {
		m.retired[i] = c.Retired
	}
	return m
}

// zeroMark is the mark of a freshly built system (tick 0).
func zeroMark(cores int) runMark {
	return runMark{retired: make([]uint64, cores)}
}

// resultSince assembles the measured-phase result from the counters
// accumulated since m, over measure ticks. All counters are monotone and
// additive, so the difference is bit-identical to what resetting them at
// the mark would have measured.
func (s *System) resultSince(m runMark, measure int) Result {
	res := Result{Ticks: measure, Sched: s.ctrl.Stats.Sub(m.sched), LLCHitRate: s.llc.HitRate()}
	cycles := float64(measure) * cpuCyclesPerTick
	for i, c := range s.cores {
		res.IPC = append(res.IPC, float64(c.Retired-m.retired[i])/cycles)
	}
	if rep, ok := s.ctrl.ForensicsReport(); ok {
		res.Forensics = &ForensicsSummary{
			Thresholds:        rep.Thresholds,
			HotThreshold:      rep.HotThreshold,
			MaxInterrefACTs:   rep.MaxInterrefACTs,
			MaxVictimExposure: rep.MaxVictimExposure,
			Tally:             rep.Tally.Sub(m.forensics),
			Events:            rep.Events,
			DroppedEvents:     rep.DroppedEvents,
		}
	}
	return res
}

// Run executes warmup then measure ticks and returns the measured-phase
// result. IPCAlone (same order as cores) feeds the weighted speedup; pass
// nil to skip it.
func (s *System) Run(warmup, measure int, ipcAlone []float64) Result {
	res, _ := s.RunContext(context.Background(), warmup, measure, ipcAlone)
	return res
}

// RunContext is Run honoring cancellation: once ctx is cancelled the
// simulation stops within ctxCheckTicks ticks and returns ctx.Err(). A
// cancelled system is mid-simulation and must not be reused.
func (s *System) RunContext(ctx context.Context, warmup, measure int, ipcAlone []float64) (Result, error) {
	if err := s.runTicks(ctx, warmup); err != nil {
		return Result{}, err
	}
	m := s.mark()
	if err := s.runTicks(ctx, measure); err != nil {
		return Result{}, err
	}
	res := s.resultSince(m, measure)
	if ipcAlone != nil {
		res.WeightedSpeedup = metrics.WeightedSpeedup(res.IPC, ipcAlone)
	}
	return res, nil
}
