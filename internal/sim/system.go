// Package sim wires the full simulated system of §7 — multicore front end
// (internal/cpu), shared LLC (internal/cache), memory request scheduler
// (internal/sched) with a refresh engine (internal/core), and synthetic
// SPEC CPU2006 workloads (internal/workload) — and implements the
// parameter sweeps behind every performance figure of the paper
// (Figs. 9 and 12-16).
package sim

import (
	"fmt"
	"math"

	"hira/internal/cache"
	"hira/internal/core"
	"hira/internal/cpu"
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/rowhammer"
	"hira/internal/sched"
	"hira/internal/workload"
)

// CPU clock ratio: 3.2 GHz cores against the DDR4-2400 command clock
// (1.2 GHz, tCK = 0.833 ns): cycles per memory tick.
const cpuCyclesPerTick = 3.2e9 * 0.833e-9

// LLCHitLatencyCycles approximates the shared-cache hit latency in CPU
// cycles (charged as a retirement delay through the completion path).
const llcHitLatencyCycles = 40

// defaultSPTCoverage is §7's pairable-subarray fraction, applied when
// Config.SPTCoverage is zero. simCellKey canonicalizes with the same
// constant so a cell's content key can never disagree with what
// NewSystem simulates.
const defaultSPTCoverage = 0.32

// RefreshPolicy names a refresh configuration under test.
type RefreshPolicy struct {
	// Name labels the configuration in reports ("Baseline", "HiRA-2"...).
	Name string

	Periodic   core.PeriodicMode
	Preventive core.PreventiveMode

	// SlackTRC is tRefSlack in units of tRC (the N of HiRA-N).
	SlackTRC int

	// NRH is the RowHammer threshold PARA must defend; 0 disables PARA.
	NRH int
}

// NoRefreshPolicy is Fig. 9a's ideal upper bound.
func NoRefreshPolicy() RefreshPolicy {
	return RefreshPolicy{Name: "NoRefresh", Periodic: core.PeriodicNone}
}

// BaselinePolicy is the conventional rank-level REF configuration.
func BaselinePolicy() RefreshPolicy {
	return RefreshPolicy{Name: "Baseline", Periodic: core.PeriodicREF}
}

// HiRAPeriodicPolicy is HiRA-N for periodic refreshes (§8).
func HiRAPeriodicPolicy(n int) RefreshPolicy {
	return RefreshPolicy{
		Name:     fmt.Sprintf("HiRA-%d", n),
		Periodic: core.PeriodicHiRA,
		SlackTRC: n,
	}
}

// PARAPolicy is PARA without HiRA (§9.2's "PARA"): periodic REF plus
// immediate preventive refreshes.
func PARAPolicy(nrh int) RefreshPolicy {
	return RefreshPolicy{
		Name:       "PARA",
		Periodic:   core.PeriodicREF,
		Preventive: core.PreventiveImmediate,
		NRH:        nrh,
	}
}

// PARAHiRAPolicy is PARA with HiRA-N parallelization of preventive
// refreshes.
func PARAHiRAPolicy(nrh, n int) RefreshPolicy {
	return RefreshPolicy{
		Name:       fmt.Sprintf("HiRA-%d", n),
		Periodic:   core.PeriodicREF,
		Preventive: core.PreventiveHiRA,
		SlackTRC:   n,
		NRH:        nrh,
	}
}

// Config describes one simulated system.
type Config struct {
	Cores            int // Table 3: 8
	ChipCapacityGbit int // Table 3: sweeps 2-128
	Channels         int // Table 3: 1 (swept in §10)
	Ranks            int // Table 3: 1 (swept in §10)
	Policy           RefreshPolicy
	// SPTCoverage is the pairable-subarray fraction (§7: 0.32).
	SPTCoverage float64
	Seed        uint64
}

// DefaultConfig returns Table 3's system.
func DefaultConfig() Config {
	return Config{
		Cores:            8,
		ChipCapacityGbit: 8,
		Channels:         1,
		Ranks:            1,
		Policy:           BaselinePolicy(),
		SPTCoverage:      0.32,
		Seed:             1,
	}
}

// Result reports one simulation run.
type Result struct {
	IPC             []float64 // per core, in CPU cycles
	WeightedSpeedup float64
	Sched           sched.Stats
	LLCHitRate      float64
	Ticks           int
}

// System is a fully wired simulated machine.
type System struct {
	cfg    Config
	org    dram.Org
	timing dram.Timing
	ctrl   *sched.Controller
	engine *core.HiRAMC
	llc    *cache.Cache
	mapper *dram.MOPMapper
	cores  []*cpu.Core

	// pending completions for LLC hits: token -> completion tick.
	instrBudget []float64
	retiredAt   []uint64 // retirement snapshot after warmup
	ticksRun    int
	wbQueue     []sched.Request
}

// coreMemory adapts the system as each core's cpu.Memory.
type coreMemory struct {
	s    *System
	core int
}

// scaledRows scales a row count by (capacity/8Gb)^0.6, Expression 1's
// refresh-work exponent, rounding to a positive integer.
func scaledRows(base, capacityGbit int) int {
	n := int(float64(base)*math.Pow(float64(capacityGbit)/8, 0.6) + 0.5)
	if n < 64 {
		n = 64
	}
	return n
}

// NewSystem builds the system for a mix of per-core workloads.
func NewSystem(cfg Config, mix workload.Mix) (*System, error) {
	if len(mix.Profiles) != cfg.Cores {
		return nil, fmt.Errorf("sim: mix has %d profiles for %d cores", len(mix.Profiles), cfg.Cores)
	}
	// The capacity sweep scales refresh work the way the paper's
	// Expression 1 scales it for the baseline: tRFC = 110·C^0.6, i.e.
	// the per-REF refresh work grows as C^0.6 (denser chips refresh more
	// subarrays in parallel internally). The equivalent row-granularity
	// work for HiRA-MC therefore also grows as C^0.6: rows per bank =
	// 64K x (C/8)^0.6 around Table 3's 8 Gb anchor. (Scaling rows
	// linearly with C would make any row-granularity refresh infeasible
	// under Table 3's own tFAW at 128 Gb, baseline REF included.)
	org := dram.DefaultOrg()
	org.ChipCapacityGbit = cfg.ChipCapacityGbit
	org.RowsPerSubarray = scaledRows(512, cfg.ChipCapacityGbit)
	org.Channels = cfg.Channels
	org.RanksPerChannel = cfg.Ranks
	timing := dram.DDR4_2400(cfg.ChipCapacityGbit)

	ecfg := core.Config{
		Org:        org,
		Timing:     timing,
		Periodic:   cfg.Policy.Periodic,
		Preventive: cfg.Policy.Preventive,
		RefSlack:   dram.Time(cfg.Policy.SlackTRC) * timing.TRC,
		Seed:       cfg.Seed*2654435761 + 97,
	}
	if cfg.Policy.Periodic == core.PeriodicHiRA || cfg.Policy.Preventive == core.PreventiveHiRA {
		cov := cfg.SPTCoverage
		if cov == 0 {
			cov = defaultSPTCoverage
		}
		ecfg.SPT = core.NewSyntheticSPT(org.SubarraysPerBank, cov, 0xD1CE+cfg.Seed)
	}
	if cfg.Policy.NRH > 0 {
		pth, err := rowhammer.DefaultConfig().SolvePth(cfg.Policy.NRH,
			float64(cfg.Policy.SlackTRC), rowhammer.ReliabilityTarget)
		if err != nil {
			return nil, err
		}
		ecfg.Pth = pth
	}
	engine, err := core.New(ecfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := sched.NewController(sched.Config{Org: org, Timing: timing}, engine)
	if err != nil {
		return nil, err
	}

	s := &System{
		cfg:         cfg,
		org:         org,
		timing:      timing,
		ctrl:        ctrl,
		engine:      engine,
		llc:         cache.MustNew(8<<20, 8, 64),
		mapper:      dram.NewMOPMapper(org),
		instrBudget: make([]float64, cfg.Cores),
		retiredAt:   make([]uint64, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		gen := workload.NewGenerator(mix.Profiles[i], aloneSeed(cfg.Seed, i))
		c := cpu.New(i, gen, &coreMemory{s: s, core: i})
		s.cores = append(s.cores, c)
	}
	ctrl.OnComplete = func(coreID int, token uint64, at dram.Time) {
		s.cores[coreID].Complete(token)
	}
	return s, nil
}

// Controller exposes the memory controller (for inspection).
func (s *System) Controller() *sched.Controller { return s.ctrl }

// Issue implements cpu.Memory for one core.
func (m *coreMemory) Issue(req cpu.MemRequest) bool {
	s := m.s
	res := s.llc.Access(req.Addr, req.Write)
	if res.Hit {
		if !req.Write {
			// LLC hit: data arrives after the hit latency; the model
			// completes it immediately and charges the latency as
			// already-overlapped (dominant effects are DRAM-side).
			s.cores[m.core].Complete(req.Token)
		}
		return true
	}
	if res.WB {
		wb := sched.Request{Loc: s.mapper.Map(res.Writeback), Write: true, Core: m.core}
		if !s.ctrl.Enqueue(wb) {
			s.wbQueue = append(s.wbQueue, wb)
		}
	}
	loc := s.mapper.Map(req.Addr)
	ok := s.ctrl.Enqueue(sched.Request{Loc: loc, Write: req.Write, Core: m.core, Token: req.Token})
	if ok && req.Write {
		return true
	}
	if ok && !req.Write {
		return true
	}
	return false
}

// Tick advances the whole system one memory command clock.
func (s *System) Tick() {
	// Retry buffered writebacks.
	for len(s.wbQueue) > 0 {
		if !s.ctrl.Enqueue(s.wbQueue[0]) {
			break
		}
		s.wbQueue = s.wbQueue[1:]
	}
	for i, c := range s.cores {
		s.instrBudget[i] += 4 * cpuCyclesPerTick
		whole := int(s.instrBudget[i])
		if whole > 0 {
			c.Tick(float64(whole))
			s.instrBudget[i] -= float64(whole)
		}
	}
	s.ctrl.Tick()
	s.ticksRun++
}

// Run executes warmup then measure ticks and returns the measured-phase
// result. IPCAlone (same order as cores) feeds the weighted speedup; pass
// nil to skip it.
func (s *System) Run(warmup, measure int, ipcAlone []float64) Result {
	for i := 0; i < warmup; i++ {
		s.Tick()
	}
	for i := range s.cores {
		s.retiredAt[i] = s.cores[i].Retired
	}
	s.ctrl.Stats = sched.Stats{}
	for i := 0; i < measure; i++ {
		s.Tick()
	}
	res := Result{Ticks: measure, Sched: s.ctrl.Stats, LLCHitRate: s.llc.HitRate()}
	cycles := float64(measure) * cpuCyclesPerTick
	for i, c := range s.cores {
		res.IPC = append(res.IPC, float64(c.Retired-s.retiredAt[i])/cycles)
	}
	if ipcAlone != nil {
		res.WeightedSpeedup = metrics.WeightedSpeedup(res.IPC, ipcAlone)
	}
	return res
}
