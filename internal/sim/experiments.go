package sim

import (
	"context"
	"fmt"
	"strings"

	"hira/internal/cache"
	"hira/internal/cpu"
	"hira/internal/dram"
	"hira/internal/engine"
	"hira/internal/fault"
	"hira/internal/metrics"
	"hira/internal/telemetry"
	"hira/internal/workload"
)

// aloneMemory is the fixed-latency ideal memory used to compute per-trace
// alone-IPC references for weighted speedup. Using one config-independent
// reference keeps weighted-speedup ratios between configurations
// meaningful while avoiding a quadratic number of alone simulations.
type aloneMemory struct {
	latencyTicks int
	inflight     []aloneReq
	llc          *cache.Cache
	c            *cpu.Core
}

type aloneReq struct {
	token uint64
	left  int
}

func (m *aloneMemory) Issue(req cpu.MemRequest) bool {
	if m.llc.Access(req.Addr, req.Write).Hit || req.Write {
		if !req.Write {
			m.c.Complete(req.Token)
		}
		return true
	}
	m.inflight = append(m.inflight, aloneReq{token: req.Token, left: m.latencyTicks})
	return true
}

func (m *aloneMemory) step() {
	kept := m.inflight[:0]
	for _, r := range m.inflight {
		r.left--
		if r.left <= 0 {
			m.c.Complete(r.token)
		} else {
			kept = append(kept, r)
		}
	}
	m.inflight = kept
}

// AloneIPC computes a benchmark's IPC on an unloaded fixed-latency memory
// (~60ns, an idle DRAM read round trip). Results are deterministic per
// (profile, seed).
func AloneIPC(p workload.Profile, seed uint64, ticks int) float64 {
	ipc, _ := AloneIPCContext(context.Background(), p, seed, ticks)
	return ipc
}

// AloneIPCContext is AloneIPC honoring cancellation: it polls ctx every
// few thousand ticks and returns ctx.Err() once cancelled.
func AloneIPCContext(ctx context.Context, p workload.Profile, seed uint64, ticks int) (float64, error) {
	return AloneIPCSourceContext(ctx, p, seed, ticks)
}

// AloneIPCSourceContext computes the alone-IPC reference for any
// workload source (profile or trace) on the unloaded fixed-latency
// memory.
func AloneIPCSourceContext(ctx context.Context, src workload.Source, seed uint64, ticks int) (float64, error) {
	a := newAloneRun(src, seed)
	if err := a.RunTo(ctx, ticks); err != nil {
		return 0, err
	}
	return a.ipc(), nil
}

// aloneRun is the alone-IPC reference machine: one core on an unloaded
// fixed-latency memory. Like System it advances in ticks and supports
// bit-identical Snapshot/restore, so alone reference cells are just as
// prefix-cached as full-system cells.
type aloneRun struct {
	mem    *aloneMemory
	c      *cpu.Core
	budget float64
	tick   int
	key    string // alone trajectory key, embedded in snapshots
}

func newAloneRun(src workload.Source, seed uint64) *aloneRun {
	mem := &aloneMemory{latencyTicks: 72, llc: cache.MustNew(8<<20, 8, 64)}
	c := cpu.New(0, src.Stream(seed), mem)
	mem.c = c
	return &aloneRun{mem: mem, c: c, key: aloneTrajectoryKey(src, seed)}
}

// Ticks reports the absolute tick the run has reached.
func (a *aloneRun) Ticks() int { return a.tick }

// RunTo advances to the absolute tick target, polling ctx.
func (a *aloneRun) RunTo(ctx context.Context, target int) error {
	for ; a.tick < target; a.tick++ {
		if a.tick&(ctxCheckTicks-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a.budget += 4 * cpuCyclesPerTick
		if whole := int(a.budget); whole > 0 {
			a.c.Tick(float64(whole))
			a.budget -= float64(whole)
		}
		a.mem.step()
	}
	return nil
}

// ipc reports the cumulative IPC at the current tick (the alone cell's
// result; cumulative, so it is independent of how the run was split).
func (a *aloneRun) ipc() float64 {
	return a.c.IPC(float64(a.tick) * cpuCyclesPerTick)
}

// aloneSeed derives the deterministic per-core workload seed used both by
// NewSystem's shared-run generators and the alone-IPC reference cells, so
// the two drive identical workload streams.
func aloneSeed(baseSeed uint64, core int) uint64 {
	return baseSeed*1000003 + uint64(core)*7919 + 11
}

// aloneRefSeed is aloneSeed canonicalized for seed-invariant sources:
// a trace replays identically on every core, so keying its alone cell
// by the per-core seed would simulate and store one identical cell per
// core it appears on.
func aloneRefSeed(src workload.Source, baseSeed uint64, core int) uint64 {
	if si, ok := src.(workload.SeedInvariant); ok && si.SeedInvariant() {
		return 0
	}
	return aloneSeed(baseSeed, core)
}

// Options sizes an experiment sweep. The paper runs 125 mixes of 200M
// instructions; defaults here are laptop-scale and flag-adjustable in
// cmd/hira-sim.
type Options struct {
	Workloads int // number of multiprogrammed mixes (default 4)
	Cores     int // cores per mix (default 8)
	Warmup    int // warmup memory ticks (default 30000)
	Measure   int // measured memory ticks (default 120000)
	Seed      uint64

	// Mixes, when non-nil, is the explicit workload set the sweep runs —
	// custom profiles, recorded traces, or any workload.Source per core —
	// instead of Workloads builtin SPEC mixes drawn from Seed. Every mix
	// must have exactly Cores sources; Workloads is ignored (it reports
	// as len(Mixes) after WithDefaults).
	Mixes []workload.SourceMix

	// Parallelism bounds the experiment engine's worker pool; 0 means
	// one worker per CPU core. Results are bit-identical at any setting
	// because every cell seeds from its own content. Ignored when the
	// sweep runs on a shared Engine, whose construction fixed the bound.
	Parallelism int
	// ResultDir, when non-empty, persists per-cell JSON results keyed by
	// cell hash, so re-running a sweep after a crash or with one new
	// policy only simulates the delta. Ignored on a shared Engine.
	ResultDir string
	// SnapInterval, when positive, checkpoints every simulation cell's
	// machine state each SnapInterval ticks (plus at the warmup boundary
	// and the final tick), and resumes cells from the longest usable
	// checkpoint — so rerunning a sweep with longer horizons simulates
	// only the delta. Checkpoints live alongside ResultDir's cells (or in
	// memory without one). Results are bit-identical at any setting.
	// Ignored on a shared Engine.
	SnapInterval int
	// SnapMaxBytes caps the checkpoint store; <= 0 means 2 GiB on disk
	// (256 MiB in memory). The least-recently-used checkpoints are
	// evicted first. Ignored on a shared Engine.
	SnapMaxBytes int64
	// Progress, when set, is called as a batch's cells resolve.
	Progress func(done, total int)
	// ProgressStats, when set, supersedes Progress: it additionally
	// receives a snapshot of the batch's resolution tally so far, so
	// callers (e.g. the service's SSE progress events) can stream
	// cache-hit and resumed-tick counts mid-sweep.
	ProgressStats func(done, total int, batch EngineStats)
	// Stats, when set, accumulates the engine's resolution tallies
	// (simulated vs cache/store hits) across the sweep.
	Stats *EngineStats

	// NoPlanner disables the engine's trajectory-coalescing sweep
	// planner for this sweep, resolving every cell individually.
	// Results are bit-identical either way; this is an escape hatch for
	// debugging and for measuring the planner's savings.
	NoPlanner bool

	// Forensics runs every simulation cell with the RowHammer forensics
	// ledger enabled and attaches per-policy forensics summaries to the
	// results. Purely observational (figures are bit-identical), but
	// forensics cells are keyed separately and never resume from
	// checkpoints, so warm plain-cell stores do not serve them.
	Forensics bool
	// ForensicsRecorder additionally arms the DRAM command flight
	// recorder (implies nothing without Forensics).
	ForensicsRecorder bool
}

// WithDefaults returns o with zero fields replaced by the laptop-scale
// defaults, so callers (e.g. the service's cost estimator) can see the
// effective sweep size before running it.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Mixes != nil {
		o.Workloads = len(o.Mixes)
	}
	if o.Workloads == 0 {
		o.Workloads = 4
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 30000
	}
	if o.Measure == 0 {
		o.Measure = 120000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Engine is a shared experiment engine: every sweep run through one
// Engine shares its in-memory cell cache, its on-disk result store, its
// compute bound, and its in-flight computations, so concurrent callers
// (e.g. service clients) asking overlapping questions trigger each
// simulation exactly once. Safe for concurrent use.
type Engine struct {
	eng          *experimentEngine
	snaps        *engine.SnapStore
	snapInterval int
	sim          *simMetrics
}

// EngineConfig sizes a shared Engine.
type EngineConfig struct {
	// Parallelism bounds how many cells compute at once across all
	// concurrent sweeps; 0 means one per CPU core.
	Parallelism int
	// ResultDir, when non-empty, is the content-addressed result store.
	ResultDir string
	// SnapInterval, when positive, enables resumable simulation cells:
	// each cell's machine state is checkpointed every SnapInterval ticks
	// (plus at the warmup boundary and the final tick) into a bounded
	// store sharing ResultDir's sharded layout (in-memory without a
	// ResultDir), and cells resume from the longest usable checkpoint at
	// or below their horizon. Results are bit-identical either way.
	SnapInterval int
	// SnapMaxBytes caps the checkpoint store's payload bytes; <= 0 means
	// 2 GiB on disk (256 MiB in memory). Least-recently-used checkpoints
	// are evicted first.
	SnapMaxBytes int64
	// Telemetry, when non-nil, is the metrics registry the engine
	// instruments itself on: cell resolution counters, per-cell wall-time
	// histograms, snapshot-store economics, and coarse scheduler
	// aggregates. Nil disables instrumentation at one branch per site.
	Telemetry *telemetry.Registry
	// FS, when non-nil, routes result- and checkpoint-store file I/O
	// through a fault-injection seam (see internal/fault) — armed by
	// chaos tests and hira-server's -faults flag, nil everywhere else.
	FS fault.FS
	// NoPlanner disables the trajectory-coalescing sweep planner for
	// every sweep run on this engine (per-sweep opt-outs use
	// Options.NoPlanner). Results are bit-identical either way.
	NoPlanner bool
}

// NewEngine builds a shared experiment engine.
func NewEngine(cfg EngineConfig) *Engine {
	opts := engine.Options{
		Parallelism: cfg.Parallelism,
		ResultDir:   cfg.ResultDir,
		FS:          cfg.FS,
		NoPlanner:   cfg.NoPlanner,
	}
	if cfg.Telemetry != nil {
		opts.Metrics = engine.NewMetrics(cfg.Telemetry)
	}
	e := &Engine{
		eng:          engine.New[CellResult](opts),
		snapInterval: cfg.SnapInterval,
		sim:          newSimMetrics(cfg.Telemetry),
	}
	if cfg.SnapInterval > 0 {
		e.snaps = engine.NewSnapStoreFS(cfg.ResultDir, cfg.SnapMaxBytes, cfg.FS)
	}
	if cfg.Telemetry != nil {
		engine.RegisterStatsFuncs(cfg.Telemetry, e.eng.Stats)
		if e.snaps != nil {
			engine.RegisterSnapStoreFuncs(cfg.Telemetry, e.snaps.Stats)
		}
	}
	return e
}

// Degraded reports whether either backing store has fallen off its
// configured durable path: the result store into cache-only mode, or the
// checkpoint store into in-memory mode. The returned reason names the
// store(s); ok is false when both are healthy.
func (e *Engine) Degraded() (string, bool) {
	var reasons []string
	if why, bad := e.eng.StoreDegraded(); bad {
		reasons = append(reasons, "result store: "+why)
	}
	if e.snaps != nil {
		if why, bad := e.snaps.Degraded(); bad {
			reasons = append(reasons, "checkpoint store: "+why)
		}
	}
	return strings.Join(reasons, "; "), len(reasons) > 0
}

// SnapshotStats reports the checkpoint store's tallies; ok is false when
// checkpointing is disabled.
func (e *Engine) SnapshotStats() (engine.SnapStats, bool) {
	if e.snaps == nil {
		return engine.SnapStats{}, false
	}
	return e.snaps.Stats(), true
}

// Stats returns the engine's lifetime resolution tallies across every
// sweep run on it.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// StoredCells reports how many cell results the on-disk store indexes.
func (e *Engine) StoredCells() int { return e.eng.StoredCells() }

// Parallelism reports the engine-wide compute bound.
func (e *Engine) Parallelism() int { return e.eng.Parallelism() }

// newSweepEngine builds the single-sweep engine the one-shot entry
// points use when no shared Engine is supplied.
func newSweepEngine(opts Options) *Engine {
	return NewEngine(EngineConfig{
		Parallelism:  opts.Parallelism,
		ResultDir:    opts.ResultDir,
		SnapInterval: opts.SnapInterval,
		SnapMaxBytes: opts.SnapMaxBytes,
	})
}

// PolicyScore is the average weighted speedup of one policy under one
// system shape.
type PolicyScore struct {
	Policy RefreshPolicy `json:"policy"`
	// WS is the mean weighted speedup across mixes.
	WS float64 `json:"ws"`
	// Sched aggregates controller stats across mixes.
	Sched SchedAggregate `json:"sched"`
	// Forensics aggregates the RowHammer forensics summaries across
	// mixes (tallies summed, maxes maxed); nil unless the sweep ran
	// with Options.Forensics.
	Forensics *ForensicsSummary `json:"forensics,omitempty"`
}

// SchedAggregate sums selected controller statistics across runs.
type SchedAggregate struct {
	HiRAPiggybacks      uint64 `json:"hira_piggybacks"`
	HiRAPairs           uint64 `json:"hira_pairs"`
	StandaloneRefreshes uint64 `json:"standalone_refreshes"`
	REFs                uint64 `json:"refs"`
	SeqBlocked          uint64 `json:"seq_blocked"`
	CanACTBlocked       uint64 `json:"can_act_blocked"`
}

// RunPolicies evaluates each policy on the same mixes and returns average
// weighted speedups. Cells run on a fresh single-sweep engine; use
// Engine.RunPolicies to share cells (and a result store) across calls.
func RunPolicies(ctx context.Context, base Config, policies []RefreshPolicy, opts Options) ([]PolicyScore, error) {
	return newSweepEngine(opts).RunPolicies(ctx, base, policies, opts)
}

// RunPolicies evaluates each policy on the same mixes on the shared
// engine.
func (e *Engine) RunPolicies(ctx context.Context, base Config, policies []RefreshPolicy, opts Options) ([]PolicyScore, error) {
	return runPolicies(ctx, e, base, policies, opts.withDefaults())
}

// sourceMixes returns the workload set a sweep runs: opts.Mixes when the
// caller supplied explicit sources, else Workloads builtin SPEC mixes
// drawn deterministically from Seed. opts must already have defaults
// applied.
func (o Options) sourceMixes() ([]workload.SourceMix, error) {
	if o.Mixes == nil {
		if o.Workloads < 1 || o.Cores < 1 {
			return nil, fmt.Errorf("sim: %d workloads x %d cores is not a sweep", o.Workloads, o.Cores)
		}
		ms := workload.Mixes(o.Workloads, o.Cores, o.Seed)
		out := make([]workload.SourceMix, len(ms))
		for i := range ms {
			out[i] = ms[i].Sources()
		}
		return out, nil
	}
	if len(o.Mixes) == 0 {
		return nil, fmt.Errorf("sim: options.Mixes is empty; nil means builtin mixes")
	}
	for _, m := range o.Mixes {
		if len(m.Sources) != o.Cores {
			return nil, fmt.Errorf("sim: %s has %d workloads for %d cores", m, len(m.Sources), o.Cores)
		}
	}
	return o.Mixes, nil
}

// runPolicies submits one batch to the lab's engine: the alone-IPC
// reference cells the mixes need, plus one simulation cell per
// (policy, mix), then assembles weighted speedups from the resolved
// results. opts must already have defaults applied.
func runPolicies(ctx context.Context, lab *Engine, base Config, policies []RefreshPolicy, opts Options) ([]PolicyScore, error) {
	rows, err := runPoliciesMeasures(ctx, lab, base, policies, opts, []int{opts.Measure})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// RunPoliciesHorizons evaluates each policy on the same mixes at every
// measured horizon in measures, on a fresh single-sweep engine. See
// Engine.RunPoliciesHorizons.
func RunPoliciesHorizons(ctx context.Context, base Config, policies []RefreshPolicy, opts Options, measures []int) ([][]PolicyScore, error) {
	return newSweepEngine(opts).RunPoliciesHorizons(ctx, base, policies, opts, measures)
}

// RunPoliciesHorizons evaluates each policy on the same mixes at every
// measured horizon in measures (opts.Measure is ignored) and returns
// one score row per horizon, index-aligned with measures. All horizons
// submit as one batch, so the sweep planner coalesces each trajectory's
// horizons — sim and alone-reference cells alike — into a single
// ascending pass instead of one restore-and-extend round trip per
// horizon. Rows are bit-identical to running each horizon separately.
func (e *Engine) RunPoliciesHorizons(ctx context.Context, base Config, policies []RefreshPolicy, opts Options, measures []int) ([][]PolicyScore, error) {
	if len(measures) == 0 {
		return nil, fmt.Errorf("sim: no measure horizons given")
	}
	return runPoliciesMeasures(ctx, e, base, policies, opts.withDefaults(), measures)
}

// runPoliciesMeasures submits one batch covering every (policy, mix,
// measure) simulation cell plus the alone-IPC reference cells each
// (mix, measure) needs, then assembles one score row per measure.
// opts must already have defaults applied.
func runPoliciesMeasures(ctx context.Context, lab *Engine, base Config, policies []RefreshPolicy, opts Options, measures []int) ([][]PolicyScore, error) {
	mixes, err := opts.sourceMixes()
	if err != nil {
		return nil, err
	}
	for _, m := range measures {
		if m <= 0 {
			return nil, fmt.Errorf("sim: measure horizon %d is not positive", m)
		}
	}

	var cells []engine.Cell[CellResult]
	aloneIdx := map[string]int{} // alone cell key -> index into cells
	// aloneRefs[measure][mix][core] -> index into cells
	aloneRefs := make([][][]int, len(measures))
	for mIdx, measure := range measures {
		aloneRefs[mIdx] = make([][]int, len(mixes))
		for mi, mix := range mixes {
			aloneRefs[mIdx][mi] = make([]int, len(mix.Sources))
			for c, src := range mix.Sources {
				seed := aloneRefSeed(src, opts.Seed, c)
				key := aloneCellKey(src, seed, measure)
				idx, ok := aloneIdx[key]
				if !ok {
					idx = len(cells)
					aloneIdx[key] = idx
					cells = append(cells, aloneCell(lab, src, seed, measure))
				}
				aloneRefs[mIdx][mi][c] = idx
			}
		}
	}
	simStart := make([]int, len(measures)) // measure -> its (policy x mix) block
	for mIdx, measure := range measures {
		simStart[mIdx] = len(cells)
		for _, pol := range policies {
			cfg := base
			cfg.Cores = opts.Cores
			cfg.Policy = pol
			cfg.Seed = opts.Seed
			cfg.Forensics = ForensicsOptions{Enabled: opts.Forensics, Recorder: opts.Forensics && opts.ForensicsRecorder}
			for _, mix := range mixes {
				cells = append(cells, simCell(lab, cfg, mix, opts.Warmup, measure))
			}
		}
	}

	results, batch, err := lab.eng.RunWith(ctx, cells, engine.RunOptions{
		OnProgress:      opts.Progress,
		OnProgressStats: opts.ProgressStats,
		NoPlanner:       opts.NoPlanner,
	})
	if opts.Stats != nil {
		opts.Stats.Add(batch)
	}
	if err != nil {
		return nil, err
	}

	out := make([][]PolicyScore, len(measures))
	for mIdx := range measures {
		scores := make([]PolicyScore, len(policies))
		next := simStart[mIdx]
		for pi, pol := range policies {
			var ws []float64
			var agg SchedAggregate
			var fx *ForensicsSummary
			for mi := range mixes {
				res := results[next]
				next++
				ipcAlone := make([]float64, opts.Cores)
				for c, ref := range aloneRefs[mIdx][mi] {
					ipcAlone[c] = results[ref].Alone
				}
				ws = append(ws, metrics.WeightedSpeedup(res.IPC, ipcAlone))
				agg.HiRAPiggybacks += res.Sched.HiRAPiggybacks
				agg.HiRAPairs += res.Sched.HiRAPairs
				agg.StandaloneRefreshes += res.Sched.StandaloneRefreshes
				agg.REFs += res.Sched.REFs
				agg.SeqBlocked += res.Sched.SeqBlocked
				agg.CanACTBlocked += res.Sched.CanACTBlocked
				fx = MergeForensics(fx, res.Forensics)
			}
			scores[pi] = PolicyScore{Policy: pol, WS: metrics.Mean(ws), Sched: agg, Forensics: fx}
		}
		out[mIdx] = scores
	}
	return out, nil
}

// Fig9Row is one capacity point of Fig. 9.
type Fig9Row struct {
	CapacityGbit int `json:"capacity_gbit"`
	// WS maps policy name to average weighted speedup; NormNoRefresh and
	// NormBaseline are Fig. 9a/9b normalizations.
	WS            map[string]float64 `json:"ws"`
	NormNoRefresh map[string]float64 `json:"norm_no_refresh"`
	NormBaseline  map[string]float64 `json:"norm_baseline"`
	// Forensics maps policy name to its aggregated forensics summary;
	// nil unless the sweep ran with Options.Forensics.
	Forensics map[string]*ForensicsSummary `json:"forensics,omitempty"`
}

// forensicsByPolicy collects scores' forensics summaries into a
// per-policy-name map. It returns nil when no score carries one, so
// figure rows from non-forensics sweeps stay byte-identical to before
// forensics existed.
func forensicsByPolicy(scores []PolicyScore) map[string]*ForensicsSummary {
	var m map[string]*ForensicsSummary
	for _, s := range scores {
		if s.Forensics == nil {
			continue
		}
		if m == nil {
			m = map[string]*ForensicsSummary{}
		}
		m[s.Policy.Name] = s.Forensics
	}
	return m
}

// Fig9Capacities is the x-axis of Fig. 9.
func Fig9Capacities() []int { return []int{2, 4, 8, 16, 32, 64, 128} }

// Fig9 sweeps chip capacity for periodic refresh (§8): No Refresh,
// Baseline REF, and HiRA-{0,2,4,8}, on a fresh single-sweep engine.
func Fig9(ctx context.Context, opts Options, capacities []int) ([]Fig9Row, error) {
	return newSweepEngine(opts).Fig9(ctx, opts, capacities)
}

// Fig9 runs the capacity sweep on the shared engine.
func (e *Engine) Fig9(ctx context.Context, opts Options, capacities []int) ([]Fig9Row, error) {
	if capacities == nil {
		capacities = Fig9Capacities()
	}
	policies := []RefreshPolicy{
		NoRefreshPolicy(), BaselinePolicy(),
		HiRAPeriodicPolicy(0), HiRAPeriodicPolicy(2), HiRAPeriodicPolicy(4), HiRAPeriodicPolicy(8),
	}
	opts = opts.withDefaults()
	var rows []Fig9Row
	for _, cap := range capacities {
		base := DefaultConfig()
		base.ChipCapacityGbit = cap
		scores, err := runPolicies(ctx, e, base, policies, opts)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{CapacityGbit: cap,
			WS: map[string]float64{}, NormNoRefresh: map[string]float64{}, NormBaseline: map[string]float64{},
			Forensics: forensicsByPolicy(scores)}
		for _, s := range scores {
			row.WS[s.Policy.Name] = s.WS
		}
		for name, ws := range row.WS {
			if nr := row.WS["NoRefresh"]; nr > 0 {
				row.NormNoRefresh[name] = ws / nr
			}
			if b := row.WS["Baseline"]; b > 0 {
				row.NormBaseline[name] = ws / b
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row is one RowHammer-threshold point of Fig. 12.
type Fig12Row struct {
	NRH          int                `json:"nrh"`
	WS           map[string]float64 `json:"ws"`
	NormBaseline map[string]float64 `json:"norm_baseline"` // Fig. 12a: vs no-defense baseline
	NormPARA     map[string]float64 `json:"norm_para"`     // Fig. 12b: vs PARA without HiRA
	// Forensics maps policy name to its aggregated forensics summary;
	// nil unless the sweep ran with Options.Forensics.
	Forensics map[string]*ForensicsSummary `json:"forensics,omitempty"`
}

// Fig12NRHValues is the x-axis of Fig. 12.
func Fig12NRHValues() []int { return []int{64, 128, 256, 512, 1024} }

// Fig12 sweeps the RowHammer threshold for preventive refresh (§9.2):
// Baseline (no defense), PARA, and PARA+HiRA-{0,2,4,8}, on a fresh
// single-sweep engine.
func Fig12(ctx context.Context, opts Options, nrhs []int) ([]Fig12Row, error) {
	return newSweepEngine(opts).Fig12(ctx, opts, nrhs)
}

// Fig12 runs the RowHammer-threshold sweep on the shared engine.
func (e *Engine) Fig12(ctx context.Context, opts Options, nrhs []int) ([]Fig12Row, error) {
	if nrhs == nil {
		nrhs = Fig12NRHValues()
	}
	opts = opts.withDefaults()
	var rows []Fig12Row
	for _, nrh := range nrhs {
		policies := []RefreshPolicy{
			BaselinePolicy(), PARAPolicy(nrh),
			PARAHiRAPolicy(nrh, 0), PARAHiRAPolicy(nrh, 2),
			PARAHiRAPolicy(nrh, 4), PARAHiRAPolicy(nrh, 8),
		}
		scores, err := runPolicies(ctx, e, DefaultConfig(), policies, opts)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{NRH: nrh,
			WS: map[string]float64{}, NormBaseline: map[string]float64{}, NormPARA: map[string]float64{},
			Forensics: forensicsByPolicy(scores)}
		for _, s := range scores {
			row.WS[s.Policy.Name] = s.WS
		}
		for name, ws := range row.WS {
			if b := row.WS["Baseline"]; b > 0 {
				row.NormBaseline[name] = ws / b
			}
			if p := row.WS["PARA"]; p > 0 {
				row.NormPARA[name] = ws / p
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScaleRow is one point of the §10 channel/rank sensitivity sweeps
// (Figs. 13-16).
type ScaleRow struct {
	// X is the swept quantity (channel or rank count).
	X int `json:"x"`
	// Param is the second parameter (chip capacity for Figs. 13/14, NRH
	// for Figs. 15/16).
	Param int                `json:"param"`
	WS    map[string]float64 `json:"ws"`
	// Forensics maps policy name to its aggregated forensics summary;
	// nil unless the sweep ran with Options.Forensics.
	Forensics map[string]*ForensicsSummary `json:"forensics,omitempty"`
}

// scaleSweep runs policies across a channels/ranks sweep on one shared
// engine, so cells repeated across sweep points simulate once.
func scaleSweep(ctx context.Context, e *Engine, opts Options, xs []int, params []int, channels bool,
	mkPolicies func(param int) []RefreshPolicy, mkCap func(param int) int) ([]ScaleRow, error) {
	opts = opts.withDefaults()
	var rows []ScaleRow
	for _, param := range params {
		for _, x := range xs {
			base := DefaultConfig()
			base.ChipCapacityGbit = mkCap(param)
			if channels {
				base.Channels = x
			} else {
				base.Ranks = x
			}
			scores, err := runPolicies(ctx, e, base, mkPolicies(param), opts)
			if err != nil {
				return nil, err
			}
			row := ScaleRow{X: x, Param: param, WS: map[string]float64{},
				Forensics: forensicsByPolicy(scores)}
			for _, s := range scores {
				row.WS[s.Policy.Name] = s.WS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ScaleXValues is the channel/rank sweep of §10.
func ScaleXValues() []int { return []int{1, 2, 4, 8} }

// periodicScalePolicies is the policy set of Figs. 13/14.
func periodicScalePolicies(int) []RefreshPolicy {
	return []RefreshPolicy{BaselinePolicy(), HiRAPeriodicPolicy(2), HiRAPeriodicPolicy(4)}
}

// paraScalePolicies is the policy set of Figs. 15/16.
func paraScalePolicies(nrh int) []RefreshPolicy {
	return []RefreshPolicy{PARAPolicy(nrh), PARAHiRAPolicy(nrh, 2), PARAHiRAPolicy(nrh, 4)}
}

// Fig13 sweeps channel count under periodic refresh for chip capacities
// {2, 8, 32} Gb with Baseline, HiRA-2, HiRA-4.
func Fig13(ctx context.Context, opts Options, xs, caps []int) ([]ScaleRow, error) {
	return newSweepEngine(opts).Fig13(ctx, opts, xs, caps)
}

// Fig13 runs the channel sweep on the shared engine.
func (e *Engine) Fig13(ctx context.Context, opts Options, xs, caps []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if caps == nil {
		caps = []int{2, 8, 32}
	}
	return scaleSweep(ctx, e, opts, xs, caps, true, periodicScalePolicies,
		func(cap int) int { return cap })
}

// Fig14 sweeps rank count under periodic refresh.
func Fig14(ctx context.Context, opts Options, xs, caps []int) ([]ScaleRow, error) {
	return newSweepEngine(opts).Fig14(ctx, opts, xs, caps)
}

// Fig14 runs the rank sweep on the shared engine.
func (e *Engine) Fig14(ctx context.Context, opts Options, xs, caps []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if caps == nil {
		caps = []int{2, 8, 32}
	}
	return scaleSweep(ctx, e, opts, xs, caps, false, periodicScalePolicies,
		func(cap int) int { return cap })
}

// Fig15 sweeps channel count under PARA for NRH {1024, 256, 64}.
func Fig15(ctx context.Context, opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	return newSweepEngine(opts).Fig15(ctx, opts, xs, nrhs)
}

// Fig15 runs the PARA channel sweep on the shared engine.
func (e *Engine) Fig15(ctx context.Context, opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if nrhs == nil {
		nrhs = []int{1024, 256, 64}
	}
	return scaleSweep(ctx, e, opts, xs, nrhs, true, paraScalePolicies,
		func(int) int { return 8 })
}

// Fig16 sweeps rank count under PARA.
func Fig16(ctx context.Context, opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	return newSweepEngine(opts).Fig16(ctx, opts, xs, nrhs)
}

// Fig16 runs the PARA rank sweep on the shared engine.
func (e *Engine) Fig16(ctx context.Context, opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if nrhs == nil {
		nrhs = []int{1024, 256, 64}
	}
	return scaleSweep(ctx, e, opts, xs, nrhs, false, paraScalePolicies,
		func(int) int { return 8 })
}

// AttackKinds lists the attacker presets AttackSweep runs by default:
// plain single-, double-, and many-sided hammering, a
// refresh-synchronized double-sided variant (hammer bursts separated by
// idle gaps, probing duty-cycled trackers), and a decoy variant
// (interleaved far-row accesses diluting activation-frequency trackers).
func AttackKinds() []string {
	return []string{"single", "double", "many", "refsync", "decoy"}
}

// attackPreset builds the AttackSpec one preset names, targeting the
// middle row of bank 2 of the given organization.
func attackPreset(kind string, org dram.Org) (workload.AttackSpec, error) {
	spec := workload.AttackSpec{Bank: 2, VictimRow: org.RowsPerBank() / 2}
	switch kind {
	case "single":
		spec.Kind = workload.AttackSingle
	case "double":
		spec.Kind = workload.AttackDouble
	case "many":
		spec.Kind = workload.AttackMany
		spec.Aggressors = 8
	case "refsync":
		spec.Kind = workload.AttackDouble
		spec.BurstAccesses = 128
		spec.IdleGap = 2048
	case "decoy":
		spec.Kind = workload.AttackDouble
		spec.Decoys = 4
	default:
		return spec, fmt.Errorf("sim: unknown attack kind %q (want one of %v)", kind, AttackKinds())
	}
	return spec, nil
}

// AttackRow is one (attack, NRH) point of the attack×mitigation sweep:
// weighted speedups per policy plus each policy's forensics summary —
// the efficacy verdict lives in Forensics[policy].MaxVictimExposure and
// .Tally.VictimCrossings against the row's NRH.
type AttackRow struct {
	Attack string             `json:"attack"`
	NRH    int                `json:"nrh"`
	WS     map[string]float64 `json:"ws"`
	// NormBaseline normalizes each policy's WS to the no-defense
	// Baseline under the same attack: the performance cost of defending.
	NormBaseline map[string]float64           `json:"norm_baseline"`
	Forensics    map[string]*ForensicsSummary `json:"forensics,omitempty"`
}

// AttackNRHValues is the default threshold axis of the attack sweep: low
// enough that an unmitigated attack crosses NRH within a laptop-scale
// measured phase. (An attack round spreads its activations over each
// aggressor's whole eviction class, so victim exposure accrues at
// roughly 2/(aggressors*EvictRows) of the bank's activation rate —
// around 200 over the default horizons.)
func AttackNRHValues() []int { return []int{64, 128} }

// attackSweepPolicies is the mitigation zoo evaluated at one threshold:
// no defense, PARA (the paper's probabilistic preventive baseline), and
// the two deterministic zoo engines with their default sizing. The
// Baseline entry carries the row's NRH purely to anchor its forensics
// ledger thresholds — with no preventive mechanism the engine never
// consults it, so the cell's command stream is the true no-defense run.
func attackSweepPolicies(nrh int) []RefreshPolicy {
	base := BaselinePolicy()
	base.NRH = nrh
	return []RefreshPolicy{
		base,
		PARAPolicy(nrh),
		GraphenePolicy(nrh, 0),
		RFMPolicy(nrh, 0),
	}
}

// AttackSweep runs the attack×mitigation×NRH grid on a fresh
// single-sweep engine.
func AttackSweep(ctx context.Context, opts Options, attacks []string, nrhs []int) ([]AttackRow, error) {
	return newSweepEngine(opts).AttackSweep(ctx, opts, attacks, nrhs)
}

// AttackSweep runs each attacker preset (core 0 of an otherwise benign
// mix) against each mitigation at each RowHammer threshold, on the
// shared engine. Attack cells always run with the forensics ledger
// enabled: the sweep's deliverable is the per-point efficacy metrics
// (victim exposure and crossings) alongside weighted speedup. Nil
// attacks or nrhs take the defaults.
func (e *Engine) AttackSweep(ctx context.Context, opts Options, attacks []string, nrhs []int) ([]AttackRow, error) {
	if attacks == nil {
		attacks = AttackKinds()
	}
	if nrhs == nil {
		nrhs = AttackNRHValues()
	}
	opts = opts.withDefaults()
	opts.Forensics = true
	base := DefaultConfig()
	org := OrgFor(base)
	// The non-attacker cores run the first builtin SPEC mix drawn from
	// the seed — the attack hides in otherwise benign traffic.
	benign := workload.Mixes(1, opts.Cores, opts.Seed)[0].Sources()
	var rows []AttackRow
	for _, kind := range attacks {
		spec, err := attackPreset(kind, org)
		if err != nil {
			return nil, err
		}
		atk, err := workload.NewAttack(spec, org)
		if err != nil {
			return nil, err
		}
		mix := workload.SourceMix{ID: 0,
			Sources: append([]workload.Source{atk}, benign.Sources[1:]...)}
		aOpts := opts
		aOpts.Mixes = []workload.SourceMix{mix}
		aOpts.Workloads = 1
		for _, nrh := range nrhs {
			scores, err := runPolicies(ctx, e, base, attackSweepPolicies(nrh), aOpts)
			if err != nil {
				return nil, err
			}
			row := AttackRow{Attack: kind, NRH: nrh,
				WS: map[string]float64{}, NormBaseline: map[string]float64{},
				Forensics: forensicsByPolicy(scores)}
			for _, s := range scores {
				row.WS[s.Policy.Name] = s.WS
			}
			for name, ws := range row.WS {
				if b := row.WS["Baseline"]; b > 0 {
					row.NormBaseline[name] = ws / b
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FigureResult is the serializable envelope of one figure run: exactly
// one of the row slices is set, per Kind. cmd/hira-sim's -json flag and
// the experiment service emit this identical encoding, so CLI and HTTP
// outputs are diffable.
type FigureResult struct {
	Kind   string      `json:"kind"`
	Fig9   []Fig9Row   `json:"fig9,omitempty"`
	Fig12  []Fig12Row  `json:"fig12,omitempty"`
	Scale  []ScaleRow  `json:"scale,omitempty"`
	Attack []AttackRow `json:"attack,omitempty"`
	// Stats tallies how the engine resolved this figure's cells.
	Stats EngineStats `json:"engine_stats"`
}

// Figure runs one named figure sweep on a fresh single-sweep engine.
func Figure(ctx context.Context, kind string, opts Options, xs, params []int) (*FigureResult, error) {
	return newSweepEngine(opts).Figure(ctx, kind, opts, xs, params)
}

// Figure runs one named figure sweep on the shared engine and wraps the
// rows in the serializable envelope. xs is the channel/rank axis of
// figs. 13-16 (ignored otherwise); params is the figure's second
// parameter set: capacities for fig9/13/14, NRH values for fig12/15/16.
// Nil slices take each figure's paper defaults (an empty non-nil
// slice, by contrast, sweeps nothing and returns no rows).
func (e *Engine) Figure(ctx context.Context, kind string, opts Options, xs, params []int) (*FigureResult, error) {
	var figStats EngineStats
	userStats := opts.Stats
	opts.Stats = &figStats

	res := &FigureResult{Kind: kind}
	var err error
	switch kind {
	case "fig9":
		res.Fig9, err = e.Fig9(ctx, opts, params)
	case "fig12":
		res.Fig12, err = e.Fig12(ctx, opts, params)
	case "fig13":
		res.Scale, err = e.Fig13(ctx, opts, xs, params)
	case "fig14":
		res.Scale, err = e.Fig14(ctx, opts, xs, params)
	case "fig15":
		res.Scale, err = e.Fig15(ctx, opts, xs, params)
	case "fig16":
		res.Scale, err = e.Fig16(ctx, opts, xs, params)
	case "attack":
		// params is the NRH axis; the attack set is the default presets
		// (callers wanting a custom set use AttackSweep directly).
		res.Attack, err = e.AttackSweep(ctx, opts, nil, params)
	default:
		return nil, fmt.Errorf("sim: unknown figure kind %q", kind)
	}
	if userStats != nil {
		userStats.Add(figStats)
	}
	if err != nil {
		return nil, err
	}
	res.Stats = figStats
	return res, nil
}
