package sim

import (
	"hira/internal/cache"
	"hira/internal/cpu"
	"hira/internal/engine"
	"hira/internal/metrics"
	"hira/internal/workload"
)

// aloneMemory is the fixed-latency ideal memory used to compute per-trace
// alone-IPC references for weighted speedup. Using one config-independent
// reference keeps weighted-speedup ratios between configurations
// meaningful while avoiding a quadratic number of alone simulations.
type aloneMemory struct {
	latencyTicks int
	inflight     []aloneReq
	llc          *cache.Cache
	c            *cpu.Core
}

type aloneReq struct {
	token uint64
	left  int
}

func (m *aloneMemory) Issue(req cpu.MemRequest) bool {
	if m.llc.Access(req.Addr, req.Write).Hit || req.Write {
		if !req.Write {
			m.c.Complete(req.Token)
		}
		return true
	}
	m.inflight = append(m.inflight, aloneReq{token: req.Token, left: m.latencyTicks})
	return true
}

func (m *aloneMemory) step() {
	kept := m.inflight[:0]
	for _, r := range m.inflight {
		r.left--
		if r.left <= 0 {
			m.c.Complete(r.token)
		} else {
			kept = append(kept, r)
		}
	}
	m.inflight = kept
}

// AloneIPC computes a benchmark's IPC on an unloaded fixed-latency memory
// (~60ns, an idle DRAM read round trip). Results are deterministic per
// (profile, seed).
func AloneIPC(p workload.Profile, seed uint64, ticks int) float64 {
	mem := &aloneMemory{latencyTicks: 72, llc: cache.MustNew(8<<20, 8, 64)}
	gen := workload.NewGenerator(p, seed)
	c := cpu.New(0, gen, mem)
	mem.c = c
	budget := 0.0
	for i := 0; i < ticks; i++ {
		budget += 4 * cpuCyclesPerTick
		if whole := int(budget); whole > 0 {
			c.Tick(float64(whole))
			budget -= float64(whole)
		}
		mem.step()
	}
	return c.IPC(float64(ticks) * cpuCyclesPerTick)
}

// aloneSeed derives the deterministic per-core workload seed used both by
// NewSystem's shared-run generators and the alone-IPC reference cells, so
// the two drive identical workload streams.
func aloneSeed(baseSeed uint64, core int) uint64 {
	return baseSeed*1000003 + uint64(core)*7919 + 11
}

// Options sizes an experiment sweep. The paper runs 125 mixes of 200M
// instructions; defaults here are laptop-scale and flag-adjustable in
// cmd/hira-sim.
type Options struct {
	Workloads int // number of multiprogrammed mixes (default 4)
	Cores     int // cores per mix (default 8)
	Warmup    int // warmup memory ticks (default 30000)
	Measure   int // measured memory ticks (default 120000)
	Seed      uint64

	// Parallelism bounds the experiment engine's worker pool; 0 means
	// one worker per CPU core. Results are bit-identical at any setting
	// because every cell seeds from its own content.
	Parallelism int
	// ResultDir, when non-empty, persists per-cell JSON results keyed by
	// cell hash, so re-running a sweep after a crash or with one new
	// policy only simulates the delta.
	ResultDir string
	// Progress, when set, is called as a batch's cells resolve.
	Progress func(done, total int)
	// Stats, when set, accumulates the engine's resolution tallies
	// (simulated vs cache/store hits) across the sweep.
	Stats *EngineStats
}

func (o Options) withDefaults() Options {
	if o.Workloads == 0 {
		o.Workloads = 4
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.Warmup == 0 {
		o.Warmup = 30000
	}
	if o.Measure == 0 {
		o.Measure = 120000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PolicyScore is the average weighted speedup of one policy under one
// system shape.
type PolicyScore struct {
	Policy RefreshPolicy
	// WS is the mean weighted speedup across mixes.
	WS float64
	// Sched aggregates controller stats across mixes.
	Sched SchedAggregate
}

// SchedAggregate sums selected controller statistics across runs.
type SchedAggregate struct {
	HiRAPiggybacks, HiRAPairs, StandaloneRefreshes, REFs uint64
	SeqBlocked, CanACTBlocked                            uint64
}

// RunPolicies evaluates each policy on the same mixes and returns average
// weighted speedups. Cells run on a fresh experiment engine; sweeps that
// evaluate many points (Fig9, Fig12, ...) share one engine across points
// so repeated cells simulate once.
func RunPolicies(base Config, policies []RefreshPolicy, opts Options) ([]PolicyScore, error) {
	eng, opts, flush := sweepEngine(opts)
	defer flush()
	return runPolicies(eng, base, policies, opts)
}

// runPolicies submits one batch to eng: the alone-IPC reference cells the
// mixes need, plus one simulation cell per (policy, mix), then assembles
// weighted speedups from the resolved results. opts must already have
// defaults applied (callers go through sweepEngine).
func runPolicies(eng *experimentEngine, base Config, policies []RefreshPolicy, opts Options) ([]PolicyScore, error) {
	mixes := workload.Mixes(opts.Workloads, opts.Cores, opts.Seed)

	var cells []engine.Cell[CellResult]
	aloneIdx := map[string]int{}           // alone cell key -> index into cells
	aloneRefs := make([][]int, len(mixes)) // mix -> core -> index into cells
	for mi, mix := range mixes {
		aloneRefs[mi] = make([]int, len(mix.Profiles))
		for c, p := range mix.Profiles {
			key := aloneCellKey(p, aloneSeed(opts.Seed, c), opts.Measure)
			idx, ok := aloneIdx[key]
			if !ok {
				idx = len(cells)
				aloneIdx[key] = idx
				cells = append(cells, aloneCell(p, aloneSeed(opts.Seed, c), opts.Measure))
			}
			aloneRefs[mi][c] = idx
		}
	}
	simStart := len(cells)
	for _, pol := range policies {
		cfg := base
		cfg.Cores = opts.Cores
		cfg.Policy = pol
		cfg.Seed = opts.Seed
		for _, mix := range mixes {
			cells = append(cells, simCell(cfg, mix, opts.Warmup, opts.Measure))
		}
	}

	results, err := eng.Run(cells)
	if err != nil {
		return nil, err
	}

	scores := make([]PolicyScore, len(policies))
	next := simStart
	for pi, pol := range policies {
		var ws []float64
		var agg SchedAggregate
		for mi := range mixes {
			res := results[next]
			next++
			ipcAlone := make([]float64, opts.Cores)
			for c, ref := range aloneRefs[mi] {
				ipcAlone[c] = results[ref].Alone
			}
			ws = append(ws, metrics.WeightedSpeedup(res.IPC, ipcAlone))
			agg.HiRAPiggybacks += res.Sched.HiRAPiggybacks
			agg.HiRAPairs += res.Sched.HiRAPairs
			agg.StandaloneRefreshes += res.Sched.StandaloneRefreshes
			agg.REFs += res.Sched.REFs
			agg.SeqBlocked += res.Sched.SeqBlocked
			agg.CanACTBlocked += res.Sched.CanACTBlocked
		}
		scores[pi] = PolicyScore{Policy: pol, WS: metrics.Mean(ws), Sched: agg}
	}
	return scores, nil
}

// Fig9Row is one capacity point of Fig. 9.
type Fig9Row struct {
	CapacityGbit int
	// WS maps policy name to average weighted speedup; NormNoRefresh and
	// NormBaseline are Fig. 9a/9b normalizations.
	WS            map[string]float64
	NormNoRefresh map[string]float64
	NormBaseline  map[string]float64
}

// Fig9Capacities is the x-axis of Fig. 9.
func Fig9Capacities() []int { return []int{2, 4, 8, 16, 32, 64, 128} }

// Fig9 sweeps chip capacity for periodic refresh (§8): No Refresh,
// Baseline REF, and HiRA-{0,2,4,8}.
func Fig9(opts Options, capacities []int) ([]Fig9Row, error) {
	if capacities == nil {
		capacities = Fig9Capacities()
	}
	policies := []RefreshPolicy{
		NoRefreshPolicy(), BaselinePolicy(),
		HiRAPeriodicPolicy(0), HiRAPeriodicPolicy(2), HiRAPeriodicPolicy(4), HiRAPeriodicPolicy(8),
	}
	eng, opts, flush := sweepEngine(opts)
	defer flush()
	var rows []Fig9Row
	for _, cap := range capacities {
		base := DefaultConfig()
		base.ChipCapacityGbit = cap
		scores, err := runPolicies(eng, base, policies, opts)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{CapacityGbit: cap,
			WS: map[string]float64{}, NormNoRefresh: map[string]float64{}, NormBaseline: map[string]float64{}}
		for _, s := range scores {
			row.WS[s.Policy.Name] = s.WS
		}
		for name, ws := range row.WS {
			if nr := row.WS["NoRefresh"]; nr > 0 {
				row.NormNoRefresh[name] = ws / nr
			}
			if b := row.WS["Baseline"]; b > 0 {
				row.NormBaseline[name] = ws / b
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row is one RowHammer-threshold point of Fig. 12.
type Fig12Row struct {
	NRH          int
	WS           map[string]float64
	NormBaseline map[string]float64 // Fig. 12a: vs no-defense baseline
	NormPARA     map[string]float64 // Fig. 12b: vs PARA without HiRA
}

// Fig12NRHValues is the x-axis of Fig. 12.
func Fig12NRHValues() []int { return []int{64, 128, 256, 512, 1024} }

// Fig12 sweeps the RowHammer threshold for preventive refresh (§9.2):
// Baseline (no defense), PARA, and PARA+HiRA-{0,2,4,8}.
func Fig12(opts Options, nrhs []int) ([]Fig12Row, error) {
	if nrhs == nil {
		nrhs = Fig12NRHValues()
	}
	eng, opts, flush := sweepEngine(opts)
	defer flush()
	var rows []Fig12Row
	for _, nrh := range nrhs {
		policies := []RefreshPolicy{
			BaselinePolicy(), PARAPolicy(nrh),
			PARAHiRAPolicy(nrh, 0), PARAHiRAPolicy(nrh, 2),
			PARAHiRAPolicy(nrh, 4), PARAHiRAPolicy(nrh, 8),
		}
		scores, err := runPolicies(eng, DefaultConfig(), policies, opts)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{NRH: nrh,
			WS: map[string]float64{}, NormBaseline: map[string]float64{}, NormPARA: map[string]float64{}}
		for _, s := range scores {
			row.WS[s.Policy.Name] = s.WS
		}
		for name, ws := range row.WS {
			if b := row.WS["Baseline"]; b > 0 {
				row.NormBaseline[name] = ws / b
			}
			if p := row.WS["PARA"]; p > 0 {
				row.NormPARA[name] = ws / p
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScaleRow is one point of the §10 channel/rank sensitivity sweeps
// (Figs. 13-16).
type ScaleRow struct {
	// X is the swept quantity (channel or rank count).
	X int
	// Param is the second parameter (chip capacity for Figs. 13/14, NRH
	// for Figs. 15/16).
	Param int
	WS    map[string]float64
}

// scaleSweep runs policies across a channels/ranks sweep on one shared
// engine, so cells repeated across sweep points simulate once.
func scaleSweep(opts Options, xs []int, params []int, channels bool,
	mkPolicies func(param int) []RefreshPolicy, mkCap func(param int) int) ([]ScaleRow, error) {
	eng, opts, flush := sweepEngine(opts)
	defer flush()
	var rows []ScaleRow
	for _, param := range params {
		for _, x := range xs {
			base := DefaultConfig()
			base.ChipCapacityGbit = mkCap(param)
			if channels {
				base.Channels = x
			} else {
				base.Ranks = x
			}
			scores, err := runPolicies(eng, base, mkPolicies(param), opts)
			if err != nil {
				return nil, err
			}
			row := ScaleRow{X: x, Param: param, WS: map[string]float64{}}
			for _, s := range scores {
				row.WS[s.Policy.Name] = s.WS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ScaleXValues is the channel/rank sweep of §10.
func ScaleXValues() []int { return []int{1, 2, 4, 8} }

// Fig13 sweeps channel count under periodic refresh for chip capacities
// {2, 8, 32} Gb with Baseline, HiRA-2, HiRA-4.
func Fig13(opts Options, xs, caps []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if caps == nil {
		caps = []int{2, 8, 32}
	}
	return scaleSweep(opts, xs, caps, true,
		func(int) []RefreshPolicy {
			return []RefreshPolicy{BaselinePolicy(), HiRAPeriodicPolicy(2), HiRAPeriodicPolicy(4)}
		},
		func(cap int) int { return cap })
}

// Fig14 sweeps rank count under periodic refresh.
func Fig14(opts Options, xs, caps []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if caps == nil {
		caps = []int{2, 8, 32}
	}
	return scaleSweep(opts, xs, caps, false,
		func(int) []RefreshPolicy {
			return []RefreshPolicy{BaselinePolicy(), HiRAPeriodicPolicy(2), HiRAPeriodicPolicy(4)}
		},
		func(cap int) int { return cap })
}

// Fig15 sweeps channel count under PARA for NRH {1024, 256, 64}.
func Fig15(opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if nrhs == nil {
		nrhs = []int{1024, 256, 64}
	}
	return scaleSweep(opts, xs, nrhs, true,
		func(nrh int) []RefreshPolicy {
			return []RefreshPolicy{PARAPolicy(nrh), PARAHiRAPolicy(nrh, 2), PARAHiRAPolicy(nrh, 4)}
		},
		func(int) int { return 8 })
}

// Fig16 sweeps rank count under PARA.
func Fig16(opts Options, xs, nrhs []int) ([]ScaleRow, error) {
	if xs == nil {
		xs = ScaleXValues()
	}
	if nrhs == nil {
		nrhs = []int{1024, 256, 64}
	}
	return scaleSweep(opts, xs, nrhs, false,
		func(nrh int) []RefreshPolicy {
			return []RefreshPolicy{PARAPolicy(nrh), PARAHiRAPolicy(nrh, 2), PARAHiRAPolicy(nrh, 4)}
		},
		func(int) int { return 8 })
}
