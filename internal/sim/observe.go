package sim

import (
	"fmt"
	"sync/atomic"

	"hira/internal/sched"
	"hira/internal/telemetry"
)

// simMetrics is the sweep-level scheduler telemetry: coarse aggregates
// of each simulated cell's controller counters, folded in once per cell
// as its result is assembled. The per-tick scheduler loop is never
// touched — cells resolve at sweep scale (hundreds per figure), ticks
// at simulation scale (millions per cell), so per-cell sampling costs
// a handful of atomic adds per simulation while the tick loop keeps
// its 0 allocs/op.
type simMetrics struct {
	reads, writes, acts, pres, refs *telemetry.Counter
	piggybacks, pairs, standalone   *telemetry.Counter
	measuredTicks                   *telemetry.Counter

	// RowHammer forensics families, fed only by cells that ran with the
	// forensics ledger enabled.
	fxDemandACTs   *telemetry.Counter
	fxRefreshACTs  *telemetry.Counter
	fxRowsReset    *telemetry.Counter
	fxREFRowsReset *telemetry.Counter
	fxCrossings    [sched.MaxForensicsThresholds]*telemetry.Counter
	fxVictimCross  [sched.MaxForensicsThresholds]*telemetry.Counter
	fxMax          atomic.Uint64 // exported via GaugeFunc
	fxVictimMax    atomic.Uint64 // exported via GaugeFunc

	// Mitigation-efficacy families.
	mitUseful, mitWasted, mitPeriodic *telemetry.Counter
	mitPiggyPrev, mitPiggyPeriodic    *telemetry.Counter
}

// newSimMetrics registers the scheduler aggregates on r (nil r disables
// them: a nil *simMetrics observes nothing).
func newSimMetrics(r *telemetry.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	c := func(name, help string) *telemetry.Counter { return r.Counter(name, help) }
	m := &simMetrics{
		reads:  c("hira_sched_reads_total", "DRAM reads across simulated cells' measured phases."),
		writes: c("hira_sched_writes_total", "DRAM writes across simulated cells' measured phases."),
		acts:   c("hira_sched_acts_total", "Row activations across simulated cells' measured phases."),
		pres:   c("hira_sched_pres_total", "Precharges across simulated cells' measured phases."),
		refs:   c("hira_sched_refs_total", "Rank-level REF commands across simulated cells' measured phases."),
		piggybacks: c("hira_sched_hira_piggybacks_total",
			"HiRA refreshes hidden under demand activations."),
		pairs: c("hira_sched_hira_pairs_total",
			"HiRA refresh pairs issued concurrently to one bank's subarrays."),
		standalone: c("hira_sched_standalone_refreshes_total",
			"Refreshes that could not be hidden and issued standalone."),
		measuredTicks: c("hira_sim_measured_ticks_total",
			"Measured-phase memory ticks across simulated cells."),
		fxDemandACTs: c("hira_rowhammer_demand_acts_total",
			"Demand row activations advancing the forensics ledger (forensics cells only)."),
		fxRefreshACTs: c("hira_rowhammer_refresh_acts_total",
			"Explicit row-refresh activations observed by the forensics ledger."),
		fxRowsReset: c("hira_rowhammer_rows_reset_total",
			"Explicit row refreshes that cleared a nonzero interref activation count."),
		fxREFRowsReset: c("hira_rowhammer_ref_rows_reset_total",
			"Ledger rows with nonzero interref counts cleared by rank-REF rotation coverage."),
		mitUseful: c("hira_mitigation_preventive_useful_total",
			"Preventive refreshes whose victim had a hot adjacent aggressor at refresh time."),
		mitWasted: c("hira_mitigation_preventive_wasted_total",
			"Preventive refreshes that landed next to only cold rows."),
		mitPeriodic: c("hira_mitigation_periodic_row_refreshes_total",
			"Explicit row refreshes doing periodic (retention) work."),
		mitPiggyPrev: c("hira_mitigation_piggyback_preventive_total",
			"Preventive refreshes hidden under demand activations (HiRA piggybacks)."),
		mitPiggyPeriodic: c("hira_mitigation_piggyback_periodic_total",
			"Periodic refreshes hidden under demand activations (HiRA piggybacks)."),
	}
	for i := range m.fxCrossings {
		m.fxCrossings[i] = r.Counter("hira_rowhammer_threshold_crossings_total",
			"Events where a row's interref activation count reached a configured threshold, by ascending threshold rank.",
			telemetry.Label{Key: "threshold", Value: fmt.Sprintf("%d", i+1)})
	}
	for i := range m.fxVictimCross {
		m.fxVictimCross[i] = r.Counter("hira_rowhammer_victim_crossings_total",
			"Events where a victim row's exposure (adjacent activations since its own charge restoration) reached a configured threshold, by ascending threshold rank.",
			telemetry.Label{Key: "threshold", Value: fmt.Sprintf("%d", i+1)})
	}
	r.GaugeFunc("hira_rowhammer_max_interref_acts",
		"Largest interref activation count any row reached across forensics cells.",
		func() float64 { return float64(m.fxMax.Load()) })
	r.GaugeFunc("hira_rowhammer_max_victim_exposure",
		"Largest victim-side exposure any row reached across forensics cells.",
		func() float64 { return float64(m.fxVictimMax.Load()) })
	return m
}

// observe folds one simulated cell's measured-phase counters in. Cells
// served from the cache or result store are not observed — their work
// was counted when they were first simulated.
func (m *simMetrics) observe(res CellResult) {
	if m == nil {
		return
	}
	s := res.Sched
	m.reads.Add(s.Reads)
	m.writes.Add(s.Writes)
	m.acts.Add(s.ACTs)
	m.pres.Add(s.PREs)
	m.refs.Add(s.REFs)
	m.piggybacks.Add(s.HiRAPiggybacks)
	m.pairs.Add(s.HiRAPairs)
	m.standalone.Add(s.StandaloneRefreshes)
	m.measuredTicks.Add(uint64(res.Ticks))
	if f := res.Forensics; f != nil {
		t := f.Tally
		m.fxDemandACTs.Add(t.DemandACTs)
		m.fxRefreshACTs.Add(t.RefreshACTs)
		m.fxRowsReset.Add(t.RowsReset)
		m.fxREFRowsReset.Add(t.REFRowsReset)
		for i, c := range m.fxCrossings {
			c.Add(t.Crossings[i])
		}
		for i, c := range m.fxVictimCross {
			c.Add(t.VictimCrossings[i])
		}
		m.mitUseful.Add(t.PreventiveUseful)
		m.mitWasted.Add(t.PreventiveWasted)
		m.mitPeriodic.Add(t.PeriodicRowRefreshes)
		m.mitPiggyPrev.Add(t.PiggybackPreventive)
		m.mitPiggyPeriodic.Add(t.PiggybackPeriodic)
		for {
			cur := m.fxMax.Load()
			if uint64(f.MaxInterrefACTs) <= cur ||
				m.fxMax.CompareAndSwap(cur, uint64(f.MaxInterrefACTs)) {
				break
			}
		}
		for {
			cur := m.fxVictimMax.Load()
			if uint64(f.MaxVictimExposure) <= cur ||
				m.fxVictimMax.CompareAndSwap(cur, uint64(f.MaxVictimExposure)) {
				break
			}
		}
	}
}
