package sim

import (
	"hira/internal/telemetry"
)

// simMetrics is the sweep-level scheduler telemetry: coarse aggregates
// of each simulated cell's controller counters, folded in once per cell
// as its result is assembled. The per-tick scheduler loop is never
// touched — cells resolve at sweep scale (hundreds per figure), ticks
// at simulation scale (millions per cell), so per-cell sampling costs
// a handful of atomic adds per simulation while the tick loop keeps
// its 0 allocs/op.
type simMetrics struct {
	reads, writes, acts, pres, refs *telemetry.Counter
	piggybacks, pairs, standalone   *telemetry.Counter
	measuredTicks                   *telemetry.Counter
}

// newSimMetrics registers the scheduler aggregates on r (nil r disables
// them: a nil *simMetrics observes nothing).
func newSimMetrics(r *telemetry.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	c := func(name, help string) *telemetry.Counter { return r.Counter(name, help) }
	return &simMetrics{
		reads:  c("hira_sched_reads_total", "DRAM reads across simulated cells' measured phases."),
		writes: c("hira_sched_writes_total", "DRAM writes across simulated cells' measured phases."),
		acts:   c("hira_sched_acts_total", "Row activations across simulated cells' measured phases."),
		pres:   c("hira_sched_pres_total", "Precharges across simulated cells' measured phases."),
		refs:   c("hira_sched_refs_total", "Rank-level REF commands across simulated cells' measured phases."),
		piggybacks: c("hira_sched_hira_piggybacks_total",
			"HiRA refreshes hidden under demand activations."),
		pairs: c("hira_sched_hira_pairs_total",
			"HiRA refresh pairs issued concurrently to one bank's subarrays."),
		standalone: c("hira_sched_standalone_refreshes_total",
			"Refreshes that could not be hidden and issued standalone."),
		measuredTicks: c("hira_sim_measured_ticks_total",
			"Measured-phase memory ticks across simulated cells."),
	}
}

// observe folds one simulated cell's measured-phase counters in. Cells
// served from the cache or result store are not observed — their work
// was counted when they were first simulated.
func (m *simMetrics) observe(res CellResult) {
	if m == nil {
		return
	}
	s := res.Sched
	m.reads.Add(s.Reads)
	m.writes.Add(s.Writes)
	m.acts.Add(s.ACTs)
	m.pres.Add(s.PREs)
	m.refs.Add(s.REFs)
	m.piggybacks.Add(s.HiRAPiggybacks)
	m.pairs.Add(s.HiRAPairs)
	m.standalone.Add(s.StandaloneRefreshes)
	m.measuredTicks.Add(uint64(res.Ticks))
}
