package sim

import (
	"fmt"
	"strings"

	"hira/internal/dram"
	"hira/internal/sched"
	"hira/internal/snap"
	"hira/internal/workload"
)

// snapshotMagic identifies version 1 of the System snapshot format. The
// composite format is versioned as a whole: any structural change to a
// layer's codec bumps this string, and old checkpoints read as clean
// misses (the cell runner falls back to simulating from tick zero).
const snapshotMagic = "HIRASYS1"

// maxSnapshotBytes bounds how large a snapshot RestoreSystem will look
// at, so a mislabeled or hostile checkpoint cannot exhaust memory. Real
// snapshots are dominated by the LLC (a few MB).
const maxSnapshotBytes = 64 << 20

// trajectoryKey names a simulation's state trajectory: every input that
// shapes the machine's evolution — system shape, refresh policy
// behavior, per-core workload identities, and seed — but, unlike
// simCellKey, not the warmup/measure horizons. Two cells that differ
// only in tick counts walk the same trajectory, so a checkpoint taken at
// tick T under this key resumes any of them. The field set deliberately
// mirrors simCellKey's: any input that distinguishes two sim cells other
// than the horizons must distinguish their trajectories too.
func trajectoryKey(cfg Config, mix workload.SourceMix) string {
	wl := make([]string, len(mix.Sources))
	for i, s := range mix.Sources {
		wl[i] = s.Key()
	}
	cov := cfg.SPTCoverage
	if cov == 0 {
		cov = defaultSPTCoverage
	}
	key := fmt.Sprintf(
		"traj/v1 cores=%d cap=%d ch=%d rk=%d spt=%g seed=%d per=%d prev=%d slack=%d nrh=%d wl=%s",
		cfg.Cores, cfg.ChipCapacityGbit, cfg.Channels, cfg.Ranks, cov, cfg.Seed,
		cfg.Policy.Periodic, cfg.Policy.Preventive, cfg.Policy.SlackTRC, cfg.Policy.NRH,
		strings.Join(wl, ","))
	// Mitigation cells never checkpoint (their engines refuse Snapshot),
	// but the trajectory key still rides inside every snapshot as the
	// identity cross-check, so it must distinguish them all the same.
	// Suffix only when set, keeping pre-mitigation keys byte-identical.
	if cfg.Policy.Mitigation != "" {
		key += fmt.Sprintf(" mit=%s mp=%d", cfg.Policy.Mitigation, cfg.Policy.MitigationParam)
	}
	return key
}

// checkpointableEngine is the capability Snapshot and RestoreSystem
// require of the refresh engine. The HiRA-MC engine implements it; the
// mitigation zoo engines deliberately do not (their tracker state is
// transient by design), so systems running them simulate from tick zero.
type checkpointableEngine interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader, now dram.Time) error
}

// Snapshot serializes the machine's complete mutable state — cores and
// their workload stream positions, LLC, memory controller, refresh
// engine, and system-level carry state — into a versioned binary
// checkpoint. Restoring it with RestoreSystem yields a system whose
// subsequent commands, stats, and IPC are bit-identical to this one's
// (see TestResumeEquivalence). It fails only when a core runs a custom
// workload stream that does not support position snapshots.
func (s *System) Snapshot() ([]byte, error) {
	ce, ok := s.engine.(checkpointableEngine)
	if !ok {
		return nil, fmt.Errorf("sim: refresh engine %T is not checkpointable", s.engine)
	}
	// Dominated by the LLC's bulk-encoded line state (~17 bytes/line);
	// 1/4 headroom covers everything else without a growth copy.
	w := snap.NewWriterSize(s.llc.SnapshotSize() * 5 / 4)
	w.Raw([]byte(snapshotMagic))
	w.String(trajectoryKey(s.cfg, s.mix))
	w.Int(s.ticksRun)
	w.F64(s.instrBudget)
	for _, b := range s.blocked {
		w.Bool(b)
	}
	w.Len(s.wb.len())
	for i := 0; i < s.wb.n; i++ {
		req := s.wb.buf[(s.wb.head+i)%len(s.wb.buf)]
		w.Int(req.Loc.Channel)
		w.Int(req.Loc.Rank)
		w.Int(req.Loc.Bank)
		w.Int(req.Loc.Row)
		w.Int(req.Loc.Col)
		w.Int(req.Core)
	}
	for _, c := range s.cores {
		if err := c.Snapshot(w); err != nil {
			return nil, err
		}
	}
	s.llc.Snapshot(w)
	s.ctrl.Snapshot(w)
	ce.Snapshot(w)
	return w.Bytes(), nil
}

// aloneMagic identifies version 1 of the alone-run snapshot format.
const aloneMagic = "HIRAALN1"

// aloneTrajectoryKey names an alone-IPC reference run's trajectory: its
// workload identity and seed, horizon-free for the same reason
// trajectoryKey is.
func aloneTrajectoryKey(src workload.Source, seed uint64) string {
	return fmt.Sprintf("alonetraj/v1 wl=%s seed=%d", src.Key(), seed)
}

// Snapshot serializes the alone-run's state: carry budget, core (with
// its stream position), LLC, and in-flight fixed-latency loads.
func (a *aloneRun) Snapshot() ([]byte, error) {
	w := snap.NewWriterSize(a.mem.llc.SnapshotSize() * 5 / 4)
	w.Raw([]byte(aloneMagic))
	w.String(a.key)
	w.Int(a.tick)
	w.F64(a.budget)
	if err := a.c.Snapshot(w); err != nil {
		return nil, err
	}
	a.mem.llc.Snapshot(w)
	w.Len(len(a.mem.inflight))
	for _, req := range a.mem.inflight {
		w.U64(req.token)
		w.Int(req.left)
	}
	return w.Bytes(), nil
}

// restoreAloneRun rebuilds the alone-run for (src, seed) and restores
// the checkpoint into it; any mismatch, corruption, or truncation is an
// error the cell runner treats as a miss.
func restoreAloneRun(src workload.Source, seed uint64, data []byte) (*aloneRun, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	if len(data) < len(aloneMagic) || string(data[:len(aloneMagic)]) != aloneMagic {
		return nil, fmt.Errorf("sim: not a %s snapshot", aloneMagic)
	}
	a := newAloneRun(src, seed)
	r := snap.NewReader(data[len(aloneMagic):])
	if key := r.String(); key != a.key {
		return nil, fmt.Errorf("sim: snapshot is for a different alone trajectory (%q)", key)
	}
	a.tick = r.Int()
	a.budget = r.F64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if a.tick < 0 {
		return nil, fmt.Errorf("sim: snapshot tick count %d out of range", a.tick)
	}
	if !(a.budget >= 0 && a.budget < 8) {
		return nil, fmt.Errorf("sim: snapshot instruction budget %v out of range", a.budget)
	}
	if err := a.c.Restore(r); err != nil {
		return nil, err
	}
	if err := a.mem.llc.Restore(r); err != nil {
		return nil, err
	}
	n := r.Len(a.c.Window, 2)
	for i := 0; i < n; i++ {
		req := aloneReq{token: r.U64(), left: r.Int()}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if req.left < 1 || req.left > a.mem.latencyTicks {
			return nil, fmt.Errorf("sim: in-flight load %d latency %d out of range", i, req.left)
		}
		a.mem.inflight = append(a.mem.inflight, req)
	}
	r.Done()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// RestoreSystem rebuilds the machine for (cfg, mix) and restores the
// checkpoint into it. The snapshot embeds its trajectory key, so
// restoring into a differently configured system — or a hash-colliding
// checkpoint — fails cleanly, as does any corrupt or truncated input:
// callers treat every error as a cache miss and simulate from scratch.
func RestoreSystem(cfg Config, mix workload.SourceMix, data []byte) (*System, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("sim: not a %s snapshot", snapshotMagic)
	}
	s, err := NewSystem(cfg, mix)
	if err != nil {
		return nil, err
	}
	r := snap.NewReader(data[len(snapshotMagic):])
	if key := r.String(); key != trajectoryKey(cfg, mix) {
		return nil, fmt.Errorf("sim: snapshot is for a different trajectory (%q)", key)
	}
	s.ticksRun = r.Int()
	s.instrBudget = r.F64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// The controller clock advances exactly one tCK per tick; a snapshot
	// violating that is corrupt (and huge tick counts would overflow the
	// cross-check).
	if s.ticksRun < 0 || int64(s.ticksRun) > (int64(1)<<53)/int64(s.timing.TCK) {
		return nil, fmt.Errorf("sim: snapshot tick count %d out of range", s.ticksRun)
	}
	// The fractional instruction budget lives in [0, 1); anything larger
	// would hand a restored core an absurd slot budget.
	if !(s.instrBudget >= 0 && s.instrBudget < 8) {
		return nil, fmt.Errorf("sim: snapshot instruction budget %v out of range", s.instrBudget)
	}
	for i := range s.blocked {
		s.blocked[i] = r.Bool()
	}
	wbN := r.Len(maxSnapshotBytes, 5)
	for i := 0; i < wbN; i++ {
		var req sched.Request
		req.Write = true
		req.Loc.Channel = r.Int()
		req.Loc.Rank = r.Int()
		req.Loc.Bank = r.Int()
		req.Loc.Row = r.Int()
		req.Loc.Col = r.Int()
		req.Core = r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if req.Loc.Channel < 0 || req.Loc.Channel >= s.org.Channels ||
			req.Loc.Rank < 0 || req.Loc.Rank >= s.org.RanksPerChannel ||
			req.Loc.Bank < 0 || req.Loc.Bank >= s.org.BanksPerRank() ||
			req.Loc.Row < 0 || req.Loc.Row >= s.org.RowsPerBank() ||
			req.Loc.Col < 0 ||
			req.Core < 0 || req.Core >= cfg.Cores {
			return nil, fmt.Errorf("sim: buffered writeback %d out of range", i)
		}
		s.wb.push(req)
	}
	for _, c := range s.cores {
		if err := c.Restore(r); err != nil {
			return nil, err
		}
	}
	if err := s.llc.Restore(r); err != nil {
		return nil, err
	}
	if err := s.ctrl.Restore(r, cfg.Cores); err != nil {
		return nil, err
	}
	if s.ctrl.Now() != dram.Time(s.ticksRun)*s.timing.TCK {
		return nil, fmt.Errorf("sim: snapshot clock %v disagrees with tick count %d",
			s.ctrl.Now(), s.ticksRun)
	}
	ce, ok := s.engine.(checkpointableEngine)
	if !ok {
		return nil, fmt.Errorf("sim: refresh engine %T is not checkpointable", s.engine)
	}
	if err := ce.Restore(r, s.ctrl.Now()); err != nil {
		return nil, err
	}
	r.Done()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := range s.idleDirty {
		s.idleDirty[i] = true
	}
	return s, nil
}
