package sim

import (
	"fmt"
	"strings"

	"hira/internal/dram"
	"hira/internal/sched"
	"hira/internal/snap"
	"hira/internal/workload"
)

// snapshotMagic identifies version 2 of the full System snapshot
// format: version 1 plus a header-extractable mark section (the
// cumulative scheduler counters and per-core retirement counts), so a
// past-warmup resume reads its warmup mark straight from the header
// instead of restoring a full second System. The composite format is
// versioned as a whole: any structural change to a layer's codec bumps
// this string. Version 1 snapshots are still accepted as full decodes.
const snapshotMagic = "HIRASYS2"

// snapshotMagicV1 identifies the legacy full-snapshot format (no mark
// section); RestoreSystem keeps reading it so stores survive upgrades.
const snapshotMagicV1 = "HIRASYS1"

// deltaMagic identifies version 1 of the differential snapshot format:
// the v2 header (trajectory key, tick, mark section) plus the chain
// linkage (base tick, chain depth), then every small state block in
// full and only the LLC lines touched since the base checkpoint. A
// delta restores by applying it on top of its base's restored state.
const deltaMagic = "HIRADLT1"

// maxDeltaChain bounds how many deltas may chain atop one full
// snapshot before the writer is forced to emit a full one (and the
// reader rejects longer chains as corrupt). It caps both restore cost
// and the blast radius of a lost base.
const maxDeltaChain = 8

// maxSnapshotBytes bounds how large a snapshot RestoreSystem will look
// at, so a mislabeled or hostile checkpoint cannot exhaust memory. Real
// snapshots are dominated by the LLC (a few MB).
const maxSnapshotBytes = 64 << 20

// trajectoryKey names a simulation's state trajectory: every input that
// shapes the machine's evolution — system shape, refresh policy
// behavior, per-core workload identities, and seed — but, unlike
// simCellKey, not the warmup/measure horizons. Two cells that differ
// only in tick counts walk the same trajectory, so a checkpoint taken at
// tick T under this key resumes any of them. The field set deliberately
// mirrors simCellKey's: any input that distinguishes two sim cells other
// than the horizons must distinguish their trajectories too.
func trajectoryKey(cfg Config, mix workload.SourceMix) string {
	wl := make([]string, len(mix.Sources))
	for i, s := range mix.Sources {
		wl[i] = s.Key()
	}
	cov := cfg.SPTCoverage
	if cov == 0 {
		cov = defaultSPTCoverage
	}
	key := fmt.Sprintf(
		"traj/v1 cores=%d cap=%d ch=%d rk=%d spt=%g seed=%d per=%d prev=%d slack=%d nrh=%d wl=%s",
		cfg.Cores, cfg.ChipCapacityGbit, cfg.Channels, cfg.Ranks, cov, cfg.Seed,
		cfg.Policy.Periodic, cfg.Policy.Preventive, cfg.Policy.SlackTRC, cfg.Policy.NRH,
		strings.Join(wl, ","))
	// Mitigation cells never checkpoint (their engines refuse Snapshot),
	// but the trajectory key still rides inside every snapshot as the
	// identity cross-check, so it must distinguish them all the same.
	// Suffix only when set, keeping pre-mitigation keys byte-identical.
	if cfg.Policy.Mitigation != "" {
		key += fmt.Sprintf(" mit=%s mp=%d", cfg.Policy.Mitigation, cfg.Policy.MitigationParam)
	}
	return key
}

// checkpointableEngine is the capability Snapshot and RestoreSystem
// require of the refresh engine. The HiRA-MC engine implements it; the
// mitigation zoo engines deliberately do not (their tracker state is
// transient by design), so systems running them simulate from tick zero.
type checkpointableEngine interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader, now dram.Time) error
}

// Snapshot serializes the machine's complete mutable state — cores and
// their workload stream positions, LLC, memory controller, refresh
// engine, and system-level carry state — into a versioned binary
// checkpoint. Restoring it with RestoreSystem yields a system whose
// subsequent commands, stats, and IPC are bit-identical to this one's
// (see TestResumeEquivalence). It fails only when a core runs a custom
// workload stream that does not support position snapshots.
func (s *System) Snapshot() ([]byte, error) {
	ce, ok := s.engine.(checkpointableEngine)
	if !ok {
		return nil, fmt.Errorf("sim: refresh engine %T is not checkpointable", s.engine)
	}
	// Dominated by the LLC's bulk-encoded line state (~17 bytes/line);
	// 1/4 headroom covers everything else without a growth copy.
	w := snap.NewWriterSize(s.llc.SnapshotSize() * 5 / 4)
	w.Raw([]byte(snapshotMagic))
	w.String(s.trajKey())
	w.Int(s.ticksRun)
	s.snapshotMark(w)
	if err := s.snapshotBody(w, ce, false); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// snapshotMark appends the header mark section: the 14 cumulative
// scheduler counters (via the controller codec) and each core's
// retirement count — exactly the state mark()/resultSince need at a
// warmup boundary. The forensics tally is deliberately absent: cells
// with forensics enabled never checkpoint (runSimCell disables the
// snapshot store for them), so every stored snapshot's tally is zero.
func (s *System) snapshotMark(w *snap.Writer) {
	sched.SnapshotStats(w, s.ctrl.Stats)
	w.Len(len(s.cores))
	for _, c := range s.cores {
		w.U64(c.Retired)
	}
}

// snapshotBody appends everything after the header: carry state,
// buffered writebacks, cores, LLC (full or touched-lines delta),
// controller, and refresh engine.
func (s *System) snapshotBody(w *snap.Writer, ce checkpointableEngine, llcDelta bool) error {
	w.F64(s.instrBudget)
	for _, b := range s.blocked {
		w.Bool(b)
	}
	w.Len(s.wb.len())
	for i := 0; i < s.wb.n; i++ {
		req := s.wb.buf[(s.wb.head+i)%len(s.wb.buf)]
		w.Int(req.Loc.Channel)
		w.Int(req.Loc.Rank)
		w.Int(req.Loc.Bank)
		w.Int(req.Loc.Row)
		w.Int(req.Loc.Col)
		w.Int(req.Core)
	}
	for _, c := range s.cores {
		if err := c.Snapshot(w); err != nil {
			return err
		}
	}
	if llcDelta {
		s.llc.SnapshotDelta(w)
	} else {
		s.llc.Snapshot(w)
	}
	s.ctrl.Snapshot(w)
	ce.Snapshot(w)
	return nil
}

// SnapshotDelta serializes a differential checkpoint against the
// trajectory's previous checkpoint at baseTick: the full v2 header and
// every small state block in full, but only the LLC lines touched
// since that checkpoint (the LLC dominates a full snapshot's ~2 MB, so
// a delta's size tracks the interval's working set instead). depth is
// the delta's position in its chain (1 = directly atop a full
// snapshot); callers must force a full snapshot once depth would
// exceed maxDeltaChain. The caller owns the touched-line epoch: it
// must ResetTouched only after the delta is durably saved.
func (s *System) SnapshotDelta(baseTick, depth int) ([]byte, error) {
	ce, ok := s.engine.(checkpointableEngine)
	if !ok {
		return nil, fmt.Errorf("sim: refresh engine %T is not checkpointable", s.engine)
	}
	if baseTick < 0 || baseTick >= s.ticksRun {
		return nil, fmt.Errorf("sim: delta base tick %d not before tick %d", baseTick, s.ticksRun)
	}
	if depth < 1 || depth > maxDeltaChain {
		return nil, fmt.Errorf("sim: delta chain depth %d out of range", depth)
	}
	w := snap.NewWriterSize(s.SnapshotDeltaSize())
	w.Raw([]byte(deltaMagic))
	w.String(s.trajKey())
	w.Int(s.ticksRun)
	s.snapshotMark(w)
	w.Int(baseTick)
	w.Int(depth)
	if err := s.snapshotBody(w, ce, true); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// ResetTouchedLines starts a new differential-checkpoint epoch: the
// next SnapshotDelta encodes only LLC lines touched from here on.
// Callers reset exactly when a checkpoint of the current state is
// durably stored (that checkpoint is the next delta's base).
func (s *System) ResetTouchedLines() { s.llc.ResetTouched() }

// SnapshotDeltaSize returns an upper bound on SnapshotDelta's encoded
// size for the current state, so the encoder pre-sizes its buffer and
// never pays a growth reallocation.
func (s *System) SnapshotDeltaSize() int {
	n := len(deltaMagic) + 10 + len(s.trajKey()) // magic + key
	n += 10 + 14*10 + 10 + 10*len(s.cores)       // tick + mark section
	n += 10 + 10 + 10 + len(s.blocked)           // chain linkage + budget + blocked
	n += 10 + 60*s.wb.len()                      // buffered writebacks
	for _, c := range s.cores {
		n += c.SnapshotSize()
	}
	n += s.llc.SnapshotDeltaSize()
	n += s.ctrl.SnapshotSize()
	if se, ok := s.engine.(interface{ SnapshotSize() int }); ok {
		n += se.SnapshotSize()
	} else {
		n += 1 << 16
	}
	return n
}

// aloneMagic identifies version 1 of the alone-run snapshot format.
const aloneMagic = "HIRAALN1"

// aloneTrajectoryKey names an alone-IPC reference run's trajectory: its
// workload identity and seed, horizon-free for the same reason
// trajectoryKey is.
func aloneTrajectoryKey(src workload.Source, seed uint64) string {
	return fmt.Sprintf("alonetraj/v1 wl=%s seed=%d", src.Key(), seed)
}

// Snapshot serializes the alone-run's state: carry budget, core (with
// its stream position), LLC, and in-flight fixed-latency loads.
func (a *aloneRun) Snapshot() ([]byte, error) {
	w := snap.NewWriterSize(a.mem.llc.SnapshotSize() * 5 / 4)
	w.Raw([]byte(aloneMagic))
	w.String(a.key)
	w.Int(a.tick)
	w.F64(a.budget)
	if err := a.c.Snapshot(w); err != nil {
		return nil, err
	}
	a.mem.llc.Snapshot(w)
	w.Len(len(a.mem.inflight))
	for _, req := range a.mem.inflight {
		w.U64(req.token)
		w.Int(req.left)
	}
	return w.Bytes(), nil
}

// restoreAloneRun rebuilds the alone-run for (src, seed) and restores
// the checkpoint into it; any mismatch, corruption, or truncation is an
// error the cell runner treats as a miss.
func restoreAloneRun(src workload.Source, seed uint64, data []byte) (*aloneRun, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	if len(data) < len(aloneMagic) || string(data[:len(aloneMagic)]) != aloneMagic {
		return nil, fmt.Errorf("sim: not a %s snapshot", aloneMagic)
	}
	a := newAloneRun(src, seed)
	r := snap.NewReader(data[len(aloneMagic):])
	if key := r.String(); key != a.key {
		return nil, fmt.Errorf("sim: snapshot is for a different alone trajectory (%q)", key)
	}
	a.tick = r.Int()
	a.budget = r.F64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if a.tick < 0 {
		return nil, fmt.Errorf("sim: snapshot tick count %d out of range", a.tick)
	}
	if !(a.budget >= 0 && a.budget < 8) {
		return nil, fmt.Errorf("sim: snapshot instruction budget %v out of range", a.budget)
	}
	if err := a.c.Restore(r); err != nil {
		return nil, err
	}
	if err := a.mem.llc.Restore(r); err != nil {
		return nil, err
	}
	n := r.Len(a.c.Window, 2)
	for i := 0; i < n; i++ {
		req := aloneReq{token: r.U64(), left: r.Int()}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if req.left < 1 || req.left > a.mem.latencyTicks {
			return nil, fmt.Errorf("sim: in-flight load %d latency %d out of range", i, req.left)
		}
		a.mem.inflight = append(a.mem.inflight, req)
	}
	r.Done()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// RestoreSystem rebuilds the machine for (cfg, mix) and restores the
// checkpoint into it. The snapshot embeds its trajectory key, so
// restoring into a differently configured system — or a hash-colliding
// checkpoint — fails cleanly, as does any corrupt or truncated input:
// callers treat every error as a cache miss and simulate from scratch.
func RestoreSystem(cfg Config, mix workload.SourceMix, data []byte) (*System, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	var v2 bool
	switch {
	case hasMagic(data, snapshotMagic):
		v2 = true
	case hasMagic(data, snapshotMagicV1):
	default:
		return nil, fmt.Errorf("sim: not a %s snapshot", snapshotMagic)
	}
	s, err := NewSystem(cfg, mix)
	if err != nil {
		return nil, err
	}
	r := snap.NewReader(data[len(snapshotMagic):])
	if key := r.String(); key != s.trajKey() {
		return nil, fmt.Errorf("sim: snapshot is for a different trajectory (%q)", key)
	}
	s.ticksRun = r.Int()
	if v2 {
		if _, err := readMarkSection(r, cfg.Cores); err != nil {
			return nil, err
		}
	}
	if err := s.restoreBody(r, false); err != nil {
		return nil, err
	}
	return s, nil
}

// hasMagic reports whether data starts with the given format magic.
func hasMagic(data []byte, magic string) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

// maxMarkCores bounds the mark section's core count while parsing
// headers whose system shape is not yet known.
const maxMarkCores = 4096

// readMarkSection reads the header mark section written by
// snapshotMark. cores is the expected core count; pass -1 to skip
// validation (header-only parses that don't know the shape yet).
func readMarkSection(r *snap.Reader, cores int) (runMark, error) {
	m := runMark{sched: sched.RestoreStats(r)}
	n := r.Len(maxMarkCores, 1)
	if r.Err() != nil {
		return runMark{}, r.Err()
	}
	if cores >= 0 && n != cores {
		r.Failf("mark section has %d cores, system has %d", n, cores)
		return runMark{}, r.Err()
	}
	m.retired = make([]uint64, n)
	for i := range m.retired {
		m.retired[i] = r.U64()
	}
	return m, r.Err()
}

// readSnapshotMark decodes only the header of a v2 full or delta
// snapshot: its trajectory key, tick, and mark. It reports ok=false
// with a nil error for legacy v1 snapshots, whose mark requires a full
// decode. This is what makes a past-warmup resume cheap: the warmup
// mark is 14 counters plus per-core retirement counts, not a second
// restored System.
func readSnapshotMark(data []byte, cores int) (key string, tick int, m runMark, ok bool, err error) {
	if len(data) > maxSnapshotBytes {
		return "", 0, runMark{}, false, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	switch {
	case hasMagic(data, snapshotMagic), hasMagic(data, deltaMagic):
	case hasMagic(data, snapshotMagicV1):
		return "", 0, runMark{}, false, nil
	default:
		return "", 0, runMark{}, false, fmt.Errorf("sim: not a %s snapshot", snapshotMagic)
	}
	r := snap.NewReader(data[len(snapshotMagic):])
	key = r.String()
	tick = r.Int()
	m, err = readMarkSection(r, cores)
	if err != nil {
		return "", 0, runMark{}, false, err
	}
	if tick < 0 {
		return "", 0, runMark{}, false, fmt.Errorf("sim: snapshot tick count %d out of range", tick)
	}
	return key, tick, m, true, nil
}

// readDeltaHeader parses a differential snapshot's identity and chain
// linkage without decoding any machine state.
func readDeltaHeader(data []byte) (key string, tick, baseTick, depth int, err error) {
	if len(data) > maxSnapshotBytes {
		return "", 0, 0, 0, fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	if !hasMagic(data, deltaMagic) {
		return "", 0, 0, 0, fmt.Errorf("sim: not a %s snapshot", deltaMagic)
	}
	r := snap.NewReader(data[len(deltaMagic):])
	key = r.String()
	tick = r.Int()
	if _, err := readMarkSection(r, -1); err != nil {
		return "", 0, 0, 0, err
	}
	baseTick = r.Int()
	depth = r.Int()
	if err := r.Err(); err != nil {
		return "", 0, 0, 0, err
	}
	if baseTick < 0 || tick <= baseTick {
		return "", 0, 0, 0, fmt.Errorf("sim: delta tick %d does not follow base %d", tick, baseTick)
	}
	if depth < 1 || depth > maxDeltaChain {
		return "", 0, 0, 0, fmt.Errorf("sim: delta chain depth %d out of range", depth)
	}
	return key, tick, baseTick, depth, nil
}

// applySystemDelta applies a differential snapshot on top of s, which
// must hold the restored state of the delta's base checkpoint (its
// tick is cross-checked against the delta's recorded base). On success
// s is the machine at the delta's tick, bit-identical to one restored
// from a full snapshot taken there.
func applySystemDelta(s *System, data []byte) error {
	if len(data) > maxSnapshotBytes {
		return fmt.Errorf("sim: snapshot exceeds the %d-byte limit", maxSnapshotBytes)
	}
	if !hasMagic(data, deltaMagic) {
		return fmt.Errorf("sim: not a %s snapshot", deltaMagic)
	}
	r := snap.NewReader(data[len(deltaMagic):])
	if key := r.String(); key != s.trajKey() {
		return fmt.Errorf("sim: delta is for a different trajectory (%q)", key)
	}
	tick := r.Int()
	if _, err := readMarkSection(r, len(s.cores)); err != nil {
		return err
	}
	baseTick := r.Int()
	depth := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if depth < 1 || depth > maxDeltaChain {
		return fmt.Errorf("sim: delta chain depth %d out of range", depth)
	}
	if baseTick != s.ticksRun {
		return fmt.Errorf("sim: delta chains to tick %d, system is at %d", baseTick, s.ticksRun)
	}
	if tick <= baseTick {
		return fmt.Errorf("sim: delta tick %d does not follow base %d", tick, baseTick)
	}
	s.ticksRun = tick
	return s.restoreBody(r, true)
}

// restoreBody reads everything snapshotBody wrote, validating each
// block; s.ticksRun must already hold the snapshot's tick. When
// llcDelta is set the LLC section is a touched-lines delta applied on
// top of the LLC's current (base) state.
func (s *System) restoreBody(r *snap.Reader, llcDelta bool) error {
	cfg := s.cfg
	// The controller clock advances exactly one tCK per tick; a snapshot
	// violating that is corrupt (and huge tick counts would overflow the
	// cross-check).
	if s.ticksRun < 0 || int64(s.ticksRun) > (int64(1)<<53)/int64(s.timing.TCK) {
		return fmt.Errorf("sim: snapshot tick count %d out of range", s.ticksRun)
	}
	s.instrBudget = r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	// The fractional instruction budget lives in [0, 1); anything larger
	// would hand a restored core an absurd slot budget.
	if !(s.instrBudget >= 0 && s.instrBudget < 8) {
		return fmt.Errorf("sim: snapshot instruction budget %v out of range", s.instrBudget)
	}
	for i := range s.blocked {
		s.blocked[i] = r.Bool()
	}
	s.wb = wbRing{}
	wbN := r.Len(maxSnapshotBytes, 5)
	for i := 0; i < wbN; i++ {
		var req sched.Request
		req.Write = true
		req.Loc.Channel = r.Int()
		req.Loc.Rank = r.Int()
		req.Loc.Bank = r.Int()
		req.Loc.Row = r.Int()
		req.Loc.Col = r.Int()
		req.Core = r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if req.Loc.Channel < 0 || req.Loc.Channel >= s.org.Channels ||
			req.Loc.Rank < 0 || req.Loc.Rank >= s.org.RanksPerChannel ||
			req.Loc.Bank < 0 || req.Loc.Bank >= s.org.BanksPerRank() ||
			req.Loc.Row < 0 || req.Loc.Row >= s.org.RowsPerBank() ||
			req.Loc.Col < 0 ||
			req.Core < 0 || req.Core >= cfg.Cores {
			return fmt.Errorf("sim: buffered writeback %d out of range", i)
		}
		s.wb.push(req)
	}
	for _, c := range s.cores {
		if err := c.Restore(r); err != nil {
			return err
		}
	}
	if llcDelta {
		if err := s.llc.ApplyDelta(r); err != nil {
			return err
		}
	} else {
		if err := s.llc.Restore(r); err != nil {
			return err
		}
	}
	if err := s.ctrl.Restore(r, cfg.Cores); err != nil {
		return err
	}
	if s.ctrl.Now() != dram.Time(s.ticksRun)*s.timing.TCK {
		return fmt.Errorf("sim: snapshot clock %v disagrees with tick count %d",
			s.ctrl.Now(), s.ticksRun)
	}
	ce, ok := s.engine.(checkpointableEngine)
	if !ok {
		return fmt.Errorf("sim: refresh engine %T is not checkpointable", s.engine)
	}
	if err := ce.Restore(r, s.ctrl.Now()); err != nil {
		return err
	}
	r.Done()
	if err := r.Err(); err != nil {
		return err
	}
	for i := range s.idleDirty {
		s.idleDirty[i] = true
	}
	return nil
}
