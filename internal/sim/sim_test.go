package sim

import (
	"context"
	"errors"
	"testing"

	"hira/internal/workload"
)

// quickOpts keeps integration sweeps fast; shapes, not precision.
func quickOpts() Options {
	return Options{Workloads: 2, Cores: 8, Warmup: 10000, Measure: 40000, Seed: 1}
}

func TestAloneIPCOrdering(t *testing.T) {
	mcf, _ := workload.ProfileByName("mcf")
	hmmer, _ := workload.ProfileByName("hmmer")
	ipcMCF := AloneIPC(mcf, 1, 40000)
	ipcHMMER := AloneIPC(hmmer, 1, 40000)
	if ipcMCF <= 0 || ipcHMMER <= 0 {
		t.Fatalf("non-positive alone IPC: mcf=%f hmmer=%f", ipcMCF, ipcHMMER)
	}
	if ipcMCF >= ipcHMMER {
		t.Errorf("memory-bound mcf IPC (%f) should be below compute-bound hmmer (%f)", ipcMCF, ipcHMMER)
	}
}

func TestSystemRunsAndProducesIPC(t *testing.T) {
	cfg := DefaultConfig()
	mix := workload.Mixes(1, 8, 1)[0].Sources()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(5000, 30000, nil)
	if len(res.IPC) != 8 {
		t.Fatalf("got %d IPC values", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Errorf("core %d IPC = %f out of (0,4]", i, ipc)
		}
	}
	if res.Sched.Reads == 0 {
		t.Error("no reads reached memory")
	}
}

func TestSystemDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = HiRAPeriodicPolicy(2)
	mix := workload.Mixes(1, 8, 1)[0].Sources()
	run := func() Result {
		sys, err := NewSystem(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(5000, 20000, nil)
	}
	a, b := run(), run()
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("core %d IPC differs across identical runs", i)
		}
	}
	if a.Sched != b.Sched {
		t.Error("controller stats differ across identical runs")
	}
}

func TestNoRefreshBeatsBaseline(t *testing.T) {
	scores, err := RunPolicies(context.Background(), DefaultConfig(),
		[]RefreshPolicy{NoRefreshPolicy(), BaselinePolicy()}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].WS <= scores[1].WS {
		t.Errorf("NoRefresh WS %.3f not above Baseline %.3f", scores[0].WS, scores[1].WS)
	}
}

func TestFig9ShapeAtHighCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rows, err := Fig9(context.Background(), quickOpts(), []int{8, 128})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rows[0], rows[1]
	// Refresh hurts more at 128Gb than 8Gb for the baseline.
	if hi.NormNoRefresh["Baseline"] >= lo.NormNoRefresh["Baseline"] {
		t.Errorf("baseline degradation did not grow with capacity: %.3f vs %.3f",
			hi.NormNoRefresh["Baseline"], lo.NormNoRefresh["Baseline"])
	}
	// §8's headline: at 128Gb, HiRA improves over the baseline.
	if hi.NormBaseline["HiRA-2"] <= 1.0 {
		t.Errorf("HiRA-2 at 128Gb = %.3f of baseline, want > 1", hi.NormBaseline["HiRA-2"])
	}
	// Baseline costs roughly a quarter of performance at 128Gb (paper:
	// 26.3% degradation).
	if d := 1 - hi.NormNoRefresh["Baseline"]; d < 0.10 || d > 0.40 {
		t.Errorf("baseline degradation at 128Gb = %.1f%%, want ~20-26%%", d*100)
	}
}

func TestFig12ShapeAtLowNRH(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rows, err := Fig12(context.Background(), quickOpts(), []int{1024, 64})
	if err != nil {
		t.Fatal(err)
	}
	at1024, at64 := rows[0], rows[1]
	// PARA's overhead grows dramatically as NRH shrinks (§9.2).
	if at64.NormBaseline["PARA"] >= at1024.NormBaseline["PARA"] {
		t.Error("PARA overhead did not grow with RowHammer vulnerability")
	}
	if at64.NormBaseline["PARA"] > 0.5 {
		t.Errorf("PARA at NRH=64 = %.3f of baseline; paper collapses to ~0.04", at64.NormBaseline["PARA"])
	}
	// §9.2's headline: HiRA-4 speeds up PARA by multiples at NRH=64
	// (paper: 3.73x).
	if s := at64.NormPARA["HiRA-4"]; s < 2 {
		t.Errorf("HiRA-4 speedup over PARA at NRH=64 = %.2fx, want > 2x", s)
	}
	// At NRH=1024 the gain is modest, well under the NRH=64 gain.
	if at1024.NormPARA["HiRA-4"] >= at64.NormPARA["HiRA-4"] {
		t.Error("HiRA's PARA speedup should grow as NRH shrinks")
	}
}

func TestChannelSweepScalesPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rows, err := Fig13(context.Background(), quickOpts(), []int{1, 4}, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	// More channels: higher absolute WS for both policies (§10.1).
	if rows[1].WS["Baseline"] <= rows[0].WS["Baseline"] {
		t.Errorf("baseline did not scale with channels: %v vs %v", rows[1].WS, rows[0].WS)
	}
	if rows[1].WS["HiRA-2"] <= rows[0].WS["HiRA-2"] {
		t.Errorf("HiRA-2 did not scale with channels: %v vs %v", rows[1].WS, rows[0].WS)
	}
}

func TestRankSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rows, err := Fig14(context.Background(), quickOpts(), []int{1, 2}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for name, ws := range r.WS {
			if ws <= 0 {
				t.Errorf("ranks=%d %s WS = %f", r.X, name, ws)
			}
		}
	}
}

// TestCancelledSweepReturnsCtxErr asserts cancellation propagates
// through the sweep entry points: a pre-cancelled context does no work,
// and a context cancelled mid-sweep (here: after the first cell
// resolves) interrupts the in-flight simulations and surfaces ctx.Err().
func TestCancelledSweepReturnsCtxErr(t *testing.T) {
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	var stats EngineStats
	opts := quickOpts()
	opts.Stats = &stats
	if _, err := Fig9(pre, opts, []int{8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Fig9 err = %v, want context.Canceled", err)
	}
	if stats.Simulated != 0 {
		t.Errorf("pre-cancelled sweep simulated %d cells", stats.Simulated)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts = quickOpts()
	opts.Progress = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := Fig9(ctx, opts, []int{8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancelled Fig9 err = %v, want context.Canceled", err)
	}
}

func TestPolicyConstructors(t *testing.T) {
	if got := HiRAPeriodicPolicy(4).Name; got != "HiRA-4" {
		t.Errorf("name = %s", got)
	}
	if got := PARAHiRAPolicy(64, 2).Name; got != "HiRA-2" {
		t.Errorf("name = %s", got)
	}
	if p := PARAPolicy(128); p.NRH != 128 {
		t.Errorf("NRH = %d", p.NRH)
	}
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	mix := workload.Mixes(1, 4, 1)[0].Sources() // 4 workloads for 8 cores
	if _, err := NewSystem(cfg, mix); err == nil {
		t.Error("accepted mix/core mismatch")
	}
}
