package sim

// Golden-figure conformance suite: reduced Fig. 9 and Fig. 13 sweeps are
// pinned as JSON fixtures in testdata/, so scheduler/engine refactors are
// diffed against known-good figure rows instead of only against
// themselves (the differential tests prove ref == opt, but both could
// drift together; the fixtures catch that). Regenerate deliberately with
//
//	go test ./internal/sim -run TestGoldenFigures -update
//
// and review the fixture diff like any other code change.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure fixtures in testdata/")

// goldenOpts is the reduced sweep shape: small enough for CI (including
// the race job), large enough to exercise multiple mixes and policies.
func goldenOpts() Options {
	return Options{Workloads: 2, Cores: 4, Warmup: 2000, Measure: 6000, Seed: 1}
}

func TestGoldenFigures(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name   string
		kind   string
		xs     []int
		params []int
	}{
		// Reduced Fig. 9 grid: two capacities, all six periodic policies.
		{name: "golden_fig9", kind: "fig9", params: []int{2, 8}},
		// Reduced Fig. 13 grid: two channel counts at one capacity.
		{name: "golden_fig13", kind: "fig13", xs: []int{1, 2}, params: []int{8}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			got, err := Figure(ctx, c.kind, goldenOpts(), c.xs, c.params)
			if err != nil {
				t.Fatal(err)
			}
			// Engine stats depend on cache warmth, not on the figures;
			// they are not part of the golden contract.
			got.Stats = EngineStats{}

			path := filepath.Join("testdata", c.name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate the fixture)", err)
			}
			var want FigureResult
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("fixture %s: %v", path, err)
			}
			// Go's JSON float encoding round-trips float64 exactly, so
			// the decoded fixture must equal the fresh rows bit for bit.
			if !reflect.DeepEqual(got, &want) {
				t.Fatalf("%s rows diverged from the golden fixture %s\n"+
					"got:  %+v\nwant: %+v\n"+
					"(if the change is intentional, regenerate with -update and review the diff)",
					c.kind, path, got, &want)
			}
		})
	}
}
