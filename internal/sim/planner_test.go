package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"hira/internal/engine"
	"hira/internal/workload"
)

// plannerTestPolicies is the six-policy figure set every planner
// differential runs against (the same shapes TestResumeEquivalence
// covers: ideal, conventional REF, periodic HiRA at two slacks, PARA,
// and PARA+HiRA).
func plannerTestPolicies() []RefreshPolicy {
	return []RefreshPolicy{
		NoRefreshPolicy(),
		BaselinePolicy(),
		HiRAPeriodicPolicy(2),
		HiRAPeriodicPolicy(8),
		PARAPolicy(256),
		PARAHiRAPolicy(256, 4),
	}
}

// TestPlannerDifferential proves the tentpole guarantee: a multi-horizon
// sweep resolved by the trajectory-coalescing planner produces rows
// bit-identical to the per-cell path, across all six figure policies,
// while doing measurably less machine work (simulated plus
// checkpoint-restored ticks).
func TestPlannerDifferential(t *testing.T) {
	ctx := context.Background()
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := plannerTestPolicies()
	measures := []int{3000, 6000}
	opts := Options{Workloads: 1, Cores: 4, Warmup: 2000, Seed: 5}

	var planned EngineStats
	pOpts := opts
	pOpts.Stats = &planned
	got, err := NewEngine(EngineConfig{SnapInterval: 1500}).
		RunPoliciesHorizons(ctx, base, policies, pOpts, measures)
	if err != nil {
		t.Fatal(err)
	}

	var unplanned EngineStats
	uOpts := opts
	uOpts.Stats = &unplanned
	uOpts.NoPlanner = true
	want, err := NewEngine(EngineConfig{SnapInterval: 1500}).
		RunPoliciesHorizons(ctx, base, policies, uOpts, measures)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planned rows diverged from per-cell path:\nplanned:   %+v\nunplanned: %+v", got, want)
	}
	if planned.PlannedPasses == 0 || planned.PlannedCells == 0 {
		t.Fatalf("planner did not engage: %+v", planned)
	}
	// The planner's savings: each trajectory simulates once to its max
	// horizon, instead of one restore-and-extend (or cold rerun) per
	// horizon. Simulated + restored ticks is the total machine work.
	plannedWork := planned.SimulatedTicks + planned.ResumedTicks
	unplannedWork := unplanned.SimulatedTicks + unplanned.ResumedTicks
	if plannedWork >= unplannedWork {
		t.Fatalf("planned work %d ticks >= unplanned %d", plannedWork, unplannedWork)
	}
}

// TestPlannerDifferentialForensicsAndMitigation extends the differential
// to the cell kinds that cannot checkpoint: forensics-armed cells and
// mitigation-zoo policies run their passes cold, but still coalesce and
// still must match the per-cell path exactly.
func TestPlannerDifferentialForensicsAndMitigation(t *testing.T) {
	ctx := context.Background()
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := []RefreshPolicy{BaselinePolicy(), GraphenePolicy(128, 0), RFMPolicy(128, 0)}
	measures := []int{2000, 4000}
	opts := Options{Workloads: 1, Cores: 2, Warmup: 1000, Seed: 3, Forensics: true}

	got, err := NewEngine(EngineConfig{SnapInterval: 1000}).
		RunPoliciesHorizons(ctx, base, policies, opts, measures)
	if err != nil {
		t.Fatal(err)
	}
	uOpts := opts
	uOpts.NoPlanner = true
	want, err := NewEngine(EngineConfig{SnapInterval: 1000}).
		RunPoliciesHorizons(ctx, base, policies, uOpts, measures)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planned forensics/mitigation rows diverged:\nplanned:   %+v\nunplanned: %+v", got, want)
	}
}

// TestPlannerWarmStoreReplay proves pass-emitted rows live under their
// original per-cell keys: a planned sweep fully warms the store for the
// per-cell path and vice versa, so switching the planner on or off
// never re-simulates a stored cell.
func TestPlannerWarmStoreReplay(t *testing.T) {
	ctx := context.Background()
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := []RefreshPolicy{BaselinePolicy(), HiRAPeriodicPolicy(2)}
	measures := []int{2000, 5000}
	opts := Options{Workloads: 1, Cores: 2, Warmup: 1000, Seed: 1}

	for _, firstPlanned := range []bool{true, false} {
		e := NewEngine(EngineConfig{SnapInterval: 1000})
		first := opts
		first.NoPlanner = !firstPlanned
		rows, err := e.RunPoliciesHorizons(ctx, base, policies, first, measures)
		if err != nil {
			t.Fatal(err)
		}
		var again EngineStats
		second := opts
		second.NoPlanner = firstPlanned
		second.Stats = &again
		rows2, err := e.RunPoliciesHorizons(ctx, base, policies, second, measures)
		if err != nil {
			t.Fatal(err)
		}
		if again.Simulated != 0 {
			t.Fatalf("replay (planned first: %t) re-simulated %d cells: %+v", firstPlanned, again.Simulated, again)
		}
		if !reflect.DeepEqual(rows, rows2) {
			t.Fatalf("replay rows diverged (planned first: %t)", firstPlanned)
		}
	}
}

// TestPlannerPassCancellation proves a cancelled coalesced pass keeps
// the rows it already emitted: cancelling right after the first
// member's emission fails the pass, but that member's row is final and
// bit-identical to its per-cell result.
func TestPlannerPassCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 2, 1)[0].Sources()
	lab := NewEngine(EngineConfig{SnapInterval: 1000})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	members := []engine.PlanMember{
		{Key: simCellKey(cfg, mix, 1000, 3000), Horizon: 4000,
			Payload: simPassPayload{cfg: cfg, mix: mix, warmup: 1000, measure: 3000}},
		{Key: simCellKey(cfg, mix, 2000, 10000), Horizon: 12000,
			Payload: simPassPayload{cfg: cfg, mix: mix, warmup: 2000, measure: 10000}},
	}
	emitted := map[int]CellResult{}
	err := runSimPass(ctx, lab, members, func(i int, r CellResult) {
		emitted[i] = r
		cancel() // first emission cancels the pass mid-flight
	})
	if err == nil {
		t.Fatal("cancelled pass reported success")
	}
	if len(emitted) != 1 {
		t.Fatalf("cancelled pass emitted %d rows, want 1", len(emitted))
	}
	ref, err := runSimCell(context.Background(), nil, 0, cfg, mix, 1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(emitted[0], simCellResult(ref)) {
		t.Fatalf("row emitted before cancellation diverged from per-cell path:\npass: %+v\ncell: %+v",
			emitted[0], simCellResult(ref))
	}
}

// TestPlannerBatchCancellation proves batch-level cancellation
// semantics end to end: a cancelled multi-horizon sweep fails, but
// every row resolved before the cancellation stays cached and serves
// the resubmitted sweep.
func TestPlannerBatchCancellation(t *testing.T) {
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := plannerTestPolicies()
	measures := []int{2000, 4000}
	e := NewEngine(EngineConfig{SnapInterval: 1000, Parallelism: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Workloads: 1, Cores: 2, Warmup: 1000, Seed: 2}
	cOpts := opts
	cOpts.ProgressStats = func(done, total int, batch EngineStats) {
		if done >= 1 {
			cancel() // with Parallelism 1 at least one later unit must fail
		}
	}
	if _, err := e.RunPoliciesHorizons(ctx, base, policies, cOpts, measures); err == nil {
		t.Fatal("cancelled sweep reported success")
	}

	var again EngineStats
	rOpts := opts
	rOpts.Stats = &again
	rows, err := e.RunPoliciesHorizons(context.Background(), base, policies, rOpts, measures)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits+again.StoreHits == 0 {
		t.Fatalf("cancellation kept no resolved rows: %+v", again)
	}
	uOpts := opts
	uOpts.NoPlanner = true
	want, err := NewEngine(EngineConfig{SnapInterval: 1000}).
		RunPoliciesHorizons(context.Background(), base, policies, uOpts, measures)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatal("rows after cancellation + resubmit diverged from per-cell path")
	}
}

// TestDeltaCheckpointChain proves the differential-checkpoint format
// end to end at the checkpointer layer: interval saves after the first
// are deltas, a fresh checkpointer restores through the chain to state
// byte-identical to a straight run, and continuing the restored machine
// reproduces the per-cell result exactly.
func TestDeltaCheckpointChain(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 2, 1)[0].Sources()
	snaps := engine.NewSnapStore("", 0)
	ck := &checkpointer{snaps: snaps, interval: 1000, key: trajectoryKey(cfg, mix)}

	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.runTo(ctx, sys, 5000); err != nil {
		t.Fatal(err)
	}
	st := snaps.Stats()
	if st.Saves != 5 || st.DeltaSaves != 4 {
		t.Fatalf("want 1 full + 4 delta checkpoints, got %d saves (%d deltas)", st.Saves, st.DeltaSaves)
	}
	if st.DeltaBytes == 0 || st.DeltaBytes >= uint64(st.Bytes) {
		t.Fatalf("delta byte accounting off: %d of %d", st.DeltaBytes, st.Bytes)
	}

	ck2 := &checkpointer{snaps: snaps, interval: 1000, key: ck.key}
	sys2, mark, haveMark := ck2.resumeSystem(ctx, cfg, mix, 2000, 6000)
	if sys2 == nil || sys2.Ticks() != 5000 {
		t.Fatalf("chain resume failed (got %v)", sys2)
	}
	if !haveMark {
		t.Fatal("warmup mark not recovered from delta checkpoint header")
	}
	if ck2.lastTick != 5000 || ck2.depth != 4 {
		t.Fatalf("resume epoch = (%d, %d), want (5000, 4)", ck2.lastTick, ck2.depth)
	}

	ref, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunTo(ctx, 5000); err != nil {
		t.Fatal(err)
	}
	a, err := sys2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("chain-restored state diverged from straight run")
	}

	if err := ck2.runTo(ctx, sys2, 6000); err != nil {
		t.Fatal(err)
	}
	got := sys2.resultSince(mark, 4000)
	cold, err := runSimCell(ctx, nil, 0, cfg, mix, 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cold) {
		t.Fatalf("chain-resumed result diverged:\nresumed: %+v\ncold:    %+v", got, cold)
	}
}

// TestDeltaChainBounded proves the writer forces a full snapshot once a
// chain reaches maxDeltaChain links, so restore cost stays bounded.
func TestDeltaChainBounded(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 2, 1)[0].Sources()
	snaps := engine.NewSnapStore("", 0)
	ck := &checkpointer{snaps: snaps, interval: 500, key: trajectoryKey(cfg, mix)}
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	// 12 interval saves: full at 500, deltas to depth 8 at 4500, then a
	// forced full at 5000 and fresh deltas after it.
	if err := ck.runTo(ctx, sys, 6000); err != nil {
		t.Fatal(err)
	}
	st := snaps.Stats()
	fulls := st.Saves - st.DeltaSaves
	if fulls != 2 {
		t.Fatalf("want 2 full checkpoints in a 12-save run (chain cap %d), got %d", maxDeltaChain, fulls)
	}
	// The whole chain (including past the forced full) must restore.
	ck2 := &checkpointer{snaps: snaps, interval: 500, key: ck.key}
	sys2, _, _ := ck2.resumeSystem(ctx, cfg, mix, 0, 6000)
	if sys2 == nil || sys2.Ticks() != 6000 {
		t.Fatalf("resume across forced-full boundary failed (got %v)", sys2)
	}
}

// TestDeltaSnapshotPreSized pins the pre-sizing contract: the delta
// encoder's buffer is sized up front (encoded bytes never exceed
// SnapshotDeltaSize) and encoding allocates only the writer and its
// buffer — zero growth reallocations.
func TestDeltaSnapshotPreSized(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 4, 1)[0].Sources()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunTo(ctx, 3000); err != nil {
		t.Fatal(err)
	}
	sys.ResetTouchedLines()
	if err := sys.RunTo(ctx, 4000); err != nil {
		t.Fatal(err)
	}
	data, err := sys.SnapshotDelta(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > sys.SnapshotDeltaSize() {
		t.Fatalf("delta encoded %d bytes, pre-size bound %d", len(data), sys.SnapshotDeltaSize())
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sys.SnapshotDelta(3000, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("delta encode allocated %v times, want <= 2 (writer + pre-sized buffer)", allocs)
	}
}

// FuzzDeltaSnapshotDecode holds the delta-apply path to the clean-miss
// contract: corrupt, truncated, or mis-chained delta checkpoints are
// rejected with an error — never a panic, never silently wrong state —
// and any delta that does apply yields a machine that survives running.
func FuzzDeltaSnapshotDecode(f *testing.F) {
	cfg, mix := fuzzSnapshotConfig()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		f.Fatal(err)
	}
	if err := sys.RunTo(context.Background(), 600); err != nil {
		f.Fatal(err)
	}
	base, err := sys.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	sys.ResetTouchedLines()
	if err := sys.RunTo(context.Background(), 900); err != nil {
		f.Fatal(err)
	}
	delta, err := sys.SnapshotDelta(600, 1)
	if err != nil {
		f.Fatal(err)
	}
	mischained, err := sys.SnapshotDelta(450, 2) // base tick no restored machine sits at
	if err != nil {
		f.Fatal(err)
	}
	f.Add(delta)
	f.Add(delta[:len(delta)/2])
	f.Add(mischained)
	f.Add([]byte(deltaMagic))
	mut := append([]byte(nil), delta...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Real deltas for this config are a few KB; cap mutator-grown
		// inputs so each exec stays fast (decode work is input-bounded
		// but a multi-MB queue section decodes in ordered-insert time).
		if len(data) > 64<<10 {
			return
		}
		// Header validation is the cheap gate most hostile inputs die at;
		// only header-valid deltas pay for restoring the trusted base.
		if _, _, _, _, err := readDeltaHeader(data); err != nil {
			return // clean miss
		}
		s, err := RestoreSystem(cfg, mix, base) // trusted base at tick 600
		if err != nil {
			t.Fatal(err)
		}
		if err := applySystemDelta(s, data); err != nil {
			return // clean miss
		}
		// A delta that passed validation must be safe to simulate.
		for i := 0; i < 64; i++ {
			s.Tick()
		}
	})
}
