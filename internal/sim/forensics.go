package sim

import (
	"encoding/json"
	"io"

	"hira/internal/sched"
)

// defaultForensicsNRH anchors the forensics thresholds for policies that
// carry no RowHammer threshold of their own (NoRefresh, Baseline,
// periodic HiRA-N): Fig. 12's least aggressive NRH, so the ledger still
// reports attack visibility against a present-day chip.
const defaultForensicsNRH = 1024

// mergedEventCap bounds the flight-recorder events kept when summaries
// from many cells are merged into one policy-level summary; overflow is
// tallied in DroppedEvents, never silently lost.
const mergedEventCap = 8192

// ForensicsOptions selects RowHammer forensics for a simulated system.
// Forensics hooks are purely observational: the command stream, the
// scheduler stats, and every figure are bit-identical with them on or
// off (see TestForensicsDifferential). The cost is memory (a uint32 per
// DRAM row) and a few counter updates per activation, so it is opt-in.
type ForensicsOptions struct {
	// Enabled attaches the per-row activation ledger and
	// mitigation-efficacy tallies.
	Enabled bool `json:"enabled,omitempty"`
	// Recorder additionally enables the DRAM command flight recorder
	// (bounded; captures command windows around threshold crossings).
	Recorder bool `json:"recorder,omitempty"`
}

// ForensicsSummary is one cell's (or, after aggregation, one policy's)
// forensics report: the measured-phase tally plus the ledger's running
// extremes and the flight recorder's log.
type ForensicsSummary struct {
	// Thresholds and HotThreshold echo the ledger configuration the
	// tallies were measured against (derived from the policy's NRH).
	Thresholds   []uint32 `json:"thresholds"`
	HotThreshold uint32   `json:"hot_threshold"`
	// MaxInterrefACTs is the largest interref activation count any row
	// reached. Unlike Tally it is a running max over the whole run
	// (warmup included), not a measured-phase diff: counts reset at
	// every charge restoration, so the max reflects real exposure, not
	// accumulation age. Across merged cells it is the max of maxes.
	MaxInterrefACTs uint32 `json:"max_interref_acts"`
	// MaxVictimExposure is the largest victim-side exposure any row
	// reached: adjacent-row activations since the row's own charge was
	// last restored. This is the mitigation-efficacy headline — an attack
	// succeeds when it exceeds the policy's NRH, and a victim-refreshing
	// mitigation keeps it below. A running max like MaxInterrefACTs.
	MaxVictimExposure uint32 `json:"max_victim_exposure"`
	// Tally is the measured-phase forensics counter set (cumulative
	// counters diffed at the warmup mark, exactly like sched.Stats).
	Tally sched.ForensicsTally `json:"tally"`
	// Events is the flight recorder's command log (present only when
	// the recorder was enabled); DroppedEvents counts commands lost to
	// the recorder cap or the merge cap.
	Events        []sched.FlightEvent `json:"events,omitempty"`
	DroppedEvents uint64              `json:"dropped_events,omitempty"`
}

// forensicsThresholds derives the ledger's alarm thresholds from a
// policy's RowHammer threshold: NRH/2 (an aggressor halfway to flipping
// bits) and NRH itself (a row the chip can no longer guarantee).
// Policies without an NRH fall back to defaultForensicsNRH.
func forensicsThresholds(nrh int) (thresholds []uint32, hot uint32) {
	if nrh <= 0 {
		nrh = defaultForensicsNRH
	}
	half := uint32(nrh / 2)
	if half == 0 {
		half = 1
	}
	return []uint32{half, uint32(nrh)}, half
}

// MergeForensics folds o into dst and returns the result, treating nil
// as empty: tallies add, maxes take the max, events concatenate up to
// mergedEventCap (overflow tallied as dropped). Thresholds are taken
// from the first non-nil summary — every cell of one sweep policy runs
// the same ledger configuration.
func MergeForensics(dst, o *ForensicsSummary) *ForensicsSummary {
	if o == nil {
		return dst
	}
	if dst == nil {
		cp := *o
		cp.Thresholds = append([]uint32(nil), o.Thresholds...)
		cp.Events = append([]sched.FlightEvent(nil), o.Events...)
		return &cp
	}
	dst.Tally = dst.Tally.Add(o.Tally)
	if o.MaxInterrefACTs > dst.MaxInterrefACTs {
		dst.MaxInterrefACTs = o.MaxInterrefACTs
	}
	if o.MaxVictimExposure > dst.MaxVictimExposure {
		dst.MaxVictimExposure = o.MaxVictimExposure
	}
	for _, e := range o.Events {
		if len(dst.Events) >= mergedEventCap {
			dst.DroppedEvents++
			continue
		}
		dst.Events = append(dst.Events, e)
	}
	dst.DroppedEvents += o.DroppedEvents
	return dst
}

// chromeCmdEvent is one flight-recorder command in Chrome trace-event
// form (the same format internal/telemetry's trace export uses, so the
// Perfetto workflow is shared).
type chromeCmdEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the flight recorder's command log in Chrome
// trace-event format: one lane per (rank, bank) under a per-channel
// process, timestamps converted from the simulator's picoseconds to the
// format's microseconds. Open the output in Perfetto or about:tracing.
func (s *ForensicsSummary) WriteChrome(w io.Writer) error {
	events := make([]chromeCmdEvent, 0, len(s.Events))
	for _, e := range s.Events {
		name := e.Kind
		if e.Phase != "" {
			name += "/" + e.Phase
		}
		// tCK at DDR4-2400 is 833 ps; render each command as one tick
		// wide so adjacent commands stay distinguishable when zoomed in.
		events = append(events, chromeCmdEvent{
			Name: name, Cat: "dram", Ph: "X",
			TS:  float64(e.At) / 1e6,
			Dur: 833e-6,
			PID: e.Channel, TID: e.Rank*64 + e.Bank,
			Args: map[string]any{"row": e.Row, "rank": e.Rank, "bank": e.Bank},
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
