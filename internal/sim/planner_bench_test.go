package sim

import (
	"context"
	"testing"

	"hira/internal/workload"
)

// BenchmarkPlannedSweep runs the same multi-horizon six-policy sweep
// with and without the trajectory-coalescing planner on fresh engines,
// so the sub-benchmark ratio is the tentpole win: identical rows (see
// TestPlannerDifferential) for strictly fewer machine ticks. Each op
// reports its simulated + checkpoint-restored ticks — the machine-work
// total that wall-clock noise can't touch.
func BenchmarkPlannedSweep(b *testing.B) {
	base := DefaultConfig()
	base.ChipCapacityGbit = 8
	policies := plannerTestPolicies()
	measures := []int{3000, 6000, 12000}
	opts := Options{Workloads: 1, Cores: 4, Warmup: 2000, Seed: 5}

	run := func(b *testing.B, noPlanner bool) {
		var ticks, passes uint64
		for i := 0; i < b.N; i++ {
			var stats EngineStats
			o := opts
			o.Stats = &stats
			o.NoPlanner = noPlanner
			e := NewEngine(EngineConfig{SnapInterval: 1500})
			if _, err := e.RunPoliciesHorizons(context.Background(), base, policies, o, measures); err != nil {
				b.Fatal(err)
			}
			ticks = stats.SimulatedTicks + stats.ResumedTicks
			passes = stats.PlannedPasses
		}
		b.ReportMetric(float64(ticks), "machine-ticks/op")
		b.ReportMetric(float64(passes), "passes/op")
	}
	b.Run("planned", func(b *testing.B) { run(b, false) })
	b.Run("unplanned", func(b *testing.B) { run(b, true) })
}

// BenchmarkDeltaCheckpoint times one checkpoint encode in each format —
// a full snapshot versus a differential over a checkpoint interval's
// worth of LLC traffic — and reports the encoded sizes. The delta must
// come in at least 4x smaller than the full snapshot: that margin is
// what makes hira-server's fine-grained default interval affordable.
func BenchmarkDeltaCheckpoint(b *testing.B) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.ChipCapacityGbit = 8
	cfg.Seed = 1
	cfg.Policy = BaselinePolicy()
	mix := workload.Mixes(1, 4, 1)[0].Sources()
	sys, err := NewSystem(cfg, mix)
	if err != nil {
		b.Fatal(err)
	}
	// Warm past the cold-start transient, then accumulate one
	// hira-server default interval (10k ticks) of touched lines — the
	// epoch a production delta actually covers.
	if err := sys.RunTo(ctx, 20000); err != nil {
		b.Fatal(err)
	}
	sys.ResetTouchedLines()
	if err := sys.RunTo(ctx, 30000); err != nil {
		b.Fatal(err)
	}

	full, err := sys.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	delta, err := sys.SnapshotDelta(20000, 1)
	if err != nil {
		b.Fatal(err)
	}
	if 4*len(delta) > len(full) {
		b.Fatalf("delta checkpoint %d bytes is not 4x smaller than the %d-byte full snapshot", len(delta), len(full))
	}

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(full)), "bytes")
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.SnapshotDelta(20000, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(delta)), "bytes")
		b.ReportMetric(float64(len(full))/float64(len(delta)), "full/delta")
	})
}
