package rowhammer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLegacyPthRoundTrip(t *testing.T) {
	for _, nrh := range []int{64, 128, 256, 512, 1024, 50000} {
		pth := LegacyPth(nrh, ReliabilityTarget)
		got := LegacySuccessProbability(pth, nrh)
		if math.Abs(got-ReliabilityTarget)/ReliabilityTarget > 1e-6 {
			t.Errorf("NRH=%d: pRH(pthLegacy) = %g, want %g", nrh, got, ReliabilityTarget)
		}
	}
}

func TestKFactorMatchesPaperValues(t *testing.T) {
	c := DefaultConfig()
	// §9.1.3: for old chips (NRH=50K, pth=0.001), k = 1.0005.
	if k := c.KFactor(0.001, 50000, 0); math.Abs(k-1.0005) > 0.0005 {
		t.Errorf("k(50K, 0.001) = %.5f, want ~1.0005", k)
	}
	// For NRH=1024 (legacy pth ~0.066..0.068), k = 1.0331.
	if k := c.KFactor(LegacyPth(1024, ReliabilityTarget), 1024, 0); math.Abs(k-1.0331) > 0.004 {
		t.Errorf("k(1024) = %.4f, want ~1.0331", k)
	}
	// For NRH=64, k = 1.3212.
	if k := c.KFactor(LegacyPth(64, ReliabilityTarget), 64, 0); math.Abs(k-1.3212) > 0.01 {
		t.Errorf("k(64) = %.4f, want ~1.3212", k)
	}
}

func TestSolvePthMatchesFig11a(t *testing.T) {
	c := DefaultConfig()
	// Fig. 11a anchor points (tRefSlack = 0): pth ~0.068 at NRH=1024 and
	// ~0.860 at NRH=64.
	p1024, err := c.SolvePth(1024, 0, ReliabilityTarget)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1024-0.068) > 0.004 {
		t.Errorf("pth(1024) = %.4f, want ~0.068", p1024)
	}
	p64, err := c.SolvePth(64, 0, ReliabilityTarget)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 11a reads ~0.86 off the plot; the analytic solution of
	// Expression 8 lands at 0.839 (the k-factor checks pin the model to
	// the paper's exact 1.0331/1.3212 values, so the small gap is plot
	// read-off error).
	if math.Abs(p64-0.85) > 0.03 {
		t.Errorf("pth(64) = %.4f, want ~0.84-0.86", p64)
	}
	// Fig. 11a: at NRH=128, pth = 0.48, 0.49, 0.50, 0.52 for slack
	// 0, 2tRC, 4tRC, 8tRC.
	want := map[int]float64{0: 0.48, 2: 0.49, 4: 0.50, 8: 0.52}
	for slack, w := range want {
		p, err := c.SolvePth(128, float64(slack), ReliabilityTarget)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-w) > 0.025 {
			t.Errorf("pth(128, slack=%dtRC) = %.4f, want ~%.2f", slack, p, w)
		}
	}
}

func TestSolvedPthMeetsTarget(t *testing.T) {
	c := DefaultConfig()
	for _, nrh := range Fig11NRHValues() {
		for _, slack := range Fig11SlackValues() {
			pth, err := c.SolvePth(nrh, float64(slack), ReliabilityTarget)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.SuccessProbability(pth, nrh, float64(slack)); got > ReliabilityTarget*1.0001 {
				t.Errorf("NRH=%d slack=%d: pRH(solved pth) = %g > target", nrh, slack, got)
			}
		}
	}
}

func TestLegacyPthMissesTarget(t *testing.T) {
	// Fig. 11b: PARA-Legacy's pth yields pRH above 1e-15 under the
	// revisited model, increasingly so at small NRH.
	c := DefaultConfig()
	prev := 0.0
	for _, nrh := range []int{1024, 256, 64} {
		p := c.SuccessProbability(LegacyPth(nrh, ReliabilityTarget), nrh, 0)
		if p <= ReliabilityTarget {
			t.Errorf("NRH=%d: legacy pth meets target under revisited model", nrh)
		}
		if p <= prev {
			t.Errorf("NRH=%d: legacy gap should grow as NRH shrinks", nrh)
		}
		prev = p
	}
	// Paper: 1.03e-15 at NRH=1024 and 1.32e-15 at NRH=64.
	p1024 := c.SuccessProbability(LegacyPth(1024, ReliabilityTarget), 1024, 0)
	if math.Abs(p1024/1e-15-1.033) > 0.01 {
		t.Errorf("legacy pRH(1024) = %g, want ~1.03e-15", p1024)
	}
	p64 := c.SuccessProbability(LegacyPth(64, ReliabilityTarget), 64, 0)
	if math.Abs(p64/1e-15-1.321) > 0.02 {
		t.Errorf("legacy pRH(64) = %g, want ~1.32e-15", p64)
	}
}

func TestPthMonotonicity(t *testing.T) {
	c := DefaultConfig()
	// pth decreases with NRH and increases with slack.
	f := func(rawNRH uint16, rawSlack uint8) bool {
		nrh := 64 + int(rawNRH)%4096
		slack := float64(rawSlack % 16)
		p1, err1 := c.SolvePth(nrh, slack, ReliabilityTarget)
		p2, err2 := c.SolvePth(nrh*2, slack, ReliabilityTarget)
		p3, err3 := c.SolvePth(nrh, slack+8, ReliabilityTarget)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return p2 < p1 && p3 >= p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSuccessProbabilityMonotoneInPth(t *testing.T) {
	c := DefaultConfig()
	prev := math.Inf(1)
	for pth := 0.05; pth <= 1.0; pth += 0.05 {
		p := c.SuccessProbability(pth, 256, 0)
		if p > prev {
			t.Errorf("pRH not decreasing at pth=%.2f", pth)
		}
		prev = p
	}
}

func TestSuccessProbabilityEdges(t *testing.T) {
	c := DefaultConfig()
	if c.SuccessProbability(0, 256, 0) != 1 {
		t.Error("pth=0 must make the attack certain")
	}
	if p := c.SuccessProbability(1, 256, 0); p > 1e-50 {
		t.Errorf("pth=1 leaves pRH=%g", p)
	}
}

func TestSolvePthErrors(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.SolvePth(0, 0, ReliabilityTarget); err == nil {
		t.Error("accepted NRH=0")
	}
	if _, err := c.SolvePth(256, 0, 0); err == nil {
		t.Error("accepted target=0")
	}
	if _, err := c.SolvePth(256, 0, 1.5); err == nil {
		t.Error("accepted target>1")
	}
}

func TestFig11Grid(t *testing.T) {
	c := DefaultConfig()
	pts, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig11NRHValues())*len(Fig11SlackValues()) {
		t.Fatalf("grid size %d", len(pts))
	}
	for _, p := range pts {
		if p.Pth <= 0 || p.Pth > 1 {
			t.Errorf("%+v: pth out of range", p)
		}
		if p.Pth < p.LegacyPth {
			t.Errorf("NRH=%d slack=%d: revisited pth %.4f below legacy %.4f",
				p.NRH, p.SlackTRC, p.Pth, p.LegacyPth)
		}
		if p.K < 1 {
			t.Errorf("NRH=%d: k = %.4f < 1", p.NRH, p.K)
		}
	}
}
