// Package rowhammer implements PARA (Probabilistic Row Activation, Kim et
// al. ISCA'14) and the HiRA paper's revisited security analysis (§9.1):
// the overall RowHammer success probability accounting for repeated attack
// attempts within a refresh window (Expressions 2-9) and the probability
// threshold solver targeting the consumer reliability level of 1e-15.
package rowhammer

import (
	"fmt"
	"math"
)

// ReliabilityTarget is the consumer memory reliability target the paper
// solves pth against (§9.1 Step 5).
const ReliabilityTarget = 1e-15

// Config fixes the system constants of the analysis.
type Config struct {
	// ActivationsPerWindow is tREFW / tRC: the maximum number of row
	// activations an attacker can perform in one refresh window
	// (64 ms / 46.25 ns ≈ 1.38M in the paper's setup).
	ActivationsPerWindow float64
}

// DefaultConfig uses the paper's tREFW = 64 ms and tRC = 46.25 ns.
func DefaultConfig() Config {
	return Config{ActivationsPerWindow: 64e-3 / 46.25e-9}
}

// LegacySuccessProbability is PARA-Legacy's model (§9.1.3):
// pRH = (1 - pth/2)^NRH, assuming the attacker hammers exactly enough
// times and no more.
func LegacySuccessProbability(pth float64, nrh int) float64 {
	return math.Exp(float64(nrh) * math.Log1p(-pth/2))
}

// LegacyPth solves LegacySuccessProbability(pth, nrh) = target.
func LegacyPth(nrh int, target float64) float64 {
	return 2 * (1 - math.Exp(math.Log(target)/float64(nrh)))
}

// SuccessProbability evaluates Expression 8: the overall RowHammer success
// probability for a given pth, RowHammer threshold, and refresh slack
// expressed in activations (NRefSlack = tRefSlack / tRC):
//
//	pRH = Σ_{Nf=0}^{Nfmax} (1-pth/2)^(Nf+NRH-NRefSlack) × (pth/2)^Nf,
//	Nfmax = (tREFW/tRC - NRH - NRefSlack) / 2     (Expression 7)
//
// The sum is a geometric series in q(1-q) with q = pth/2, evaluated in
// closed form; computation is done in log space to survive large NRH.
func (c Config) SuccessProbability(pth float64, nrh int, nRefSlack float64) float64 {
	if pth <= 0 {
		return 1
	}
	if pth >= 1 {
		pth = 1
	}
	q := pth / 2
	exponent := float64(nrh) - nRefSlack
	if exponent < 0 {
		exponent = 0
	}
	nfMax := (c.ActivationsPerWindow - float64(nrh) - nRefSlack) / 2
	if nfMax < 0 {
		nfMax = 0
	}
	// log((1-q)^exponent)
	logLead := exponent * math.Log1p(-q)
	// Geometric series Σ_{0..nfMax} r^Nf with r = q(1-q).
	r := q * (1 - q)
	var logSum float64
	if r <= 0 {
		logSum = 0
	} else {
		// 1 - r^(nfMax+1) never underflows harmfully: r <= 1/4.
		num := 1 - math.Exp((nfMax+1)*math.Log(r))
		logSum = math.Log(num / (1 - r))
	}
	return math.Exp(logLead + logSum)
}

// KFactor is Expression 9's k: the ratio between the revisited success
// probability and PARA-Legacy's, for the same pth.
func (c Config) KFactor(pth float64, nrh int, nRefSlack float64) float64 {
	legacy := LegacySuccessProbability(pth, nrh)
	if legacy == 0 {
		return math.Inf(1)
	}
	return c.SuccessProbability(pth, nrh, nRefSlack) / legacy
}

// SolvePth finds the smallest pth whose overall success probability meets
// the target (§9.1 Step 5's iterative evaluation, done by bisection).
func (c Config) SolvePth(nrh int, nRefSlack float64, target float64) (float64, error) {
	if nrh <= 0 {
		return 0, fmt.Errorf("rowhammer: NRH must be positive, got %d", nrh)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("rowhammer: target %g out of (0,1)", target)
	}
	lo, hi := 0.0, 1.0
	if c.SuccessProbability(hi, nrh, nRefSlack) > target {
		return 0, fmt.Errorf("rowhammer: target %g unreachable even at pth=1 for NRH=%d", target, nrh)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if c.SuccessProbability(mid, nrh, nRefSlack) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// Fig11Point is one point of Fig. 11: a configuration's solved pth and the
// success probability that PARA-Legacy's pth would actually yield under
// the revisited model.
type Fig11Point struct {
	NRH       int
	SlackTRC  int     // tRefSlack in units of tRC (0, 2, 4, 8)
	Pth       float64 // revisited pth meeting the 1e-15 target
	LegacyPth float64
	LegacyPRH float64 // revisited pRH when using PARA-Legacy's pth
	K         float64 // Expression 9's k at the legacy pth
}

// Fig11NRHValues is the x-axis of Fig. 11.
func Fig11NRHValues() []int { return []int{64, 128, 256, 512, 1024} }

// Fig11SlackValues is the tRefSlack sweep of Fig. 11 in units of tRC.
func Fig11SlackValues() []int { return []int{0, 2, 4, 8} }

// Fig11 computes the full Fig. 11 grid.
func (c Config) Fig11() ([]Fig11Point, error) {
	var out []Fig11Point
	for _, nrh := range Fig11NRHValues() {
		for _, slack := range Fig11SlackValues() {
			pth, err := c.SolvePth(nrh, float64(slack), ReliabilityTarget)
			if err != nil {
				return nil, err
			}
			lp := LegacyPth(nrh, ReliabilityTarget)
			out = append(out, Fig11Point{
				NRH:       nrh,
				SlackTRC:  slack,
				Pth:       pth,
				LegacyPth: lp,
				LegacyPRH: c.SuccessProbability(lp, nrh, float64(slack)),
				K:         c.KFactor(lp, nrh, float64(slack)),
			})
		}
	}
	return out, nil
}
