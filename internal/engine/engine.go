// Package engine is the parallel experiment engine behind the paper's
// performance sweeps (Figs. 9-16). Every sweep decomposes into cells —
// one deterministic simulation each, addressed by a content key that
// encodes everything the simulation depends on — and the engine executes
// them on a bounded worker pool. Because each cell derives its seeds from
// its own content, a parallel run is bit-identical to a serial run
// regardless of scheduling order.
//
// The engine owns four layers of reuse on top of the pool:
//
//   - batch dedup: duplicate keys submitted in one Run execute once;
//   - cross-request singleflight: concurrent Run batches (e.g. two
//     service clients asking overlapping questions) that need the same
//     cold cell trigger exactly one simulation — late arrivals wait for
//     the in-flight computation instead of repeating it;
//   - an in-memory content-keyed cache, so an engine shared across sweep
//     points (capacities, NRH values, channel counts) never repeats a
//     cell — this subsumes the alone-IPC memoization the sweeps used to
//     hand-roll;
//   - an optional content-addressed result store (ResultDir): sharded
//     directories of JSON cells written atomically via temp-file +
//     rename, indexed once at startup, so re-running a sweep after a
//     crash, or with one new policy, only simulates the delta.
//
// Run takes a context: cancellation (a disconnected client, a server
// shutting down) stops dispatch, interrupts in-flight cells whose Run
// honors the context, and returns ctx.Err(). Cancellation never corrupts
// the store — cells either persisted completely before the cancel or not
// at all.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"hira/internal/fault"
	"hira/internal/telemetry"
)

// Cell is one addressable, schedulable, memoizable unit of work.
type Cell[R any] struct {
	// Key is the cell's content key: it must encode every input the
	// computation depends on (configuration, policy, workload, seeds,
	// tick counts), because equal keys share one result.
	Key string
	// Run computes the cell. It must be deterministic given Key and must
	// not share mutable state with other cells. Long computations should
	// poll ctx and return ctx.Err() to honor cancellation promptly; the
	// result of a cancelled Run is discarded, never cached or stored.
	Run func(ctx context.Context) (R, error)
	// Plan, when non-nil, lets the sweep planner coalesce this cell with
	// others sharing the same Plan.Group into a single pass. Run remains
	// mandatory: it is the fallback when the planner is disabled, the
	// group degenerates to one pending cell, or the cell must be
	// resolved individually (e.g. it was in flight elsewhere when its
	// group's pass was formed).
	Plan *Plan[R]
}

// Plan marks a cell as coalescible: cells submitted in one batch with
// equal Group keys (same simulation trajectory, different horizons) are
// run as one pass — a single simulation to the group's maximum horizon
// that emits each member's finished result as it passes that member's
// horizon — instead of one restore-and-extend per cell.
type Plan[R any] struct {
	// Group identifies the shared trajectory. Cells whose results would
	// not be produced by one continuous run must not share a group.
	Group string
	// Horizon orders members within a group, ascending; it is the tick
	// the member's result is emitted at.
	Horizon int
	// Payload is opaque per-member context handed back to RunPass.
	Payload any
	// RunPass executes one coalesced pass over members (sorted by
	// ascending Horizon; a subset of the group — members already
	// resolved from the cache or store are excluded). It must call
	// emit(i, r) with member i's result when the simulation crosses
	// members[i].Horizon; each emission is cached, persisted, and
	// released to singleflight waiters immediately, so a pass failing
	// (or cancelled) midway keeps every row it already emitted. Every
	// group member's RunPass must be interchangeable.
	RunPass func(ctx context.Context, members []PlanMember, emit func(i int, r R)) error
}

// PlanMember is one pending cell of a coalesced pass.
type PlanMember struct {
	Key     string
	Horizon int
	Payload any
}

// Stats tallies how an engine resolved the cells submitted to it. For
// batches that complete without error, Submitted = Simulated +
// CacheHits + StoreHits + Deduped; an aborted or cancelled batch leaves
// its unresolved cells counted in Submitted only. Cells served by
// waiting on another batch's in-flight computation count as CacheHits.
type Stats struct {
	Submitted   uint64 `json:"submitted"`    // cells passed to Run batches
	Simulated   uint64 `json:"simulated"`    // cells actually computed
	CacheHits   uint64 `json:"cache_hits"`   // served from the in-memory cache (or an in-flight computation)
	StoreHits   uint64 `json:"store_hits"`   // loaded from the ResultDir store
	Deduped     uint64 `json:"deduped"`      // duplicate keys within a batch
	StoreErrors uint64 `json:"store_errors"` // results that could not be persisted to ResultDir

	// Resumed counts the subset of Simulated cells that restored a
	// checkpoint instead of simulating from tick zero, and ResumedTicks
	// sums the ticks those checkpoints spared — the cells were partially
	// resumed, not fully simulated. Cells report this through
	// MarkResumed. A coalesced pass counts at most one resume, however
	// many cells it emits.
	Resumed      uint64 `json:"resumed"`
	ResumedTicks uint64 `json:"resumed_ticks"`

	// PlannedPasses counts coalesced passes executed by the sweep
	// planner and PlannedCells the cells those passes emitted; their
	// ratio is the coalescing factor. SimulatedTicks accumulates ticks
	// actually stepped by cell computations (reported via
	// MarkSimulated), on both the planned and per-cell paths — together
	// with ResumedTicks it prices what planning and checkpoints saved.
	PlannedPasses  uint64 `json:"planned_passes"`
	PlannedCells   uint64 `json:"planned_cells"`
	SimulatedTicks uint64 `json:"simulated_ticks"`

	// Panics counts cells whose Run panicked. The engine converts each
	// panic into an ordinary cell error carrying the stack trace — the
	// batch fails, the process survives — and tallies it here so a
	// recovered-from bug is still visible on /metrics.
	Panics uint64 `json:"panics,omitempty"`

	// FirstStoreError describes the first ResultDir write failure, so
	// callers can report why persistence degraded (permissions, full
	// disk, ...), not just that it did.
	FirstStoreError string `json:"first_store_error,omitempty"`
}

// Add accumulates another tally into s.
func (s *Stats) Add(o Stats) {
	s.Submitted += o.Submitted
	s.Simulated += o.Simulated
	s.CacheHits += o.CacheHits
	s.StoreHits += o.StoreHits
	s.Deduped += o.Deduped
	s.StoreErrors += o.StoreErrors
	s.Resumed += o.Resumed
	s.ResumedTicks += o.ResumedTicks
	s.PlannedPasses += o.PlannedPasses
	s.PlannedCells += o.PlannedCells
	s.SimulatedTicks += o.SimulatedTicks
	s.Panics += o.Panics
	if s.FirstStoreError == "" {
		s.FirstStoreError = o.FirstStoreError
	}
}

// resumeNoteKey carries the per-computation resume note through the
// context handed to Cell.Run.
type resumeNoteKey struct{}

// resumeNote is written by the cell (via MarkResumed) and read by the
// engine after Run returns; the computation runs synchronously on one
// goroutine, so no synchronization is needed.
type resumeNote struct {
	resumed   bool
	ticks     int
	simulated uint64
}

// MarkResumed records that the cell computation running under ctx
// restored a checkpoint covering the first `ticks` simulated ticks
// instead of starting cold. The engine tallies it in Stats.Resumed /
// Stats.ResumedTicks so operators can see sweeps being answered by
// incremental simulation. Outside an engine-run cell it is a no-op.
func MarkResumed(ctx context.Context, ticks int) {
	if n, ok := ctx.Value(resumeNoteKey{}).(*resumeNote); ok {
		n.resumed = true
		n.ticks = ticks
	}
}

// MarkSimulated accumulates `ticks` ticks actually stepped by the cell
// computation running under ctx, tallied in Stats.SimulatedTicks.
// Outside an engine-run cell it is a no-op.
func MarkSimulated(ctx context.Context, ticks int) {
	if n, ok := ctx.Value(resumeNoteKey{}).(*resumeNote); ok && ticks > 0 {
		n.simulated += uint64(ticks)
	}
}

// Options configures an engine.
type Options struct {
	// Parallelism bounds the number of cells computing at once; <= 0
	// means runtime.NumCPU(). The bound is engine-wide: concurrent Run
	// batches share it rather than multiplying it.
	Parallelism int
	// ResultDir, when non-empty, persists each cell's result as a JSON
	// file named by the SHA-256 of its key (sharded by the first two hex
	// digits), and serves matching cells from disk on later runs. The
	// directory is created if missing and indexed once at construction.
	// Store writes are best-effort: a failed write (disk full,
	// permissions) never discards the computed result — the cell stays
	// in the in-memory cache and the failure is tallied in
	// Stats.StoreErrors / Stats.FirstStoreError.
	ResultDir string
	// FS, when non-nil, routes the result store's file I/O through a
	// fault-injection seam (see internal/fault). nil means the real
	// filesystem; production code never sets it.
	FS fault.FS
	// OnProgress, when set, is the default progress callback for batches
	// that do not supply their own via RunOptions: it is called after
	// each cell of a batch resolves, with the number resolved so far and
	// the batch size, from worker goroutines but never concurrently
	// within one batch.
	OnProgress func(done, total int)
	// Metrics, when non-nil, receives the engine's duration and
	// singleflight observations (see Metrics). Count-style tallies stay
	// in Stats; expose those via RegisterStatsFuncs.
	Metrics *Metrics
	// NoPlanner disables the sweep planner engine-wide: cells' Plan
	// metadata is ignored and every cell resolves individually. Results
	// are bit-identical either way; this exists for debugging and A/B
	// measurement.
	NoPlanner bool
}

// RunOptions configures one Run batch on a shared engine.
type RunOptions struct {
	// OnProgress overrides Options.OnProgress for this batch.
	OnProgress func(done, total int)
	// OnProgressStats, when set, supersedes OnProgress: it additionally
	// receives a snapshot of the batch's resolution tally so far, so
	// streaming consumers can report cache hits and resumed ticks while
	// the batch is still running, not just at the end.
	OnProgressStats func(done, total int, batch Stats)
	// NoPlanner disables the sweep planner for this batch only.
	NoPlanner bool
}

// flight is one in-progress cell computation other batches can wait on.
type flight[R any] struct {
	done chan struct{} // closed when r/err are set
	r    R
	err  error
}

// Engine executes cells on a bounded worker pool with a content-keyed
// result cache. It is safe for concurrent use: overlapping Run batches
// share the in-memory cache, the result store, the compute bound, and
// in-flight computations. The zero value is not usable; construct with
// New.
type Engine[R any] struct {
	opts  Options
	store *store[R]     // nil when ResultDir is empty
	sem   chan struct{} // engine-wide compute tokens

	mu       sync.Mutex
	cache    map[string]R
	inflight map[string]*flight[R]
	stats    Stats
}

// New returns an engine for results of type R.
func New[R any](opts Options) *Engine[R] {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	e := &Engine[R]{
		opts:     opts,
		sem:      make(chan struct{}, opts.Parallelism),
		cache:    make(map[string]R),
		inflight: make(map[string]*flight[R]),
	}
	if opts.ResultDir != "" {
		e.store = newStore[R](opts.ResultDir, opts.FS)
	}
	return e
}

// Parallelism reports the engine-wide compute bound.
func (e *Engine[R]) Parallelism() int { return e.opts.Parallelism }

// Stats returns a snapshot of the engine's lifetime resolution tallies,
// accumulated across every batch run on it.
func (e *Engine[R]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// StoredCells reports how many cell results the on-disk store currently
// indexes (0 without a ResultDir).
func (e *Engine[R]) StoredCells() int {
	if e.store == nil {
		return 0
	}
	return e.store.Len()
}

// StoreDegraded reports whether the result store has flipped into
// cache-only mode (unwritable root at construction, or a run of
// consecutive save failures mid-flight), and why. Always false without
// a ResultDir: an intentionally memory-only engine is not degraded.
func (e *Engine[R]) StoreDegraded() (string, bool) {
	if e.store == nil {
		return "", false
	}
	return e.store.degradedReason()
}

// Run resolves every cell and returns results in submission order, plus
// this batch's resolution tally. Duplicate keys within the batch compute
// once; previously resolved keys are served from the cache (or the
// ResultDir store) without running; keys another concurrent batch is
// already computing are waited on, not recomputed. The first cell error
// aborts the batch; ctx cancellation aborts it with ctx.Err().
func (e *Engine[R]) Run(ctx context.Context, cells []Cell[R]) ([]R, Stats, error) {
	return e.RunWith(ctx, cells, RunOptions{})
}

// RunWith is Run with per-batch options.
func (e *Engine[R]) RunWith(ctx context.Context, cells []Cell[R], ropts RunOptions) ([]R, Stats, error) {
	onProgress := ropts.OnProgress
	if onProgress == nil {
		onProgress = e.opts.OnProgress
	}
	onProgressStats := ropts.OnProgressStats
	results := make([]R, len(cells))

	// Collapse the batch to unique keys, remembering every position each
	// key must fill.
	order := make([]string, 0, len(cells))
	positions := make(map[string][]int, len(cells))
	rep := make(map[string]Cell[R], len(cells))
	for i, c := range cells {
		if c.Run == nil {
			return nil, Stats{}, fmt.Errorf("engine: cell %d (%q) has no Run", i, c.Key)
		}
		if _, ok := positions[c.Key]; !ok {
			order = append(order, c.Key)
			rep[c.Key] = c
		}
		positions[c.Key] = append(positions[c.Key], i)
	}

	b := &batch{}
	b.stats.Submitted = uint64(len(cells))
	b.stats.Deduped = uint64(len(cells) - len(order))

	// Sweep planning: partition the unique keys into dispatch units —
	// single cells, plus one unit per Plan group with two or more
	// pending cells, its members ordered by ascending horizon so the
	// coalesced pass emits them as it advances. Units keep the groups'
	// first-appearance order; a singleton group degenerates to the
	// ordinary per-cell path, making planning a no-op for today's
	// single-horizon batches.
	noPlanner := e.opts.NoPlanner || ropts.NoPlanner
	units := make([][]string, 0, len(order))
	groupIdx := make(map[string]int)
	for _, key := range order {
		c := rep[key]
		if noPlanner || c.Plan == nil || c.Plan.Group == "" || c.Plan.RunPass == nil {
			units = append(units, []string{key})
			continue
		}
		gi, ok := groupIdx[c.Plan.Group]
		if !ok {
			groupIdx[c.Plan.Group] = len(units)
			units = append(units, []string{key})
			continue
		}
		units[gi] = append(units[gi], key)
	}
	for _, u := range units {
		if len(u) > 1 {
			sort.SliceStable(u, func(i, j int) bool {
				return rep[u[i]].Plan.Horizon < rep[u[j]].Plan.Horizon
			})
		}
	}

	progress := func(resolved int) {
		if onProgress == nil && onProgressStats == nil {
			return
		}
		b.mu.Lock()
		b.done += resolved
		if onProgressStats != nil {
			onProgressStats(b.done, len(cells), b.stats)
		} else {
			onProgress(b.done, len(cells))
		}
		b.mu.Unlock()
	}

	workers := e.opts.Parallelism
	if workers > len(units) {
		workers = len(units)
	}
	jobs := make(chan []string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range jobs {
				if b.abortedOrDone(ctx) {
					continue
				}
				if len(unit) > 1 {
					e.resolveGroup(ctx, unit, rep, positions, results, b, progress)
					continue
				}
				key := unit[0]
				r, err := e.resolve(ctx, rep[key], b)
				if err != nil {
					b.fail(err)
					continue
				}
				for _, i := range positions[key] {
					results[i] = r
				}
				progress(len(positions[key]))
			}
		}()
	}
dispatch:
	for _, unit := range units {
		select {
		case jobs <- unit:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	b.mu.Lock()
	err := b.firstErr
	stats := b.stats
	b.mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}

	e.mu.Lock()
	e.stats.Add(stats)
	e.mu.Unlock()

	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// batch carries one Run invocation's shared mutable state.
type batch struct {
	mu       sync.Mutex
	stats    Stats
	firstErr error
	done     int // progress counter
}

func (b *batch) fail(err error) {
	b.mu.Lock()
	if b.firstErr == nil {
		b.firstErr = err
	}
	b.mu.Unlock()
}

func (b *batch) abortedOrDone(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.firstErr != nil
}

func (b *batch) bump(f func(*Stats)) {
	b.mu.Lock()
	f(&b.stats)
	b.mu.Unlock()
}

// resolve returns the cell's result from the cache, an in-flight
// computation, the store, or by running it, in that order.
func (e *Engine[R]) resolve(ctx context.Context, c Cell[R], b *batch) (R, error) {
	for {
		e.mu.Lock()
		if r, ok := e.cache[c.Key]; ok {
			e.mu.Unlock()
			b.bump(func(s *Stats) { s.CacheHits++ })
			return r, nil
		}
		if f, ok := e.inflight[c.Key]; ok {
			e.mu.Unlock()
			if m := e.opts.Metrics; m != nil {
				m.SingleflightWaits.Inc()
			}
			sp := telemetry.StartSpan(ctx, "singleflight-wait", c.Key)
			select {
			case <-f.done:
				sp.End()
				if f.err == nil {
					b.bump(func(s *Stats) { s.CacheHits++ })
					return f.r, nil
				}
				// The computing batch failed or was cancelled; its error
				// is not ours. Loop and try to claim the key ourselves.
				continue
			case <-ctx.Done():
				sp.End()
				var zero R
				return zero, ctx.Err()
			}
		}
		f := &flight[R]{done: make(chan struct{})}
		e.inflight[c.Key] = f
		e.mu.Unlock()

		r, err := e.compute(ctx, c, b)
		f.r, f.err = r, err
		e.mu.Lock()
		delete(e.inflight, c.Key)
		e.mu.Unlock()
		close(f.done)
		return r, err
	}
}

// compute resolves a claimed cell: from the store if present, otherwise
// by running it under an engine-wide compute token. Successful results
// enter the cache and (best-effort) the store before the flight is
// released, so waiters observe a fully persisted cell.
func (e *Engine[R]) compute(ctx context.Context, c Cell[R], b *batch) (R, error) {
	var zero R
	m := e.opts.Metrics
	if e.store != nil {
		sp := telemetry.StartSpan(ctx, "store-read", c.Key)
		r, ok := e.store.load(c.Key)
		sp.SetAttr("hit", ok)
		sp.End()
		if ok {
			e.mu.Lock()
			e.cache[c.Key] = r
			e.mu.Unlock()
			b.bump(func(s *Stats) { s.StoreHits++ })
			return r, nil
		}
	}

	semStart := time.Now()
	semSpan := telemetry.StartSpan(ctx, "sem-wait", c.Key)
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		semSpan.End()
		return zero, ctx.Err()
	}
	semSpan.End()
	if m != nil {
		m.SemWaitSeconds.Observe(time.Since(semStart).Seconds())
	}
	note := &resumeNote{}
	runStart := time.Now()
	runSpan := telemetry.StartSpan(ctx, "cell", c.Key)
	// A panicking cell must not take down the worker pool (and with it
	// the whole server): convert the panic into an ordinary cell error
	// carrying the stack, so exactly this batch fails, attributably.
	r, err := func() (r R, err error) {
		defer func() {
			if p := recover(); p != nil {
				b.bump(func(s *Stats) { s.Panics++ })
				err = fmt.Errorf("engine: cell %q panicked: %v\n%s", c.Key, p, debug.Stack())
			}
		}()
		return c.Run(context.WithValue(ctx, resumeNoteKey{}, note))
	}()
	if note.resumed {
		runSpan.SetAttr("resumed_ticks", note.ticks)
	}
	runSpan.End()
	<-e.sem
	if err != nil {
		return zero, err
	}
	if m != nil {
		m.CellSeconds.Observe(time.Since(runStart).Seconds())
	}

	e.mu.Lock()
	e.cache[c.Key] = r
	e.mu.Unlock()
	b.bump(func(s *Stats) {
		s.Simulated++
		s.SimulatedTicks += note.simulated
		if note.resumed {
			s.Resumed++
			s.ResumedTicks += uint64(note.ticks)
		}
	})
	if e.store != nil {
		e.saveResult(ctx, c.Key, r, b)
	}
	return r, nil
}

// saveResult persists one result to the store, best-effort: a failed
// write (disk full, permissions) never discards the computed result —
// the cell stays in the in-memory cache and the failure is tallied.
func (e *Engine[R]) saveResult(ctx context.Context, key string, r R, b *batch) {
	m := e.opts.Metrics
	wrSpan := telemetry.StartSpan(ctx, "store-write", key)
	wrStart := time.Now()
	_, err := e.store.save(key, r)
	if m != nil {
		m.StoreWriteSeconds.Observe(time.Since(wrStart).Seconds())
	}
	wrSpan.End()
	if err != nil {
		b.bump(func(s *Stats) {
			s.StoreErrors++
			if s.FirstStoreError == "" {
				s.FirstStoreError = err.Error()
			}
		})
	}
}

// resolveGroup resolves a Plan group's cells (ascending horizon) as one
// coalesced pass, preserving the per-cell resolution semantics exactly:
// members already cached are served as cache hits, members in flight in
// another batch are waited on individually, claimed members are checked
// against the store, and only what remains is simulated — by a single
// RunPass to the maximum pending horizon. Every emitted result is
// cached, persisted, and released to singleflight waiters immediately;
// on error or cancellation, cells emitted before the failure stay
// resolved (warm for the retry) and only the unemitted members' flights
// carry the error.
func (e *Engine[R]) resolveGroup(ctx context.Context, keys []string, rep map[string]Cell[R],
	positions map[string][]int, results []R, b *batch, progress func(int)) {
	serve := func(key string, r R) {
		for _, i := range positions[key] {
			results[i] = r
		}
		progress(len(positions[key]))
	}

	cached := make(map[string]R)
	flights := make(map[string]*flight[R])
	var deferred, claimed []string
	e.mu.Lock()
	for _, key := range keys {
		if r, ok := e.cache[key]; ok {
			cached[key] = r
			continue
		}
		if _, ok := e.inflight[key]; ok {
			deferred = append(deferred, key)
			continue
		}
		f := &flight[R]{done: make(chan struct{})}
		e.inflight[key] = f
		flights[key] = f
		claimed = append(claimed, key)
	}
	e.mu.Unlock()
	for _, key := range keys {
		if r, ok := cached[key]; ok {
			b.bump(func(s *Stats) { s.CacheHits++ })
			serve(key, r)
		}
	}

	// Claimed members may still be on disk from an earlier process; only
	// what the store cannot answer joins the pass.
	pass := claimed[:0]
	for _, key := range claimed {
		if e.store != nil {
			sp := telemetry.StartSpan(ctx, "store-read", key)
			r, ok := e.store.load(key)
			sp.SetAttr("hit", ok)
			sp.End()
			if ok {
				e.mu.Lock()
				e.cache[key] = r
				delete(e.inflight, key)
				e.mu.Unlock()
				f := flights[key]
				f.r = r
				close(f.done)
				b.bump(func(s *Stats) { s.StoreHits++ })
				serve(key, r)
				continue
			}
		}
		pass = append(pass, key)
	}

	if len(pass) > 0 {
		e.runPass(ctx, pass, rep, flights, b, serve)
	}

	// Members another batch was computing when the pass was formed: wait
	// on (or, if that batch failed, compute) them individually.
	for _, key := range deferred {
		if b.abortedOrDone(ctx) {
			return
		}
		r, err := e.resolve(ctx, rep[key], b)
		if err != nil {
			b.fail(err)
			return
		}
		serve(key, r)
	}
}

// runPass executes one coalesced pass over the pending members, whose
// flights the caller has already claimed.
func (e *Engine[R]) runPass(ctx context.Context, pass []string, rep map[string]Cell[R],
	flights map[string]*flight[R], b *batch, serve func(string, R)) {
	m := e.opts.Metrics
	group := rep[pass[0]].Plan.Group
	members := make([]PlanMember, len(pass))
	for i, key := range pass {
		p := rep[key].Plan
		members[i] = PlanMember{Key: key, Horizon: p.Horizon, Payload: p.Payload}
	}

	failRest := func(err error, emitted []bool) {
		for i, key := range pass {
			if emitted != nil && emitted[i] {
				continue
			}
			f := flights[key]
			f.err = err
			e.mu.Lock()
			delete(e.inflight, key)
			e.mu.Unlock()
			close(f.done)
		}
		b.fail(err)
	}

	semStart := time.Now()
	semSpan := telemetry.StartSpan(ctx, "sem-wait", group)
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		semSpan.End()
		failRest(ctx.Err(), nil)
		return
	}
	semSpan.End()
	if m != nil {
		m.SemWaitSeconds.Observe(time.Since(semStart).Seconds())
	}

	note := &resumeNote{}
	emitted := make([]bool, len(members))
	nEmitted := 0
	runStart := time.Now()
	runSpan := telemetry.StartSpan(ctx, "pass", group)
	runSpan.SetAttr("members", len(members))
	emit := func(i int, r R) {
		if i < 0 || i >= len(members) || emitted[i] {
			panic(fmt.Sprintf("engine: pass %q emitted invalid or duplicate member %d", group, i))
		}
		emitted[i] = true
		nEmitted++
		key := members[i].Key
		e.mu.Lock()
		e.cache[key] = r
		delete(e.inflight, key)
		e.mu.Unlock()
		f := flights[key]
		f.r = r
		close(f.done)
		b.bump(func(s *Stats) { s.Simulated++; s.PlannedCells++ })
		if e.store != nil {
			e.saveResult(ctx, key, r, b)
		}
		serve(key, r)
	}
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				b.bump(func(s *Stats) { s.Panics++ })
				err = fmt.Errorf("engine: pass %q panicked: %v\n%s", group, p, debug.Stack())
			}
		}()
		return rep[pass[0]].Plan.RunPass(context.WithValue(ctx, resumeNoteKey{}, note), members, emit)
	}()
	if note.resumed {
		runSpan.SetAttr("resumed_ticks", note.ticks)
	}
	runSpan.End()
	<-e.sem
	if err == nil && nEmitted < len(members) {
		err = fmt.Errorf("engine: pass %q emitted %d of %d members", group, nEmitted, len(members))
	}
	b.bump(func(s *Stats) {
		s.PlannedPasses++
		s.SimulatedTicks += note.simulated
		if note.resumed {
			s.Resumed++
			s.ResumedTicks += uint64(note.ticks)
		}
	})
	if m != nil {
		m.CellSeconds.Observe(time.Since(runStart).Seconds())
	}
	if err != nil {
		failRest(err, emitted)
	}
}
