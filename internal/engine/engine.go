// Package engine is the parallel experiment engine behind the paper's
// performance sweeps (Figs. 9-16). Every sweep decomposes into cells —
// one deterministic simulation each, addressed by a content key that
// encodes everything the simulation depends on — and the engine executes
// them on a bounded worker pool. Because each cell derives its seeds from
// its own content, a parallel run is bit-identical to a serial run
// regardless of scheduling order.
//
// The engine owns three layers of reuse on top of the pool:
//
//   - batch dedup: duplicate keys submitted in one Run execute once;
//   - an in-memory content-keyed cache, so an engine shared across sweep
//     points (capacities, NRH values, channel counts) never repeats a
//     cell — this subsumes the alone-IPC memoization the sweeps used to
//     hand-roll;
//   - an optional JSON result store (ResultDir), so re-running a sweep
//     after a crash, or with one new policy, only simulates the delta.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

// Cell is one addressable, schedulable, memoizable unit of work.
type Cell[R any] struct {
	// Key is the cell's content key: it must encode every input the
	// computation depends on (configuration, policy, workload, seeds,
	// tick counts), because equal keys share one result.
	Key string
	// Run computes the cell. It must be deterministic given Key and must
	// not share mutable state with other cells.
	Run func() (R, error)
}

// Stats tallies how an engine resolved the cells submitted to it. For
// batches that complete without error, Submitted = Simulated +
// CacheHits + StoreHits + Deduped; an aborted batch leaves its
// unresolved cells counted in Submitted only.
type Stats struct {
	Submitted   uint64 // cells passed to Run batches
	Simulated   uint64 // cells actually computed
	CacheHits   uint64 // served from the in-memory cache
	StoreHits   uint64 // loaded from the ResultDir store
	Deduped     uint64 // duplicate keys within a batch
	StoreErrors uint64 // results that could not be persisted to ResultDir

	// FirstStoreError describes the first ResultDir write failure, so
	// callers can report why persistence degraded (permissions, full
	// disk, ...), not just that it did.
	FirstStoreError string
}

// Add accumulates another tally into s.
func (s *Stats) Add(o Stats) {
	s.Submitted += o.Submitted
	s.Simulated += o.Simulated
	s.CacheHits += o.CacheHits
	s.StoreHits += o.StoreHits
	s.Deduped += o.Deduped
	s.StoreErrors += o.StoreErrors
	if s.FirstStoreError == "" {
		s.FirstStoreError = o.FirstStoreError
	}
}

// Options configures an engine.
type Options struct {
	// Parallelism bounds the worker pool; <= 0 means runtime.NumCPU().
	Parallelism int
	// ResultDir, when non-empty, persists each cell's result as a JSON
	// file named by the SHA-256 of its key, and serves matching cells
	// from disk on later runs. The directory is created if missing.
	// Store writes are best-effort: a failed write (disk full,
	// permissions) never discards the computed result — the cell stays
	// in the in-memory cache and the failure is tallied in
	// Stats.StoreErrors / Stats.FirstStoreError.
	ResultDir string
	// OnProgress, when set, is called after each cell of a batch
	// resolves, with the number resolved so far and the batch size. It
	// is invoked from worker goroutines but never concurrently.
	OnProgress func(done, total int)
}

// Engine executes cells on a bounded worker pool with a content-keyed
// result cache. The zero value is not usable; construct with New.
type Engine[R any] struct {
	opts Options

	mu    sync.Mutex
	cache map[string]R
	stats Stats
}

// New returns an engine for results of type R.
func New[R any](opts Options) *Engine[R] {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	if opts.ResultDir != "" {
		// Create the store once here; if this fails, each save's
		// CreateTemp fails too and is tallied in Stats.StoreErrors.
		os.MkdirAll(opts.ResultDir, 0o755)
	}
	return &Engine[R]{opts: opts, cache: make(map[string]R)}
}

// Parallelism reports the worker pool size.
func (e *Engine[R]) Parallelism() int { return e.opts.Parallelism }

// Stats returns a snapshot of the engine's resolution tallies.
func (e *Engine[R]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run resolves every cell and returns results in submission order.
// Duplicate keys within the batch compute once; previously resolved keys
// are served from the cache (or the ResultDir store) without running.
// The first cell error aborts the batch.
func (e *Engine[R]) Run(cells []Cell[R]) ([]R, error) {
	results := make([]R, len(cells))

	// Collapse the batch to unique keys, remembering every position each
	// key must fill.
	order := make([]string, 0, len(cells))
	positions := make(map[string][]int, len(cells))
	rep := make(map[string]Cell[R], len(cells))
	for i, c := range cells {
		if c.Run == nil {
			return nil, fmt.Errorf("engine: cell %d (%q) has no Run", i, c.Key)
		}
		if _, ok := positions[c.Key]; !ok {
			order = append(order, c.Key)
			rep[c.Key] = c
		}
		positions[c.Key] = append(positions[c.Key], i)
	}
	e.mu.Lock()
	e.stats.Submitted += uint64(len(cells))
	e.stats.Deduped += uint64(len(cells) - len(order))
	e.mu.Unlock()

	jobs := make(chan string)
	var wg sync.WaitGroup
	var firstErr error
	var aborted bool
	var prog struct {
		sync.Mutex
		done int
	}
	for w := 0; w < e.opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range jobs {
				e.mu.Lock()
				skip := aborted
				e.mu.Unlock()
				if skip {
					continue
				}
				r, err := e.resolve(rep[key])
				if err != nil {
					e.mu.Lock()
					if firstErr == nil {
						firstErr = err
						aborted = true
					}
					e.mu.Unlock()
					continue
				}
				for _, i := range positions[key] {
					results[i] = r
				}
				if e.opts.OnProgress != nil {
					prog.Lock()
					prog.done += len(positions[key])
					e.opts.OnProgress(prog.done, len(cells))
					prog.Unlock()
				}
			}
		}()
	}
	for _, key := range order {
		jobs <- key
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// resolve returns the cell's result from the cache, the store, or by
// running it, in that order.
func (e *Engine[R]) resolve(c Cell[R]) (R, error) {
	e.mu.Lock()
	if r, ok := e.cache[c.Key]; ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()

	if r, ok := e.load(c.Key); ok {
		e.mu.Lock()
		e.cache[c.Key] = r
		e.stats.StoreHits++
		e.mu.Unlock()
		return r, nil
	}

	r, err := c.Run()
	if err != nil {
		return r, err
	}
	e.mu.Lock()
	e.cache[c.Key] = r
	e.stats.Simulated++
	e.mu.Unlock()
	if err := e.save(c.Key, r); err != nil {
		// Best-effort: never throw away a computed result over a store
		// write failure; record it and carry on from the memory cache.
		e.mu.Lock()
		e.stats.StoreErrors++
		if e.stats.FirstStoreError == "" {
			e.stats.FirstStoreError = err.Error()
		}
		e.mu.Unlock()
	}
	return r, nil
}

// storedCell is the on-disk JSON schema of one cell result. The full key
// is stored alongside the result so files are self-describing and a
// (vanishingly unlikely) hash collision is detected rather than served.
type storedCell[R any] struct {
	Key    string `json:"key"`
	Result R      `json:"result"`
}

func (e *Engine[R]) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(e.opts.ResultDir, hex.EncodeToString(sum[:])+".json")
}

// load fetches a stored result for key, if the store is enabled and has
// one. Unreadable or mismatched files are treated as misses: the cell
// re-simulates and overwrites them.
func (e *Engine[R]) load(key string) (R, bool) {
	var zero R
	if e.opts.ResultDir == "" {
		return zero, false
	}
	data, err := os.ReadFile(e.path(key))
	if err != nil {
		return zero, false
	}
	var sc storedCell[R]
	if err := json.Unmarshal(data, &sc); err != nil || sc.Key != key {
		return zero, false
	}
	return sc.Result, true
}

// save persists a result if the store is enabled, writing via a
// temporary file so a crash never leaves a truncated cell behind.
func (e *Engine[R]) save(key string, r R) error {
	if e.opts.ResultDir == "" {
		return nil
	}
	data, err := json.Marshal(storedCell[R]{Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("engine: marshal cell %q: %w", key, err)
	}
	dst := e.path(key)
	tmp, err := os.CreateTemp(e.opts.ResultDir, "cell-*.tmp")
	if err != nil {
		return fmt.Errorf("engine: result store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	return nil
}
