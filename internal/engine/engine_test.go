package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// countingCell returns a cell whose Run increments runs and returns v.
func countingCell(key string, v int, runs *atomic.Int64) Cell[int] {
	return Cell[int]{Key: key, Run: func() (int, error) {
		runs.Add(1)
		return v, nil
	}}
}

func TestRunPreservesOrder(t *testing.T) {
	e := New[int](Options{Parallelism: 4})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 100; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i), i*i, &runs))
	}
	got, err := e.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	if runs.Load() != 100 {
		t.Errorf("ran %d cells, want 100", runs.Load())
	}
}

func TestBatchDedup(t *testing.T) {
	e := New[int](Options{Parallelism: 8})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 40; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i%4), (i%4)*10, &runs))
	}
	got, err := e.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != (i%4)*10 {
			t.Fatalf("result %d = %d, want %d", i, v, (i%4)*10)
		}
	}
	if runs.Load() != 4 {
		t.Errorf("ran %d cells, want 4", runs.Load())
	}
	s := e.Stats()
	if s.Submitted != 40 || s.Simulated != 4 || s.Deduped != 36 {
		t.Errorf("stats = %+v, want 40 submitted / 4 simulated / 36 deduped", s)
	}
}

func TestCacheAcrossBatches(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	var runs atomic.Int64
	cells := []Cell[int]{countingCell("a", 1, &runs), countingCell("b", 2, &runs)}
	if _, err := e.Run(cells); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(cells); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("ran %d cells across two batches, want 2", runs.Load())
	}
	if s := e.Stats(); s.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", s.CacheHits)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	type payload struct {
		X []float64 `json:"x"`
		N int       `json:"n"`
	}
	dir := t.TempDir()
	var runs atomic.Int64
	cell := Cell[payload]{Key: "sweep/cap=8", Run: func() (payload, error) {
		runs.Add(1)
		return payload{X: []float64{1.5, 2.5}, N: 7}, nil
	}}

	e1 := New[payload](Options{Parallelism: 1, ResultDir: dir})
	first, err := e1.Run([]Cell[payload]{cell})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh engine with the same store must serve the cell from disk.
	e2 := New[payload](Options{Parallelism: 1, ResultDir: dir})
	second, err := e2.Run([]Cell[payload]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("ran %d times, want 1 (store hit)", runs.Load())
	}
	if s := e2.Stats(); s.StoreHits != 1 || s.Simulated != 0 {
		t.Errorf("stats = %+v, want 1 store hit and 0 simulated", s)
	}
	if second[0].N != first[0].N || second[0].X[0] != first[0].X[0] || second[0].X[1] != first[0].X[1] {
		t.Errorf("store round-trip changed result: %+v vs %+v", second[0], first[0])
	}
}

func TestStoreCorruptFileResimulates(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	cell := countingCell("k", 42, &runs)

	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if _, err := e.Run([]Cell[int]{cell}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("store has %d files (err %v), want 1", len(entries), err)
	}
	if err := os.WriteFile(filepath.Join(dir, entries[0].Name()), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New[int](Options{Parallelism: 1, ResultDir: dir})
	got, err := e2.Run([]Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || runs.Load() != 2 {
		t.Errorf("corrupt store file not re-simulated: got %d after %d runs", got[0], runs.Load())
	}
}

func TestStoreWriteFailureKeepsResult(t *testing.T) {
	// A ResultDir that cannot be created: parent is a plain file.
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	e := New[int](Options{Parallelism: 1, ResultDir: filepath.Join(parent, "store")})
	var runs atomic.Int64
	got, err := e.Run([]Cell[int]{countingCell("k", 7, &runs)})
	if err != nil {
		t.Fatalf("store write failure aborted the batch: %v", err)
	}
	if got[0] != 7 {
		t.Errorf("result = %d, want 7", got[0])
	}
	if s := e.Stats(); s.StoreErrors != 1 || s.Simulated != 1 || s.FirstStoreError == "" {
		t.Errorf("stats = %+v, want 1 store error (with cause) and 1 simulated", s)
	}
	// The result survived in the memory cache.
	if _, err := e.Run([]Cell[int]{countingCell("k", 7, &runs)}); err != nil || runs.Load() != 1 {
		t.Errorf("computed result not served from cache after store failure (runs=%d, err=%v)", runs.Load(), err)
	}
}

func TestErrorAbortsBatch(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	boom := errors.New("boom")
	cells := []Cell[int]{
		{Key: "ok", Run: func() (int, error) { return 1, nil }},
		{Key: "bad", Run: func() (int, error) { return 0, boom }},
	}
	if _, err := e.Run(cells); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, err := e.Run([]Cell[int]{{Key: "nil-run"}}); err == nil {
		t.Fatal("accepted cell without Run")
	}
}

func TestProgressReachesTotal(t *testing.T) {
	var last, calls int
	e := New[int](Options{Parallelism: 4, OnProgress: func(done, total int) {
		if done <= last || done > total {
			t.Errorf("progress went %d -> %d of %d", last, done, total)
		}
		last = done
		calls++
	}})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 9; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i%3), i%3, &runs))
	}
	if _, err := e.Run(cells); err != nil {
		t.Fatal(err)
	}
	if last != 9 {
		t.Errorf("final progress = %d, want 9", last)
	}
	if calls != 3 {
		t.Errorf("progress calls = %d, want 3 (one per unique key)", calls)
	}
}

func TestDefaultParallelism(t *testing.T) {
	if p := New[int](Options{}).Parallelism(); p < 1 {
		t.Errorf("default parallelism = %d", p)
	}
}
