package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// countingCell returns a cell whose Run increments runs and returns v.
func countingCell(key string, v int, runs *atomic.Int64) Cell[int] {
	return Cell[int]{Key: key, Run: func(context.Context) (int, error) {
		runs.Add(1)
		return v, nil
	}}
}

func TestRunPreservesOrder(t *testing.T) {
	e := New[int](Options{Parallelism: 4})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 100; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i), i*i, &runs))
	}
	got, _, err := e.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	if runs.Load() != 100 {
		t.Errorf("ran %d cells, want 100", runs.Load())
	}
}

func TestBatchDedup(t *testing.T) {
	e := New[int](Options{Parallelism: 8})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 40; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i%4), (i%4)*10, &runs))
	}
	got, batch, err := e.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != (i%4)*10 {
			t.Fatalf("result %d = %d, want %d", i, v, (i%4)*10)
		}
	}
	if runs.Load() != 4 {
		t.Errorf("ran %d cells, want 4", runs.Load())
	}
	if batch.Submitted != 40 || batch.Simulated != 4 || batch.Deduped != 36 {
		t.Errorf("batch stats = %+v, want 40 submitted / 4 simulated / 36 deduped", batch)
	}
	if s := e.Stats(); s != batch {
		t.Errorf("engine lifetime stats %+v != sole batch stats %+v", s, batch)
	}
}

func TestCacheAcrossBatches(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	var runs atomic.Int64
	cells := []Cell[int]{countingCell("a", 1, &runs), countingCell("b", 2, &runs)}
	if _, _, err := e.Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	_, warm, err := e.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("ran %d cells across two batches, want 2", runs.Load())
	}
	if warm.CacheHits != 2 || warm.Simulated != 0 {
		t.Errorf("warm batch stats = %+v, want 2 cache hits / 0 simulated", warm)
	}
	if s := e.Stats(); s.CacheHits != 2 || s.Simulated != 2 {
		t.Errorf("lifetime stats = %+v, want 2 cache hits and 2 simulated", s)
	}
}

func TestErrorAbortsBatch(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	boom := errors.New("boom")
	cells := []Cell[int]{
		{Key: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "bad", Run: func(context.Context) (int, error) { return 0, boom }},
	}
	if _, _, err := e.Run(context.Background(), cells); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, _, err := e.Run(context.Background(), []Cell[int]{{Key: "nil-run"}}); err == nil {
		t.Fatal("accepted cell without Run")
	}
}

func TestFailedCellNotCached(t *testing.T) {
	e := New[int](Options{Parallelism: 1})
	calls := 0
	flaky := Cell[int]{Key: "flaky", Run: func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 9, nil
	}}
	if _, _, err := e.Run(context.Background(), []Cell[int]{flaky}); err == nil {
		t.Fatal("first run should fail")
	}
	got, _, err := e.Run(context.Background(), []Cell[int]{flaky})
	if err != nil || got[0] != 9 {
		t.Fatalf("retry after failure: got %v, err %v", got, err)
	}
}

func TestProgressReachesTotal(t *testing.T) {
	var last, calls int
	e := New[int](Options{Parallelism: 4, OnProgress: func(done, total int) {
		if done <= last || done > total {
			t.Errorf("progress went %d -> %d of %d", last, done, total)
		}
		last = done
		calls++
	}})
	var runs atomic.Int64
	var cells []Cell[int]
	for i := 0; i < 9; i++ {
		cells = append(cells, countingCell(fmt.Sprintf("c%d", i%3), i%3, &runs))
	}
	if _, _, err := e.Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if last != 9 {
		t.Errorf("final progress = %d, want 9", last)
	}
	if calls != 3 {
		t.Errorf("progress calls = %d, want 3 (one per unique key)", calls)
	}
}

func TestPerBatchProgressOverride(t *testing.T) {
	e := New[int](Options{Parallelism: 2, OnProgress: func(done, total int) {
		t.Error("engine-level progress called despite per-batch override")
	}})
	var runs atomic.Int64
	var got int
	_, _, err := e.RunWith(context.Background(),
		[]Cell[int]{countingCell("a", 1, &runs), countingCell("b", 2, &runs)},
		RunOptions{OnProgress: func(done, total int) { got = done }})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("per-batch progress reached %d, want 2", got)
	}
}

func TestDefaultParallelism(t *testing.T) {
	if p := New[int](Options{}).Parallelism(); p < 1 {
		t.Errorf("default parallelism = %d", p)
	}
}

// TestSingleflightAcrossBatches asserts the service-critical contract:
// two concurrent batches needing the same cold cell trigger exactly one
// computation, with the late batch served from the in-flight result.
func TestSingleflightAcrossBatches(t *testing.T) {
	e := New[int](Options{Parallelism: 4})
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := Cell[int]{Key: "shared", Run: func(context.Context) (int, error) {
		runs.Add(1)
		once.Do(func() { close(entered) })
		<-release
		return 77, nil
	}}

	type out struct {
		r     []int
		stats Stats
		err   error
	}
	results := make(chan out, 2)
	go func() {
		r, s, err := e.Run(context.Background(), []Cell[int]{slow})
		results <- out{r, s, err}
	}()
	<-entered // first batch is computing
	go func() {
		r, s, err := e.Run(context.Background(), []Cell[int]{slow})
		results <- out{r, s, err}
	}()
	// Give the second batch a moment to reach the inflight wait, then
	// let the computation finish. Even if it has not arrived yet, it can
	// only see the cache afterwards — never a second computation.
	close(release)

	var simulated, cacheHits uint64
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.r[0] != 77 {
			t.Fatalf("batch result = %d, want 77", o.r[0])
		}
		simulated += o.stats.Simulated
		cacheHits += o.stats.CacheHits
	}
	if runs.Load() != 1 {
		t.Fatalf("cell ran %d times across concurrent batches, want 1", runs.Load())
	}
	if simulated != 1 || cacheHits != 1 {
		t.Errorf("batch tallies: %d simulated / %d cache hits, want 1 / 1", simulated, cacheHits)
	}
}

// TestSingleflightFailureHandsOff asserts a waiter does not inherit the
// computing batch's cancellation: it claims the key and computes it.
func TestSingleflightFailureHandsOff(t *testing.T) {
	e := New[int](Options{Parallelism: 4})
	entered := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	var calls atomic.Int64
	cell := Cell[int]{Key: "k", Run: func(ctx context.Context) (int, error) {
		if calls.Add(1) == 1 {
			// First computation: a long simulation interrupted by its
			// batch's cancellation.
			close(entered)
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 5, nil
	}}

	firstDone := make(chan error, 1)
	go func() {
		_, _, err := e.Run(ctx1, []Cell[int]{cell})
		firstDone <- err
	}()
	<-entered
	cancel1() // first batch's cell observes cancellation and fails
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first batch err = %v, want context.Canceled", err)
	}

	// The second batch must not be poisoned by the first's cancellation.
	got, stats, err := e.Run(context.Background(), []Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || stats.Simulated != 1 {
		t.Errorf("handed-off computation: got %d (stats %+v), want 5 simulated once", got[0], stats)
	}
}

// TestCancelledRunReturnsCtxErr asserts in-flight cells observe the
// context and the batch reports ctx.Err().
func TestCancelledRunReturnsCtxErr(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	var cells []Cell[int]
	for i := 0; i < 8; i++ {
		cells = append(cells, Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func(ctx context.Context) (int, error) {
			once.Do(func() { close(started) })
			<-ctx.Done() // a long simulation polling its context
			return 0, ctx.Err()
		}})
	}
	go func() {
		<-started
		cancel()
	}()
	if _, _, err := e.Run(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPreCancelledRunDoesNothing(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int64
	if _, _, err := e.Run(ctx, []Cell[int]{countingCell("a", 1, &runs)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs.Load() != 0 {
		t.Errorf("pre-cancelled run computed %d cells", runs.Load())
	}
}

// storeFiles returns every persisted cell file under a sharded store.
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "??", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestStoreRoundTrip(t *testing.T) {
	type payload struct {
		X []float64 `json:"x"`
		N int       `json:"n"`
	}
	dir := t.TempDir()
	var runs atomic.Int64
	cell := Cell[payload]{Key: "sweep/cap=8", Run: func(context.Context) (payload, error) {
		runs.Add(1)
		return payload{X: []float64{1.5, 2.5}, N: 7}, nil
	}}

	e1 := New[payload](Options{Parallelism: 1, ResultDir: dir})
	first, _, err := e1.Run(context.Background(), []Cell[payload]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(storeFiles(t, dir)); n != 1 {
		t.Fatalf("store has %d sharded cell files, want 1", n)
	}

	// A fresh engine with the same store must index and serve the cell
	// from disk.
	e2 := New[payload](Options{Parallelism: 1, ResultDir: dir})
	if got := e2.StoredCells(); got != 1 {
		t.Fatalf("startup index found %d cells, want 1", got)
	}
	second, warm, err := e2.Run(context.Background(), []Cell[payload]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("ran %d times, want 1 (store hit)", runs.Load())
	}
	if warm.StoreHits != 1 || warm.Simulated != 0 {
		t.Errorf("stats = %+v, want 1 store hit and 0 simulated", warm)
	}
	if second[0].N != first[0].N || second[0].X[0] != first[0].X[0] || second[0].X[1] != first[0].X[1] {
		t.Errorf("store round-trip changed result: %+v vs %+v", second[0], first[0])
	}
}

// TestStoreTruncatedCellResimulates is the crash-hardening regression
// test: a cell file truncated mid-write (simulating a crash without the
// atomic rename) must read as a miss on a warm re-run, re-simulate, and
// be healed in place.
func TestStoreTruncatedCellResimulates(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	cell := countingCell("k", 42, &runs)

	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if _, _, err := e.Run(context.Background(), []Cell[int]{cell}); err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store has %d files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm re-run on a fresh engine over the same store: the truncated
	// cell is a miss, not an error, and gets rewritten intact.
	e2 := New[int](Options{Parallelism: 1, ResultDir: dir})
	got, stats, err := e2.Run(context.Background(), []Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || runs.Load() != 2 {
		t.Errorf("truncated cell not re-simulated: got %d after %d runs", got[0], runs.Load())
	}
	if stats.Simulated != 1 || stats.StoreHits != 0 {
		t.Errorf("stats = %+v, want 1 simulated / 0 store hits", stats)
	}
	e3 := New[int](Options{Parallelism: 1, ResultDir: dir})
	if _, healed, err := e3.Run(context.Background(), []Cell[int]{cell}); err != nil || healed.StoreHits != 1 {
		t.Errorf("store not healed after re-simulation: stats %+v, err %v", healed, err)
	}
}

func TestStoreCorruptFileResimulates(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	cell := countingCell("k", 42, &runs)

	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if _, _, err := e.Run(context.Background(), []Cell[int]{cell}); err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store has %d files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New[int](Options{Parallelism: 1, ResultDir: dir})
	got, _, err := e2.Run(context.Background(), []Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || runs.Load() != 2 {
		t.Errorf("corrupt store file not re-simulated: got %d after %d runs", got[0], runs.Load())
	}
}

func TestStoreWriteFailureKeepsResult(t *testing.T) {
	// A ResultDir that cannot be created: parent is a plain file. The
	// store detects this at construction and flips into cache-only mode
	// — jobs still succeed, served from the memory cache, and the
	// degradation is reported once via StoreDegraded rather than as a
	// per-cell StoreErrors tally.
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	e := New[int](Options{Parallelism: 1, ResultDir: filepath.Join(parent, "store")})
	if why, bad := e.StoreDegraded(); !bad || why == "" {
		t.Fatalf("StoreDegraded = (%q, %v), want degraded with a reason", why, bad)
	}
	var runs atomic.Int64
	got, stats, err := e.Run(context.Background(), []Cell[int]{countingCell("k", 7, &runs)})
	if err != nil {
		t.Fatalf("unusable store root aborted the batch: %v", err)
	}
	if got[0] != 7 {
		t.Errorf("result = %d, want 7", got[0])
	}
	if stats.Simulated != 1 || stats.StoreErrors != 0 {
		t.Errorf("stats = %+v, want 1 simulated and no per-cell store errors in degraded mode", stats)
	}
	// The result survived in the memory cache.
	if _, _, err := e.Run(context.Background(), []Cell[int]{countingCell("k", 7, &runs)}); err != nil || runs.Load() != 1 {
		t.Errorf("computed result not served from cache after store failure (runs=%d, err=%v)", runs.Load(), err)
	}
}

// TestStoreMigratesFlatLayout asserts cells persisted by the
// pre-sharding flat layout (root/<hash>.json) are moved into shards at
// startup and served as store hits, so upgraded stores stay warm.
func TestStoreMigratesFlatLayout(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	cell := countingCell("legacy-key", 11, &runs)

	// Write the cell where the old flat layout put it.
	hash := hashKey(cell.Key)
	data, err := json.Marshal(storedCell[int]{Key: cell.Key, Result: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hash+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if got := e.StoredCells(); got != 1 {
		t.Fatalf("startup indexed %d cells from the flat layout, want 1", got)
	}
	got, stats, err := e.Run(context.Background(), []Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 || runs.Load() != 0 || stats.StoreHits != 1 {
		t.Errorf("migrated cell not served from store: got %d, runs %d, stats %+v", got[0], runs.Load(), stats)
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".json")); !os.IsNotExist(err) {
		t.Error("flat-layout file not moved into its shard")
	}
	if files := storeFiles(t, dir); len(files) != 1 {
		t.Errorf("sharded store has %d files after migration, want 1", len(files))
	}
}

// TestStoreIgnoresForeignFiles asserts the index only trusts the sharded
// layout: stray files in the root (e.g. the pre-sharding flat layout)
// neither crash startup nor get served.
func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte(`{"key":"k","result":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "not-a-shard"), 0o755); err != nil {
		t.Fatal(err)
	}
	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if got := e.StoredCells(); got != 0 {
		t.Errorf("index counted %d foreign cells, want 0", got)
	}
	var runs atomic.Int64
	got, _, err := e.Run(context.Background(), []Cell[int]{countingCell("k", 3, &runs)})
	if err != nil || got[0] != 3 || runs.Load() != 1 {
		t.Errorf("foreign file interfered: got %v runs %d err %v", got, runs.Load(), err)
	}
}

// TestCancelLeavesStoreConsistent asserts a cancelled batch leaves no
// temp droppings and only fully written cells, so a later run completes
// from a consistent store.
func TestCancelLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	e := New[int](Options{Parallelism: 2, ResultDir: dir})
	ctx, cancel := context.WithCancel(context.Background())
	var cells []Cell[int]
	fired := make(chan struct{})
	var once sync.Once
	for i := 0; i < 16; i++ {
		i := i
		cells = append(cells, Cell[int]{Key: fmt.Sprintf("c%d", i), Run: func(ctx context.Context) (int, error) {
			if i >= 4 {
				once.Do(func() { close(fired) })
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return i * 2, nil
		}})
	}
	go func() {
		<-fired
		cancel()
	}()
	if _, _, err := e.Run(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	if tmps, _ := filepath.Glob(filepath.Join(dir, "??", "*.tmp")); len(tmps) != 0 {
		t.Errorf("cancelled run left %d temp files: %v", len(tmps), tmps)
	}
	// Every persisted cell must be complete and parseable: a fresh
	// engine indexes them and a clean run serves them as store hits.
	for i := range cells {
		i := i
		cells[i].Run = func(context.Context) (int, error) { return i * 2, nil }
	}
	e2 := New[int](Options{Parallelism: 2, ResultDir: dir})
	got, stats, err := e2.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Errorf("cell %d = %d after recovery, want %d", i, v, i*2)
		}
	}
	if stats.StoreHits+stats.Simulated != 16 {
		t.Errorf("recovery stats %+v do not cover all 16 cells", stats)
	}
}
