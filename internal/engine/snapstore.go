package engine

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hira/internal/fault"
)

// SnapStats tallies a SnapStore's lifetime activity: how often resuming
// runs found a usable checkpoint, how much work the byte cap evicted,
// and the store's current footprint.
type SnapStats struct {
	Hits      uint64 `json:"hits"`      // resume attempts that restored a usable checkpoint
	Misses    uint64 `json:"misses"`    // resume attempts that found nothing usable
	Loads     uint64 `json:"loads"`     // checkpoint payload reads served
	Saves     uint64 `json:"saves"`     // checkpoints written
	Evictions uint64 `json:"evictions"` // checkpoints dropped by the byte cap
	Bytes     int64  `json:"bytes"`     // current payload bytes
	Entries   int    `json:"entries"`   // current checkpoint count

	// GhostHits and EvictionResimTicks are the cache-economics pair: a
	// ghost hit is a resume attempt that would have restored a further
	// checkpoint had the byte cap not evicted it, and EvictionResimTicks
	// accumulates the simulation ticks those evictions force back onto
	// the CPU. Together they price the cap — a store with evictions but
	// zero ghost hits evicted only dead weight; one with a climbing
	// resim-tick tally is thrashing its working set.
	GhostHits          uint64 `json:"ghost_hits"`
	EvictionResimTicks uint64 `json:"eviction_resim_ticks"`

	// SaveErrors counts checkpoints that could not be written (disk
	// full, permissions, over-cap payloads) — saves are best-effort, so
	// without this tally a store silently degrading to cold simulation
	// would be invisible. FirstSaveError describes the first failure.
	SaveErrors     uint64 `json:"save_errors"`
	FirstSaveError string `json:"first_save_error,omitempty"`

	// DeltaSaves/DeltaBytes split out differential checkpoints (deltas
	// against an earlier checkpoint of the same trajectory) from the
	// totals above, pricing the encoding: Saves - DeltaSaves full
	// snapshots wrote Bytes - ... well, DeltaBytes of the cumulative
	// save volume came in as deltas. A store whose DeltaBytes/DeltaSaves
	// ratio approaches the full-snapshot size has trajectories touching
	// their whole working set every interval.
	DeltaSaves uint64 `json:"delta_saves"`
	DeltaBytes uint64 `json:"delta_bytes"` // cumulative delta payload bytes written
}

// DefaultSnapMaxBytes is the checkpoint store's default byte cap for
// on-disk stores. Sized for a full figure sweep's working set (~100
// trajectories at a few checkpoints of ~2 MB each): a cap that doesn't
// hold one sweep makes a sequential rerun evict every checkpoint
// moments before it would have been resumed.
const DefaultSnapMaxBytes = 2 << 30

// DefaultSnapMaxBytesMemory is the default cap for in-memory stores,
// where the budget is process RAM rather than disk.
const DefaultSnapMaxBytesMemory = 256 << 20

// snapEntry is one stored checkpoint.
type snapEntry struct {
	hash  string
	tick  int
	base  int // delta base tick; 0 = full snapshot
	size  int64
	touch uint64 // last-use order for oldest-first eviction
	data  []byte // payload, in-memory mode only
}

// SnapStore holds simulation checkpoints keyed by (trajectory key, tick):
// opaque binary snapshots a cell runner writes while simulating and reads
// to resume a longer run from a shorter one's state. With a directory it
// shares the result store's layout — 256 two-hex shard directories,
// temp-file + rename atomic writes, a startup-built index — storing each
// checkpoint as <sha256(key)>@<tick>.snap next to the JSON cells; without
// one it degrades to a process-local in-memory store, which still lets a
// long-lived engine (e.g. the experiment service) answer "same cell,
// longer horizon" by simulating only the delta.
//
// The store is bounded: once stored payloads exceed maxBytes, the
// least-recently-used checkpoints are evicted (oldest-first when nothing
// has been re-read) until the new save fits. Corrupt or unreadable files
// are misses — the consumer validates payloads and re-simulates.
type SnapStore struct {
	root     string // "" = in-memory
	maxBytes int64
	fs       fault.FS
	degraded string // non-empty: requested on-disk root was unusable; why

	mu      sync.Mutex
	entries map[string]map[int]*snapEntry // key hash -> tick -> entry
	total   int64
	clock   uint64
	stats   SnapStats

	// Ghost list: a bounded ring remembering recently evicted (hash,
	// tick) slots so AttributeResim can tell "cold because never saved"
	// from "cold because evicted". Re-saving the exact slot clears its
	// ghost; overwriting the ring forgets the oldest evictions first.
	ghosts    []ghost
	ghostNext int
	ghostIdx  map[string]map[int]int // hash -> tick -> ring slot
}

// ghost is one remembered eviction.
type ghost struct {
	hash string
	tick int
}

// ghostRingSize bounds the eviction memory: enough to cover every
// checkpoint of a full sweep's trajectories without letting a
// long-lived store grow an unbounded tombstone list.
const ghostRingSize = 4096

// NewSnapStore opens (creating if needed) a checkpoint store rooted at
// dir, or an in-memory store when dir is empty. maxBytes <= 0 applies
// DefaultSnapMaxBytes (disk) or DefaultSnapMaxBytesMemory (in-memory).
func NewSnapStore(dir string, maxBytes int64) *SnapStore {
	return NewSnapStoreFS(dir, maxBytes, nil)
}

// NewSnapStoreFS is NewSnapStore with an explicit fault.FS for chaos
// testing (nil means the real filesystem). An unusable or unwritable
// on-disk root does not fail construction: the store flips to in-memory
// mode — checkpoints still serve warm resumes for the process's
// lifetime, they just don't survive a restart — and records why in
// Degraded().
func NewSnapStoreFS(dir string, maxBytes int64, fsys fault.FS) *SnapStore {
	if fsys == nil {
		fsys = fault.OS
	}
	s := &SnapStore{root: dir, fs: fsys, entries: make(map[string]map[int]*snapEntry)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			s.degraded = fmt.Sprintf("snapshot root unusable: %v", err)
			s.root = ""
		} else if err := probeWritable(dir); err != nil {
			s.degraded = fmt.Sprintf("snapshot root unwritable: %v", err)
			s.root = ""
		}
	}
	if maxBytes <= 0 {
		if s.root == "" {
			maxBytes = DefaultSnapMaxBytesMemory
		} else {
			maxBytes = DefaultSnapMaxBytes
		}
	}
	s.maxBytes = maxBytes
	if s.root == "" {
		return s
	}
	sweepStaleTmp(dir, tmpSweepAge)
	shards, err := os.ReadDir(dir)
	if err != nil {
		return s
	}
	// Index existing checkpoints, oldest first by modification time so
	// the eviction order survives restarts.
	type found struct {
		e   *snapEntry
		mod int64
	}
	var all []found
	for _, sh := range shards {
		if !sh.IsDir() || !isShardName(sh.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			hash, tick, base, ok := snapFileName(f.Name())
			if !ok {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			path := filepath.Join(dir, sh.Name(), f.Name())
			all = append(all, found{
				e:   &snapEntry{hash: hash, tick: tick, base: base, size: snapPayloadSize(path, info.Size())},
				mod: info.ModTime().UnixNano(),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod < all[j].mod })
	for _, f := range all {
		s.clock++
		f.e.touch = s.clock
		s.insertLocked(f.e)
	}
	return s
}

// snapSumMagic prefixes every on-disk checkpoint, followed by the
// SHA-256 of the payload. The consumer's structural validation (the
// snapshot's own magic and embedded key) catches truncation and wrong-
// slot payloads but not a bit flip deep inside the state bytes, which
// would otherwise restore silently wrong simulator state; the envelope
// makes any corruption a detectable miss. Files written before the
// envelope existed (or whose prefix itself got corrupted) don't match
// the magic and pass through to the consumer's checks unchanged.
var snapSumMagic = []byte("HIRASUM1")

// wrapSnapSum frames a checkpoint payload for disk: magic, SHA-256,
// payload.
func wrapSnapSum(data []byte) []byte {
	out := make([]byte, 0, len(snapSumMagic)+sha256.Size+len(data))
	out = append(out, snapSumMagic...)
	sum := sha256.Sum256(data)
	out = append(out, sum[:]...)
	return append(out, data...)
}

// unwrapSnapSum verifies and strips the checksum envelope. Data without
// the magic is returned as-is (legacy checkpoint, or an envelope whose
// prefix was itself damaged — downstream structural checks reject it).
func unwrapSnapSum(raw []byte) ([]byte, bool) {
	if !bytes.HasPrefix(raw, snapSumMagic) {
		return raw, true
	}
	header := len(snapSumMagic) + sha256.Size
	if len(raw) < header {
		return nil, false
	}
	sum := sha256.Sum256(raw[header:])
	if !bytes.Equal(sum[:], raw[len(snapSumMagic):header]) {
		return nil, false
	}
	return raw[header:], true
}

// snapPayloadSize returns the payload size of the checkpoint file at
// path: the file size minus the checksum envelope when present, so the
// restart index accounts the same bytes the live store did (Stats.Bytes
// is payload bytes). Probe failures fall back to the raw file size —
// only eviction-heuristic accounting rides on it.
func snapPayloadSize(path string, fileSize int64) int64 {
	f, err := os.Open(path)
	if err != nil {
		return fileSize
	}
	defer f.Close()
	magic := make([]byte, len(snapSumMagic))
	if _, err := io.ReadFull(f, magic); err == nil && bytes.Equal(magic, snapSumMagic) {
		if ps := fileSize - int64(len(snapSumMagic)+sha256.Size); ps >= 0 {
			return ps
		}
	}
	return fileSize
}

// snapFileName parses a checkpoint file name: <64-hex>@<tick>.snap for
// a full snapshot, or <64-hex>@<tick>.d<base>.snap for a delta against
// the same trajectory's checkpoint at <base>. Encoding the base in the
// name keeps the restart index chain-aware without opening any file.
func snapFileName(name string) (hash string, tick, base int, ok bool) {
	rest, ok := strings.CutSuffix(name, ".snap")
	if !ok || len(rest) < 66 || rest[64] != '@' {
		return "", 0, 0, false
	}
	hash = rest[:64]
	if _, ok := flatCellName(hash + ".json"); !ok {
		return "", 0, 0, false
	}
	ticks := rest[65:]
	if i := strings.IndexByte(ticks, '.'); i >= 0 {
		if len(ticks) < i+2 || ticks[i+1] != 'd' {
			return "", 0, 0, false
		}
		base, _ = strconv.Atoi(ticks[i+2:])
		if base <= 0 {
			return "", 0, 0, false
		}
		ticks = ticks[:i]
	}
	tick, err := strconv.Atoi(ticks)
	if err != nil || tick <= 0 || (base != 0 && base >= tick) {
		return "", 0, 0, false
	}
	return hash, tick, base, true
}

// insertLocked adds e to the index, replacing any same-slot entry.
func (s *SnapStore) insertLocked(e *snapEntry) {
	byTick := s.entries[e.hash]
	if byTick == nil {
		byTick = make(map[int]*snapEntry)
		s.entries[e.hash] = byTick
	}
	if old := byTick[e.tick]; old != nil {
		s.total -= old.size
		s.stats.Entries--
	}
	byTick[e.tick] = e
	s.total += e.size
	s.stats.Entries++
}

// Ticks returns the ticks with a stored checkpoint for key, ascending.
func (s *SnapStore) Ticks(key string) []int {
	hash := hashKey(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	byTick := s.entries[hash]
	if len(byTick) == 0 {
		return nil
	}
	out := make([]int, 0, len(byTick))
	for t := range byTick {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Has reports whether a checkpoint exists for (key, tick).
func (s *SnapStore) Has(key string, tick int) bool {
	hash := hashKey(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[hash][tick] != nil
}

// Load returns the checkpoint payload for (key, tick). A missing,
// unreadable, or vanished checkpoint is (nil, false); payload validation
// is the consumer's job (the self-describing snapshot embeds its own key
// and version). Load does not tally hits or misses — those are
// per-resume-attempt (NoteHit/NoteMiss), not per-read, so one attempt
// that probes several candidates still counts once. File reads happen
// outside the index lock: checkpoints run to megabytes, and a worker
// pool must not serialize on one cell's disk I/O.
func (s *SnapStore) Load(key string, tick int) ([]byte, bool) {
	hash := hashKey(key)
	s.mu.Lock()
	e := s.entries[hash][tick]
	var data []byte
	var path string
	if e != nil {
		if s.root == "" {
			s.clock++
			e.touch = s.clock
			s.stats.Loads++
			data = e.data
		} else {
			path = s.snapPath(hash, tick, e.base)
		}
	}
	s.mu.Unlock()
	if e == nil {
		return nil, false
	}
	if s.root == "" {
		return data, true
	}
	raw, err := s.fs.ReadFile(fault.SiteSnapRead, path)
	if err != nil {
		s.mu.Lock()
		s.dropLocked(e, false)
		s.mu.Unlock()
		return nil, false
	}
	data, ok := unwrapSnapSum(raw)
	if !ok {
		// Checksum mismatch: the file is damaged. Drop the slot so the
		// next resume attempt doesn't re-read the same corpse.
		s.mu.Lock()
		s.dropLocked(e, false)
		s.mu.Unlock()
		return nil, false
	}
	// Refresh the file's mtime so recency survives restarts: the startup
	// index orders entries by modification time, and without this bump a
	// reopened store would evict by save order — dropping the hottest
	// checkpoints first. Best-effort; a failed touch only costs restart
	// ordering, never the payload.
	now := time.Now()
	s.fs.Chtimes(fault.SiteSnapRead, path, now)
	s.mu.Lock()
	s.clock++
	e.touch = s.clock
	s.stats.Loads++
	s.mu.Unlock()
	return data, true
}

// NoteHit records a resume attempt that restored a usable checkpoint.
func (s *SnapStore) NoteHit() {
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
}

// NoteMiss records a resume attempt that found no usable checkpoint
// (including ones whose payloads failed validation downstream), keeping
// the hit/miss tallies meaningful to operators.
func (s *SnapStore) NoteMiss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Save stores a checkpoint for (key, tick), evicting least-recently-used
// checkpoints if needed to respect the byte cap. A payload larger than
// the whole cap is rejected. Saving an already-present slot overwrites
// it. The store takes ownership of data — callers must not reuse the
// slice (checkpoints run to megabytes, and the save path is hot enough
// that a defensive copy is measurable). Failures are tallied in
// SaveErrors/FirstSaveError besides being returned, because callers
// treat saves as best-effort and would otherwise degrade silently.
func (s *SnapStore) Save(key string, tick int, data []byte) error {
	err := s.save(key, tick, 0, data)
	if err != nil {
		s.noteSaveErr(err)
	}
	return err
}

// SaveDelta stores a differential checkpoint for (key, tick) encoded
// against the same trajectory's checkpoint at baseTick. It shares
// Save's semantics (LRU eviction, overwrite, ownership of data); the
// base linkage additionally means evicting the base cascades to every
// delta chained on it, so the index never advertises a checkpoint it
// cannot restore.
func (s *SnapStore) SaveDelta(key string, tick, baseTick int, data []byte) error {
	if baseTick <= 0 || baseTick >= tick {
		err := fmt.Errorf("engine: delta base tick %d invalid for checkpoint tick %d", baseTick, tick)
		s.noteSaveErr(err)
		return err
	}
	err := s.save(key, tick, baseTick, data)
	if err != nil {
		s.noteSaveErr(err)
	}
	return err
}

// BaseTick returns the stored checkpoint's delta base tick (0 for a
// full snapshot) and whether the slot exists.
func (s *SnapStore) BaseTick(key string, tick int) (int, bool) {
	hash := hashKey(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[hash][tick]
	if e == nil {
		return 0, false
	}
	return e.base, true
}

func (s *SnapStore) noteSaveErr(err error) {
	s.mu.Lock()
	s.stats.SaveErrors++
	if s.stats.FirstSaveError == "" {
		s.stats.FirstSaveError = err.Error()
	}
	s.mu.Unlock()
}

func (s *SnapStore) save(key string, tick, base int, data []byte) error {
	if tick <= 0 {
		return fmt.Errorf("engine: checkpoint tick %d must be positive", tick)
	}
	size := int64(len(data))
	if size > s.maxBytes {
		return fmt.Errorf("engine: %d-byte checkpoint exceeds the %d-byte store cap", size, s.maxBytes)
	}
	hash := hashKey(key)
	if s.root != "" {
		// Write the payload before touching the index, outside the lock
		// (the multi-megabyte I/O must not serialize the worker pool).
		// Concurrent same-slot writers race benignly: trajectories are
		// deterministic, so both payloads are identical, and the atomic
		// rename means the last one wins.
		if err := s.fs.WriteFileAtomic(fault.SiteSnapWrite, s.snapPath(hash, tick, base), wrapSnapSum(data)); err != nil {
			return fmt.Errorf("engine: snapshot store: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Retire any same-slot entry's accounting first — its file (if any)
	// was just atomically replaced, so it must not become an eviction
	// victim below and delete the fresh payload. A same-slot entry of
	// the other kind lives under a different file name, so its stale
	// file is removed explicitly.
	if old := s.entries[hash][tick]; old != nil {
		delete(s.entries[hash], tick)
		if len(s.entries[hash]) == 0 {
			delete(s.entries, hash)
		}
		s.total -= old.size
		s.stats.Entries--
		if s.root != "" && old.base != base {
			s.fs.Remove(fault.SiteSnapEvict, s.snapPath(old.hash, old.tick, old.base))
		}
	}
	// A delta must not orphan itself: its base chain is pinned against
	// the eviction loop below (evicting the base would leave the fresh
	// delta unrestorable via the cascade).
	var protected map[int]bool
	if base > 0 {
		protected = make(map[int]bool)
		for t := base; t > 0; {
			protected[t] = true
			anc := s.entries[hash][t]
			if anc == nil {
				break
			}
			t = anc.base
		}
	}
	for s.total+size > s.maxBytes {
		victim := s.oldestLocked(hash, protected)
		if victim == nil {
			if protected == nil {
				break
			}
			// Only the pending delta's own base chain remains evictable;
			// dropping it would orphan the new delta, so reject the save.
			if s.root != "" {
				s.fs.Remove(fault.SiteSnapEvict, s.snapPath(hash, tick, base))
			}
			return fmt.Errorf("engine: %d-byte delta checkpoint cannot fit without evicting its base chain", size)
		}
		s.dropLocked(victim, true)
	}
	e := &snapEntry{hash: hash, tick: tick, base: base, size: size}
	if s.root == "" {
		e.data = data
	}
	s.clock++
	e.touch = s.clock
	s.insertLocked(e)
	s.forgetGhostLocked(hash, tick) // the slot lives again; stop charging its eviction
	s.stats.Saves++
	if base > 0 {
		s.stats.DeltaSaves++
		s.stats.DeltaBytes += uint64(size)
	}
	return nil
}

// oldestLocked returns the least-recently-used entry, or nil when no
// entry is evictable. Entries of trajectory `hash` whose tick is in
// `protected` are skipped (a pending delta's base chain).
func (s *SnapStore) oldestLocked(hash string, protected map[int]bool) *snapEntry {
	var victim *snapEntry
	for h, byTick := range s.entries {
		for _, e := range byTick {
			if protected != nil && h == hash && protected[e.tick] {
				continue
			}
			if victim == nil || e.touch < victim.touch {
				victim = e
			}
		}
	}
	return victim
}

// dropLocked removes an entry from the index (and its file on disk),
// optionally counting it as an eviction. Dropping a checkpoint also
// drops, transitively, every delta chained on it — their payloads are
// meaningless without the base, and an index advertising them would
// turn the loss into a restore-time error instead of a clean miss.
// Cascaded drops inherit the eviction accounting (and ghosts), since
// the byte cap is what made them unrestorable.
func (s *SnapStore) dropLocked(e *snapEntry, evict bool) {
	byTick := s.entries[e.hash]
	if byTick[e.tick] != e {
		return
	}
	delete(byTick, e.tick)
	if len(byTick) == 0 {
		delete(s.entries, e.hash)
	}
	s.total -= e.size
	s.stats.Entries--
	if evict {
		s.stats.Evictions++
		s.rememberGhostLocked(e.hash, e.tick)
	}
	if s.root != "" {
		// Best-effort: a file that can't be removed (injected EIO) leaves a
		// few stray bytes on disk but a consistent index; the slot is gone
		// either way, and the startup indexer will rediscover survivors.
		s.fs.Remove(fault.SiteSnapEvict, s.snapPath(e.hash, e.tick, e.base))
	}
	for _, dep := range s.entries[e.hash] {
		if dep.base == e.tick {
			s.dropLocked(dep, evict)
		}
	}
}

// rememberGhostLocked records an evicted slot in the bounded ghost ring.
func (s *SnapStore) rememberGhostLocked(hash string, tick int) {
	if s.ghostIdx == nil {
		s.ghostIdx = make(map[string]map[int]int)
		s.ghosts = make([]ghost, ghostRingSize)
	}
	if _, ok := s.ghostIdx[hash][tick]; ok {
		return
	}
	slot := s.ghostNext % ghostRingSize
	if old := s.ghosts[slot]; old.hash != "" {
		s.forgetGhostLocked(old.hash, old.tick)
	}
	s.ghosts[slot] = ghost{hash: hash, tick: tick}
	byTick := s.ghostIdx[hash]
	if byTick == nil {
		byTick = make(map[int]int)
		s.ghostIdx[hash] = byTick
	}
	byTick[tick] = slot
	s.ghostNext++
}

// forgetGhostLocked drops a remembered eviction, if present.
func (s *SnapStore) forgetGhostLocked(hash string, tick int) {
	byTick := s.ghostIdx[hash]
	slot, ok := byTick[tick]
	if !ok {
		return
	}
	delete(byTick, tick)
	if len(byTick) == 0 {
		delete(s.ghostIdx, hash)
	}
	s.ghosts[slot] = ghost{}
}

// AttributeResim charges re-simulated work to prior evictions: a resume
// attempt for key that restored tick `resumed` (0 = cold start) and must
// now simulate to `horizon` checks the ghost list for the furthest
// evicted checkpoint it could have used instead. Finding ghost tick G
// with resumed < G <= horizon counts one GhostHit and G-resumed
// EvictionResimTicks — exactly the ticks the byte cap put back on the
// CPU. Attempts with no covering ghost charge nothing: that work was
// simply never checkpointed.
func (s *SnapStore) AttributeResim(key string, resumed, horizon int) {
	hash := hashKey(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	best := 0
	for tick := range s.ghostIdx[hash] {
		if tick > resumed && tick <= horizon && tick > best {
			best = tick
		}
	}
	if best > 0 {
		s.stats.GhostHits++
		s.stats.EvictionResimTicks += uint64(best - resumed)
	}
}

// snapPath returns where a checkpoint lives: root/ab/ab...@tick.snap
// for full snapshots, root/ab/ab...@tick.d<base>.snap for deltas.
func (s *SnapStore) snapPath(hash string, tick, base int) string {
	if base > 0 {
		return filepath.Join(s.root, hash[:2], fmt.Sprintf("%s@%d.d%d.snap", hash, tick, base))
	}
	return filepath.Join(s.root, hash[:2], fmt.Sprintf("%s@%d.snap", hash, tick))
}

// Degraded reports whether the store fell back to in-memory mode because
// its requested on-disk root was unusable, and why.
func (s *SnapStore) Degraded() (string, bool) {
	return s.degraded, s.degraded != ""
}

// Stats returns a snapshot of the store's tallies.
func (s *SnapStore) Stats() SnapStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Bytes = s.total
	return st
}
