package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testPayload(n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n)
}

func TestSnapStoreRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "memory"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			s := NewSnapStore(dir, 1<<20)
			if _, ok := s.Load("traj-a", 100); ok {
				t.Fatal("empty store served a checkpoint")
			}
			for _, tick := range []int{100, 300, 200} {
				if err := s.Save("traj-a", tick, testPayload(64, byte(tick))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Save("traj-b", 150, testPayload(64, 9)); err != nil {
				t.Fatal(err)
			}
			got := s.Ticks("traj-a")
			if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
				t.Fatalf("Ticks = %v, want [100 200 300]", got)
			}
			if ticks := s.Ticks("traj-b"); len(ticks) != 1 || ticks[0] != 150 {
				t.Fatalf("traj-b ticks = %v", ticks)
			}
			data, ok := s.Load("traj-a", 200)
			if !ok || !bytes.Equal(data, testPayload(64, 200&0xff)) {
				t.Fatalf("Load(200) = %v, %v", data, ok)
			}
			if !s.Has("traj-a", 300) || s.Has("traj-a", 250) {
				t.Fatal("Has answers wrong")
			}
			// Overwriting a slot replaces, not duplicates.
			if err := s.Save("traj-a", 200, testPayload(32, 7)); err != nil {
				t.Fatal(err)
			}
			data, _ = s.Load("traj-a", 200)
			if len(data) != 32 {
				t.Fatalf("overwritten payload length %d", len(data))
			}
			st := s.Stats()
			if st.Entries != 4 || st.Bytes != 3*64+32 {
				t.Fatalf("stats %+v", st)
			}
			// Hits and misses are per-resume-attempt tallies recorded by
			// the consumer, not per-Load.
			if st.Hits != 0 || st.Misses != 0 || st.Saves != 5 {
				t.Fatalf("tallies %+v", st)
			}
			s.NoteHit()
			s.NoteMiss()
			if st = s.Stats(); st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("attempt tallies %+v", st)
			}
		})
	}
}

func TestSnapStoreEviction(t *testing.T) {
	s := NewSnapStore("", 300)
	// Three 100-byte checkpoints fill the store exactly.
	for i := 1; i <= 3; i++ {
		if err := s.Save("k", i*100, testPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so eviction order is by last use, not insertion.
	if _, ok := s.Load("k", 100); !ok {
		t.Fatal("lost a checkpoint before the cap")
	}
	if err := s.Save("k", 400, testPayload(100, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Has("k", 200) {
		t.Fatal("least-recently-used checkpoint survived the cap")
	}
	if !s.Has("k", 100) || !s.Has("k", 300) || !s.Has("k", 400) {
		t.Fatalf("wrong eviction victim: ticks %v", s.Ticks("k"))
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes != 300 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
	// A payload over the whole cap is rejected outright — and the
	// failure is visible in the tallies, not just the returned error.
	if err := s.Save("k", 500, testPayload(301, 5)); err == nil {
		t.Fatal("over-cap payload accepted")
	}
	if st := s.Stats(); st.SaveErrors != 1 || st.FirstSaveError == "" {
		t.Fatalf("save failure not tallied: %+v", st)
	}
}

func TestSnapStoreReload(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapStore(dir, 1<<20)
	for i := 1; i <= 4; i++ {
		if err := s.Save("traj", i*1000, testPayload(50+i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh store over the same directory indexes the checkpoints.
	s2 := NewSnapStore(dir, 1<<20)
	if ticks := s2.Ticks("traj"); len(ticks) != 4 || ticks[3] != 4000 {
		t.Fatalf("reloaded ticks = %v", ticks)
	}
	data, ok := s2.Load("traj", 3000)
	if !ok || len(data) != 53 {
		t.Fatalf("reloaded Load = %d bytes, %v", len(data), ok)
	}
	if st := s2.Stats(); st.Bytes != 51+52+53+54 {
		t.Fatalf("reloaded size accounting %+v", st)
	}
}

func TestSnapStoreVanishedFile(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapStore(dir, 1<<20)
	if err := s.Save("traj", 100, testPayload(10, 1)); err != nil {
		t.Fatal(err)
	}
	hash := hashKey("traj")
	if err := os.Remove(filepath.Join(dir, hash[:2], fmt.Sprintf("%s@%d.snap", hash, 100))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("traj", 100); ok {
		t.Fatal("vanished checkpoint served")
	}
	if s.Has("traj", 100) {
		t.Fatal("vanished checkpoint still indexed")
	}
}

func TestSnapStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	// Result-store cells and junk must not be indexed as checkpoints.
	sub := filepath.Join(dir, "ab")
	os.MkdirAll(sub, 0o755)
	hash := hashKey("x")
	os.WriteFile(filepath.Join(sub, hash+".json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(sub, "junk.snap"), []byte("?"), 0o644)
	os.WriteFile(filepath.Join(sub, hash+"@-5.snap"), []byte("?"), 0o644)
	s := NewSnapStore(dir, 1<<20)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("indexed foreign files: %+v", st)
	}
}
