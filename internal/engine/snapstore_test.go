package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testPayload(n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n)
}

func TestSnapStoreRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "memory"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			s := NewSnapStore(dir, 1<<20)
			if _, ok := s.Load("traj-a", 100); ok {
				t.Fatal("empty store served a checkpoint")
			}
			for _, tick := range []int{100, 300, 200} {
				if err := s.Save("traj-a", tick, testPayload(64, byte(tick))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Save("traj-b", 150, testPayload(64, 9)); err != nil {
				t.Fatal(err)
			}
			got := s.Ticks("traj-a")
			if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
				t.Fatalf("Ticks = %v, want [100 200 300]", got)
			}
			if ticks := s.Ticks("traj-b"); len(ticks) != 1 || ticks[0] != 150 {
				t.Fatalf("traj-b ticks = %v", ticks)
			}
			data, ok := s.Load("traj-a", 200)
			if !ok || !bytes.Equal(data, testPayload(64, 200&0xff)) {
				t.Fatalf("Load(200) = %v, %v", data, ok)
			}
			if !s.Has("traj-a", 300) || s.Has("traj-a", 250) {
				t.Fatal("Has answers wrong")
			}
			// Overwriting a slot replaces, not duplicates.
			if err := s.Save("traj-a", 200, testPayload(32, 7)); err != nil {
				t.Fatal(err)
			}
			data, _ = s.Load("traj-a", 200)
			if len(data) != 32 {
				t.Fatalf("overwritten payload length %d", len(data))
			}
			st := s.Stats()
			if st.Entries != 4 || st.Bytes != 3*64+32 {
				t.Fatalf("stats %+v", st)
			}
			// Hits and misses are per-resume-attempt tallies recorded by
			// the consumer, not per-Load; Loads counts served reads only.
			if st.Hits != 0 || st.Misses != 0 || st.Saves != 5 || st.Loads != 2 {
				t.Fatalf("tallies %+v", st)
			}
			s.NoteHit()
			s.NoteMiss()
			if st = s.Stats(); st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("attempt tallies %+v", st)
			}
		})
	}
}

func TestSnapStoreEviction(t *testing.T) {
	s := NewSnapStore("", 300)
	// Three 100-byte checkpoints fill the store exactly.
	for i := 1; i <= 3; i++ {
		if err := s.Save("k", i*100, testPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so eviction order is by last use, not insertion.
	if _, ok := s.Load("k", 100); !ok {
		t.Fatal("lost a checkpoint before the cap")
	}
	if err := s.Save("k", 400, testPayload(100, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Has("k", 200) {
		t.Fatal("least-recently-used checkpoint survived the cap")
	}
	if !s.Has("k", 100) || !s.Has("k", 300) || !s.Has("k", 400) {
		t.Fatalf("wrong eviction victim: ticks %v", s.Ticks("k"))
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes != 300 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
	// A payload over the whole cap is rejected outright — and the
	// failure is visible in the tallies, not just the returned error.
	if err := s.Save("k", 500, testPayload(301, 5)); err == nil {
		t.Fatal("over-cap payload accepted")
	}
	if st := s.Stats(); st.SaveErrors != 1 || st.FirstSaveError == "" {
		t.Fatalf("save failure not tallied: %+v", st)
	}
}

func TestSnapStoreGhostAttribution(t *testing.T) {
	s := NewSnapStore("", 300)
	for i := 1; i <= 3; i++ {
		if err := s.Save("k", i*1000, testPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two more saves evict ticks 1000 and 2000 (least-recently-used).
	for i := 4; i <= 5; i++ {
		if err := s.Save("k", i*1000, testPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Has("k", 1000) || s.Has("k", 2000) {
		t.Fatalf("expected evictions did not happen: ticks %v", s.Ticks("k"))
	}

	// A cold resume to 2500 could have used evicted checkpoint 2000: one
	// ghost hit charging 2000 ticks — the furthest covering ghost wins,
	// not the sum over all of them.
	s.AttributeResim("k", 0, 2500)
	if st := s.Stats(); st.GhostHits != 1 || st.EvictionResimTicks != 2000 {
		t.Fatalf("cold attribution %+v", st)
	}

	// A partial resume charges only the gap up to the ghost.
	s.AttributeResim("k", 1000, 2500)
	if st := s.Stats(); st.GhostHits != 2 || st.EvictionResimTicks != 3000 {
		t.Fatalf("partial attribution %+v", st)
	}

	// No covering ghost: horizon below every ghost, a foreign key, or a
	// resume already past them all charge nothing.
	s.AttributeResim("k", 0, 500)
	s.AttributeResim("other", 0, 1<<30)
	s.AttributeResim("k", 2000, 1<<30)
	if st := s.Stats(); st.GhostHits != 2 || st.EvictionResimTicks != 3000 {
		t.Fatalf("phantom attribution %+v", st)
	}

	// Re-saving the exact slot clears its ghost (the eviction no longer
	// costs anyone anything). This save itself evicts tick 3000.
	if err := s.Save("k", 2000, testPayload(100, 2)); err != nil {
		t.Fatal(err)
	}
	s.AttributeResim("k", 1000, 2500)
	if st := s.Stats(); st.GhostHits != 2 {
		t.Fatalf("cleared ghost still charged %+v", st)
	}
}

func TestSnapStoreDiskLRUSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapStore(dir, 300)
	hash := hashKey("k")
	for i := 1; i <= 3; i++ {
		if err := s.Save("k", i*1000, testPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate the files so save order is unambiguous to the reindexer.
	base := time.Now().Add(-3 * time.Hour)
	for i := 1; i <= 3; i++ {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.snapPath(hash, i*1000, 0), when, when); err != nil {
			t.Fatal(err)
		}
	}
	// Reading tick 1000 must bump its on-disk recency too, not just the
	// in-process touch order.
	if _, ok := s.Load("k", 1000); !ok {
		t.Fatal("lost a checkpoint before the cap")
	}

	// A fresh store over the same directory evicts by last use: the
	// just-read 1000 survives, the stale 2000 goes. Without the mtime
	// bump this degrades to save-order eviction and drops 1000 — the
	// hottest checkpoint.
	s2 := NewSnapStore(dir, 300)
	if err := s2.Save("k", 4000, testPayload(100, 4)); err != nil {
		t.Fatal(err)
	}
	if s2.Has("k", 2000) {
		t.Fatal("restart forgot recency: evicted by save order, not last use")
	}
	if !s2.Has("k", 1000) || !s2.Has("k", 3000) || !s2.Has("k", 4000) {
		t.Fatalf("wrong eviction victim after restart: ticks %v", s2.Ticks("k"))
	}
}

func TestSnapStoreReload(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapStore(dir, 1<<20)
	for i := 1; i <= 4; i++ {
		if err := s.Save("traj", i*1000, testPayload(50+i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh store over the same directory indexes the checkpoints.
	s2 := NewSnapStore(dir, 1<<20)
	if ticks := s2.Ticks("traj"); len(ticks) != 4 || ticks[3] != 4000 {
		t.Fatalf("reloaded ticks = %v", ticks)
	}
	data, ok := s2.Load("traj", 3000)
	if !ok || len(data) != 53 {
		t.Fatalf("reloaded Load = %d bytes, %v", len(data), ok)
	}
	if st := s2.Stats(); st.Bytes != 51+52+53+54 {
		t.Fatalf("reloaded size accounting %+v", st)
	}
}

func TestSnapStoreVanishedFile(t *testing.T) {
	dir := t.TempDir()
	s := NewSnapStore(dir, 1<<20)
	if err := s.Save("traj", 100, testPayload(10, 1)); err != nil {
		t.Fatal(err)
	}
	hash := hashKey("traj")
	if err := os.Remove(filepath.Join(dir, hash[:2], fmt.Sprintf("%s@%d.snap", hash, 100))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("traj", 100); ok {
		t.Fatal("vanished checkpoint served")
	}
	if s.Has("traj", 100) {
		t.Fatal("vanished checkpoint still indexed")
	}
}

func TestSnapStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	// Result-store cells and junk must not be indexed as checkpoints.
	sub := filepath.Join(dir, "ab")
	os.MkdirAll(sub, 0o755)
	hash := hashKey("x")
	os.WriteFile(filepath.Join(sub, hash+".json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(sub, "junk.snap"), []byte("?"), 0o644)
	os.WriteFile(filepath.Join(sub, hash+"@-5.snap"), []byte("?"), 0o644)
	s := NewSnapStore(dir, 1<<20)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("indexed foreign files: %+v", st)
	}
}
